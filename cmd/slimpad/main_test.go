package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDemoShowCheckMarks(t *testing.T) {
	dir := t.TempDir()
	pad := filepath.Join(dir, "rounds.xml")

	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "2", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") || !strings.Contains(out.String(), "3 bundles") {
		t.Fatalf("demo output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"show", "-pad", pad}, &out); err != nil {
		t.Fatal(err)
	}
	show := out.String()
	for _, want := range []string{`SLIMPad "Rounds"`, "-- 3 bundles, 8 scraps, 8 marks"} {
		if !strings.Contains(show, want) {
			t.Errorf("show output missing %q:\n%s", want, show)
		}
	}

	out.Reset()
	if err := run([]string{"check", "-pad", pad}, &out); err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "-- 0 problem(s)") {
		t.Fatalf("check output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"marks", "-pad", pad}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 8 mark(s)") {
		t.Fatalf("marks output = %q", out.String())
	}
}

// TestDoctor diagnoses a persisted pad with no base documents on hand:
// every mark captured an excerpt at clip time, so all are degraded (still
// readable) rather than dangling, and the command exits zero.
func TestDoctor(t *testing.T) {
	dir := t.TempDir()
	pad := filepath.Join(dir, "rounds.xml")
	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "2", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"doctor", "-pad", pad}, &out); err != nil {
		t.Fatalf("doctor = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "8 degraded") || !strings.Contains(out.String(), "0 dangling") {
		t.Fatalf("doctor output = %q", out.String())
	}
}

func TestFind(t *testing.T) {
	dir := t.TempDir()
	pad := filepath.Join(dir, "rounds.xml")
	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "2", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"find", "-pad", pad, "-q", "na"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scrap") || !strings.Contains(out.String(), "xml://") {
		t.Fatalf("find output = %q", out.String())
	}
	if err := run([]string{"find", "-pad", pad}, &out); err == nil {
		t.Error("find without -q accepted")
	}
	if err := run([]string{"find", "-q", "x"}, &out); err == nil {
		t.Error("find without -pad accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no command accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"show"}, &out); err == nil {
		t.Error("show without -pad accepted")
	}
	if err := run([]string{"show", "-pad", "/nonexistent.xml"}, &out); err == nil {
		t.Error("missing pad file accepted")
	}
}

func TestTraceAndObsFlags(t *testing.T) {
	dir := t.TempDir()
	pad := filepath.Join(dir, "rounds.xml")
	prof := filepath.Join(dir, "cpu.prof")

	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "1", "-trace", "-profile", prof}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== recent ops") {
		t.Fatalf("missing trace header:\n%s", text)
	}
	if !strings.Contains(text, "dmi.create") {
		t.Errorf("trace dump has no DMI ops:\n%s", text)
	}
	if info, err := os.Stat(prof); err != nil || info.Size() == 0 {
		t.Fatalf("profile not written: %v", err)
	}

	out.Reset()
	if err := run([]string{"show", "-pad", pad, "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== obs metrics ==") {
		t.Fatalf("show -metrics missing registry header:\n%s", out.String())
	}
}
