// slimpad is the command-line SLIMPad tool. It builds the ICU demo pad of
// Fig. 2/Fig. 4 over synthetic clinical data, persists pads as XML triple
// files, and inspects persisted pads.
//
// Usage:
//
//	slimpad demo  -out rounds.xml [-patients 3] [-seed 2001]
//	slimpad demo  -out rounds.wal -backend wal
//	slimpad show  -pad rounds.xml
//	slimpad show  -pad rounds.wal -backend wal
//	slimpad check -pad rounds.xml
//	slimpad marks -pad rounds.xml
//	slimpad doctor -pad rounds.xml
//	slimpad trace -pad rounds.xml [-json] [-perfetto trace.json]
//
// -backend selects the durability backend for the pad file
// (docs/ROBUSTNESS.md "Durability backends"): xml (default, the
// paper-fidelity snapshot), wal (CRC-framed write-ahead log with snapshot
// compaction and torn-tail recovery), or jsonl (JSON Lines).
//
// trace walks the pad and doctors its marks under one causal trace root,
// then prints the reassembled span tree: the dmi → trim → mark fan-out of
// a single user gesture. -perfetto saves the same trace as Chrome
// trace-event JSON for ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/clinical"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/slimpad"
	"repro/internal/trim"
)

// withObs runs fn between obs.CLI Start/Finish, so every subcommand honors
// -metrics, -trace, and -profile uniformly.
func withObs(cli *obs.CLI, out io.Writer, fn func() error) error {
	if err := cli.Start(); err != nil {
		return err
	}
	err := fn()
	if ferr := cli.Finish(out); err == nil {
		err = ferr
	}
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slimpad:", err)
		os.Exit(1)
	}
	if s := obs.ActiveServer(); s != nil {
		fmt.Fprintf(os.Stderr, "slimpad: serving diagnostics at %s (interrupt to exit)\n", s.URL())
		obs.AwaitInterrupt(context.Background())
		s.Close()
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("need a command: demo | show | check | marks | doctor | find | trace")
	}
	switch args[0] {
	case "demo":
		return demo(args[1:], out)
	case "show", "check", "marks", "doctor":
		return inspect(args[0], args[1:], out)
	case "find":
		return find(args[1:], out)
	case "trace":
		return trace(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// trace loads a pad, then walks it and doctors its marks under a single
// trace root, and prints the reassembled span tree — the causal record of
// one user gesture crossing the dmi, trim, and mark layers.
func trace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	padFile := fs.String("pad", "", "pad file to trace")
	backend := backendFlag(fs)
	jsonOut := fs.Bool("json", false, "emit the trace tree as JSON")
	perfetto := fs.String("perfetto", "", "also write the trace as Chrome trace-event JSON to this file")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *padFile == "" {
		return fmt.Errorf("-pad is required")
	}
	return withObs(&cli, out, func() error { return tracePad(*padFile, *backend, *jsonOut, *perfetto, out) })
}

func tracePad(padFile, backend string, jsonOut bool, perfetto string, out io.Writer) error {
	app, marks, b, _, err := openPad(padFile, backend)
	if err != nil {
		return err
	}
	defer b.Close()
	app.RegisterHealth(nil, nil, padFile, 1)
	id, err := runPadTraced(app, marks)
	if err != nil {
		return err
	}
	ops := obs.DefaultTracer.TraceOps(id)
	if len(ops) == 0 {
		return fmt.Errorf("trace %s recorded no spans (tracer disabled or sampled out)", id)
	}
	if perfetto != "" {
		f, err := os.Create(perfetto)
		if err != nil {
			return err
		}
		if err := obs.WriteTraceEvents(f, ops); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace event(s) to %s\n", len(ops), perfetto)
	}
	tree := obs.DefaultTracer.Trace(id)
	if tree == nil {
		return fmt.Errorf("trace %s not found", id)
	}
	if jsonOut {
		return obs.EncodeJSON(out, tree)
	}
	return tree.WriteText(out)
}

// runPadTraced performs the traced work: one root span, under which the pad
// walk (dmi → trim) and the mark doctor pass (mark) all hang as children.
func runPadTraced(app *slimpad.App, marks *mark.Manager) (id obs.TraceID, err error) {
	ctx, sp := obs.StartCtx(context.Background(), "slimpad.trace", "pad walk + mark doctor")
	defer func() { sp.FinishErr(err) }()
	id = sp.TraceID()
	pads, err := app.DMI().PadsCtx(ctx)
	if err != nil {
		return id, err
	}
	for _, p := range pads {
		if _, err := app.TreeCtx(ctx, p.ID()); err != nil {
			return id, err
		}
	}
	marks.Doctor(ctx)
	return id, nil
}

// find searches a persisted pad for scraps and bundles by label substring
// (the §6 query capability).
func find(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("find", flag.ContinueOnError)
	padFile := fs.String("pad", "", "pad file to search")
	backend := backendFlag(fs)
	q := fs.String("q", "", "label substring (case-insensitive)")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *padFile == "" || *q == "" {
		return fmt.Errorf("find needs -pad and -q")
	}
	return withObs(&cli, out, func() error { return findIn(*padFile, *backend, *q, out) })
}

func findIn(padFile, backend, q string, out io.Writer) error {
	app, marks, b, _, err := openPad(padFile, backend)
	if err != nil {
		return err
	}
	defer b.Close()
	app.RegisterHealth(nil, nil, padFile, 1)
	bundles, err := app.DMI().FindBundles(q)
	if err != nil {
		return err
	}
	for _, b := range bundles {
		fmt.Fprintf(out, "bundle  %s  %q\n", b.ID().Value(), b.BundleName())
	}
	scraps, err := app.DMI().FindScraps(q)
	if err != nil {
		return err
	}
	for _, s := range scraps {
		wire := ""
		if hs := s.MarkHandles(); len(hs) > 0 {
			if m, err := marks.Mark(hs[0].MarkID()); err == nil {
				wire = "  -> " + m.Address.String()
			}
		}
		fmt.Fprintf(out, "scrap   %s  %q%s\n", s.ID().Value(), s.ScrapName(), wire)
	}
	fmt.Fprintf(out, "-- %d bundle(s), %d scrap(s)\n", len(bundles), len(scraps))
	return nil
}

func demo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	outFile := fs.String("out", "rounds.xml", "output pad file")
	backend := backendFlag(fs)
	patients := fs.Int("patients", 3, "number of synthetic patients")
	seed := fs.Int64("seed", 2001, "generator seed")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return withObs(&cli, out, func() error { return buildDemo(*outFile, *backend, *patients, *seed, out) })
}

func buildDemo(outFile, backend string, patients int, seed int64, out io.Writer) error {
	env, err := clinical.NewEnvironment(seed, patients)
	if err != nil {
		return err
	}
	app, err := slimpad.NewApp(env.Marks)
	if err != nil {
		return err
	}
	app.RegisterHealth(nil, nil, outFile, 1)
	pad, root, err := app.NewPad("Rounds")
	if err != nil {
		return err
	}
	for i, p := range env.Patients {
		b, err := app.DMI().CreateBundle(p.Name, slimpad.Coordinate{X: 16, Y: 16 + i*200}, 540, 180)
		if err != nil {
			return err
		}
		if err := app.DMI().AddNestedBundle(root.ID(), b.ID()); err != nil {
			return err
		}
		if err := env.SelectMed(p, 0); err != nil {
			return err
		}
		if _, err := app.ClipSelection(b.ID(), "spreadsheet", "", slimpad.Coordinate{X: 8, Y: 8}); err != nil {
			return err
		}
		for li, code := range []string{"Na", "K", "Cr"} {
			if err := env.SelectLab(p, code); err != nil {
				return err
			}
			if _, err := app.ClipSelection(b.ID(), "xml", code, slimpad.Coordinate{X: 300, Y: 8 + li*24}); err != nil {
				return err
			}
		}
	}
	if err := saveDemo(app, outFile, backend); err != nil {
		return err
	}
	st, err := app.PadStats(pad.ID())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d bundles, %d scraps, %d marks\n", outFile, st.Bundles, st.Scraps, st.Marks)
	return nil
}

func inspect(cmd string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	padFile := fs.String("pad", "", "pad file to inspect")
	backend := backendFlag(fs)
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *padFile == "" {
		return fmt.Errorf("-pad is required")
	}
	return withObs(&cli, out, func() error { return inspectPad(cmd, *padFile, *backend, out) })
}

func inspectPad(cmd, padFile, backend string, out io.Writer) error {
	app, marks, b, pads, err := openPad(padFile, backend)
	if err != nil {
		return err
	}
	defer b.Close()
	app.RegisterHealth(nil, nil, padFile, 1)
	switch cmd {
	case "show":
		for _, p := range pads {
			tree, err := app.Tree(p.ID())
			if err != nil {
				return err
			}
			fmt.Fprint(out, tree)
			st, err := app.PadStats(p.ID())
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "-- %d bundles, %d scraps, %d marks\n", st.Bundles, st.Scraps, st.Marks)
		}
	case "check":
		problems, err := app.Check()
		if err != nil {
			return err
		}
		for _, p := range problems {
			fmt.Fprintln(out, p)
		}
		fmt.Fprintf(out, "-- %d problem(s)\n", len(problems))
		if len(problems) > 0 {
			return fmt.Errorf("pad does not conform")
		}
	case "marks":
		for _, m := range marks.Marks() {
			fmt.Fprintf(out, "%s  %s\n", m.ID, m.Address)
			if m.Excerpt != "" {
				fmt.Fprintf(out, "  excerpt: %.60q\n", m.Excerpt)
			}
		}
		fmt.Fprintf(out, "-- %d mark(s)\n", marks.Len())
	case "doctor":
		// No base applications are registered for a persisted pad, so a
		// live resolve cannot succeed; the report distinguishes marks that
		// can still serve reads from their cached excerpt (degraded) from
		// truly dangling ones (docs/ROBUSTNESS.md).
		report := marks.Doctor(context.Background())
		fmt.Fprint(out, report)
		if report.Dangling > 0 {
			return fmt.Errorf("%d dangling mark(s)", report.Dangling)
		}
	}
	return nil
}

// backendFlag binds the shared -backend selector (docs/ROBUSTNESS.md
// "Durability backends") onto a subcommand's flag set.
func backendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", trim.BackendXML,
		"durability backend for the pad file: "+strings.Join(trim.BackendKinds(), "|"))
}

// openPad builds a fresh app, attaches the selected durability backend to
// its store, and loads the pad through it (for the WAL backend: compacted
// snapshot + log replay with torn-tail recovery). With -backend wal the
// WAL health probe joins /healthz. Callers must Close the backend.
func openPad(padFile, backend string) (*slimpad.App, *mark.Manager, trim.Backend, []slimpad.SlimPad, error) {
	marks := mark.NewManager()
	app, err := slimpad.NewApp(marks)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if backend != trim.BackendXML {
		// The XML loader reports a missing file itself; the WAL backend
		// would silently open an empty log, so check up front.
		if _, err := os.Stat(padFile); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	b, err := trim.OpenBackend(backend, app.DMI().Store().Trim(), padFile)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pads, err := app.LoadWith(b)
	if err != nil {
		b.Close()
		return nil, nil, nil, nil, err
	}
	if ws, ok := b.(*trim.WALStore); ok {
		obs.DefaultHealth.Register(obs.HealthTrimWAL, ws.HealthCheck())
	}
	return app, marks, b, pads, nil
}

// saveDemo persists a freshly built demo pad through the selected backend.
// demo overwrites its output, so with -backend wal any previous log and
// snapshot are removed first; the built state predates the WAL attachment,
// so it is anchored with a full snapshot compaction rather than an
// incremental commit.
func saveDemo(app *slimpad.App, outFile, backend string) error {
	if backend == trim.BackendWAL {
		for _, p := range []string{outFile, outFile + trim.SnapshotSuffix, outFile + trim.SnapshotSuffix + trim.BackupSuffix} {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	b, err := trim.OpenBackend(backend, app.DMI().Store().Trim(), outFile)
	if err != nil {
		return err
	}
	defer b.Close()
	if err := app.SaveWith(b); err != nil {
		return err
	}
	if ws, ok := b.(*trim.WALStore); ok {
		return ws.Compact()
	}
	return nil
}
