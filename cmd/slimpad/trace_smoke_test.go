package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceSmokeServe is the end-to-end acceptance path for causal traces:
// run a traced pad walk under -serve, then pull the trace back out of the
// diagnostics server and check it crosses at least three layers of the
// stack (dmi → trim → mark), and that the Perfetto view of the same trace
// parses as Chrome trace-event JSON.
func TestTraceSmokeServe(t *testing.T) {
	pad := filepath.Join(t.TempDir(), "rounds.xml")
	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "1", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"trace", "-pad", pad, "-serve", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := obs.ActiveServer()
	if s == nil {
		t.Fatal("-serve left no active server")
	}
	defer s.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// The roots index must list the trace the subcommand just recorded.
	code, body := get("/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	var index struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &index); err != nil {
		t.Fatalf("/debug/traces: %v\n%s", err, body)
	}
	var id obs.TraceID
	for _, tr := range index.Traces {
		if tr.Op == "slimpad.trace" {
			id = tr.Trace
			break
		}
	}
	if id == 0 {
		t.Fatalf("/debug/traces has no slimpad.trace root:\n%s", body)
	}

	// The reassembled tree must span the dmi, trim, and mark layers.
	code, body = get("/debug/trace/" + id.String())
	if code != http.StatusOK {
		t.Fatalf("/debug/trace/%s status %d", id, code)
	}
	var tree obs.TraceTree
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatalf("/debug/trace/%s: %v\n%s", id, err, body)
	}
	if tree.ID != id || len(tree.Roots) == 0 {
		t.Fatalf("trace tree = %+v", tree)
	}
	layers := map[string]bool{}
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		if i := strings.IndexByte(n.Op, '.'); i > 0 {
			layers[n.Op[:i]] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
	for _, want := range []string{"dmi", "trim", "mark"} {
		if !layers[want] {
			t.Errorf("trace covers layers %v, missing %q", layers, want)
		}
	}

	// The same trace must render as valid Chrome trace-event JSON.
	code, body = get("/debug/trace/" + id.String() + "?perfetto=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace/%s?perfetto=1 status %d", id, code)
	}
	var events struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("perfetto export: %v\n%s", err, body)
	}
	if len(events.TraceEvents) != tree.Spans {
		t.Errorf("perfetto has %d events, tree has %d spans", len(events.TraceEvents), tree.Spans)
	}
	for _, ev := range events.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" || ev.PID == 0 || ev.TID == 0 {
			t.Fatalf("malformed trace event %+v", ev)
		}
	}

	// Unknown and malformed ids answer 404/400, not 200.
	if code, _ := get("/debug/trace/ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d", code)
	}
	if code, _ := get("/debug/trace/not-hex"); code != http.StatusBadRequest {
		t.Errorf("malformed trace id: status %d", code)
	}
}

// TestTraceSmokeText covers the subcommand's own output: the tree header
// names the trace, the indentation mirrors causal depth, and -perfetto
// writes a parseable trace-event file.
func TestTraceSmokeText(t *testing.T) {
	dir := t.TempDir()
	pad := filepath.Join(dir, "rounds.xml")
	perfetto := filepath.Join(dir, "trace.json")
	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "1", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"trace", "-pad", pad, "-perfetto", perfetto}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"== trace ", "slimpad.trace", "\n  dmi.", "\n    trim.", "mark.doctor", "mark.resolve"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(perfetto)
	if err != nil {
		t.Fatal(err)
	}
	var events struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("perfetto file: %v", err)
	}
	if len(events.TraceEvents) == 0 {
		t.Fatal("perfetto file holds no events")
	}
}
