package main

import (
	"errors"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trim"
)

// TestServeWithMetrics covers the -serve + -metrics flag combination on
// slimpad: building the demo pad drives the whole stack (DMI -> SLIM store
// -> TRIM, plus mark creation), so the scrape must expose the trim, slim,
// and mark metric families, and the pad's health probes must answer — with
// /healthz flipping to 503 under an injected persistence fault.
func TestServeWithMetrics(t *testing.T) {
	pad := filepath.Join(t.TempDir(), "rounds.xml")
	var out strings.Builder
	if err := run([]string{"demo", "-out", pad, "-patients", "1",
		"-serve", "127.0.0.1:0", "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	s := obs.ActiveServer()
	if s == nil {
		t.Fatal("-serve left no active server")
	}
	defer s.Close()
	if !strings.Contains(out.String(), "diagnostics: "+s.URL()) {
		t.Errorf("output missing diagnostics URL: %s", out.String())
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, family := range []string{"trim_create_total", "slim_dmi_", "mark_dispatch_"} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing the %s family:\n%.2000s", family, body)
		}
	}

	// The workload-analytics endpoints: the demo build drove the full
	// stack, so the window sampler and the query-shape sketch both answer.
	if code, body := get("/debug/load"); code != http.StatusOK || !strings.Contains(body, `"windows"`) {
		t.Fatalf("/debug/load status %d:\n%s", code, body)
	}
	if code, body := get("/debug/top"); code != http.StatusOK || !strings.Contains(body, `"entries"`) {
		t.Fatalf("/debug/top status %d:\n%s", code, body)
	}
	// The demo build mutated the TRIM store and the mark manager through
	// their tracked locks, so the contention endpoint lists both by name.
	if code, body := get("/debug/contention"); code != http.StatusOK ||
		!strings.Contains(body, `"`+obs.LockTrimStore+`"`) ||
		!strings.Contains(body, `"`+obs.LockMarkManager+`"`) {
		t.Fatalf("/debug/contention status %d:\n%s", code, body)
	}

	// The pad's RegisterHealth also registered the store as a space source,
	// so /debug/space reports the runtime classes plus the trim.store deep
	// report.
	if code, body := get("/debug/space"); code != http.StatusOK ||
		!strings.Contains(body, `"runtime"`) ||
		!strings.Contains(body, `"`+obs.SpaceSourceTrimStore+`"`) ||
		!strings.Contains(body, `"duplication_ratio"`) {
		t.Fatalf("/debug/space status %d:\n%s", code, body)
	}
	// obs.space flips /healthz while the in-use heap exceeds the budget.
	prevBudget := obs.SetMemBudget(1)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "fail "+obs.HealthObsSpace) {
		obs.SetMemBudget(prevBudget)
		t.Fatalf("/healthz under mem budget: status %d:\n%s", code, body)
	}
	obs.SetMemBudget(prevBudget)
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after clearing mem budget: status %d", code)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "slimpad.store") {
		t.Fatalf("/readyz status %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "slimpad.persist") {
		t.Fatalf("/healthz status %d:\n%s", code, body)
	}

	prev := trim.SetPersistFault(func(stage trim.PersistStage, _ string) error {
		if stage == trim.StageTempWrite {
			return errors.New("injected: disk full")
		}
		return nil
	})
	defer trim.SetPersistFault(prev)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "fail slimpad.persist") {
		t.Fatalf("/healthz under fault: status %d:\n%s", code, body)
	}
	trim.SetPersistFault(prev)
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after clearing fault: status %d", code)
	}
}
