package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trim"
)

// TestBackendWALDemoRoundTrip builds the demo pad through the WAL backend
// and reads it back with every inspection command: the WAL-persisted pad
// must be indistinguishable from the XML one.
func TestBackendWALDemoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	walPad := filepath.Join(dir, "rounds.wal")
	xmlPad := filepath.Join(dir, "rounds.xml")

	var out strings.Builder
	if err := run([]string{"demo", "-out", walPad, "-backend", "wal", "-patients", "2", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") || !strings.Contains(out.String(), "3 bundles") {
		t.Fatalf("demo output = %q", out.String())
	}

	// The demo's full build lands in the snapshot via compaction, so the
	// file passes a WAL health inspection immediately.
	rep, err := trim.WALCheck(walPad)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 0 || !rep.SnapshotOK {
		t.Fatalf("demo wal unhealthy: %+v", rep)
	}

	out.Reset()
	if err := run([]string{"show", "-pad", walPad, "-backend", "wal"}, &out); err != nil {
		t.Fatal(err)
	}
	walShow := out.String()
	for _, want := range []string{`SLIMPad "Rounds"`, "-- 3 bundles, 8 scraps, 8 marks"} {
		if !strings.Contains(walShow, want) {
			t.Errorf("wal show output missing %q:\n%s", want, walShow)
		}
	}

	// Same seed through the XML backend renders identically.
	out.Reset()
	if err := run([]string{"demo", "-out", xmlPad, "-patients", "2", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"show", "-pad", xmlPad}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != walShow {
		t.Fatalf("wal and xml show diverge:\n--- wal ---\n%s--- xml ---\n%s", walShow, out.String())
	}

	out.Reset()
	if err := run([]string{"check", "-pad", walPad, "-backend", "wal"}, &out); err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "-- 0 problem(s)") {
		t.Fatalf("check output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"marks", "-pad", walPad, "-backend", "wal"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 8 mark(s)") {
		t.Fatalf("marks output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"find", "-pad", walPad, "-backend", "wal", "-q", "na"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scrap") {
		t.Fatalf("find output = %q", out.String())
	}
}

func TestBackendErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"show", "-pad", "/nonexistent.wal", "-backend", "wal"}, &out); err == nil {
		t.Error("missing wal pad accepted")
	}
	if err := run([]string{"show", "-pad", "x.wal", "-backend", "tape"}, &out); err == nil {
		t.Error("unknown backend accepted")
	}
}
