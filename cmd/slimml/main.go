// slimml works with SLIM-ML model specifications (the paper's ref [24]):
// the textual DSL from which data manipulation interfaces are generated.
//
// Usage:
//
//	slimml check  spec.slim              # parse + validate
//	slimml fmt    spec.slim              # canonical form to stdout
//	slimml encode spec.slim model.xml    # compile to an XML triple store
//	slimml decode model.xml MODEL_IRI    # store back to SLIM-ML
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/metamodel"
	"repro/internal/trim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slimml:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: slimml check|fmt SPEC, slimml encode SPEC OUT.xml, slimml decode STORE.xml MODEL_IRI")
	}
	switch args[0] {
	case "check", "fmt", "encode":
		src, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		m, err := metamodel.ParseModelSpec(string(src))
		if err != nil {
			return err
		}
		switch args[0] {
		case "check":
			fmt.Fprintf(out, "%s (%s): %d constructs, %d connectors — OK\n",
				m.ID, m.Label, len(m.Constructs()), len(m.Connectors()))
		case "fmt":
			fmt.Fprint(out, metamodel.FormatModelSpec(m))
		case "encode":
			if len(args) != 3 {
				return fmt.Errorf("encode needs SPEC and OUT.xml")
			}
			store := trim.NewManager()
			if err := metamodel.Encode(m, store); err != nil {
				return err
			}
			if err := store.SaveFile(args[2]); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s: %d triples\n", args[2], store.Len())
		}
		return nil
	case "decode":
		if len(args) != 3 {
			return fmt.Errorf("decode needs STORE.xml and MODEL_IRI")
		}
		store := trim.NewManager()
		if err := store.LoadFile(args[1]); err != nil {
			return err
		}
		m, err := metamodel.Decode(store, args[2])
		if err != nil {
			return err
		}
		fmt.Fprint(out, metamodel.FormatModelSpec(m))
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
