package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const spec = `model http://x/model "Tiny"
namespace http://x/
construct Doc
literal   Title string
connector title Doc -> Title [1..1]
`

func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "tiny.slim")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFmtEncodeDecode(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpec(t, dir)
	storePath := filepath.Join(dir, "model.xml")

	var out strings.Builder
	if err := run([]string{"check", specPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 constructs, 1 connectors — OK") {
		t.Fatalf("check output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"fmt", specPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "connector http://x/title http://x/Doc -> http://x/Title [1..1]") {
		t.Fatalf("fmt output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"encode", specPath, storePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("encode output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"decode", storePath, "http://x/model"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `model http://x/model "Tiny"`) {
		t.Fatalf("decode output = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpec(t, dir)
	bad := filepath.Join(dir, "bad.slim")
	os.WriteFile(bad, []byte("not a spec"), 0o644)
	var out strings.Builder
	cases := [][]string{
		{},
		{"check"},
		{"bogus", specPath},
		{"check", "/nonexistent"},
		{"check", bad},
		{"encode", specPath},
		{"encode", specPath, "/nodir/out.xml"},
		{"decode", "/nonexistent", "http://x/model"},
		{"decode", specPath},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
