package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSpaceCommand drives `trimq space` over the fixture store: the human
// form leads with the headline line, the JSON form carries the acceptance
// fields (total vs unique string bytes, per-index overhead, duplication
// ratio, projected interning win).
func TestSpaceCommand(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "space"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bytes/triple=", "dup=", "interning projection:", "index spo:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("space output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-store", path, "-json", "space"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Triples           int     `json:"triples"`
		TotalStringBytes  int64   `json:"total_string_bytes"`
		UniqueStringBytes int64   `json:"unique_string_bytes"`
		DuplicationRatio  float64 `json:"duplication_ratio"`
		BytesPerTriple    float64 `json:"bytes_per_triple"`
		Indexes           []struct {
			Name          string `json:"name"`
			OverheadBytes int64  `json:"overhead_bytes"`
		} `json:"indexes"`
		Interning struct {
			ProjectedBytes int64   `json:"projected_bytes"`
			SavedBytes     int64   `json:"saved_bytes"`
			Factor         float64 `json:"factor"`
		} `json:"interning"`
		Probes []json.RawMessage `json:"probes"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("space -json not JSON: %v\n%s", err, out.String())
	}
	if rep.Triples == 0 || rep.TotalStringBytes <= rep.UniqueStringBytes || rep.DuplicationRatio <= 1 {
		t.Fatalf("space report = %+v", rep)
	}
	if len(rep.Indexes) != 3 || rep.Indexes[0].OverheadBytes == 0 {
		t.Fatalf("index overhead missing: %+v", rep.Indexes)
	}
	if rep.Interning.ProjectedBytes == 0 || rep.Interning.SavedBytes <= 0 || rep.Interning.Factor <= 1 {
		t.Fatalf("interning projection = %+v", rep.Interning)
	}
	if len(rep.Probes) != 0 {
		t.Fatalf("probes present without -probe: %d", len(rep.Probes))
	}
}

// TestSpaceProbe: -probe appends the eight alloc-per-op measurements.
func TestSpaceProbe(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-json", "-probe", "-probe-iters", "5", "space"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Probes []struct {
			Op          string  `json:"op"`
			Iters       int     `json:"iters"`
			AllocsPerOp float64 `json:"allocs_per_op"`
			NsPerOp     float64 `json:"ns_per_op"`
		} `json:"probes"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("space -probe -json not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Probes) != 8 {
		t.Fatalf("got %d probes, want 8: %+v", len(rep.Probes), rep.Probes)
	}
	for _, p := range rep.Probes {
		if p.Iters != 5 || p.NsPerOp <= 0 {
			t.Errorf("probe %+v", p)
		}
	}
}

// TestSpaceMinDupGate: the -min-dup floor exits non-zero only when the
// store's duplication ratio is below it.
func TestSpaceMinDupGate(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-min-dup", "1.01", "space"}, &out); err != nil {
		t.Fatalf("fixture store should clear a 1.01 floor: %v", err)
	}
	out.Reset()
	err := run([]string{"-store", path, "-min-dup", "1000", "space"}, &out)
	if err == nil || !strings.Contains(err.Error(), "below the -min-dup floor") {
		t.Fatalf("impossible floor: err = %v", err)
	}
}
