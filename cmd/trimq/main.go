// trimq is a query tool over persisted SLIM stores (XML triple files, or
// N-Triples with -nt). It exposes TRIM's three read capabilities from §4.4:
// selection queries, reachability views, and statistics, plus model listing
// and per-query EXPLAIN reports.
//
// Usage:
//
//	trimq -store pad.xml stats
//	trimq -store pad.xml -json stats
//	trimq -store pad.xml space
//	trimq -store pad.xml -json -probe space
//	trimq -store pad.xml -min-dup 1.2 space
//	trimq -store pad.xml select '?' rdf:type pad:Bundle
//	trimq -store pad.xml explain select '?' rdf:type pad:Bundle
//	trimq -store pad.xml explain view inst:Bundle-000001
//	trimq -store pad.xml view inst:Bundle-000001
//	trimq -store pad.xml models
//	trimq -store pad.xml -serve :9090 stats
//	trimq -store pad.xml trace select '?' rdf:type pad:Bundle
//	trimq -store pad.xml -perfetto trace.json trace view inst:Bundle-000001
//	trimq -store pad.xml -workload queries.txt top
//	trimq -store pad.xml -workload queries.txt -k 5 -json top
//	trimq -store pad.wal -backend wal stats
//	trimq -store pad.wal -backend wal walcheck
//	trimq -store pad.xml -out pad.jsonl export
//	trimq -store pad.xml import pad.jsonl
//
// -backend selects the durability backend the store file uses
// (docs/ROBUSTNESS.md "Durability backends"): xml (default, the
// paper-fidelity snapshot), wal (CRC-framed write-ahead log with snapshot
// compaction and torn-tail recovery), or jsonl (JSON Lines). export writes
// the store as JSON Lines to -out (or stdout); import replaces the store
// with a JSONL file's triples and persists it through the selected
// backend. walcheck inspects a WAL read-only — tail integrity, record
// count, snapshot usability — and exits non-zero on a torn tail, so
// scripts can gate on it. space runs the deep space accountant (total vs
// unique string bytes, per-index overhead, duplication ratio, projected
// interning win); -probe adds benchmark-style allocs/op and B/op probes
// over the heavy-hitter query shapes, and -min-dup exits non-zero when
// the duplication ratio falls below the floor, so scripts can gate on
// that too.
//
// Query terms are '?' (wildcard), a prefix:local qualified name, a full IRI,
// or a "quoted string" literal. explain runs the query and reports the
// planner's index choice, candidates scanned, matches, and wall time
// instead of the result rows. trace runs the query under a causal trace
// root and prints the reassembled span tree (the store-layer spans carry
// their EXPLAIN plan lines); -perfetto also saves the trace as Chrome
// trace-event JSON for ui.perfetto.dev. top replays the -workload file
// (one select/view/path query per line, # comments allowed) against the
// store and prints the heavy-hitter query-shape sketch — the same ranking
// a served store exposes at /debug/top (docs/OBSERVABILITY.md).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/metamodel"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trimq:", err)
		os.Exit(1)
	}
	if s := obs.ActiveServer(); s != nil {
		fmt.Fprintf(os.Stderr, "trimq: serving diagnostics at %s (interrupt to exit)\n", s.URL())
		obs.AwaitInterrupt(context.Background())
		s.Close()
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trimq", flag.ContinueOnError)
	store := fs.String("store", "", "path to a persisted store (XML triple file)")
	backend := fs.String("backend", trim.BackendXML,
		"durability backend for -store: "+strings.Join(trim.BackendKinds(), "|"))
	nt := fs.Bool("nt", false, "store file is N-Triples instead of XML")
	outFile := fs.String("out", "", "with export: write to `file` (atomic) instead of stdout")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (stats, explain, trace, top)")
	perfetto := fs.String("perfetto", "", "with trace: also save the trace as Chrome trace-event JSON to `file`")
	workload := fs.String("workload", "", "with top: replay this query `file` (one select/view/path per line) before ranking")
	topK := fs.Int("k", 20, "with top: list at most this many query shapes")
	probe := fs.Bool("probe", false, "with space: measure allocs/op and B/op for the heavy-hitter query shapes")
	probeIters := fs.Int("probe-iters", 100, "with space -probe: iterations per query shape")
	minDup := fs.Float64("min-dup", 0, "with space: exit non-zero when the duplication ratio is below `ratio` (0 disables)")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("-store is required")
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a command: stats | space | select S P O | explain select|view|path ... | trace select|view|path ... | view RESOURCE | path START PRED... | top | models | export | import FILE | walcheck")
	}
	if err := cli.Start(); err != nil {
		return err
	}
	err := execute(*store, *backend, *nt, *jsonOut, *perfetto, *workload, *outFile, *topK, *probe, *probeIters, *minDup, rest, out)
	if ferr := cli.Finish(out); err == nil {
		err = ferr
	}
	return err
}

func execute(store, backendKind string, nt bool, jsonOut bool, perfetto, workload, outFile string, topK int, probe bool, probeIters int, minDup float64, rest []string, out io.Writer) error {
	// walcheck never loads the store: it inspects the WAL file read-only, so
	// it is safe to run against a live or damaged store.
	if rest[0] == "walcheck" {
		rep, err := trim.WALCheck(store)
		if err != nil {
			return err
		}
		if jsonOut {
			if err := obs.EncodeJSON(out, rep); err != nil {
				return err
			}
		} else {
			fmt.Fprintln(out, rep)
		}
		if rep.TornBytes > 0 {
			return fmt.Errorf("wal %s has a torn tail (%d byte(s)); recovery will truncate it", store, rep.TornBytes)
		}
		if !rep.SnapshotOK {
			return fmt.Errorf("wal snapshot %s is unusable: %s", rep.SnapshotPath, rep.SnapshotErr)
		}
		return nil
	}

	m := trim.NewManager()
	var b trim.Backend
	if nt {
		if err := m.LoadNTriples(store); err != nil {
			return err
		}
	} else {
		var err error
		b, err = trim.OpenBackend(backendKind, m, store)
		if err != nil {
			return err
		}
		defer b.Close()
		// The WAL backend recovers (snapshot + replay) on open; the snapshot
		// backends load explicitly. import replaces the contents anyway.
		if b.Kind() != trim.BackendWAL && rest[0] != "import" {
			if err := b.Load(); err != nil {
				return err
			}
		}
	}
	// Health probes for -serve: the store is ready once loaded, healthy
	// while its file's directory stays writable (and, with -backend wal,
	// while the log tail and snapshot verify).
	obs.DefaultReady.Register(obs.HealthTrimStore, m.LoadedCheck())
	obs.DefaultHealth.Register(obs.HealthTrimPersist, trim.WritableCheck(store))
	if ws, ok := b.(*trim.WALStore); ok {
		obs.DefaultHealth.Register(obs.HealthTrimWAL, ws.HealthCheck())
	}
	// /debug/space renders the store's deep space report next to the
	// runtime's memory classes when -serve is on.
	obs.RegisterSpaceSource(obs.SpaceSourceTrimStore, func() any { return m.Space() })
	pm := rdf.NewPrefixMap()

	switch rest[0] {
	case "export":
		w := out
		if outFile != "" {
			// Reuse the store's atomic write path so a crash mid-export
			// never leaves a truncated file.
			if err := m.SaveJSONL(outFile); err != nil {
				return err
			}
			fmt.Fprintf(out, "exported %d triple(s) to %s\n", m.Len(), outFile)
			return nil
		}
		return m.ExportJSONL(w)
	case "import":
		if len(rest) != 2 {
			return fmt.Errorf("import needs exactly 1 JSONL file")
		}
		if b == nil {
			return fmt.Errorf("import cannot target an -nt store (pick -backend %s)",
				strings.Join(trim.BackendKinds(), "|"))
		}
		f, err := os.Open(rest[1])
		if err != nil {
			return err
		}
		ierr := m.ImportJSONL(f)
		f.Close()
		if ierr != nil {
			return ierr
		}
		// Bulk replacement bypasses the WAL's mutation capture, so the WAL
		// backend re-anchors with a full snapshot compaction; the snapshot
		// backends just save.
		if ws, ok := b.(*trim.WALStore); ok {
			err = ws.Compact()
		} else {
			err = b.Save()
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "imported %d triple(s) from %s into %s (%s backend)\n",
			m.Len(), rest[1], store, b.Kind())
		return nil
	case "stats":
		if jsonOut {
			return obs.EncodeJSON(out, m.Stats())
		}
		fmt.Fprintln(out, m.Stats())
		return nil
	case "space":
		return space(m, jsonOut, probe, probeIters, minDup, out)
	case "explain":
		return explain(m, pm, jsonOut, rest[1:], out)
	case "trace":
		return traceQuery(m, pm, jsonOut, perfetto, rest[1:], out)
	case "top":
		return topShapes(m, pm, jsonOut, workload, topK, out)
	case "models":
		for _, id := range metamodel.ListModels(m) {
			model, err := metamodel.Decode(m, id)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s (%s): %d constructs, %d connectors\n",
				pm.Shrink(id), model.Label, len(model.Constructs()), len(model.Connectors()))
		}
		return nil
	case "select":
		if len(rest) != 4 {
			return fmt.Errorf("select needs exactly 3 terms (use '?' for wildcards)")
		}
		pat := rdf.Pattern{}
		terms := []*rdf.Term{&pat.Subject, &pat.Predicate, &pat.Object}
		for i, arg := range rest[1:] {
			t, err := parseTerm(pm, arg)
			if err != nil {
				return fmt.Errorf("term %d: %w", i+1, err)
			}
			*terms[i] = t
		}
		results := m.Select(pat)
		for _, t := range results {
			fmt.Fprintf(out, "%s %s %s\n", pm.ShrinkTerm(t.Subject), pm.ShrinkTerm(t.Predicate), pm.ShrinkTerm(t.Object))
		}
		fmt.Fprintf(out, "-- %d triple(s)\n", len(results))
		return nil
	case "view":
		if len(rest) != 2 {
			return fmt.Errorf("view needs exactly 1 resource")
		}
		root, err := parseTerm(pm, rest[1])
		if err != nil {
			return err
		}
		g := m.View(root)
		for _, t := range g.All() {
			fmt.Fprintf(out, "%s %s %s\n", pm.ShrinkTerm(t.Subject), pm.ShrinkTerm(t.Predicate), pm.ShrinkTerm(t.Object))
		}
		fmt.Fprintf(out, "-- view of %s: %d triple(s)\n", pm.ShrinkTerm(root), g.Len())
		return nil
	case "path":
		if len(rest) < 3 {
			return fmt.Errorf("path needs a start resource and at least 1 predicate")
		}
		start, err := parseTerm(pm, rest[1])
		if err != nil {
			return err
		}
		preds := make([]rdf.Term, 0, len(rest)-2)
		for _, arg := range rest[2:] {
			p, err := parseTerm(pm, arg)
			if err != nil {
				return err
			}
			preds = append(preds, p)
		}
		results := m.Path([]rdf.Term{start}, preds...)
		for _, t := range results {
			fmt.Fprintln(out, pm.ShrinkTerm(t))
		}
		fmt.Fprintf(out, "-- %d result(s)\n", len(results))
		return nil
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// space runs the deep space accountant (docs/OBSERVABILITY.md "Space
// accounting & alloc probes") and optionally the alloc-per-op probes.
// With -min-dup it exits non-zero when the duplication ratio falls below
// the floor, so scripts can gate on the accountant seeing real sharing.
func space(m *trim.Manager, jsonOut, probe bool, probeIters int, minDup float64, out io.Writer) error {
	sp := m.Space()
	var probes []trim.ProbeResult
	if probe {
		probes = m.ProbeAllocs(context.Background(), probeIters)
	}
	if jsonOut {
		if err := obs.EncodeJSON(out, struct {
			trim.SpaceStats
			Probes []trim.ProbeResult `json:"probes,omitempty"`
		}{sp, probes}); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, sp)
		fmt.Fprintf(out, "strings: subject %d/%d unique (%d of %d bytes), predicate %d/%d (%d of %d), object %d/%d (%d of %d)\n",
			sp.Subject.Unique, sp.Subject.Refs, sp.Subject.UniqueBytes, sp.Subject.TotalBytes,
			sp.Predicate.Unique, sp.Predicate.Refs, sp.Predicate.UniqueBytes, sp.Predicate.TotalBytes,
			sp.Object.Unique, sp.Object.Refs, sp.Object.UniqueBytes, sp.Object.TotalBytes)
		for _, ix := range sp.Indexes {
			fmt.Fprintf(out, "index %s: %d bucket(s), %d entrie(s), ~%d overhead byte(s)\n",
				ix.Name, ix.Buckets, ix.Entries, ix.OverheadBytes)
		}
		for i, ps := range sp.Predicates {
			if i == 10 {
				fmt.Fprintf(out, "... %d more predicate(s)\n", len(sp.Predicates)-i)
				break
			}
			fmt.Fprintf(out, "predicate %-40s %6d triple(s) %10d byte(s) %5.1f%%\n",
				ps.Predicate, ps.Triples, ps.TotalBytes, 100*ps.Share)
		}
		fmt.Fprintf(out, "interning projection: dict=%d triples=%d indexes=%d -> %d byte(s), saves %d (%.1fx smaller)\n",
			sp.Interning.DictionaryBytes, sp.Interning.TripleBytes, sp.Interning.IndexBytes,
			sp.Interning.ProjectedBytes, sp.Interning.SavedBytes, sp.Interning.Factor)
		for _, p := range probes {
			fmt.Fprintln(out, p)
		}
	}
	if minDup > 0 && sp.DuplicationRatio < minDup {
		return fmt.Errorf("duplication ratio %.3f is below the -min-dup floor %.3f", sp.DuplicationRatio, minDup)
	}
	return nil
}

// explain runs a select, view, or path query through the EXPLAIN variants
// and prints the execution report instead of the result rows.
func explain(m *trim.Manager, pm *rdf.PrefixMap, jsonOut bool, rest []string, out io.Writer) error {
	if len(rest) == 0 {
		return fmt.Errorf("explain needs a query: explain select S P O | explain view RESOURCE | explain path START PRED...")
	}
	var e trim.Explain
	switch rest[0] {
	case "select":
		if len(rest) != 4 {
			return fmt.Errorf("explain select needs exactly 3 terms (use '?' for wildcards)")
		}
		pat := rdf.Pattern{}
		terms := []*rdf.Term{&pat.Subject, &pat.Predicate, &pat.Object}
		for i, arg := range rest[1:] {
			t, err := parseTerm(pm, arg)
			if err != nil {
				return fmt.Errorf("term %d: %w", i+1, err)
			}
			*terms[i] = t
		}
		_, e = m.SelectExplain(pat)
	case "view":
		if len(rest) != 2 {
			return fmt.Errorf("explain view needs exactly 1 resource")
		}
		root, err := parseTerm(pm, rest[1])
		if err != nil {
			return err
		}
		_, e = m.ViewExplain(root)
	case "path":
		if len(rest) < 3 {
			return fmt.Errorf("explain path needs a start resource and at least 1 predicate")
		}
		start, err := parseTerm(pm, rest[1])
		if err != nil {
			return err
		}
		preds := make([]rdf.Term, 0, len(rest)-2)
		for _, arg := range rest[2:] {
			p, err := parseTerm(pm, arg)
			if err != nil {
				return err
			}
			preds = append(preds, p)
		}
		_, e = m.PathExplain([]rdf.Term{start}, preds...)
	default:
		return fmt.Errorf("explain does not support %q (want select, view, or path)", rest[0])
	}
	if jsonOut {
		return obs.EncodeJSON(out, e)
	}
	fmt.Fprintln(out, e)
	return nil
}

// traceQuery runs a select, view, or path query under a fresh trace root
// and prints the reassembled span tree — the end-to-end walkthrough of
// docs/OBSERVABILITY.md in one command. With a perfetto path the trace is
// also saved as Chrome trace-event JSON.
func traceQuery(m *trim.Manager, pm *rdf.PrefixMap, jsonOut bool, perfetto string, rest []string, out io.Writer) error {
	if len(rest) == 0 {
		return fmt.Errorf("trace needs a query: trace select S P O | trace view RESOURCE | trace path START PRED...")
	}
	id, err := runTraced(m, pm, rest)
	if err != nil {
		return err
	}
	ops := obs.DefaultTracer.TraceOps(id)
	if len(ops) == 0 {
		return fmt.Errorf("trace %s recorded no spans (tracer disabled or sampled out)", id)
	}
	if perfetto != "" {
		f, err := os.Create(perfetto)
		if err != nil {
			return err
		}
		werr := obs.WriteTraceEvents(f, ops)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(out, "wrote %d trace event(s) to %s\n", len(ops), perfetto)
	}
	if jsonOut {
		return obs.EncodeJSON(out, obs.DefaultTracer.Trace(id))
	}
	return obs.DefaultTracer.Trace(id).WriteText(out)
}

// topShapes is the heavy-hitter profiler CLI: it optionally replays a
// workload file through the store's instrumented query paths, then prints
// the process-wide query-shape sketch ranked by count. The sketch is keyed
// by shape (op kind, bound-position mask, index choice, predicate), so a
// thousand selects over the same pattern collapse into one ranked row.
func topShapes(m *trim.Manager, pm *rdf.PrefixMap, jsonOut bool, workload string, k int, out io.Writer) error {
	if workload != "" {
		if err := replayWorkload(m, pm, workload); err != nil {
			return err
		}
	}
	if jsonOut {
		return obs.EncodeJSON(out, obs.DefaultTopQueries)
	}
	entries := obs.DefaultTopQueries.Top(k)
	for i, e := range entries {
		fmt.Fprintf(out, "%3d  %8d  ±%-5d  %s\n", i+1, e.Count, e.ErrBound, e.Key)
	}
	fmt.Fprintf(out, "-- %d shape(s), %d op(s) recorded, %d evicted\n",
		len(entries), obs.DefaultTopQueries.Recorded(), obs.DefaultTopQueries.Evicted())
	return nil
}

// replayWorkload runs every query in the file against the store. Lines use
// the same syntax as the CLI commands (select S P O | view RESOURCE |
// path START PRED...); blank lines and # comments are skipped. Results
// are discarded — only the recorded shapes matter.
func replayWorkload(m *trim.Manager, pm *rdf.PrefixMap, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := replayQuery(m, pm, strings.Fields(text)); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	return sc.Err()
}

// replayQuery executes one workload line through the instrumented
// Select/View/Path entry points.
func replayQuery(m *trim.Manager, pm *rdf.PrefixMap, fields []string) error {
	switch fields[0] {
	case "select":
		if len(fields) != 4 {
			return fmt.Errorf("select needs exactly 3 terms (use '?' for wildcards)")
		}
		pat := rdf.Pattern{}
		terms := []*rdf.Term{&pat.Subject, &pat.Predicate, &pat.Object}
		for i, arg := range fields[1:] {
			t, err := parseTerm(pm, arg)
			if err != nil {
				return fmt.Errorf("term %d: %w", i+1, err)
			}
			*terms[i] = t
		}
		m.Select(pat)
	case "view":
		if len(fields) != 2 {
			return fmt.Errorf("view needs exactly 1 resource")
		}
		root, err := parseTerm(pm, fields[1])
		if err != nil {
			return err
		}
		m.View(root)
	case "path":
		if len(fields) < 3 {
			return fmt.Errorf("path needs a start resource and at least 1 predicate")
		}
		start, err := parseTerm(pm, fields[1])
		if err != nil {
			return err
		}
		preds := make([]rdf.Term, 0, len(fields)-2)
		for _, arg := range fields[2:] {
			p, err := parseTerm(pm, arg)
			if err != nil {
				return err
			}
			preds = append(preds, p)
		}
		m.Path([]rdf.Term{start}, preds...)
	default:
		return fmt.Errorf("workload line must start with select, view, or path (got %q)", fields[0])
	}
	return nil
}

// runTraced executes the query under a root span and returns its trace id.
func runTraced(m *trim.Manager, pm *rdf.PrefixMap, rest []string) (id obs.TraceID, err error) {
	ctx, sp := obs.StartCtx(context.Background(), "trimq.trace", strings.Join(rest, " "))
	defer func() { sp.FinishErr(err) }()
	id = sp.TraceID()
	switch rest[0] {
	case "select":
		if len(rest) != 4 {
			return id, fmt.Errorf("trace select needs exactly 3 terms (use '?' for wildcards)")
		}
		pat := rdf.Pattern{}
		terms := []*rdf.Term{&pat.Subject, &pat.Predicate, &pat.Object}
		for i, arg := range rest[1:] {
			t, err := parseTerm(pm, arg)
			if err != nil {
				return id, fmt.Errorf("term %d: %w", i+1, err)
			}
			*terms[i] = t
		}
		m.SelectExplainCtx(ctx, pat)
	case "view":
		if len(rest) != 2 {
			return id, fmt.Errorf("trace view needs exactly 1 resource")
		}
		root, err := parseTerm(pm, rest[1])
		if err != nil {
			return id, err
		}
		m.ViewExplainCtx(ctx, root)
	case "path":
		if len(rest) < 3 {
			return id, fmt.Errorf("trace path needs a start resource and at least 1 predicate")
		}
		start, err := parseTerm(pm, rest[1])
		if err != nil {
			return id, err
		}
		preds := make([]rdf.Term, 0, len(rest)-2)
		for _, arg := range rest[2:] {
			p, err := parseTerm(pm, arg)
			if err != nil {
				return id, err
			}
			preds = append(preds, p)
		}
		m.PathExplainCtx(ctx, []rdf.Term{start}, preds...)
	default:
		return id, fmt.Errorf("trace does not support %q (want select, view, or path)", rest[0])
	}
	return id, nil
}

func parseTerm(pm *rdf.PrefixMap, arg string) (rdf.Term, error) {
	switch {
	case arg == "?":
		return rdf.Zero, nil
	case strings.HasPrefix(arg, `"`) && strings.HasSuffix(arg, `"`) && len(arg) >= 2:
		return rdf.String(arg[1 : len(arg)-1]), nil
	case strings.HasPrefix(arg, "_:"):
		return rdf.Blank(arg[2:]), nil
	default:
		iri, err := pm.Expand(arg)
		if err != nil {
			return rdf.Zero, err
		}
		return rdf.IRI(iri), nil
	}
}
