package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trim"
)

func scrape(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStatsJSON(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-json", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Triples    int `json:"triples"`
		IndexSPO   int `json:"index_spo"`
		Generation int `json:"generation"`
	}
	if err := json.Unmarshal([]byte(out.String()), &stats); err != nil {
		t.Fatalf("stats -json not JSON: %v\n%s", err, out.String())
	}
	if stats.Triples == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestExplainSelect(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "explain", "select", "?", "?", "?"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"op=select", "index=scan", "candidates=", "matched=", "wall="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explain output missing %q: %s", want, out.String())
		}
	}

	// A bound subject must report an indexed plan, not a scan.
	out.Reset()
	if err := run([]string{"-store", path, "explain", "select", "inst:Bundle-000001", "?", "?"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "index=subject") {
		t.Fatalf("bound-subject explain chose: %s", out.String())
	}
}

func TestExplainJSON(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-json", "explain", "select", "?", "rdf:type", "pad:Bundle"}, &out); err != nil {
		t.Fatal(err)
	}
	var e struct {
		Op         string `json:"op"`
		Index      string `json:"index"`
		Candidates int    `json:"candidates"`
		Matched    int    `json:"matched"`
		StoreSize  int    `json:"store_size"`
	}
	if err := json.Unmarshal([]byte(out.String()), &e); err != nil {
		t.Fatalf("explain -json not JSON: %v\n%s", err, out.String())
	}
	if e.Op != "select" || e.Index == "" || e.Matched != 2 || e.Candidates < e.Matched {
		t.Fatalf("explain = %+v", e)
	}
}

func TestExplainViewAndPath(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "explain", "view", "inst:Bundle-000001"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "op=view") {
		t.Fatalf("explain view: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"-store", path, "explain", "path", "inst:Bundle-000001", "pad:nestedBundle"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "op=path") || !strings.Contains(out.String(), "matched=1") {
		t.Fatalf("explain path: %s", out.String())
	}
}

func TestExplainErrors(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	for _, args := range [][]string{
		{"-store", path, "explain"},
		{"-store", path, "explain", "select", "?"},
		{"-store", path, "explain", "view"},
		{"-store", path, "explain", "path", "inst:Bundle-000001"},
		{"-store", path, "explain", "stats"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestServeWithMetrics is the -serve + -metrics flag combination: the
// command runs, the diagnostics server stays up for scraping, /metrics
// exposes the trim family, readiness reflects the loaded store, and an
// injected persistence fault flips /healthz to 503.
func TestServeWithMetrics(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-serve", "127.0.0.1:0", "-metrics", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	s := obs.ActiveServer()
	if s == nil {
		t.Fatal("-serve left no active server")
	}
	t.Cleanup(func() { s.Close() })
	if !strings.Contains(out.String(), "diagnostics: "+s.URL()) {
		t.Errorf("output missing diagnostics URL: %s", out.String())
	}
	// -metrics still prints the text dump alongside -serve.
	if !strings.Contains(out.String(), "counter trim.load.triples") {
		t.Errorf("-metrics dump missing: %s", out.String())
	}

	code, body := scrape(t, s.URL(), "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "trim_load_triples") {
		t.Fatalf("/metrics status %d:\n%s", code, body)
	}
	if code, body := scrape(t, s.URL(), "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz status %d:\n%s", code, body)
	}
	if code, body := scrape(t, s.URL(), "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d:\n%s", code, body)
	}

	// The workload-analytics endpoints: /debug/load reports the window
	// sampler -serve started, /debug/top the query-shape sketch.
	code, body = scrape(t, s.URL(), "/debug/load")
	if code != http.StatusOK {
		t.Fatalf("/debug/load status %d:\n%s", code, body)
	}
	var load struct {
		Running bool `json:"running"`
		Samples int  `json:"samples"`
		Windows map[string]struct {
			WindowNS int64 `json:"window_ns"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &load); err != nil {
		t.Fatalf("/debug/load not JSON: %v\n%s", err, body)
	}
	if !load.Running || load.Samples < 1 || len(load.Windows) != 2 {
		t.Fatalf("/debug/load = %+v", load)
	}
	code, body = scrape(t, s.URL(), "/debug/top")
	if code != http.StatusOK || !strings.Contains(body, `"capacity"`) {
		t.Fatalf("/debug/top status %d:\n%s", code, body)
	}
	// The contention endpoint: the tracked store lock records every
	// acquisition (uncontended ones observe a zero wait), so after loading
	// a store the trim.store wait histogram is never empty.
	code, body = scrape(t, s.URL(), "/debug/contention")
	if code != http.StatusOK {
		t.Fatalf("/debug/contention status %d:\n%s", code, body)
	}
	var cont struct {
		Locks []struct {
			Name  string `json:"name"`
			Write struct {
				Total       int64 `json:"total"`
				WaitSamples int64 `json:"wait_samples"`
			} `json:"write"`
		} `json:"locks"`
	}
	if err := json.Unmarshal([]byte(body), &cont); err != nil {
		t.Fatalf("/debug/contention not JSON: %v\n%s", err, body)
	}
	foundStoreLock := false
	for _, l := range cont.Locks {
		if l.Name == obs.LockTrimStore && l.Write.Total > 0 && l.Write.WaitSamples > 0 {
			foundStoreLock = true
		}
	}
	if !foundStoreLock {
		t.Fatalf("/debug/contention has no active %s entry:\n%s", obs.LockTrimStore, body)
	}
	// The `_rate` companion families ride the same scrape as the
	// cumulative series.
	if code, body := scrape(t, s.URL(), "/metrics"); code != http.StatusOK || !strings.Contains(body, "trim_load_triples_rate1m") {
		t.Fatalf("/metrics missing rate families (status %d):\n%.2000s", code, body)
	}

	// The space endpoint: the runtime memory classes plus the trim store's
	// deep report under the source name the command registered.
	code, body = scrape(t, s.URL(), "/debug/space")
	if code != http.StatusOK {
		t.Fatalf("/debug/space status %d:\n%s", code, body)
	}
	var space struct {
		Runtime struct {
			HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
		} `json:"runtime"`
		Sources map[string]struct {
			Triples          int     `json:"triples"`
			DuplicationRatio float64 `json:"duplication_ratio"`
			BytesPerTriple   float64 `json:"bytes_per_triple"`
		} `json:"sources"`
	}
	if err := json.Unmarshal([]byte(body), &space); err != nil {
		t.Fatalf("/debug/space not JSON: %v\n%s", err, body)
	}
	if space.Runtime.HeapInuseBytes == 0 {
		t.Fatalf("/debug/space runtime snapshot empty:\n%s", body)
	}
	st := space.Sources[obs.SpaceSourceTrimStore]
	if st.Triples == 0 || st.DuplicationRatio <= 1 || st.BytesPerTriple <= 0 {
		t.Fatalf("/debug/space %s report = %+v:\n%s", obs.SpaceSourceTrimStore, st, body)
	}
	// The obs.space health flip: a 1-byte heap budget degrades /healthz,
	// clearing it restores 200.
	prevBudget := obs.SetMemBudget(1)
	code, body = scrape(t, s.URL(), "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "fail "+obs.HealthObsSpace) {
		obs.SetMemBudget(prevBudget)
		t.Fatalf("/healthz under mem budget: status %d:\n%s", code, body)
	}
	obs.SetMemBudget(prevBudget)
	if code, _ := scrape(t, s.URL(), "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after clearing mem budget: status %d", code)
	}

	// The acceptance path: a staged persistence fault flips liveness.
	prev := trim.SetPersistFault(func(stage trim.PersistStage, _ string) error {
		if stage == trim.StageTempWrite {
			return errors.New("injected: device gone")
		}
		return nil
	})
	defer trim.SetPersistFault(prev)
	code, body = scrape(t, s.URL(), "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "fail trim.persist") {
		t.Fatalf("/healthz under fault: status %d:\n%s", code, body)
	}
	trim.SetPersistFault(prev)
	if code, _ := scrape(t, s.URL(), "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after clearing fault: status %d", code)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if obs.ActiveServer() != nil {
		t.Fatal("Close did not release the server slot")
	}
	// A later command can claim the slot again.
	out.Reset()
	if err := run([]string{"-store", path, "-serve", "127.0.0.1:0", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if s2 := obs.ActiveServer(); s2 == nil {
		t.Fatal("second -serve run left no active server")
	} else {
		s2.Close()
	}
}
