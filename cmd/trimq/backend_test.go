package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := storeFile(t)
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "dump.jsonl")

	var out strings.Builder
	if err := run([]string{"-store", src, "-out", jsonl, "export"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exported") || !strings.Contains(out.String(), jsonl) {
		t.Fatalf("export output = %q", out.String())
	}

	// The destination does not exist yet; import creates it.
	dst := filepath.Join(dir, "copy.xml")
	out.Reset()
	if err := run([]string{"-store", dst, "import", jsonl}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(xml backend)") {
		t.Fatalf("import output = %q", out.String())
	}

	// Source and copy report identical stats.
	var srcStats, dstStats strings.Builder
	if err := run([]string{"-store", src, "stats"}, &srcStats); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-store", dst, "stats"}, &dstStats); err != nil {
		t.Fatal(err)
	}
	if srcStats.String() != dstStats.String() {
		t.Fatalf("stats diverge after round trip:\n%s\n%s", srcStats.String(), dstStats.String())
	}
}

func TestExportToStdout(t *testing.T) {
	src := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", src, "export"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := rdf.ReadJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("export stream is not valid JSONL: %v", err)
	}
	if g.Len() == 0 {
		t.Fatal("export stream is empty")
	}
}

func TestBackendWALRoundTrip(t *testing.T) {
	src := storeFile(t)
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "dump.jsonl")
	walPath := filepath.Join(dir, "store.wal")

	var out strings.Builder
	if err := run([]string{"-store", src, "-out", jsonl, "export"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-store", walPath, "-backend", "wal", "import", jsonl}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(wal backend)") {
		t.Fatalf("import output = %q", out.String())
	}

	// The WAL store answers queries like the XML original.
	var srcStats, walStats strings.Builder
	if err := run([]string{"-store", src, "stats"}, &srcStats); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-store", walPath, "-backend", "wal", "stats"}, &walStats); err != nil {
		t.Fatal(err)
	}
	if srcStats.String() != walStats.String() {
		t.Fatalf("wal stats diverge:\n%s\n%s", srcStats.String(), walStats.String())
	}
	out.Reset()
	if err := run([]string{"-store", walPath, "-backend", "wal", "select", "?", "rdf:type", "pad:Bundle"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 2 triple(s)") {
		t.Fatalf("wal select output = %q", out.String())
	}

	// walcheck passes: intact tail, usable snapshot.
	out.Reset()
	if err := run([]string{"-store", walPath, "walcheck"}, &out); err != nil {
		t.Fatalf("walcheck on healthy store: %v", err)
	}
	if !strings.Contains(out.String(), "tail intact") || !strings.Contains(out.String(), "snapshot") {
		t.Fatalf("walcheck output = %q", out.String())
	}
}

func TestWalcheckTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")
	m := trim.NewManager()
	ws, err := trim.OpenWAL(m, path, trim.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m.Create(rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.String("v")))
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial frame that recovery would truncate.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	err = run([]string{"-store", path, "walcheck"}, &out)
	if err == nil || !strings.Contains(err.Error(), "torn tail") {
		t.Fatalf("walcheck on torn log = %v", err)
	}
	if !strings.Contains(out.String(), "TORN TAIL") {
		t.Fatalf("walcheck output = %q", out.String())
	}

	// -json emits the machine-readable report before the non-zero exit.
	out.Reset()
	err = run([]string{"-store", path, "-json", "walcheck"}, &out)
	if err == nil {
		t.Fatal("-json walcheck on torn log succeeded")
	}
	var rep struct {
		Records   int   `json:"records"`
		TornBytes int64 `json:"torn_bytes"`
	}
	if jerr := json.Unmarshal([]byte(out.String()), &rep); jerr != nil {
		t.Fatalf("walcheck -json not JSON: %v\n%s", jerr, out.String())
	}
	if rep.Records != 1 || rep.TornBytes != 2 {
		t.Fatalf("walcheck report = %+v, want 1 record + 2 torn bytes", rep)
	}

	// walcheck never repairs: the torn bytes are still on disk.
	if rep2, err := trim.WALCheck(path); err != nil || rep2.TornBytes != 2 {
		t.Fatalf("torn bytes were repaired by walcheck: %+v, %v", rep2, err)
	}
}

func TestBackendErrors(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-backend", "tape", "stats"}, &out); err == nil {
		t.Error("unknown backend accepted")
	}
	if err := run([]string{"-store", path, "import"}, &out); err == nil {
		t.Error("import without a file accepted")
	}
	if err := run([]string{"-store", path, "-nt", "import", "x.jsonl"}, &out); err == nil {
		t.Error("import into an -nt store accepted")
	}
	if err := run([]string{"-store", path, "import", "no-such.jsonl"}, &out); err == nil {
		t.Error("import of a missing file accepted")
	}
}
