package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metamodel"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trim"
)

func storeFile(t *testing.T) string {
	t.Helper()
	m := trim.NewManager()
	if err := metamodel.Encode(metamodel.BundleScrapModel(), m); err != nil {
		t.Fatal(err)
	}
	b1 := rdf.IRI(rdf.NSInst + "Bundle-000001")
	b2 := rdf.IRI(rdf.NSInst + "Bundle-000002")
	m.Create(rdf.T(b1, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)))
	m.Create(rdf.T(b2, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)))
	m.Create(rdf.T(b1, rdf.IRI(metamodel.ConnNestedBundle), b2))
	m.Create(rdf.T(b2, rdf.IRI(metamodel.ConnBundleName), rdf.String("inner")))
	path := filepath.Join(t.TempDir(), "store.xml")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStats(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triples=") {
		t.Fatalf("stats output = %q", out.String())
	}
}

func TestModels(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "models"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pad:model (Bundle-Scrap): 7 constructs, 11 connectors") {
		t.Fatalf("models output = %q", out.String())
	}
}

func TestSelect(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "select", "?", "rdf:type", "pad:Bundle"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 2 triple(s)") {
		t.Fatalf("select output = %q", out.String())
	}
	// Literal term.
	out.Reset()
	if err := run([]string{"-store", path, "select", "?", "pad:bundleName", `"inner"`}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 1 triple(s)") {
		t.Fatalf("literal select output = %q", out.String())
	}
}

func TestView(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "view", "inst:Bundle-000001"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "inst:Bundle-000002") {
		t.Fatalf("view output missing nested bundle:\n%s", out.String())
	}
}

func TestPathCommand(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "path", "inst:Bundle-000001", "pad:nestedBundle", "pad:bundleName"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"inner"`) || !strings.Contains(out.String(), "-- 1 result(s)") {
		t.Fatalf("path output = %q", out.String())
	}
	if err := run([]string{"-store", path, "path", "inst:Bundle-000001"}, &out); err == nil {
		t.Error("path without predicates accepted")
	}
	if err := run([]string{"-store", path, "path", "nosuch:x", "rdf:type"}, &out); err == nil {
		t.Error("bad start term accepted")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	m := trim.NewManager()
	m.Create(rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.String("v")))
	path := filepath.Join(t.TempDir(), "store.nt")
	if err := m.SaveNTriples(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-store", path, "-nt", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triples=1") {
		t.Fatalf("nt stats = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	cases := [][]string{
		{},                              // no -store
		{"-store", path},                // no command
		{"-store", path, "bogus"},       // unknown command
		{"-store", path, "select", "?"}, // wrong arity
		{"-store", path, "select", "?", "nosuchprefix:x", "?"}, // bad qname
		{"-store", path, "view"},                               // missing resource
		{"-store", "/nonexistent.xml", "stats"},                // missing file
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestParseTerm(t *testing.T) {
	pm := rdf.NewPrefixMap()
	if term, err := parseTerm(pm, "?"); err != nil || !term.IsZero() {
		t.Errorf("wildcard = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, `"lit"`); err != nil || term != rdf.String("lit") {
		t.Errorf("literal = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, "_:b1"); err != nil || term != rdf.Blank("b1") {
		t.Errorf("blank = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, "rdf:type"); err != nil || term != rdf.RDFType {
		t.Errorf("qname = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, "http://full/iri"); err != nil || term != rdf.IRI("http://full/iri") {
		t.Errorf("full iri = %v, %v", term, err)
	}
}

func TestMetricsFlag(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-metrics", "select", "?", "rdf:type", "pad:Bundle"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== obs metrics ==") {
		t.Fatalf("missing registry header:\n%s", text)
	}
	// The load counts as creates and the query as a select; both nonzero.
	for _, want := range []string{"counter trim.create.total", "counter trim.select.total", "histogram trim.select.ns"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(text, "counter trim.create.total 0\n") || strings.Contains(text, "counter trim.select.total 0\n") {
		t.Fatalf("expected nonzero create/select counters:\n%s", text)
	}
}

func TestProfileFlag(t *testing.T) {
	path := storeFile(t)
	prof := filepath.Join(t.TempDir(), "cpu.prof")
	var out strings.Builder
	if err := run([]string{"-store", path, "-profile", prof, "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(prof)
	if err != nil {
		t.Fatalf("profile not created: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file is empty")
	}
}

// TestTopWorkload: `top` replays the -workload file and ranks the
// recorded query shapes by count, with comments and blank lines skipped.
// The sketch is process-wide, so the test resets it first.
func TestTopWorkload(t *testing.T) {
	obs.DefaultTopQueries.Reset()
	path := storeFile(t)
	wl := filepath.Join(t.TempDir(), "queries.txt")
	workload := `# bundle scan, three times
select ? rdf:type pad:Bundle
select ? rdf:type pad:Bundle

select ? rdf:type pad:Bundle
view inst:Bundle-000001
path inst:Bundle-000001 pad:nestedBundle
`
	if err := os.WriteFile(wl, []byte(workload), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-store", path, "-workload", wl, "top"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if !strings.Contains(lines[0], "select ?po") || !strings.Contains(lines[0], "pred=") {
		t.Fatalf("top entry is not the repeated select:\n%s", text)
	}
	if !strings.Contains(lines[0], "       3") {
		t.Fatalf("repeated select should count 3:\n%s", text)
	}
	if !strings.Contains(text, "-- 3 shape(s), 5 op(s) recorded, 0 evicted") {
		t.Fatalf("top footer = %q", text)
	}

	// -k truncates the listing but not the footer's shape count.
	out.Reset()
	if err := run([]string{"-store", path, "-workload", wl, "-k", "1", "top"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "±"); got != 1 {
		t.Fatalf("-k 1 listed %d entries:\n%s", got, out.String())
	}
}

// TestTopJSON: -json emits the whole sketch document.
func TestTopJSON(t *testing.T) {
	obs.DefaultTopQueries.Reset()
	path := storeFile(t)
	wl := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(wl, []byte("view inst:Bundle-000001\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-store", path, "-workload", wl, "-json", "top"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int `json:"capacity"`
		Recorded int `json:"recorded"`
		Entries  []struct {
			Key   string `json:"key"`
			Count int    `json:"count"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("top -json not JSON: %v\n%s", err, out.String())
	}
	if doc.Recorded != 1 || len(doc.Entries) != 1 || doc.Entries[0].Key != "view index=subject" {
		t.Fatalf("top -json doc = %+v", doc)
	}
}

// TestTopWorkloadErrors: a missing workload file and a malformed query
// line both fail, the latter with the file:line position.
func TestTopWorkloadErrors(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-workload", "no-such-file.txt", "top"}, &out); err == nil {
		t.Fatal("missing workload file succeeded")
	}
	wl := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(wl, []byte("view inst:X\ndelete everything\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-store", path, "-workload", wl, "top"}, &out)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("bad workload err = %v, want line position", err)
	}
}
