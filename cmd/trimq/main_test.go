package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/trim"
)

func storeFile(t *testing.T) string {
	t.Helper()
	m := trim.NewManager()
	if err := metamodel.Encode(metamodel.BundleScrapModel(), m); err != nil {
		t.Fatal(err)
	}
	b1 := rdf.IRI(rdf.NSInst + "Bundle-000001")
	b2 := rdf.IRI(rdf.NSInst + "Bundle-000002")
	m.Create(rdf.T(b1, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)))
	m.Create(rdf.T(b2, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)))
	m.Create(rdf.T(b1, rdf.IRI(metamodel.ConnNestedBundle), b2))
	m.Create(rdf.T(b2, rdf.IRI(metamodel.ConnBundleName), rdf.String("inner")))
	path := filepath.Join(t.TempDir(), "store.xml")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStats(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triples=") {
		t.Fatalf("stats output = %q", out.String())
	}
}

func TestModels(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "models"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pad:model (Bundle-Scrap): 7 constructs, 11 connectors") {
		t.Fatalf("models output = %q", out.String())
	}
}

func TestSelect(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "select", "?", "rdf:type", "pad:Bundle"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 2 triple(s)") {
		t.Fatalf("select output = %q", out.String())
	}
	// Literal term.
	out.Reset()
	if err := run([]string{"-store", path, "select", "?", "pad:bundleName", `"inner"`}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 1 triple(s)") {
		t.Fatalf("literal select output = %q", out.String())
	}
}

func TestView(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "view", "inst:Bundle-000001"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "inst:Bundle-000002") {
		t.Fatalf("view output missing nested bundle:\n%s", out.String())
	}
}

func TestPathCommand(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "path", "inst:Bundle-000001", "pad:nestedBundle", "pad:bundleName"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"inner"`) || !strings.Contains(out.String(), "-- 1 result(s)") {
		t.Fatalf("path output = %q", out.String())
	}
	if err := run([]string{"-store", path, "path", "inst:Bundle-000001"}, &out); err == nil {
		t.Error("path without predicates accepted")
	}
	if err := run([]string{"-store", path, "path", "nosuch:x", "rdf:type"}, &out); err == nil {
		t.Error("bad start term accepted")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	m := trim.NewManager()
	m.Create(rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.String("v")))
	path := filepath.Join(t.TempDir(), "store.nt")
	if err := m.SaveNTriples(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-store", path, "-nt", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triples=1") {
		t.Fatalf("nt stats = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	cases := [][]string{
		{},                              // no -store
		{"-store", path},                // no command
		{"-store", path, "bogus"},       // unknown command
		{"-store", path, "select", "?"}, // wrong arity
		{"-store", path, "select", "?", "nosuchprefix:x", "?"}, // bad qname
		{"-store", path, "view"},                               // missing resource
		{"-store", "/nonexistent.xml", "stats"},                // missing file
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestParseTerm(t *testing.T) {
	pm := rdf.NewPrefixMap()
	if term, err := parseTerm(pm, "?"); err != nil || !term.IsZero() {
		t.Errorf("wildcard = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, `"lit"`); err != nil || term != rdf.String("lit") {
		t.Errorf("literal = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, "_:b1"); err != nil || term != rdf.Blank("b1") {
		t.Errorf("blank = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, "rdf:type"); err != nil || term != rdf.RDFType {
		t.Errorf("qname = %v, %v", term, err)
	}
	if term, err := parseTerm(pm, "http://full/iri"); err != nil || term != rdf.IRI("http://full/iri") {
		t.Errorf("full iri = %v, %v", term, err)
	}
}

func TestMetricsFlag(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "-metrics", "select", "?", "rdf:type", "pad:Bundle"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== obs metrics ==") {
		t.Fatalf("missing registry header:\n%s", text)
	}
	// The load counts as creates and the query as a select; both nonzero.
	for _, want := range []string{"counter trim.create.total", "counter trim.select.total", "histogram trim.select.ns"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(text, "counter trim.create.total 0\n") || strings.Contains(text, "counter trim.select.total 0\n") {
		t.Fatalf("expected nonzero create/select counters:\n%s", text)
	}
}

func TestProfileFlag(t *testing.T) {
	path := storeFile(t)
	prof := filepath.Join(t.TempDir(), "cpu.prof")
	var out strings.Builder
	if err := run([]string{"-store", path, "-profile", prof, "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(prof)
	if err != nil {
		t.Fatalf("profile not created: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file is empty")
	}
}
