package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceSmokeSelect runs a traced select and checks the trimq.trace →
// trim.select causality in the printed tree, including the EXPLAIN plan
// line the trim span carries as its detail.
func TestTraceSmokeSelect(t *testing.T) {
	path := storeFile(t)
	var out strings.Builder
	if err := run([]string{"-store", path, "trace", "select", "?", "?", "?"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"== trace ", "trimq.trace select ? ? ?", "\n  trim.select", "op=select", "index="} {
		if !strings.Contains(text, want) {
			t.Errorf("trace output missing %q:\n%s", want, text)
		}
	}
}

// TestTraceSmokePerfetto checks that -perfetto writes a Chrome trace-event
// file whose events all carry the complete-span phase and this trace's id.
func TestTraceSmokePerfetto(t *testing.T) {
	path := storeFile(t)
	perfetto := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-store", path, "-json", "-perfetto", perfetto,
		"trace", "view", "http://slim.example.org/instance#Bundle-000001"}, &out); err != nil {
		t.Fatal(err)
	}
	var tree struct {
		TraceID string `json:"trace_id"`
		Spans   int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(out.String()[strings.Index(out.String(), "{"):]), &tree); err != nil {
		t.Fatalf("tree JSON: %v\n%s", err, out.String())
	}
	if tree.TraceID == "" || tree.Spans < 2 {
		t.Fatalf("tree = %+v", tree)
	}
	data, err := os.ReadFile(perfetto)
	if err != nil {
		t.Fatal(err)
	}
	var events struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Args struct {
				Trace string `json:"trace_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("perfetto file: %v", err)
	}
	if len(events.TraceEvents) != tree.Spans {
		t.Fatalf("perfetto has %d events, tree has %d spans", len(events.TraceEvents), tree.Spans)
	}
	for _, ev := range events.TraceEvents {
		if ev.Ph != "X" || ev.Args.Trace != tree.TraceID {
			t.Fatalf("malformed trace event %+v (want trace %s)", ev, tree.TraceID)
		}
	}
}

// TestTraceSmokeBadQuery covers the error paths: unknown trace verbs and
// arity mistakes fail with usage errors rather than panics.
func TestTraceSmokeBadQuery(t *testing.T) {
	path := storeFile(t)
	for _, args := range [][]string{
		{"-store", path, "trace"},
		{"-store", path, "trace", "stats"},
		{"-store", path, "trace", "select", "?", "?"},
		{"-store", path, "trace", "view"},
		{"-store", path, "trace", "path", "x"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestTraceSmokeWorkloadAnalytics drives a replayed workload under -serve
// and checks the live workload-analytics endpoints end to end: /debug/top
// ranks the replayed query shapes and /debug/load reports the running
// window sampler (docs/OBSERVABILITY.md).
func TestTraceSmokeWorkloadAnalytics(t *testing.T) {
	obs.DefaultTopQueries.Reset()
	path := storeFile(t)
	wl := filepath.Join(t.TempDir(), "queries.txt")
	workload := "select ? rdf:type pad:Bundle\nselect ? rdf:type pad:Bundle\nview inst:Bundle-000001\n"
	if err := os.WriteFile(wl, []byte(workload), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-store", path, "-serve", "127.0.0.1:0", "-workload", wl, "top"}, &out); err != nil {
		t.Fatal(err)
	}
	s := obs.ActiveServer()
	if s == nil {
		t.Fatal("-serve left no active server")
	}
	defer s.Close()

	code, body := scrape(t, s.URL(), "/debug/top")
	if code != 200 {
		t.Fatalf("/debug/top status %d:\n%s", code, body)
	}
	var sketch struct {
		Entries []struct {
			Key   string `json:"key"`
			Count int    `json:"count"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &sketch); err != nil {
		t.Fatalf("/debug/top not JSON: %v\n%s", err, body)
	}
	counts := map[string]int{}
	for _, e := range sketch.Entries {
		counts[e.Key] = e.Count
	}
	if counts["view index=subject"] != 1 {
		t.Fatalf("/debug/top entries = %+v", sketch.Entries)
	}
	found := false
	for key, n := range counts {
		if strings.HasPrefix(key, "select ?po index=") && n == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/top missing the replayed select shape: %+v", sketch.Entries)
	}

	code, body = scrape(t, s.URL(), "/debug/load")
	if code != 200 {
		t.Fatalf("/debug/load status %d:\n%s", code, body)
	}
	var load struct {
		Running bool `json:"running"`
		Samples int  `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &load); err != nil {
		t.Fatalf("/debug/load not JSON: %v\n%s", err, body)
	}
	if !load.Running || load.Samples < 1 {
		t.Fatalf("/debug/load sampler state = %+v", load)
	}
}
