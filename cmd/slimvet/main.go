// Command slimvet runs SLIM's convention analyzers (internal/analysis) over
// the module's packages and gates on findings not covered by the committed
// baseline. It is the third standing CI lane next to the race tests and the
// fault sweep: `make lint` (docs/STATIC_ANALYSIS.md).
//
// Usage:
//
//	slimvet [flags] [packages]
//
//	slimvet ./...                  # analyze the whole module (the default)
//	slimvet -list                  # describe the analyzers
//	slimvet -disable ctxflow ./... # run all but one analyzer
//	slimvet -json ./...            # machine-readable report
//	slimvet -update-baseline ./... # accept current findings as debt
//
// Exit status: 0 when clean against the baseline, 1 when new findings (or
// stale baseline entries) exist, 2 on usage or load errors. Package
// patterns are module-root-relative; slimvet can run from any directory
// inside the module.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json output shape; CI integrations rely on it
// (docs/STATIC_ANALYSIS.md documents the contract).
type report struct {
	Module    string   `json:"module"`
	Analyzers []string `json:"analyzers"`
	// Diagnostics is every finding, baselined or not.
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	// New is the gating subset: findings beyond the baseline.
	New []analysis.Diagnostic `json:"new"`
	// Stale is baseline debt that no longer exists and must be removed
	// (run -update-baseline).
	Stale []analysis.BaselineEntry `json:"stale"`
	// Baseline is the module-root-relative baseline path consulted.
	Baseline string `json:"baseline"`
	// Files is the number of source files analyzed.
	Files int `json:"files"`
	// Suppressed counts findings silenced by slimvet:ignore annotations.
	Suppressed int `json:"suppressed"`
	// TimingNS is each analyzer's wall time in nanoseconds, summed across
	// packages — the lint-cost ledger as analyzers accumulate.
	TimingNS map[string]int64 `json:"timing_ns"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slimvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut        = fs.Bool("json", false, "emit the report as JSON")
		enable         = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable        = fs.String("disable", "", "comma-separated analyzers to skip")
		baselinePath   = fs.String("baseline", "slimvet.baseline.json", "baseline file, relative to the module root (\"\" disables baselining)")
		updateBaseline = fs.Bool("update-baseline", false, "rewrite the baseline to accept all current findings")
		list           = fs.Bool("list", false, "list the analyzers and exit")
		verbose        = fs.Bool("v", false, "print a one-line run summary (files, findings, suppressed, baselined, per-analyzer time) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "slimvet:", err)
		return 2
	}

	loader, err := analysis.NewLoader()
	if err != nil {
		fmt.Fprintln(stderr, "slimvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "slimvet:", err)
		return 2
	}
	diags, runInfo, err := loader.RunDetailed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "slimvet:", err)
		return 2
	}

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "slimvet: -update-baseline needs a -baseline path")
			return 2
		}
		path := filepath.Join(loader.ModuleRoot, *baselinePath)
		if err := analysis.NewBaseline(diags).Save(path); err != nil {
			fmt.Fprintln(stderr, "slimvet:", err)
			return 2
		}
		fmt.Fprintf(stdout, "slimvet: baseline %s updated with %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}

	baseline := &analysis.Baseline{}
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(filepath.Join(loader.ModuleRoot, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "slimvet:", err)
			return 2
		}
	}
	fresh, stale := baseline.Apply(diags)

	if *verbose {
		fmt.Fprintln(stderr, summaryLine(len(pkgs), runInfo, diags, fresh, stale))
	}

	if *jsonOut {
		names := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		r := report{
			Module:      loader.ModulePath,
			Analyzers:   names,
			Diagnostics: diags,
			New:         fresh,
			Stale:       stale,
			Baseline:    *baselinePath,
			Files:       runInfo.Files,
			Suppressed:  runInfo.Suppressed,
			TimingNS:    runInfo.AnalyzerNS,
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "slimvet:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d.String())
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "stale baseline entry (fixed? run -update-baseline): %s\n", e.String())
		}
		if len(fresh) == 0 && len(stale) == 0 {
			fmt.Fprintf(stdout, "slimvet: %d package(s) clean (%d baselined finding(s))\n",
				len(pkgs), len(diags))
		}
	}
	if len(fresh) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// summaryLine renders the -v one-liner: enough to watch lint cost and
// suppression creep without parsing the JSON report.
func summaryLine(pkgs int, info analysis.RunInfo, diags, fresh []analysis.Diagnostic, stale []analysis.BaselineEntry) string {
	names := make([]string, 0, len(info.AnalyzerNS))
	var totalNS int64
	for name, ns := range info.AnalyzerNS {
		names = append(names, name)
		totalNS += ns
	}
	sort.Strings(names)
	var times strings.Builder
	for i, name := range names {
		if i > 0 {
			times.WriteString(" ")
		}
		fmt.Fprintf(&times, "%s=%dms", name, info.AnalyzerNS[name]/1e6)
	}
	return fmt.Sprintf("slimvet: %d package(s), %d file(s): %d finding(s) (%d baselined, %d new, %d stale, %d suppressed) in %dms [%s]",
		pkgs, info.Files, len(diags), len(diags)-len(fresh), len(fresh), len(stale), info.Suppressed, totalNS/1e6, times.String())
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	selected := analysis.All()
	if enable != "" {
		selected = nil
		for _, name := range splitList(enable) {
			a, ok := analysis.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			selected = append(selected, a)
		}
	}
	if disable != "" {
		drop := map[string]bool{}
		for _, name := range splitList(disable) {
			if _, ok := analysis.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			drop[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range selected {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
