package main

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// The metamodel package carries known, baselined errwrap debt — a stable
// non-empty target for exercising the driver without analyzing the whole
// module in every subtest. (htmldoc, pdfdoc, and the base/* editors, the
// previous targets, were paid down.)
const debtPkg = "./internal/metamodel"

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListDescribesAnalyzers(t *testing.T) {
	code, stdout, _ := runDriver(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"lockguard", "errwrap", "ctxflow", "obscoverage", "metricnames",
		"aliasguard", "lockorder", "atomichygiene", "gorolife",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, stderr := runDriver(t, "-enable", "nosuch", debtPkg)
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", stderr)
	}
}

// TestSeededViolationsFailTextMode pins the gating behavior: with the
// baseline disabled, known violations exit non-zero and print
// file:line:col plus the analyzer name.
func TestSeededViolationsFailTextMode(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-baseline", "", debtPkg)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	lineRe := regexp.MustCompile(`internal/metamodel/[a-z]+\.go:\d+:\d+: .+ \(errwrap\)`)
	if !lineRe.MatchString(stdout) {
		t.Errorf("text output missing file:line:col ... (analyzer) findings:\n%s", stdout)
	}
}

// TestJSONReportShape pins the -json contract documented in
// docs/STATIC_ANALYSIS.md: module, analyzers, diagnostics, new, stale,
// baseline.
func TestJSONReportShape(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-json", "-baseline", "", debtPkg)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	var r struct {
		Module      string            `json:"module"`
		Analyzers   []string          `json:"analyzers"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
		New         []json.RawMessage `json:"new"`
		Stale       []json.RawMessage `json:"stale"`
		Baseline    string            `json:"baseline"`
		Files       int               `json:"files"`
		Suppressed  *int              `json:"suppressed"`
		TimingNS    map[string]int64  `json:"timing_ns"`
	}
	if err := json.Unmarshal([]byte(stdout), &r); err != nil {
		t.Fatalf("output is not the report JSON shape: %v\n%s", err, stdout)
	}
	if r.Module != "repro" {
		t.Errorf("module = %q, want %q", r.Module, "repro")
	}
	if len(r.Analyzers) != 10 {
		t.Errorf("analyzers = %v, want all ten", r.Analyzers)
	}
	if len(r.Diagnostics) == 0 || len(r.New) == 0 {
		t.Errorf("diagnostics/new empty; metamodel debt should appear in both")
	}
	if r.Files == 0 {
		t.Errorf("files = 0; the report must count analyzed files")
	}
	if r.Suppressed == nil {
		t.Errorf("suppressed missing from report")
	}
	if len(r.TimingNS) != len(r.Analyzers) {
		t.Errorf("timing_ns has %d entries, want one per analyzer (%d): %v",
			len(r.TimingNS), len(r.Analyzers), r.TimingNS)
	}
	if len(r.Diagnostics) != len(r.New) {
		t.Errorf("with baselining disabled every finding is new: %d diagnostics vs %d new",
			len(r.Diagnostics), len(r.New))
	}
	var d struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(r.Diagnostics[0], &d); err != nil {
		t.Fatalf("diagnostic shape: %v", err)
	}
	if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
		t.Errorf("diagnostic missing fields: %s", r.Diagnostics[0])
	}
	if strings.Contains(d.File, "\\") || strings.HasPrefix(d.File, "/") {
		t.Errorf("diagnostic file must be module-root-relative with forward slashes: %q", d.File)
	}
}

// TestVerboseSummary pins the -v one-liner on stderr: package/file/finding
// counts, the baselined/new/stale/suppressed split, and per-analyzer wall
// time.
func TestVerboseSummary(t *testing.T) {
	code, _, stderr := runDriver(t, "-v", "-baseline", "", debtPkg)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	summaryRe := regexp.MustCompile(`slimvet: \d+ package\(s\), \d+ file\(s\): \d+ finding\(s\) \(\d+ baselined, \d+ new, \d+ stale, \d+ suppressed\) in \d+ms`)
	if !summaryRe.MatchString(stderr) {
		t.Errorf("-v summary line missing or malformed:\n%s", stderr)
	}
	if !strings.Contains(stderr, "errwrap=") || !strings.Contains(stderr, "aliasguard=") {
		t.Errorf("-v summary missing per-analyzer timings:\n%s", stderr)
	}
}

// TestBaselineCoversDebt runs the full module against the committed
// baseline: everything is covered, so the driver reports clean and exits 0.
// (The baseline is a whole-module contract — analyzing a subset would
// surface the other files' entries as stale.)
func TestBaselineCoversDebt(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	code, stdout, stderr := runDriver(t, "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0 against the committed baseline\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "clean") || !strings.Contains(stdout, "baselined finding(s)") {
		t.Errorf("clean summary missing:\n%s", stdout)
	}
}

// TestEnableRestrictsAnalyzers runs only ctxflow over the debt package:
// the errwrap findings disappear and the run is clean even without the
// baseline.
func TestEnableRestrictsAnalyzers(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-json", "-baseline", "", "-enable", "ctxflow", debtPkg)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stdout: %s, stderr: %s)", code, stdout, stderr)
	}
	var r struct {
		Analyzers   []string          `json:"analyzers"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &r); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(r.Analyzers) != 1 || r.Analyzers[0] != "ctxflow" {
		t.Errorf("analyzers = %v, want [ctxflow]", r.Analyzers)
	}
	if len(r.Diagnostics) != 0 {
		t.Errorf("ctxflow-only run should be clean on metamodel, got %d findings", len(r.Diagnostics))
	}
}
