package main

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mark"
	"repro/internal/obs"
)

func TestDoctorJSON(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\n")
	marks := filepath.Join(dir, "marks.xml")
	var out strings.Builder
	if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", "Meds!A2"}, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"doctor", "-marks", marks, "-doc", csv, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Report struct {
			Checked int `json:"checked"`
			Healthy int `json:"healthy"`
			Marks   []struct {
				ID     string `json:"id"`
				Health string `json:"health"`
			} `json:"marks"`
		} `json:"report"`
		Quarantine []mark.QuarantineEntry `json:"quarantine"`
	}
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("doctor -json not JSON: %v\n%s", err, out.String())
	}
	if decoded.Report.Checked != 1 || decoded.Report.Healthy != 1 || len(decoded.Report.Marks) != 1 {
		t.Fatalf("report = %+v", decoded.Report)
	}
	if decoded.Quarantine == nil || len(decoded.Quarantine) != 0 {
		t.Fatalf("quarantine = %+v, want empty array", decoded.Quarantine)
	}

	// Without the base document the mark cannot resolve but serves its
	// excerpt: degraded, not dangling, so the command still succeeds and
	// the JSON shows the downgrade.
	out.Reset()
	if err := run([]string{"doctor", "-marks", marks, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var degraded struct {
		Report struct {
			Degraded int `json:"degraded"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(out.String()), &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Report.Degraded != 1 {
		t.Fatalf("docless doctor report = %s", out.String())
	}
}

// TestServeWithMetrics covers the -serve + -metrics flag combination on
// markctl: the server outlives the command, /metrics exposes the mark
// family, and the health endpoints answer.
func TestServeWithMetrics(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\n")
	marks := filepath.Join(dir, "marks.xml")
	var out strings.Builder
	if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", "Meds!A2"}, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"resolve", "-marks", marks, "-id", "mark-000001", "-doc", csv,
		"-serve", "127.0.0.1:0", "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	s := obs.ActiveServer()
	if s == nil {
		t.Fatal("-serve left no active server")
	}
	defer s.Close()
	if !strings.Contains(out.String(), "diagnostics: "+s.URL()) {
		t.Errorf("output missing diagnostics URL: %s", out.String())
	}

	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "mark_resolve_spreadsheet_ns") {
		t.Fatalf("/metrics status %d:\n%s", resp.StatusCode, body)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d:\n%s", path, resp.StatusCode, body)
		}
	}

	// The workload-analytics endpoints answer on markctl's server too,
	// and the sketch holds the resolve shape the command just recorded.
	for _, path := range []string{"/debug/load", "/debug/top"} {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d:\n%s", path, resp.StatusCode, body)
		}
		if path == "/debug/top" && !strings.Contains(string(body), "mark.resolve scheme=spreadsheet") {
			t.Fatalf("/debug/top missing the resolve shape:\n%s", body)
		}
	}

	// The resolve went through the mark manager's tracked lock, so the
	// contention endpoint lists it with recorded acquisitions.
	resp, err = http.Get(s.URL() + "/debug/contention")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"`+obs.LockMarkManager+`"`) {
		t.Fatalf("/debug/contention status %d:\n%s", resp.StatusCode, body)
	}

	// markctl holds no triple store, so /debug/space carries only the
	// runtime memory classes — and the obs.space budget flip still works,
	// since the check is process-level.
	resp, err = http.Get(s.URL() + "/debug/space")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"heap_inuse_bytes"`) {
		t.Fatalf("/debug/space status %d:\n%s", resp.StatusCode, body)
	}
	prevBudget := obs.SetMemBudget(1)
	resp, err = http.Get(s.URL() + "/healthz")
	if err != nil {
		obs.SetMemBudget(prevBudget)
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	obs.SetMemBudget(prevBudget)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "fail "+obs.HealthObsSpace) {
		t.Fatalf("/healthz under mem budget: status %d:\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get(s.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after clearing mem budget: status %d", resp.StatusCode)
	}
}
