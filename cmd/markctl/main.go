// markctl exercises the Mark Manager against real files on disk: it loads a
// document into the matching base substrate, creates a mark at a given
// address, resolves marks, and persists the mark set as an XML triple file.
//
// Usage:
//
//	markctl mark    -marks marks.xml -scheme spreadsheet -doc meds.csv -at 'Meds!A2:C2'
//	markctl mark    -marks marks.xml -scheme xml  -doc lab.xml  -at '/report/panel[1]/result[2]'
//	markctl mark    -marks marks.xml -scheme text -doc note.txt -at 's2/p1'
//	markctl mark    -marks marks.xml -scheme pdf  -doc scan.txt -at 'page1/lines3-5'
//	markctl mark    -marks marks.xml -scheme html -doc page.html -at '#results'
//	markctl list    -marks marks.xml
//	markctl resolve -marks marks.xml -id mark-000001 -doc meds.csv
//	markctl doctor  -marks marks.xml -doc meds.csv -doc lab.xml
//	markctl doctor  -marks marks.xml -json
//	markctl top     -marks marks.xml -doc meds.csv -doc lab.xml
//
// Documents load under their base filename; CSV files become a workbook
// with one sheet named "Meds". The doctor command diagnoses every stored
// mark against the given base documents (scheme inferred from extension,
// or prefix with "scheme:"): healthy, drifted, degraded (unresolvable but
// excerpt-backed), or dangling (docs/ROBUSTNESS.md). It exits non-zero
// when any mark is dangling. The top command dereferences every stored
// mark through the instrumented resilient resolver and prints the
// heavy-hitter sketch: resolve traffic ranked by mark scheme and resolver
// — the same ranking a served store exposes at /debug/top
// (docs/OBSERVABILITY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/base"
	"repro/internal/base/htmldoc"
	"repro/internal/base/pdfdoc"
	"repro/internal/base/spreadsheet"
	"repro/internal/base/textdoc"
	"repro/internal/base/xmldoc"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/trim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "markctl:", err)
		os.Exit(1)
	}
	if s := obs.ActiveServer(); s != nil {
		fmt.Fprintf(os.Stderr, "markctl: serving diagnostics at %s (interrupt to exit)\n", s.URL())
		obs.AwaitInterrupt(context.Background())
		s.Close()
	}
}

// docList collects repeated -doc flags for the doctor command.
type docList []string

func (d *docList) String() string { return strings.Join(*d, ",") }
func (d *docList) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("need a command: mark | list | resolve | extract | doctor | top")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	marksFile := fs.String("marks", "marks.xml", "mark store file (XML triples)")
	scheme := fs.String("scheme", "", "base scheme: spreadsheet|xml|text|pdf|html")
	var docs docList
	fs.Var(&docs, "doc", "base document file to load (doctor accepts it repeated, optionally scheme:path)")
	at := fs.String("at", "", "address path within the document")
	id := fs.String("id", "", "mark id (for resolve)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (doctor, top)")
	topK := fs.Int("k", 20, "with top: list at most this many resolve shapes")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := cli.Start(); err != nil {
		return err
	}
	doc := ""
	if len(docs) > 0 {
		doc = docs[0]
	}
	var err error
	switch cmd {
	case "doctor":
		err = doctor(*marksFile, docs, *jsonOut, out)
	case "top":
		err = top(*marksFile, docs, *jsonOut, *topK, out)
	default:
		err = execute(cmd, *marksFile, *scheme, doc, *at, *id, out)
	}
	if ferr := cli.Finish(out); err == nil {
		err = ferr
	}
	return err
}

// doctor loads the mark store plus the given base documents and prints the
// Mark Manager's health report. Marks whose scheme has no loaded document
// are diagnosed as degraded/dangling rather than failing the command; the
// command errors only when a mark is dangling (no live referent AND no
// cached excerpt), so scripts can gate on the exit code.
func doctor(marksFile string, docs []string, jsonOut bool, out io.Writer) error {
	mm := mark.NewManager()
	store := trim.NewManager()
	if err := mm.LoadFile(store, marksFile); err != nil {
		return err
	}
	for _, d := range docs {
		scheme, path := splitDoc(d)
		app, _, err := loadDoc(scheme, path)
		if err != nil {
			return err
		}
		if err := mm.RegisterApplication(app); err != nil {
			return err
		}
	}
	// Health probes for -serve: ready once the mark store is loaded,
	// healthy while no mark sits in quarantine.
	obs.DefaultReady.Register(obs.HealthMarkStore, store.LoadedCheck())
	obs.DefaultHealth.Register(obs.HealthMarkQuarantine, mm.QuarantineCheck(1))
	report := mm.Doctor(context.Background())
	if jsonOut {
		quarantine := mm.Quarantined()
		if quarantine == nil {
			quarantine = []mark.QuarantineEntry{}
		}
		if err := obs.EncodeJSON(out, struct {
			Report     mark.HealthReport      `json:"report"`
			Quarantine []mark.QuarantineEntry `json:"quarantine"`
		}{report, quarantine}); err != nil {
			return err
		}
		if report.Dangling > 0 {
			return fmt.Errorf("%d dangling mark(s)", report.Dangling)
		}
		return nil
	}
	fmt.Fprint(out, report)
	// The quarantine is the dangling-reference list (§5's ComMentor
	// problem): every mark whose referent could not be reached, whether or
	// not a cached excerpt still serves reads.
	for _, q := range mm.Quarantined() {
		excerpt := "no excerpt cached"
		if q.HasExcerpt {
			excerpt = "excerpt cached"
		}
		fmt.Fprintf(out, "dangling reference %s %s (%s; %s)\n", q.ID, q.Address, excerpt, q.Reason)
	}
	if report.Dangling > 0 {
		return fmt.Errorf("%d dangling mark(s)", report.Dangling)
	}
	return nil
}

// top loads the mark store plus the given base documents, dereferences
// every stored mark through the instrumented resilient resolver, and
// prints the process-wide heavy-hitter sketch. Shapes are keyed by scheme
// and resolver, so the ranking shows which base-information types carry
// the resolve traffic. Unresolvable marks still count — their shapes are
// recorded before the resolve fails — so the sketch reflects attempted
// traffic, not just successes.
func top(marksFile string, docs []string, jsonOut bool, k int, out io.Writer) error {
	mm := mark.NewManager()
	store := trim.NewManager()
	if err := mm.LoadFile(store, marksFile); err != nil {
		return err
	}
	for _, d := range docs {
		scheme, path := splitDoc(d)
		app, _, err := loadDoc(scheme, path)
		if err != nil {
			return err
		}
		if err := mm.RegisterApplication(app); err != nil {
			return err
		}
	}
	obs.DefaultReady.Register(obs.HealthMarkStore, store.LoadedCheck())
	obs.DefaultHealth.Register(obs.HealthMarkQuarantine, mm.QuarantineCheck(1))
	ctx := context.Background()
	failed := 0
	marks := mm.Marks()
	for _, m := range marks {
		if _, err := mm.ResolveCtx(ctx, m.ID); err != nil {
			failed++
		}
	}
	if jsonOut {
		return obs.EncodeJSON(out, obs.DefaultTopQueries)
	}
	entries := obs.DefaultTopQueries.Top(k)
	for i, e := range entries {
		fmt.Fprintf(out, "%3d  %8d  ±%-5d  %s\n", i+1, e.Count, e.ErrBound, e.Key)
	}
	fmt.Fprintf(out, "-- %d shape(s) over %d resolve(s) (%d failed)\n", len(entries), len(marks), failed)
	return nil
}

// splitDoc splits an optional "scheme:path" doctor document argument; with
// no scheme prefix the scheme is inferred from the file extension.
func splitDoc(arg string) (scheme, path string) {
	for _, s := range []string{spreadsheet.Scheme, xmldoc.Scheme, textdoc.Scheme, pdfdoc.Scheme, htmldoc.Scheme} {
		if strings.HasPrefix(arg, s+":") {
			return s, strings.TrimPrefix(arg, s+":")
		}
	}
	switch strings.ToLower(filepath.Ext(arg)) {
	case ".csv":
		return spreadsheet.Scheme, arg
	case ".xml":
		return xmldoc.Scheme, arg
	case ".html", ".htm":
		return htmldoc.Scheme, arg
	case ".pdf":
		return pdfdoc.Scheme, arg
	default:
		return textdoc.Scheme, arg
	}
}

func execute(cmd, marksFile, scheme, doc, at, id string, out io.Writer) error {
	mm := mark.NewManager()
	store := trim.NewManager()
	if err := mm.LoadFile(store, marksFile); err != nil {
		return err
	}
	// Health probes for -serve (mirrors doctor): readiness tracks the mark
	// store, liveness the persistence path and the quarantine.
	obs.DefaultReady.Register(obs.HealthMarkStore, store.LoadedCheck())
	obs.DefaultHealth.Register(obs.HealthMarkPersist, trim.WritableCheck(marksFile))
	obs.DefaultHealth.Register(obs.HealthMarkQuarantine, mm.QuarantineCheck(1))

	switch cmd {
	case "list":
		for _, m := range mm.Marks() {
			fmt.Fprintf(out, "%s  %s\n", m.ID, m.Address)
		}
		fmt.Fprintf(out, "-- %d mark(s)\n", mm.Len())
		return nil

	case "mark":
		if scheme == "" || doc == "" || at == "" {
			return fmt.Errorf("mark needs -scheme, -doc, and -at")
		}
		app, name, err := loadDoc(scheme, doc)
		if err != nil {
			return err
		}
		if err := mm.RegisterApplication(app); err != nil {
			return err
		}
		// Drive the viewer to the address (validating it), so the mark is
		// created from a genuine current selection.
		if _, err := app.GoTo(base.Address{Scheme: scheme, File: name, Path: at}); err != nil {
			return err
		}
		m, err := mm.CreateFromSelection(scheme)
		if err != nil {
			return err
		}
		if err := mm.SaveFile(store, marksFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "created %s -> %s\n", m.ID, m.Address)
		if m.Excerpt != "" {
			fmt.Fprintf(out, "  excerpt: %.70q\n", m.Excerpt)
		}
		return nil

	case "extract":
		// The §6 "extract content" behavior: fetch the marked element's
		// current content without driving any viewer; falls back to the
		// stored excerpt when the base document is unavailable.
		if id == "" {
			return fmt.Errorf("extract needs -id")
		}
		if doc != "" {
			m, err := mm.Mark(id)
			if err != nil {
				return err
			}
			app, _, err := loadDoc(m.Address.Scheme, doc)
			if err != nil {
				return err
			}
			if err := mm.RegisterApplication(app); err != nil {
				return err
			}
		}
		content, err := mm.ExtractContent(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", content)
		return nil

	case "resolve":
		if id == "" || doc == "" {
			return fmt.Errorf("resolve needs -id and -doc (to reload the base document)")
		}
		m, err := mm.Mark(id)
		if err != nil {
			return err
		}
		app, _, err := loadDoc(m.Address.Scheme, doc)
		if err != nil {
			return err
		}
		if err := mm.RegisterApplication(app); err != nil {
			return err
		}
		// The instrumented resilient path: the resolve lands in the causal
		// trace and the heavy-hitter sketch, same as a served store.
		el, err := mm.ResolveCtx(context.Background(), id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s resolves to %s\n  content: %q\n  context: %q\n", id, el.Address, el.Content, el.Context)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// loadDoc reads the file and loads it into a fresh base application of the
// scheme, returning the app and the document's library name.
func loadDoc(scheme, path string) (base.Application, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	name := filepath.Base(path)
	text := string(data)
	switch scheme {
	case spreadsheet.Scheme:
		app := spreadsheet.NewApp()
		w := spreadsheet.NewWorkbook(name)
		if _, err := w.LoadCSV("Meds", text); err != nil {
			return nil, "", err
		}
		if err := app.AddWorkbook(w); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case xmldoc.Scheme:
		app := xmldoc.NewApp()
		if _, err := app.LoadString(name, text); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case textdoc.Scheme:
		app := textdoc.NewApp()
		if _, err := app.LoadString(name, text); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case pdfdoc.Scheme:
		app := pdfdoc.NewApp()
		if _, err := app.LoadString(name, text, 0); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case htmldoc.Scheme:
		app := htmldoc.NewApp()
		if _, err := app.LoadString(name, text); err != nil {
			return nil, "", err
		}
		return app, name, nil
	default:
		return nil, "", fmt.Errorf("unknown scheme %q", scheme)
	}
}
