// markctl exercises the Mark Manager against real files on disk: it loads a
// document into the matching base substrate, creates a mark at a given
// address, resolves marks, and persists the mark set as an XML triple file.
//
// Usage:
//
//	markctl mark    -marks marks.xml -scheme spreadsheet -doc meds.csv -at 'Meds!A2:C2'
//	markctl mark    -marks marks.xml -scheme xml  -doc lab.xml  -at '/report/panel[1]/result[2]'
//	markctl mark    -marks marks.xml -scheme text -doc note.txt -at 's2/p1'
//	markctl mark    -marks marks.xml -scheme pdf  -doc scan.txt -at 'page1/lines3-5'
//	markctl mark    -marks marks.xml -scheme html -doc page.html -at '#results'
//	markctl list    -marks marks.xml
//	markctl resolve -marks marks.xml -id mark-000001 -doc meds.csv
//
// Documents load under their base filename; CSV files become a workbook
// with one sheet named "Meds".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/base"
	"repro/internal/base/htmldoc"
	"repro/internal/base/pdfdoc"
	"repro/internal/base/spreadsheet"
	"repro/internal/base/textdoc"
	"repro/internal/base/xmldoc"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/trim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "markctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("need a command: mark | list | resolve | extract")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	marksFile := fs.String("marks", "marks.xml", "mark store file (XML triples)")
	scheme := fs.String("scheme", "", "base scheme: spreadsheet|xml|text|pdf|html")
	doc := fs.String("doc", "", "base document file to load")
	at := fs.String("at", "", "address path within the document")
	id := fs.String("id", "", "mark id (for resolve)")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := cli.Start(); err != nil {
		return err
	}
	err := execute(cmd, *marksFile, *scheme, *doc, *at, *id, out)
	if ferr := cli.Finish(out); err == nil {
		err = ferr
	}
	return err
}

func execute(cmd, marksFile, scheme, doc, at, id string, out io.Writer) error {
	mm := mark.NewManager()
	store := trim.NewManager()
	if _, err := os.Stat(marksFile); err == nil {
		if err := store.LoadFile(marksFile); err != nil {
			return err
		}
		if err := mm.LoadFrom(store); err != nil {
			return err
		}
	}

	switch cmd {
	case "list":
		for _, m := range mm.Marks() {
			fmt.Fprintf(out, "%s  %s\n", m.ID, m.Address)
		}
		fmt.Fprintf(out, "-- %d mark(s)\n", mm.Len())
		return nil

	case "mark":
		if scheme == "" || doc == "" || at == "" {
			return fmt.Errorf("mark needs -scheme, -doc, and -at")
		}
		app, name, err := loadDoc(scheme, doc)
		if err != nil {
			return err
		}
		if err := mm.RegisterApplication(app); err != nil {
			return err
		}
		// Drive the viewer to the address (validating it), so the mark is
		// created from a genuine current selection.
		if _, err := app.GoTo(base.Address{Scheme: scheme, File: name, Path: at}); err != nil {
			return err
		}
		m, err := mm.CreateFromSelection(scheme)
		if err != nil {
			return err
		}
		if err := mm.SaveTo(store); err != nil {
			return err
		}
		if err := store.SaveFile(marksFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "created %s -> %s\n", m.ID, m.Address)
		if m.Excerpt != "" {
			fmt.Fprintf(out, "  excerpt: %.70q\n", m.Excerpt)
		}
		return nil

	case "extract":
		// The §6 "extract content" behavior: fetch the marked element's
		// current content without driving any viewer; falls back to the
		// stored excerpt when the base document is unavailable.
		if id == "" {
			return fmt.Errorf("extract needs -id")
		}
		if doc != "" {
			m, err := mm.Mark(id)
			if err != nil {
				return err
			}
			app, _, err := loadDoc(m.Address.Scheme, doc)
			if err != nil {
				return err
			}
			if err := mm.RegisterApplication(app); err != nil {
				return err
			}
		}
		content, err := mm.ExtractContent(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", content)
		return nil

	case "resolve":
		if id == "" || doc == "" {
			return fmt.Errorf("resolve needs -id and -doc (to reload the base document)")
		}
		m, err := mm.Mark(id)
		if err != nil {
			return err
		}
		app, _, err := loadDoc(m.Address.Scheme, doc)
		if err != nil {
			return err
		}
		if err := mm.RegisterApplication(app); err != nil {
			return err
		}
		el, err := mm.Resolve(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s resolves to %s\n  content: %q\n  context: %q\n", id, el.Address, el.Content, el.Context)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// loadDoc reads the file and loads it into a fresh base application of the
// scheme, returning the app and the document's library name.
func loadDoc(scheme, path string) (base.Application, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	name := filepath.Base(path)
	text := string(data)
	switch scheme {
	case spreadsheet.Scheme:
		app := spreadsheet.NewApp()
		w := spreadsheet.NewWorkbook(name)
		if _, err := w.LoadCSV("Meds", text); err != nil {
			return nil, "", err
		}
		if err := app.AddWorkbook(w); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case xmldoc.Scheme:
		app := xmldoc.NewApp()
		if _, err := app.LoadString(name, text); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case textdoc.Scheme:
		app := textdoc.NewApp()
		if _, err := app.LoadString(name, text); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case pdfdoc.Scheme:
		app := pdfdoc.NewApp()
		if _, err := app.LoadString(name, text, 0); err != nil {
			return nil, "", err
		}
		return app, name, nil
	case htmldoc.Scheme:
		app := htmldoc.NewApp()
		if _, err := app.LoadString(name, text); err != nil {
			return nil, "", err
		}
		return app, name, nil
	default:
		return nil, "", fmt.Errorf("unknown scheme %q", scheme)
	}
}
