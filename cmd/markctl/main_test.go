package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/trim"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMarkListResolveSpreadsheet(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\n")
	marks := filepath.Join(dir, "marks.xml")

	var out strings.Builder
	if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", "Meds!A2:B2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "created mark-000001") {
		t.Fatalf("mark output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"list", "-marks", marks}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 1 mark(s)") {
		t.Fatalf("list output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"resolve", "-marks", marks, "-id", "mark-000001", "-doc", csv}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `content: "Furosemide\t40mg"`) {
		t.Fatalf("resolve output = %q", out.String())
	}
}

func TestMarkAllSchemes(t *testing.T) {
	dir := t.TempDir()
	marks := filepath.Join(dir, "marks.xml")
	docs := []struct {
		scheme, name, content, at string
	}{
		{"xml", "lab.xml", `<report><result code="K">4.1</result></report>`, "/report/result"},
		{"text", "note.txt", "# Plan\nContinue diuresis today.\n", "s1/p1"},
		{"pdf", "scan.txt", "line one\nline two\nline three\n", "page1/lines2-3"},
		{"html", "page.html", `<html><body><p id="x">hello</p></body></html>`, "#x"},
	}
	var out strings.Builder
	for _, d := range docs {
		path := writeFile(t, dir, d.name, d.content)
		out.Reset()
		if err := run([]string{"mark", "-marks", marks, "-scheme", d.scheme, "-doc", path, "-at", d.at}, &out); err != nil {
			t.Fatalf("%s: %v", d.scheme, err)
		}
		if !strings.Contains(out.String(), "created mark-") {
			t.Fatalf("%s output = %q", d.scheme, out.String())
		}
	}
	out.Reset()
	if err := run([]string{"list", "-marks", marks}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- 4 mark(s)") {
		t.Fatalf("list output = %q", out.String())
	}
}

func TestExtract(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\n")
	marks := filepath.Join(dir, "marks.xml")
	var out strings.Builder
	if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", "Meds!A2"}, &out); err != nil {
		t.Fatal(err)
	}
	// With the live document: current content.
	out.Reset()
	if err := run([]string{"extract", "-marks", marks, "-id", "mark-000001", "-doc", csv}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "Furosemide" {
		t.Fatalf("extract = %q", out.String())
	}
	// Without the document: falls back to the stored excerpt.
	out.Reset()
	if err := run([]string{"extract", "-marks", marks, "-id", "mark-000001"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "Furosemide" {
		t.Fatalf("offline extract = %q", out.String())
	}
	if err := run([]string{"extract", "-marks", marks}, &out); err == nil {
		t.Error("extract without -id accepted")
	}
	if err := run([]string{"extract", "-marks", marks, "-id", "ghost"}, &out); err == nil {
		t.Error("extract of ghost mark accepted")
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug\nFurosemide\n")
	marks := filepath.Join(dir, "marks.xml")
	var out strings.Builder
	cases := [][]string{
		{},
		{"bogus"},
		{"mark", "-marks", marks}, // missing flags
		{"mark", "-marks", marks, "-scheme", "fortran", "-doc", csv, "-at", "x"},           // bad scheme
		{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", "/nope", "-at", "x"},   // missing doc
		{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", "garbage"}, // bad address
		{"resolve", "-marks", marks, "-id", "mark-999999", "-doc", csv},                    // unknown mark
		{"resolve", "-marks", marks}, // missing flags
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestDoctor walks the doctor subcommand down the degradation ladder:
// healthy, drifted (base edited under the mark), degraded (base document
// gone but the mark is excerpt-backed — the acceptance scenario for a
// permanent fault), and dangling (no excerpt either; non-zero exit).
func TestDoctor(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\n")
	marks := filepath.Join(dir, "marks.xml")
	var out strings.Builder
	if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", "Meds!A2:B2"}, &out); err != nil {
		t.Fatal(err)
	}

	// Healthy: the base document is present and unchanged. Also exercises
	// the explicit "scheme:path" document form.
	for _, doc := range []string{csv, "spreadsheet:" + csv} {
		out.Reset()
		if err := run([]string{"doctor", "-marks", marks, "-doc", doc}, &out); err != nil {
			t.Fatalf("doctor -doc %s = %v\n%s", doc, err, out.String())
		}
		if !strings.Contains(out.String(), "1 healthy") {
			t.Fatalf("healthy output = %q", out.String())
		}
	}

	// Drifted: the base content changed under the mark.
	writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,80mg\n")
	out.Reset()
	if err := run([]string{"doctor", "-marks", marks, "-doc", csv}, &out); err != nil {
		t.Fatalf("doctor (drifted) = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 drifted") || !strings.Contains(out.String(), "mark-000001") {
		t.Fatalf("drifted output = %q", out.String())
	}

	// Degraded: the base document is gone entirely (a permanent fault), but
	// the mark still has its cached excerpt. The mark is reported as a
	// dangling reference, yet the exit code stays zero: reads still work.
	out.Reset()
	if err := run([]string{"doctor", "-marks", marks}, &out); err != nil {
		t.Fatalf("doctor (degraded) = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 degraded") {
		t.Fatalf("degraded output = %q", out.String())
	}
	if !strings.Contains(out.String(), "dangling reference mark-000001") ||
		!strings.Contains(out.String(), "excerpt cached") {
		t.Fatalf("degraded output missing dangling-reference line: %q", out.String())
	}

	// Dangling: strip the excerpt so no ladder rung is left; doctor must
	// exit non-zero so scripts can gate on it.
	store := trim.NewManager()
	if err := store.LoadFile(marks); err != nil {
		t.Fatal(err)
	}
	mm := mark.NewManager()
	if err := mm.LoadFrom(store); err != nil {
		t.Fatal(err)
	}
	m, err := mm.Mark("mark-000001")
	if err != nil {
		t.Fatal(err)
	}
	m.Excerpt = ""
	mm.Remove(m.ID)
	if err := mm.Add(m); err != nil {
		t.Fatal(err)
	}
	if err := mm.SaveTo(store); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveFile(marks); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"doctor", "-marks", marks}, &out)
	if err == nil || !strings.Contains(err.Error(), "dangling mark(s)") {
		t.Fatalf("doctor (dangling) err = %v", err)
	}
	if !strings.Contains(out.String(), "1 dangling") || !strings.Contains(out.String(), "no excerpt cached") {
		t.Fatalf("dangling output = %q", out.String())
	}
}

func TestObsFlags(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\n")
	marks := filepath.Join(dir, "marks.xml")
	prof := filepath.Join(dir, "cpu.prof")

	var out strings.Builder
	if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv,
		"-at", "Meds!A2:B2", "-metrics", "-profile", prof}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== obs metrics ==") {
		t.Fatalf("missing registry header:\n%s", text)
	}
	if !strings.Contains(text, "counter mark.dispatch.spreadsheet") {
		t.Errorf("metrics output missing mark dispatch counter:\n%s", text)
	}
	if info, err := os.Stat(prof); err != nil || info.Size() == 0 {
		t.Fatalf("profile not written: %v", err)
	}
}

// TestTopResolves: `top` dereferences every stored mark through the
// instrumented resolver and ranks the resolve shapes by scheme. With the
// base document present the resolves succeed; without it they fail but
// still count as attempted traffic.
func TestTopResolves(t *testing.T) {
	obs.DefaultTopQueries.Reset()
	dir := t.TempDir()
	csv := writeFile(t, dir, "meds.csv", "Drug,Dose\nFurosemide,40mg\nMetoprolol,25mg\n")
	marks := filepath.Join(dir, "marks.xml")
	var out strings.Builder
	for _, at := range []string{"Meds!A2:B2", "Meds!A3:B3"} {
		if err := run([]string{"mark", "-marks", marks, "-scheme", "spreadsheet", "-doc", csv, "-at", at}, &out); err != nil {
			t.Fatal(err)
		}
	}

	obs.DefaultTopQueries.Reset()
	out.Reset()
	if err := run([]string{"top", "-marks", marks, "-doc", csv}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Loading the mark store itself issues instrumented selects, so the
	// sketch holds those shapes too; the resolve shape must rank with an
	// exact count of 2.
	if !strings.Contains(text, "2  \u00b10      mark.resolve scheme=spreadsheet resolver=context") {
		t.Fatalf("top output missing resolve shape with count 2:\n%s", text)
	}
	if !strings.Contains(text, "over 2 resolve(s) (0 failed)") {
		t.Fatalf("top footer = %q", text)
	}

	// No base document: both resolves fail but the shapes still record.
	obs.DefaultTopQueries.Reset()
	out.Reset()
	if err := run([]string{"top", "-marks", marks}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 failed)") {
		t.Fatalf("docless top footer = %q", out.String())
	}

	// -json emits the sketch document.
	obs.DefaultTopQueries.Reset()
	out.Reset()
	if err := run([]string{"top", "-marks", marks, "-doc", csv, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded int `json:"recorded"`
		Entries  []struct {
			Key   string `json:"key"`
			Count int    `json:"count"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("top -json not JSON: %v\n%s", err, out.String())
	}
	resolves := 0
	for _, e := range doc.Entries {
		if e.Key == "mark.resolve scheme=spreadsheet resolver=context" {
			resolves = e.Count
		}
	}
	if doc.Recorded < 2 || resolves != 2 {
		t.Fatalf("top -json doc = %+v", doc)
	}
}
