// benchdiff is the bench regression radar: it compares two or more
// BENCH_<label>.json snapshots (written by `make bench-json` via
// cmd/benchjson), prints a per-benchmark delta table for ns/op — plus
// B/op, allocs/op, and custom metrics when both endpoints report them —
// and exits nonzero when any benchmark regressed past a configurable
// threshold. The first file is the baseline, the last the candidate;
// intermediate snapshots add trajectory columns.
//
// Usage (see `make bench-diff`):
//
//	benchdiff [-threshold PCT] [-min-ns NS] [-json] BENCH_old.json BENCH_new.json...
//	benchdiff -lanes [-threshold PCT] [-min-ns NS] [-json] BENCH_*.json
//
// In -lanes mode the snapshot files are grouped by the label's lane
// prefix ("scale-20260808" belongs to the scale lane, a bare date-stamped
// label to the default bench lane), each lane is sorted by generation
// time, and the two newest snapshots per lane are diffed — so one
// invocation covers the micro-bench lane and the slimload scaling lane
// side by side. A lane with a single snapshot is reported as skipped,
// never an error: the scaling lane only gates once a second snapshot is
// committed.
//
// Exit codes: 0 no gated regression, 2 threshold exceeded, 1 bad
// input/usage — so CI can tell "perf regressed" apart from "lane broke".
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/benchfmt"
	"repro/internal/obs"
)

// errThreshold marks a gated regression; main maps it to exit code 2.
var errThreshold = errors.New("benchdiff: threshold exceeded")

// Pct is a percent delta; NaN means "not comparable" (a missing endpoint
// or a zero baseline) and marshals as null, which encoding/json cannot do
// for a plain float64.
type Pct float64

// MarshalJSON renders NaN as null.
func (p Pct) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(p)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(p))
}

// UnmarshalJSON maps null back onto NaN.
func (p *Pct) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*p = Pct(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*p = Pct(f)
	return nil
}

// Delta is one benchmark's baseline-to-candidate comparison.
type Delta struct {
	Key  string `json:"key"`
	Name string `json:"name"`
	// NsPerOp holds the ns/op value from every snapshot, in input order;
	// a negative entry means the benchmark is missing from that snapshot.
	NsPerOp []float64 `json:"ns_per_op"`
	// NsDeltaPct is the ns/op change from the first to the last snapshot
	// in percent (+ is slower). NaN when either endpoint is missing.
	NsDeltaPct Pct `json:"ns_delta_pct"`
	// BytesDeltaPct/AllocsDeltaPct compare B/op and allocs/op when both
	// endpoints report them (NaN otherwise).
	BytesDeltaPct  Pct `json:"bytes_delta_pct"`
	AllocsDeltaPct Pct `json:"allocs_delta_pct"`
	// MetricDeltaPct compares custom b.ReportMetric units present at both
	// endpoints.
	MetricDeltaPct map[string]Pct `json:"metric_delta_pct,omitempty"`
	// Gated reports whether this delta tripped the -threshold gate.
	Gated bool `json:"gated"`
}

// Report is the -json document.
type Report struct {
	Labels []string `json:"labels"`
	// ThresholdPct and MinNs echo the gate configuration.
	ThresholdPct float64 `json:"threshold_pct"`
	MinNs        float64 `json:"min_ns"`
	Deltas       []Delta `json:"deltas"`
	// Gated counts deltas that exceeded the threshold.
	Gated int `json:"gated"`
}

// LaneReport is one lane's two-newest diff plus the files it came from.
type LaneReport struct {
	Lane string `json:"lane"`
	// Files holds the two diffed snapshot paths, oldest first.
	Files []string `json:"files"`
	Report
}

// SkippedLane names a lane that could not be diffed and why.
type SkippedLane struct {
	Lane   string   `json:"lane"`
	Files  []string `json:"files"`
	Reason string   `json:"reason"`
}

// LanesReport is the -lanes -json document.
type LanesReport struct {
	ThresholdPct float64       `json:"threshold_pct"`
	MinNs        float64       `json:"min_ns"`
	Lanes        []LaneReport  `json:"lanes"`
	Skipped      []SkippedLane `json:"skipped,omitempty"`
	// Gated sums the gated deltas across every lane.
	Gated int `json:"gated"`
}

// laneOf derives the lane name from a snapshot label: the leading
// '-'-separated digit-free segments ("scale-20260808" -> "scale",
// "wal-compact-20260808" -> "wal-compact"). A label that leads with a
// digit — the plain date-stamped micro-bench snapshots, with or without a
// commit suffix — falls into the default "bench" lane.
func laneOf(label string) string {
	var segs []string
	for _, seg := range strings.Split(label, "-") {
		if seg == "" || strings.ContainsAny(seg, "0123456789") {
			break
		}
		segs = append(segs, seg)
	}
	if len(segs) == 0 {
		return "bench"
	}
	return strings.Join(segs, "-")
}

// laneSnap pairs a loaded snapshot with the file it came from, so lane
// reports can name their inputs.
type laneSnap struct {
	file string
	snap benchfmt.Snapshot
}

// diffLanes groups the snapshots by lane, orders each lane by generation
// time (label as the tiebreak), and diffs the two newest per lane. Lanes
// with a single snapshot land in Skipped.
func diffLanes(snaps []laneSnap, thresholdPct, minNs float64) LanesReport {
	rep := LanesReport{ThresholdPct: thresholdPct, MinNs: minNs}
	groups := map[string][]laneSnap{}
	for _, ls := range snaps {
		lane := laneOf(ls.snap.Label)
		groups[lane] = append(groups[lane], ls)
	}
	lanes := make([]string, 0, len(groups))
	for lane := range groups {
		lanes = append(lanes, lane)
	}
	sort.Strings(lanes)
	for _, lane := range lanes {
		group := groups[lane]
		sort.SliceStable(group, func(i, j int) bool {
			if group[i].snap.GeneratedUnix != group[j].snap.GeneratedUnix {
				return group[i].snap.GeneratedUnix < group[j].snap.GeneratedUnix
			}
			return group[i].snap.Label < group[j].snap.Label
		})
		if len(group) < 2 {
			files := make([]string, 0, len(group))
			for _, ls := range group {
				files = append(files, ls.file)
			}
			rep.Skipped = append(rep.Skipped, SkippedLane{
				Lane: lane, Files: files, Reason: "needs two snapshots to diff",
			})
			continue
		}
		oldS, newS := group[len(group)-2], group[len(group)-1]
		lr := LaneReport{
			Lane:   lane,
			Files:  []string{oldS.file, newS.file},
			Report: diff([]benchfmt.Snapshot{oldS.snap, newS.snap}, thresholdPct, minNs),
		}
		rep.Gated += lr.Report.Gated
		rep.Lanes = append(rep.Lanes, lr)
	}
	return rep
}

// writeLanes renders one delta table per lane plus the aggregate summary.
func writeLanes(w io.Writer, rep LanesReport) error {
	for i, lr := range rep.Lanes {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "lane %s: %s -> %s\n", lr.Lane, lr.Labels[0], lr.Labels[1])
		if err := writeTable(w, lr.Report); err != nil {
			return err
		}
		fmt.Fprintf(w, "%d benchmark(s) compared, %d gated at +%.1f%%\n",
			len(lr.Deltas), lr.Report.Gated, rep.ThresholdPct)
	}
	for _, sk := range rep.Skipped {
		fmt.Fprintf(w, "\nlane %s: skipped (%s)\n", sk.Lane, sk.Reason)
	}
	fmt.Fprintf(w, "\n%d lane(s) diffed, %d skipped, %d gated at +%.1f%%\n",
		len(rep.Lanes), len(rep.Skipped), rep.Gated, rep.ThresholdPct)
	return nil
}

func pct(oldV, newV float64) Pct {
	if oldV <= 0 {
		return Pct(math.NaN())
	}
	return Pct((newV - oldV) / oldV * 100)
}

// diff builds the per-benchmark deltas across the snapshots, sorted by
// key. Gating considers only ns/op regressions: a benchmark trips the
// gate when its baseline is at or above minNs and ns/op grew by more than
// thresholdPct percent (thresholdPct <= 0 disables the gate).
func diff(snaps []benchfmt.Snapshot, thresholdPct, minNs float64) Report {
	rep := Report{ThresholdPct: thresholdPct, MinNs: minNs}
	byKey := make([]map[string]benchfmt.Benchmark, len(snaps))
	keys := map[string]benchfmt.Benchmark{}
	for i, s := range snaps {
		rep.Labels = append(rep.Labels, s.Label)
		byKey[i] = s.ByKey()
		for k, b := range byKey[i] {
			keys[k] = b
		}
	}
	first, last := byKey[0], byKey[len(byKey)-1]
	for key, any := range keys {
		d := Delta{
			Key:            key,
			Name:           any.Name,
			NsDeltaPct:     Pct(math.NaN()),
			BytesDeltaPct:  Pct(math.NaN()),
			AllocsDeltaPct: Pct(math.NaN()),
		}
		for i := range snaps {
			if b, ok := byKey[i][key]; ok {
				d.NsPerOp = append(d.NsPerOp, b.NsPerOp)
			} else {
				d.NsPerOp = append(d.NsPerOp, -1)
			}
		}
		oldB, oldOK := first[key]
		newB, newOK := last[key]
		if oldOK && newOK {
			d.NsDeltaPct = pct(oldB.NsPerOp, newB.NsPerOp)
			if oldB.BytesPerOp != nil && newB.BytesPerOp != nil {
				d.BytesDeltaPct = pct(*oldB.BytesPerOp, *newB.BytesPerOp)
			}
			if oldB.AllocsPerOp != nil && newB.AllocsPerOp != nil {
				d.AllocsDeltaPct = pct(*oldB.AllocsPerOp, *newB.AllocsPerOp)
			}
			for unit, oldV := range oldB.Metrics {
				newV, ok := newB.Metrics[unit]
				if !ok {
					continue
				}
				if d.MetricDeltaPct == nil {
					d.MetricDeltaPct = make(map[string]Pct)
				}
				d.MetricDeltaPct[unit] = pct(oldV, newV)
			}
			if thresholdPct > 0 && oldB.NsPerOp >= minNs && !math.IsNaN(float64(d.NsDeltaPct)) && float64(d.NsDeltaPct) > thresholdPct {
				d.Gated = true
				rep.Gated++
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Key < rep.Deltas[j].Key })
	return rep
}

// fmtDelta renders a percent delta column: signed fixed-point, "-" for
// not-comparable, and a "!" suffix on gated values.
func fmtDelta(v Pct, gated bool) string {
	if math.IsNaN(float64(v)) {
		return "-"
	}
	s := fmt.Sprintf("%+.1f%%", float64(v))
	if gated {
		s += "!"
	}
	return s
}

// fmtNs renders one ns/op trajectory cell ("-" for a missing benchmark).
func fmtNs(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// writeTable renders the delta table.
func writeTable(w io.Writer, rep Report) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	header := "benchmark"
	for _, l := range rep.Labels {
		header += "\tns/op " + l
	}
	header += "\tdelta\tB/op\tallocs/op"
	fmt.Fprintln(tw, header)
	for _, d := range rep.Deltas {
		row := d.Key
		for _, v := range d.NsPerOp {
			row += "\t" + fmtNs(v)
		}
		row += "\t" + fmtDelta(d.NsDeltaPct, d.Gated)
		row += "\t" + fmtDelta(d.BytesDeltaPct, false)
		row += "\t" + fmtDelta(d.AllocsDeltaPct, false)
		fmt.Fprintln(tw, row)
		if len(d.MetricDeltaPct) > 0 {
			units := make([]string, 0, len(d.MetricDeltaPct))
			for u := range d.MetricDeltaPct {
				units = append(units, u)
			}
			sort.Strings(units)
			for _, u := range units {
				// Same cell count as a benchmark row, so tabwriter keeps one
				// aligned block: the metric delta lands in the delta column.
				row := "  [" + u + "]" + strings.Repeat("\t", len(d.NsPerOp))
				fmt.Fprintln(tw, row+"\t"+fmtDelta(d.MetricDeltaPct[u], false)+"\t\t")
			}
		}
	}
	return tw.Flush()
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errThreshold):
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0, "fail (exit 2) when any ns/op regression exceeds this `percent` (0 = report only)")
	minNs := fs.Float64("min-ns", 1000, "noise floor: gate only benchmarks whose baseline ns/op is at least `ns`")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of a table")
	lanes := fs.Bool("lanes", false, "group the files by label lane prefix and diff the two newest snapshots per lane")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	min := 2
	if *lanes {
		min = 1
	}
	if len(files) < min {
		return fmt.Errorf("need at least %d snapshot file(s), got %d (usage: benchdiff OLD.json NEW.json..., or benchdiff -lanes BENCH_*.json)", min, len(files))
	}
	snaps := make([]laneSnap, 0, len(files))
	for _, f := range files {
		s, err := benchfmt.ReadFile(f)
		if err != nil {
			return err
		}
		snaps = append(snaps, laneSnap{file: f, snap: s})
	}
	if *lanes {
		rep := diffLanes(snaps, *threshold, *minNs)
		if *asJSON {
			if err := obs.EncodeJSON(out, rep); err != nil {
				return err
			}
		} else if err := writeLanes(out, rep); err != nil {
			return err
		}
		if rep.Gated > 0 {
			return fmt.Errorf("%w: %d benchmark(s) regressed more than %.1f%% (see tables)", errThreshold, rep.Gated, *threshold)
		}
		return nil
	}
	flat := make([]benchfmt.Snapshot, 0, len(snaps))
	for _, ls := range snaps {
		flat = append(flat, ls.snap)
	}
	rep := diff(flat, *threshold, *minNs)
	if *asJSON {
		if err := obs.EncodeJSON(out, rep); err != nil {
			return err
		}
	} else {
		if err := writeTable(out, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%d benchmark(s) compared (%s -> %s), %d gated at +%.1f%%\n",
			len(rep.Deltas), rep.Labels[0], rep.Labels[len(rep.Labels)-1], rep.Gated, rep.ThresholdPct)
	}
	if rep.Gated > 0 {
		return fmt.Errorf("%w: %d benchmark(s) regressed more than %.1f%% (see table)", errThreshold, rep.Gated, *threshold)
	}
	return nil
}
