package main

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var fixtures = []string{
	filepath.Join("testdata", "BENCH_old.json"),
	filepath.Join("testdata", "BENCH_new.json"),
}

// TestGoldenTable: the delta table (with a tripping threshold) matches
// the committed golden file byte for byte, and the gate surfaces as
// errThreshold so main can exit 2.
func TestGoldenTable(t *testing.T) {
	var out strings.Builder
	err := run(append([]string{"-threshold", "25"}, fixtures...), &out)
	if !errors.Is(err, errThreshold) {
		t.Fatalf("run err = %v, want errThreshold", err)
	}
	golden, rerr := os.ReadFile(filepath.Join("testdata", "golden_table.txt"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if out.String() != string(golden) {
		t.Fatalf("table drifted from golden file:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestThresholdModes: report-only mode (threshold 0) never gates; a
// generous threshold passes; the noise floor exempts fast benchmarks
// (BenchmarkFast regresses +80% but sits under -min-ns 1000).
func TestThresholdModes(t *testing.T) {
	var out strings.Builder
	if err := run(fixtures, &out); err != nil {
		t.Fatalf("report-only run failed: %v", err)
	}
	if !strings.Contains(out.String(), "0 gated at +0.0%") {
		t.Fatalf("report-only output gated something:\n%s", out.String())
	}

	out.Reset()
	if err := run(append([]string{"-threshold", "50"}, fixtures...), &out); err != nil {
		t.Fatalf("generous threshold tripped: %v", err)
	}

	// Dropping the noise floor brings BenchmarkFast (100 -> 180 ns) into
	// the gate as a second regression.
	out.Reset()
	err := run(append([]string{"-threshold", "25", "-min-ns", "0"}, fixtures...), &out)
	if !errors.Is(err, errThreshold) {
		t.Fatalf("run err = %v, want errThreshold", err)
	}
	if !strings.Contains(out.String(), "2 gated at +25.0%") {
		t.Fatalf("no-floor run gated wrong count:\n%s", out.String())
	}
}

// TestJSONReport: -json emits the full report document.
func TestJSONReport(t *testing.T) {
	var out strings.Builder
	err := run(append([]string{"-threshold", "25", "-json"}, fixtures...), &out)
	if !errors.Is(err, errThreshold) {
		t.Fatalf("run err = %v, want errThreshold", err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Labels) != 2 || rep.Labels[0] != "old" || rep.Labels[1] != "new" {
		t.Fatalf("labels = %v", rep.Labels)
	}
	if rep.Gated != 1 || len(rep.Deltas) != 5 {
		t.Fatalf("report = gated %d, %d deltas", rep.Gated, len(rep.Deltas))
	}
	byKey := map[string]Delta{}
	for _, d := range rep.Deltas {
		byKey[d.Key] = d
	}
	slow := byKey["repro/internal/trim.BenchmarkSlow"]
	if !slow.Gated || slow.NsDeltaPct != 40 || slow.BytesDeltaPct != -25 {
		t.Fatalf("slow delta = %+v", slow)
	}
	metric := byKey["repro/internal/slim.BenchmarkMetric"]
	if metric.MetricDeltaPct["triples/op"] != 25 {
		t.Fatalf("metric delta = %+v", metric)
	}
	gone := byKey["repro/internal/mark.BenchmarkGone"]
	if len(gone.NsPerOp) != 2 || gone.NsPerOp[1] != -1 {
		t.Fatalf("gone delta = %+v", gone)
	}
}

// laneFixtures feed the -lanes tests: a two-snapshot bench lane, a
// three-snapshot scale lane (only the two newest may be diffed), and a
// lone wal lane that must be skipped, never an error.
var laneFixtures = []string{
	filepath.Join("testdata", "BENCH_micro-a.json"),
	filepath.Join("testdata", "BENCH_micro-b.json"),
	filepath.Join("testdata", "BENCH_scale-0.json"),
	filepath.Join("testdata", "BENCH_scale-a.json"),
	filepath.Join("testdata", "BENCH_scale-b.json"),
	filepath.Join("testdata", "BENCH_wal-a.json"),
}

// TestLaneOf pins the label -> lane mapping: date-stamped labels (with or
// without a commit suffix) fall into the default bench lane, a digit-free
// prefix names its own lane.
func TestLaneOf(t *testing.T) {
	for label, want := range map[string]string{
		"20260806":         "bench",
		"20260808-799e618": "bench",
		"scale-20260808":   "scale",
		"wal-compact-2026": "wal-compact",
		"old":              "old",
		"":                 "bench",
	} {
		if got := laneOf(label); got != want {
			t.Errorf("laneOf(%q) = %q, want %q", label, got, want)
		}
	}
}

// TestGoldenLanes: the per-lane tables (with a tripping threshold in the
// bench lane) match the committed golden file byte for byte; the gate
// still surfaces as errThreshold so main exits 2.
func TestGoldenLanes(t *testing.T) {
	var out strings.Builder
	err := run(append([]string{"-lanes", "-threshold", "25"}, laneFixtures...), &out)
	if !errors.Is(err, errThreshold) {
		t.Fatalf("run err = %v, want errThreshold", err)
	}
	golden, rerr := os.ReadFile(filepath.Join("testdata", "golden_lanes.txt"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if out.String() != string(golden) {
		t.Fatalf("lane tables drifted from golden file:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestLanesJSON: the -lanes -json document groups by lane, picks the two
// newest snapshots per lane, and carries the skipped lane with a reason.
func TestLanesJSON(t *testing.T) {
	var out strings.Builder
	err := run(append([]string{"-lanes", "-threshold", "25", "-json"}, laneFixtures...), &out)
	if !errors.Is(err, errThreshold) {
		t.Fatalf("run err = %v, want errThreshold", err)
	}
	var rep LanesReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("lanes report not JSON: %v\n%s", err, out.String())
	}
	if rep.Gated != 1 || len(rep.Lanes) != 2 || len(rep.Skipped) != 1 {
		t.Fatalf("report = gated %d, %d lanes, %d skipped", rep.Gated, len(rep.Lanes), len(rep.Skipped))
	}
	bench, scale := rep.Lanes[0], rep.Lanes[1]
	if bench.Lane != "bench" || bench.Report.Gated != 1 ||
		bench.Labels[0] != "20250101" || bench.Labels[1] != "20250102" {
		t.Fatalf("bench lane = %+v", bench)
	}
	if scale.Lane != "scale" || scale.Report.Gated != 0 ||
		scale.Labels[0] != "scale-20250101" || scale.Labels[1] != "scale-20250103" {
		t.Fatalf("scale lane chose the wrong pair: %+v", scale)
	}
	wantFiles := []string{
		filepath.Join("testdata", "BENCH_scale-a.json"),
		filepath.Join("testdata", "BENCH_scale-b.json"),
	}
	if len(scale.Files) != 2 || scale.Files[0] != wantFiles[0] || scale.Files[1] != wantFiles[1] {
		t.Fatalf("scale lane files = %v, want %v", scale.Files, wantFiles)
	}
	if rep.Skipped[0].Lane != "wal" || !strings.Contains(rep.Skipped[0].Reason, "two snapshots") {
		t.Fatalf("skipped = %+v", rep.Skipped)
	}
}

// TestLanesSingleFile: one snapshot in -lanes mode is a clean run with a
// skipped lane — the scaling lane must not break bench-diff before its
// second snapshot lands.
func TestLanesSingleFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-lanes", filepath.Join("testdata", "BENCH_wal-a.json")}, &out); err != nil {
		t.Fatalf("single-snapshot lanes run failed: %v", err)
	}
	if !strings.Contains(out.String(), "0 lane(s) diffed, 1 skipped") {
		t.Fatalf("summary missing the skip:\n%s", out.String())
	}
}

// TestDiffMath: percent math and NaN handling for non-comparable pairs.
func TestDiffMath(t *testing.T) {
	if got := pct(100, 150); got != 50 {
		t.Fatalf("pct(100,150) = %v", got)
	}
	if got := pct(0, 150); !math.IsNaN(float64(got)) {
		t.Fatalf("pct(0,150) = %v, want NaN", got)
	}
}

// TestUsageErrors: too few files and unreadable files are plain errors
// (exit 1), never the threshold sentinel (exit 2).
func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	err := run([]string{fixtures[0]}, &out)
	if err == nil || errors.Is(err, errThreshold) {
		t.Fatalf("single-file run err = %v", err)
	}
	err = run([]string{fixtures[0], filepath.Join("testdata", "missing.json")}, &out)
	if err == nil || errors.Is(err, errThreshold) {
		t.Fatalf("missing-file run err = %v", err)
	}
}
