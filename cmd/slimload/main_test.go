package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
)

// TestSlimloadSmoke: a short two-level sweep produces a parseable
// benchfmt snapshot with one row per op class per level plus the "all"
// aggregate, and leaves wait samples on the tracked store lock.
func TestSlimloadSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	var buf strings.Builder
	if err := run([]string{"-duration", "100ms", "-goroutines", "1,2",
		"-preload", "16", "-patients", "2", "-label", "smoke", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	snap, err := benchfmt.ReadFile(out)
	if err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
	if snap.Label != "smoke" || snap.GoVersion == "" {
		t.Fatalf("snapshot header = %+v", snap)
	}
	byKey := snap.ByKey()
	for _, g := range []string{"g1", "g2"} {
		for _, class := range []string{"create", "select", "view", "path", "resolve", "all"} {
			key := "repro/cmd/slimload.Slimload/" + class + "/" + g
			b, ok := byKey[key]
			if !ok {
				t.Fatalf("snapshot missing %s; have %d rows", key, len(snap.Benchmarks))
			}
			if b.Iterations <= 0 || b.NsPerOp <= 0 {
				t.Fatalf("%s = %+v, want positive iterations and ns/op", key, b)
			}
			for _, metric := range []string{"ops/s", "p50-ns", "p95-ns", "p99-ns"} {
				if b.Metrics[metric] <= 0 {
					t.Fatalf("%s missing metric %s: %+v", key, metric, b.Metrics)
				}
			}
		}
	}
	// The run went through the tracked store lock: every acquisition is a
	// wait sample, so the acceptance signal (nonzero samples) is
	// deterministic.
	st, ok := obs.LockProfile(obs.LockTrimStore)
	if !ok {
		t.Fatal("trim.store not in the lock table")
	}
	if st.Write.Total == 0 || st.Write.WaitSamples == 0 {
		t.Fatalf("store lock saw no write traffic: %+v", st.Write)
	}
	if !strings.Contains(buf.String(), "lock contention") {
		t.Fatalf("human output missing the contention summary:\n%s", buf.String())
	}
}

// TestSlimloadWALBackend: the sweep runs with durability under load; the
// WAL file must exist afterwards and the run must stay error-free.
func TestSlimloadWALBackend(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-duration", "80ms", "-goroutines", "2", "-preload", "8",
		"-patients", "1", "-backend", "wal", "-dir", dir, "-out", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "op error") {
		t.Fatalf("ops errored under the WAL backend:\n%s", buf.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "slimload-g2.wal*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL state written in %s (err=%v)", dir, err)
	}
}

// TestSlimloadFlagErrors: malformed sweeps and mixes fail fast.
func TestSlimloadFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-goroutines", "0"},
		{"-goroutines", "x"},
		{"-goroutines", ""},
		{"-mix", "create"},
		{"-mix", "warp=10"},
		{"-mix", "create=0,select=0,view=0,path=0,resolve=0"},
		{"-backend", "bogus", "-duration", "10ms"},
	} {
		var buf strings.Builder
		if err := run(append(args, "-out", "-"), &buf); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestLatHist: the geometric ladder's quantiles are monotone and
// conservative (upper bounds), and merging preserves totals.
func TestLatHist(t *testing.T) {
	var a, b latHist
	for i := 0; i < 90; i++ {
		a.observe(int64(time.Microsecond))
	}
	for i := 0; i < 10; i++ {
		b.observe(int64(10 * time.Millisecond))
	}
	a.merge(&b)
	if a.n != 100 {
		t.Fatalf("merged n = %d", a.n)
	}
	p50, p99 := a.quantile(0.50), a.quantile(0.99)
	if p50 < int64(time.Microsecond) || p50 > int64(2*time.Microsecond) {
		t.Fatalf("p50 = %s", time.Duration(p50))
	}
	if p99 < int64(10*time.Millisecond) || p99 > int64(13*time.Millisecond) {
		t.Fatalf("p99 = %s", time.Duration(p99))
	}
	if a.maxNS != int64(10*time.Millisecond) {
		t.Fatalf("max = %s", time.Duration(a.maxNS))
	}
	// Overflow past the ladder's last bound reports the true max.
	var o latHist
	o.observe(int64(time.Minute))
	if o.quantile(0.99) != int64(time.Minute) {
		t.Fatalf("overflow quantile = %s", time.Duration(o.quantile(0.99)))
	}
}
