// slimload is the concurrency scoreboard: a closed-loop workload
// generator that replays a configurable mix of TRIM and mark operations
// (create/select/view/path/resolve) against a fresh store at increasing
// goroutine counts, and reports throughput and latency quantiles per op
// class at each level. Its purpose is to make the scaling behaviour of
// the single store lock *measurable before* the sharding work starts:
// the same run that prints ops/s also leaves wait/hold distributions in
// the lock.* metric families and /debug/contention.
//
// Usage (see `make bench-scale`):
//
//	slimload -duration 2s -goroutines 1,4,16,64 -out BENCH_scale.json
//
// The JSON output is a benchfmt snapshot (one benchmark per op class per
// goroutine level, plus an "all" row per level), so cmd/benchdiff can
// compare scaling curves across commits exactly like the micro-bench
// lane.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/clinical"
	"repro/internal/metamodel"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slimload:", err)
		os.Exit(1)
	}
	if s := obs.ActiveServer(); s != nil {
		fmt.Fprintf(os.Stderr, "slimload: serving diagnostics at %s (interrupt to exit)\n", s.URL())
		obs.AwaitInterrupt(context.Background())
		s.Close()
	}
}

// Op classes in the workload mix. create is the only writer; the rest
// exercise the store and mark-manager read paths.
const (
	opCreate = iota
	opSelect
	opView
	opPath
	opResolve
	numClasses
)

var classNames = [numClasses]string{"create", "select", "view", "path", "resolve"}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slimload", flag.ContinueOnError)
	duration := fs.Duration("duration", 2*time.Second, "run `dur` per goroutine level")
	levelsFlag := fs.String("goroutines", "1,4,16,64", "comma-separated goroutine counts to sweep")
	mixFlag := fs.String("mix", "create=30,select=25,view=15,path=15,resolve=15",
		"op mix as class=weight pairs (classes: create,select,view,path,resolve)")
	preload := fs.Int("preload", 64, "bundles preloaded into each level's store")
	patients := fs.Int("patients", 8, "clinical patients behind the mark workload")
	seed := fs.Int64("seed", 1, "deterministic world/op-pick seed")
	backend := fs.String("backend", "", "durability backend under load: "+strings.Join(trim.BackendKinds(), "|")+" (default in-memory)")
	dir := fs.String("dir", "", "backend state directory (default a temp dir)")
	label := fs.String("label", "scale", "snapshot label for the JSON output")
	outFile := fs.String("out", "", "write the benchfmt snapshot to `file` (default BENCH_<label>.json; \"-\" for stdout)")
	var cli obs.CLI
	cli.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	levels, err := parseLevels(*levelsFlag)
	if err != nil {
		return err
	}
	weights, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	if err := cli.Start(); err != nil {
		return err
	}
	// Sample the runtime during the sweep even without -serve, so the
	// runtime.* sched/GC families cover the loaded interval; with -serve
	// the CLI has already started the recorder.
	if cli.Serve == "" && cli.Flight > 0 {
		obs.DefaultFlight.Start(cli.Flight)
		defer obs.DefaultFlight.Stop()
	}
	stateDir := *dir
	if *backend != "" && stateDir == "" {
		tmp, err := os.MkdirTemp("", "slimload-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		stateDir = tmp
	}

	var benches []benchfmt.Benchmark
	for _, g := range levels {
		res, err := runLevel(levelConfig{
			goroutines: g,
			duration:   *duration,
			weights:    weights,
			preload:    *preload,
			patients:   *patients,
			seed:       *seed,
			backend:    *backend,
			dir:        stateDir,
		})
		if err != nil {
			return err
		}
		printLevel(out, res)
		benches = append(benches, res.benchmarks()...)
	}
	printLocks(out)
	if err := writeSnapshot(*outFile, *label, benches, out); err != nil {
		return err
	}
	return cli.Finish(out)
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-goroutines lists no levels")
	}
	return out, nil
}

func parseMix(s string) ([numClasses]int, error) {
	var w [numClasses]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return w, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		idx := -1
		for i, cn := range classNames {
			if cn == name {
				idx = i
			}
		}
		if idx < 0 {
			return w, fmt.Errorf("unknown op class %q (have %s)", name, strings.Join(classNames[:], ","))
		}
		w[idx] = n
	}
	total := 0
	for _, n := range w {
		total += n
	}
	if total == 0 {
		return w, fmt.Errorf("op mix has zero total weight")
	}
	return w, nil
}

// levelConfig parameterizes one goroutine level of the sweep.
type levelConfig struct {
	goroutines int
	duration   time.Duration
	weights    [numClasses]int
	preload    int
	patients   int
	seed       int64
	backend    string
	dir        string
}

// world is the per-level workload fixture: a fresh TRIM store holding the
// bundle/scrap metamodel plus preloaded bundles, and a clinical
// environment whose mark manager serves the resolve class.
type world struct {
	store   *trim.Manager
	root    rdf.Term
	bundles []rdf.Term
	nested  rdf.Term
	marks   []string
	env     *clinical.Environment
	backend trim.Backend
}

func buildWorld(cfg levelConfig) (*world, error) {
	w := &world{
		store:  trim.NewManager(),
		nested: rdf.IRI(metamodel.ConnNestedBundle),
	}
	if err := metamodel.Encode(metamodel.BundleScrapModel(), w.store); err != nil {
		return nil, err
	}
	w.root = rdf.IRI(rdf.NSInst + fmt.Sprintf("slimload-root-g%d", cfg.goroutines))
	if _, err := w.store.Create(rdf.T(w.root, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle))); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.preload; i++ {
		b := rdf.IRI(rdf.NSInst + fmt.Sprintf("slimload-g%d-pre-%d", cfg.goroutines, i))
		triples := []rdf.Triple{
			rdf.T(b, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)),
			rdf.T(b, rdf.IRI(metamodel.ConnBundleName), rdf.String(fmt.Sprintf("pre-%d", i))),
			rdf.T(w.root, w.nested, b),
		}
		for _, t := range triples {
			if _, err := w.store.Create(t); err != nil {
				return nil, err
			}
		}
		w.bundles = append(w.bundles, b)
	}
	env, err := clinical.NewEnvironment(cfg.seed, cfg.patients)
	if err != nil {
		return nil, err
	}
	w.env = env
	for _, p := range env.Patients {
		if err := env.SelectMed(p, 0); err != nil {
			return nil, err
		}
		m, err := env.Marks.CreateFromSelection("spreadsheet")
		if err != nil {
			return nil, err
		}
		w.marks = append(w.marks, m.ID)
		if err := env.SelectLab(p, "Na"); err != nil {
			return nil, err
		}
		m, err = env.Marks.CreateFromSelection("xml")
		if err != nil {
			return nil, err
		}
		w.marks = append(w.marks, m.ID)
	}
	if cfg.backend != "" {
		path := filepath.Join(cfg.dir, fmt.Sprintf("slimload-g%d.%s", cfg.goroutines, cfg.backend))
		b, err := trim.OpenBackend(cfg.backend, w.store, path)
		if err != nil {
			return nil, err
		}
		w.backend = b
	}
	return w, nil
}

// levelResult aggregates the merged per-class latency histograms for one
// goroutine level.
type levelResult struct {
	goroutines int
	elapsed    time.Duration
	classes    [numClasses]classResult
	errs       int64
}

type classResult struct {
	hist latHist
}

func runLevel(cfg levelConfig) (levelResult, error) {
	w, err := buildWorld(cfg)
	if err != nil {
		return levelResult{}, err
	}
	res := levelResult{goroutines: cfg.goroutines}

	// With a durability backend under load, a committer goroutine turns
	// captured mutations into fsynced commits while the workers run —
	// durability cost lands inside the measured window, as in production.
	var commitStop chan struct{}
	var commitDone chan struct{}
	if w.backend != nil {
		commitStop = make(chan struct{})
		commitDone = make(chan struct{})
		go func() {
			defer close(commitDone)
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-commitStop:
					return
				case <-tick.C:
					_ = w.backend.Save()
				}
			}
		}()
	}

	cum := cumulative(cfg.weights)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	workers := make([]*worker, cfg.goroutines)
	for i := 0; i < cfg.goroutines; i++ {
		workers[i] = newWorker(i, cfg, w, cum)
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.loop(deadline)
		}(workers[i])
	}
	wg.Wait()
	res.elapsed = time.Since(start)

	if w.backend != nil {
		close(commitStop)
		<-commitDone
		if err := w.backend.Save(); err != nil {
			return res, err
		}
		if err := w.backend.Close(); err != nil {
			return res, err
		}
	}
	for _, wk := range workers {
		for c := 0; c < numClasses; c++ {
			res.classes[c].hist.merge(&wk.hists[c])
		}
		res.errs += wk.errs
	}
	return res, nil
}

func cumulative(w [numClasses]int) [numClasses]int {
	var cum [numClasses]int
	total := 0
	for i, n := range w {
		total += n
		cum[i] = total
	}
	return cum
}

// worker is one closed-loop load goroutine with its own RNG and local
// latency histograms; nothing is shared during the run, so recording an
// op costs two array writes.
type worker struct {
	id    int
	w     *world
	rng   *rand.Rand
	cum   [numClasses]int
	total int
	hists [numClasses]latHist
	errs  int64
	seq   int
}

func newWorker(id int, cfg levelConfig, w *world, cum [numClasses]int) *worker {
	return &worker{
		id:    id,
		w:     w,
		rng:   rand.New(rand.NewSource(cfg.seed + int64(id)*7919)),
		cum:   cum,
		total: cum[numClasses-1],
	}
}

func (wk *worker) loop(deadline time.Time) {
	for time.Now().Before(deadline) {
		class := wk.pick()
		t0 := time.Now()
		err := wk.do(class)
		d := time.Since(t0)
		wk.hists[class].observe(d.Nanoseconds())
		if err != nil {
			wk.errs++
		}
	}
}

func (wk *worker) pick() int {
	r := wk.rng.Intn(wk.total)
	for i, c := range wk.cum {
		if r < c {
			return i
		}
	}
	return numClasses - 1
}

func (wk *worker) do(class int) error {
	w := wk.w
	switch class {
	case opCreate:
		wk.seq++
		b := rdf.IRI(rdf.NSInst + fmt.Sprintf("slimload-w%d-%d", wk.id, wk.seq))
		parent := w.bundles[wk.rng.Intn(len(w.bundles))]
		for _, t := range []rdf.Triple{
			rdf.T(b, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)),
			rdf.T(b, rdf.IRI(metamodel.ConnBundleName), rdf.String(fmt.Sprintf("w%d-%d", wk.id, wk.seq))),
			rdf.T(parent, w.nested, b),
		} {
			if _, err := w.store.Create(t); err != nil {
				return err
			}
		}
	case opSelect:
		b := w.bundles[wk.rng.Intn(len(w.bundles))]
		w.store.Select(rdf.P(b, rdf.Zero, rdf.Zero))
	case opView:
		b := w.bundles[wk.rng.Intn(len(w.bundles))]
		w.store.View(b)
	case opPath:
		w.store.Path([]rdf.Term{w.root}, w.nested)
	case opResolve:
		id := w.marks[wk.rng.Intn(len(w.marks))]
		if _, err := w.env.Marks.Resolve(id); err != nil {
			return err
		}
	}
	return nil
}

// latHist is a fixed geometric-ladder latency histogram (factor 1.25 from
// 100ns to >10s, ~85 buckets): constant memory per worker regardless of
// op count, with quantile error bounded by the bucket ratio.
type latHist struct {
	counts [numLatBuckets]int64
	n      int64
	sumNS  int64
	maxNS  int64
}

var latBounds = buildLatBounds()

const numLatBuckets = 84

func buildLatBounds() []int64 {
	var bounds []int64
	for v := float64(100); v < 10e9; v *= 1.25 {
		bounds = append(bounds, int64(v))
	}
	// One overflow bucket past the last bound.
	if len(bounds)+1 != numLatBuckets {
		panic(fmt.Sprintf("latency ladder has %d buckets, want %d", len(bounds)+1, numLatBuckets))
	}
	return bounds
}

func (h *latHist) observe(ns int64) {
	i := sort.Search(len(latBounds), func(i int) bool { return ns <= latBounds[i] })
	h.counts[i]++
	h.n++
	h.sumNS += ns
	if ns > h.maxNS {
		h.maxNS = ns
	}
}

func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sumNS += o.sumNS
	if o.maxNS > h.maxNS {
		h.maxNS = o.maxNS
	}
}

// quantile returns the upper bound of the bucket holding the q-th sample
// (conservative: true quantile is at most 25% lower).
func (h *latHist) quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i < len(latBounds) {
				return latBounds[i]
			}
			return h.maxNS
		}
	}
	return h.maxNS
}

func (h *latHist) meanNS() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sumNS) / float64(h.n)
}

func (r levelResult) totalOps() int64 {
	var n int64
	for _, c := range r.classes {
		n += c.hist.n
	}
	return n
}

// benchmarks renders the level as benchfmt rows: one per op class that
// ran, plus an "all" row carrying the level's aggregate throughput.
func (r levelResult) benchmarks() []benchfmt.Benchmark {
	secs := r.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	var out []benchfmt.Benchmark
	for c := 0; c < numClasses; c++ {
		h := &r.classes[c].hist
		if h.n == 0 {
			continue
		}
		out = append(out, benchfmt.Benchmark{
			Name:       fmt.Sprintf("Slimload/%s/g%d", classNames[c], r.goroutines),
			Package:    "repro/cmd/slimload",
			Iterations: h.n,
			NsPerOp:    h.meanNS(),
			Metrics: map[string]float64{
				"ops/s":  float64(h.n) / secs,
				"p50-ns": float64(h.quantile(0.50)),
				"p95-ns": float64(h.quantile(0.95)),
				"p99-ns": float64(h.quantile(0.99)),
			},
		})
	}
	total := r.totalOps()
	var all latHist
	for c := range r.classes {
		all.merge(&r.classes[c].hist)
	}
	out = append(out, benchfmt.Benchmark{
		Name:       fmt.Sprintf("Slimload/all/g%d", r.goroutines),
		Package:    "repro/cmd/slimload",
		Iterations: total,
		NsPerOp:    all.meanNS(),
		Metrics: map[string]float64{
			"ops/s":  float64(total) / secs,
			"p50-ns": float64(all.quantile(0.50)),
			"p95-ns": float64(all.quantile(0.95)),
			"p99-ns": float64(all.quantile(0.99)),
		},
	})
	return out
}

func printLevel(out io.Writer, r levelResult) {
	fmt.Fprintf(out, "== %d goroutine(s), %s ==\n", r.goroutines, r.elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "%-9s %10s %12s %10s %10s %10s %10s\n",
		"class", "ops", "ops/s", "mean", "p50", "p95", "p99")
	secs := r.elapsed.Seconds()
	row := func(name string, h *latHist) {
		fmt.Fprintf(out, "%-9s %10d %12.0f %10s %10s %10s %10s\n",
			name, h.n, float64(h.n)/secs,
			time.Duration(h.meanNS()).Round(time.Microsecond),
			time.Duration(h.quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.quantile(0.95)).Round(time.Microsecond),
			time.Duration(h.quantile(0.99)).Round(time.Microsecond))
	}
	var all latHist
	for c := 0; c < numClasses; c++ {
		h := &r.classes[c].hist
		if h.n > 0 {
			row(classNames[c], h)
		}
		all.merge(h)
	}
	row("all", &all)
	if r.errs > 0 {
		fmt.Fprintf(out, "!! %d op error(s)\n", r.errs)
	}
	fmt.Fprintln(out)
}

func printLocks(out io.Writer) {
	profiles := obs.LockProfiles()
	if len(profiles) == 0 {
		return
	}
	fmt.Fprintln(out, "lock contention (cumulative across levels):")
	mode := func(name, m string, s obs.LockModeStats) {
		if s.Total == 0 {
			return
		}
		fmt.Fprintf(out, "  %-14s %s: total=%d contended=%d wait p95=%s p99=%s  hold p95=%s\n",
			name, m, s.Total, s.Contended,
			time.Duration(s.WaitP95NS).Round(time.Microsecond),
			time.Duration(s.WaitP99NS).Round(time.Microsecond),
			time.Duration(s.HoldP95NS).Round(time.Microsecond))
	}
	for _, p := range profiles {
		mode(p.Name, "w", p.Write)
		if p.Read != nil {
			mode(p.Name, "r", *p.Read)
		}
	}
	fmt.Fprintln(out)
}

func writeSnapshot(path, label string, benches []benchfmt.Benchmark, out io.Writer) error {
	snap := benchfmt.Snapshot{
		Label:         label,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GeneratedUnix: time.Now().Unix(),
		Benchmarks:    benches,
	}
	if path == "" {
		path = "BENCH_" + label + ".json"
	}
	if path == "-" {
		return obs.EncodeJSON(out, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.EncodeJSON(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d benchmark row(s)\n", path, len(benches))
	return nil
}
