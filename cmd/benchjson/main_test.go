package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/trim
cpu: Fake CPU @ 2.00GHz
BenchmarkCreate-8   	 1000000	      1234 ns/op	     152 B/op	       2 allocs/op
BenchmarkSelect/indexed-8         	  500000	      2500.5 ns/op	       3.00 triples/op
PASS
ok  	repro/internal/trim	1.234s
pkg: repro/internal/mark
BenchmarkResolve 	   10000	    100000 ns/op
PASS
ok  	repro/internal/mark	0.567s
?   	repro/internal/rdf	[no test files]
`

func TestParse(t *testing.T) {
	benches, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks: %+v", len(benches), benches)
	}

	b := benches[0]
	if b.Name != "BenchmarkCreate" || b.Package != "repro/internal/trim" {
		t.Fatalf("first = %+v", b)
	}
	if b.Iterations != 1000000 || b.NsPerOp != 1234 {
		t.Fatalf("first = %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 152 || b.AllocsPerOp == nil || *b.AllocsPerOp != 2 {
		t.Fatalf("first allocs = %+v", b)
	}

	b = benches[1]
	if b.Name != "BenchmarkSelect/indexed" || b.Package != "repro/internal/trim" {
		t.Fatalf("second = %+v", b)
	}
	if b.NsPerOp != 2500.5 || b.Metrics["triples/op"] != 3 {
		t.Fatalf("second = %+v", b)
	}
	if b.BytesPerOp != nil {
		t.Fatal("second has no -benchmem columns")
	}

	// No GOMAXPROCS suffix, different package.
	b = benches[2]
	if b.Name != "BenchmarkResolve" || b.Package != "repro/internal/mark" || b.NsPerOp != 100000 {
		t.Fatalf("third = %+v", b)
	}
}

func TestRunSnapshot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-label", "test", "-out", "-", "-min", "3"},
		strings.NewReader(sampleBenchOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, out.String())
	}
	if snap.Label != "test" || snap.GoVersion == "" || len(snap.Benchmarks) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRunMinGate(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-min", "4", "-out", "-"}, strings.NewReader(sampleBenchOutput), &out)
	if err == nil || !strings.Contains(err.Error(), "want at least 4") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"-min", "1", "-out", "-"}, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("empty input must fail the -min gate")
	}
}
