// benchjson converts `go test -bench` output into a machine-readable
// BENCH_<label>.json snapshot: the repo's perf-trajectory lane. Each run
// records ns/op, B/op, allocs/op, and any custom benchmark metrics per
// benchmark, so successive snapshots make TRIM hot-path regressions
// diffable instead of anecdotal.
//
// Usage (see `make bench-json`):
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -label 20260806 -out BENCH_20260806.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
)

// The snapshot document and parser live in internal/benchfmt, shared with
// cmd/benchdiff; the aliases keep this package's vocabulary (and tests).
type (
	Benchmark = benchfmt.Benchmark
	Snapshot  = benchfmt.Snapshot
)

func parse(r io.Reader) ([]Benchmark, error) { return benchfmt.Parse(r) }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	label := fs.String("label", "local", "snapshot label (becomes the BENCH_<label>.json name)")
	outFile := fs.String("out", "", "output file (default BENCH_<label>.json; \"-\" for stdout)")
	minBench := fs.Int("min", 1, "fail unless at least this many benchmarks parsed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) < *minBench {
		return fmt.Errorf("parsed %d benchmark(s), want at least %d — did -bench run?", len(benches), *minBench)
	}
	snap := Snapshot{
		Label:         *label,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GeneratedUnix: time.Now().Unix(),
		Benchmarks:    benches,
	}
	path := *outFile
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if path == "-" {
		return obs.EncodeJSON(out, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.EncodeJSON(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d benchmark(s)\n", path, len(benches))
	return nil
}
