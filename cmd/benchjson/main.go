// benchjson converts `go test -bench` output into a machine-readable
// BENCH_<label>.json snapshot: the repo's perf-trajectory lane. Each run
// records ns/op, B/op, allocs/op, and any custom benchmark metrics per
// benchmark, so successive snapshots make TRIM hot-path regressions
// diffable instead of anecdotal.
//
// Usage (see `make bench-json`):
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -label 20260806 -out BENCH_20260806.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the trailing
	// "ok <pkg> <time>" line of each test binary's output).
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only when the benchmark reports
	// allocations (-benchmem or b.ReportAllocs).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "triples/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_<label>.json document.
type Snapshot struct {
	Label         string      `json:"label"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	GeneratedUnix int64       `json:"generated_unix"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// benchLine matches one benchmark result: name, iteration count, then
// value/unit pairs ("123 ns/op", "45 B/op", "6 allocs/op", custom units).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark
// name (BenchmarkCreate-8 -> BenchmarkCreate).
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads `go test -bench` output and returns the benchmarks in input
// order. Benchmarks are attributed to their package via the "ok <pkg>"
// line that follows each package's results.
func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	pending := 0 // benchmarks awaiting a package attribution
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if pkg, ok := strings.CutPrefix(line, "ok "); ok {
			name := strings.Fields(strings.TrimSpace(pkg))
			for i := len(out) - pending; i < len(out); i++ {
				if len(name) > 0 {
					out[i].Package = name[0]
				}
			}
			pending = 0
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: stripProcs(m[1]), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = &val
			case "allocs/op":
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
		pending++
	}
	return out, sc.Err()
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	label := fs.String("label", "local", "snapshot label (becomes the BENCH_<label>.json name)")
	outFile := fs.String("out", "", "output file (default BENCH_<label>.json; \"-\" for stdout)")
	minBench := fs.Int("min", 1, "fail unless at least this many benchmarks parsed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) < *minBench {
		return fmt.Errorf("parsed %d benchmark(s), want at least %d — did -bench run?", len(benches), *minBench)
	}
	snap := Snapshot{
		Label:         *label,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GeneratedUnix: time.Now().Unix(),
		Benchmarks:    benches,
	}
	path := *outFile
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if path == "-" {
		return obs.EncodeJSON(out, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.EncodeJSON(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d benchmark(s)\n", path, len(benches))
	return nil
}
