// Integration tests exercising the full stack end to end: the clinical
// base layer, the Mark Manager, the SLIM store, SLIMPad (with the §6
// extensions), the annotation and virtual-document baselines, persistence,
// and the viewing styles — the same flows as examples/, asserted.
package repro_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/annotation"
	"repro/internal/base/spreadsheet"
	"repro/internal/clinical"
	"repro/internal/core"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/slimpad"
	"repro/internal/vdoc"
)

func TestFullWorksheetLifecycle(t *testing.T) {
	env, err := clinical.NewEnvironment(2026, 3)
	if err != nil {
		t.Fatal(err)
	}
	app, err := slimpad.NewApp(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	pad, root, err := app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}

	// One bundle per patient with a template instantiated under it.
	tmpl, err := app.DMI().CreateBundle("card-template", slimpad.Coordinate{X: 0, Y: 0}, 300, 150)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.SelectLab(env.Patients[0], "K"); err != nil {
		t.Fatal(err)
	}
	kScrap, err := app.ClipSelection(tmpl.ID(), "xml", "K+", slimpad.Coordinate{X: 8, Y: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.DMI().MarkAsTemplate(tmpl.ID(), "patient-card"); err != nil {
		t.Fatal(err)
	}

	for i, p := range env.Patients {
		// Rebind the template's lab mark to this patient's lab report.
		inst, err := app.DMI().Instantiate(tmpl.ID(),
			func(s string) string { return p.Name + ": " + s },
			func(scrapName, markID string) (string, error) {
				if err := env.SelectLab(p, "K"); err != nil {
					return "", err
				}
				m, err := env.Marks.CreateFromSelection("xml")
				if err != nil {
					return "", err
				}
				return m.ID, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if err := app.DMI().AddNestedBundle(root.ID(), inst.ID()); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Annotate and link on the first patient's card.
			sid := inst.Scraps()[0]
			if err := app.DMI().AnnotateScrap(sid, "replete if < 4.0"); err != nil {
				t.Fatal(err)
			}
			if err := app.DMI().LinkScraps(sid, kScrap.ID()); err != nil {
				t.Fatal(err)
			}
		}
	}

	st, err := app.PadStats(pad.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Bundles != 4 || st.Scraps != 3 {
		t.Fatalf("stats = %+v", st)
	}

	// Conformance across pad + marks + extensions.
	problems, err := app.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("problems: %v", problems)
	}

	// Persist everything and reload in a new session.
	path := filepath.Join(t.TempDir(), "rounds.xml")
	if err := app.Save(path); err != nil {
		t.Fatal(err)
	}
	marks2 := mark.NewManager()
	for _, reg := range []error{
		marks2.RegisterApplication(env.Sheets),
		marks2.RegisterApplication(env.XML),
		marks2.RegisterApplication(env.Notes),
		marks2.RegisterApplication(env.Pager),
	} {
		if reg != nil {
			t.Fatal(reg)
		}
	}
	app2, err := slimpad.NewApp(marks2)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := app2.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 {
		t.Fatalf("pads = %d", len(pads))
	}
	// Every instantiated scrap resolves into the right patient's report.
	// Patient 0's lab is marked twice: once by the template's own scrap and
	// once by the instantiated copy.
	for i, p := range env.Patients {
		scraps, err := app2.ScrapsMarking("xml", clinical.LabFile(p))
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if i == 0 {
			want = 2
		}
		if len(scraps) != want {
			t.Fatalf("%s: scraps into lab = %d, want %d", p.MRN, len(scraps), want)
		}
		el, err := app2.OpenScrap(scraps[0].ID())
		if err != nil {
			t.Fatal(err)
		}
		if el.Address.File != clinical.LabFile(p) {
			t.Fatalf("scrap resolved into %s, want %s", el.Address.File, clinical.LabFile(p))
		}
	}
	// Notes and links survived persistence.
	noted, err := app2.DMI().ScrapsWithNote("replete")
	if err != nil || len(noted) != 1 {
		t.Fatalf("notes after reload = %v, %v", noted, err)
	}
	links, err := app2.DMI().LinkedScraps(noted[0].ID())
	if err != nil || len(links) != 1 {
		t.Fatalf("links after reload = %v, %v", links, err)
	}
}

func TestThreeSuperimposedAppsOneBaseLayer(t *testing.T) {
	// SLIMPad, annotations, and virtual documents share one base layer and
	// one mark manager — the architecture's multi-application claim.
	env, err := clinical.NewEnvironment(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := env.Patients[0]

	padApp, err := slimpad.NewApp(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	_, root, err := padApp.NewPad("pad")
	if err != nil {
		t.Fatal(err)
	}
	if err := env.SelectMed(p, 0); err != nil {
		t.Fatal(err)
	}
	scrap, err := padApp.ClipSelection(root.ID(), "spreadsheet", "", slimpad.Coordinate{})
	if err != nil {
		t.Fatal(err)
	}

	anns, err := annotation.NewStore(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.SelectLab(p, "Cr"); err != nil {
		t.Fatal(err)
	}
	a, err := anns.Annotate("xml", "question", "trend?", 10)
	if err != nil {
		t.Fatal(err)
	}

	lib := vdoc.NewLibrary(env.Marks)
	doc, err := lib.Create("signout")
	if err != nil {
		t.Fatal(err)
	}
	doc.AppendText("Med: ")
	medMark := scrap.MarkHandles()[0].MarkID()
	if err := doc.AppendSpanLink(medMark); err != nil {
		t.Fatal(err)
	}

	// All three retrieve through the same marks.
	if _, err := padApp.OpenScrap(scrap.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := anns.Navigate(a.ID); err != nil {
		t.Fatal(err)
	}
	rendered, broken, err := lib.Render("signout")
	if err != nil || broken != 0 {
		t.Fatal(err, broken)
	}
	if !strings.HasPrefix(rendered, "Med: ") || len(rendered) <= len("Med: ") {
		t.Fatalf("rendered = %q", rendered)
	}
}

func TestViewingStylesOverClinicalData(t *testing.T) {
	env, err := clinical.NewEnvironment(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	sys.Marks = env.Marks
	p := env.Patients[0]
	if err := env.SelectMed(p, 0); err != nil {
		t.Fatal(err)
	}
	m, err := env.Marks.CreateFromSelection("spreadsheet")
	if err != nil {
		t.Fatal(err)
	}
	for _, style := range []core.ViewingStyle{core.Simultaneous, core.EnhancedBase, core.Independent} {
		v, err := sys.ViewMark(style, m.ID)
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if v.Element.Content == "" {
			t.Fatalf("%v: empty content", style)
		}
		if style == core.Independent && v.BaseViewerMoved {
			t.Fatal("independent viewing moved the base viewer")
		}
	}
	// The mark's excerpt equals the resolved content (no drift yet).
	if m.Excerpt == "" {
		t.Fatal("no excerpt captured")
	}

	// Mutate the base; Refresh detects it through the whole stack.
	w, _ := env.Sheets.Workbook(clinical.MedsFile(p))
	sheet, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("A2")
	sheet.Set(cell, "CHANGED")
	_, changed, err := env.Marks.Refresh(m.ID)
	if err != nil || !changed {
		t.Fatalf("Refresh = %v, %v", changed, err)
	}
}

func TestModelMappingSlimpadToAnnotations(t *testing.T) {
	// §4.3's model-to-model mapping: scraps of a pad become annotations,
	// keeping their base-layer wiring.
	env, err := clinical.NewEnvironment(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	padApp, err := slimpad.NewApp(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	_, root, err := padApp.NewPad("pad")
	if err != nil {
		t.Fatal(err)
	}
	p := env.Patients[0]
	if err := env.SelectLab(p, "K"); err != nil {
		t.Fatal(err)
	}
	if _, err := padApp.ClipSelection(root.ID(), "xml", "K+", slimpad.Coordinate{}); err != nil {
		t.Fatal(err)
	}

	mp := metamodel.NewMapping(metamodel.ExtendedBundleScrapModel(), metamodel.AnnotationModel())
	if err := mp.MapConstruct(metamodel.ConstructScrap, metamodel.ConstructAnnotation); err != nil {
		t.Fatal(err)
	}
	if err := mp.MapConstruct(metamodel.ConstructMarkHandle, metamodel.ConstructAnchor); err != nil {
		t.Fatal(err)
	}
	if err := mp.MapConnector(metamodel.ConnScrapMark, metamodel.ConnAnnAnchor); err != nil {
		t.Fatal(err)
	}

	annStore, err := annotation.NewStore(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mp.Apply(padApp.DMI().Store().Trim(), annStore.Slim().Trim())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TypesRewritten != 2 || stats.ConnectorsRewritten != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	all, err := annStore.All()
	if err != nil || len(all) != 1 {
		t.Fatalf("mapped annotations = %d, %v", len(all), err)
	}
	// The mapped annotation still navigates to the K result.
	el, err := annStore.Navigate(all[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if el.Address.File != clinical.LabFile(p) {
		t.Fatalf("navigated to %s", el.Address.File)
	}
}
