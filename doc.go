// Package repro reproduces "Bundles in Captivity: An Application of
// Superimposed Information" (Delcambre et al., ICDE 2001): the SLIMPad
// superimposed application, the Mark Management framework, and the SLIM
// store with its TRIM triple manager and metamodel-based generic
// representation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable examples are under examples/; command-line tools
// under cmd/; and the benchmark harness regenerating the paper's figures
// and trade-off claims is bench_test.go in this directory (see
// EXPERIMENTS.md for recorded results).
package repro
