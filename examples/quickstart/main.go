// Quickstart: the smallest end-to-end superimposed-information flow.
//
// It builds two base documents (a spreadsheet and an XML report), selects an
// element in each, creates marks, drops them on a SLIMPad as scraps, and
// resolves a scrap back to its base context — the complete loop of paper §3.
package main

import (
	"fmt"
	"log"

	"repro/internal/base/spreadsheet"
	"repro/internal/base/xmldoc"
	"repro/internal/mark"
	"repro/internal/slimpad"
)

func main() {
	// 1. Base layer: a medication list (spreadsheet) and a lab report (XML).
	sheets := spreadsheet.NewApp()
	wb := spreadsheet.NewWorkbook("meds.xls")
	if _, err := wb.LoadCSV("Meds", "Drug,Dose,Route\nFurosemide,40mg,IV\nInsulin,5u,SC\n"); err != nil {
		log.Fatal(err)
	}
	if err := sheets.AddWorkbook(wb); err != nil {
		log.Fatal(err)
	}
	labs := xmldoc.NewApp()
	if _, err := labs.LoadString("lab.xml",
		`<report><panel name="electrolytes"><result code="Na">140</result><result code="K">4.1</result></panel></report>`); err != nil {
		log.Fatal(err)
	}

	// 2. Generic components: Mark Manager with one module per base type.
	marks := mark.NewManager()
	for _, err := range []error{
		marks.RegisterApplication(sheets),
		marks.RegisterApplication(labs),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}

	// 3. Superimposed application: a SLIMPad.
	pad, err := slimpad.NewApp(marks)
	if err != nil {
		log.Fatal(err)
	}
	padObj, root, err := pad.NewPad("Quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// 4. The user selects Furosemide in the spreadsheet and clips it.
	if err := sheets.Open("meds.xls"); err != nil {
		log.Fatal(err)
	}
	r, _ := spreadsheet.ParseRange("A2:C2")
	if err := sheets.SelectRange("Meds", r); err != nil {
		log.Fatal(err)
	}
	medScrap, err := pad.ClipSelection(root.ID(), spreadsheet.Scheme, "loop diuretic", slimpad.Coordinate{X: 20, Y: 20})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Likewise the potassium result from the lab report.
	if err := labs.Open("lab.xml"); err != nil {
		log.Fatal(err)
	}
	if err := labs.SelectExpr("/report/panel/result[2]"); err != nil {
		log.Fatal(err)
	}
	if _, err := pad.ClipSelection(root.ID(), xmldoc.Scheme, "K+", slimpad.Coordinate{X: 20, Y: 60}); err != nil {
		log.Fatal(err)
	}

	// 6. Render the pad and resolve a scrap back into context.
	tree, err := pad.Tree(padObj.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)

	el, err := pad.OpenScrap(medScrap.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndouble-click %q ->\n  content: %q\n  context: %q\n",
		medScrap.ScrapName(), el.Content, el.Context)

	sel, err := sheets.CurrentSelection()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  spreadsheet viewer is now at %s\n", sel)
}
