// Handoff: the paper's planned task-specific use (§6) — "supporting the
// transfer of 'current situation' awareness for hospital patients when one
// doctor is taking over rounds for another, such as on weekends."
//
// Doctor A builds a handoff pad over the week, saves it to a single XML
// file; Doctor B loads the file in a fresh session (new SLIMPad, new Mark
// Manager, same hospital systems) and every scrap still resolves into the
// live base documents. The example also exercises the annotation baseline:
// Doctor B leaves timestamped questions anchored to the same base elements,
// and the virtual-document baseline renders a sign-out sheet that splices
// live values.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/annotation"
	"repro/internal/clinical"
	"repro/internal/mark"
	"repro/internal/slimpad"
	"repro/internal/vdoc"
)

func main() {
	env, err := clinical.NewEnvironment(77, 2)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "handoff-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	padFile := filepath.Join(dir, "weekend-handoff.xml")

	// --- Doctor A's week ---
	padA, err := slimpad.NewApp(env.Marks)
	if err != nil {
		log.Fatal(err)
	}
	padObjA, rootA, err := padA.NewPad("Weekend Handoff")
	if err != nil {
		log.Fatal(err)
	}
	var watchScrap slimpad.Scrap
	for i, p := range env.Patients {
		b, err := padA.DMI().CreateBundle(p.Name, slimpad.Coordinate{X: 10, Y: 10 + i*150}, 500, 140)
		if err != nil {
			log.Fatal(err)
		}
		if err := padA.DMI().AddNestedBundle(rootA.ID(), b.ID()); err != nil {
			log.Fatal(err)
		}
		if err := env.SelectMed(p, 0); err != nil {
			log.Fatal(err)
		}
		s, err := padA.ClipSelection(b.ID(), "spreadsheet", "watch this drip", slimpad.Coordinate{X: 8, Y: 8})
		if err != nil {
			log.Fatal(err)
		}
		if watchScrap == nil {
			watchScrap = s
		}
		if err := env.SelectLab(p, "Cr"); err != nil {
			log.Fatal(err)
		}
		if _, err := padA.ClipSelection(b.ID(), "xml", "creatinine trend", slimpad.Coordinate{X: 8, Y: 40}); err != nil {
			log.Fatal(err)
		}
	}
	if err := padA.Save(padFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Doctor A saved handoff pad to %s\n", filepath.Base(padFile))

	// --- Doctor B's weekend (fresh session) ---
	marksB := mark.NewManager()
	for _, err := range []error{
		marksB.RegisterApplication(env.Sheets),
		marksB.RegisterApplication(env.XML),
		marksB.RegisterApplication(env.Notes),
		marksB.RegisterApplication(env.Pager),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}
	padB, err := slimpad.NewApp(marksB)
	if err != nil {
		log.Fatal(err)
	}
	pads, err := padB.Load(padFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Doctor B loaded %d pad(s): %q\n", len(pads), pads[0].PadName())
	_ = padObjA
	tree, err := padB.Tree(pads[0].ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)

	// Every scrap still resolves into the live hospital systems.
	el, err := padB.OpenScrap(watchScrap.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDoctor B opens %q -> %q\n", "watch this drip", el.Content)

	// Doctor B leaves timestamped questions (annotation baseline).
	anns, err := annotation.NewStore(marksB)
	if err != nil {
		log.Fatal(err)
	}
	p0 := env.Patients[0]
	if err := env.SelectLab(p0, "K"); err != nil {
		log.Fatal(err)
	}
	if _, err := anns.Annotate("xml", "question", "replete before OR?", 86400); err != nil {
		log.Fatal(err)
	}
	if err := env.SelectMed(p0, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := anns.Annotate("spreadsheet", "todo", "confirm dose with pharmacy", 90000); err != nil {
		log.Fatal(err)
	}
	weekend, err := anns.Query("", 80000, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweekend annotations (time-ranged query): %d\n", len(weekend))
	for _, a := range weekend {
		nav, err := anns.Navigate(a.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%s @%d] %q -> %q\n", a.Type, a.Stamp, a.Body, nav.Content)
	}

	// A sign-out sheet as a virtual document (vdoc baseline): live values
	// spliced at render time.
	lib := vdoc.NewLibrary(marksB)
	signout, err := lib.Create("signout")
	if err != nil {
		log.Fatal(err)
	}
	if err := env.SelectLab(p0, "Cr"); err != nil {
		log.Fatal(err)
	}
	crMark, err := marksB.CreateFromSelection("xml")
	if err != nil {
		log.Fatal(err)
	}
	signout.AppendText(p0.Name + ": creatinine ")
	if err := signout.AppendSpanLink(crMark.ID); err != nil {
		log.Fatal(err)
	}
	signout.AppendText(" — call renal if rising.")
	rendered, broken, err := lib.Render("signout")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsign-out sheet (%d broken links):\n  %s\n", broken, rendered)
}
