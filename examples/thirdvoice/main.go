// Third Voice: the enhanced base-layer viewing style of Fig. 6. The paper
// (§4.1): "Third Voice is such an example, which enhances web browsers by
// allowing the user to create and view annotations in the same browser
// window as the Web page."
//
// A shared annotation store holds typed, timestamped annotations anchored
// into web pages. Viewing a page "enhanced" renders its text with the
// overlay of every mark into that page — the in-window annotation layer —
// and the ComMentor-style time-range query retrieves a reviewer's pass.
package main

import (
	"fmt"
	"log"

	"repro/internal/annotation"
	"repro/internal/base/htmldoc"
	"repro/internal/core"
)

const guidelinePage = `<html><body>
<h1 id="title">Acute Heart Failure Guidelines</h1>
<p id="p1">Intravenous loop diuretics are first-line therapy for congestion.</p>
<p id="p2">Electrolytes should be checked within six hours of the first dose.</p>
<p id="p3">Thiazide augmentation may be considered for diuretic resistance.</p>
</body></html>`

func main() {
	sys := core.NewSystem()
	browser := htmldoc.NewApp()
	if _, err := browser.LoadString("guidelines.html", guidelinePage); err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterBase(browser); err != nil {
		log.Fatal(err)
	}
	anns, err := annotation.NewStoreOver(sys.Store, sys.Marks)
	if err != nil {
		log.Fatal(err)
	}

	// Two reviewers annotate the page on different days.
	annotate := func(anchor, annType, body string, stamp int64) {
		if err := browser.Open("guidelines.html"); err != nil {
			log.Fatal(err)
		}
		if err := browser.SelectPath(anchor); err != nil {
			log.Fatal(err)
		}
		if _, err := anns.Annotate(htmldoc.Scheme, annType, body, stamp); err != nil {
			log.Fatal(err)
		}
	}
	annotate("#p1", "agree", "matches our ICU protocol", 1000)
	annotate("#p2", "question", "six hours — source?", 1040)
	annotate("#p3", "caution", "watch sodium with thiazides", 2100)

	// Enhanced viewing: resolve one annotation's mark with the overlay of
	// everything superimposed on the same page.
	all, err := anns.All()
	if err != nil {
		log.Fatal(err)
	}
	view, err := sys.ViewMark(core.EnhancedBase, all[0].MarkID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enhanced view of %s — %d superimposed item(s) on this page\n\n",
		view.Element.Address.File, len(view.Overlay))

	// Render the page with inline markers, Third Voice style.
	page, _ := browser.Page("guidelines.html")
	body, err := page.ResolvePath("/html[1]/body[1]")
	if err != nil {
		log.Fatal(err)
	}
	markOf := map[string]annotation.Annotation{}
	for _, a := range all {
		markOf[a.MarkID] = a
	}
	n := 0
	body.Walk(func(node *htmldoc.Node) bool {
		path, err := page.PathTo(node)
		if err != nil || node.Text == "" {
			return true
		}
		line := node.Text
		for _, m := range view.Overlay {
			if m.Address.Path == path {
				if a, ok := markOf[m.ID]; ok {
					n++
					line += fmt.Sprintf("   [%d: %s — %s]", n, a.Type, a.Body)
				}
			}
		}
		fmt.Println(line)
		return true
	})

	// ComMentor-style retrieval: the second reviewer's pass only.
	day2, err := anns.Query("", 2000, 3000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nday-2 annotations: %d\n", len(day2))
	for _, a := range day2 {
		el, err := anns.Navigate(a.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%s] %q -> %q\n", a.Type, a.Body, el.Content)
	}
}
