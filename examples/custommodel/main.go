// Custom model: the paper's flexibility claim exercised end to end. A
// brand-new superimposed application — an evidence matrix for literature
// review — is defined in SLIM-ML (ref [24]), its DMI is generated from the
// spec (§4.4), instances anchor into base documents through marks, and the
// same conformance machinery that checks SLIMPad checks it.
//
// No code in internal/ knows this model: everything below runs on the
// generic components.
package main

import (
	"fmt"
	"log"

	"repro/internal/base/htmldoc"
	"repro/internal/base/pdfdoc"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
)

const evidenceSpec = `
model http://example.org/evidence "Evidence Matrix"
namespace http://example.org/evidence#

construct Claim
construct Evidence
literal   Text string
mark      Source

connector statement Claim    -> Text     [1..1]
connector supports  Evidence -> Claim    [1..1]
connector stance    Evidence -> Text     [1..1]  "supports or refutes"
connector quote     Evidence -> Text     [0..1]
connector source    Evidence -> Source   [1..1]
`

func main() {
	// Base layer: a guideline page and a trial report.
	browser := htmldoc.NewApp()
	if _, err := browser.LoadString("guideline.html",
		`<html><body><p id="rec">Loop diuretics are recommended first-line for congestion.</p></body></html>`); err != nil {
		log.Fatal(err)
	}
	pager := pdfdoc.NewApp()
	if _, err := pager.LoadString("trial.pdf",
		"RESULTS\nDiuretic strategy A reduced length of stay.\nNo mortality difference was observed.\n", 20); err != nil {
		log.Fatal(err)
	}
	marks := mark.NewManager()
	for _, err := range []error{marks.RegisterApplication(browser), marks.RegisterApplication(pager)} {
		if err != nil {
			log.Fatal(err)
		}
	}

	// The model comes from text; the DMI is generated.
	model, err := metamodel.ParseModelSpec(evidenceSpec)
	if err != nil {
		log.Fatal(err)
	}
	store := slim.NewStore()
	dmi, err := slim.GenerateDMI(store, model)
	if err != nil {
		log.Fatal(err)
	}
	ns := "http://example.org/evidence#"

	claim, err := dmi.Create(ns+"Claim", map[string]any{
		ns + "statement": "Loop diuretics should be first-line for acute congestion",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Evidence 1: the guideline recommendation (HTML span mark).
	if err := browser.Open("guideline.html"); err != nil {
		log.Fatal(err)
	}
	if err := browser.SelectText("#rec", "recommended first-line"); err != nil {
		log.Fatal(err)
	}
	m1, err := marks.CreateFromSelection(htmldoc.Scheme)
	if err != nil {
		log.Fatal(err)
	}
	addEvidence(dmi, marks, ns, claim.ID, m1, "supports")

	// Evidence 2: the trial result (PDF line mark).
	if err := pager.Open("trial.pdf"); err != nil {
		log.Fatal(err)
	}
	doc, _ := pager.Document("trial.pdf")
	loc := doc.FindText("No mortality difference")[0]
	if err := pager.Select(loc); err != nil {
		log.Fatal(err)
	}
	m2, err := marks.CreateFromSelection(pdfdoc.Scheme)
	if err != nil {
		log.Fatal(err)
	}
	addEvidence(dmi, marks, ns, claim.ID, m2, "qualifies")

	// Walk the matrix: for each claim, list evidence and re-resolve each
	// source into its base context.
	claims, err := dmi.InstancesOf(ns + "Claim")
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range claims {
		fmt.Printf("CLAIM: %s\n", c.GetString(ns+"statement"))
		for _, ev := range dmi.Trim().Subjects(rdf.IRI(ns+"supports"), c.ID) {
			obj, err := dmi.Get(ev)
			if err != nil {
				log.Fatal(err)
			}
			anchor, _ := obj.Get(ns + "source")
			markID, err := dmi.Trim().One(rdf.P(anchor, metamodel.PropMarkID, rdf.Zero))
			if err != nil {
				log.Fatal(err)
			}
			el, err := marks.Resolve(markID.Object.Value())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [%s] %q\n    from %s\n", obj.GetString(ns+"stance"), obj.GetString(ns+"quote"), el.Address)
		}
	}

	// The same conformance engine validates the custom model.
	vios, err := store.Check("http://example.org/evidence")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconformance: %d violation(s)\n", len(vios))
}

// addEvidence creates an Evidence instance anchored at the mark.
func addEvidence(dmi *slim.DMI, marks *mark.Manager, ns string, claim rdf.Term, m mark.Mark, stance string) {
	anchor, err := dmi.Create(ns+"Source", nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dmi.Trim().Create(rdf.T(anchor.ID, metamodel.PropMarkID, rdf.String(m.ID))); err != nil {
		log.Fatal(err)
	}
	if _, err := dmi.Create(ns+"Evidence", map[string]any{
		ns + "supports": claim,
		ns + "stance":   stance,
		ns + "quote":    m.Excerpt,
		ns + "source":   anchor,
	}); err != nil {
		log.Fatal(err)
	}
}
