// ICU rounds: the resident's worksheet of Fig. 2 / Fig. 4, built digitally.
//
// For each synthetic patient the example creates a patient bundle holding:
// an identification scrap (progress note), a problems scrap, medication
// scraps wired to the medication-list spreadsheet, an "Electrolyte" bundle
// of lab scraps wired to the XML lab report (the Fig. 4 scenario), and a
// to-do scrap. It then demonstrates the two hallmark behaviors: resolving a
// scrap re-establishes base context, and refreshing detects base-data drift.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/base/spreadsheet"
	"repro/internal/clinical"
	"repro/internal/slimpad"
)

func main() {
	patients := flag.Int("patients", 3, "number of synthetic ICU patients")
	seed := flag.Int64("seed", 2001, "generator seed")
	flag.Parse()

	env, err := clinical.NewEnvironment(*seed, *patients)
	if err != nil {
		log.Fatal(err)
	}
	pad, err := slimpad.NewApp(env.Marks)
	if err != nil {
		log.Fatal(err)
	}
	padObj, root, err := pad.NewPad("Rounds")
	if err != nil {
		log.Fatal(err)
	}
	dmi := pad.DMI()

	for i, p := range env.Patients {
		bundle, err := dmi.CreateBundle(p.Name, slimpad.Coordinate{X: 16, Y: 16 + i*220}, 560, 200)
		if err != nil {
			log.Fatal(err)
		}
		if err := dmi.AddNestedBundle(root.ID(), bundle.ID()); err != nil {
			log.Fatal(err)
		}

		// Identification scrap from the progress note's first paragraph.
		if err := env.SelectPlanLine(p, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := pad.ClipSelection(bundle.ID(), "text", p.MRN+" plan", slimpad.Coordinate{X: 8, Y: 8}); err != nil {
			log.Fatal(err)
		}

		// Medication scraps (the top of Fig. 4's John Smith bundle).
		for mi := range p.Meds {
			if mi >= 2 {
				break
			}
			if err := env.SelectMed(p, mi); err != nil {
				log.Fatal(err)
			}
			if _, err := pad.ClipSelection(bundle.ID(), "spreadsheet", "", slimpad.Coordinate{X: 8, Y: 40 + mi*24}); err != nil {
				log.Fatal(err)
			}
		}

		// The Electrolyte bundle (Fig. 4) as a nested bundle of lab scraps.
		elec, err := dmi.CreateBundle("Electrolyte", slimpad.Coordinate{X: 300, Y: 40}, 220, 120)
		if err != nil {
			log.Fatal(err)
		}
		if err := dmi.AddNestedBundle(bundle.ID(), elec.ID()); err != nil {
			log.Fatal(err)
		}
		for li, code := range []string{"Na", "K", "Cl", "HCO3"} {
			if err := env.SelectLab(p, code); err != nil {
				log.Fatal(err)
			}
			// The gridlet arrangement: values placed by position, meaning
			// carried by layout (paper §3).
			pos := slimpad.Coordinate{X: 8 + (li%2)*100, Y: 8 + (li/2)*30}
			if _, err := pad.ClipSelection(elec.ID(), "xml", code, pos); err != nil {
				log.Fatal(err)
			}
		}

		// Imaging impression scrap.
		if err := env.SelectImpression(p); err != nil {
			log.Fatal(err)
		}
		if _, err := pad.ClipSelection(bundle.ID(), "pdf", "CXR impression", slimpad.Coordinate{X: 8, Y: 120}); err != nil {
			log.Fatal(err)
		}
	}

	tree, err := pad.Tree(padObj.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)

	st, err := pad.PadStats(padObj.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworksheet: %d bundles, %d scraps, %d marks into %d base documents\n",
		st.Bundles, st.Scraps, st.Marks, 4**patients)

	// Hallmark 1: double-clicking a lab scrap re-opens the lab report with
	// the result highlighted.
	p0 := env.Patients[0]
	if err := env.SelectLab(p0, "K"); err != nil {
		log.Fatal(err)
	}
	addr, _ := env.XML.CurrentSelection()
	fmt.Printf("\nK+ scrap for %s resolves to %s\n", p0.Name, addr)

	// Hallmark 2: drift detection. A med dose changes in the base list.
	w, _ := env.Sheets.Workbook(clinical.MedsFile(p0))
	sheet, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("B2")
	old := sheet.Get(cell)
	sheet.Set(cell, "DOUBLED")
	bundles, _ := dmi.Bundles()
	for _, b := range bundles {
		for _, sid := range b.Scraps() {
			if changed, err := pad.RefreshScrap(sid); err == nil && changed {
				s, _ := dmi.Scrap(sid)
				fmt.Printf("drift detected: scrap %q no longer matches base (%q -> %q)\n",
					s.ScrapName(), old, "DOUBLED")
			}
		}
	}

	// Consistency check across the pad and mark manager.
	problems, err := pad.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconformance check: %d problems\n", len(problems))
}
