// Concordance: the paper's opening example (§1) — "Consider a concordance
// for the works of Shakespeare. For a given term, we can find out every line
// (in a play) where the term is used."
//
// The base layer holds plays as sectioned text documents (act/scene as
// sections). The superimposed layer is a concordance: one bundle per term,
// one scrap per occurrence, each scrap's mark addressing the exact word —
// the play-act-scene-line granularity the paper cites.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/base/textdoc"
	"repro/internal/mark"
	"repro/internal/slimpad"
)

// Public-domain excerpts, structured as "# Act.Scene" sections.
var plays = map[string]string{
	"hamlet.txt": `# Act 3 Scene 1
To be, or not to be, that is the question.
Whether tis nobler in the mind to suffer the slings and arrows of outrageous fortune.

Or to take arms against a sea of troubles, and by opposing end them.

# Act 5 Scene 2
If it be now, tis not to come. If it be not to come, it will be now.

The readiness is all.
`,
	"macbeth.txt": `# Act 1 Scene 5
Come, you spirits that tend on mortal thoughts, unsex me here.

# Act 5 Scene 5
Tomorrow, and tomorrow, and tomorrow, creeps in this petty pace from day to day.

Out, out, brief candle! Life is but a walking shadow, a poor player.

It is a tale told by an idiot, full of sound and fury, signifying nothing.
`,
	"tempest.txt": `# Act 4 Scene 1
Our revels now are ended. These our actors, as I foretold you, were all spirits and are melted into air, into thin air.

We are such stuff as dreams are made on, and our little life is rounded with a sleep.
`,
}

var terms = []string{"tomorrow", "life", "spirits", "air"}

func main() {
	writer := textdoc.NewApp()
	names := make([]string, 0, len(plays))
	for name := range plays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := writer.LoadString(name, plays[name]); err != nil {
			log.Fatal(err)
		}
	}

	marks := mark.NewManager()
	if err := marks.RegisterApplication(writer); err != nil {
		log.Fatal(err)
	}
	pad, err := slimpad.NewApp(marks)
	if err != nil {
		log.Fatal(err)
	}
	padObj, root, err := pad.NewPad("Concordance")
	if err != nil {
		log.Fatal(err)
	}
	dmi := pad.DMI()

	total := 0
	for ti, term := range terms {
		bundle, err := dmi.CreateBundle(term, slimpad.Coordinate{X: 16 + ti*200, Y: 16}, 180, 400)
		if err != nil {
			log.Fatal(err)
		}
		if err := dmi.AddNestedBundle(root.ID(), bundle.ID()); err != nil {
			log.Fatal(err)
		}
		row := 0
		for _, name := range names {
			doc, _ := writer.Document(name)
			for _, loc := range doc.FindWord(term) {
				if err := writer.Open(name); err != nil {
					log.Fatal(err)
				}
				if err := writer.Select(loc); err != nil {
					log.Fatal(err)
				}
				sec, _ := doc.Section(loc.Section)
				label := fmt.Sprintf("%s %s", name, sec.Heading)
				if _, err := pad.ClipSelection(bundle.ID(), textdoc.Scheme, label,
					slimpad.Coordinate{X: 8, Y: 8 + row*24}); err != nil {
					log.Fatal(err)
				}
				row++
				total++
			}
		}
	}

	tree, err := pad.Tree(padObj.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)
	fmt.Printf("\nconcordance: %d occurrences of %d terms across %d plays\n", total, len(terms), len(plays))

	// Look up one entry: every "tomorrow" resolves back into its line.
	bundles, _ := dmi.Bundles()
	for _, b := range bundles {
		if b.BundleName() != "tomorrow" {
			continue
		}
		for _, sid := range b.Scraps() {
			el, err := pad.OpenScrap(sid)
			if err != nil {
				log.Fatal(err)
			}
			s, _ := dmi.Scrap(sid)
			fmt.Printf("  %s -> %q (in: %.60q...)\n", s.ScrapName(), el.Content, el.Context)
		}
	}
}
