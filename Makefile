# SLIM repo tasks. `make ci` is the full verification lane (vet + build +
# race-enabled tests + the fault-injection sweep); CI environments should
# run exactly that.

GO ?= go
BENCH_LABEL ?= $(shell date +%Y%m%d)

.PHONY: all build test race vet lint faults trace-smoke ci bench bench-json bench-diff bench-scale

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The lint lane: go vet plus slimvet, the repo's own convention analyzers
# (locking discipline, error wrapping, context flow, instrumentation
# coverage, metric-name registry — docs/STATIC_ANALYSIS.md). Gates on
# findings beyond slimvet.baseline.json and on stale baseline entries.
lint: vet
	$(GO) run ./cmd/slimvet ./...
	$(GO) run ./cmd/slimvet -baseline "" -enable aliasguard,lockorder,atomichygiene,gorolife ./internal/trim ./internal/wal ./internal/durable

test:
	$(GO) test ./...

# The race lane exercises the concurrent paths: TRIM's reader/writer and
# Observer notification, the Mark Manager's lock-free base-app calls, and
# the obs counters/histograms/tracer.
race:
	$(GO) test -race ./...

# The fault-injection lane (docs/ROBUSTNESS.md): sweeps injected faults,
# torn writes, and bit rot through the persistence and resolution paths,
# including the WAL torture tests (tail truncation at every byte offset,
# bit flips across the last record, compaction interrupted at every
# durable stage). The sweep tests are env-gated so the plain
# `go test ./...` lane stays fast; this target turns them on.
faults:
	SLIM_FAULT_SWEEP=1 $(GO) test -run FaultSweep ./internal/trim/ ./internal/mark/

# The trace-smoke lane (docs/OBSERVABILITY.md): drives a real DMI op
# through the binaries' trace subcommands and the -serve endpoints, and
# checks the resulting causal tree spans the dmi → trim → mark layers and
# exports as valid Chrome trace-event JSON.
trace-smoke:
	$(GO) test -run TraceSmoke ./cmd/trimq/ ./cmd/slimpad/

ci: lint build race faults trace-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# The perf-trajectory lane: runs the full benchmark suite once and writes
# a machine-readable BENCH_<label>.json snapshot (ns/op, B/op, allocs/op,
# custom metrics per benchmark). Non-gating in CI; successive snapshots
# make hot-path regressions diffable.
bench-json:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./... | \
		$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -min 5 -out BENCH_$(BENCH_LABEL).json

# The bench regression radar (docs/OBSERVABILITY.md): groups every
# committed BENCH_*.json snapshot into lanes (the micro-bench lane, the
# slimload scale-* lane) and diffs the two most recent snapshots per
# lane. Report-only by default; set BENCH_THRESHOLD to a percent to make
# it exit 2 on regressions past it. A lane with one snapshot is skipped,
# not an error.
BENCH_THRESHOLD ?= 0
bench-diff:
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) -lanes \
		$$(ls BENCH_*.json | sort)

# The scaling lane (docs/OBSERVABILITY.md "Concurrency scoreboard"): the
# slimload workload generator sweeps the op mix at 1/4/16/64 goroutines
# and writes a benchfmt snapshot of throughput and latency quantiles per
# op class per level, diffable with bench-diff like the micro-bench lane.
# The same run populates the lock.* contention families.
bench-scale:
	$(GO) run ./cmd/slimload -duration 2s -goroutines 1,4,16,64 \
		-label scale-$(BENCH_LABEL) -out BENCH_scale-$(BENCH_LABEL).json
