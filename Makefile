# SLIM repo tasks. `make ci` is the full verification lane (vet + build +
# race-enabled tests); CI environments should run exactly that.

GO ?= go

.PHONY: all build test race vet ci bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race lane exercises the concurrent paths: TRIM's reader/writer and
# Observer notification, the Mark Manager's lock-free base-app calls, and
# the obs counters/histograms/tracer.
race:
	$(GO) test -race ./...

ci: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
