// Diagnostics-server coverage over the full stack: after driving SLIMPad
// (DMI -> SLIM store -> TRIM, with marks) and a core.System viewing flow,
// one /metrics scrape must expose every layer's metric family in valid
// Prometheus exposition (docs/OBSERVABILITY.md).
package repro_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/base/spreadsheet"
	"repro/internal/clinical"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slimpad"
)

func TestMetricsCoverAllLayers(t *testing.T) {
	// SLIMPad over clinical data: DMI ops (slim.*), triple storage (trim.*),
	// and mark creation/resolution (mark.*).
	env, err := clinical.NewEnvironment(2026, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := slimpad.NewApp(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	_, root, err := app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.DMI().CreateBundle(env.Patients[0].Name, slimpad.Coordinate{X: 0, Y: 0}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.DMI().AddNestedBundle(root.ID(), b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := env.SelectMed(env.Patients[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := app.ClipSelection(b.ID(), "spreadsheet", "", slimpad.Coordinate{X: 8, Y: 8}); err != nil {
		t.Fatal(err)
	}

	// A core.System viewing flow (core.*).
	sys := core.NewSystem()
	sheets := spreadsheet.NewApp()
	wb := spreadsheet.NewWorkbook("meds.xls")
	if _, err := wb.LoadCSV("Meds", "Drug\nFurosemide\n"); err != nil {
		t.Fatal(err)
	}
	if err := sheets.AddWorkbook(wb); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterBase(sheets); err != nil {
		t.Fatal(err)
	}
	if err := sheets.Open("meds.xls"); err != nil {
		t.Fatal(err)
	}
	r, err := spreadsheet.ParseRange("A2")
	if err != nil {
		t.Fatal(err)
	}
	if err := sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := sys.Marks.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ViewMark(core.Simultaneous, m.ID); err != nil {
		t.Fatal(err)
	}

	// Scrape the default registry the way -serve exposes it.
	srv := httptest.NewServer(obs.NewDiagMux(obs.ServeConfig{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, family := range []string{"trim_", "mark_", "slim_dmi_", "core_view_"} {
		if !strings.Contains(text, "\n"+family) && !strings.HasPrefix(text, family) {
			t.Errorf("/metrics missing the %s family", family)
		}
	}

	// Every sample line must satisfy the exposition grammar.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+]+$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
	}
}
