// Diagnostics-server coverage over the full stack: after driving SLIMPad
// (DMI -> SLIM store -> TRIM, with marks) and a core.System viewing flow,
// one /metrics scrape must expose every layer's metric family in valid
// Prometheus exposition (docs/OBSERVABILITY.md).
package repro_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/base/spreadsheet"
	"repro/internal/clinical"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slimpad"
)

func TestMetricsCoverAllLayers(t *testing.T) {
	// SLIMPad over clinical data: DMI ops (slim.*), triple storage (trim.*),
	// and mark creation/resolution (mark.*).
	env, err := clinical.NewEnvironment(2026, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := slimpad.NewApp(env.Marks)
	if err != nil {
		t.Fatal(err)
	}
	_, root, err := app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.DMI().CreateBundle(env.Patients[0].Name, slimpad.Coordinate{X: 0, Y: 0}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.DMI().AddNestedBundle(root.ID(), b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := env.SelectMed(env.Patients[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := app.ClipSelection(b.ID(), "spreadsheet", "", slimpad.Coordinate{X: 8, Y: 8}); err != nil {
		t.Fatal(err)
	}

	// A core.System viewing flow (core.*).
	sys := core.NewSystem()
	sheets := spreadsheet.NewApp()
	wb := spreadsheet.NewWorkbook("meds.xls")
	if _, err := wb.LoadCSV("Meds", "Drug\nFurosemide\n"); err != nil {
		t.Fatal(err)
	}
	if err := sheets.AddWorkbook(wb); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterBase(sheets); err != nil {
		t.Fatal(err)
	}
	if err := sheets.Open("meds.xls"); err != nil {
		t.Fatal(err)
	}
	r, err := spreadsheet.ParseRange("A2")
	if err != nil {
		t.Fatal(err)
	}
	if err := sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := sys.Marks.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ViewMark(core.Simultaneous, m.ID); err != nil {
		t.Fatal(err)
	}

	// Bracket the workload with two window samples so the `_rate` families
	// and /debug/load report a populated (if zero-rate) window.
	obs.DefaultWindow.SampleNow()
	obs.DefaultWindow.SampleNow()

	// Scrape the default registry the way -serve exposes it.
	srv := httptest.NewServer(obs.NewDiagMux(obs.ServeConfig{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, family := range []string{"trim_", "mark_", "slim_dmi_", "core_view_"} {
		if !strings.Contains(text, "\n"+family) && !strings.HasPrefix(text, family) {
			t.Errorf("/metrics missing the %s family", family)
		}
	}

	// The windowed companions: every cumulative series grows `_rate1m` and
	// `_rate5m` gauges, and histograms delta-quantile `_q1m`/`_q5m`
	// summaries (docs/OBSERVABILITY.md).
	for _, family := range []string{
		"trim_create_total_rate1m", "trim_select_total_rate5m",
		"trim_select_ns_rate1m", `trim_select_ns_q1m{quantile="0.5"}`,
		`mark_resolve_spreadsheet_ns_q5m{quantile="0.99"}`,
	} {
		if !strings.Contains(text, "\n"+family) {
			t.Errorf("/metrics missing the windowed %s series", family)
		}
	}

	// Every sample line must satisfy the exposition grammar.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+]+$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
	}

	// /debug/load serves the same windows as JSON, covering every layer's
	// counters.
	resp, err = http.Get(srv.URL + "/debug/load")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var load struct {
		Samples int `json:"samples"`
		Windows map[string]struct {
			Counters map[string]struct {
				Delta int64 `json:"delta"`
			} `json:"counters"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(body, &load); err != nil {
		t.Fatalf("/debug/load not JSON: %v\n%s", err, body)
	}
	if load.Samples < 2 {
		t.Fatalf("/debug/load samples = %d, want >= 2", load.Samples)
	}
	for _, label := range []string{"1m", "5m"} {
		win, ok := load.Windows[label]
		if !ok {
			t.Fatalf("/debug/load missing the %s window", label)
		}
		if _, ok := win.Counters["trim.create.total"]; !ok {
			t.Errorf("/debug/load %s window missing trim.create.total", label)
		}
	}
}
