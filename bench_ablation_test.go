// Ablation benches for the design choices DESIGN.md calls out: the indexed
// Manager versus a raw scan, atomic batches versus single creates, and the
// §6 "alternative implementation mechanism" compact store versus the
// reference Manager.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

func syntheticTriple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://t/s%d", i)),
		rdf.IRI(fmt.Sprintf("http://t/p%d", i%20)),
		rdf.Integer(int64(i%100)),
	)
}

// BenchmarkAblation_IndexedVsScan: the subject/predicate/object hash
// indexes versus scanning the whole graph — why TRIM maintains three
// indexes per store.
func BenchmarkAblation_IndexedVsScan(b *testing.B) {
	const size = 50000
	m := trim.NewManager()
	for i := 0; i < size; i++ {
		m.Create(syntheticTriple(i))
	}
	snapshot := m.Snapshot()
	pat := rdf.P(rdf.IRI("http://t/s777"), rdf.Zero, rdf.Zero)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += len(m.Select(pat))
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += len(snapshot.Select(pat))
		}
	})
}

// BenchmarkAblation_BatchVsSingle: creating one Bundle's five triples
// through an atomic batch (one lock acquisition, all-or-nothing) versus
// five independent creates.
func BenchmarkAblation_BatchVsSingle(b *testing.B) {
	mk := func(i int) []rdf.Triple {
		id := rdf.IRI(fmt.Sprintf("http://t/bundle%d", i))
		return []rdf.Triple{
			rdf.T(id, rdf.RDFType, rdf.IRI("http://t/Bundle")),
			rdf.T(id, rdf.IRI("http://t/name"), rdf.String("b")),
			rdf.T(id, rdf.IRI("http://t/pos"), rdf.String("1,2")),
			rdf.T(id, rdf.IRI("http://t/w"), rdf.Integer(100)),
			rdf.T(id, rdf.IRI("http://t/h"), rdf.Integer(100)),
		}
	}
	b.Run("batch", func(b *testing.B) {
		m := trim.NewManager()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := m.NewBatch()
			for _, t := range mk(i) {
				if err := batch.Create(t); err != nil {
					b.Fatal(err)
				}
			}
			if err := batch.Apply(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-creates", func(b *testing.B) {
		m := trim.NewManager()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range mk(i) {
				if _, err := m.Create(t); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblation_CompactStore: the interned-term compact store versus
// the reference Manager — bulk load, point query, and full-content memory
// behavior (-benchmem shows the allocation difference).
func BenchmarkAblation_CompactStore(b *testing.B) {
	const size = 20000
	var triples []rdf.Triple
	for i := 0; i < size; i++ {
		triples = append(triples, syntheticTriple(i))
	}
	b.Run("manager-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := trim.NewManager()
			for _, t := range triples {
				if _, err := m.Create(t); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("compact-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := trim.NewCompactStore()
			for _, t := range triples {
				if _, err := c.Create(t); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	m := trim.NewManager()
	c := trim.NewCompactStore()
	for _, t := range triples {
		m.Create(t)
		c.Create(t)
	}
	// Subject in the half that survives the compaction sub-bench below.
	pat := rdf.P(rdf.IRI("http://t/s15555"), rdf.Zero, rdf.Zero)
	b.Run("manager-select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += len(m.Select(pat))
		}
	})
	b.Run("compact-select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += len(c.Select(pat))
		}
	})
	b.Run("compact-after-compaction", func(b *testing.B) {
		for i := 0; i < size/2; i++ {
			c.Remove(triples[i])
		}
		c.Compact()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += len(c.Select(pat))
		}
	})
}
