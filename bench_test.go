// Benchmark harness regenerating the paper's figures and quantifying its
// qualitative claims. The paper (ICDE 2001) reports no numeric tables; its
// evaluation artifacts are Figures 1-10 plus the §6 trade-off discussion.
// Each figure gets a bench exercising the mechanism it depicts; each
// trade-off claim (T1-T6 in DESIGN.md) gets a bench producing the numbers
// EXPERIMENTS.md records. Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/annotation"
	"repro/internal/base"
	"repro/internal/base/htmldoc"
	"repro/internal/base/slides"
	"repro/internal/base/spreadsheet"
	"repro/internal/bookmarks"
	"repro/internal/clinical"
	"repro/internal/core"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
	"repro/internal/slimpad"
	"repro/internal/vdoc"
)

// fullEnvironment returns a clinical environment (spreadsheet, XML, text,
// PDF) extended with slides and HTML substrates, so all six base types of
// §3 are live.
func fullEnvironment(b *testing.B, patients int) *clinical.Environment {
	b.Helper()
	env, err := clinical.NewEnvironment(2001, patients)
	if err != nil {
		b.Fatal(err)
	}
	deck := slides.NewDeck("grandrounds.ppt")
	deck.AddSlide("Heart Failure", "Loop diuretics are first-line")
	slidesApp := slides.NewApp()
	if err := slidesApp.AddDeck(deck); err != nil {
		b.Fatal(err)
	}
	browser := htmldoc.NewApp()
	if _, err := browser.LoadString("guidelines.html",
		`<html><body><h1 id="top">Guidelines</h1><p id="dosing">Furosemide 40mg IV starting dose.</p></body></html>`); err != nil {
		b.Fatal(err)
	}
	if err := env.Marks.RegisterApplication(slidesApp); err != nil {
		b.Fatal(err)
	}
	if err := env.Marks.RegisterApplication(browser); err != nil {
		b.Fatal(err)
	}
	return env
}

// markOneOfEach creates one mark into each of the six base types and
// returns them keyed by scheme.
func markOneOfEach(b *testing.B, env *clinical.Environment) map[string]mark.Mark {
	b.Helper()
	p := env.Patients[0]
	out := map[string]mark.Mark{}
	steps := []struct {
		scheme string
		sel    func() error
	}{
		{"spreadsheet", func() error { return env.SelectMed(p, 0) }},
		{"xml", func() error { return env.SelectLab(p, "K") }},
		{"text", func() error { return env.SelectPlanLine(p, 1) }},
		{"pdf", func() error { return env.SelectImpression(p) }},
	}
	for _, s := range steps {
		if err := s.sel(); err != nil {
			b.Fatal(err)
		}
		m, err := env.Marks.CreateFromSelection(s.scheme)
		if err != nil {
			b.Fatal(err)
		}
		out[s.scheme] = m
	}
	// slides and html marks (apps registered in fullEnvironment).
	for _, m := range []mark.Mark{
		{ID: "bench-slides", Address: base.Address{Scheme: "slides", File: "grandrounds.ppt", Path: "slide1/shape2"}},
		{ID: "bench-html", Address: base.Address{Scheme: "html", File: "guidelines.html", Path: "#dosing"}},
	} {
		if err := env.Marks.Add(m); err != nil {
			b.Fatal(err)
		}
		out[m.Address.Scheme] = m
	}
	return out
}

// BenchmarkF1_MarkResolutionPerBaseType (Fig. 1): one superimposed layer
// marking into every heterogeneous base source; measures resolution cost
// per base type.
func BenchmarkF1_MarkResolutionPerBaseType(b *testing.B) {
	env := fullEnvironment(b, 1)
	marks := markOneOfEach(b, env)
	for _, scheme := range []string{"spreadsheet", "xml", "text", "pdf", "slides", "html"} {
		m := marks[scheme]
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Marks.Resolve(m.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// buildWorksheet constructs the Fig. 2 resident's worksheet: one bundle per
// patient with med, lab, note, and imaging scraps.
func buildWorksheet(b *testing.B, env *clinical.Environment, app *slimpad.App) (slimpad.SlimPad, slimpad.Bundle) {
	b.Helper()
	pad, root, err := app.NewPad("Rounds")
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range env.Patients {
		bundle, err := app.DMI().CreateBundle(p.Name, slimpad.Coordinate{X: 16, Y: 16 + i*200}, 540, 180)
		if err != nil {
			b.Fatal(err)
		}
		if err := app.DMI().AddNestedBundle(root.ID(), bundle.ID()); err != nil {
			b.Fatal(err)
		}
		if err := env.SelectMed(p, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := app.ClipSelection(bundle.ID(), "spreadsheet", "", slimpad.Coordinate{X: 8, Y: 8}); err != nil {
			b.Fatal(err)
		}
		for li, code := range []string{"Na", "K", "Cl"} {
			if err := env.SelectLab(p, code); err != nil {
				b.Fatal(err)
			}
			if _, err := app.ClipSelection(bundle.ID(), "xml", code, slimpad.Coordinate{X: 300, Y: 8 + li*24}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return pad, root
}

// BenchmarkF2_WorksheetConstruction (Fig. 2): building the full resident's
// worksheet from live base selections, per worksheet.
func BenchmarkF2_WorksheetConstruction(b *testing.B) {
	env := fullEnvironment(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := slimpad.NewApp(env.Marks)
		if err != nil {
			b.Fatal(err)
		}
		buildWorksheet(b, env, app)
	}
}

// BenchmarkF3_BundleScrapOps (Fig. 3): the core Bundle-Scrap manipulations
// through the hand-written DMI.
func BenchmarkF3_BundleScrapOps(b *testing.B) {
	d, err := slimpad.NewDMI()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("CreateBundle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.CreateBundle("b", slimpad.Coordinate{X: i, Y: i}, 100, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CreateScrap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.CreateScrap("s", slimpad.Coordinate{X: i, Y: i}, "mark-000001"); err != nil {
				b.Fatal(err)
			}
		}
	})
	bundle, _ := d.CreateBundle("target", slimpad.Coordinate{}, 10, 10)
	b.Run("MoveBundle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := d.MoveBundle(bundle.ID(), slimpad.Coordinate{X: i, Y: i}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReadBundle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Bundle(bundle.ID()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF4_ScenarioRoundTrip (Fig. 4): the John Smith scenario — clip a
// med cell and a lab element, then double-click both scraps to re-establish
// context.
func BenchmarkF4_ScenarioRoundTrip(b *testing.B) {
	env := fullEnvironment(b, 1)
	app, err := slimpad.NewApp(env.Marks)
	if err != nil {
		b.Fatal(err)
	}
	_, root, err := app.NewPad("Rounds")
	if err != nil {
		b.Fatal(err)
	}
	p := env.Patients[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.SelectMed(p, 0); err != nil {
			b.Fatal(err)
		}
		med, err := app.ClipSelection(root.ID(), "spreadsheet", "", slimpad.Coordinate{X: 8, Y: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := env.SelectLab(p, "K"); err != nil {
			b.Fatal(err)
		}
		lab, err := app.ClipSelection(root.ID(), "xml", "K+", slimpad.Coordinate{X: 8, Y: 32})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.OpenScrap(med.ID()); err != nil {
			b.Fatal(err)
		}
		if _, err := app.OpenScrap(lab.ID()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF5_ArchitectureDispatch (Fig. 5): cost of going through the
// assembled architecture (System -> Mark Manager -> module -> base app)
// versus calling the base application directly. The difference is the price
// of the seams that §6 credits for parallel development.
func BenchmarkF5_ArchitectureDispatch(b *testing.B) {
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug\nFurosemide\n"); err != nil {
		b.Fatal(err)
	}
	sheets.AddWorkbook(w)
	sys := core.NewSystem()
	if err := sys.RegisterBase(sheets); err != nil {
		b.Fatal(err)
	}
	addr := base.Address{Scheme: "spreadsheet", File: "meds.xls", Path: "Meds!A2"}
	if err := sys.Marks.Add(mark.Mark{ID: "m", Address: addr}); err != nil {
		b.Fatal(err)
	}
	b.Run("through-architecture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ViewMark(core.Simultaneous, "m"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-base-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sheets.GoTo(addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF6_ViewingStyles (Fig. 6): the three viewing styles over the
// same mark.
func BenchmarkF6_ViewingStyles(b *testing.B) {
	env := fullEnvironment(b, 1)
	sys := core.NewSystem()
	sys.Marks = env.Marks
	marks := markOneOfEach(b, env)
	m := marks["spreadsheet"]
	for _, style := range []core.ViewingStyle{core.Simultaneous, core.EnhancedBase, core.Independent} {
		b.Run(style.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.ViewMark(style, m.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF7_MarkModuleDispatch (Fig. 7): mark resolution cost as the
// number of registered modules grows. The paper's extensibility claim
// implies flat cost — the mark manager routes by scheme, not by scanning.
func BenchmarkF7_MarkModuleDispatch(b *testing.B) {
	for _, extra := range []int{0, 4, 16, 64} {
		b.Run(fmt.Sprintf("modules=%d", extra+1), func(b *testing.B) {
			sheets := spreadsheet.NewApp()
			w := spreadsheet.NewWorkbook("meds.xls")
			if _, err := w.LoadCSV("Meds", "Drug\nFurosemide\n"); err != nil {
				b.Fatal(err)
			}
			sheets.AddWorkbook(w)
			mm := mark.NewManager()
			if err := mm.RegisterApplication(sheets); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < extra; i++ {
				app := spreadsheet.NewApp()
				if err := mm.RegisterModule(schemeRenamer{mark.NewAppModule(app), fmt.Sprintf("extra%d", i)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := mm.Add(mark.Mark{ID: "m", Address: base.Address{Scheme: "spreadsheet", File: "meds.xls", Path: "Meds!A2"}}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mm.Resolve("m"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// schemeRenamer lets one substrate register under many schemes for the
// F7 scaling bench.
type schemeRenamer struct {
	*mark.AppModule
	scheme string
}

func (s schemeRenamer) Scheme() string { return s.scheme }

// BenchmarkF8_MarkCodec (Fig. 8): decomposing generic marks into typed
// views and round-tripping marks through the triple representation.
func BenchmarkF8_MarkCodec(b *testing.B) {
	em := mark.ExcelMark{MarkID: "m", FileName: "meds.xls", SheetName: "Meds"}
	em.Range, _ = spreadsheet.ParseRange("B2:C4")
	generic := em.Mark()
	b.Run("typed-decompose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mark.AsExcelMark(generic); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("triple-roundtrip", func(b *testing.B) {
		mm := mark.NewManager()
		for i := 0; i < 100; i++ {
			mm.Add(mark.Mark{ID: fmt.Sprintf("m%03d", i), Address: generic.Address, Excerpt: "x"})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store := trimNew()
			if err := mm.SaveTo(store); err != nil {
				b.Fatal(err)
			}
			back := mark.NewManager()
			if err := back.LoadFrom(store); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF9_DMIvsTriples (Fig. 9): one Create_Bundle through the DMI
// versus hand-writing the equivalent triples into TRIM. The gap is the
// price of validation plus object materialization.
func BenchmarkF9_DMIvsTriples(b *testing.B) {
	b.Run("dmi-create", func(b *testing.B) {
		store := slim.NewStore()
		d, err := slim.GenerateDMI(store, metamodel.BundleScrapModel())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Create(metamodel.ConstructBundle, map[string]any{
				metamodel.ConnBundleName:   "b",
				metamodel.ConnBundlePos:    "1,2",
				metamodel.ConnBundleWidth:  100,
				metamodel.ConnBundleHeight: 100,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-triples", func(b *testing.B) {
		tm := trimNew()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := rdf.IRI(fmt.Sprintf("%sBundle-%d", rdf.NSInst, i))
			batch := tm.NewBatch()
			batch.Create(rdf.T(id, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle)))
			batch.Create(rdf.T(id, rdf.IRI(metamodel.ConnBundleName), rdf.String("b")))
			batch.Create(rdf.T(id, rdf.IRI(metamodel.ConnBundlePos), rdf.String("1,2")))
			batch.Create(rdf.T(id, rdf.IRI(metamodel.ConnBundleWidth), rdf.Integer(100)))
			batch.Create(rdf.T(id, rdf.IRI(metamodel.ConnBundleHeight), rdf.Integer(100)))
			if err := batch.Apply(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF10_SlimpadDMI (Fig. 10): every operation of the SLIMPad DMI,
// including save/load.
func BenchmarkF10_SlimpadDMI(b *testing.B) {
	d, err := slimpad.NewDMI()
	if err != nil {
		b.Fatal(err)
	}
	pad, _ := d.CreateSlimPad("p")
	bundle, _ := d.CreateBundle("b", slimpad.Coordinate{}, 10, 10)
	d.SetRootBundle(pad.ID(), bundle.ID())
	scrap, _ := d.CreateScrap("s", slimpad.Coordinate{}, "mark-000001")
	d.AddScrapToBundle(bundle.ID(), scrap.ID())

	ops := []struct {
		name string
		fn   func(i int) error
	}{
		{"Update_padName", func(i int) error { return d.UpdatePadName(pad.ID(), fmt.Sprintf("p%d", i)) }},
		{"Update_bundleName", func(i int) error { return d.UpdateBundleName(bundle.ID(), fmt.Sprintf("b%d", i)) }},
		{"Update_bundlePos", func(i int) error { return d.MoveBundle(bundle.ID(), slimpad.Coordinate{X: i, Y: i}) }},
		{"Update_scrapPos", func(i int) error { return d.MoveScrap(scrap.ID(), slimpad.Coordinate{X: i, Y: i}) }},
		{"Read_scrap", func(i int) error { _, err := d.Scrap(scrap.ID()); return err }},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op.fn(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("save+load", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			path := dir + "/pad.xml"
			if err := d.Save(path); err != nil {
				b.Fatal(err)
			}
			d2, err := slimpad.NewDMI()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d2.Load(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT5_Baselines (§5): the same retrieval task — "get me back to the
// potassium result for this patient" — through SLIMPad's scrap, a
// ComMentor-style annotation, and a Mirage-III-style virtual document.
func BenchmarkT5_Baselines(b *testing.B) {
	env := fullEnvironment(b, 1)
	p := env.Patients[0]
	if err := env.SelectLab(p, "K"); err != nil {
		b.Fatal(err)
	}
	m, err := env.Marks.CreateFromSelection("xml")
	if err != nil {
		b.Fatal(err)
	}

	// SLIMPad scrap.
	padApp, err := slimpad.NewApp(env.Marks)
	if err != nil {
		b.Fatal(err)
	}
	_, root, err := padApp.NewPad("p")
	if err != nil {
		b.Fatal(err)
	}
	scrap, err := padApp.DMI().CreateScrap("K+", slimpad.Coordinate{}, m.ID)
	if err != nil {
		b.Fatal(err)
	}
	if err := padApp.DMI().AddScrapToBundle(root.ID(), scrap.ID()); err != nil {
		b.Fatal(err)
	}
	b.Run("slimpad-open-scrap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := padApp.OpenScrap(scrap.ID()); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Annotation baseline.
	anns, err := annotation.NewStore(env.Marks)
	if err != nil {
		b.Fatal(err)
	}
	a, err := anns.AnnotateMark(m.ID, "flag", "watch this", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("annotation-navigate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := anns.Navigate(a.ID); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Virtual-document baseline.
	lib := vdoc.NewLibrary(env.Marks)
	v, err := lib.Create("signout")
	if err != nil {
		b.Fatal(err)
	}
	v.AppendText("K+ is ")
	v.AppendSpanLink(m.ID)
	b.Run("vdoc-render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, broken, err := lib.Render("signout"); err != nil || broken != 0 {
				b.Fatal(err, broken)
			}
		}
	})

	// Shared-bookmarks baseline (PowerBookmarks, ref [14]).
	bms, err := bookmarks.NewStore(env.Marks, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := env.SelectLab(p, "K"); err != nil {
		b.Fatal(err)
	}
	bm, err := bms.AddFromSelection(bms.Root(), "xml", "K+", "labs")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bookmark-open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bms.Open(bm.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sink defeats dead-code elimination in read-only benches.
var sink int

func consume(s string) { sink += len(s) }

var _ = strings.TrimSpace // keep strings imported for helpers below
