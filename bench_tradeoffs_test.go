// Trade-off benches T1-T3 and T6 (DESIGN.md): quantifying the §6 claims
// that the SLIM store's flexibility costs space efficiency and
// interpretation overhead, justified because superimposed volume is a
// fraction of base volume; plus TRIM query/view scaling.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/clinical"
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slimpad"
	"repro/internal/trim"
)

func trimNew() *trim.Manager { return trim.NewManager() }

// nativePad is the hand-rolled struct representation a conventional
// (inflexible) implementation of SLIMPad would use — the comparison point
// for the space and interpretation trade-offs.
type nativePad struct {
	Name string         `json:"name"`
	Root *nativeBundle  `json:"root"`
	all  []*nativeScrap // flat index for O(1)-ish ops
}

type nativeBundle struct {
	Name   string          `json:"name"`
	X      int             `json:"x"`
	Y      int             `json:"y"`
	Width  int             `json:"w"`
	Height int             `json:"h"`
	Scraps []*nativeScrap  `json:"scraps"`
	Nested []*nativeBundle `json:"nested"`
}

type nativeScrap struct {
	Name    string   `json:"name"`
	X       int      `json:"x"`
	Y       int      `json:"y"`
	MarkIDs []string `json:"marks"`
}

// buildTriplePad builds a pad with nScraps scraps through the SLIMPad DMI
// and returns the DMI plus the scrap ids.
func buildTriplePad(b *testing.B, nScraps int) (*slimpad.DMI, []rdf.Term) {
	b.Helper()
	d, err := slimpad.NewDMI()
	if err != nil {
		b.Fatal(err)
	}
	pad, _ := d.CreateSlimPad("Rounds")
	root, _ := d.CreateBundle("root", slimpad.Coordinate{}, 800, 600)
	d.SetRootBundle(pad.ID(), root.ID())
	ids := make([]rdf.Term, 0, nScraps)
	for i := 0; i < nScraps; i++ {
		s, err := d.CreateScrap(fmt.Sprintf("scrap %d", i), slimpad.Coordinate{X: i % 40, Y: i / 40}, fmt.Sprintf("mark-%06d", i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := d.AddScrapToBundle(root.ID(), s.ID()); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	return d, ids
}

func buildNativePad(nScraps int) *nativePad {
	p := &nativePad{Name: "Rounds", Root: &nativeBundle{Name: "root", Width: 800, Height: 600}}
	for i := 0; i < nScraps; i++ {
		s := &nativeScrap{Name: fmt.Sprintf("scrap %d", i), X: i % 40, Y: i / 40, MarkIDs: []string{fmt.Sprintf("mark-%06d", i+1)}}
		p.Root.Scraps = append(p.Root.Scraps, s)
		p.all = append(p.all, s)
	}
	return p
}

// BenchmarkT1_SpaceOverhead (§6): serialized size of the generic triple
// representation versus a conventional native encoding of the same pad.
// Reported metrics: triple_bytes, native_bytes, and their ratio.
func BenchmarkT1_SpaceOverhead(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("scraps=%d", n), func(b *testing.B) {
			d, _ := buildTriplePad(b, n)
			var tripleBuf bytes.Buffer
			if err := rdf.WriteXML(&tripleBuf, d.Store().Trim().Snapshot()); err != nil {
				b.Fatal(err)
			}
			nativeBytes, err := json.Marshal(buildNativePad(n))
			if err != nil {
				b.Fatal(err)
			}
			// Time the serialization itself.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := rdf.WriteXML(&buf, d.Store().Trim().Snapshot()); err != nil {
					b.Fatal(err)
				}
				consume(buf.String())
			}
			// ResetTimer clears custom metrics, so report them last.
			b.ReportMetric(float64(tripleBuf.Len()), "triple_bytes")
			b.ReportMetric(float64(len(nativeBytes)), "native_bytes")
			b.ReportMetric(float64(tripleBuf.Len())/float64(len(nativeBytes)), "overhead_x")
		})
	}
}

// BenchmarkT2_InterpretationCost (§6): "the cost of interpreting
// manipulations on SLIM Store data" — the same move-scrap manipulation
// through the triple-backed DMI versus a direct struct mutation.
func BenchmarkT2_InterpretationCost(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("scraps=%d/dmi", n), func(b *testing.B) {
			d, ids := buildTriplePad(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.MoveScrap(ids[i%len(ids)], slimpad.Coordinate{X: i, Y: i}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scraps=%d/native", n), func(b *testing.B) {
			p := buildNativePad(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := p.all[i%len(p.all)]
				s.X, s.Y = i, i
			}
		})
		b.Run(fmt.Sprintf("scraps=%d/dmi-read", n), func(b *testing.B) {
			d, ids := buildTriplePad(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := d.Scrap(ids[i%len(ids)])
				if err != nil {
					b.Fatal(err)
				}
				consume(s.ScrapName())
			}
		})
		b.Run(fmt.Sprintf("scraps=%d/native-read", n), func(b *testing.B) {
			p := buildNativePad(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				consume(p.all[i%len(p.all)].Name)
			}
		})
	}
}

// BenchmarkT3_LayerVolumeRatio (§6): "we expect the volume of superimposed
// information to be a fraction of the base data." Builds the ICU worksheet
// over generated base documents and reports superimposed bytes as a
// fraction of base bytes.
func BenchmarkT3_LayerVolumeRatio(b *testing.B) {
	// 14 days of lab history per patient: realistically sized base charts.
	const historyDays = 14
	for _, patients := range []int{5, 20} {
		b.Run(fmt.Sprintf("patients=%d", patients), func(b *testing.B) {
			env, err := clinical.NewEnvironmentHistory(2001, patients, historyDays)
			if err != nil {
				b.Fatal(err)
			}
			app, err := slimpad.NewApp(env.Marks)
			if err != nil {
				b.Fatal(err)
			}
			_, root, err := app.NewPad("Rounds")
			if err != nil {
				b.Fatal(err)
			}
			for i, p := range env.Patients {
				bundle, err := app.DMI().CreateBundle(p.Name, slimpad.Coordinate{X: 0, Y: i * 100}, 500, 90)
				if err != nil {
					b.Fatal(err)
				}
				if err := app.DMI().AddNestedBundle(root.ID(), bundle.ID()); err != nil {
					b.Fatal(err)
				}
				if err := env.SelectMed(p, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := app.ClipSelection(bundle.ID(), "spreadsheet", "", slimpad.Coordinate{}); err != nil {
					b.Fatal(err)
				}
				for _, code := range []string{"Na", "K", "Cr"} {
					if err := env.SelectLab(p, code); err != nil {
						b.Fatal(err)
					}
					if _, err := app.ClipSelection(bundle.ID(), "xml", code, slimpad.Coordinate{}); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := app.Marks().SaveTo(app.DMI().Store().Trim()); err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rdf.WriteXML(&buf, app.DMI().Store().Trim().Snapshot()); err != nil {
				b.Fatal(err)
			}
			super := buf.Len()
			baseBytes := env.BaseBytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := app.PadStats(rootPadID(b, app))
				if err != nil {
					b.Fatal(err)
				}
				sink += st.Scraps
			}
			// ResetTimer clears custom metrics, so report them last. Three
			// volumes are reported: super_bytes (serialized XML, envelope
			// included), term_bytes (all term text, IRIs included), and
			// info_bytes (user-visible literal content only: labels,
			// positions, excerpts, addresses). The paper's "fraction of
			// the base data" claim is about information volume
			// (info_bytes/base); the gap up to super_bytes is the T1
			// representation overhead the paper concedes.
			infoBytes := 0
			app.DMI().Store().Trim().Snapshot().Each(func(t rdf.Triple) bool {
				if t.Object.IsLiteral() {
					infoBytes += len(t.Object.Value())
				}
				return true
			})
			termBytes := app.DMI().Store().Trim().Stats().ApproxBytes
			b.ReportMetric(float64(super), "super_bytes")
			b.ReportMetric(float64(termBytes), "term_bytes")
			b.ReportMetric(float64(infoBytes), "info_bytes")
			b.ReportMetric(float64(baseBytes), "base_bytes")
			b.ReportMetric(float64(super)/float64(baseBytes), "xml_ratio")
			b.ReportMetric(float64(infoBytes)/float64(baseBytes), "layer_ratio")
		})
	}
}

func rootPadID(b *testing.B, app *slimpad.App) rdf.Term {
	b.Helper()
	pads, err := app.DMI().Pads()
	if err != nil || len(pads) == 0 {
		b.Fatal("no pads", err)
	}
	return pads[0].ID()
}

// BenchmarkT6_TrimScaling (§4.4): selection queries and reachability views
// over growing stores. Selection should scale with matches (indexes), views
// with the reachable subgraph.
func BenchmarkT6_TrimScaling(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		tm := trim.NewManager()
		for i := 0; i < size; i++ {
			tm.Create(rdf.T(
				rdf.IRI(fmt.Sprintf("http://t/s%d", i)),
				rdf.IRI(fmt.Sprintf("http://t/p%d", i%20)),
				rdf.Integer(int64(i%100)),
			))
		}
		b.Run(fmt.Sprintf("select-by-subject/size=%d", size), func(b *testing.B) {
			pat := rdf.P(rdf.IRI("http://t/s500"), rdf.Zero, rdf.Zero)
			for i := 0; i < b.N; i++ {
				sink += len(tm.Select(pat))
			}
		})
		b.Run(fmt.Sprintf("select-by-predicate/size=%d", size), func(b *testing.B) {
			pat := rdf.P(rdf.Zero, rdf.IRI("http://t/p7"), rdf.Zero)
			for i := 0; i < b.N; i++ {
				sink += len(tm.Select(pat))
			}
		})
		b.Run(fmt.Sprintf("count/size=%d", size), func(b *testing.B) {
			pat := rdf.P(rdf.Zero, rdf.IRI("http://t/p7"), rdf.Zero)
			for i := 0; i < b.N; i++ {
				sink += tm.Count(pat)
			}
		})
	}
	// Views over containment trees of growing depth (nested bundles).
	for _, depth := range []int{4, 8, 12} {
		tm := trim.NewManager()
		nodes := 0
		var grow func(parent string, d int)
		grow = func(parent string, d int) {
			if d == 0 {
				return
			}
			for i := 0; i < 2; i++ {
				child := fmt.Sprintf("%s.%d", parent, i)
				tm.Create(rdf.T(rdf.IRI("http://t/"+parent), rdf.IRI("http://t/contains"), rdf.IRI("http://t/"+child)))
				nodes++
				grow(child, d-1)
			}
		}
		grow("root", depth)
		b.Run(fmt.Sprintf("view/depth=%d/nodes=%d", depth, nodes), func(b *testing.B) {
			root := rdf.IRI("http://t/root")
			for i := 0; i < b.N; i++ {
				sink += tm.View(root).Len()
			}
		})
	}
}

// BenchmarkT4_ConformanceCheck: schema-later validation cost over growing
// instance populations (the price of checking on demand instead of on
// write).
func BenchmarkT4_ConformanceCheck(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("scraps=%d", n), func(b *testing.B) {
			d, _ := buildTriplePad(b, n)
			model, ok := d.Store().Model(metamodel.ExtendedBundleScrapModelID)
			if !ok {
				b.Fatal("extended Bundle-Scrap model not registered")
			}
			checker := metamodel.NewChecker(model, d.Store().Trim())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += len(checker.Check())
			}
		})
	}
}
