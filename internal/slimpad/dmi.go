package slimpad

import (
	"context"
	"fmt"

	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
	"repro/internal/trim"
)

// DMI is SLIMPad's application-specific Data Manipulation Interface: the
// operations of Fig. 10 over the Bundle-Scrap model, implemented on the
// generated generic DMI. "When SLIMPad needs to create a Bundle, it calls
// the Create_Bundle operation in the DMI, which creates a Bundle object for
// SLIMPad plus the triples to represent a new Bundle" (§4.4).
type DMI struct {
	store *slim.Store
	g     *slim.DMI
}

// NewDMI builds a SLIMPad DMI over a fresh SLIM store.
func NewDMI() (*DMI, error) {
	return NewDMIOver(slim.NewStore())
}

// NewDMIOver builds a SLIMPad DMI over an existing store (registering the
// extended Bundle-Scrap model — Fig. 3 plus the §6 extensions — if needed).
func NewDMIOver(store *slim.Store) (*DMI, error) {
	model, ok := store.Model(metamodel.ExtendedBundleScrapModelID)
	if !ok {
		model = metamodel.ExtendedBundleScrapModel()
	}
	g, err := slim.GenerateDMI(store, model)
	if err != nil {
		return nil, err
	}
	return &DMI{store: store, g: g}, nil
}

// Store exposes the underlying SLIM store (for persistence and stats).
func (d *DMI) Store() *slim.Store { return d.store }

// CreateSlimPad implements Create_SlimPad: a new pad with the given name
// and no root bundle yet.
func (d *DMI) CreateSlimPad(padName string) (SlimPad, error) {
	obj, err := d.g.Create(metamodel.ConstructSlimPad, map[string]any{
		metamodel.ConnPadName: padName,
	})
	if err != nil {
		return nil, err
	}
	return padView{obj}, nil
}

// CreateBundle implements Create_Bundle.
func (d *DMI) CreateBundle(name string, pos Coordinate, width, height int) (Bundle, error) {
	obj, err := d.g.Create(metamodel.ConstructBundle, map[string]any{
		metamodel.ConnBundleName:   name,
		metamodel.ConnBundlePos:    pos.String(),
		metamodel.ConnBundleWidth:  width,
		metamodel.ConnBundleHeight: height,
	})
	if err != nil {
		return nil, err
	}
	return bundleView{obj}, nil
}

// CreateScrap implements Create_Scrap: a scrap needs at least one mark
// (Fig. 3 multiplicity 1..*), supplied here by mark id.
func (d *DMI) CreateScrap(name string, pos Coordinate, markID string) (Scrap, error) {
	if markID == "" {
		return nil, fmt.Errorf("slimpad: a scrap requires a mark (Fig. 3: scrapMark 1..*)")
	}
	handle, err := d.g.Create(metamodel.ConstructMarkHandle, nil)
	if err != nil {
		return nil, err
	}
	// The markId property is the bridge to the Mark Manager.
	if _, err := d.store.Trim().Create(rdf.T(handle.ID, metamodel.PropMarkID, rdf.String(markID))); err != nil {
		return nil, err
	}
	obj, err := d.g.Create(metamodel.ConstructScrap, map[string]any{
		metamodel.ConnScrapName: name,
		metamodel.ConnScrapPos:  pos.String(),
		metamodel.ConnScrapMark: handle.ID,
	})
	if err != nil {
		return nil, err
	}
	return d.Scrap(obj.ID)
}

// AddScrapMark attaches an additional mark to an existing scrap (the
// multiple-marks-per-scrap extension contemplated in §3).
func (d *DMI) AddScrapMark(scrap rdf.Term, markID string) error {
	if markID == "" {
		return fmt.Errorf("slimpad: empty mark id")
	}
	handle, err := d.g.Create(metamodel.ConstructMarkHandle, nil)
	if err != nil {
		return err
	}
	if _, err := d.store.Trim().Create(rdf.T(handle.ID, metamodel.PropMarkID, rdf.String(markID))); err != nil {
		return err
	}
	return d.g.Add(scrap, metamodel.ConnScrapMark, handle.ID)
}

// SetRootBundle implements Update_rootBundle.
func (d *DMI) SetRootBundle(pad, bundle rdf.Term) error {
	if _, err := d.Bundle(bundle); err != nil {
		return err
	}
	return d.g.Set(pad, metamodel.ConnRootBundle, bundle)
}

// UpdatePadName implements Update_padName.
func (d *DMI) UpdatePadName(pad rdf.Term, name string) error {
	return d.g.Set(pad, metamodel.ConnPadName, name)
}

// UpdateBundleName implements Update_bundleName.
func (d *DMI) UpdateBundleName(bundle rdf.Term, name string) error {
	return d.g.Set(bundle, metamodel.ConnBundleName, name)
}

// MoveBundle implements Update_bundlePos.
func (d *DMI) MoveBundle(bundle rdf.Term, pos Coordinate) error {
	return d.g.Set(bundle, metamodel.ConnBundlePos, pos.String())
}

// ResizeBundle updates bundleWidth and bundleHeight.
func (d *DMI) ResizeBundle(bundle rdf.Term, width, height int) error {
	if err := d.g.Set(bundle, metamodel.ConnBundleWidth, width); err != nil {
		return err
	}
	return d.g.Set(bundle, metamodel.ConnBundleHeight, height)
}

// RenameScrap implements Update_scrapName.
func (d *DMI) RenameScrap(scrap rdf.Term, name string) error {
	return d.g.Set(scrap, metamodel.ConnScrapName, name)
}

// MoveScrap implements Update_scrapPos.
func (d *DMI) MoveScrap(scrap rdf.Term, pos Coordinate) error {
	return d.g.Set(scrap, metamodel.ConnScrapPos, pos.String())
}

// AddNestedBundle implements addNestedBundle. Cycles in the containment
// tree are rejected: a bundle cannot (transitively) contain itself.
func (d *DMI) AddNestedBundle(parent, child rdf.Term) error {
	if parent == child {
		return fmt.Errorf("slimpad: a bundle cannot nest itself")
	}
	if d.store.Trim().ReachesFrom(child, parent) {
		return fmt.Errorf("slimpad: nesting %s under %s would create a containment cycle", child.Value(), parent.Value())
	}
	return d.g.Add(parent, metamodel.ConnNestedBundle, child)
}

// AddScrapToBundle implements the bundleContent half of Fig. 3.
func (d *DMI) AddScrapToBundle(bundle, scrap rdf.Term) error {
	return d.g.Add(bundle, metamodel.ConnBundleContent, scrap)
}

// RemoveScrapFromBundle detaches a scrap from a bundle without deleting it
// (so it can be re-bundled — the paper's "selection and rearrangement").
func (d *DMI) RemoveScrapFromBundle(bundle, scrap rdf.Term) error {
	return d.g.Unset(bundle, metamodel.ConnBundleContent, scrap)
}

// DeleteSlimPad implements Delete_SlimPad. The root bundle and its contents
// survive unless cascade is set.
func (d *DMI) DeleteSlimPad(pad rdf.Term, cascade bool) error {
	return d.g.Delete(pad, cascade)
}

// DeleteBundle implements Delete_Bundle: with cascade, nested bundles,
// scraps, and their mark handles go too (unless shared).
func (d *DMI) DeleteBundle(bundle rdf.Term, cascade bool) error {
	return d.g.Delete(bundle, cascade)
}

// DeleteScrap implements Delete_Scrap, removing its mark handles with it.
func (d *DMI) DeleteScrap(scrap rdf.Term) error {
	return d.g.Delete(scrap, true)
}

// Pad fetches the read-only view of a pad.
func (d *DMI) Pad(id rdf.Term) (SlimPad, error) { return d.PadCtx(nil, id) }

// PadCtx is Pad under the caller's trace: the generic Get it fans out
// into joins the context's trace tree.
func (d *DMI) PadCtx(ctx context.Context, id rdf.Term) (SlimPad, error) {
	obj, err := d.g.GetCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	if obj.Construct != metamodel.ConstructSlimPad {
		return nil, fmt.Errorf("slimpad: %s is a %s, not a SlimPad", id.Value(), obj.Construct)
	}
	return padView{obj}, nil
}

// Bundle fetches the read-only view of a bundle.
func (d *DMI) Bundle(id rdf.Term) (Bundle, error) { return d.BundleCtx(nil, id) }

// BundleCtx is Bundle under the caller's trace.
func (d *DMI) BundleCtx(ctx context.Context, id rdf.Term) (Bundle, error) {
	obj, err := d.g.GetCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	if obj.Construct != metamodel.ConstructBundle {
		return nil, fmt.Errorf("slimpad: %s is a %s, not a Bundle", id.Value(), obj.Construct)
	}
	return bundleView{obj}, nil
}

// Scrap fetches the read-only view of a scrap with its mark handles.
func (d *DMI) Scrap(id rdf.Term) (Scrap, error) { return d.ScrapCtx(nil, id) }

// ScrapCtx is Scrap under the caller's trace.
func (d *DMI) ScrapCtx(ctx context.Context, id rdf.Term) (Scrap, error) {
	obj, err := d.g.GetCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	if obj.Construct != metamodel.ConstructScrap {
		return nil, fmt.Errorf("slimpad: %s is a %s, not a Scrap", id.Value(), obj.Construct)
	}
	var handles []MarkHandle
	for _, h := range obj.All(metamodel.ConnScrapMark) {
		hv := handleView{id: h}
		if t, err := d.store.Trim().One(rdf.P(h, metamodel.PropMarkID, rdf.Zero)); err == nil {
			hv.markID = t.Object.Value()
		}
		handles = append(handles, hv)
	}
	return scrapView{obj: obj, handles: handles}, nil
}

// Pads lists every pad in the store.
func (d *DMI) Pads() ([]SlimPad, error) { return d.PadsCtx(nil) }

// PadsCtx is Pads under the caller's trace.
func (d *DMI) PadsCtx(ctx context.Context) ([]SlimPad, error) {
	objs, err := d.g.InstancesOfCtx(ctx, metamodel.ConstructSlimPad)
	if err != nil {
		return nil, err
	}
	out := make([]SlimPad, len(objs))
	for i, o := range objs {
		out[i] = padView{o}
	}
	return out, nil
}

// Bundles lists every bundle in the store.
func (d *DMI) Bundles() ([]Bundle, error) {
	objs, err := d.g.InstancesOf(metamodel.ConstructBundle)
	if err != nil {
		return nil, err
	}
	out := make([]Bundle, len(objs))
	for i, o := range objs {
		out[i] = bundleView{o}
	}
	return out, nil
}

// Check validates the store against the (extended) Bundle-Scrap model.
func (d *DMI) Check() ([]metamodel.Violation, error) {
	return d.store.Check(metamodel.ExtendedBundleScrapModelID)
}

// Save implements save(fileName): the entire pad state (model + instances)
// persists as an XML triple file.
func (d *DMI) Save(fileName string) error {
	return d.store.SaveFile(fileName)
}

// SaveBackend is Save through a pluggable durability backend (XML
// snapshot, append-only WAL, or JSON Lines) opened over this DMI's store.
func (d *DMI) SaveBackend(b trim.Backend) error {
	return d.store.SaveBackend(b)
}

// Load implements load(fileName): it replaces the store contents and
// returns the loaded pads.
func (d *DMI) Load(fileName string) ([]SlimPad, error) {
	if err := d.store.LoadFile(fileName); err != nil {
		return nil, err
	}
	return d.rebind(fileName)
}

// LoadBackend is Load through a pluggable durability backend: the backend
// recovers the store contents (for the WAL, snapshot + log replay) and the
// DMI re-binds to the recovered model.
func (d *DMI) LoadBackend(b trim.Backend) ([]SlimPad, error) {
	if err := d.store.LoadBackend(b); err != nil {
		return nil, err
	}
	return d.rebind(b.Path())
}

// rebind regenerates the model-aware DMI after a load replaced the store
// contents, and returns the loaded pads.
func (d *DMI) rebind(fileName string) ([]SlimPad, error) {
	model, ok := d.store.Model(metamodel.ExtendedBundleScrapModelID)
	if !ok {
		// Pads written by plain Fig. 3 implementations load too.
		model, ok = d.store.Model(metamodel.BundleScrapModelID)
	}
	if !ok {
		return nil, fmt.Errorf("slimpad: %s does not contain the Bundle-Scrap model", fileName)
	}
	g, err := slim.GenerateDMI(d.store, model)
	if err != nil {
		return nil, err
	}
	d.g = g
	return d.Pads()
}
