package slimpad

import (
	"repro/internal/obs"
	"repro/internal/trim"
)

// RegisterHealth wires the pad's health probes into the diagnostics
// server's registries (docs/OBSERVABILITY.md): readiness means the pad
// store has loaded triples; liveness means persistence at padPath is
// writable and the dangling-reference quarantine is below maxQuarantined
// (< 1 means any quarantined mark fails). An empty padPath skips the
// writable probe (nothing to persist yet). Nil registries fall back to
// the process-wide defaults.
func (a *App) RegisterHealth(health, ready *obs.HealthRegistry, padPath string, maxQuarantined int) {
	if health == nil {
		health = obs.DefaultHealth
	}
	if ready == nil {
		ready = obs.DefaultReady
	}
	ready.Register(obs.HealthSlimpadStore, a.dmi.Store().Trim().LoadedCheck())
	if padPath != "" {
		health.Register(obs.HealthSlimpadPersist, trim.WritableCheck(padPath))
	}
	health.Register(obs.HealthSlimpadQuarantine, a.marks.QuarantineCheck(maxQuarantined))
	// The pad store's deep space report joins the runtime's memory classes
	// at /debug/space.
	tm := a.dmi.Store().Trim()
	obs.RegisterSpaceSource(obs.SpaceSourceTrimStore, func() any { return tm.Space() })
}
