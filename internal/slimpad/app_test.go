package slimpad

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/base/spreadsheet"
	"repro/internal/base/xmldoc"
	"repro/internal/mark"
)

const labXML = `<report>
  <patient>John Smith</patient>
  <panel name="electrolytes">
    <result code="Na">140</result>
    <result code="K">4.1</result>
    <result code="Cl">103</result>
  </panel>
</report>`

// fixture wires a SLIMPad app to spreadsheet and XML base applications,
// reproducing the Fig. 4 environment.
type fixture struct {
	app    *App
	sheets *spreadsheet.App
	xmlApp *xmldoc.App
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose,Route\nFurosemide,40mg,IV\nInsulin,5u,SC\n"); err != nil {
		t.Fatal(err)
	}
	if err := sheets.AddWorkbook(w); err != nil {
		t.Fatal(err)
	}
	xmlApp := xmldoc.NewApp()
	if _, err := xmlApp.LoadString("lab.xml", labXML); err != nil {
		t.Fatal(err)
	}
	mm := mark.NewManager()
	if err := mm.RegisterApplication(sheets); err != nil {
		t.Fatal(err)
	}
	if err := mm.RegisterApplication(xmlApp); err != nil {
		t.Fatal(err)
	}
	app, err := NewApp(mm)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{app: app, sheets: sheets, xmlApp: xmlApp}
}

func TestNewPadHasRoot(t *testing.T) {
	f := newFixture(t)
	pad, root, err := f.app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	if pad.PadName() != "Rounds" {
		t.Errorf("name = %q", pad.PadName())
	}
	r, ok := pad.RootBundle()
	if !ok || r != root.ID() {
		t.Fatalf("root = %v, %v", r, ok)
	}
}

func TestClipSelectionFromSpreadsheet(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	// The user selects Furosemide in the meds workbook.
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	if err := f.sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	scrap, err := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "", Coordinate{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Label defaults to the marked content.
	if scrap.ScrapName() != "Furosemide" {
		t.Errorf("label = %q", scrap.ScrapName())
	}
	// The scrap is inside the bundle.
	b, _ := f.app.DMI().Bundle(root.ID())
	if len(b.Scraps()) != 1 {
		t.Fatal("scrap not in bundle")
	}
}

func TestClipSelectionExplicitLabel(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("B2")
	f.sheets.SelectRange("Meds", r)
	scrap, err := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "lasix dose", Coordinate{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if scrap.ScrapName() != "lasix dose" {
		t.Errorf("label = %q", scrap.ScrapName())
	}
}

func TestClipSelectionErrors(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	// No selection in the base app.
	if _, err := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "x", Coordinate{0, 0}); err == nil {
		t.Fatal("clip without selection succeeded")
	}
	// Unknown scheme.
	if _, err := f.app.ClipSelection(root.ID(), "fortran", "x", Coordinate{0, 0}); err == nil {
		t.Fatal("clip from unknown scheme succeeded")
	}
}

func TestOpenScrapReestablishesContext(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	f.xmlApp.Open("lab.xml")
	if err := f.xmlApp.SelectExpr("/report/panel/result[2]"); err != nil {
		t.Fatal(err)
	}
	scrap, err := f.app.ClipSelection(root.ID(), xmldoc.Scheme, "K+", Coordinate{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The user browses elsewhere...
	f.xmlApp.SelectExpr("/report/patient")
	// ...then double-clicks the scrap.
	el, err := f.app.OpenScrap(scrap.ID())
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "4.1" {
		t.Errorf("Content = %q", el.Content)
	}
	// The lab report is now open with the result highlighted.
	sel, err := f.xmlApp.CurrentSelection()
	if err != nil || sel.Path != "/report[1]/panel[1]/result[2]" {
		t.Errorf("viewer selection = %v, %v", sel, err)
	}
}

func TestOpenScrapWithoutMarks(t *testing.T) {
	f := newFixture(t)
	// Construct a degenerate scrap directly via the generic store to
	// bypass the DMI guard, then confirm OpenScrap reports it.
	d := f.app.DMI()
	s, err := d.CreateScrap("x", Coordinate{0, 0}, "ghost-mark")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.app.OpenScrap(s.ID()); err == nil {
		t.Fatal("resolving a ghost mark succeeded")
	}
}

func TestPeekScrap(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A3")
	f.sheets.SelectRange("Meds", r)
	scrap, _ := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "", Coordinate{0, 0})
	// Move the viewer away; peek must not move it back.
	r1, _ := spreadsheet.ParseRange("A1")
	f.sheets.SelectRange("Meds", r1)
	content, err := f.app.PeekScrap(scrap.ID())
	if err != nil || content != "Insulin" {
		t.Fatalf("Peek = %q, %v", content, err)
	}
	sel, _ := f.sheets.CurrentSelection()
	if sel.Path != "Meds!A1" {
		t.Error("peek moved the viewer")
	}
}

func TestRefreshScrapDetectsDrift(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("B2")
	f.sheets.SelectRange("Meds", r)
	scrap, _ := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "dose", Coordinate{0, 0})

	changed, err := f.app.RefreshScrap(scrap.ID())
	if err != nil || changed {
		t.Fatalf("no-change refresh = %v, %v", changed, err)
	}
	// The base document changes behind the pad's back.
	w, _ := f.sheets.Workbook("meds.xls")
	s, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("B2")
	s.Set(cell, "80mg")
	changed, err = f.app.RefreshScrap(scrap.ID())
	if err != nil || !changed {
		t.Fatalf("drift refresh = %v, %v", changed, err)
	}
}

func TestTreeRendering(t *testing.T) {
	f := newFixture(t)
	pad, root, _ := f.app.NewPad("Rounds")
	john, _ := f.app.DMI().CreateBundle("John Smith", Coordinate{16, 24}, 300, 200)
	f.app.DMI().AddNestedBundle(root.ID(), john.ID())
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2:C2")
	f.sheets.SelectRange("Meds", r)
	if _, err := f.app.ClipSelection(john.ID(), spreadsheet.Scheme, "Furosemide 40mg IV", Coordinate{20, 40}); err != nil {
		t.Fatal(err)
	}
	tree, err := f.app.Tree(pad.ID())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`SLIMPad "Rounds"`, "[John Smith]", "* Furosemide 40mg IV", "spreadsheet://meds.xls#Meds!A2:C2"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// A pad with no root renders gracefully.
	bare, _ := f.app.DMI().CreateSlimPad("bare")
	tree2, err := f.app.Tree(bare.ID())
	if err != nil || !strings.Contains(tree2, "no root bundle") {
		t.Errorf("bare tree = %q, %v", tree2, err)
	}
}

func TestTreeRendersExtensions(t *testing.T) {
	f := newFixture(t)
	pad, root, _ := f.app.NewPad("Rounds")
	d := f.app.DMI()
	s1, _ := d.CreateScrap("K+ 3.1", Coordinate{0, 0}, "m1")
	s2, _ := d.CreateScrap("KCl 40meq", Coordinate{0, 0}, "m2")
	d.AddScrapToBundle(root.ID(), s1.ID())
	d.AddScrapToBundle(root.ID(), s2.ID())
	d.AnnotateScrap(s1.ID(), "recheck at 18:00")
	d.LinkScraps(s1.ID(), s2.ID())
	d.MarkAsTemplate(root.ID(), "rounds-template")
	tree, err := f.app.Tree(pad.ID())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`(template "rounds-template")`,
		". note: recheck at 18:00",
		". see: KCl 40meq",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestPadStats(t *testing.T) {
	f := newFixture(t)
	pad, root, _ := f.app.NewPad("Rounds")
	john, _ := f.app.DMI().CreateBundle("John Smith", Coordinate{0, 0}, 10, 10)
	f.app.DMI().AddNestedBundle(root.ID(), john.ID())
	f.sheets.Open("meds.xls")
	for _, ref := range []string{"A2", "A3"} {
		r, _ := spreadsheet.ParseRange(ref)
		f.sheets.SelectRange("Meds", r)
		if _, err := f.app.ClipSelection(john.ID(), spreadsheet.Scheme, "", Coordinate{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.app.PadStats(pad.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Bundles != 2 || st.Scraps != 2 || st.Marks != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Pad without root: zero stats.
	bare, _ := f.app.DMI().CreateSlimPad("bare")
	st2, err := f.app.PadStats(bare.ID())
	if err != nil || st2 != (Stats{}) {
		t.Fatalf("bare stats = %+v, %v", st2, err)
	}
}

func TestAppSaveLoadWithMarks(t *testing.T) {
	f := newFixture(t)
	pad, root, _ := f.app.NewPad("Rounds")
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	f.sheets.SelectRange("Meds", r)
	scrap, _ := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "", Coordinate{0, 0})
	_ = pad

	path := filepath.Join(t.TempDir(), "pad.xml")
	if err := f.app.Save(path); err != nil {
		t.Fatal(err)
	}

	// A second session (fresh app, fresh mark manager, same base apps).
	mm2 := mark.NewManager()
	mm2.RegisterApplication(f.sheets)
	app2, err := NewApp(mm2)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := app2.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 {
		t.Fatalf("pads = %d", len(pads))
	}
	// The scrap still opens its base element.
	el, err := app2.OpenScrap(scrap.ID())
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Furosemide" {
		t.Errorf("Content after reload = %q", el.Content)
	}
}

func TestCheckReportsDanglingMarks(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	s, _ := f.app.DMI().CreateScrap("ghost", Coordinate{0, 0}, "mark-does-not-exist")
	f.app.DMI().AddScrapToBundle(root.ID(), s.ID())
	problems, err := f.app.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range problems {
		if strings.Contains(p, "dangling-mark") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dangling mark not reported: %v", problems)
	}
}

func TestCheckCleanPad(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	f.sheets.SelectRange("Meds", r)
	if _, err := f.app.ClipSelection(root.ID(), spreadsheet.Scheme, "", Coordinate{0, 0}); err != nil {
		t.Fatal(err)
	}
	problems, err := f.app.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean pad has problems: %v", problems)
	}
}

func TestAccessors(t *testing.T) {
	f := newFixture(t)
	if f.app.Marks() == nil || f.app.DMI() == nil {
		t.Fatal("accessors broken")
	}
}
