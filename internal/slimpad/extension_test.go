package slimpad

import (
	"fmt"
	"testing"

	"repro/internal/base/spreadsheet"
	"repro/internal/rdf"
)

func TestScrapNotes(t *testing.T) {
	d := newDMI(t)
	s, _ := d.CreateScrap("K+ 4.1", Coordinate{0, 0}, "m1")
	if err := d.AnnotateScrap(s.ID(), "trending down"); err != nil {
		t.Fatal(err)
	}
	if err := d.AnnotateScrap(s.ID(), "recheck at 18:00"); err != nil {
		t.Fatal(err)
	}
	if err := d.AnnotateScrap(s.ID(), ""); err == nil {
		t.Fatal("empty note accepted")
	}
	notes, err := d.ScrapNotes(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 2 || notes[0] != "recheck at 18:00" || notes[1] != "trending down" {
		t.Fatalf("notes = %v", notes)
	}
	if err := d.RemoveScrapNote(s.ID(), "trending down"); err != nil {
		t.Fatal(err)
	}
	notes, _ = d.ScrapNotes(s.ID())
	if len(notes) != 1 {
		t.Fatalf("notes after remove = %v", notes)
	}
	if err := d.RemoveScrapNote(s.ID(), "never existed"); err == nil {
		t.Fatal("removing absent note succeeded")
	}
	// Notes on a non-scrap fail.
	b, _ := d.CreateBundle("b", Coordinate{0, 0}, 1, 1)
	if err := d.AnnotateScrap(b.ID(), "x"); err == nil {
		t.Fatal("note on bundle accepted")
	}
}

func TestScrapLinks(t *testing.T) {
	d := newDMI(t)
	s1, _ := d.CreateScrap("Furosemide", Coordinate{0, 0}, "m1")
	s2, _ := d.CreateScrap("K+ 3.1", Coordinate{0, 0}, "m2")
	s3, _ := d.CreateScrap("KCl 40meq", Coordinate{0, 0}, "m3")
	if err := d.LinkScraps(s2.ID(), s1.ID()); err != nil { // low K explains the diuretic
		t.Fatal(err)
	}
	if err := d.LinkScraps(s2.ID(), s3.ID()); err != nil {
		t.Fatal(err)
	}
	if err := d.LinkScraps(s1.ID(), s1.ID()); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := d.LinkScraps(s1.ID(), rdf.IRI("http://ghost")); err == nil {
		t.Fatal("link to ghost accepted")
	}
	links, err := d.LinkedScraps(s2.ID())
	if err != nil || len(links) != 2 {
		t.Fatalf("links = %v, %v", links, err)
	}
	back := d.Backlinks(s3.ID())
	if len(back) != 1 || back[0] != s2.ID() {
		t.Fatalf("backlinks = %v", back)
	}
	if err := d.UnlinkScraps(s2.ID(), s3.ID()); err != nil {
		t.Fatal(err)
	}
	links, _ = d.LinkedScraps(s2.ID())
	if len(links) != 1 {
		t.Fatalf("links after unlink = %v", links)
	}
	if err := d.UnlinkScraps(s2.ID(), s3.ID()); err == nil {
		t.Fatal("double unlink succeeded")
	}
}

func TestExtensionsConform(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("p")
	b, _ := d.CreateBundle("root", Coordinate{0, 0}, 10, 10)
	d.SetRootBundle(pad.ID(), b.ID())
	s1, _ := d.CreateScrap("a", Coordinate{0, 0}, "m1")
	s2, _ := d.CreateScrap("b", Coordinate{0, 0}, "m2")
	d.AddScrapToBundle(b.ID(), s1.ID())
	d.AddScrapToBundle(b.ID(), s2.ID())
	d.AnnotateScrap(s1.ID(), "note")
	d.LinkScraps(s1.ID(), s2.ID())
	d.MarkAsTemplate(b.ID(), "tmpl")
	vios, err := d.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("extended pad has violations: %v", vios)
	}
}

func TestTemplates(t *testing.T) {
	d := newDMI(t)
	b, _ := d.CreateBundle("patient card", Coordinate{0, 0}, 200, 100)
	if err := d.MarkAsTemplate(b.ID(), ""); err == nil {
		t.Fatal("unnamed template accepted")
	}
	if err := d.MarkAsTemplate(rdf.IRI("http://ghost"), "x"); err == nil {
		t.Fatal("template on ghost accepted")
	}
	if err := d.MarkAsTemplate(b.ID(), "patient-card"); err != nil {
		t.Fatal(err)
	}
	ts, err := d.Templates()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Name != "patient-card" || ts[0].Bundle != b.ID() {
		t.Fatalf("templates = %v", ts)
	}
	// Renaming the designation replaces it (Set semantics).
	d.MarkAsTemplate(b.ID(), "card-v2")
	ts, _ = d.Templates()
	if len(ts) != 1 || ts[0].Name != "card-v2" {
		t.Fatalf("templates after rename = %v", ts)
	}
}

// buildTemplate makes a two-level template: a card bundle holding a med
// scrap (with a note) and a nested "Electrolyte" bundle holding a lab scrap
// linked to the med scrap.
func buildTemplate(t *testing.T, d *DMI) (rdf.Term, rdf.Term, rdf.Term) {
	t.Helper()
	card, _ := d.CreateBundle("card", Coordinate{10, 10}, 300, 150)
	med, _ := d.CreateScrap("med", Coordinate{8, 8}, "tmpl-med-mark")
	d.AnnotateScrap(med.ID(), "check dose")
	d.AddScrapToBundle(card.ID(), med.ID())
	elec, _ := d.CreateBundle("Electrolyte", Coordinate{100, 8}, 150, 100)
	d.AddNestedBundle(card.ID(), elec.ID())
	lab, _ := d.CreateScrap("K", Coordinate{4, 4}, "tmpl-lab-mark")
	d.AddScrapToBundle(elec.ID(), lab.ID())
	d.LinkScraps(lab.ID(), med.ID())
	d.MarkAsTemplate(card.ID(), "patient-card")
	return card.ID(), med.ID(), lab.ID()
}

func TestInstantiateDeepCopies(t *testing.T) {
	d := newDMI(t)
	card, medID, labID := buildTemplate(t, d)

	rename := func(s string) string { return "John: " + s }
	rebinds := map[string]string{
		"tmpl-med-mark": "john-med-mark",
		"tmpl-lab-mark": "john-lab-mark",
	}
	inst, err := d.Instantiate(card, rename, func(name, markID string) (string, error) {
		return rebinds[markID], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID() == card {
		t.Fatal("instance is the template")
	}
	if inst.BundleName() != "John: card" {
		t.Errorf("instance name = %q", inst.BundleName())
	}
	if inst.Pos() != (Coordinate{10, 10}) || inst.Width() != 300 {
		t.Error("geometry not copied")
	}
	// The instance is not itself a template.
	ts, _ := d.Templates()
	if len(ts) != 1 {
		t.Fatalf("templates after instantiation = %v", ts)
	}
	// Structure: one scrap + one nested bundle with one scrap.
	scraps := inst.Scraps()
	if len(scraps) != 1 {
		t.Fatalf("instance scraps = %d", len(scraps))
	}
	medCopy, _ := d.Scrap(scraps[0])
	if medCopy.ScrapName() != "John: med" {
		t.Errorf("scrap name = %q", medCopy.ScrapName())
	}
	if medCopy.MarkHandles()[0].MarkID() != "john-med-mark" {
		t.Errorf("rebound mark = %q", medCopy.MarkHandles()[0].MarkID())
	}
	notes, _ := d.ScrapNotes(scraps[0])
	if len(notes) != 1 || notes[0] != "check dose" {
		t.Errorf("notes = %v", notes)
	}
	nested := inst.NestedBundles()
	if len(nested) != 1 {
		t.Fatalf("nested = %d", len(nested))
	}
	elecCopy, _ := d.Bundle(nested[0])
	labScraps := elecCopy.Scraps()
	if len(labScraps) != 1 {
		t.Fatalf("nested scraps = %d", len(labScraps))
	}
	labCopy, _ := d.Scrap(labScraps[0])
	if labCopy.MarkHandles()[0].MarkID() != "john-lab-mark" {
		t.Errorf("lab mark = %q", labCopy.MarkHandles()[0].MarkID())
	}
	// The intra-template link was rewritten onto the copies.
	links, _ := d.LinkedScraps(labScraps[0])
	if len(links) != 1 || links[0] != scraps[0] {
		t.Fatalf("copied link = %v, want -> %v", links, scraps[0])
	}
	// The template's own structures are untouched.
	origLinks, _ := d.LinkedScraps(labID)
	if len(origLinks) != 1 || origLinks[0] != medID {
		t.Fatalf("template link mutated: %v", origLinks)
	}
}

func TestInstantiateSharedMarksByDefault(t *testing.T) {
	d := newDMI(t)
	card, _, _ := buildTemplate(t, d)
	inst, err := d.Instantiate(card, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Scrap(inst.Scraps()[0])
	if s.MarkHandles()[0].MarkID() != "tmpl-med-mark" {
		t.Fatalf("default instantiation should share marks, got %q", s.MarkHandles()[0].MarkID())
	}
	if s.ScrapName() != "med" {
		t.Fatalf("nil rename changed name to %q", s.ScrapName())
	}
}

func TestInstantiateRebindError(t *testing.T) {
	d := newDMI(t)
	card, _, _ := buildTemplate(t, d)
	_, err := d.Instantiate(card, nil, func(name, markID string) (string, error) {
		return "", fmt.Errorf("no patient selected")
	})
	if err == nil {
		t.Fatal("rebind error swallowed")
	}
}

func TestInstantiateGhostTemplate(t *testing.T) {
	d := newDMI(t)
	if _, err := d.Instantiate(rdf.IRI("http://ghost"), nil, nil); err == nil {
		t.Fatal("instantiating ghost succeeded")
	}
}

func TestQueries(t *testing.T) {
	d := newDMI(t)
	s1, _ := d.CreateScrap("Furosemide 40mg", Coordinate{0, 0}, "m1")
	d.CreateScrap("Insulin 5u", Coordinate{0, 0}, "m2")
	d.CreateBundle("Electrolyte", Coordinate{0, 0}, 1, 1)
	d.CreateBundle("John Smith", Coordinate{0, 0}, 1, 1)
	d.AnnotateScrap(s1.ID(), "hold if SBP < 90")

	scraps, err := d.FindScraps("furosemide")
	if err != nil || len(scraps) != 1 {
		t.Fatalf("FindScraps = %v, %v", scraps, err)
	}
	none, _ := d.FindScraps("warfarin")
	if len(none) != 0 {
		t.Fatal("false positive")
	}
	bundles, err := d.FindBundles("electro")
	if err != nil || len(bundles) != 1 || bundles[0].BundleName() != "Electrolyte" {
		t.Fatalf("FindBundles = %v, %v", bundles, err)
	}
	noted, err := d.ScrapsWithNote("sbp")
	if err != nil || len(noted) != 1 || noted[0].ID() != s1.ID() {
		t.Fatalf("ScrapsWithNote = %v, %v", noted, err)
	}
}

func TestScrapsMarkingDocument(t *testing.T) {
	f := newFixture(t)
	_, root, _ := f.app.NewPad("Rounds")
	f.xmlApp.Open("lab.xml")
	f.xmlApp.SelectExpr("/report/panel/result[1]")
	na, err := f.app.ClipSelection(root.ID(), "xml", "Na", Coordinate{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	f.xmlApp.SelectExpr("/report/panel/result[2]")
	if _, err := f.app.ClipSelection(root.ID(), "xml", "K", Coordinate{0, 0}); err != nil {
		t.Fatal(err)
	}
	f.sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	f.sheets.SelectRange("Meds", r)
	if _, err := f.app.ClipSelection(root.ID(), "spreadsheet", "", Coordinate{0, 0}); err != nil {
		t.Fatal(err)
	}

	fromLab, err := f.app.ScrapsMarking("xml", "lab.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(fromLab) != 2 {
		t.Fatalf("ScrapsMarking(lab) = %d", len(fromLab))
	}
	found := false
	for _, s := range fromLab {
		if s.ID() == na.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("Na scrap missing from document query")
	}
	fromMeds, err := f.app.ScrapsMarking("spreadsheet", "meds.xls")
	if err != nil || len(fromMeds) != 1 {
		t.Fatalf("ScrapsMarking(meds) = %d, %v", len(fromMeds), err)
	}
	none, err := f.app.ScrapsMarking("xml", "other.xml")
	if err != nil || len(none) != 0 {
		t.Fatalf("ScrapsMarking(other) = %d, %v", len(none), err)
	}
}
