package slimpad

import (
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
)

// Application data is presented to SLIMPad as read-only interfaces, exactly
// as Fig. 10 prescribes: "Only the interfaces are presented to SLIMPad,
// which allows the DMI to guarantee consistency between the triple
// representation and the application data." Each accessor re-reads from the
// snapshot taken when the object was fetched; mutation goes through the DMI.

// SlimPad is the read-only view of a pad: the top-level object designating
// a root bundle.
type SlimPad interface {
	// ID returns the pad's instance IRI.
	ID() rdf.Term
	// PadName returns the pad's name.
	PadName() string
	// RootBundle returns the root bundle's id, if one is designated.
	RootBundle() (rdf.Term, bool)
}

// Bundle is the read-only view of a bundle: a labeled, positioned container
// of scraps and nested bundles.
type Bundle interface {
	// ID returns the bundle's instance IRI.
	ID() rdf.Term
	// BundleName returns the label.
	BundleName() string
	// Pos returns the 2D position.
	Pos() Coordinate
	// Width and Height return the extent.
	Width() int
	Height() int
	// NestedBundles returns ids of directly nested bundles.
	NestedBundles() []rdf.Term
	// Scraps returns ids of directly contained scraps.
	Scraps() []rdf.Term
}

// Scrap is the read-only view of a scrap: a labeled, positioned information
// element holding one or more mark handles.
type Scrap interface {
	// ID returns the scrap's instance IRI.
	ID() rdf.Term
	// ScrapName returns the label (which may differ from the marked
	// content, §3).
	ScrapName() string
	// Pos returns the 2D position.
	Pos() Coordinate
	// MarkHandles returns the handles in deterministic order.
	MarkHandles() []MarkHandle
}

// MarkHandle is the read-only view of a mark handle: it carries the mark id
// resolved by the Mark Manager (Fig. 3: "Each MarkHandle references a Mark
// through a unique mark id").
type MarkHandle interface {
	// ID returns the handle's instance IRI.
	ID() rdf.Term
	// MarkID returns the referenced mark's identifier.
	MarkID() string
}

// padView, bundleView, scrapView, handleView implement the read-only
// interfaces over slim.Object snapshots.

type padView struct{ obj *slim.Object }

func (p padView) ID() rdf.Term    { return p.obj.ID }
func (p padView) PadName() string { return p.obj.GetString(metamodel.ConnPadName) }
func (p padView) RootBundle() (rdf.Term, bool) {
	v, err := p.obj.Get(metamodel.ConnRootBundle)
	if err != nil {
		return rdf.Zero, false
	}
	return v, true
}

type bundleView struct{ obj *slim.Object }

func (b bundleView) ID() rdf.Term       { return b.obj.ID }
func (b bundleView) BundleName() string { return b.obj.GetString(metamodel.ConnBundleName) }
func (b bundleView) Pos() Coordinate {
	c, _ := ParseCoordinate(b.obj.GetString(metamodel.ConnBundlePos))
	return c
}
func (b bundleView) Width() int  { return int(b.obj.GetInt(metamodel.ConnBundleWidth)) }
func (b bundleView) Height() int { return int(b.obj.GetInt(metamodel.ConnBundleHeight)) }
func (b bundleView) NestedBundles() []rdf.Term {
	return b.obj.All(metamodel.ConnNestedBundle)
}
func (b bundleView) Scraps() []rdf.Term {
	return b.obj.All(metamodel.ConnBundleContent)
}

type scrapView struct {
	obj     *slim.Object
	handles []MarkHandle
}

func (s scrapView) ID() rdf.Term      { return s.obj.ID }
func (s scrapView) ScrapName() string { return s.obj.GetString(metamodel.ConnScrapName) }
func (s scrapView) Pos() Coordinate {
	c, _ := ParseCoordinate(s.obj.GetString(metamodel.ConnScrapPos))
	return c
}
func (s scrapView) MarkHandles() []MarkHandle { return append([]MarkHandle(nil), s.handles...) }

type handleView struct {
	id     rdf.Term
	markID string
}

func (h handleView) ID() rdf.Term   { return h.id }
func (h handleView) MarkID() string { return h.markID }
