// Package slimpad implements SLIMPad, the paper's superimposed application
// (§3): structured digital bundles of scraps, each scrap wired to base-layer
// information through a mark. The information model is the Bundle-Scrap
// model of Fig. 3; manipulation goes through a hand-written DMI shaped like
// Fig. 10 (Create_SlimPad, Create_Bundle, Update_padName, Delete_Bundle,
// save, load) layered on the generic SLIM store; the application layer ties
// the DMI to the Mark Manager for scrap creation and resolution.
package slimpad

import (
	"fmt"
	"strconv"
	"strings"
)

// Coordinate is a 2D position on the pad. The paper: "We allow flexibility
// for placement of information elements and bundles in two dimensions. The
// juxtaposition of scraps and bundles contains implicit semantic information
// that we neither want to constrain or lose."
type Coordinate struct {
	X, Y int
}

// String renders the coordinate as "x,y" (the stored literal form).
func (c Coordinate) String() string {
	return strconv.Itoa(c.X) + "," + strconv.Itoa(c.Y)
}

// ParseCoordinate parses "x,y".
func ParseCoordinate(s string) (Coordinate, error) {
	a, b, found := strings.Cut(s, ",")
	if !found {
		return Coordinate{}, fmt.Errorf("slimpad: coordinate %q must be x,y", s)
	}
	x, err := strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return Coordinate{}, fmt.Errorf("slimpad: coordinate %q: bad x", s)
	}
	y, err := strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return Coordinate{}, fmt.Errorf("slimpad: coordinate %q: bad y", s)
	}
	return Coordinate{X: x, Y: y}, nil
}
