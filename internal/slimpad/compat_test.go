package slimpad

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
)

// A pad written by a plain Fig. 3 implementation (no §6 extensions) must
// load into the extended DMI.
func TestLoadPlainModelPad(t *testing.T) {
	store := slim.NewStore()
	g, err := slim.GenerateDMI(store, metamodel.BundleScrapModel())
	if err != nil {
		t.Fatal(err)
	}
	pad, err := g.Create(metamodel.ConstructSlimPad, map[string]any{
		metamodel.ConnPadName: "legacy",
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.xml")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	d := newDMI(t)
	pads, err := d.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 || pads[0].PadName() != "legacy" {
		t.Fatalf("pads = %v", pads)
	}
	if pads[0].ID() != pad.ID {
		t.Fatal("pad identity lost")
	}
}

func TestLoadFileWithoutModel(t *testing.T) {
	// A store file holding triples but no Bundle-Scrap model is rejected.
	store := slim.NewStore()
	store.Trim().Create(rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.String("v")))
	path := filepath.Join(t.TempDir(), "plain.xml")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d := newDMI(t)
	if _, err := d.Load(path); err == nil {
		t.Fatal("model-less file loaded")
	}
}

func TestTreeAndStatsErrorPaths(t *testing.T) {
	f := newFixture(t)
	ghost := rdf.IRI("http://ghost")
	if _, err := f.app.Tree(ghost); err == nil {
		t.Error("Tree of ghost pad succeeded")
	}
	if _, err := f.app.PadStats(ghost); err == nil {
		t.Error("PadStats of ghost pad succeeded")
	}
	if _, err := f.app.OpenScrap(ghost); err == nil {
		t.Error("OpenScrap of ghost succeeded")
	}
	if _, err := f.app.PeekScrap(ghost); err == nil {
		t.Error("PeekScrap of ghost succeeded")
	}
	if _, err := f.app.RefreshScrap(ghost); err == nil {
		t.Error("RefreshScrap of ghost succeeded")
	}
}

// opSeq is a random program over the DMI; the property is that after any
// sequence, the store conforms to the model (minus cardinality-low
// violations for bundles/scraps we intentionally built complete) and that
// every view accessor agrees with the triples.
func TestRandomOpSequenceInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		d, err := NewDMI()
		if err != nil {
			return false
		}
		var bundles []rdf.Term
		var scraps []rdf.Term
		mustBundle := func() rdf.Term {
			if len(bundles) == 0 {
				b, err := d.CreateBundle("b", Coordinate{1, 1}, 10, 10)
				if err != nil {
					t.Fatal(err)
				}
				bundles = append(bundles, b.ID())
			}
			return bundles[len(bundles)-1]
		}
		for i, op := range ops {
			switch op % 7 {
			case 0:
				b, err := d.CreateBundle("b", Coordinate{int(op), i}, 10, 10)
				if err != nil {
					return false
				}
				bundles = append(bundles, b.ID())
			case 1:
				s, err := d.CreateScrap("s", Coordinate{i, int(op)}, "m1")
				if err != nil {
					return false
				}
				scraps = append(scraps, s.ID())
			case 2:
				if len(scraps) > 0 {
					d.AddScrapToBundle(mustBundle(), scraps[int(op)%len(scraps)])
				}
			case 3:
				if len(bundles) >= 2 {
					// May legitimately fail on cycles; invariant holds
					// either way.
					d.AddNestedBundle(bundles[int(op)%len(bundles)], bundles[i%len(bundles)])
				}
			case 4:
				if len(bundles) > 0 {
					d.MoveBundle(bundles[int(op)%len(bundles)], Coordinate{i, i})
				}
			case 5:
				if len(scraps) > 0 {
					d.AnnotateScrap(scraps[int(op)%len(scraps)], "note")
				}
			case 6:
				if len(scraps) > 1 {
					d.LinkScraps(scraps[0], scraps[len(scraps)-1])
				}
			}
		}
		// Invariant 1: conformance (every op built complete objects).
		vios, err := d.Check()
		if err != nil || len(vios) != 0 {
			return false
		}
		// Invariant 2: no containment cycles — every bundle's view is
		// finite and no bundle reaches itself through nestedBundle.
		for _, b := range bundles {
			for _, nested := range mustView(d, b) {
				if nested == b {
					return false
				}
			}
		}
		// Invariant 3: accessors agree with triples.
		for _, s := range scraps {
			sv, err := d.Scrap(s)
			if err != nil {
				return false
			}
			if len(sv.MarkHandles()) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// mustView returns the resources reachable from a bundle via nestedBundle.
func mustView(d *DMI, b rdf.Term) []rdf.Term {
	nested := rdf.IRI(metamodel.ConnNestedBundle)
	out := []rdf.Term{}
	seen := map[rdf.Term]bool{}
	frontier := []rdf.Term{b}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, next := range d.Store().Trim().Objects(cur, nested) {
			if seen[next] {
				continue
			}
			seen[next] = true
			out = append(out, next)
			frontier = append(frontier, next)
		}
	}
	return out
}
