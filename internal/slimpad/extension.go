package slimpad

import (
	"fmt"
	"sort"

	"repro/internal/metamodel"
	"repro/internal/rdf"
)

// The §6 extensions: "annotations on scraps, linking among scraps and
// templates for bundles." (The paper also notes, §5: "Some initial feedback
// from clinicians indicates annotations on scraps would be useful.")

// AnnotateScrap attaches a free-text note to a scrap.
func (d *DMI) AnnotateScrap(scrap rdf.Term, note string) error {
	if note == "" {
		return fmt.Errorf("slimpad: empty scrap note")
	}
	if _, err := d.Scrap(scrap); err != nil {
		return err
	}
	return d.g.Add(scrap, metamodel.ConnScrapNote, note)
}

// ScrapNotes returns the notes on a scrap, sorted.
func (d *DMI) ScrapNotes(scrap rdf.Term) ([]string, error) {
	obj, err := d.g.Get(scrap)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, v := range obj.All(metamodel.ConnScrapNote) {
		out = append(out, v.Value())
	}
	sort.Strings(out)
	return out, nil
}

// RemoveScrapNote deletes one note from a scrap.
func (d *DMI) RemoveScrapNote(scrap rdf.Term, note string) error {
	return d.g.Unset(scrap, metamodel.ConnScrapNote, note)
}

// LinkScraps records a directed link from one scrap to another (e.g. "this
// lab value explains that medication change").
func (d *DMI) LinkScraps(from, to rdf.Term) error {
	if from == to {
		return fmt.Errorf("slimpad: a scrap cannot link to itself")
	}
	if _, err := d.Scrap(to); err != nil {
		return err
	}
	return d.g.Add(from, metamodel.ConnScrapLink, to)
}

// UnlinkScraps removes a directed link.
func (d *DMI) UnlinkScraps(from, to rdf.Term) error {
	return d.g.Unset(from, metamodel.ConnScrapLink, to)
}

// LinkedScraps returns the scraps the given scrap links to, sorted.
func (d *DMI) LinkedScraps(scrap rdf.Term) ([]rdf.Term, error) {
	obj, err := d.g.Get(scrap)
	if err != nil {
		return nil, err
	}
	out := obj.All(metamodel.ConnScrapLink)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Backlinks returns the scraps linking *to* the given scrap, sorted.
func (d *DMI) Backlinks(scrap rdf.Term) []rdf.Term {
	out := d.store.Trim().Subjects(rdf.IRI(metamodel.ConnScrapLink), scrap)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// MarkAsTemplate designates a bundle as a reusable template with the given
// name. Templates are ordinary bundles; the name makes them discoverable.
func (d *DMI) MarkAsTemplate(bundle rdf.Term, name string) error {
	if name == "" {
		return fmt.Errorf("slimpad: template needs a name")
	}
	if _, err := d.Bundle(bundle); err != nil {
		return err
	}
	return d.g.Set(bundle, metamodel.ConnTemplateName, name)
}

// Templates lists template bundles as (name, bundle id), sorted by name.
func (d *DMI) Templates() ([]TemplateRef, error) {
	var out []TemplateRef
	for _, t := range d.store.Trim().Select(rdf.P(rdf.Zero, rdf.IRI(metamodel.ConnTemplateName), rdf.Zero)) {
		out = append(out, TemplateRef{Name: t.Object.Value(), Bundle: t.Subject})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Bundle.Compare(out[j].Bundle) < 0
	})
	return out, nil
}

// TemplateRef names a template bundle.
type TemplateRef struct {
	Name   string
	Bundle rdf.Term
}

// Rebinder supplies a replacement mark id for a template scrap during
// instantiation. It receives the scrap's name and the template's mark id;
// returning "" keeps the original mark (shared with the template).
type Rebinder func(scrapName, markID string) (string, error)

// Instantiate deep-copies a template bundle subtree: bundles keep their
// geometry, names pass through rename (nil keeps them), and each scrap's
// marks pass through rebind (nil shares the template's marks). Scrap links
// whose both ends lie inside the subtree are rewritten to the copies; links
// pointing outside are preserved as-is. The template designation itself is
// not copied.
func (d *DMI) Instantiate(template rdf.Term, rename func(string) string, rebind Rebinder) (Bundle, error) {
	if rename == nil {
		rename = func(s string) string { return s }
	}
	scrapMap := make(map[rdf.Term]rdf.Term) // template scrap -> copy
	var cloneBundle func(src rdf.Term) (Bundle, error)
	cloneBundle = func(src rdf.Term) (Bundle, error) {
		b, err := d.Bundle(src)
		if err != nil {
			return nil, err
		}
		copyB, err := d.CreateBundle(rename(b.BundleName()), b.Pos(), b.Width(), b.Height())
		if err != nil {
			return nil, err
		}
		scraps := b.Scraps()
		sort.Slice(scraps, func(i, j int) bool { return scraps[i].Compare(scraps[j]) < 0 })
		for _, sid := range scraps {
			s, err := d.Scrap(sid)
			if err != nil {
				return nil, err
			}
			handles := s.MarkHandles()
			if len(handles) == 0 {
				return nil, fmt.Errorf("slimpad: template scrap %s has no marks", sid.Value())
			}
			newMarks := make([]string, 0, len(handles))
			for _, h := range handles {
				mid := h.MarkID()
				if rebind != nil {
					replacement, err := rebind(s.ScrapName(), mid)
					if err != nil {
						return nil, fmt.Errorf("slimpad: rebinding scrap %q: %w", s.ScrapName(), err)
					}
					if replacement != "" {
						mid = replacement
					}
				}
				newMarks = append(newMarks, mid)
			}
			copyS, err := d.CreateScrap(rename(s.ScrapName()), s.Pos(), newMarks[0])
			if err != nil {
				return nil, err
			}
			for _, extra := range newMarks[1:] {
				if err := d.AddScrapMark(copyS.ID(), extra); err != nil {
					return nil, err
				}
			}
			notes, err := d.ScrapNotes(sid)
			if err != nil {
				return nil, err
			}
			for _, n := range notes {
				if err := d.AnnotateScrap(copyS.ID(), n); err != nil {
					return nil, err
				}
			}
			if err := d.AddScrapToBundle(copyB.ID(), copyS.ID()); err != nil {
				return nil, err
			}
			scrapMap[sid] = copyS.ID()
		}
		nested := b.NestedBundles()
		sort.Slice(nested, func(i, j int) bool { return nested[i].Compare(nested[j]) < 0 })
		for _, nid := range nested {
			copyN, err := cloneBundle(nid)
			if err != nil {
				return nil, err
			}
			if err := d.AddNestedBundle(copyB.ID(), copyN.ID()); err != nil {
				return nil, err
			}
		}
		// Re-fetch: views are snapshots, and copyB was snapped before its
		// contents were attached.
		return d.Bundle(copyB.ID())
	}
	root, err := cloneBundle(template)
	if err != nil {
		return nil, err
	}
	// Second pass: rewrite intra-subtree scrap links onto the copies.
	for oldScrap, newScrap := range scrapMap {
		links, err := d.LinkedScraps(oldScrap)
		if err != nil {
			return nil, err
		}
		for _, target := range links {
			mapped, inside := scrapMap[target]
			if !inside {
				mapped = target
			}
			if err := d.LinkScraps(newScrap, mapped); err != nil {
				return nil, err
			}
		}
	}
	return root, nil
}
