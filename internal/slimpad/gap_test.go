package slimpad

import (
	"testing"

	"repro/internal/rdf"
)

func TestDeleteSlimPad(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("p")
	root, _ := d.CreateBundle("root", Coordinate{}, 10, 10)
	d.SetRootBundle(pad.ID(), root.ID())

	// Non-cascading delete removes the pad but keeps the bundle.
	if err := d.DeleteSlimPad(pad.ID(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Pad(pad.ID()); err == nil {
		t.Fatal("pad survives delete")
	}
	if _, err := d.Bundle(root.ID()); err != nil {
		t.Fatal("non-cascading delete removed the bundle")
	}

	// Cascading delete takes the root bundle and its contents along.
	pad2, _ := d.CreateSlimPad("p2")
	root2, _ := d.CreateBundle("root2", Coordinate{}, 10, 10)
	d.SetRootBundle(pad2.ID(), root2.ID())
	s, _ := d.CreateScrap("s", Coordinate{}, "m")
	d.AddScrapToBundle(root2.ID(), s.ID())
	if err := d.DeleteSlimPad(pad2.ID(), true); err != nil {
		t.Fatal(err)
	}
	for _, gone := range []rdf.Term{pad2.ID(), root2.ID(), s.ID()} {
		if d.Store().Trim().Count(rdf.P(gone, rdf.Zero, rdf.Zero)) != 0 {
			t.Errorf("%s survived cascading pad delete", gone.Value())
		}
	}
	// Deleting a ghost pad fails.
	if err := d.DeleteSlimPad(rdf.IRI("http://ghost"), false); err == nil {
		t.Fatal("ghost pad delete succeeded")
	}
}

func TestTemplatesEmpty(t *testing.T) {
	d := newDMI(t)
	ts, err := d.Templates()
	if err != nil || len(ts) != 0 {
		t.Fatalf("Templates = %v, %v", ts, err)
	}
}
