package slimpad

import (
	"sort"
	"strings"

	"repro/internal/metamodel"
	"repro/internal/rdf"
)

// Query capabilities, the §6 direction "augmenting such interfaces with
// query capabilities, in addition to the current navigational access."

// FindScraps returns the scraps whose label contains the needle
// (case-insensitive), sorted by id.
func (d *DMI) FindScraps(needle string) ([]Scrap, error) {
	return d.findScraps(func(s Scrap) bool {
		return containsFold(s.ScrapName(), needle)
	})
}

// FindBundles returns the bundles whose label contains the needle
// (case-insensitive), sorted by id.
func (d *DMI) FindBundles(needle string) ([]Bundle, error) {
	objs, err := d.g.InstancesOf(metamodel.ConstructBundle)
	if err != nil {
		return nil, err
	}
	var out []Bundle
	for _, o := range objs {
		b := bundleView{o}
		if containsFold(b.BundleName(), needle) {
			out = append(out, b)
		}
	}
	return out, nil
}

// ScrapsWithNote returns scraps carrying a note containing the needle.
func (d *DMI) ScrapsWithNote(needle string) ([]Scrap, error) {
	return d.findScraps(func(s Scrap) bool {
		notes, err := d.ScrapNotes(s.ID())
		if err != nil {
			return false
		}
		for _, n := range notes {
			if containsFold(n, needle) {
				return true
			}
		}
		return false
	})
}

func (d *DMI) findScraps(pred func(Scrap) bool) ([]Scrap, error) {
	objs, err := d.g.InstancesOf(metamodel.ConstructScrap)
	if err != nil {
		return nil, err
	}
	var out []Scrap
	for _, o := range objs {
		s, err := d.Scrap(o.ID)
		if err != nil {
			return nil, err
		}
		if pred(s) {
			out = append(out, s)
		}
	}
	return out, nil
}

func containsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}

// ScrapsMarking returns the scraps whose marks address the given base
// document — "which of my scraps came from this lab report?" — sorted by
// scrap id.
func (a *App) ScrapsMarking(scheme, file string) ([]Scrap, error) {
	wanted := map[string]bool{}
	for _, m := range a.marks.Marks() {
		if m.Address.Scheme == scheme && m.Address.File == file {
			wanted[m.ID] = true
		}
	}
	var ids []rdf.Term
	for _, t := range a.dmi.Store().Trim().Select(rdf.P(rdf.Zero, metamodel.PropMarkID, rdf.Zero)) {
		if !wanted[t.Object.Value()] {
			continue
		}
		// t.Subject is a MarkHandle; find the scraps holding it.
		ids = append(ids, a.dmi.Store().Trim().Subjects(rdf.IRI(metamodel.ConnScrapMark), t.Subject)...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	var out []Scrap
	seen := map[rdf.Term]bool{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		s, err := a.dmi.Scrap(id)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
