package slimpad

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func newDMI(t *testing.T) *DMI {
	t.Helper()
	d, err := NewDMI()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateSlimPad(t *testing.T) {
	d := newDMI(t)
	pad, err := d.CreateSlimPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	if pad.PadName() != "Rounds" {
		t.Errorf("PadName = %q", pad.PadName())
	}
	if _, ok := pad.RootBundle(); ok {
		t.Error("fresh pad has a root bundle")
	}
}

func TestCreateBundleAndViews(t *testing.T) {
	d := newDMI(t)
	b, err := d.CreateBundle("John Smith", Coordinate{10, 20}, 300, 150)
	if err != nil {
		t.Fatal(err)
	}
	if b.BundleName() != "John Smith" {
		t.Errorf("name = %q", b.BundleName())
	}
	if b.Pos() != (Coordinate{10, 20}) {
		t.Errorf("pos = %v", b.Pos())
	}
	if b.Width() != 300 || b.Height() != 150 {
		t.Errorf("extent = %dx%d", b.Width(), b.Height())
	}
	if len(b.NestedBundles()) != 0 || len(b.Scraps()) != 0 {
		t.Error("fresh bundle not empty")
	}
}

func TestCreateScrapRequiresMark(t *testing.T) {
	d := newDMI(t)
	if _, err := d.CreateScrap("s", Coordinate{0, 0}, ""); err == nil {
		t.Fatal("scrap without mark accepted (Fig. 3 requires 1..*)")
	}
	s, err := d.CreateScrap("K+ 4.1", Coordinate{5, 5}, "mark-000001")
	if err != nil {
		t.Fatal(err)
	}
	hs := s.MarkHandles()
	if len(hs) != 1 || hs[0].MarkID() != "mark-000001" {
		t.Fatalf("handles = %v", hs)
	}
	if s.ScrapName() != "K+ 4.1" || s.Pos() != (Coordinate{5, 5}) {
		t.Errorf("scrap = %q %v", s.ScrapName(), s.Pos())
	}
}

func TestAddScrapMark(t *testing.T) {
	d := newDMI(t)
	s, _ := d.CreateScrap("s", Coordinate{0, 0}, "m1")
	if err := d.AddScrapMark(s.ID(), "m2"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddScrapMark(s.ID(), ""); err == nil {
		t.Fatal("empty mark id accepted")
	}
	got, _ := d.Scrap(s.ID())
	if len(got.MarkHandles()) != 2 {
		t.Fatalf("handles = %d", len(got.MarkHandles()))
	}
}

func TestRootBundleFlow(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("p")
	b, _ := d.CreateBundle("root", Coordinate{0, 0}, 100, 100)
	if err := d.SetRootBundle(pad.ID(), b.ID()); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Pad(pad.ID())
	root, ok := got.RootBundle()
	if !ok || root != b.ID() {
		t.Fatalf("RootBundle = %v, %v", root, ok)
	}
	// Root must be a real bundle.
	if err := d.SetRootBundle(pad.ID(), rdf.IRI("http://ghost")); err == nil {
		t.Fatal("ghost root accepted")
	}
	// Replacing the root is allowed (MaxCard 1, Set semantics).
	b2, _ := d.CreateBundle("root2", Coordinate{0, 0}, 100, 100)
	if err := d.SetRootBundle(pad.ID(), b2.ID()); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Pad(pad.ID())
	root, _ = got.RootBundle()
	if root != b2.ID() {
		t.Fatal("root not replaced")
	}
}

func TestUpdates(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("old")
	if err := d.UpdatePadName(pad.ID(), "new"); err != nil {
		t.Fatal(err)
	}
	p, _ := d.Pad(pad.ID())
	if p.PadName() != "new" {
		t.Error("pad rename failed")
	}
	b, _ := d.CreateBundle("b", Coordinate{0, 0}, 10, 10)
	if err := d.UpdateBundleName(b.ID(), "b2"); err != nil {
		t.Fatal(err)
	}
	if err := d.MoveBundle(b.ID(), Coordinate{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.ResizeBundle(b.ID(), 42, 24); err != nil {
		t.Fatal(err)
	}
	bb, _ := d.Bundle(b.ID())
	if bb.BundleName() != "b2" || bb.Pos() != (Coordinate{7, 8}) || bb.Width() != 42 || bb.Height() != 24 {
		t.Fatalf("bundle after updates = %q %v %dx%d", bb.BundleName(), bb.Pos(), bb.Width(), bb.Height())
	}
	s, _ := d.CreateScrap("s", Coordinate{0, 0}, "m")
	if err := d.RenameScrap(s.ID(), "s2"); err != nil {
		t.Fatal(err)
	}
	if err := d.MoveScrap(s.ID(), Coordinate{3, 4}); err != nil {
		t.Fatal(err)
	}
	ss, _ := d.Scrap(s.ID())
	if ss.ScrapName() != "s2" || ss.Pos() != (Coordinate{3, 4}) {
		t.Fatalf("scrap after updates = %q %v", ss.ScrapName(), ss.Pos())
	}
}

func TestNestingAndCycles(t *testing.T) {
	d := newDMI(t)
	a, _ := d.CreateBundle("a", Coordinate{0, 0}, 10, 10)
	b, _ := d.CreateBundle("b", Coordinate{0, 0}, 10, 10)
	c, _ := d.CreateBundle("c", Coordinate{0, 0}, 10, 10)
	if err := d.AddNestedBundle(a.ID(), b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNestedBundle(b.ID(), c.ID()); err != nil {
		t.Fatal(err)
	}
	// Self-nesting and cycles are rejected.
	if err := d.AddNestedBundle(a.ID(), a.ID()); err == nil {
		t.Error("self-nesting accepted")
	}
	if err := d.AddNestedBundle(c.ID(), a.ID()); err == nil {
		t.Error("containment cycle accepted")
	}
	got, _ := d.Bundle(a.ID())
	if len(got.NestedBundles()) != 1 {
		t.Fatalf("nested = %d", len(got.NestedBundles()))
	}
}

func TestScrapBundleMembership(t *testing.T) {
	d := newDMI(t)
	b, _ := d.CreateBundle("b", Coordinate{0, 0}, 10, 10)
	s, _ := d.CreateScrap("s", Coordinate{0, 0}, "m")
	if err := d.AddScrapToBundle(b.ID(), s.ID()); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Bundle(b.ID())
	if len(got.Scraps()) != 1 {
		t.Fatal("scrap not in bundle")
	}
	// Rearrangement: remove and put into another bundle.
	b2, _ := d.CreateBundle("b2", Coordinate{0, 0}, 10, 10)
	if err := d.RemoveScrapFromBundle(b.ID(), s.ID()); err != nil {
		t.Fatal(err)
	}
	if err := d.AddScrapToBundle(b2.ID(), s.ID()); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Bundle(b.ID())
	got2, _ := d.Bundle(b2.ID())
	if len(got.Scraps()) != 0 || len(got2.Scraps()) != 1 {
		t.Fatal("rearrangement failed")
	}
	if err := d.RemoveScrapFromBundle(b.ID(), s.ID()); err == nil {
		t.Fatal("removing absent scrap succeeded")
	}
}

func TestDeleteScrapRemovesHandles(t *testing.T) {
	d := newDMI(t)
	b, _ := d.CreateBundle("b", Coordinate{0, 0}, 10, 10)
	s, _ := d.CreateScrap("s", Coordinate{0, 0}, "m")
	d.AddScrapToBundle(b.ID(), s.ID())
	handleID := s.MarkHandles()[0].ID()
	if err := d.DeleteScrap(s.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Scrap(s.ID()); err == nil {
		t.Fatal("scrap survives delete")
	}
	// The handle went with it.
	if d.Store().Trim().Count(rdf.P(handleID, rdf.Zero, rdf.Zero)) != 0 {
		t.Fatal("orphaned mark handle")
	}
	// The bundle no longer references it.
	got, _ := d.Bundle(b.ID())
	if len(got.Scraps()) != 0 {
		t.Fatal("dangling bundleContent")
	}
}

func TestDeleteBundleCascade(t *testing.T) {
	d := newDMI(t)
	parent, _ := d.CreateBundle("parent", Coordinate{0, 0}, 10, 10)
	child, _ := d.CreateBundle("child", Coordinate{0, 0}, 10, 10)
	s, _ := d.CreateScrap("s", Coordinate{0, 0}, "m")
	d.AddNestedBundle(parent.ID(), child.ID())
	d.AddScrapToBundle(child.ID(), s.ID())
	if err := d.DeleteBundle(parent.ID(), true); err != nil {
		t.Fatal(err)
	}
	for _, gone := range []rdf.Term{parent.ID(), child.ID(), s.ID()} {
		if d.Store().Trim().Count(rdf.P(gone, rdf.Zero, rdf.Zero)) != 0 {
			t.Errorf("%s survived cascade", gone.Value())
		}
	}
}

func TestTypeMismatchAccessors(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("p")
	b, _ := d.CreateBundle("b", Coordinate{0, 0}, 10, 10)
	if _, err := d.Bundle(pad.ID()); err == nil {
		t.Error("Bundle(pad) succeeded")
	}
	if _, err := d.Pad(b.ID()); err == nil {
		t.Error("Pad(bundle) succeeded")
	}
	if _, err := d.Scrap(b.ID()); err == nil {
		t.Error("Scrap(bundle) succeeded")
	}
}

func TestPadsBundlesListing(t *testing.T) {
	d := newDMI(t)
	d.CreateSlimPad("p1")
	d.CreateSlimPad("p2")
	d.CreateBundle("b", Coordinate{0, 0}, 1, 1)
	pads, err := d.Pads()
	if err != nil || len(pads) != 2 {
		t.Fatalf("Pads = %d, %v", len(pads), err)
	}
	bundles, err := d.Bundles()
	if err != nil || len(bundles) != 1 {
		t.Fatalf("Bundles = %d, %v", len(bundles), err)
	}
}

func TestConformanceOfWellFormedPad(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("Rounds")
	b, _ := d.CreateBundle("root", Coordinate{0, 0}, 800, 600)
	d.SetRootBundle(pad.ID(), b.ID())
	s, _ := d.CreateScrap("K+ 4.1", Coordinate{10, 10}, "mark-000001")
	d.AddScrapToBundle(b.ID(), s.ID())
	vios, err := d.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("well-formed pad has violations: %v", vios)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := newDMI(t)
	pad, _ := d.CreateSlimPad("Rounds")
	b, _ := d.CreateBundle("John Smith", Coordinate{16, 24}, 300, 180)
	d.SetRootBundle(pad.ID(), b.ID())
	s, _ := d.CreateScrap("Furosemide", Coordinate{20, 30}, "mark-000042")
	d.AddScrapToBundle(b.ID(), s.ID())

	path := filepath.Join(t.TempDir(), "rounds.xml")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}

	d2 := newDMI(t)
	pads, err := d2.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 || pads[0].PadName() != "Rounds" {
		t.Fatalf("loaded pads = %v", pads)
	}
	root, ok := pads[0].RootBundle()
	if !ok {
		t.Fatal("root bundle lost")
	}
	rb, err := d2.Bundle(root)
	if err != nil {
		t.Fatal(err)
	}
	if rb.BundleName() != "John Smith" || rb.Pos() != (Coordinate{16, 24}) {
		t.Fatalf("bundle = %q %v", rb.BundleName(), rb.Pos())
	}
	scraps := rb.Scraps()
	if len(scraps) != 1 {
		t.Fatal("scrap lost")
	}
	sc, err := d2.Scrap(scraps[0])
	if err != nil {
		t.Fatal(err)
	}
	if sc.ScrapName() != "Furosemide" || sc.MarkHandles()[0].MarkID() != "mark-000042" {
		t.Fatalf("scrap = %q %v", sc.ScrapName(), sc.MarkHandles())
	}
	// New creations after load mint fresh ids.
	nb, err := d2.CreateBundle("new", Coordinate{0, 0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nb.ID() == b.ID() {
		t.Fatal("id collision after load")
	}
}

func TestLoadMissingFile(t *testing.T) {
	d := newDMI(t)
	if _, err := d.Load(filepath.Join(t.TempDir(), "absent.xml")); err == nil {
		t.Fatal("load of missing file succeeded")
	}
}

func TestCoordinateRoundTrip(t *testing.T) {
	cases := []Coordinate{{0, 0}, {10, 20}, {-5, 7}}
	for _, c := range cases {
		back, err := ParseCoordinate(c.String())
		if err != nil || back != c {
			t.Errorf("round trip %v = %v, %v", c, back, err)
		}
	}
	for _, bad := range []string{"", "5", "a,b", "1,b", "a,2"} {
		if _, err := ParseCoordinate(bad); err == nil {
			t.Errorf("ParseCoordinate(%q) succeeded", bad)
		}
	}
	// Whitespace tolerated.
	if c, err := ParseCoordinate(" 3 , 4 "); err != nil || c != (Coordinate{3, 4}) {
		t.Errorf("whitespace parse = %v, %v", c, err)
	}
}

func TestScrapLabelMayDifferFromContent(t *testing.T) {
	// §3: "a scrap's label and its mark's content may differ."
	d := newDMI(t)
	s, err := d.CreateScrap("my own label", Coordinate{0, 0}, "mark-000001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.ScrapName(), "my own label") {
		t.Fatal("label not stored verbatim")
	}
}
