package slimpad

import (
	"fmt"
	"sync"
	"testing"
)

// Concurrent pad manipulation: multiple clinicians working on one shared
// pad must never corrupt the store (the shared-bundle use case of §2:
// "sharing bundles to establish collectively maintained, situated
// awareness").
func TestConcurrentPadManipulation(t *testing.T) {
	d := newDMI(t)
	pad, err := d.CreateSlimPad("shared")
	if err != nil {
		t.Fatal(err)
	}
	root, err := d.CreateBundle("root", Coordinate{}, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetRootBundle(pad.ID(), root.ID()); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b, err := d.CreateBundle(fmt.Sprintf("w%d-b%d", w, i), Coordinate{X: w, Y: i}, 10, 10)
				if err != nil {
					errs <- err
					return
				}
				if err := d.AddNestedBundle(root.ID(), b.ID()); err != nil {
					errs <- err
					return
				}
				s, err := d.CreateScrap(fmt.Sprintf("w%d-s%d", w, i), Coordinate{X: i, Y: w}, fmt.Sprintf("mark-w%d-%d", w, i))
				if err != nil {
					errs <- err
					return
				}
				if err := d.AddScrapToBundle(b.ID(), s.ID()); err != nil {
					errs <- err
					return
				}
				// Interleave reads.
				if _, err := d.Bundle(b.ID()); err != nil {
					errs <- err
					return
				}
				if err := d.MoveScrap(s.ID(), Coordinate{X: i * 2, Y: w * 2}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := d.Bundle(root.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NestedBundles()) != workers*perWorker {
		t.Fatalf("nested bundles = %d, want %d", len(got.NestedBundles()), workers*perWorker)
	}
	// The store still conforms.
	vios, err := d.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("violations after concurrent use: %d (first: %v)", len(vios), vios[0])
	}
}
