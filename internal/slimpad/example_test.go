package slimpad_test

import (
	"fmt"

	"repro/internal/base/spreadsheet"
	"repro/internal/mark"
	"repro/internal/slimpad"
)

// The complete §3 loop: select in a base application, clip to the pad,
// double-click back into context.
func Example() {
	sheets := spreadsheet.NewApp()
	wb := spreadsheet.NewWorkbook("meds.xls")
	wb.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\n")
	sheets.AddWorkbook(wb)

	marks := mark.NewManager()
	marks.RegisterApplication(sheets)

	app, _ := slimpad.NewApp(marks)
	_, root, _ := app.NewPad("Rounds")

	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2:B2")
	sheets.SelectRange("Meds", r)
	scrap, _ := app.ClipSelection(root.ID(), spreadsheet.Scheme, "loop diuretic", slimpad.Coordinate{X: 10, Y: 10})

	el, _ := app.OpenScrap(scrap.ID())
	fmt.Println(scrap.ScrapName(), "->", el.Content)
	// Output:
	// loop diuretic -> Furosemide	40mg
}

func ExampleDMI_Instantiate() {
	d, _ := slimpad.NewDMI()
	tmpl, _ := d.CreateBundle("card", slimpad.Coordinate{}, 200, 100)
	s, _ := d.CreateScrap("K+", slimpad.Coordinate{X: 4, Y: 4}, "template-mark")
	d.AddScrapToBundle(tmpl.ID(), s.ID())
	d.MarkAsTemplate(tmpl.ID(), "patient-card")

	inst, _ := d.Instantiate(tmpl.ID(),
		func(name string) string { return "John: " + name },
		func(scrapName, markID string) (string, error) { return "john-mark", nil })
	copyScrap, _ := d.Scrap(inst.Scraps()[0])
	fmt.Println(inst.BundleName())
	fmt.Println(copyScrap.ScrapName(), copyScrap.MarkHandles()[0].MarkID())
	// Output:
	// John: card
	// John: K+ john-mark
}
