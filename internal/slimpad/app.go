package slimpad

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/base"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trim"
)

// App is the SLIMPad application: the DMI plus the Mark Manager, wired as
// in Fig. 5. It implements the user-level flows of §3: select an element in
// a base application, create a mark, drop it on the pad as a scrap, and
// later double-click the scrap to re-establish context.
//
// Concurrency: App and DMI hold no locks of their own — audited for the
// slimvet guarded-field pass. All shared mutable state lives behind the
// mark.Manager and trim.Manager they delegate to, whose fields carry
// `guarded by mu` annotations; an App value itself is a pair of pointers,
// safe to copy and safe for concurrent use exactly as far as those
// managers are (see concurrency_test.go).
type App struct {
	dmi   *DMI
	marks *mark.Manager
}

// NewApp builds a SLIMPad application over a fresh store and the given mark
// manager.
func NewApp(marks *mark.Manager) (*App, error) {
	dmi, err := NewDMI()
	if err != nil {
		return nil, err
	}
	return &App{dmi: dmi, marks: marks}, nil
}

// DMI exposes the pad's data manipulation interface.
func (a *App) DMI() *DMI { return a.dmi }

// Marks exposes the mark manager.
func (a *App) Marks() *mark.Manager { return a.marks }

// NewPad creates a pad with an empty root bundle, ready for scraps: the
// state of a freshly opened SLIMPad window.
func (a *App) NewPad(name string) (SlimPad, Bundle, error) {
	pad, err := a.dmi.CreateSlimPad(name)
	if err != nil {
		return nil, nil, err
	}
	root, err := a.dmi.CreateBundle(name, Coordinate{0, 0}, 800, 600)
	if err != nil {
		return nil, nil, err
	}
	if err := a.dmi.SetRootBundle(pad.ID(), root.ID()); err != nil {
		return nil, nil, err
	}
	pad, err = a.dmi.Pad(pad.ID())
	if err != nil {
		return nil, nil, err
	}
	return pad, root, nil
}

// ClipSelection creates a scrap in the bundle from the current selection of
// the scheme's base application — the "digital sticky-note ... with a
// digital wire that leads back to the information in the original data
// source" (§3). The scrap's label defaults to the marked content when name
// is empty; note that "a scrap's label and its mark's content may differ".
func (a *App) ClipSelection(bundle rdf.Term, scheme, name string, pos Coordinate) (Scrap, error) {
	m, err := a.marks.CreateFromSelection(scheme)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = m.Excerpt
	}
	if name == "" {
		name = m.Address.Path
	}
	scrap, err := a.dmi.CreateScrap(name, pos, m.ID)
	if err != nil {
		return nil, err
	}
	if err := a.dmi.AddScrapToBundle(bundle, scrap.ID()); err != nil {
		return nil, err
	}
	return scrap, nil
}

// OpenScrap resolves the scrap's (first) mark, driving the base application
// to the original element — the double-click behavior of §3: "the mark is
// de-referenced and the original information source ... is displayed with
// the appropriate medication highlighted."
func (a *App) OpenScrap(scrap rdf.Term) (base.Element, error) {
	s, err := a.dmi.Scrap(scrap)
	if err != nil {
		return base.Element{}, err
	}
	handles := s.MarkHandles()
	if len(handles) == 0 {
		return base.Element{}, fmt.Errorf("slimpad: scrap %s has no marks", scrap.Value())
	}
	return a.marks.Resolve(handles[0].MarkID())
}

// PeekScrap resolves the scrap's mark in place, without disturbing any base
// viewer (the §6 "display in place" behavior).
func (a *App) PeekScrap(scrap rdf.Term) (string, error) {
	s, err := a.dmi.Scrap(scrap)
	if err != nil {
		return "", err
	}
	handles := s.MarkHandles()
	if len(handles) == 0 {
		return "", fmt.Errorf("slimpad: scrap %s has no marks", scrap.Value())
	}
	return a.marks.ExtractContent(handles[0].MarkID())
}

// RefreshScrap re-extracts the marked content of every mark on the scrap
// and reports whether any drifted from its stored excerpt — SLIMPad's
// answer to the transcription-error risk of redundancy (§3). It fails on
// the first unresolvable mark; RefreshScrapCtx is the failure-aware
// variant that degrades per mark instead.
func (a *App) RefreshScrap(scrap rdf.Term) (changed bool, err error) {
	s, err := a.dmi.Scrap(scrap)
	if err != nil {
		return false, err
	}
	for _, h := range s.MarkHandles() {
		_, c, err := a.marks.Refresh(h.MarkID())
		if err != nil {
			return changed, err
		}
		changed = changed || c
	}
	return changed, nil
}

// RefreshReport summarizes a failure-aware scrap refresh.
type RefreshReport struct {
	// Refreshed counts marks whose excerpt was re-extracted live.
	Refreshed int
	// Changed reports whether any live re-extraction drifted from the
	// stored excerpt.
	Changed bool
	// Stale lists marks that could not be refreshed (their cached excerpt
	// still serves reads); Dangling lists those with no excerpt either.
	Stale, Dangling []string
}

// Ok reports whether every mark on the scrap refreshed live.
func (r RefreshReport) Ok() bool { return len(r.Stale) == 0 && len(r.Dangling) == 0 }

// RefreshScrapCtx refreshes every mark on the scrap with the Mark
// Manager's resilient path: transient base faults are retried, and a mark
// whose base is gone does not abort the rest of the scrap — it is recorded
// as stale (excerpt-backed) or dangling and quarantined by the manager for
// a later `doctor` pass. Only scrap-level failures (unknown scrap, unknown
// mark id) return an error.
func (a *App) RefreshScrapCtx(ctx context.Context, scrap rdf.Term) (RefreshReport, error) {
	var r RefreshReport
	s, err := a.dmi.ScrapCtx(ctx, scrap)
	if err != nil {
		return r, err
	}
	for _, h := range s.MarkHandles() {
		id := h.MarkID()
		_, c, err := a.marks.RefreshCtx(ctx, id)
		if err == nil {
			r.Refreshed++
			r.Changed = r.Changed || c
			continue
		}
		if errors.Is(err, mark.ErrUnknownMark) || ctx.Err() != nil {
			return r, err
		}
		m, merr := a.marks.Mark(id)
		if merr == nil && m.Excerpt != "" {
			r.Stale = append(r.Stale, id)
		} else {
			r.Dangling = append(r.Dangling, id)
		}
		obs.C(obs.NameSlimpadRefreshDegraded).Inc()
		obs.Log().Warn("slimpad: scrap mark not refreshable", "scrap", scrap.Value(), "mark", id, "err", err)
	}
	return r, nil
}

// Save persists the pad state and the marks into one XML file: the pad
// triples and mark triples share the store, so a single file captures the
// whole superimposed layer.
func (a *App) Save(fileName string) error {
	if err := a.marks.SaveTo(a.dmi.Store().Trim()); err != nil {
		return err
	}
	return a.dmi.Save(fileName)
}

// Load restores pads and marks from an XML file.
func (a *App) Load(fileName string) ([]SlimPad, error) {
	pads, err := a.dmi.Load(fileName)
	if err != nil {
		return nil, err
	}
	if err := a.marks.LoadFrom(a.dmi.Store().Trim()); err != nil {
		return nil, err
	}
	return pads, nil
}

// SaveWith persists the pad state and the marks through a pluggable
// durability backend opened over this app's store: with the WAL backend a
// save costs one fsynced record covering the mutations since the last
// save, O(batch), instead of the XML snapshot's O(store) rewrite.
func (a *App) SaveWith(b trim.Backend) error {
	if err := a.marks.SaveTo(a.dmi.Store().Trim()); err != nil {
		return err
	}
	return a.dmi.SaveBackend(b)
}

// LoadWith restores pads and marks through a pluggable durability backend
// (for the WAL: compacted snapshot + log replay with torn-tail recovery).
func (a *App) LoadWith(b trim.Backend) ([]SlimPad, error) {
	pads, err := a.dmi.LoadBackend(b)
	if err != nil {
		return nil, err
	}
	if err := a.marks.LoadFrom(a.dmi.Store().Trim()); err != nil {
		return nil, err
	}
	return pads, nil
}

// Tree renders the pad's containment structure as an indented outline, the
// textual stand-in for the Fig. 4 window. Scraps show their label and the
// address behind their first mark.
func (a *App) Tree(pad rdf.Term) (string, error) { return a.TreeCtx(nil, pad) }

// TreeCtx is Tree under the caller's trace: every pad, bundle, and scrap
// fetch it fans out into joins the context's trace tree, which makes one
// TreeCtx call the canonical multi-layer trace (dmi → trim) for the
// slimpad trace subcommand.
func (a *App) TreeCtx(ctx context.Context, pad rdf.Term) (string, error) {
	p, err := a.dmi.PadCtx(ctx, pad)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("SLIMPad %q\n", p.PadName())
	root, ok := p.RootBundle()
	if !ok {
		return out + "  (no root bundle)\n", nil
	}
	var render func(id rdf.Term, depth int) error
	render = func(id rdf.Term, depth int) error {
		b, err := a.dmi.BundleCtx(ctx, id)
		if err != nil {
			return err
		}
		label := b.BundleName()
		for _, t := range mustTemplates(a.dmi) {
			if t.Bundle == id {
				label += fmt.Sprintf(" (template %q)", t.Name)
			}
		}
		out += fmt.Sprintf("%*s[%s] at %s\n", depth*2, "", label, b.Pos())
		scraps := b.Scraps()
		sort.Slice(scraps, func(i, j int) bool { return scraps[i].Compare(scraps[j]) < 0 })
		for _, sid := range scraps {
			s, err := a.dmi.ScrapCtx(ctx, sid)
			if err != nil {
				return err
			}
			wire := ""
			if hs := s.MarkHandles(); len(hs) > 0 {
				if m, err := a.marks.Mark(hs[0].MarkID()); err == nil {
					wire = " -> " + m.Address.String()
				}
			}
			out += fmt.Sprintf("%*s* %s%s\n", depth*2+2, "", s.ScrapName(), wire)
			notes, err := a.dmi.ScrapNotes(sid)
			if err != nil {
				return err
			}
			for _, note := range notes {
				out += fmt.Sprintf("%*s. note: %s\n", depth*2+4, "", note)
			}
			links, err := a.dmi.LinkedScraps(sid)
			if err != nil {
				return err
			}
			for _, target := range links {
				if ts, err := a.dmi.ScrapCtx(ctx, target); err == nil {
					out += fmt.Sprintf("%*s. see: %s\n", depth*2+4, "", ts.ScrapName())
				}
			}
		}
		nested := b.NestedBundles()
		sort.Slice(nested, func(i, j int) bool { return nested[i].Compare(nested[j]) < 0 })
		for _, nid := range nested {
			if err := render(nid, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := render(root, 1); err != nil {
		return "", err
	}
	return out, nil
}

// mustTemplates returns the template list, empty on error (rendering keeps
// going).
func mustTemplates(d *DMI) []TemplateRef {
	ts, err := d.Templates()
	if err != nil {
		return nil
	}
	return ts
}

// Stats summarizes a pad for dashboards and tests.
type Stats struct {
	Bundles, Scraps, Marks int
}

// PadStats counts bundles and scraps reachable from the pad's root bundle,
// and the distinct marks they reference.
func (a *App) PadStats(pad rdf.Term) (Stats, error) {
	p, err := a.dmi.Pad(pad)
	if err != nil {
		return Stats{}, err
	}
	root, ok := p.RootBundle()
	if !ok {
		return Stats{}, nil
	}
	var st Stats
	markSet := map[string]bool{}
	var walk func(id rdf.Term) error
	walk = func(id rdf.Term) error {
		b, err := a.dmi.Bundle(id)
		if err != nil {
			return err
		}
		st.Bundles++
		for _, sid := range b.Scraps() {
			s, err := a.dmi.Scrap(sid)
			if err != nil {
				return err
			}
			st.Scraps++
			for _, h := range s.MarkHandles() {
				markSet[h.MarkID()] = true
			}
		}
		for _, nid := range b.NestedBundles() {
			if err := walk(nid); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return Stats{}, err
	}
	st.Marks = len(markSet)
	return st, nil
}

// Check validates the pad store against the Bundle-Scrap model, plus the
// cross-component invariant that every mark handle's mark id is known to
// the Mark Manager.
func (a *App) Check() ([]string, error) {
	vios, err := a.dmi.Check()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, v := range vios {
		out = append(out, v.String())
	}
	for _, t := range a.dmi.Store().Trim().Select(rdf.P(rdf.Zero, metamodel.PropMarkID, rdf.Zero)) {
		if _, err := a.marks.Mark(t.Object.Value()); err != nil {
			out = append(out, fmt.Sprintf("dangling-mark: %s references unknown mark %q", t.Subject.Value(), t.Object.Value()))
		}
	}
	sort.Strings(out)
	return out, nil
}
