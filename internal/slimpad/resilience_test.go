package slimpad

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/base/spreadsheet"
	"repro/internal/faultbase"
	"repro/internal/mark"
	"repro/internal/trim"
)

// faultFixture wires a SLIMPad over a fault-injected spreadsheet app plus
// the plain XML app, with fast retries.
type faultFixture struct {
	app    *App
	fa     *faultbase.App
	sheets *spreadsheet.App
}

func newFaultFixture(t *testing.T) *faultFixture {
	t.Helper()
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		t.Fatal(err)
	}
	if err := sheets.AddWorkbook(w); err != nil {
		t.Fatal(err)
	}
	fa := faultbase.Wrap(sheets)
	mm := mark.NewManager()
	mm.SetRetryPolicy(mark.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
	if err := mm.RegisterApplication(fa); err != nil {
		t.Fatal(err)
	}
	app, err := NewApp(mm)
	if err != nil {
		t.Fatal(err)
	}
	return &faultFixture{app: app, fa: fa, sheets: sheets}
}

func (f *faultFixture) clipCell(t *testing.T, bundle Bundle, cell string) Scrap {
	t.Helper()
	f.sheets.Open("meds.xls")
	r, err := spreadsheet.ParseRange(cell)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	scrap, err := f.app.ClipSelection(bundle.ID(), spreadsheet.Scheme, "", Coordinate{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return scrap
}

func TestRefreshScrapCtxRetriesTransient(t *testing.T) {
	f := newFaultFixture(t)
	_, root, err := f.app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	scrap := f.clipCell(t, root, "B2")
	// Edit the base, then let the first extract fail transiently.
	w, _ := f.sheets.Workbook("meds.xls")
	s, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("B2")
	s.Set(cell, "80mg")
	f.fa.FailN(faultbase.OpExtractContent, nil, 1)
	r, err := f.app.RefreshScrapCtx(context.Background(), scrap.ID())
	if err != nil {
		t.Fatalf("RefreshScrapCtx = %v", err)
	}
	if !r.Ok() || !r.Changed || r.Refreshed != 1 {
		t.Errorf("report = %+v", r)
	}
}

func TestRefreshScrapCtxDegradesPerMark(t *testing.T) {
	f := newFaultFixture(t)
	_, root, err := f.app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	scrap := f.clipCell(t, root, "A2")
	// The base document disappears: the scrap's mark cannot refresh, but
	// the refresh must degrade (mark is excerpt-backed), not error.
	f.fa.DropDocument("meds.xls")
	r, err := f.app.RefreshScrapCtx(context.Background(), scrap.ID())
	if err != nil {
		t.Fatalf("RefreshScrapCtx = %v", err)
	}
	if r.Ok() || len(r.Stale) != 1 || len(r.Dangling) != 0 {
		t.Fatalf("report = %+v", r)
	}
	// The blunt RefreshScrap still errors, for callers that want that.
	if _, err := f.app.RefreshScrap(scrap.ID()); err == nil {
		t.Error("RefreshScrap of unreachable base succeeded")
	}
	// The manager quarantined the mark for a doctor pass.
	if q := f.app.Marks().Quarantined(); len(q) != 1 {
		t.Errorf("quarantine = %+v", q)
	}
	// PeekScrap still serves the cached excerpt (degradation ladder).
	content, err := f.app.PeekScrap(scrap.ID())
	if err != nil || content != "Furosemide" {
		t.Errorf("PeekScrap = %q, %v", content, err)
	}
}

func TestRefreshScrapCtxUnknownScrap(t *testing.T) {
	f := newFaultFixture(t)
	if _, err := f.app.RefreshScrapCtx(context.Background(), mark.MarkIRI("nope")); err == nil {
		t.Error("refresh of unknown scrap succeeded")
	}
}

// Corrupted pad stores must be diagnosable, never a panic or a silently
// partial graph — and a .bak from an earlier good save must recover.
func TestLoadCorruptPadStore(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.xml":     {},
		"garbage.xml":   []byte("\x00\x01 not a pad \xff"),
		"truncated.xml": []byte("<?xml version=\"1.0\"?>\n<slimstore version=\"1\"><trip"),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(mark.NewManager())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Load(path); err == nil {
			t.Errorf("%s: load succeeded", name)
		} else if !errors.Is(err, trim.ErrCorrupt) {
			t.Errorf("%s: err = %v, want trim.ErrCorrupt", name, err)
		}
	}
}

func TestLoadRecoversPadFromBackup(t *testing.T) {
	f := newFaultFixture(t)
	_, root, err := f.app.NewPad("Rounds")
	if err != nil {
		t.Fatal(err)
	}
	f.clipCell(t, root, "A2")
	dir := t.TempDir()
	path := filepath.Join(dir, "pad.xml")
	if err := f.app.Save(path); err != nil {
		t.Fatal(err)
	}
	// A second save (unchanged) keeps the first as .bak; then the primary
	// is torn by a crash.
	if err := f.app.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 60); err != nil {
		t.Fatal(err)
	}
	app2, err := NewApp(mark.NewManager())
	if err != nil {
		t.Fatal(err)
	}
	pads, err := app2.Load(path)
	if err != nil {
		t.Fatalf("recovery load = %v", err)
	}
	if len(pads) != 1 || pads[0].PadName() != "Rounds" {
		t.Fatalf("recovered pads = %v", pads)
	}
	if app2.Marks().Len() != 1 {
		t.Errorf("recovered marks = %d", app2.Marks().Len())
	}
}
