package annotation

import (
	"testing"

	"repro/internal/base/htmldoc"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
)

const page = `<html><body>
<h1 id="top">Guidelines</h1>
<p id="p1">Loop diuretics are first-line.</p>
<p id="p2">Monitor potassium daily.</p>
</body></html>`

func fixture(t *testing.T) (*Store, *htmldoc.App) {
	t.Helper()
	browser := htmldoc.NewApp()
	if _, err := browser.LoadString("guide.html", page); err != nil {
		t.Fatal(err)
	}
	mm := mark.NewManager()
	if err := mm.RegisterApplication(browser); err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(mm)
	if err != nil {
		t.Fatal(err)
	}
	return st, browser
}

func annotateAt(t *testing.T, st *Store, browser *htmldoc.App, anchor, annType, body string, stamp int64) Annotation {
	t.Helper()
	if err := browser.Open("guide.html"); err != nil {
		t.Fatal(err)
	}
	if err := browser.SelectPath(anchor); err != nil {
		t.Fatal(err)
	}
	a, err := st.Annotate(htmldoc.Scheme, annType, body, stamp)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnnotateAndGet(t *testing.T) {
	st, browser := fixture(t)
	a := annotateAt(t, st, browser, "#p1", "question", "is this true for HFpEF?", 100)
	got, err := st.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("Get = %+v, want %+v", got, a)
	}
	if got.MarkID == "" {
		t.Fatal("annotation has no anchor mark")
	}
}

func TestAnnotateWithoutSelection(t *testing.T) {
	st, _ := fixture(t)
	if _, err := st.Annotate(htmldoc.Scheme, "q", "body", 1); err == nil {
		t.Fatal("annotate without selection succeeded")
	}
}

func TestAnnotateMarkDirect(t *testing.T) {
	st, browser := fixture(t)
	browser.Open("guide.html")
	browser.SelectPath("#p2")
	m, err := st.marks.CreateFromSelection(htmldoc.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	a, err := st.AnnotateMark(m.ID, "todo", "check dosing", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.MarkID != m.ID {
		t.Fatalf("MarkID = %q", a.MarkID)
	}
	if _, err := st.AnnotateMark("ghost", "x", "y", 1); err == nil {
		t.Fatal("annotation on ghost mark accepted")
	}
}

func TestQueryByTypeAndTimeRange(t *testing.T) {
	st, browser := fixture(t)
	annotateAt(t, st, browser, "#p1", "question", "a", 100)
	annotateAt(t, st, browser, "#p2", "correction", "b", 200)
	annotateAt(t, st, browser, "#top", "question", "c", 300)

	qs, err := st.Query("question", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("questions = %d", len(qs))
	}
	ranged, err := st.Query("", 150, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 1 || ranged[0].Body != "b" {
		t.Fatalf("ranged = %v", ranged)
	}
	both, err := st.Query("question", 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 1 || both[0].Body != "c" {
		t.Fatalf("type+range = %v", both)
	}
	all, err := st.All()
	if err != nil || len(all) != 3 {
		t.Fatalf("All = %d, %v", len(all), err)
	}
	// Ordered by stamp.
	if all[0].Stamp > all[1].Stamp || all[1].Stamp > all[2].Stamp {
		t.Fatal("All not stamp-ordered")
	}
}

func TestNavigate(t *testing.T) {
	st, browser := fixture(t)
	a := annotateAt(t, st, browser, "#p2", "todo", "check", 5)
	// Move the browser elsewhere.
	browser.SelectPath("#top")
	el, err := st.Navigate(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Monitor potassium daily." {
		t.Errorf("Content = %q", el.Content)
	}
	sel, err := browser.CurrentSelection()
	if err != nil || sel.Path != "/html[1]/body[1]/p[2]" {
		t.Errorf("browser selection = %v, %v", sel, err)
	}
}

func TestDelete(t *testing.T) {
	st, browser := fixture(t)
	a := annotateAt(t, st, browser, "#p1", "q", "x", 1)
	if err := st.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(a.ID); err == nil {
		t.Fatal("deleted annotation readable")
	}
	if err := st.Delete(a.ID); err == nil {
		t.Fatal("double delete succeeded")
	}
	all, _ := st.All()
	if len(all) != 0 {
		t.Fatal("annotation survives in listing")
	}
}

func TestGetWrongType(t *testing.T) {
	st, _ := fixture(t)
	// An anchor instance is not an annotation.
	anchor, err := st.dmi.Create(metamodel.ConstructAnchor, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.dmi.Trim().Create(rdf.T(anchor.ID, metamodel.PropMarkID, rdf.String("m")))
	if _, err := st.Get(anchor.ID); err == nil {
		t.Fatal("Get(anchor) succeeded")
	}
}

func TestConformance(t *testing.T) {
	st, browser := fixture(t)
	annotateAt(t, st, browser, "#p1", "q", "body", 1)
	vios, err := st.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("conforming annotations have violations: %v", vios)
	}
}

func TestSharedStoreWithBundleScrap(t *testing.T) {
	// The multi-model claim, §4.3: annotations and the Bundle-Scrap model
	// coexist in one store without interference.
	browser := htmldoc.NewApp()
	browser.LoadString("guide.html", page)
	mm := mark.NewManager()
	mm.RegisterApplication(browser)
	shared := slim.NewStore()
	st, err := NewStoreOver(shared, mm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slim.GenerateDMI(shared, metamodel.BundleScrapModel()); err != nil {
		t.Fatal(err)
	}
	browser.Open("guide.html")
	browser.SelectPath("#p1")
	if _, err := st.Annotate(htmldoc.Scheme, "q", "x", 1); err != nil {
		t.Fatal(err)
	}
	models := metamodel.ListModels(shared.Trim())
	if len(models) != 2 {
		t.Fatalf("models in shared store = %v", models)
	}
	all, err := st.All()
	if err != nil || len(all) != 1 {
		t.Fatalf("All = %d, %v", len(all), err)
	}
}
