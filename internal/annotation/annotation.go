// Package annotation implements a ComMentor-style annotation system over
// the SLIM stack, the baseline the paper compares SLIMPad against in §5:
// "In ComMentor, users can ask for specific types of annotations created
// within a time range and use the returned annotations to navigate the
// corresponding web pages."
//
// Annotations live in the same generic triple representation as SLIMPad's
// bundles — the annotation model of metamodel.AnnotationModel — which is
// itself the demonstration that the SLIM store holds structurally different
// superimposed models side by side.
package annotation

import (
	"fmt"
	"sort"

	"repro/internal/base"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
)

// Annotation is the read-only view of one annotation.
type Annotation struct {
	// ID is the annotation's instance IRI.
	ID rdf.Term
	// Type is the user-assigned annotation type (e.g. "question",
	// "correction").
	Type string
	// Body is the annotation text.
	Body string
	// Stamp is the creation timestamp (seconds; caller-defined epoch).
	Stamp int64
	// MarkID references the anchor mark in the Mark Manager.
	MarkID string
}

// Store manages annotations over a SLIM store and a mark manager.
type Store struct {
	dmi   *slim.DMI
	marks *mark.Manager
}

// NewStore builds an annotation store over a fresh SLIM store.
func NewStore(marks *mark.Manager) (*Store, error) {
	return NewStoreOver(slim.NewStore(), marks)
}

// NewStoreOver builds an annotation store over an existing SLIM store,
// registering the annotation model if needed.
func NewStoreOver(s *slim.Store, marks *mark.Manager) (*Store, error) {
	model, ok := s.Model(metamodel.AnnotationModelID)
	if !ok {
		model = metamodel.AnnotationModel()
	}
	dmi, err := slim.GenerateDMI(s, model)
	if err != nil {
		return nil, err
	}
	return &Store{dmi: dmi, marks: marks}, nil
}

// Slim exposes the underlying SLIM store.
func (st *Store) Slim() *slim.Store { return st.dmi.Store() }

// Annotate creates an annotation anchored at the current selection of the
// scheme's base application.
func (st *Store) Annotate(scheme, annType, body string, stamp int64) (Annotation, error) {
	m, err := st.marks.CreateFromSelection(scheme)
	if err != nil {
		return Annotation{}, err
	}
	return st.annotateMark(m.ID, annType, body, stamp)
}

// AnnotateMark creates an annotation anchored at an existing mark.
func (st *Store) AnnotateMark(markID, annType, body string, stamp int64) (Annotation, error) {
	if _, err := st.marks.Mark(markID); err != nil {
		return Annotation{}, err
	}
	return st.annotateMark(markID, annType, body, stamp)
}

func (st *Store) annotateMark(markID, annType, body string, stamp int64) (Annotation, error) {
	anchor, err := st.dmi.Create(metamodel.ConstructAnchor, nil)
	if err != nil {
		return Annotation{}, err
	}
	if _, err := st.dmi.Trim().Create(rdf.T(anchor.ID, metamodel.PropMarkID, rdf.String(markID))); err != nil {
		return Annotation{}, err
	}
	obj, err := st.dmi.Create(metamodel.ConstructAnnotation, map[string]any{
		metamodel.ConnAnnType:   annType,
		metamodel.ConnAnnBody:   body,
		metamodel.ConnAnnStamp:  stamp,
		metamodel.ConnAnnAnchor: anchor,
	})
	if err != nil {
		return Annotation{}, err
	}
	return Annotation{ID: obj.ID, Type: annType, Body: body, Stamp: stamp, MarkID: markID}, nil
}

// Get retrieves an annotation by id.
func (st *Store) Get(id rdf.Term) (Annotation, error) {
	obj, err := st.dmi.Get(id)
	if err != nil {
		return Annotation{}, err
	}
	if obj.Construct != metamodel.ConstructAnnotation {
		return Annotation{}, fmt.Errorf("annotation: %s is a %s, not an Annotation", id.Value(), obj.Construct)
	}
	a := Annotation{
		ID:    id,
		Type:  obj.GetString(metamodel.ConnAnnType),
		Body:  obj.GetString(metamodel.ConnAnnBody),
		Stamp: obj.GetInt(metamodel.ConnAnnStamp),
	}
	anchor, err := obj.Get(metamodel.ConnAnnAnchor)
	if err == nil {
		if t, err := st.dmi.Trim().One(rdf.P(anchor, metamodel.PropMarkID, rdf.Zero)); err == nil {
			a.MarkID = t.Object.Value()
		}
	}
	return a, nil
}

// All returns every annotation ordered by stamp, then id.
func (st *Store) All() ([]Annotation, error) {
	objs, err := st.dmi.InstancesOf(metamodel.ConstructAnnotation)
	if err != nil {
		return nil, err
	}
	out := make([]Annotation, 0, len(objs))
	for _, o := range objs {
		a, err := st.Get(o.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stamp != out[j].Stamp {
			return out[i].Stamp < out[j].Stamp
		}
		return out[i].ID.Compare(out[j].ID) < 0
	})
	return out, nil
}

// Query returns annotations filtered by type (empty means any) and stamp
// range [from, to] (to == 0 means unbounded) — the ComMentor retrieval
// behavior quoted in §5.
func (st *Store) Query(annType string, from, to int64) ([]Annotation, error) {
	all, err := st.All()
	if err != nil {
		return nil, err
	}
	var out []Annotation
	for _, a := range all {
		if annType != "" && a.Type != annType {
			continue
		}
		if a.Stamp < from {
			continue
		}
		if to != 0 && a.Stamp > to {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// Navigate resolves the annotation's anchor, driving the base application
// to the annotated element ("use the returned annotations to navigate the
// corresponding web pages", §5).
func (st *Store) Navigate(id rdf.Term) (base.Element, error) {
	a, err := st.Get(id)
	if err != nil {
		return base.Element{}, err
	}
	if a.MarkID == "" {
		return base.Element{}, fmt.Errorf("annotation: %s has no anchor mark", id.Value())
	}
	return st.marks.Resolve(a.MarkID)
}

// Delete removes an annotation and its anchor.
func (st *Store) Delete(id rdf.Term) error {
	if _, err := st.Get(id); err != nil {
		return err
	}
	return st.dmi.Delete(id, true)
}

// Check validates the store against the annotation model.
func (st *Store) Check() ([]metamodel.Violation, error) {
	return st.dmi.Store().Check(metamodel.AnnotationModelID)
}
