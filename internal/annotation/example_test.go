package annotation_test

import (
	"fmt"

	"repro/internal/annotation"
	"repro/internal/base/htmldoc"
	"repro/internal/mark"
)

// The ComMentor flow quoted in §5: create typed annotations, query by type
// and time range, and navigate back to the annotated element.
func Example() {
	browser := htmldoc.NewApp()
	browser.LoadString("page.html", `<html><body><p id="x">Monitor potassium.</p></body></html>`)
	marks := mark.NewManager()
	marks.RegisterApplication(browser)
	store, _ := annotation.NewStore(marks)

	browser.Open("page.html")
	browser.SelectPath("#x")
	a, _ := store.Annotate(htmldoc.Scheme, "question", "how often?", 100)

	hits, _ := store.Query("question", 50, 150)
	fmt.Println(len(hits), "annotation(s)")
	el, _ := store.Navigate(a.ID)
	fmt.Println(el.Content)
	// Output:
	// 1 annotation(s)
	// Monitor potassium.
}
