package vdoc_test

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/mark"
	"repro/internal/vdoc"
)

// A virtual document splices live base content through span links at
// render time (the Mirage-III behavior, §5).
func Example() {
	marks := mark.NewManager()
	marks.Add(mark.Mark{
		ID:      "m1",
		Address: base.Address{Scheme: "xml", File: "lab.xml", Path: "/report[1]/result[1]"},
		Excerpt: "4.1",
	})
	lib := vdoc.NewLibrary(marks)
	d, _ := lib.Create("signout")
	d.AppendText("Potassium is ")
	d.AppendSpanLink("m1")
	d.AppendText(" this morning.")

	out, broken, _ := lib.Render("signout")
	fmt.Println(out)
	fmt.Println("broken links:", broken)
	// Output:
	// Potassium is 4.1 this morning.
	// broken links: 0
}
