package vdoc

import (
	"strings"
	"testing"

	"repro/internal/base"
	"repro/internal/base/spreadsheet"
	"repro/internal/mark"
)

func fixture(t *testing.T) (*Library, *mark.Manager) {
	t.Helper()
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		t.Fatal(err)
	}
	sheets.AddWorkbook(w)
	mm := mark.NewManager()
	if err := mm.RegisterApplication(sheets); err != nil {
		t.Fatal(err)
	}
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	return NewLibrary(mm), mm
}

func TestCreateAndLookup(t *testing.T) {
	l, _ := fixture(t)
	if _, err := l.Create(""); err == nil {
		t.Error("unnamed vdoc accepted")
	}
	d, err := l.Create("summary")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Create("summary"); err == nil {
		t.Error("duplicate accepted")
	}
	got, ok := l.Get("summary")
	if !ok || got != d {
		t.Fatal("lookup failed")
	}
	if len(l.Names()) != 1 {
		t.Fatal("Names wrong")
	}
}

func TestRenderSplicesBaseContent(t *testing.T) {
	l, mm := fixture(t)
	m, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := l.Create("summary")
	d.AppendText("Patient remains on ")
	if err := d.AppendSpanLink(m.ID); err != nil {
		t.Fatal(err)
	}
	d.AppendText(" for diuresis.")
	out, broken, err := l.Render("summary")
	if err != nil {
		t.Fatal(err)
	}
	if broken != 0 {
		t.Fatalf("broken = %d", broken)
	}
	if out != "Patient remains on Furosemide for diuresis." {
		t.Fatalf("Render = %q", out)
	}
}

func TestRenderReflectsBaseEdits(t *testing.T) {
	// The defining property of span links: re-rendering shows current base
	// content (unlike a copied excerpt).
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	w.LoadCSV("Meds", "Drug\nFurosemide\n")
	sheets.AddWorkbook(w)
	mm := mark.NewManager()
	mm.RegisterApplication(sheets)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)

	l := NewLibrary(mm)
	d, _ := l.Create("v")
	d.AppendSpanLink(m.ID)
	before, _, _ := l.Render("v")
	if before != "Furosemide" {
		t.Fatalf("before = %q", before)
	}
	s, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("A2")
	s.Set(cell, "Bumetanide")
	after, _, _ := l.Render("v")
	if after != "Bumetanide" {
		t.Fatalf("after = %q (render must reflect live base content)", after)
	}
}

func TestRenderBrokenLink(t *testing.T) {
	l, _ := fixture(t)
	d, _ := l.Create("v")
	d.AppendText("before ")
	d.AppendSpanLink("ghost-mark")
	d.AppendText(" after")
	out, broken, err := l.Render("v")
	if err != nil {
		t.Fatal(err)
	}
	if broken != 1 {
		t.Fatalf("broken = %d", broken)
	}
	if !strings.Contains(out, "[broken link ghost-mark]") {
		t.Fatalf("Render = %q", out)
	}
	if !strings.HasPrefix(out, "before ") || !strings.HasSuffix(out, " after") {
		t.Fatalf("literal text lost: %q", out)
	}
}

func TestRenderMissingDoc(t *testing.T) {
	l, _ := fixture(t)
	if _, _, err := l.Render("absent"); err == nil {
		t.Fatal("render of absent doc succeeded")
	}
}

func TestAppendSpanLinkValidation(t *testing.T) {
	l, _ := fixture(t)
	d, _ := l.Create("v")
	if err := d.AppendSpanLink(""); err == nil {
		t.Fatal("empty mark id accepted")
	}
}

func TestSegmentsAndSpanLinks(t *testing.T) {
	l, _ := fixture(t)
	d, _ := l.Create("v")
	d.AppendText("a")
	d.AppendSpanLink("m1")
	d.AppendText("b")
	d.AppendSpanLink("m2")
	segs := d.Segments()
	if len(segs) != 4 {
		t.Fatalf("segments = %d", len(segs))
	}
	links := d.SpanLinks()
	if len(links) != 2 || links[0] != "m1" || links[1] != "m2" {
		t.Fatalf("links = %v", links)
	}
	// Segments returns a copy.
	segs[0].Text = "mutated"
	if d.Segments()[0].Text != "a" {
		t.Fatal("Segments exposed internal state")
	}
}

func TestRenderUsesExcerptWhenViewerUnavailable(t *testing.T) {
	// ExtractContent falls back to the stored excerpt if the base app is
	// gone — the vdoc still renders.
	mm := mark.NewManager()
	mm.Add(mark.Mark{
		ID:      "m-offline",
		Address: base.Address{Scheme: "gone", File: "f", Path: "p"},
		Excerpt: "cached content",
	})
	l := NewLibrary(mm)
	d, _ := l.Create("v")
	d.AppendSpanLink("m-offline")
	out, broken, err := l.Render("v")
	if err != nil || broken != 0 {
		t.Fatalf("render = %v, broken %d", err, broken)
	}
	if out != "cached content" {
		t.Fatalf("Render = %q", out)
	}
}
