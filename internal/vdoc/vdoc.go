// Package vdoc implements Mirage-III-style virtual documents, the second §5
// baseline: "a digital library system that allows users to create virtual
// documents (VDOCs) that contain span links to other documents. When a VDOC
// is rendered, the span links are resolved and the information they
// reference is displayed. The main difference between SLIMPad and virtual
// documents is that SLIMPad can contain information not present in the
// underlying documents."
//
// A VDoc is an ordered sequence of segments: literal text, or a span link
// (a mark id). Render resolves every span link through the Mark Manager and
// splices the base content into the output.
package vdoc

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mark"
)

// SegmentKind distinguishes literal text from span links.
type SegmentKind int

const (
	// KindText is author-supplied literal text.
	KindText SegmentKind = iota
	// KindSpanLink is a reference to base content via a mark.
	KindSpanLink
)

// Segment is one piece of a virtual document.
type Segment struct {
	Kind SegmentKind
	// Text is the literal content (KindText).
	Text string
	// MarkID references the spanned base content (KindSpanLink).
	MarkID string
}

// VDoc is a named virtual document.
type VDoc struct {
	// Name identifies the document.
	Name     string
	segments []Segment
}

// Library holds virtual documents and renders them against a mark manager.
type Library struct {
	mu    sync.Mutex
	docs  map[string]*VDoc
	marks *mark.Manager
}

// NewLibrary returns an empty library rendering through the mark manager.
func NewLibrary(marks *mark.Manager) *Library {
	return &Library{docs: make(map[string]*VDoc), marks: marks}
}

// Create adds an empty virtual document.
func (l *Library) Create(name string) (*VDoc, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("vdoc: document needs a name")
	}
	if _, ok := l.docs[name]; ok {
		return nil, fmt.Errorf("vdoc: document %q already exists", name)
	}
	d := &VDoc{Name: name}
	l.docs[name] = d
	return d, nil
}

// Get looks up a virtual document.
func (l *Library) Get(name string) (*VDoc, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.docs[name]
	return d, ok
}

// AppendText appends literal text to the document.
func (d *VDoc) AppendText(text string) {
	d.segments = append(d.segments, Segment{Kind: KindText, Text: text})
}

// AppendSpanLink appends a span link by mark id.
func (d *VDoc) AppendSpanLink(markID string) error {
	if markID == "" {
		return fmt.Errorf("vdoc: empty mark id")
	}
	d.segments = append(d.segments, Segment{Kind: KindSpanLink, MarkID: markID})
	return nil
}

// Segments returns a copy of the document's segments.
func (d *VDoc) Segments() []Segment {
	return append([]Segment(nil), d.segments...)
}

// SpanLinks returns the mark ids of all span links, in order.
func (d *VDoc) SpanLinks() []string {
	var out []string
	for _, s := range d.segments {
		if s.Kind == KindSpanLink {
			out = append(out, s.MarkID)
		}
	}
	return out
}

// Render resolves every span link and splices base content between the
// literal segments. A broken link renders as an inline error marker rather
// than failing the whole document, matching digital-library practice; the
// error count is returned.
func (l *Library) Render(name string) (string, int, error) {
	l.mu.Lock()
	d, ok := l.docs[name]
	l.mu.Unlock()
	if !ok {
		return "", 0, fmt.Errorf("vdoc: no document %q", name)
	}
	var b strings.Builder
	broken := 0
	for _, seg := range d.segments {
		switch seg.Kind {
		case KindText:
			b.WriteString(seg.Text)
		case KindSpanLink:
			content, err := l.marks.ExtractContent(seg.MarkID)
			if err != nil {
				broken++
				fmt.Fprintf(&b, "[broken link %s]", seg.MarkID)
				continue
			}
			b.WriteString(content)
		}
	}
	return b.String(), broken, nil
}

// Names returns the names of all documents, unsorted count only being
// stable; callers needing order should sort.
func (l *Library) Names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.docs))
	for n := range l.docs {
		out = append(out, n)
	}
	return out
}
