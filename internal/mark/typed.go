package mark

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/base/htmldoc"
	"repro/internal/base/pdfdoc"
	"repro/internal/base/slides"
	"repro/internal/base/spreadsheet"
	"repro/internal/base/textdoc"
	"repro/internal/base/xmldoc"
)

// Typed mark views decompose the generic mark into the per-type fields of
// Fig. 8: "Microsoft Excel Mark: markId, fileName, sheetName, range. XML
// Mark: markId, fileName, xmlPath." The generic Mark remains the stored
// representation; these views give superimposed-application builders typed
// access and validated construction.

// ExcelMark is the spreadsheet mark of Fig. 8.
type ExcelMark struct {
	MarkID    string
	FileName  string
	SheetName string
	Range     spreadsheet.Range
}

// AsExcelMark decomposes a generic spreadsheet mark.
func AsExcelMark(m Mark) (ExcelMark, error) {
	if m.Scheme() != spreadsheet.Scheme {
		return ExcelMark{}, fmt.Errorf("mark: %q is a %s mark, not a spreadsheet mark", m.ID, m.Scheme())
	}
	sheet, rng, err := spreadsheet.ParsePath(m.Address.Path)
	if err != nil {
		return ExcelMark{}, fmt.Errorf("mark: %q: %w", m.ID, err)
	}
	return ExcelMark{MarkID: m.ID, FileName: m.Address.File, SheetName: sheet, Range: rng}, nil
}

// Mark recomposes the generic mark.
func (em ExcelMark) Mark() Mark {
	return Mark{ID: em.MarkID, Address: base.Address{
		Scheme: spreadsheet.Scheme,
		File:   em.FileName,
		Path:   spreadsheet.FormatPath(em.SheetName, em.Range),
	}}
}

// XMLMark is the XML mark of Fig. 8.
type XMLMark struct {
	MarkID   string
	FileName string
	XMLPath  string
}

// AsXMLMark decomposes a generic XML mark.
func AsXMLMark(m Mark) (XMLMark, error) {
	if m.Scheme() != xmldoc.Scheme {
		return XMLMark{}, fmt.Errorf("mark: %q is a %s mark, not an XML mark", m.ID, m.Scheme())
	}
	if _, err := xmldoc.ParsePath(m.Address.Path); err != nil {
		return XMLMark{}, fmt.Errorf("mark: %q: %w", m.ID, err)
	}
	return XMLMark{MarkID: m.ID, FileName: m.Address.File, XMLPath: m.Address.Path}, nil
}

// Mark recomposes the generic mark.
func (xm XMLMark) Mark() Mark {
	return Mark{ID: xm.MarkID, Address: base.Address{
		Scheme: xmldoc.Scheme, File: xm.FileName, Path: xm.XMLPath,
	}}
}

// WordMark is the word-processor mark: document, section, paragraph, and
// optional word span.
type WordMark struct {
	MarkID   string
	FileName string
	Loc      textdoc.Loc
}

// AsWordMark decomposes a generic text mark.
func AsWordMark(m Mark) (WordMark, error) {
	if m.Scheme() != textdoc.Scheme {
		return WordMark{}, fmt.Errorf("mark: %q is a %s mark, not a text mark", m.ID, m.Scheme())
	}
	loc, err := textdoc.ParseLoc(m.Address.Path)
	if err != nil {
		return WordMark{}, fmt.Errorf("mark: %q: %w", m.ID, err)
	}
	return WordMark{MarkID: m.ID, FileName: m.Address.File, Loc: loc}, nil
}

// Mark recomposes the generic mark.
func (wm WordMark) Mark() Mark {
	return Mark{ID: wm.MarkID, Address: base.Address{
		Scheme: textdoc.Scheme, File: wm.FileName, Path: wm.Loc.String(),
	}}
}

// PDFMark is the paginated-document mark: document, page, line span.
type PDFMark struct {
	MarkID   string
	FileName string
	Loc      pdfdoc.Loc
}

// AsPDFMark decomposes a generic PDF mark.
func AsPDFMark(m Mark) (PDFMark, error) {
	if m.Scheme() != pdfdoc.Scheme {
		return PDFMark{}, fmt.Errorf("mark: %q is a %s mark, not a PDF mark", m.ID, m.Scheme())
	}
	loc, err := pdfdoc.ParseLoc(m.Address.Path)
	if err != nil {
		return PDFMark{}, fmt.Errorf("mark: %q: %w", m.ID, err)
	}
	return PDFMark{MarkID: m.ID, FileName: m.Address.File, Loc: loc}, nil
}

// Mark recomposes the generic mark.
func (pm PDFMark) Mark() Mark {
	return Mark{ID: pm.MarkID, Address: base.Address{
		Scheme: pdfdoc.Scheme, File: pm.FileName, Path: pm.Loc.String(),
	}}
}

// SlideMark is the presentation mark: deck, slide, shape.
type SlideMark struct {
	MarkID   string
	FileName string
	Loc      slides.Loc
}

// AsSlideMark decomposes a generic slides mark.
func AsSlideMark(m Mark) (SlideMark, error) {
	if m.Scheme() != slides.Scheme {
		return SlideMark{}, fmt.Errorf("mark: %q is a %s mark, not a slides mark", m.ID, m.Scheme())
	}
	loc, err := slides.ParseLoc(m.Address.Path)
	if err != nil {
		return SlideMark{}, fmt.Errorf("mark: %q: %w", m.ID, err)
	}
	return SlideMark{MarkID: m.ID, FileName: m.Address.File, Loc: loc}, nil
}

// Mark recomposes the generic mark.
func (sm SlideMark) Mark() Mark {
	return Mark{ID: sm.MarkID, Address: base.Address{
		Scheme: slides.Scheme, File: sm.FileName, Path: sm.Loc.String(),
	}}
}

// HTMLMark is the web-page mark: page URL and element path (or anchor).
type HTMLMark struct {
	MarkID      string
	URL         string
	ElementPath string
}

// AsHTMLMark decomposes a generic HTML mark.
func AsHTMLMark(m Mark) (HTMLMark, error) {
	if m.Scheme() != htmldoc.Scheme {
		return HTMLMark{}, fmt.Errorf("mark: %q is a %s mark, not an HTML mark", m.ID, m.Scheme())
	}
	return HTMLMark{MarkID: m.ID, URL: m.Address.File, ElementPath: m.Address.Path}, nil
}

// Mark recomposes the generic mark.
func (hm HTMLMark) Mark() Mark {
	return Mark{ID: hm.MarkID, Address: base.Address{
		Scheme: htmldoc.Scheme, File: hm.URL, Path: hm.ElementPath,
	}}
}
