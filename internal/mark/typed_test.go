package mark

import (
	"testing"

	"repro/internal/base"
	"repro/internal/base/pdfdoc"
	"repro/internal/base/slides"
	"repro/internal/base/spreadsheet"
	"repro/internal/base/textdoc"
)

func TestExcelMarkRoundTrip(t *testing.T) {
	rng, _ := spreadsheet.ParseRange("B2:B4")
	em := ExcelMark{MarkID: "m1", FileName: "meds.xls", SheetName: "Meds", Range: rng}
	m := em.Mark()
	if m.Address.Scheme != spreadsheet.Scheme || m.Address.Path != "Meds!B2:B4" {
		t.Fatalf("recomposed = %v", m.Address)
	}
	back, err := AsExcelMark(m)
	if err != nil {
		t.Fatal(err)
	}
	if back != em {
		t.Fatalf("round trip = %+v, want %+v", back, em)
	}
}

func TestAsExcelMarkErrors(t *testing.T) {
	if _, err := AsExcelMark(Mark{ID: "m", Address: base.Address{Scheme: "xml", File: "f", Path: "/a"}}); err == nil {
		t.Error("wrong scheme accepted")
	}
	if _, err := AsExcelMark(Mark{ID: "m", Address: base.Address{Scheme: spreadsheet.Scheme, File: "f", Path: "garbled"}}); err == nil {
		t.Error("bad path accepted")
	}
}

func TestXMLMarkRoundTrip(t *testing.T) {
	xm := XMLMark{MarkID: "m2", FileName: "lab.xml", XMLPath: "/report[1]/panel[1]/result[2]"}
	m := xm.Mark()
	back, err := AsXMLMark(m)
	if err != nil {
		t.Fatal(err)
	}
	if back != xm {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := AsXMLMark(Mark{ID: "m", Address: base.Address{Scheme: "xml", File: "f", Path: "not-absolute"}}); err == nil {
		t.Error("bad xmlPath accepted")
	}
	if _, err := AsXMLMark(Mark{ID: "m", Address: base.Address{Scheme: "pdf", File: "f", Path: "/a"}}); err == nil {
		t.Error("wrong scheme accepted")
	}
}

func TestWordMarkRoundTrip(t *testing.T) {
	wm := WordMark{MarkID: "m3", FileName: "note.txt", Loc: textdoc.Loc{Section: 2, Paragraph: 1, FirstWord: 2, LastWord: 3}}
	back, err := AsWordMark(wm.Mark())
	if err != nil || back != wm {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
	if _, err := AsWordMark(Mark{ID: "m", Address: base.Address{Scheme: textdoc.Scheme, File: "f", Path: "zzz"}}); err == nil {
		t.Error("bad loc accepted")
	}
	if _, err := AsWordMark(Mark{ID: "m", Address: base.Address{Scheme: "xml", File: "f", Path: "s1/p1"}}); err == nil {
		t.Error("wrong scheme accepted")
	}
}

func TestPDFMarkRoundTrip(t *testing.T) {
	pm := PDFMark{MarkID: "m4", FileName: "echo.pdf", Loc: pdfdoc.Loc{Page: 2, FirstLine: 5, LastLine: 8}}
	back, err := AsPDFMark(pm.Mark())
	if err != nil || back != pm {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
	if _, err := AsPDFMark(Mark{ID: "m", Address: base.Address{Scheme: pdfdoc.Scheme, File: "f", Path: "zzz"}}); err == nil {
		t.Error("bad loc accepted")
	}
	if _, err := AsPDFMark(Mark{ID: "m", Address: base.Address{Scheme: "xml", File: "f", Path: "page1/lines1-1"}}); err == nil {
		t.Error("wrong scheme accepted")
	}
}

func TestSlideMarkRoundTrip(t *testing.T) {
	sm := SlideMark{MarkID: "m5", FileName: "deck.ppt", Loc: slides.Loc{Slide: 3, Shape: 1}}
	back, err := AsSlideMark(sm.Mark())
	if err != nil || back != sm {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
	if _, err := AsSlideMark(Mark{ID: "m", Address: base.Address{Scheme: slides.Scheme, File: "f", Path: "zzz"}}); err == nil {
		t.Error("bad loc accepted")
	}
	if _, err := AsSlideMark(Mark{ID: "m", Address: base.Address{Scheme: "xml", File: "f", Path: "slide1/shape1"}}); err == nil {
		t.Error("wrong scheme accepted")
	}
}

func TestHTMLMarkRoundTrip(t *testing.T) {
	hm := HTMLMark{MarkID: "m6", URL: "guidelines.html", ElementPath: "/html[1]/body[1]/p[2]"}
	back, err := AsHTMLMark(hm.Mark())
	if err != nil || back != hm {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
	if _, err := AsHTMLMark(Mark{ID: "m", Address: base.Address{Scheme: "xml", File: "f", Path: "/a"}}); err == nil {
		t.Error("wrong scheme accepted")
	}
}
