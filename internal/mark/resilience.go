package mark

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/base"
	"repro/internal/obs"
)

// Resilient mark resolution (docs/ROBUSTNESS.md). The paper's architecture
// points into base documents it does not control (§4.2), so resolution can
// fail in ways the superimposed layer must absorb rather than propagate:
// transient unavailability is retried with backoff, permanent failures fall
// back to the excerpt cached at create/refresh time, and marks whose
// referent is gone are quarantined and surfaced through Doctor — the
// degradation ladder live resolve → cached excerpt → quarantine.

// RetryPolicy configures retry of transient base-application failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values below 1 behave as 1 (no retry).
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each subsequent wait
	// doubles, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry wait.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries transient failures three times with a short
// exponential backoff — enough to ride out a viewer restart without making
// an interactive caller wait noticeably.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    200 * time.Millisecond,
}

// SetRetryPolicy replaces the manager's retry policy for the resilient
// resolution paths (ResolveCtx, ResolveDegraded, RefreshCtx, Doctor).
//
// slimvet:noobs configuration setter; the resolve paths it tunes record
// mark.resolve.* themselves.
func (mm *Manager) SetRetryPolicy(p RetryPolicy) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.retry = p
}

// RetryPolicy returns the manager's current retry policy.
func (mm *Manager) RetryPolicy() RetryPolicy {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	return mm.retry
}

// Classify maps an error from mark resolution onto the failure taxonomy:
// ErrTransient for retryable base unavailability, ErrDangling for
// permanently broken references (unknown document, bad address, missing
// module or mark), or nil for errors outside the taxonomy. Errors already
// wrapped in a class keep it.
func Classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrTransient), errors.Is(err, ErrDangling), errors.Is(err, ErrContentDrift):
		return err
	case base.IsTransient(err):
		return ErrTransient
	case errors.Is(err, base.ErrUnknownDocument),
		errors.Is(err, base.ErrBadAddress),
		errors.Is(err, base.ErrWrongScheme),
		errors.Is(err, ErrNoModule),
		errors.Is(err, ErrUnknownMark):
		return ErrDangling
	default:
		return nil
	}
}

// ResolveCtx dereferences the mark with the default (in-context) resolver,
// retrying transient base-application failures per the manager's retry
// policy and honoring ctx cancellation between attempts. Terminal errors
// are wrapped in their failure class (ErrTransient or ErrDangling) when
// one applies.
func (mm *Manager) ResolveCtx(ctx context.Context, id string) (base.Element, error) {
	return mm.ResolveWithCtx(ctx, id, ResolveContext)
}

// mResolveAttempts distributes how many tries each resilient resolve
// needed; a drift toward 2+ means bases are flapping.
var mResolveAttempts = obs.HSize(obs.NameMarkResolveAttempts)

// ResolveWithCtx is ResolveCtx with an explicit resolver name. Under a
// traced context the whole ladder is one "mark.resolve" span with each try
// a "mark.resolve.attempt" child carrying its attempt number and the
// backoff slept before it, so a trace shows exactly where retry latency
// went — including faultbase-injected faults, whose error text tags the
// attempt span that hit them.
func (mm *Manager) ResolveWithCtx(ctx context.Context, id, resolver string) (el base.Element, err error) {
	ctx, sp := obs.StartCtx(ctx, "mark.resolve", id)
	defer func() { sp.FinishErr(err) }()
	// Heavy-hitter profiling: shapes are keyed by scheme and resolver, not
	// mark id, so the sketch ranks resolve traffic per base-information
	// type (bounded by the module registry) instead of per mark.
	scheme := "unknown"
	if m, merr := mm.Mark(id); merr == nil {
		scheme = m.Address.Scheme
	}
	obs.RecordQueryShape("mark.resolve scheme=" + scheme + " resolver=" + resolver)
	policy := mm.RetryPolicy()
	attempts := policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := policy.BaseDelay
	slept := time.Duration(0)
	attempt := 1
	defer func() { mResolveAttempts.Observe(int64(attempt)) }()
	for ; ; attempt++ {
		asp := sp.Child("mark.resolve.attempt", fmt.Sprintf("attempt=%d backoff=%s", attempt, slept))
		el, err = mm.ResolveWith(id, resolver)
		asp.FinishErr(err)
		if err == nil {
			mm.clearQuarantine(id)
			return el, nil
		}
		if !base.IsTransient(err) || attempt >= attempts {
			break
		}
		obs.C(obs.NameMarkResolveRetries).Inc()
		if werr := sleepCtx(ctx, delay); werr != nil {
			err = fmt.Errorf("%w: %w (while retrying: %w)", ErrTransient, werr, err)
			return base.Element{}, err
		}
		slept = delay
		if delay *= 2; policy.MaxDelay > 0 && delay > policy.MaxDelay {
			delay = policy.MaxDelay
		}
	}
	if class := Classify(err); class != nil && !errors.Is(err, class) {
		err = fmt.Errorf("%w: %w", class, err)
	}
	// Terminal failure for a stored mark: quarantine it so Doctor and
	// Quarantined surface the broken reference until a resolve succeeds.
	if m, merr := mm.Mark(id); merr == nil {
		mm.setQuarantine(m, err)
	}
	return base.Element{}, err
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Outcome reports which rung of the degradation ladder served a
// ResolveDegraded call.
type Outcome int

const (
	// OutcomeLive: the base application resolved the mark.
	OutcomeLive Outcome = iota
	// OutcomeCached: the base was unreachable; the cached excerpt served.
	OutcomeCached
	// OutcomeFailed: no rung could serve the mark.
	OutcomeFailed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeLive:
		return "live"
	case OutcomeCached:
		return "cached"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ResolveDegraded walks the degradation ladder: live resolution (with
// retry) first; on terminal failure, the excerpt cached at create/refresh
// time is served as a synthetic element (OutcomeCached) and the mark is
// quarantined for Doctor to report; with no cached excerpt the failure is
// returned (OutcomeFailed) and the mark quarantined. A cached result is
// not an error: callers that must distinguish staleness check the outcome.
func (mm *Manager) ResolveDegraded(ctx context.Context, id string) (base.Element, Outcome, error) {
	return mm.ResolveDegradedWith(ctx, id, ResolveContext)
}

// ResolveDegradedWith is ResolveDegraded with an explicit resolver name
// for the live rung of the ladder.
func (mm *Manager) ResolveDegradedWith(ctx context.Context, id, resolver string) (base.Element, Outcome, error) {
	el, err := mm.ResolveWithCtx(ctx, id, resolver)
	if err == nil {
		return el, OutcomeLive, nil
	}
	if errors.Is(err, ErrUnknownMark) {
		return base.Element{}, OutcomeFailed, err
	}
	m, merr := mm.Mark(id)
	if merr != nil {
		return base.Element{}, OutcomeFailed, merr
	}
	if m.Excerpt == "" {
		obs.C(obs.NameMarkResolveFailed).Inc()
		return base.Element{}, OutcomeFailed, err
	}
	obs.C(obs.NameMarkResolveCached).Inc()
	obs.Log().Warn("mark: serving cached excerpt", "mark", id, "err", err)
	return base.Element{Address: m.Address, Content: m.Excerpt}, OutcomeCached, nil
}

// RefreshCtx is Refresh with retry for transient failures: it re-extracts
// the marked content in place, updates the stored excerpt, and reports
// drift. Terminal errors carry their failure class.
func (mm *Manager) RefreshCtx(ctx context.Context, id string) (content string, changed bool, err error) {
	el, err := mm.ResolveWithCtx(ctx, id, ResolveInPlace)
	if err != nil {
		return "", false, err
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	m, ok := mm.marks[id]
	if !ok {
		return "", false, fmt.Errorf("%w: %q", ErrUnknownMark, id)
	}
	changed = m.Excerpt != el.Content
	m.Excerpt = el.Content
	mm.marks[id] = m
	return el.Content, changed, nil
}

// QuarantineEntry records one mark whose last resolution failed
// permanently (or exhausted retries): the paper's dangling-reference
// problem made visible instead of silent.
type QuarantineEntry struct {
	// ID is the quarantined mark's id.
	ID string
	// Address is the referent that could not be reached.
	Address base.Address
	// Class is the failure class (ErrTransient or ErrDangling) in force
	// when the mark was quarantined.
	Class error
	// Reason is the terminal error's text.
	Reason string
	// HasExcerpt reports whether a cached excerpt can still serve reads.
	HasExcerpt bool
}

func (mm *Manager) setQuarantine(m Mark, err error) {
	class := Classify(err)
	if class == nil {
		class = ErrDangling
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, ok := mm.quarantine[m.ID]; !ok {
		obs.C(obs.NameMarkQuarantineAdded).Inc()
	}
	mm.quarantine[m.ID] = QuarantineEntry{
		ID:         m.ID,
		Address:    m.Address,
		Class:      class,
		Reason:     err.Error(),
		HasExcerpt: m.Excerpt != "",
	}
}

func (mm *Manager) clearQuarantine(id string) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, ok := mm.quarantine[id]; ok {
		delete(mm.quarantine, id)
		obs.C(obs.NameMarkQuarantineCleared).Inc()
	}
}

// Quarantined lists the quarantined marks, sorted by id. A mark leaves
// quarantine when a later resolution succeeds or the mark is removed.
func (mm *Manager) Quarantined() []QuarantineEntry {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	out := make([]QuarantineEntry, 0, len(mm.quarantine))
	for _, e := range mm.quarantine {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Health is one mark's state in a health report.
type Health int

const (
	// Healthy: the mark resolves and its content matches the excerpt.
	Healthy Health = iota
	// Drifted: the mark resolves but the live content no longer matches
	// the stored excerpt (§3 transcription drift).
	Drifted
	// Degraded: the mark cannot be resolved right now, but a cached
	// excerpt can still serve reads.
	Degraded
	// Dangling: the mark cannot be resolved and has no cached excerpt.
	Dangling
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Drifted:
		return "drifted"
	case Degraded:
		return "degraded"
	case Dangling:
		return "dangling"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// MarkHealth is one mark's diagnosis.
type MarkHealth struct {
	Mark   Mark
	Health Health
	// Err explains non-healthy states: ErrContentDrift-wrapped for
	// Drifted, the classified resolution error otherwise.
	Err error
}

// HealthReport summarizes a Doctor pass over every stored mark.
type HealthReport struct {
	Checked int
	Healthy int
	Drifted int
	// Degraded marks failed to resolve but have a cached excerpt.
	Degraded int
	// Dangling marks failed to resolve and have nothing to fall back on.
	Dangling int
	// Marks holds the per-mark diagnoses, sorted by mark id.
	Marks []MarkHealth
}

// Ok reports whether every mark is healthy.
func (r HealthReport) Ok() bool { return r.Checked == r.Healthy }

// String renders the report as the markctl doctor output: a summary line
// plus one line per non-healthy mark.
func (r HealthReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d mark(s): %d healthy, %d drifted, %d degraded, %d dangling\n",
		r.Checked, r.Healthy, r.Drifted, r.Degraded, r.Dangling)
	for _, mh := range r.Marks {
		if mh.Health == Healthy {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %s  %s", mh.Health, mh.Mark.ID, mh.Mark.Address)
		if mh.Err != nil {
			fmt.Fprintf(&b, "  (%v)", mh.Err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Doctor diagnoses every stored mark: it re-extracts content in place
// (retrying transient failures), compares it against the stored excerpt,
// and classifies each mark as healthy, drifted, degraded (unresolvable
// but excerpt-backed), or dangling. Unresolvable marks are quarantined;
// the stored excerpt is NOT updated — Doctor observes, Refresh repairs.
func (mm *Manager) Doctor(ctx context.Context) HealthReport {
	ctx, sp := obs.StartCtx(ctx, "mark.doctor", "")
	defer sp.Finish()
	var r HealthReport
	for _, m := range mm.Marks() {
		if err := ctx.Err(); err != nil {
			break
		}
		r.Checked++
		mh := MarkHealth{Mark: m}
		el, err := mm.ResolveWithCtx(ctx, m.ID, ResolveInPlace)
		if err != nil && errors.Is(err, ErrUnknownResolver) {
			// Scheme registered without in-place capability: fall back to
			// driving the viewer so the mark still gets a live check.
			el, err = mm.ResolveCtx(ctx, m.ID)
		}
		switch {
		case err == nil && (m.Excerpt == "" || m.Excerpt == el.Content):
			mh.Health = Healthy
			r.Healthy++
		case err == nil:
			mh.Health = Drifted
			mh.Err = fmt.Errorf("%w: excerpt %.40q, live %.40q", ErrContentDrift, m.Excerpt, el.Content)
			r.Drifted++
		case m.Excerpt != "":
			// The failed resolve above already quarantined the mark.
			mh.Health = Degraded
			mh.Err = err
			r.Degraded++
		default:
			mh.Health = Dangling
			mh.Err = err
			r.Dangling++
		}
		r.Marks = append(r.Marks, mh)
	}
	obs.C(obs.NameMarkDoctorRuns).Inc()
	return r
}
