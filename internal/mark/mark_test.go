package mark

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/base"
	"repro/internal/base/spreadsheet"
	"repro/internal/base/xmldoc"
)

// newSheetApp returns a spreadsheet app with a medication list workbook.
func newSheetApp(t *testing.T) *spreadsheet.App {
	t.Helper()
	a := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddWorkbook(w); err != nil {
		t.Fatal(err)
	}
	return a
}

const labXML = `<report><patient>John Smith</patient><panel><result code="K">4.1</result></panel></report>`

func newXMLApp(t *testing.T) *xmldoc.App {
	t.Helper()
	a := xmldoc.NewApp()
	if _, err := a.LoadString("lab.xml", labXML); err != nil {
		t.Fatal(err)
	}
	return a
}

func managerWithApps(t *testing.T) (*Manager, *spreadsheet.App, *xmldoc.App) {
	t.Helper()
	mm := NewManager()
	sheets := newSheetApp(t)
	xmlApp := newXMLApp(t)
	if err := mm.RegisterApplication(sheets); err != nil {
		t.Fatal(err)
	}
	if err := mm.RegisterApplication(xmlApp); err != nil {
		t.Fatal(err)
	}
	return mm, sheets, xmlApp
}

func TestRegisterModuleValidation(t *testing.T) {
	mm := NewManager()
	app := newSheetApp(t)
	if err := mm.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := mm.RegisterApplication(newSheetApp(t)); err == nil {
		t.Fatal("duplicate scheme module accepted")
	}
	schemes := mm.Schemes()
	if len(schemes) != 1 || schemes[0] != spreadsheet.Scheme {
		t.Fatalf("Schemes = %v", schemes)
	}
}

func TestCreateFromSelection(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	// No selection yet.
	if _, err := mm.CreateFromSelection(spreadsheet.Scheme); !errors.Is(err, base.ErrNoSelection) {
		t.Fatalf("create without selection = %v", err)
	}
	// Unknown scheme.
	if _, err := mm.CreateFromSelection("fortran"); !errors.Is(err, ErrNoModule) {
		t.Fatalf("create for unknown scheme = %v", err)
	}
	// The user selects the Furosemide cell, then creates a mark.
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	if err := sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID == "" || !strings.HasPrefix(m.ID, "mark-") {
		t.Errorf("mark id = %q", m.ID)
	}
	if m.Address.Path != "Meds!A2" {
		t.Errorf("address = %v", m.Address)
	}
	// Excerpt captured at creation time.
	if m.Excerpt != "Furosemide" {
		t.Errorf("excerpt = %q", m.Excerpt)
	}
	if mm.Len() != 1 {
		t.Errorf("stored marks = %d", mm.Len())
	}
}

func TestSequentialIDs(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m1, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	m2, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	if m1.ID == m2.ID {
		t.Fatal("duplicate mark ids")
	}
	if m1.ID != "mark-000001" || m2.ID != "mark-000002" {
		t.Fatalf("ids = %q, %q", m1.ID, m2.ID)
	}
}

func TestResolveDrivesViewer(t *testing.T) {
	mm, sheets, xmlApp := managerWithApps(t)
	// Create a spreadsheet mark.
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	// Move the viewer elsewhere.
	r2, _ := spreadsheet.ParseRange("B3")
	sheets.SelectRange("Meds", r2)
	// Resolving the mark re-drives the viewer to the marked cell.
	el, err := mm.Resolve(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Furosemide" {
		t.Errorf("Content = %q", el.Content)
	}
	sel, err := sheets.CurrentSelection()
	if err != nil || sel.Path != "Meds!A2" {
		t.Errorf("viewer selection after resolve = %v, %v", sel, err)
	}
	// XML mark resolution in the same manager.
	xmlApp.Open("lab.xml")
	if err := xmlApp.SelectExpr("/report/panel/result"); err != nil {
		t.Fatal(err)
	}
	xm, err := mm.CreateFromSelection(xmldoc.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	el2, err := mm.Resolve(xm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if el2.Content != "4.1" {
		t.Errorf("xml Content = %q", el2.Content)
	}
}

func TestResolveUnknownMark(t *testing.T) {
	mm, _, _ := managerWithApps(t)
	if _, err := mm.Resolve("mark-999999"); !errors.Is(err, ErrUnknownMark) {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveInPlaceDoesNotMoveViewer(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A3")
	sheets.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	// Move viewer away.
	r2, _ := spreadsheet.ParseRange("A1")
	sheets.SelectRange("Meds", r2)

	el, err := mm.ResolveWith(m.ID, ResolveInPlace)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Insulin" {
		t.Errorf("Content = %q", el.Content)
	}
	sel, _ := sheets.CurrentSelection()
	if sel.Path != "Meds!A1" {
		t.Errorf("in-place resolve moved the viewer to %q", sel.Path)
	}
}

func TestResolveUnknownResolver(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	if _, err := mm.ResolveWith(m.ID, "holographic"); !errors.Is(err, ErrUnknownResolver) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterCustomResolver(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)

	err := mm.RegisterResolver(spreadsheet.Scheme, "shout", func(m Mark) (base.Element, error) {
		return base.Element{Address: m.Address, Content: strings.ToUpper(m.Excerpt)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	el, err := mm.ResolveWith(m.ID, "shout")
	if err != nil || el.Content != "FUROSEMIDE" {
		t.Fatalf("custom resolver = %q, %v", el.Content, err)
	}
	// Registering for an unknown scheme fails.
	if err := mm.RegisterResolver("fortran", "x", nil); !errors.Is(err, ErrNoModule) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddRemoveMark(t *testing.T) {
	mm := NewManager()
	m := Mark{ID: "m1", Address: base.Address{Scheme: "xml", File: "f", Path: "/a[1]"}}
	if err := mm.Add(m); err != nil {
		t.Fatal(err)
	}
	if err := mm.Add(m); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := mm.Add(Mark{}); err == nil {
		t.Fatal("empty id accepted")
	}
	got, err := mm.Mark("m1")
	if err != nil || got != m {
		t.Fatalf("Mark = %v, %v", got, err)
	}
	if !mm.Remove("m1") {
		t.Fatal("Remove = false")
	}
	if mm.Remove("m1") {
		t.Fatal("second Remove = true")
	}
}

func TestExtractContentFallsBackToExcerpt(t *testing.T) {
	mm := NewManager()
	// A mark whose base application is not registered (e.g. offline).
	m := Mark{ID: "m1", Address: base.Address{Scheme: "gone", File: "f", Path: "p"}, Excerpt: "cached value"}
	mm.Add(m)
	got, err := mm.ExtractContent("m1")
	if err != nil || got != "cached value" {
		t.Fatalf("ExtractContent = %q, %v", got, err)
	}
	// Without an excerpt, the error surfaces.
	mm.Add(Mark{ID: "m2", Address: base.Address{Scheme: "gone", File: "f", Path: "p"}})
	if _, err := mm.ExtractContent("m2"); err == nil {
		t.Fatal("ExtractContent without source or excerpt succeeded")
	}
	if _, err := mm.ExtractContent("absent"); !errors.Is(err, ErrUnknownMark) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefreshDetectsBaseChanges(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("B2")
	sheets.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	if m.Excerpt != "40mg" {
		t.Fatalf("excerpt = %q", m.Excerpt)
	}
	// Unchanged base: no drift.
	_, changed, err := mm.Refresh(m.ID)
	if err != nil || changed {
		t.Fatalf("Refresh unchanged = %v, %v", changed, err)
	}
	// The dose is edited in the base source.
	w, _ := sheets.Workbook("meds.xls")
	s, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("B2")
	s.Set(cell, "80mg")
	content, changed, err := mm.Refresh(m.ID)
	if err != nil || !changed || content != "80mg" {
		t.Fatalf("Refresh after edit = %q, %v, %v", content, changed, err)
	}
	// The stored excerpt is updated.
	got, _ := mm.Mark(m.ID)
	if got.Excerpt != "80mg" {
		t.Fatalf("excerpt after refresh = %q", got.Excerpt)
	}
}

// Extensibility (§4.2): a brand-new base type can be added at runtime with
// a new module, without touching existing modules or stored marks.
type echoApp struct {
	selection base.Address
}

func (e *echoApp) Scheme() string { return "echo" }
func (e *echoApp) Name() string   { return "echo" }
func (e *echoApp) CurrentSelection() (base.Address, error) {
	if e.selection.IsZero() {
		return base.Address{}, base.ErrNoSelection
	}
	return e.selection, nil
}
func (e *echoApp) GoTo(a base.Address) (base.Element, error) {
	return base.Element{Address: a, Content: "echo:" + a.Path}, nil
}

func TestNewModuleWithoutDisturbingExisting(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	existing, _ := mm.CreateFromSelection(spreadsheet.Scheme)

	echo := &echoApp{selection: base.Address{Scheme: "echo", File: "f", Path: "42"}}
	if err := mm.RegisterApplication(echo); err != nil {
		t.Fatal(err)
	}
	m, err := mm.CreateFromSelection("echo")
	if err != nil {
		t.Fatal(err)
	}
	el, err := mm.Resolve(m.ID)
	if err != nil || el.Content != "echo:42" {
		t.Fatalf("echo resolve = %v, %v", el, err)
	}
	// The existing mark still resolves.
	if _, err := mm.Resolve(existing.ID); err != nil {
		t.Fatalf("existing mark broken by new module: %v", err)
	}
	// The echo app lacks ContentExtractor, so in-place resolution fails.
	if _, err := mm.ResolveWith(m.ID, ResolveInPlace); err == nil {
		t.Fatal("in-place resolve for non-extractor app succeeded")
	}
}

func TestMarksSorted(t *testing.T) {
	mm := NewManager()
	for _, id := range []string{"c", "a", "b"} {
		mm.Add(Mark{ID: id, Address: base.Address{Scheme: "s", File: "f", Path: "p"}})
	}
	ms := mm.Marks()
	if len(ms) != 3 || ms[0].ID != "a" || ms[2].ID != "c" {
		t.Fatalf("Marks = %v", ms)
	}
}

func TestConcurrentCreateResolve(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			m, err := mm.CreateFromSelection(spreadsheet.Scheme)
			if err != nil {
				done <- err
				return
			}
			_, err = mm.Resolve(m.ID)
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if mm.Len() != 16 {
		t.Fatalf("marks = %d", mm.Len())
	}
	// All ids distinct (Marks dedups by map key, so 16 == distinct).
	seen := map[string]bool{}
	for _, m := range mm.Marks() {
		if seen[m.ID] {
			t.Fatalf("duplicate id %q", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestManagerLenAndSchemesEmpty(t *testing.T) {
	mm := NewManager()
	if mm.Len() != 0 || len(mm.Schemes()) != 0 {
		t.Fatal("fresh manager not empty")
	}
}

func ExampleManager() {
	mm := NewManager()
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\n")
	sheets.AddWorkbook(w)
	mm.RegisterApplication(sheets)

	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	el, _ := mm.Resolve(m.ID)
	fmt.Println(el.Content)
	// Output: Furosemide
}
