package mark

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/faultbase"
)

func TestQuarantineCheck(t *testing.T) {
	mm, fa, _ := faultManager(t)
	check := mm.QuarantineCheck(1)
	if err := check(context.Background()); err != nil {
		t.Fatalf("healthy manager failed: %v", err)
	}

	// Drive the mark into quarantine with a permanent transient fault.
	fa.Fail(faultbase.OpGoTo, nil)
	marks := mm.Marks()
	if _, err := mm.ResolveCtx(context.Background(), marks[0].ID); err == nil {
		t.Fatal("faulted resolve should fail")
	}
	if err := check(context.Background()); err == nil {
		t.Fatal("quarantined mark must trip the threshold-1 check")
	}
	// A higher threshold tolerates it.
	if err := mm.QuarantineCheck(2)(context.Background()); err != nil {
		t.Fatalf("threshold-2 check tripped early: %v", err)
	}
	// max < 1 coerces to 1.
	if err := mm.QuarantineCheck(0)(context.Background()); err == nil {
		t.Fatal("threshold-0 must behave like threshold-1")
	}

	// Recovery clears the quarantine and the check.
	fa.ClearFault(faultbase.OpGoTo)
	if _, err := mm.ResolveCtx(context.Background(), marks[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := check(context.Background()); err != nil {
		t.Fatalf("check still failing after recovery: %v", err)
	}
}

func TestHealthReportJSON(t *testing.T) {
	mm, fa, m := faultManager(t)
	fa.Fail(faultbase.OpGoTo, nil)
	if _, err := mm.ResolveCtx(context.Background(), m.ID); err == nil {
		t.Fatal("faulted resolve should fail")
	}
	report := mm.Doctor(context.Background())

	b, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Checked  int `json:"checked"`
		Dangling int `json:"dangling"`
		Degraded int `json:"degraded"`
		Marks    []struct {
			ID      string `json:"id"`
			Address string `json:"address"`
			Health  string `json:"health"`
		} `json:"marks"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, b)
	}
	if decoded.Checked != 1 || len(decoded.Marks) != 1 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Marks[0].ID != m.ID || decoded.Marks[0].Address == "" || decoded.Marks[0].Health == "" {
		t.Fatalf("mark diagnosis = %+v", decoded.Marks[0])
	}

	// An empty report still marshals marks as [].
	empty, err := json.Marshal(HealthReport{})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(empty, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["marks"]) != "[]" {
		t.Fatalf("empty report marks = %s, want []", raw["marks"])
	}
}

func TestQuarantineEntryJSON(t *testing.T) {
	mm, fa, m := faultManager(t)
	fa.Fail(faultbase.OpGoTo, nil)
	if _, err := mm.ResolveCtx(context.Background(), m.ID); err == nil {
		t.Fatal("faulted resolve should fail")
	}
	q := mm.Quarantined()
	if len(q) != 1 {
		t.Fatalf("quarantine = %+v", q)
	}
	b, err := json.Marshal(q[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID         string `json:"id"`
		Address    string `json:"address"`
		Class      string `json:"class"`
		Reason     string `json:"reason"`
		HasExcerpt bool   `json:"has_excerpt"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("entry JSON does not round-trip: %v\n%s", err, b)
	}
	if decoded.ID != m.ID || decoded.Class == "" || decoded.Reason == "" {
		t.Fatalf("decoded = %+v\n%s", decoded, b)
	}
}
