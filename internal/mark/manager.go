package mark

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/base"
	"repro/internal/obs"
)

// ResolveContext names the default resolver (drive the base viewer);
// ResolveInPlace names the §6 in-place resolver registered automatically
// for applications that support content extraction.
const (
	ResolveContext = "context"
	ResolveInPlace = "inplace"
)

// Manager is the Mark Manager (Fig. 7): it stores marks generically,
// routes creation and resolution to per-scheme mark modules, and supports
// multiple named resolvers per scheme. All methods are safe for concurrent
// use.
type Manager struct {
	// mu is instrumented: wait/hold histograms land in the
	// lock.mark.manager.* families and /debug/contention.
	mu        *obs.TrackedRWMutex
	modules   map[string]Module              // guarded by mu
	resolvers map[string]map[string]Resolver // scheme -> name -> resolver; guarded by mu
	marks     map[string]Mark                // guarded by mu
	nextSeq   int                            // guarded by mu

	// retry governs the resilient resolution path (resilience.go);
	// quarantine holds marks whose last resolution failed permanently.
	retry      RetryPolicy                // guarded by mu
	quarantine map[string]QuarantineEntry // guarded by mu
}

// NewManager returns an empty mark manager with the default retry policy.
func NewManager() *Manager {
	return &Manager{
		mu:         obs.NewTrackedRWMutex(obs.LockMarkManager),
		modules:    make(map[string]Module),
		resolvers:  make(map[string]map[string]Resolver),
		marks:      make(map[string]Mark),
		retry:      DefaultRetryPolicy,
		quarantine: make(map[string]QuarantineEntry),
	}
}

// RegisterModule adds a mark module. "To support new base-layer
// applications, new mark modules need to be introduced" (§4.2) — this is
// the single extension point, and existing modules are undisturbed.
// The module's in-context resolver is registered under ResolveContext; if
// the module is an AppModule whose application extracts content, an
// in-place resolver is registered under ResolveInPlace.
func (mm *Manager) RegisterModule(mod Module) error {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	scheme := mod.Scheme()
	if scheme == "" {
		return ErrEmptyScheme
	}
	if _, ok := mm.modules[scheme]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateModule, scheme)
	}
	mm.modules[scheme] = mod
	mm.resolvers[scheme] = map[string]Resolver{ResolveContext: InContextResolver(mod)}
	if am, ok := mod.(*AppModule); ok {
		if _, ok := am.App().(base.ContentExtractor); ok {
			mm.resolvers[scheme][ResolveInPlace] = InPlaceResolver(am.App())
		}
	}
	obs.C(obs.NameMarkModulesRegistered).Inc()
	return nil
}

// RegisterApplication is shorthand for RegisterModule(NewAppModule(app)).
func (mm *Manager) RegisterApplication(app base.Application) error {
	return mm.RegisterModule(NewAppModule(app))
}

// RegisterResolver adds (or replaces) a named resolver for a scheme,
// enabling additional mark behaviors without touching the mark type (§6).
func (mm *Manager) RegisterResolver(scheme, name string, r Resolver) error {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, ok := mm.modules[scheme]; !ok {
		return fmt.Errorf("%w: %q", ErrNoModule, scheme)
	}
	mm.resolvers[scheme][name] = r
	obs.C(obs.NameMarkResolversRegistered).Inc()
	return nil
}

// Schemes returns the registered mark-module schemes, sorted.
func (mm *Manager) Schemes() []string {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	out := make([]string, 0, len(mm.modules))
	for s := range mm.modules {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CreateFromSelection creates a mark from the current selection of the
// scheme's base application, stores it, and returns it. Mark ids are
// sequential ("mark-000001", ...).
func (mm *Manager) CreateFromSelection(scheme string) (Mark, error) {
	start := time.Now()
	mm.mu.Lock()
	mod, ok := mm.modules[scheme]
	if !ok {
		mm.mu.Unlock()
		err := fmt.Errorf("%w: %q", ErrNoModule, scheme)
		markOpDone("create", scheme, start, err)
		return Mark{}, err
	}
	mm.nextSeq++
	id := fmt.Sprintf("mark-%06d", mm.nextSeq)
	mm.mu.Unlock()

	// Mark creation talks to the base application outside the lock; base
	// apps have their own synchronization.
	markDispatch(scheme)
	m, err := mod.CreateMark(id)
	if err != nil {
		markOpDone("create", scheme, start, err)
		return Mark{}, err
	}
	mm.mu.Lock()
	mm.marks[m.ID] = m
	mm.mu.Unlock()
	markOpDone("create", scheme, start, nil)
	return m, nil
}

// Add stores an externally constructed mark (used by persistence and by
// tests). The mark's id must be non-empty and unused.
func (mm *Manager) Add(m Mark) error {
	if m.ID == "" {
		return fmt.Errorf("mark: mark needs an id")
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, ok := mm.marks[m.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateMark, m.ID)
	}
	mm.marks[m.ID] = m
	obs.C(obs.NameMarkMarksAdded).Inc()
	return nil
}

// Mark retrieves a stored mark by id.
func (mm *Manager) Mark(id string) (Mark, error) {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	m, ok := mm.marks[id]
	if !ok {
		return Mark{}, fmt.Errorf("%w: %q", ErrUnknownMark, id)
	}
	return m, nil
}

// Marks returns all stored marks sorted by id.
func (mm *Manager) Marks() []Mark {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	out := make([]Mark, 0, len(mm.marks))
	for _, m := range mm.marks {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Remove deletes a stored mark, reporting whether it existed.
func (mm *Manager) Remove(id string) bool {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, ok := mm.marks[id]; !ok {
		return false
	}
	delete(mm.marks, id)
	delete(mm.quarantine, id)
	obs.C(obs.NameMarkMarksRemoved).Inc()
	return true
}

// Len returns the number of stored marks.
func (mm *Manager) Len() int {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	return len(mm.marks)
}

// Resolve dereferences the mark by id using the default (in-context)
// resolver: it drives the base application to the marked element.
func (mm *Manager) Resolve(id string) (base.Element, error) {
	return mm.ResolveWith(id, ResolveContext)
}

// ResolveWith dereferences the mark using the named resolver.
func (mm *Manager) ResolveWith(id, resolver string) (base.Element, error) {
	start := time.Now()
	mm.mu.RLock()
	m, ok := mm.marks[id]
	if !ok {
		mm.mu.RUnlock()
		err := fmt.Errorf("%w: %q", ErrUnknownMark, id)
		markOpDone("resolve", unknownScheme, start, err)
		return base.Element{}, err
	}
	byName, ok := mm.resolvers[m.Scheme()]
	if !ok {
		mm.mu.RUnlock()
		err := fmt.Errorf("%w: %q", ErrNoModule, m.Scheme())
		markOpDone("resolve", m.Scheme(), start, err)
		return base.Element{}, err
	}
	r, ok := byName[resolver]
	mm.mu.RUnlock()
	if !ok {
		err := fmt.Errorf("%w: %q for scheme %q", ErrUnknownResolver, resolver, m.Scheme())
		markOpDone("resolve", m.Scheme(), start, err)
		return base.Element{}, err
	}
	markDispatch(m.Scheme())
	el, err := r(m)
	markOpDone("resolve", m.Scheme(), start, err)
	return el, err
}

// ExtractContent returns the marked element's current content without
// moving any viewer (the §6 "extract content" behavior). It prefers the
// in-place resolver and falls back to the stored excerpt when the base
// source is unavailable.
func (mm *Manager) ExtractContent(id string) (string, error) {
	el, err := mm.ResolveWith(id, ResolveInPlace)
	if err == nil {
		return el.Content, nil
	}
	m, merr := mm.Mark(id)
	if merr != nil {
		return "", merr
	}
	if m.Excerpt != "" {
		return m.Excerpt, nil
	}
	return "", err
}

// Refresh re-extracts the marked element's content and reports whether it
// still matches the stored excerpt, updating the excerpt. It is the
// consistency probe behind SLIMPad's redundancy management (§3: "Redundancy
// is a problem, however, if it introduces errors during transcription").
func (mm *Manager) Refresh(id string) (content string, changed bool, err error) {
	el, err := mm.ResolveWith(id, ResolveInPlace)
	if err != nil {
		return "", false, err
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	m, ok := mm.marks[id]
	if !ok {
		return "", false, fmt.Errorf("%w: %q", ErrUnknownMark, id)
	}
	changed = m.Excerpt != el.Content
	m.Excerpt = el.Content
	mm.marks[id] = m
	return el.Content, changed, nil
}
