package mark

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Per-scheme metrics quantify the §4.2/§5 claim that routing every mark
// operation through a per-scheme module keeps dispatch cheap while letting
// modules vary: mark.dispatch.<scheme> counts module dispatches,
// mark.<op>.<scheme>.ns the end-to-end latency (module plus base
// application), and mark.<op>.<scheme>.errors the failures.
//
// Scheme names come from the module registry, so the metric-name space is
// bounded by the number of registered base applications; unknown-mark
// failures, where no scheme is knowable, land under the "unknown" scheme.
const unknownScheme = "unknown"

func markDispatch(scheme string) {
	obs.C(fmt.Sprintf(obs.FmtMarkDispatch, scheme)).Inc()
}

// markOpDone records one mark-manager operation: latency always, the
// error counter when err is non-nil, and a slow-op journal entry when the
// op exceeded the journal threshold (a stalled base application is the
// classic slow op in this layer).
func markOpDone(op, scheme string, start time.Time, err error) {
	if scheme == "" {
		scheme = unknownScheme
	}
	d := time.Since(start)
	obs.H(fmt.Sprintf(obs.FmtMarkOpNS, op, scheme)).Observe(int64(d))
	obs.DefaultSlowOps.Observe("mark."+op, "scheme="+scheme, start, d, err)
	if err != nil {
		obs.C(fmt.Sprintf(obs.FmtMarkOpErrors, op, scheme)).Inc()
		obs.Log().Warn("mark op failed", "op", op, "scheme", scheme, "err", err)
	}
}
