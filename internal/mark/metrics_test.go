package mark

import (
	"errors"
	"testing"

	"repro/internal/base"
	"repro/internal/base/spreadsheet"
	"repro/internal/obs"
)

// failingModule resolves nothing: every Resolve errors, so tests can drive
// the per-scheme failure counters deterministically.
type failingModule struct{}

func (failingModule) Scheme() string { return "failing" }
func (failingModule) CreateMark(id string) (Mark, error) {
	return Mark{ID: id, Address: base.Address{Scheme: "failing", File: "f", Path: "p"}}, nil
}
func (failingModule) Resolve(Mark) (base.Element, error) {
	return base.Element{}, errors.New("base application is gone")
}

func TestFailedResolveBumpsSchemeErrorCounter(t *testing.T) {
	errs := obs.C("mark.resolve.failing.errors")
	dispatch := obs.C("mark.dispatch.failing")
	lat := obs.H("mark.resolve.failing.ns")
	errs0, disp0, lat0 := errs.Value(), dispatch.Value(), lat.Count()

	mm := NewManager()
	if err := mm.RegisterModule(failingModule{}); err != nil {
		t.Fatal(err)
	}
	m, err := mm.CreateFromSelection("failing")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Resolve(m.ID); err == nil {
		t.Fatal("resolve unexpectedly succeeded")
	}
	if got := errs.Value() - errs0; got != 1 {
		t.Errorf("mark.resolve.failing.errors delta = %d, want 1", got)
	}
	if got := dispatch.Value() - disp0; got != 2 { // create + resolve both dispatch
		t.Errorf("mark.dispatch.failing delta = %d, want 2", got)
	}
	if got := lat.Count() - lat0; got != 1 {
		t.Errorf("mark.resolve.failing.ns observations delta = %d, want 1", got)
	}
}

func TestResolveUnknownMarkCountsUnderUnknownScheme(t *testing.T) {
	unknown := obs.C("mark.resolve.unknown.errors")
	u0 := unknown.Value()
	mm := NewManager()
	if _, err := mm.Resolve("mark-999999"); !errors.Is(err, ErrUnknownMark) {
		t.Fatalf("err = %v, want ErrUnknownMark", err)
	}
	if got := unknown.Value() - u0; got != 1 {
		t.Errorf("mark.resolve.unknown.errors delta = %d, want 1", got)
	}
}

func TestSuccessfulResolveCountsNoError(t *testing.T) {
	mm, sheets, _ := managerWithApps(t)
	errs := obs.C("mark.resolve.spreadsheet.errors")
	lat := obs.H("mark.resolve.spreadsheet.ns")
	create := obs.H("mark.create.spreadsheet.ns")
	errs0, lat0, create0 := errs.Value(), lat.Count(), create.Count()

	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	if err := sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Resolve(m.ID); err != nil {
		t.Fatal(err)
	}
	if got := errs.Value() - errs0; got != 0 {
		t.Errorf("error counter bumped on success: delta = %d", got)
	}
	if got := lat.Count() - lat0; got != 1 {
		t.Errorf("mark.resolve.spreadsheet.ns delta = %d, want 1", got)
	}
	if got := create.Count() - create0; got != 1 {
		t.Errorf("mark.create.spreadsheet.ns delta = %d, want 1", got)
	}
}
