package mark

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/base"
	"repro/internal/rdf"
	"repro/internal/trim"
)

func sampleMarks() []Mark {
	return []Mark{
		{ID: "mark-000001", Address: base.Address{Scheme: "spreadsheet", File: "meds.xls", Path: "Meds!A2"}, Excerpt: "Furosemide"},
		{ID: "mark-000002", Address: base.Address{Scheme: "xml", File: "lab.xml", Path: "/report[1]/panel[1]/result[2]"}, Excerpt: "4.1"},
		{ID: "mark-000003", Address: base.Address{Scheme: "pdf", File: "echo.pdf", Path: "page2/lines5-8"}},
	}
}

func TestSaveLoadTriples(t *testing.T) {
	mm := NewManager()
	for _, m := range sampleMarks() {
		if err := mm.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	store := trim.NewManager()
	if err := mm.SaveTo(store); err != nil {
		t.Fatal(err)
	}
	// Typed classes present (one subclass of Mark per base type, Fig. 3).
	if !store.Has(rdf.T(MarkIRI("mark-000001"), rdf.RDFType, SchemeClass("spreadsheet"))) {
		t.Error("missing SpreadsheetMark typing")
	}
	if !store.Has(rdf.T(MarkIRI("mark-000002"), rdf.RDFType, SchemeClass("xml"))) {
		t.Error("missing XmlMark typing")
	}

	back := NewManager()
	if err := back.LoadFrom(store); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mm.Marks(), back.Marks()) {
		t.Fatalf("marks differ:\n%v\n%v", mm.Marks(), back.Marks())
	}
}

func TestLoadAdvancesSequence(t *testing.T) {
	mm := NewManager()
	for _, m := range sampleMarks() {
		mm.Add(m)
	}
	store := trim.NewManager()
	if err := mm.SaveTo(store); err != nil {
		t.Fatal(err)
	}
	back := NewManager()
	if err := back.LoadFrom(store); err != nil {
		t.Fatal(err)
	}
	// A fresh creation must not collide with loaded ids.
	app := &echoApp{selection: base.Address{Scheme: "echo", File: "f", Path: "p"}}
	back.RegisterApplication(app)
	m, err := back.CreateFromSelection("echo")
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "mark-000004" {
		t.Fatalf("new id = %q, want mark-000004", m.ID)
	}
}

func TestSaveToReplacesStale(t *testing.T) {
	mm := NewManager()
	m := sampleMarks()[0]
	mm.Add(m)
	store := trim.NewManager()
	if err := mm.SaveTo(store); err != nil {
		t.Fatal(err)
	}
	// Change the excerpt and save again: no duplicate triples.
	mm.Remove(m.ID)
	m.Excerpt = "Furosemide 40mg"
	mm.Add(m)
	if err := mm.SaveTo(store); err != nil {
		t.Fatal(err)
	}
	excerpts := store.Objects(MarkIRI(m.ID), PropExcerpt)
	if len(excerpts) != 1 || excerpts[0].Value() != "Furosemide 40mg" {
		t.Fatalf("excerpts after re-save = %v", excerpts)
	}
}

func TestLoadFromCorruptStore(t *testing.T) {
	store := trim.NewManager()
	// A mark typed but missing its scheme property.
	iri := MarkIRI("mark-000009")
	store.Create(rdf.T(iri, rdf.RDFType, ClassMark))
	store.Create(rdf.T(iri, PropFile, rdf.String("f")))
	store.Create(rdf.T(iri, PropPath, rdf.String("p")))
	mm := NewManager()
	if err := mm.LoadFrom(store); err == nil {
		t.Fatal("load of scheme-less mark succeeded")
	}
	// A mark resource with a non-standard IRI.
	store2 := trim.NewManager()
	store2.Create(rdf.T(rdf.IRI("http://elsewhere/mark"), rdf.RDFType, ClassMark))
	if err := mm.LoadFrom(store2); err == nil {
		t.Fatal("load of foreign-IRI mark succeeded")
	}
}

func TestMarksSurviveXMLFile(t *testing.T) {
	// Full persistence path: marks -> triples -> XML file -> triples -> marks.
	mm := NewManager()
	for _, m := range sampleMarks() {
		mm.Add(m)
	}
	store := trim.NewManager()
	if err := mm.SaveTo(store); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "marks.xml")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	store2 := trim.NewManager()
	if err := store2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	back := NewManager()
	if err := back.LoadFrom(store2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mm.Marks(), back.Marks()) {
		t.Fatal("marks did not survive XML persistence")
	}
}

func TestSchemeClass(t *testing.T) {
	if SchemeClass("spreadsheet").Value() != rdf.NSMark+"SpreadsheetMark" {
		t.Errorf("SchemeClass = %v", SchemeClass("spreadsheet"))
	}
	if SchemeClass("") != ClassMark {
		t.Errorf("empty scheme class = %v", SchemeClass(""))
	}
}
