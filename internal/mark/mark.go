// Package mark implements Mark Management, the paper's framework for
// creating and managing links from the superimposed layer into base-layer
// information (§4.2, Fig. 7): "A mark is stored and maintained in the
// superimposed information layer, but references information in the base
// layer. ... Each type of base-layer information has its own type of mark.
// ... Since the specific addressing scheme of the base-layer information is
// encapsulated within the mark, the Mark Manager can generically store and
// retrieve all marks."
package mark

import (
	"errors"
	"fmt"

	"repro/internal/base"
)

// Mark is one stored link to a base information element. The Address field
// encapsulates the per-type payload (Fig. 8): for a spreadsheet mark it
// carries fileName/sheetName/range, for an XML mark fileName/xmlPath, and so
// on; package-level typed views (ExcelMark, XMLMark, ...) decompose it.
type Mark struct {
	// ID is the mark identifier handed to MarkHandles in the superimposed
	// layer (the markId of Fig. 3).
	ID string
	// Address locates the marked element in its base source.
	Address base.Address
	// Excerpt is the element's content captured at mark-creation time. It
	// lets the superimposed layer detect drift between a scrap's label and
	// the live base content (the paper's transcription-error concern, §3).
	Excerpt string
}

// Scheme returns the base information type of the mark.
func (m Mark) Scheme() string { return m.Address.Scheme }

// Errors reported by mark management.
var (
	// ErrUnknownMark: no mark stored under the id.
	ErrUnknownMark = errors.New("mark: unknown mark id")
	// ErrNoModule: no mark module registered for the scheme.
	ErrNoModule = errors.New("mark: no module for scheme")
	// ErrUnknownResolver: the named resolver is not registered.
	ErrUnknownResolver = errors.New("mark: unknown resolver")
	// ErrEmptyScheme: a module (or application) declared no scheme.
	ErrEmptyScheme = errors.New("mark: module has empty scheme")
	// ErrDuplicateModule: a module for the scheme is already registered.
	ErrDuplicateModule = errors.New("mark: module already registered for scheme")
	// ErrDuplicateMark: Add was given an id that is already stored.
	ErrDuplicateMark = errors.New("mark: mark id already stored")

	// Failure classes of the resilient resolution path (docs/ROBUSTNESS.md).
	// ResolveCtx wraps terminal errors in exactly one of these, so callers
	// pick a degradation rung with errors.Is instead of string matching.

	// ErrTransient: the base source was unreachable and retries were
	// exhausted; the mark itself may still be fine.
	ErrTransient = errors.New("mark: base source unavailable")
	// ErrDangling: the mark's referent is gone — unknown document, bad
	// address, or no module serving the scheme. Re-resolving will not help
	// until the base layer changes.
	ErrDangling = errors.New("mark: dangling reference")
	// ErrContentDrift: the marked element resolved, but its live content
	// no longer matches the stored excerpt (the §3 transcription-error
	// risk). Reported by Doctor; resolution itself still succeeds.
	ErrContentDrift = errors.New("mark: content drifted from excerpt")
)

// Module creates and resolves marks for one base-layer application (§4.2:
// "a mark module is specific to a certain base-layer application"). The
// standard implementation is AppModule; substrates requiring extra behavior
// provide their own.
type Module interface {
	// Scheme names the base information type this module serves.
	Scheme() string
	// CreateMark builds a mark (with the given id) from the application's
	// current selection.
	CreateMark(id string) (Mark, error)
	// Resolve drives the base application to the marked element and
	// returns it.
	Resolve(m Mark) (base.Element, error)
}

// AppModule adapts any base.Application into a Module: marks are created
// from the app's current selection, resolved via GoTo, and the excerpt is
// captured with ExtractContent when available.
type AppModule struct {
	app base.Application
}

var _ Module = (*AppModule)(nil)

// NewAppModule wraps a base application as a mark module.
func NewAppModule(app base.Application) *AppModule {
	return &AppModule{app: app}
}

// App returns the wrapped application.
func (am *AppModule) App() base.Application { return am.app }

// Scheme implements Module.
func (am *AppModule) Scheme() string { return am.app.Scheme() }

// CreateMark implements Module: the base application supplies the address
// of the current selection ("Microsoft Excel gives the Excel mark module
// information containing the current selection within the current
// workbook", §4.2).
//
// slimvet:noobs selection capture only; Manager.CreateFromSelection wraps
// every call and records the create op (mark.create.<scheme>.*).
func (am *AppModule) CreateMark(id string) (Mark, error) {
	addr, err := am.app.CurrentSelection()
	if err != nil {
		return Mark{}, fmt.Errorf("mark: creating %s mark: %w", am.Scheme(), err)
	}
	m := Mark{ID: id, Address: addr}
	if ex, ok := am.app.(base.ContentExtractor); ok {
		content, err := ex.ExtractContent(addr)
		if err == nil {
			m.Excerpt = content
		}
	}
	return m, nil
}

// Resolve implements Module: drive the application to the element.
func (am *AppModule) Resolve(m Mark) (base.Element, error) {
	el, err := am.app.GoTo(m.Address)
	if err != nil {
		return base.Element{}, fmt.Errorf("mark: resolving %s: %w", m.ID, err)
	}
	return el, nil
}

// Resolver is one way of resolving a mark. The paper contrasts its design
// with Microsoft Monikers (§5): "we use Mark Managers to resolve Marks
// instead of the Mark itself, which allows for multiple ways to resolve
// marks via different managers. For example, one manager for Excel can
// display Excel Marks in context and another act as an in-place viewer."
type Resolver func(m Mark) (base.Element, error)

// InContextResolver resolves by driving the application's viewer (GoTo).
func InContextResolver(mod Module) Resolver {
	return mod.Resolve
}

// InPlaceResolver resolves without disturbing the viewer, using the
// application's content/context extraction: the §6 "display in place"
// behavior. It fails for applications lacking base.ContentExtractor.
func InPlaceResolver(app base.Application) Resolver {
	return func(m Mark) (base.Element, error) {
		ex, ok := app.(base.ContentExtractor)
		if !ok {
			return base.Element{}, fmt.Errorf("mark: %s application cannot display in place", app.Scheme())
		}
		content, err := ex.ExtractContent(m.Address)
		if err != nil {
			return base.Element{}, fmt.Errorf("mark: resolving %s in place: %w", m.ID, err)
		}
		el := base.Element{Address: m.Address, Content: content}
		if cp, ok := app.(base.ContextProvider); ok {
			if ctx, err := cp.ExtractContext(m.Address); err == nil {
				el.Context = ctx
			}
		}
		return el, nil
	}
}
