package mark

import (
	"fmt"
	"testing"

	"repro/internal/base"
	"repro/internal/base/spreadsheet"
	"repro/internal/trim"
)

func benchManager(b *testing.B) (*Manager, *spreadsheet.App) {
	b.Helper()
	app := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		b.Fatal(err)
	}
	app.AddWorkbook(w)
	mm := NewManager()
	if err := mm.RegisterApplication(app); err != nil {
		b.Fatal(err)
	}
	return mm, app
}

func BenchmarkCreateFromSelection(b *testing.B) {
	mm, app := benchManager(b)
	app.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	app.SelectRange("Meds", r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.CreateFromSelection(spreadsheet.Scheme); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolve(b *testing.B) {
	mm, app := benchManager(b)
	app.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	app.SelectRange("Meds", r)
	m, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.Resolve(m.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveInPlace(b *testing.B) {
	mm, app := benchManager(b)
	app.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	app.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.ResolveWith(m.ID, ResolveInPlace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveLoadTriples(b *testing.B) {
	mm := NewManager()
	for i := 0; i < 500; i++ {
		mm.Add(Mark{
			ID:      fmt.Sprintf("mark-%06d", i),
			Address: base.Address{Scheme: "spreadsheet", File: "meds.xls", Path: "Meds!A2"},
			Excerpt: "Furosemide",
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := trim.NewManager()
		if err := mm.SaveTo(store); err != nil {
			b.Fatal(err)
		}
		back := NewManager()
		if err := back.LoadFrom(store); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefresh(b *testing.B) {
	mm, app := benchManager(b)
	app.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("B2")
	app.SelectRange("Meds", r)
	m, _ := mm.CreateFromSelection(spreadsheet.Scheme)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mm.Refresh(m.ID); err != nil {
			b.Fatal(err)
		}
	}
}
