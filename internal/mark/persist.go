package mark

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/base"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trim"
)

// Marks persist in the same triple store as the superimposed information:
// each mark becomes a resource typed mark:Mark plus a per-scheme subclass
// (mark:SpreadsheetMark, mark:XmlMark, ...), mirroring the "one subclass of
// Mark for each type of base information" design of Fig. 3.

// Vocabulary for mark triples.
var (
	ClassMark   = rdf.IRI(rdf.NSMark + "Mark")
	PropScheme  = rdf.IRI(rdf.NSMark + "scheme")
	PropFile    = rdf.IRI(rdf.NSMark + "file")
	PropPath    = rdf.IRI(rdf.NSMark + "path")
	PropExcerpt = rdf.IRI(rdf.NSMark + "excerpt")
)

// MarkIRI returns the resource IRI used to store the mark with the given id.
func MarkIRI(id string) rdf.Term { return rdf.IRI(rdf.NSMark + "id/" + id) }

// SchemeClass returns the per-scheme mark subclass IRI, e.g.
// mark:SpreadsheetMark for scheme "spreadsheet".
func SchemeClass(scheme string) rdf.Term {
	if scheme == "" {
		return ClassMark
	}
	return rdf.IRI(rdf.NSMark + strings.ToUpper(scheme[:1]) + scheme[1:] + "Mark")
}

// SaveTo writes every stored mark into the triple store. Existing triples
// for the same mark ids are replaced.
func (mm *Manager) SaveTo(store *trim.Manager) error {
	obs.C(obs.NameMarkPersistSaveTotal).Inc()
	b := store.NewBatch()
	for _, m := range mm.Marks() {
		iri := MarkIRI(m.ID)
		if err := b.RemoveMatching(rdf.P(iri, rdf.Zero, rdf.Zero)); err != nil {
			return err
		}
		stages := []rdf.Triple{
			rdf.T(iri, rdf.RDFType, ClassMark),
			rdf.T(iri, rdf.RDFType, SchemeClass(m.Scheme())),
			rdf.T(iri, PropScheme, rdf.String(m.Address.Scheme)),
			rdf.T(iri, PropFile, rdf.String(m.Address.File)),
			rdf.T(iri, PropPath, rdf.String(m.Address.Path)),
		}
		if m.Excerpt != "" {
			stages = append(stages, rdf.T(iri, PropExcerpt, rdf.String(m.Excerpt)))
		}
		for _, t := range stages {
			if err := b.Create(t); err != nil {
				return fmt.Errorf("mark: saving %s: %w", m.ID, err)
			}
		}
	}
	return b.Apply()
}

// SaveFile persists the mark set to path by writing the marks into the
// triple store and saving it through trim's shared crash-safe write path
// (atomic temp file + fsync + .bak + rename via internal/durable). Every
// binary that persists marks goes through here so the mark store gets the
// same durability ladder as the superimposed-information store.
func (mm *Manager) SaveFile(store *trim.Manager, path string) error {
	if err := mm.SaveTo(store); err != nil {
		return fmt.Errorf("mark: save %s: %w", path, err)
	}
	return store.SaveFile(path)
}

// LoadFile loads the mark set from path through the triple store,
// inheriting trim's corruption detection and .bak fallback. A missing file
// loads as an empty mark set so first runs need no setup.
func (mm *Manager) LoadFile(store *trim.Manager, path string) error {
	if err := store.LoadFile(path); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	return mm.LoadFrom(store)
}

// LoadFrom reads every mark:Mark resource from the triple store into the
// manager, replacing its current contents. The sequence counter advances
// past any loaded ids of the standard "mark-NNNNNN" form, so new marks
// never collide with loaded ones.
func (mm *Manager) LoadFrom(store *trim.Manager) error {
	obs.C(obs.NameMarkPersistLoadTotal).Inc()
	loaded := make(map[string]Mark)
	maxSeq := 0
	for _, subj := range store.Subjects(rdf.RDFType, ClassMark) {
		iri := subj.Value()
		if !strings.HasPrefix(iri, rdf.NSMark+"id/") {
			return fmt.Errorf("mark: stored mark %s has unexpected IRI form", iri)
		}
		id := strings.TrimPrefix(iri, rdf.NSMark+"id/")
		m := Mark{ID: id}
		scheme, err := store.One(rdf.P(subj, PropScheme, rdf.Zero))
		if err != nil {
			return fmt.Errorf("mark: loading %s: %w", id, err)
		}
		file, err := store.One(rdf.P(subj, PropFile, rdf.Zero))
		if err != nil {
			return fmt.Errorf("mark: loading %s: %w", id, err)
		}
		path, err := store.One(rdf.P(subj, PropPath, rdf.Zero))
		if err != nil {
			return fmt.Errorf("mark: loading %s: %w", id, err)
		}
		m.Address = base.Address{
			Scheme: scheme.Object.Value(),
			File:   file.Object.Value(),
			Path:   path.Object.Value(),
		}
		if t, err := store.One(rdf.P(subj, PropExcerpt, rdf.Zero)); err == nil {
			m.Excerpt = t.Object.Value()
		}
		loaded[id] = m
		var seq int
		if n, _ := fmt.Sscanf(id, "mark-%d", &seq); n == 1 && seq > maxSeq {
			maxSeq = seq
		}
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.marks = loaded
	if maxSeq > mm.nextSeq {
		mm.nextSeq = maxSeq
	}
	return nil
}
