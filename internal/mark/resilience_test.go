package mark

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/base"
	"repro/internal/base/spreadsheet"
	"repro/internal/faultbase"
)

// fastRetry keeps resilience tests quick and deterministic.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

// faultManager returns a manager over a fault-injected spreadsheet app,
// with one mark on the Furosemide cell.
func faultManager(t *testing.T) (*Manager, *faultbase.App, Mark) {
	t.Helper()
	mm := NewManager()
	mm.SetRetryPolicy(fastRetry)
	fa := faultbase.Wrap(newSheetApp(t))
	if err := mm.RegisterApplication(fa); err != nil {
		t.Fatal(err)
	}
	inner := fa.Inner().(*spreadsheet.App)
	inner.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	if err := inner.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	return mm, fa, m
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{nil, nil},
		{faultbase.ErrInjected, ErrTransient},
		{base.ErrUnavailable, ErrTransient},
		{base.ErrUnknownDocument, ErrDangling},
		{base.ErrBadAddress, ErrDangling},
		{ErrNoModule, ErrDangling},
		{ErrUnknownMark, ErrDangling},
		{ErrDangling, ErrDangling}, // already classified stays put
		{errors.New("novel"), nil},
	}
	for _, c := range cases {
		if got := Classify(c.err); !errors.Is(got, c.want) && !(got == nil && c.want == nil) {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRegistrationSentinelErrors(t *testing.T) {
	mm := NewManager()
	if err := mm.RegisterModule(NewAppModule(emptySchemeApp{})); !errors.Is(err, ErrEmptyScheme) {
		t.Errorf("empty scheme err = %v", err)
	}
	app := newSheetApp(t)
	if err := mm.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := mm.RegisterApplication(newSheetApp(t)); !errors.Is(err, ErrDuplicateModule) {
		t.Errorf("duplicate module err = %v", err)
	}
	if err := mm.Add(Mark{ID: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := mm.Add(Mark{ID: "m1"}); !errors.Is(err, ErrDuplicateMark) {
		t.Errorf("duplicate mark err = %v", err)
	}
}

type emptySchemeApp struct{}

func (emptySchemeApp) Scheme() string                          { return "" }
func (emptySchemeApp) Name() string                            { return "empty" }
func (emptySchemeApp) CurrentSelection() (base.Address, error) { return base.Address{}, nil }
func (emptySchemeApp) GoTo(base.Address) (base.Element, error) { return base.Element{}, nil }

func TestResolveCtxRetriesTransient(t *testing.T) {
	mm, fa, m := faultManager(t)
	// Two transient failures, then success: within the 3-attempt budget.
	fa.FailN(faultbase.OpGoTo, nil, 2)
	el, err := mm.ResolveCtx(context.Background(), m.ID)
	if err != nil {
		t.Fatalf("ResolveCtx = %v", err)
	}
	if el.Content != "Furosemide" {
		t.Errorf("content = %q", el.Content)
	}
	if got := fa.Calls(faultbase.OpGoTo); got != 3 {
		t.Errorf("GoTo calls = %d, want 3 (two faults + success)", got)
	}
	if q := mm.Quarantined(); len(q) != 0 {
		t.Errorf("quarantine after success = %v", q)
	}
}

func TestResolveCtxExhaustsRetries(t *testing.T) {
	mm, fa, m := faultManager(t)
	fa.Fail(faultbase.OpGoTo, nil) // permanent transient-class fault
	_, err := mm.ResolveCtx(context.Background(), m.ID)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if got := fa.Calls(faultbase.OpGoTo); got != fastRetry.MaxAttempts {
		t.Errorf("GoTo calls = %d, want %d", got, fastRetry.MaxAttempts)
	}
	q := mm.Quarantined()
	if len(q) != 1 || q[0].ID != m.ID || !errors.Is(q[0].Class, ErrTransient) {
		t.Fatalf("quarantine = %+v", q)
	}
	// A later successful resolve clears the quarantine.
	fa.ClearFault(faultbase.OpGoTo)
	if _, err := mm.ResolveCtx(context.Background(), m.ID); err != nil {
		t.Fatal(err)
	}
	if q := mm.Quarantined(); len(q) != 0 {
		t.Errorf("quarantine not cleared: %v", q)
	}
}

func TestResolveCtxPermanentFailsFast(t *testing.T) {
	mm, fa, m := faultManager(t)
	fa.DropDocument("meds.xls")
	_, err := mm.ResolveCtx(context.Background(), m.ID)
	if !errors.Is(err, ErrDangling) {
		t.Fatalf("err = %v, want ErrDangling", err)
	}
	if got := fa.Calls(faultbase.OpGoTo); got != 1 {
		t.Errorf("GoTo calls = %d, want 1 (no retry of permanent faults)", got)
	}
}

func TestResolveCtxHonorsContext(t *testing.T) {
	mm, fa, m := faultManager(t)
	mm.SetRetryPolicy(RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second})
	fa.Fail(faultbase.OpGoTo, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mm.ResolveCtx(ctx, m.ID)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation ignored: took %v", elapsed)
	}
}

func TestResolveDegradedServesCachedExcerpt(t *testing.T) {
	mm, fa, m := faultManager(t)
	if m.Excerpt != "Furosemide" {
		t.Fatalf("excerpt = %q", m.Excerpt)
	}
	fa.DropDocument("meds.xls")
	el, outcome, err := mm.ResolveDegraded(context.Background(), m.ID)
	if err != nil {
		t.Fatalf("ResolveDegraded = %v", err)
	}
	if outcome != OutcomeCached {
		t.Fatalf("outcome = %v, want cached", outcome)
	}
	if el.Content != "Furosemide" || el.Address != m.Address {
		t.Errorf("cached element = %+v", el)
	}
	q := mm.Quarantined()
	if len(q) != 1 || !q[0].HasExcerpt || !errors.Is(q[0].Class, ErrDangling) {
		t.Fatalf("quarantine = %+v", q)
	}
}

func TestResolveDegradedWithoutExcerptFails(t *testing.T) {
	mm, fa, m := faultManager(t)
	// Strip the cached excerpt: the last ladder rung is gone.
	stripped := m
	stripped.Excerpt = ""
	mm.Remove(m.ID)
	if err := mm.Add(stripped); err != nil {
		t.Fatal(err)
	}
	fa.DropDocument("meds.xls")
	_, outcome, err := mm.ResolveDegraded(context.Background(), m.ID)
	if outcome != OutcomeFailed || !errors.Is(err, ErrDangling) {
		t.Fatalf("outcome = %v, err = %v", outcome, err)
	}
	if _, _, err := mm.ResolveDegraded(context.Background(), "mark-999999"); !errors.Is(err, ErrUnknownMark) {
		t.Fatalf("unknown mark err = %v", err)
	}
}

func TestRefreshCtxRetries(t *testing.T) {
	mm, fa, m := faultManager(t)
	// Edit the base cell, then make the first extract attempt fail.
	inner := fa.Inner().(*spreadsheet.App)
	w, _ := inner.Workbook("meds.xls")
	s, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("A2")
	s.Set(cell, "Lasix")
	fa.FailN(faultbase.OpExtractContent, nil, 1)
	content, changed, err := mm.RefreshCtx(context.Background(), m.ID)
	if err != nil || !changed || content != "Lasix" {
		t.Fatalf("RefreshCtx = %q, %v, %v", content, changed, err)
	}
	got, _ := mm.Mark(m.ID)
	if got.Excerpt != "Lasix" {
		t.Errorf("excerpt after refresh = %q", got.Excerpt)
	}
}

func TestDoctorReport(t *testing.T) {
	mm, fa, healthy := faultManager(t)
	inner := fa.Inner().(*spreadsheet.App)

	// A second mark that will drift: mark B2 then edit the cell.
	r, _ := spreadsheet.ParseRange("B2")
	if err := inner.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	drifting, err := mm.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := inner.Workbook("meds.xls")
	s, _ := w.Sheet("Meds")
	cell, _ := spreadsheet.ParseCell("B2")
	s.Set(cell, "80mg")

	// A degraded mark: excerpt cached but the document is gone.
	degraded := Mark{ID: "mark-900001", Address: base.Address{Scheme: spreadsheet.Scheme, File: "gone.xls", Path: "Meds!A1"}, Excerpt: "stale"}
	// A dangling mark: no excerpt, no module for its scheme.
	dangling := Mark{ID: "mark-900002", Address: base.Address{Scheme: "fortran", File: "x", Path: "y"}}
	for _, m := range []Mark{degraded, dangling} {
		if err := mm.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	report := mm.Doctor(context.Background())
	if report.Checked != 4 || report.Healthy != 1 || report.Drifted != 1 || report.Degraded != 1 || report.Dangling != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report.Ok() {
		t.Error("report.Ok() with broken marks")
	}
	byID := map[string]MarkHealth{}
	for _, mh := range report.Marks {
		byID[mh.Mark.ID] = mh
	}
	if byID[healthy.ID].Health != Healthy {
		t.Errorf("healthy mark = %v", byID[healthy.ID].Health)
	}
	if mh := byID[drifting.ID]; mh.Health != Drifted || !errors.Is(mh.Err, ErrContentDrift) {
		t.Errorf("drifting mark = %v, %v", mh.Health, mh.Err)
	}
	if byID[degraded.ID].Health != Degraded {
		t.Errorf("degraded mark = %v", byID[degraded.ID].Health)
	}
	if mh := byID[dangling.ID]; mh.Health != Dangling || !errors.Is(mh.Err, ErrDangling) {
		t.Errorf("dangling mark = %v, %v", mh.Health, mh.Err)
	}
	// Doctor observes; it must not rewrite the stored excerpt.
	got, _ := mm.Mark(drifting.ID)
	if got.Excerpt != "40mg" {
		t.Errorf("Doctor rewrote excerpt: %q", got.Excerpt)
	}
	// The two unresolvable marks are quarantined.
	if q := mm.Quarantined(); len(q) != 2 {
		t.Errorf("quarantine = %+v", q)
	}
	// The rendered report lists only non-healthy marks.
	text := report.String()
	for _, want := range []string{"drifted", "degraded", "dangling", drifting.ID, degraded.ID, dangling.ID} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, healthy.ID) {
		t.Errorf("report text lists healthy mark:\n%s", text)
	}
}

func TestDoctorFallsBackToContextResolver(t *testing.T) {
	// A scheme without in-place extraction still gets a live check via the
	// viewer-driving resolver.
	mm := NewManager()
	mm.SetRetryPolicy(fastRetry)
	if err := mm.RegisterModule(NewAppModule(minimalDoc{})); err != nil {
		t.Fatal(err)
	}
	if err := mm.Add(Mark{ID: "mark-000001", Address: base.Address{Scheme: "minimal", File: "f", Path: "p"}}); err != nil {
		t.Fatal(err)
	}
	report := mm.Doctor(context.Background())
	if report.Checked != 1 || report.Healthy != 1 {
		t.Fatalf("report = %+v", report)
	}
}

type minimalDoc struct{}

func (minimalDoc) Scheme() string { return "minimal" }
func (minimalDoc) Name() string   { return "minimal" }
func (minimalDoc) CurrentSelection() (base.Address, error) {
	return base.Address{}, base.ErrNoSelection
}
func (minimalDoc) GoTo(a base.Address) (base.Element, error) {
	return base.Element{Address: a, Content: "ok"}, nil
}
