package mark

// Mark-resolution half of the fault-injection sweep lane (gated behind
// SLIM_FAULT_SWEEP, run by `make faults` / scripts/ci.sh): every transient
// fault burst length is swept against the retry policy, checking the
// resolution invariant — bursts shorter than the retry budget are absorbed
// invisibly, longer ones land on the degradation ladder (cached excerpt,
// quarantine) and the quarantine clears as soon as the base recovers.

import (
	"context"
	"errors"
	"os"
	"testing"

	"repro/internal/faultbase"
)

func TestFaultSweepResolve(t *testing.T) {
	if os.Getenv("SLIM_FAULT_SWEEP") == "" {
		t.Skip("fault sweep skipped: set SLIM_FAULT_SWEEP=1 (or run `make faults`)")
	}
	// Each op is paired with the resolver whose live rung it gates: the
	// in-context resolver drives the viewer (GoTo); the in-place resolver
	// extracts content. ExtractContext faults are deliberately non-fatal
	// (context is best-effort), so they are not swept here.
	lanes := []struct {
		op       faultbase.Op
		resolver string
	}{
		{faultbase.OpGoTo, ResolveContext},
		{faultbase.OpExtractContent, ResolveInPlace},
	}
	for _, lane := range lanes {
		op := lane.op
		for burst := 0; burst <= 2*fastRetry.MaxAttempts; burst++ {
			mm, fa, m := faultManager(t)
			fa.FailN(op, nil, burst)
			el, outcome, err := mm.ResolveDegradedWith(context.Background(), m.ID, lane.resolver)
			if err != nil {
				t.Fatalf("op %s burst %d: ResolveDegraded = %v", op, burst, err)
			}
			if el.Content != "Furosemide" {
				t.Fatalf("op %s burst %d: content = %q", op, burst, el.Content)
			}
			absorbed := burst < fastRetry.MaxAttempts
			if absorbed {
				if outcome != OutcomeLive {
					t.Fatalf("op %s burst %d: outcome = %v, want live", op, burst, outcome)
				}
				if len(mm.Quarantined()) != 0 {
					t.Fatalf("op %s burst %d: quarantined after live resolve", op, burst)
				}
				continue
			}
			if outcome != OutcomeCached {
				t.Fatalf("op %s burst %d: outcome = %v, want cached", op, burst, outcome)
			}
			if q := mm.Quarantined(); len(q) != 1 || !errors.Is(q[0].Class, ErrTransient) {
				t.Fatalf("op %s burst %d: quarantine = %+v", op, burst, q)
			}
			// The base recovers (the burst is spent): the next resolve is
			// live again and clears the quarantine.
			fa.ClearFault(op)
			if _, outcome, err := mm.ResolveDegradedWith(context.Background(), m.ID, lane.resolver); err != nil || outcome != OutcomeLive {
				t.Fatalf("op %s burst %d: post-recovery resolve = %v, %v", op, burst, outcome, err)
			}
			if len(mm.Quarantined()) != 0 {
				t.Fatalf("op %s burst %d: quarantine not cleared on recovery", op, burst)
			}
		}
	}
}
