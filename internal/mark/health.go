package mark

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/obs"
)

// Diagnostics-server integration: the quarantine-threshold liveness probe
// and the machine-readable shapes behind markctl doctor -json and the
// /healthz endpoint (docs/OBSERVABILITY.md).

// QuarantineCheck returns a liveness check that fails once the number of
// quarantined marks (dangling references) reaches max; max < 1 means any
// quarantined mark fails the check.
func (mm *Manager) QuarantineCheck(max int) obs.HealthCheck {
	if max < 1 {
		max = 1
	}
	return func(context.Context) error {
		if n := len(mm.Quarantined()); n >= max {
			return fmt.Errorf("mark: %d mark(s) quarantined (threshold %d)", n, max)
		}
		return nil
	}
}

// MarshalJSON renders one diagnosis as {"id","address","health","err"}.
func (mh MarkHealth) MarshalJSON() ([]byte, error) {
	out := struct {
		ID      string `json:"id"`
		Address string `json:"address"`
		Health  string `json:"health"`
		Err     string `json:"err,omitempty"`
	}{ID: mh.Mark.ID, Address: mh.Mark.Address.String(), Health: mh.Health.String()}
	if mh.Err != nil {
		out.Err = mh.Err.Error()
	}
	return json.Marshal(out)
}

// MarshalJSON renders the report with lower-case keys and per-mark
// diagnoses; marks is always an array, never null.
func (r HealthReport) MarshalJSON() ([]byte, error) {
	marks := r.Marks
	if marks == nil {
		marks = []MarkHealth{}
	}
	return json.Marshal(struct {
		Checked  int          `json:"checked"`
		Healthy  int          `json:"healthy"`
		Drifted  int          `json:"drifted"`
		Degraded int          `json:"degraded"`
		Dangling int          `json:"dangling"`
		Marks    []MarkHealth `json:"marks"`
	}{r.Checked, r.Healthy, r.Drifted, r.Degraded, r.Dangling, marks})
}

// MarshalJSON renders a quarantine entry with its failure class named.
func (q QuarantineEntry) MarshalJSON() ([]byte, error) {
	class := ""
	if q.Class != nil {
		class = q.Class.Error()
	}
	return json.Marshal(struct {
		ID         string `json:"id"`
		Address    string `json:"address"`
		Class      string `json:"class,omitempty"`
		Reason     string `json:"reason"`
		HasExcerpt bool   `json:"has_excerpt"`
	}{q.ID, q.Address.String(), class, q.Reason, q.HasExcerpt})
}
