package bookmarks_test

import (
	"fmt"

	"repro/internal/base/htmldoc"
	"repro/internal/bookmarks"
	"repro/internal/mark"
)

// Folders, tagged bookmarks, and cross-user merge (the PowerBookmarks
// behaviors of ref [14]).
func Example() {
	browser := htmldoc.NewApp()
	browser.LoadString("page.html", `<html><body><p id="x">Loop diuretics are first-line.</p></body></html>`)
	marks := mark.NewManager()
	marks.RegisterApplication(browser)

	alice, _ := bookmarks.NewStore(marks, "alice")
	work, _ := alice.CreateFolder(alice.Root(), "work")
	browser.Open("page.html")
	browser.SelectPath("#x")
	bm, _ := alice.AddFromSelection(work, htmldoc.Scheme, "diuretics", "hf")

	byTag, _ := alice.ByTag("hf")
	fmt.Println(len(byTag), "bookmark(s) tagged hf")
	el, _ := alice.Open(bm.ID)
	fmt.Println(el.Content)
	// Output:
	// 1 bookmark(s) tagged hf
	// Loop diuretics are first-line.
}
