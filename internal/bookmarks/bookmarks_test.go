package bookmarks

import (
	"testing"

	"repro/internal/base/htmldoc"
	"repro/internal/base/spreadsheet"
	"repro/internal/mark"
	"repro/internal/rdf"
)

const page = `<html><body>
<h1 id="hf">Heart Failure</h1>
<p id="p1">Loop diuretics are first-line.</p>
<p id="p2">Monitor potassium daily.</p>
</body></html>`

func fixture(t *testing.T) (*Store, *htmldoc.App, *mark.Manager) {
	t.Helper()
	browser := htmldoc.NewApp()
	if _, err := browser.LoadString("guide.html", page); err != nil {
		t.Fatal(err)
	}
	mm := mark.NewManager()
	if err := mm.RegisterApplication(browser); err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(mm, "My Bookmarks")
	if err != nil {
		t.Fatal(err)
	}
	return st, browser, mm
}

func bookmarkAt(t *testing.T, st *Store, browser *htmldoc.App, folder rdf.Term, anchor, title string, tags ...string) Bookmark {
	t.Helper()
	if err := browser.Open("guide.html"); err != nil {
		t.Fatal(err)
	}
	if err := browser.SelectPath(anchor); err != nil {
		t.Fatal(err)
	}
	bm, err := st.AddFromSelection(folder, htmldoc.Scheme, title, tags...)
	if err != nil {
		t.Fatal(err)
	}
	return bm
}

func TestRootFolder(t *testing.T) {
	st, _, _ := fixture(t)
	name, err := st.FolderName(st.Root())
	if err != nil || name != "My Bookmarks" {
		t.Fatalf("root = %q, %v", name, err)
	}
	if _, err := NewStore(mark.NewManager(), ""); err == nil {
		t.Fatal("unnamed root accepted")
	}
}

func TestAddAndGet(t *testing.T) {
	st, browser, _ := fixture(t)
	bm := bookmarkAt(t, st, browser, st.Root(), "#p1", "diuretics", "cards", "hf")
	got, err := st.Get(bm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "diuretics" {
		t.Errorf("title = %q", got.Title)
	}
	if len(got.Tags) != 2 || got.Tags[0] != "cards" || got.Tags[1] != "hf" {
		t.Errorf("tags = %v", got.Tags)
	}
	if got.Address.File != "guide.html" {
		t.Errorf("address = %v", got.Address)
	}
	// Default title falls back to the excerpt.
	bm2 := bookmarkAt(t, st, browser, st.Root(), "#p2", "")
	if bm2.Title != "Monitor potassium daily." {
		t.Errorf("default title = %q", bm2.Title)
	}
	// Get of a folder fails.
	if _, err := st.Get(st.Root()); err == nil {
		t.Fatal("Get(folder) succeeded")
	}
}

func TestFoldersAndListing(t *testing.T) {
	st, browser, _ := fixture(t)
	work, err := st.CreateFolder(st.Root(), "work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateFolder(st.Root(), ""); err == nil {
		t.Fatal("unnamed folder accepted")
	}
	bookmarkAt(t, st, browser, work, "#p1", "a")
	bookmarkAt(t, st, browser, work, "#p2", "b")
	in, err := st.In(work)
	if err != nil || len(in) != 2 {
		t.Fatalf("In = %d, %v", len(in), err)
	}
	subs, err := st.Subfolders(st.Root())
	if err != nil || len(subs) != 1 || subs[0] != work {
		t.Fatalf("Subfolders = %v, %v", subs, err)
	}
	if in2, _ := st.In(st.Root()); len(in2) != 0 {
		t.Fatal("bookmarks leaked to root")
	}
}

func TestByTag(t *testing.T) {
	st, browser, _ := fixture(t)
	bookmarkAt(t, st, browser, st.Root(), "#p1", "a", "hf", "meds")
	bookmarkAt(t, st, browser, st.Root(), "#p2", "b", "labs")
	hf, err := st.ByTag("hf")
	if err != nil || len(hf) != 1 || hf[0].Title != "a" {
		t.Fatalf("ByTag(hf) = %v, %v", hf, err)
	}
	if none, _ := st.ByTag("absent"); len(none) != 0 {
		t.Fatal("ByTag(absent) found")
	}
}

func TestOpenResolves(t *testing.T) {
	st, browser, _ := fixture(t)
	bm := bookmarkAt(t, st, browser, st.Root(), "#p2", "potassium")
	browser.SelectPath("#hf") // wander off
	el, err := st.Open(bm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Monitor potassium daily." {
		t.Errorf("Content = %q", el.Content)
	}
	sel, _ := browser.CurrentSelection()
	if sel.Path != "/html[1]/body[1]/p[2]" {
		t.Errorf("browser at %q", sel.Path)
	}
}

func TestConformance(t *testing.T) {
	st, browser, _ := fixture(t)
	bookmarkAt(t, st, browser, st.Root(), "#p1", "a", "t1")
	vios, err := st.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		t.Fatalf("violations: %v", vios)
	}
}

func TestMerge(t *testing.T) {
	// Two users over the same base layer and mark manager.
	browser := htmldoc.NewApp()
	if _, err := browser.LoadString("guide.html", page); err != nil {
		t.Fatal(err)
	}
	mm := mark.NewManager()
	if err := mm.RegisterApplication(browser); err != nil {
		t.Fatal(err)
	}
	alice, err := NewStore(mm, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewStore(mm, "bob")
	if err != nil {
		t.Fatal(err)
	}

	// Alice: work/diuretics(#p1). Bob: work/potassium(#p2) + shared
	// duplicate of #p1, plus a folder Alice lacks.
	aliceWork, _ := alice.CreateFolder(alice.Root(), "work")
	bookmarkAt(t, alice, browser, aliceWork, "#p1", "diuretics", "meds")

	bobWork, _ := bob.CreateFolder(bob.Root(), "work")
	bookmarkAt(t, bob, browser, bobWork, "#p2", "potassium", "labs")
	bookmarkAt(t, bob, browser, bobWork, "#p1", "diuretics-dup", "meds")
	bobPersonal, _ := bob.CreateFolder(bob.Root(), "personal")
	bookmarkAt(t, bob, browser, bobPersonal, "#hf", "title")

	stats, err := alice.MergeFrom(bob)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FoldersCreated != 1 {
		t.Errorf("FoldersCreated = %d", stats.FoldersCreated)
	}
	if stats.BookmarksCopied != 2 {
		t.Errorf("BookmarksCopied = %d", stats.BookmarksCopied)
	}
	if stats.DuplicatesSkipped != 1 {
		t.Errorf("DuplicatesSkipped = %d", stats.DuplicatesSkipped)
	}
	// Alice's work folder now has both distinct bookmarks.
	in, err := alice.In(aliceWork)
	if err != nil || len(in) != 2 {
		t.Fatalf("alice work = %d, %v", len(in), err)
	}
	// The merged personal folder exists with its bookmark, and it opens.
	subs, _ := alice.Subfolders(alice.Root())
	if len(subs) != 2 {
		t.Fatalf("alice folders = %d", len(subs))
	}
	var personal rdf.Term
	for _, f := range subs {
		if name, _ := alice.FolderName(f); name == "personal" {
			personal = f
		}
	}
	merged, err := alice.In(personal)
	if err != nil || len(merged) != 1 {
		t.Fatalf("personal = %d, %v", len(merged), err)
	}
	if _, err := alice.Open(merged[0].ID); err != nil {
		t.Fatalf("merged bookmark does not resolve: %v", err)
	}
	// Merging again is idempotent: everything is a duplicate now.
	stats2, err := alice.MergeFrom(bob)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.BookmarksCopied != 0 || stats2.DuplicatesSkipped != 3 {
		t.Fatalf("second merge = %+v", stats2)
	}
}

func TestMergeAcrossSchemes(t *testing.T) {
	// Bookmarks are not web-only: a spreadsheet bookmark merges too.
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	w.LoadCSV("Meds", "Drug\nFurosemide\n")
	sheets.AddWorkbook(w)
	mm := mark.NewManager()
	mm.RegisterApplication(sheets)
	a, _ := NewStore(mm, "a")
	b, _ := NewStore(mm, "b")
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	if _, err := b.AddFromSelection(b.Root(), spreadsheet.Scheme, "lasix"); err != nil {
		t.Fatal(err)
	}
	stats, err := a.MergeFrom(b)
	if err != nil || stats.BookmarksCopied != 1 {
		t.Fatalf("merge = %+v, %v", stats, err)
	}
	in, _ := a.In(a.Root())
	el, err := a.Open(in[0].ID)
	if err != nil || el.Content != "Furosemide" {
		t.Fatalf("open = %q, %v", el.Content, err)
	}
}

func TestOpenWithoutAnchor(t *testing.T) {
	st, _, _ := fixture(t)
	if _, err := st.Open(rdf.IRI("http://ghost")); err == nil {
		t.Fatal("open of ghost succeeded")
	}
}
