// Package bookmarks implements a PowerBookmarks-style shared bookmark
// system (paper ref [14]: "a system for personalizable web information
// organization, sharing, and management") as a third superimposed
// application over the SLIM stack. Its data model is defined here with
// metamodel primitives — not in the metamodel's builtins — demonstrating
// that applications declare their own superimposed models.
//
// Bookmarks anchor into any base type via marks (not just web pages),
// organize into nested folders, carry tags, and merge across users: the
// sharing behavior of [14].
package bookmarks

import (
	"fmt"
	"sort"

	"repro/internal/base"
	"repro/internal/mark"
	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/slim"
)

// Model IRIs.
const (
	ModelID = rdf.NSSLIM + "bookmarks-model"

	ConstructFolder   = rdf.NSSLIM + "Folder"
	ConstructBookmark = rdf.NSSLIM + "Bookmark"
	ConstructBMText   = rdf.NSSLIM + "BookmarkText"
	ConstructBMAnchor = rdf.NSSLIM + "BookmarkAnchor"

	ConnFolderName  = rdf.NSSLIM + "folderName"
	ConnFolderChild = rdf.NSSLIM + "folderChild"
	ConnFolderItem  = rdf.NSSLIM + "folderItem"
	ConnBMTitle     = rdf.NSSLIM + "bmTitle"
	ConnBMTag       = rdf.NSSLIM + "bmTag"
	ConnBMAnchor    = rdf.NSSLIM + "bmAnchor"
)

// Model builds the bookmark model: nested folders of titled, tagged,
// mark-anchored bookmarks.
func Model() *metamodel.Model {
	m := metamodel.NewModel(ModelID, "Bookmarks")
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("bookmarks: building model: %v", err))
		}
	}
	must(m.AddConstruct(metamodel.Construct{ID: ConstructFolder, Kind: metamodel.KindConstruct, Label: "Folder"}))
	must(m.AddConstruct(metamodel.Construct{ID: ConstructBookmark, Kind: metamodel.KindConstruct, Label: "Bookmark"}))
	must(m.AddConstruct(metamodel.Construct{ID: ConstructBMText, Kind: metamodel.KindLiteralConstruct, Label: "BookmarkText", Datatype: rdf.XSDString}))
	must(m.AddConstruct(metamodel.Construct{ID: ConstructBMAnchor, Kind: metamodel.KindMarkConstruct, Label: "BookmarkAnchor"}))
	must(m.AddConnector(metamodel.Connector{ID: ConnFolderName, Kind: metamodel.KindConnector, Label: "folderName", From: ConstructFolder, To: ConstructBMText, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(metamodel.Connector{ID: ConnFolderChild, Kind: metamodel.KindConnector, Label: "folderChild", From: ConstructFolder, To: ConstructFolder, MinCard: 0, MaxCard: metamodel.Unbounded}))
	must(m.AddConnector(metamodel.Connector{ID: ConnFolderItem, Kind: metamodel.KindConnector, Label: "folderItem", From: ConstructFolder, To: ConstructBookmark, MinCard: 0, MaxCard: metamodel.Unbounded}))
	must(m.AddConnector(metamodel.Connector{ID: ConnBMTitle, Kind: metamodel.KindConnector, Label: "bmTitle", From: ConstructBookmark, To: ConstructBMText, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(metamodel.Connector{ID: ConnBMTag, Kind: metamodel.KindConnector, Label: "bmTag", From: ConstructBookmark, To: ConstructBMText, MinCard: 0, MaxCard: metamodel.Unbounded}))
	must(m.AddConnector(metamodel.Connector{ID: ConnBMAnchor, Kind: metamodel.KindConnector, Label: "bmAnchor", From: ConstructBookmark, To: ConstructBMAnchor, MinCard: 1, MaxCard: 1}))
	return m
}

// Bookmark is the read-only view of one bookmark.
type Bookmark struct {
	ID     rdf.Term
	Title  string
	Tags   []string
	MarkID string
	// Address is the anchored base address (resolved from the mark).
	Address base.Address
}

// Store manages one user's bookmark collection.
type Store struct {
	dmi   *slim.DMI
	marks *mark.Manager
	root  rdf.Term
}

// NewStore builds a bookmark store with a root folder named rootName.
func NewStore(marks *mark.Manager, rootName string) (*Store, error) {
	dmi, err := slim.GenerateDMI(slim.NewStore(), Model())
	if err != nil {
		return nil, err
	}
	st := &Store{dmi: dmi, marks: marks}
	root, err := st.CreateFolder(rdf.Zero, rootName)
	if err != nil {
		return nil, err
	}
	st.root = root
	return st, nil
}

// Root returns the root folder id.
func (st *Store) Root() rdf.Term { return st.root }

// CreateFolder makes a folder; parent rdf.Zero means top level (only the
// root is created that way).
func (st *Store) CreateFolder(parent rdf.Term, name string) (rdf.Term, error) {
	if name == "" {
		return rdf.Zero, fmt.Errorf("bookmarks: folder needs a name")
	}
	obj, err := st.dmi.Create(ConstructFolder, map[string]any{ConnFolderName: name})
	if err != nil {
		return rdf.Zero, err
	}
	if !parent.IsZero() {
		if err := st.dmi.Add(parent, ConnFolderChild, obj.ID); err != nil {
			return rdf.Zero, err
		}
	}
	return obj.ID, nil
}

// FolderName returns a folder's name.
func (st *Store) FolderName(folder rdf.Term) (string, error) {
	obj, err := st.dmi.Get(folder)
	if err != nil {
		return "", err
	}
	return obj.GetString(ConnFolderName), nil
}

// Subfolders returns a folder's child folders, sorted by id.
func (st *Store) Subfolders(folder rdf.Term) ([]rdf.Term, error) {
	obj, err := st.dmi.Get(folder)
	if err != nil {
		return nil, err
	}
	out := obj.All(ConnFolderChild)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// AddFromSelection bookmarks the current selection of the scheme's base
// application into the folder.
func (st *Store) AddFromSelection(folder rdf.Term, scheme, title string, tags ...string) (Bookmark, error) {
	m, err := st.marks.CreateFromSelection(scheme)
	if err != nil {
		return Bookmark{}, err
	}
	if title == "" {
		title = m.Excerpt
	}
	if title == "" {
		title = m.Address.String()
	}
	return st.addMark(folder, m, title, tags)
}

func (st *Store) addMark(folder rdf.Term, m mark.Mark, title string, tags []string) (Bookmark, error) {
	anchor, err := st.dmi.Create(ConstructBMAnchor, nil)
	if err != nil {
		return Bookmark{}, err
	}
	if _, err := st.dmi.Trim().Create(rdf.T(anchor.ID, metamodel.PropMarkID, rdf.String(m.ID))); err != nil {
		return Bookmark{}, err
	}
	props := map[string]any{ConnBMTitle: title, ConnBMAnchor: anchor}
	obj, err := st.dmi.Create(ConstructBookmark, props)
	if err != nil {
		return Bookmark{}, err
	}
	for _, tag := range tags {
		if err := st.dmi.Add(obj.ID, ConnBMTag, tag); err != nil {
			return Bookmark{}, err
		}
	}
	if err := st.dmi.Add(folder, ConnFolderItem, obj.ID); err != nil {
		return Bookmark{}, err
	}
	return st.Get(obj.ID)
}

// Get retrieves a bookmark.
func (st *Store) Get(id rdf.Term) (Bookmark, error) {
	obj, err := st.dmi.Get(id)
	if err != nil {
		return Bookmark{}, err
	}
	if obj.Construct != ConstructBookmark {
		return Bookmark{}, fmt.Errorf("bookmarks: %s is not a Bookmark", id.Value())
	}
	bm := Bookmark{ID: id, Title: obj.GetString(ConnBMTitle)}
	for _, t := range obj.All(ConnBMTag) {
		bm.Tags = append(bm.Tags, t.Value())
	}
	sort.Strings(bm.Tags)
	if anchor, err := obj.Get(ConnBMAnchor); err == nil {
		if t, err := st.dmi.Trim().One(rdf.P(anchor, metamodel.PropMarkID, rdf.Zero)); err == nil {
			bm.MarkID = t.Object.Value()
			if m, err := st.marks.Mark(bm.MarkID); err == nil {
				bm.Address = m.Address
			}
		}
	}
	return bm, nil
}

// In returns the bookmarks directly inside the folder, sorted by id.
func (st *Store) In(folder rdf.Term) ([]Bookmark, error) {
	obj, err := st.dmi.Get(folder)
	if err != nil {
		return nil, err
	}
	ids := obj.All(ConnFolderItem)
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	out := make([]Bookmark, 0, len(ids))
	for _, id := range ids {
		bm, err := st.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

// ByTag returns every bookmark carrying the tag, sorted by id.
func (st *Store) ByTag(tag string) ([]Bookmark, error) {
	subjects := st.dmi.Trim().Subjects(rdf.IRI(ConnBMTag), rdf.String(tag))
	out := make([]Bookmark, 0, len(subjects))
	for _, id := range subjects {
		bm, err := st.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

// Open resolves the bookmark's mark, driving the base application to the
// bookmarked element.
func (st *Store) Open(id rdf.Term) (base.Element, error) {
	bm, err := st.Get(id)
	if err != nil {
		return base.Element{}, err
	}
	if bm.MarkID == "" {
		return base.Element{}, fmt.Errorf("bookmarks: %s has no anchor mark", id.Value())
	}
	return st.marks.Resolve(bm.MarkID)
}

// Check validates the collection against the bookmark model.
func (st *Store) Check() ([]metamodel.Violation, error) {
	return st.dmi.Store().Check(ModelID)
}

// MergeStats reports what a merge did.
type MergeStats struct {
	FoldersCreated, BookmarksCopied, DuplicatesSkipped int
}

// MergeFrom copies another user's collection into this one — the sharing
// behavior of [14]. Folders are matched by name under the corresponding
// parent (created if absent); bookmarks whose anchored base address already
// exists in the target folder are skipped as duplicates. Both stores must
// share the mark manager (marks are the common currency).
func (st *Store) MergeFrom(other *Store) (MergeStats, error) {
	var stats MergeStats
	var merge func(srcFolder, dstFolder rdf.Term) error
	merge = func(srcFolder, dstFolder rdf.Term) error {
		// Bookmarks at this level.
		existing := map[base.Address]bool{}
		mine, err := st.In(dstFolder)
		if err != nil {
			return err
		}
		for _, bm := range mine {
			existing[bm.Address] = true
		}
		theirs, err := other.In(srcFolder)
		if err != nil {
			return err
		}
		for _, bm := range theirs {
			if !bm.Address.IsZero() && existing[bm.Address] {
				stats.DuplicatesSkipped++
				continue
			}
			m, err := other.marks.Mark(bm.MarkID)
			if err != nil {
				return fmt.Errorf("bookmarks: merge: %w", err)
			}
			if _, err := st.marks.Mark(m.ID); err != nil {
				if err := st.marks.Add(m); err != nil {
					return err
				}
			}
			if _, err := st.addMark(dstFolder, m, bm.Title, bm.Tags); err != nil {
				return err
			}
			stats.BookmarksCopied++
		}
		// Subfolders by name.
		dstByName := map[string]rdf.Term{}
		subs, err := st.Subfolders(dstFolder)
		if err != nil {
			return err
		}
		for _, f := range subs {
			name, err := st.FolderName(f)
			if err != nil {
				return err
			}
			dstByName[name] = f
		}
		srcSubs, err := other.Subfolders(srcFolder)
		if err != nil {
			return err
		}
		for _, sf := range srcSubs {
			name, err := other.FolderName(sf)
			if err != nil {
				return err
			}
			target, ok := dstByName[name]
			if !ok {
				target, err = st.CreateFolder(dstFolder, name)
				if err != nil {
					return err
				}
				stats.FoldersCreated++
			}
			if err := merge(sf, target); err != nil {
				return err
			}
		}
		return nil
	}
	if err := merge(other.root, st.root); err != nil {
		return stats, err
	}
	return stats, nil
}
