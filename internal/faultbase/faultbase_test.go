package faultbase

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/base"
	"repro/internal/base/spreadsheet"
)

func newSheetApp(t *testing.T) *spreadsheet.App {
	t.Helper()
	a := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddWorkbook(w); err != nil {
		t.Fatal(err)
	}
	return a
}

func addr(path string) base.Address {
	return base.Address{Scheme: spreadsheet.Scheme, File: "meds.xls", Path: path}
}

func TestPassThrough(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	if fa.Scheme() != spreadsheet.Scheme {
		t.Errorf("Scheme = %q", fa.Scheme())
	}
	if !strings.Contains(fa.Name(), "fault-injected") {
		t.Errorf("Name = %q", fa.Name())
	}
	el, err := fa.GoTo(addr("Meds!A2"))
	if err != nil || el.Content != "Furosemide" {
		t.Fatalf("GoTo = %q, %v", el.Content, err)
	}
	content, err := fa.ExtractContent(addr("Meds!B2"))
	if err != nil || content != "40mg" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	if _, err := fa.ExtractContext(addr("Meds!B2")); err != nil {
		t.Fatalf("ExtractContext: %v", err)
	}
	// Extraction is in-place: the selection stays where GoTo left it.
	sel, err := fa.CurrentSelection()
	if err != nil || sel.Path != "Meds!A2" {
		t.Fatalf("CurrentSelection = %v, %v", sel, err)
	}
	if got := fa.Calls(OpGoTo); got != 1 {
		t.Errorf("Calls(goto) = %d", got)
	}
}

func TestPermanentFault(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	fa.Fail(OpGoTo, nil)
	for i := 0; i < 3; i++ {
		if _, err := fa.GoTo(addr("Meds!A2")); !errors.Is(err, base.ErrUnavailable) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if got := fa.Faulted(OpGoTo); got != 3 {
		t.Errorf("Faulted = %d", got)
	}
	// Other ops are unaffected.
	if _, err := fa.ExtractContent(addr("Meds!A2")); err != nil {
		t.Errorf("ExtractContent: %v", err)
	}
	fa.ClearFault(OpGoTo)
	if _, err := fa.GoTo(addr("Meds!A2")); err != nil {
		t.Errorf("after ClearFault: %v", err)
	}
}

func TestTransientThenSucceed(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	fa.FailN(OpGoTo, nil, 2)
	for i := 0; i < 2; i++ {
		if _, err := fa.GoTo(addr("Meds!A2")); err == nil {
			t.Fatalf("call %d succeeded during fault window", i)
		}
	}
	el, err := fa.GoTo(addr("Meds!A2"))
	if err != nil || el.Content != "Furosemide" {
		t.Fatalf("after window = %q, %v", el.Content, err)
	}
	if got := fa.Faulted(OpGoTo); got != 2 {
		t.Errorf("Faulted = %d", got)
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("disk on fire")
	fa := Wrap(newSheetApp(t))
	fa.Fail(OpExtractContent, boom)
	if _, err := fa.ExtractContent(addr("Meds!A2")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if base.IsTransient(ErrInjected) != true {
		t.Error("ErrInjected should classify as transient")
	}
	if base.IsTransient(boom) {
		t.Error("custom error misclassified as transient")
	}
}

func TestContentDrift(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	fa.SetDrift(func(s string) string { return s + " (edited)" })
	el, err := fa.GoTo(addr("Meds!A2"))
	if err != nil || el.Content != "Furosemide (edited)" {
		t.Fatalf("drifted GoTo = %q, %v", el.Content, err)
	}
	content, err := fa.ExtractContent(addr("Meds!A2"))
	if err != nil || content != "Furosemide (edited)" {
		t.Fatalf("drifted extract = %q, %v", content, err)
	}
	fa.SetDrift(nil)
	if content, _ := fa.ExtractContent(addr("Meds!A2")); content != "Furosemide" {
		t.Errorf("after clearing drift = %q", content)
	}
}

func TestDropDocument(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	fa.DropDocument("meds.xls")
	if _, err := fa.GoTo(addr("Meds!A2")); !errors.Is(err, base.ErrUnknownDocument) {
		t.Fatalf("GoTo after drop = %v", err)
	}
	if _, err := fa.ExtractContent(addr("Meds!A2")); !errors.Is(err, base.ErrUnknownDocument) {
		t.Fatalf("Extract after drop = %v", err)
	}
	fa.RestoreDocument("meds.xls")
	if _, err := fa.GoTo(addr("Meds!A2")); err != nil {
		t.Fatalf("after restore: %v", err)
	}
}

func TestLatency(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	fa.SetLatency(20 * time.Millisecond)
	start := time.Now()
	if _, err := fa.GoTo(addr("Meds!A2")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestReset(t *testing.T) {
	fa := Wrap(newSheetApp(t))
	fa.Fail(OpGoTo, nil)
	fa.DropDocument("meds.xls")
	fa.SetDrift(strings.ToUpper)
	fa.Reset()
	el, err := fa.GoTo(addr("Meds!A2"))
	if err != nil || el.Content != "Furosemide" {
		t.Fatalf("after Reset = %q, %v", el.Content, err)
	}
	if fa.Calls(OpGoTo) != 1 {
		t.Errorf("counters not reset: %d", fa.Calls(OpGoTo))
	}
}

// A wrapper around an extractor-less application reports the missing
// capability instead of panicking.
type minimalApp struct{}

func (minimalApp) Scheme() string { return "minimal" }
func (minimalApp) Name() string   { return "minimal" }
func (minimalApp) CurrentSelection() (base.Address, error) {
	return base.Address{}, base.ErrNoSelection
}
func (minimalApp) GoTo(a base.Address) (base.Element, error) {
	return base.Element{Address: a}, nil
}

func TestMissingCapabilities(t *testing.T) {
	fa := Wrap(minimalApp{})
	if _, err := fa.ExtractContent(base.Address{Scheme: "minimal"}); err == nil {
		t.Error("ExtractContent on minimal app succeeded")
	}
	if _, err := fa.ExtractContext(base.Address{Scheme: "minimal"}); err == nil {
		t.Error("ExtractContext on minimal app succeeded")
	}
}
