// Package faultbase wraps any base.Application with programmable faults, so
// every failure path in the SLIM stack can be exercised deterministically.
// The paper's premise is a thin layer pointing into base documents it does
// not control (§4.2), and §3 explicitly allows scraps to diverge from marked
// content — faultbase simulates exactly that uncontrolled world: sources
// that error, stall, drift, or disappear out from under their marks.
//
// The wrapper passes through the optional capability interfaces
// (base.ContentExtractor, base.ContextProvider) of the inner application,
// injecting the same scripted faults, so in-place resolution and excerpt
// refresh hit the same failure surface as viewer-driving resolution.
package faultbase

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/base"
)

// Op names one base-application operation that can fault.
type Op string

const (
	OpCurrentSelection Op = "current-selection"
	OpGoTo             Op = "goto"
	OpExtractContent   Op = "extract-content"
	OpExtractContext   Op = "extract-context"
)

// ErrInjected is the default injected failure; it wraps base.ErrUnavailable
// so the Mark Manager classifies scripted faults as transient unless the
// script supplies its own error.
var ErrInjected = fmt.Errorf("faultbase: injected fault: %w", base.ErrUnavailable)

// fault is one scripted failure: err returned on each matching call while
// remaining > 0 (remaining < 0 means forever).
type fault struct {
	err       error
	remaining int
}

// App wraps a base application with programmable faults: per-op errors
// (permanent or transient-then-succeed), added latency, content drift, and
// whole documents going away. The zero faults configuration is a pure
// pass-through. All methods are safe for concurrent use.
type App struct {
	inner base.Application

	mu      sync.Mutex
	faults  map[Op]*fault
	latency time.Duration
	drift   func(string) string
	gone    map[string]bool
	calls   map[Op]int
	fired   map[Op]int
}

var (
	_ base.Application      = (*App)(nil)
	_ base.ContentExtractor = (*App)(nil)
	_ base.ContextProvider  = (*App)(nil)
)

// Wrap returns a fault-injecting wrapper around app.
func Wrap(app base.Application) *App {
	return &App{
		inner:  app,
		faults: make(map[Op]*fault),
		gone:   make(map[string]bool),
		calls:  make(map[Op]int),
		fired:  make(map[Op]int),
	}
}

// Inner returns the wrapped application.
func (a *App) Inner() base.Application { return a.inner }

// Fail makes every call to op return err until the fault is cleared. A nil
// err installs ErrInjected (a transient, retryable failure); script a
// permanent failure by passing e.g. base.ErrUnknownDocument.
func (a *App) Fail(op Op, err error) {
	a.setFault(op, err, -1)
}

// FailN makes the next n calls to op return err, then succeed — the
// transient-then-succeed script that exercises retry paths. A nil err
// installs ErrInjected.
func (a *App) FailN(op Op, err error, n int) {
	a.setFault(op, err, n)
}

func (a *App) setFault(op Op, err error, n int) {
	if err == nil {
		err = ErrInjected
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.faults[op] = &fault{err: err, remaining: n}
}

// ClearFault removes the scripted fault for op.
func (a *App) ClearFault(op Op) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.faults, op)
}

// SetLatency adds a fixed delay to every operation (zero disables).
func (a *App) SetLatency(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.latency = d
}

// SetDrift installs a transform applied to all content (and context)
// returned by the inner application — simulating base documents edited
// after marks were created, the §3 transcription-drift scenario. A nil
// transform disables drift.
func (a *App) SetDrift(transform func(string) string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drift = transform
}

// DropDocument makes every operation addressing the named file fail with
// base.ErrUnknownDocument — the document-gone scenario that leaves marks
// dangling.
func (a *App) DropDocument(file string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gone[file] = true
}

// RestoreDocument undoes DropDocument.
func (a *App) RestoreDocument(file string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.gone, file)
}

// Calls reports how many times op was invoked (including faulted calls).
func (a *App) Calls(op Op) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls[op]
}

// Faulted reports how many times op returned an injected fault.
func (a *App) Faulted(op Op) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fired[op]
}

// Reset clears all scripted faults, latency, drift, dropped documents, and
// counters.
func (a *App) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.faults = make(map[Op]*fault)
	a.latency = 0
	a.drift = nil
	a.gone = make(map[string]bool)
	a.calls = make(map[Op]int)
	a.fired = make(map[Op]int)
}

// enter counts the call, applies latency, and returns the injected error
// (if any) for the op/file pair.
func (a *App) enter(op Op, file string) error {
	a.mu.Lock()
	a.calls[op]++
	delay := a.latency
	var err error
	if file != "" && a.gone[file] {
		err = fmt.Errorf("faultbase: document dropped: %w: %q", base.ErrUnknownDocument, file)
	} else if f, ok := a.faults[op]; ok && f.remaining != 0 {
		err = f.err
		if f.remaining > 0 {
			f.remaining--
		}
	}
	if err != nil {
		a.fired[op]++
	}
	a.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// applyDrift runs the drift transform, if any, over content.
func (a *App) applyDrift(content string) string {
	a.mu.Lock()
	drift := a.drift
	a.mu.Unlock()
	if drift == nil {
		return content
	}
	return drift(content)
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return a.inner.Scheme() }

// Name implements base.Application, tagging the inner name.
func (a *App) Name() string { return a.inner.Name() + " (fault-injected)" }

// CurrentSelection implements base.Application.
func (a *App) CurrentSelection() (base.Address, error) {
	if err := a.enter(OpCurrentSelection, ""); err != nil {
		return base.Address{}, err
	}
	return a.inner.CurrentSelection()
}

// GoTo implements base.Application.
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	if err := a.enter(OpGoTo, addr.File); err != nil {
		return base.Element{}, err
	}
	el, err := a.inner.GoTo(addr)
	if err != nil {
		return base.Element{}, err
	}
	el.Content = a.applyDrift(el.Content)
	return el, nil
}

// ExtractContent implements base.ContentExtractor when the inner
// application does; otherwise it reports the capability as missing.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	if err := a.enter(OpExtractContent, addr.File); err != nil {
		return "", err
	}
	ex, ok := a.inner.(base.ContentExtractor)
	if !ok {
		return "", fmt.Errorf("faultbase: %s application cannot extract content", a.inner.Scheme())
	}
	content, err := ex.ExtractContent(addr)
	if err != nil {
		return "", err
	}
	return a.applyDrift(content), nil
}

// ExtractContext implements base.ContextProvider when the inner
// application does.
func (a *App) ExtractContext(addr base.Address) (string, error) {
	if err := a.enter(OpExtractContext, addr.File); err != nil {
		return "", err
	}
	cp, ok := a.inner.(base.ContextProvider)
	if !ok {
		return "", fmt.Errorf("faultbase: %s application cannot extract context", a.inner.Scheme())
	}
	ctx, err := cp.ExtractContext(addr)
	if err != nil {
		return "", err
	}
	return a.applyDrift(ctx), nil
}
