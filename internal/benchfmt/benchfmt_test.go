package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Parse itself is exercised end to end by cmd/benchjson's tests; here the
// snapshot-file side of the contract is covered.

func TestKeyAndByKey(t *testing.T) {
	b := Benchmark{Name: "BenchmarkX", Package: "repro/internal/trim"}
	if b.Key() != "repro/internal/trim.BenchmarkX" {
		t.Fatalf("Key = %q", b.Key())
	}
	if (Benchmark{Name: "BenchmarkX"}).Key() != "BenchmarkX" {
		t.Fatal("package-less Key should be the bare name")
	}
	s := Snapshot{Benchmarks: []Benchmark{b, {Name: "BenchmarkY"}}}
	idx := s.ByKey()
	if len(idx) != 2 || idx[b.Key()].Name != "BenchmarkX" {
		t.Fatalf("ByKey = %+v", idx)
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_t.json")
	doc := `{"label":"t","benchmarks":[{"name":"BenchmarkZ","iterations":5,"ns_per_op":42}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "t" || len(s.Benchmarks) != 1 || s.Benchmarks[0].NsPerOp != 42 {
		t.Fatalf("snapshot = %+v", s)
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("corrupt file err = %v, want path in message", err)
	}
}

func TestParseEmpty(t *testing.T) {
	benches, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil || len(benches) != 0 {
		t.Fatalf("Parse = %v, %v", benches, err)
	}
}
