// Package benchfmt is the shared model of the repo's perf-trajectory
// lane: the BENCH_<label>.json snapshot document and the parser that
// turns `go test -bench` output into it. cmd/benchjson writes snapshots
// through it and cmd/benchdiff reads them back, so the two ends of the
// bench pipeline cannot drift apart.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the trailing
	// "ok <pkg> <time>" line of each test binary's output).
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only when the benchmark reports
	// allocations (-benchmem or b.ReportAllocs).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "triples/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a benchmark across snapshots: package plus name.
func (b Benchmark) Key() string {
	if b.Package == "" {
		return b.Name
	}
	return b.Package + "." + b.Name
}

// Snapshot is the BENCH_<label>.json document.
type Snapshot struct {
	Label         string      `json:"label"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	GeneratedUnix int64       `json:"generated_unix"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// ByKey indexes the snapshot's benchmarks by Key.
func (s Snapshot) ByKey() map[string]Benchmark {
	out := make(map[string]Benchmark, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		out[b.Key()] = b
	}
	return out
}

// ReadFile loads one BENCH_<label>.json snapshot.
func ReadFile(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("benchfmt: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return s, nil
}

// benchLine matches one benchmark result: name, iteration count, then
// value/unit pairs ("123 ns/op", "45 B/op", "6 allocs/op", custom units).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark
// name (BenchmarkCreate-8 -> BenchmarkCreate).
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Parse reads `go test -bench` output and returns the benchmarks in input
// order. Benchmarks are attributed to their package via the "ok <pkg>"
// line that follows each package's results.
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	pending := 0 // benchmarks awaiting a package attribution
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if pkg, ok := strings.CutPrefix(line, "ok "); ok {
			name := strings.Fields(strings.TrimSpace(pkg))
			for i := len(out) - pending; i < len(out); i++ {
				if len(name) > 0 {
					out[i].Package = name[0]
				}
			}
			pending = 0
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: stripProcs(m[1]), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = &val
			case "allocs/op":
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
		pending++
	}
	return out, sc.Err()
}
