package clinical

import (
	"fmt"

	"repro/internal/base/pdfdoc"
	"repro/internal/base/spreadsheet"
	"repro/internal/base/textdoc"
	"repro/internal/base/xmldoc"
	"repro/internal/mark"
)

// Environment is a fully wired base layer for an ICU scenario: one
// spreadsheet application holding each patient's medication list, one XML
// viewer holding lab reports, one word processor holding progress notes,
// and one paginated viewer holding imaging reports — all registered with a
// shared Mark Manager.
type Environment struct {
	Patients []Patient
	Sheets   *spreadsheet.App
	XML      *xmldoc.App
	Notes    *textdoc.App
	Pager    *pdfdoc.App
	Marks    *mark.Manager
}

// MedsFile returns the library name of the patient's medication workbook.
func MedsFile(p Patient) string { return p.MRN + "-meds.xls" }

// LabFile returns the library name of the patient's lab report.
func LabFile(p Patient) string { return p.MRN + "-labs.xml" }

// NoteFile returns the library name of the patient's progress note.
func NoteFile(p Patient) string { return p.MRN + "-note.txt" }

// ImagingFile returns the library name of the patient's imaging report.
func ImagingFile(p Patient) string { return p.MRN + "-cxr.pdf" }

// NewEnvironment generates n patients (single-day labs) and loads their
// documents into the four base applications, registering everything with a
// fresh Mark Manager.
func NewEnvironment(seed int64, n int) (*Environment, error) {
	return NewEnvironmentHistory(seed, n, 1)
}

// NewEnvironmentHistory is NewEnvironment with `days` days of lab history
// per patient, producing realistically sized lab reports.
func NewEnvironmentHistory(seed int64, n, days int) (*Environment, error) {
	env := &Environment{
		Patients: GenerateHistory(seed, n, days),
		Sheets:   spreadsheet.NewApp(),
		XML:      xmldoc.NewApp(),
		Notes:    textdoc.NewApp(),
		Pager:    pdfdoc.NewApp(),
		Marks:    mark.NewManager(),
	}
	for _, p := range env.Patients {
		w := spreadsheet.NewWorkbook(MedsFile(p))
		if _, err := w.LoadCSV("Meds", MedsCSV(p)); err != nil {
			return nil, fmt.Errorf("clinical: meds for %s: %w", p.MRN, err)
		}
		if err := env.Sheets.AddWorkbook(w); err != nil {
			return nil, err
		}
		if _, err := env.XML.LoadString(LabFile(p), LabXML(p)); err != nil {
			return nil, fmt.Errorf("clinical: labs for %s: %w", p.MRN, err)
		}
		if _, err := env.Notes.LoadString(NoteFile(p), ProgressNote(p)); err != nil {
			return nil, err
		}
		if _, err := env.Pager.LoadString(ImagingFile(p), ImagingReport(p), 20); err != nil {
			return nil, err
		}
	}
	if err := env.Marks.RegisterApplication(env.Sheets); err != nil {
		return nil, err
	}
	if err := env.Marks.RegisterApplication(env.XML); err != nil {
		return nil, err
	}
	if err := env.Marks.RegisterApplication(env.Notes); err != nil {
		return nil, err
	}
	if err := env.Marks.RegisterApplication(env.Pager); err != nil {
		return nil, err
	}
	return env, nil
}

// BaseBytes estimates the base layer's total content size: the serialized
// documents for every patient. The T3 experiment compares this to the
// superimposed layer's size.
func (env *Environment) BaseBytes() int {
	total := 0
	for _, p := range env.Patients {
		total += len(MedsCSV(p)) + len(LabXML(p)) + len(ProgressNote(p)) + len(ImagingReport(p))
	}
	return total
}

// SelectMed drives the spreadsheet viewer to the patient's i-th medication
// row (0-based), ready for mark creation.
func (env *Environment) SelectMed(p Patient, i int) error {
	if i < 0 || i >= len(p.Meds) {
		return fmt.Errorf("clinical: %s has no medication %d", p.MRN, i)
	}
	if err := env.Sheets.Open(MedsFile(p)); err != nil {
		return err
	}
	// Row 0 is the header, so medication i lives on sheet row i+1.
	r := spreadsheet.Range{
		Start: spreadsheet.CellRef{Row: i + 1, Col: 0},
		End:   spreadsheet.CellRef{Row: i + 1, Col: 2},
	}
	return env.Sheets.SelectRange("Meds", r)
}

// SelectLab drives the XML viewer to the patient's lab result with the
// given code, ready for mark creation.
func (env *Environment) SelectLab(p Patient, code string) error {
	if err := env.XML.Open(LabFile(p)); err != nil {
		return err
	}
	doc, ok := env.XML.Document(LabFile(p))
	if !ok {
		return fmt.Errorf("clinical: lab report for %s missing", p.MRN)
	}
	hits := doc.Find(func(n *xmldoc.Node) bool {
		return n.Name == "result" && n.Attrs["code"] == code
	})
	if len(hits) == 0 {
		return fmt.Errorf("clinical: %s has no lab %q", p.MRN, code)
	}
	// With history, the most recent result is the last in document order.
	return env.XML.SelectNode(hits[len(hits)-1])
}

// SelectPlanLine drives the word processor to paragraph i (1-based) of the
// patient's Plan section.
func (env *Environment) SelectPlanLine(p Patient, i int) error {
	if err := env.Notes.Open(NoteFile(p)); err != nil {
		return err
	}
	return env.Notes.Select(textdoc.Loc{Section: 2, Paragraph: i})
}

// SelectImpression drives the paginated viewer to the IMPRESSION line of
// the patient's imaging report.
func (env *Environment) SelectImpression(p Patient) error {
	if err := env.Pager.Open(ImagingFile(p)); err != nil {
		return err
	}
	doc, ok := env.Pager.Document(ImagingFile(p))
	if !ok {
		return fmt.Errorf("clinical: imaging report for %s missing", p.MRN)
	}
	hits := doc.FindText("IMPRESSION:")
	if len(hits) == 0 {
		return fmt.Errorf("clinical: no impression section for %s", p.MRN)
	}
	loc := hits[0]
	// Include the line after the header (the impression text).
	if n, err := doc.PageLines(loc.Page); err == nil && loc.LastLine < n {
		loc.LastLine++
	}
	return env.Pager.Select(loc)
}
