package clinical

import (
	"strings"
	"testing"

	"repro/internal/base/xmldoc"
)

func TestGenerateHistoryShape(t *testing.T) {
	ps := GenerateHistory(3, 2, 5)
	for _, p := range ps {
		if len(p.LabHistory) != 5 {
			t.Fatalf("history days = %d", len(p.LabHistory))
		}
		// Labs mirror the final day.
		last := p.LabHistory[len(p.LabHistory)-1]
		if len(p.Labs) != len(last) {
			t.Fatal("Labs != final day")
		}
		for i := range last {
			if p.Labs[i] != last[i] {
				t.Fatal("Labs values differ from final day")
			}
		}
	}
	// Zero days clamps to 1.
	one := GenerateHistory(3, 1, 0)
	if len(one[0].LabHistory) != 1 {
		t.Fatalf("clamped days = %d", len(one[0].LabHistory))
	}
}

func TestLabXMLMultiDay(t *testing.T) {
	p := GenerateHistory(7, 1, 3)[0]
	text := LabXML(p)
	doc, err := xmldoc.Parse("labs", text)
	if err != nil {
		t.Fatal(err)
	}
	days := doc.Find(func(n *xmldoc.Node) bool { return n.Name == "day" })
	if len(days) != 3 {
		t.Fatalf("day elements = %d", len(days))
	}
	// Results per day match the lab count.
	results := doc.Find(func(n *xmldoc.Node) bool { return n.Name == "result" })
	if len(results) != 3*len(p.Labs) {
		t.Fatalf("results = %d, want %d", len(results), 3*len(p.Labs))
	}
	// Single-day reports keep the flat (Fig. 4) shape.
	flat := LabXML(GenerateHistory(7, 1, 1)[0])
	if strings.Contains(flat, "<day") {
		t.Fatal("single-day report has day wrapper")
	}
}

func TestEnvironmentHistorySelectsLatest(t *testing.T) {
	env, err := NewEnvironmentHistory(11, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := env.Patients[0]
	if err := env.SelectLab(p, "K"); err != nil {
		t.Fatal(err)
	}
	addr, err := env.XML.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	// The selected result must live under the most recent day (day[4]).
	if !strings.Contains(addr.Path, "/day[4]/") {
		t.Fatalf("selection path = %q, want the latest day", addr.Path)
	}
	el, err := env.XML.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	// And its value is the final-day K.
	var wantK string
	for _, l := range p.Labs {
		if l.Code == "K" {
			wantK = trimFloat(l.Value)
		}
	}
	if el.Content != wantK {
		t.Fatalf("selected K = %q, want %q", el.Content, wantK)
	}
}

func trimFloat(f float64) string {
	s := LabXML(Patient{Labs: []Lab{{Code: "K", Value: f, Units: "u", Panel: "p"}}, LabHistory: [][]Lab{{{Code: "K", Value: f, Units: "u", Panel: "p"}}}})
	// Extract the rendered value between > and <.
	i := strings.Index(s, `units="u">`)
	j := strings.Index(s[i:], "</result>")
	return s[i+len(`units="u">`) : i+j]
}
