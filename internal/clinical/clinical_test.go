package clinical

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/base/spreadsheet"
	"repro/internal/base/xmldoc"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 5)
	b := Generate(42, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different patients")
	}
	c := Generate(43, 5)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical patients")
	}
}

func TestGenerateShape(t *testing.T) {
	ps := Generate(1, 10)
	if len(ps) != 10 {
		t.Fatalf("patients = %d", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || !strings.HasPrefix(p.MRN, "MRN") {
			t.Errorf("identity = %q %q", p.Name, p.MRN)
		}
		if p.Age < 30 || p.Age >= 90 {
			t.Errorf("age = %d", p.Age)
		}
		if len(p.Problems) < 1 || len(p.Meds) < 2 || len(p.ToDos) < 1 {
			t.Errorf("counts: %d problems, %d meds, %d todos", len(p.Problems), len(p.Meds), len(p.ToDos))
		}
		if len(p.Labs) != 9 {
			t.Errorf("labs = %d", len(p.Labs))
		}
	}
}

func TestMedsCSVLoads(t *testing.T) {
	p := Generate(7, 1)[0]
	w := spreadsheet.NewWorkbook("w")
	s, err := w.LoadCSV("Meds", MedsCSV(p))
	if err != nil {
		t.Fatal(err)
	}
	if s.Get(spreadsheet.CellRef{Row: 0, Col: 0}) != "Drug" {
		t.Error("missing header")
	}
	if s.Get(spreadsheet.CellRef{Row: 1, Col: 0}) != p.Meds[0].Drug {
		t.Error("first med wrong")
	}
}

func TestLabXMLParses(t *testing.T) {
	p := Generate(7, 1)[0]
	doc, err := xmldoc.Parse("labs", LabXML(p))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "report" {
		t.Fatalf("root = %q", doc.Root.Name)
	}
	results := doc.Find(func(n *xmldoc.Node) bool { return n.Name == "result" })
	if len(results) != len(p.Labs) {
		t.Fatalf("results = %d, want %d", len(results), len(p.Labs))
	}
	panels := doc.Find(func(n *xmldoc.Node) bool { return n.Name == "panel" })
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
}

func TestProgressNoteSections(t *testing.T) {
	p := Generate(7, 1)[0]
	note := ProgressNote(p)
	for _, want := range []string{"# Assessment", "# Plan", "# To Do", p.Name} {
		if !strings.Contains(note, want) {
			t.Errorf("note missing %q", want)
		}
	}
}

func TestImagingReportContent(t *testing.T) {
	p := Generate(7, 1)[0]
	rep := ImagingReport(p)
	for _, want := range []string{"FINDINGS:", "IMPRESSION:", p.MRN} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestNewEnvironment(t *testing.T) {
	env, err := NewEnvironment(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Patients) != 3 {
		t.Fatalf("patients = %d", len(env.Patients))
	}
	// All four schemes registered with the mark manager.
	schemes := env.Marks.Schemes()
	if len(schemes) != 4 {
		t.Fatalf("schemes = %v", schemes)
	}
	// Every patient's documents are loaded.
	for _, p := range env.Patients {
		if _, ok := env.Sheets.Workbook(MedsFile(p)); !ok {
			t.Errorf("meds missing for %s", p.MRN)
		}
		if _, ok := env.XML.Document(LabFile(p)); !ok {
			t.Errorf("labs missing for %s", p.MRN)
		}
		if _, ok := env.Notes.Document(NoteFile(p)); !ok {
			t.Errorf("note missing for %s", p.MRN)
		}
		if _, ok := env.Pager.Document(ImagingFile(p)); !ok {
			t.Errorf("imaging missing for %s", p.MRN)
		}
	}
	if env.BaseBytes() <= 0 {
		t.Error("BaseBytes = 0")
	}
}

func TestSelectionHelpers(t *testing.T) {
	env, err := NewEnvironment(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := env.Patients[0]

	if err := env.SelectMed(p, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := env.Sheets.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if addr.Path != "Meds!A2:C2" {
		t.Errorf("med selection = %q", addr.Path)
	}
	if err := env.SelectMed(p, 99); err == nil {
		t.Error("bad med index accepted")
	}

	if err := env.SelectLab(p, "K"); err != nil {
		t.Fatal(err)
	}
	laddr, err := env.XML.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(laddr.Path, "result") {
		t.Errorf("lab selection = %q", laddr.Path)
	}
	if err := env.SelectLab(p, "XYZ"); err == nil {
		t.Error("unknown lab code accepted")
	}

	if err := env.SelectPlanLine(p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Notes.CurrentSelection(); err != nil {
		t.Fatal(err)
	}

	if err := env.SelectImpression(p); err != nil {
		t.Fatal(err)
	}
	paddr, err := env.Pager.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	el, err := env.Pager.GoTo(paddr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(el.Content, "IMPRESSION:") {
		t.Errorf("impression selection = %q", el.Content)
	}
}

func TestMarkRoundTripAcrossAllSubstrates(t *testing.T) {
	// F1: one mark into each of the four clinical substrates resolves back
	// to its element.
	env, err := NewEnvironment(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := env.Patients[0]
	selections := []func() error{
		func() error { return env.SelectMed(p, 0) },
		func() error { return env.SelectLab(p, "Na") },
		func() error { return env.SelectPlanLine(p, 1) },
		func() error { return env.SelectImpression(p) },
	}
	schemes := []string{"spreadsheet", "xml", "text", "pdf"}
	for i, sel := range selections {
		if err := sel(); err != nil {
			t.Fatalf("selection %d: %v", i, err)
		}
		m, err := env.Marks.CreateFromSelection(schemes[i])
		if err != nil {
			t.Fatalf("mark %s: %v", schemes[i], err)
		}
		el, err := env.Marks.Resolve(m.ID)
		if err != nil {
			t.Fatalf("resolve %s: %v", schemes[i], err)
		}
		if el.Content == "" {
			t.Errorf("%s mark resolved to empty content", schemes[i])
		}
		if m.Excerpt != el.Content {
			t.Errorf("%s: excerpt %q != resolved %q", schemes[i], m.Excerpt, el.Content)
		}
	}
}
