// Package clinical synthesizes the intensive-care information environment
// the paper's field observations come from (§2, Fig. 2): patients with
// problem lists, medication lists, lab panels, progress notes, and imaging
// reports. The generator is deterministic per seed, so experiments are
// reproducible.
//
// This is the documented substitution for the paper's clinical data: real
// ICU flowsheets and charts are not available, so each base document type
// is generated with the same structure the paper's scenarios mark into
// (medication list as a spreadsheet, lab report as XML, notes as sectioned
// text, imaging reports as paginated documents).
package clinical

import (
	"fmt"
	"math/rand"
	"strings"
)

// Med is one medication order.
type Med struct {
	Drug, Dose, Route string
}

// Lab is one lab result.
type Lab struct {
	Code  string
	Value float64
	Units string
	// Panel groups results ("electrolytes", "cbc", "renal").
	Panel string
}

// Patient is one synthetic ICU patient.
type Patient struct {
	Name     string
	MRN      string
	Age      int
	Problems []string
	Meds     []Med
	// Labs holds the most recent day's results.
	Labs []Lab
	// LabHistory holds one result set per hospital day, oldest first; the
	// last entry equals Labs. Length 1 unless generated with history.
	LabHistory [][]Lab
	ToDos      []string
}

var (
	firstNames = []string{"John", "Mary", "Robert", "Linda", "James", "Pearl", "Walter", "Grace", "Henry", "Ruth", "Frank", "Alice"}
	lastNames  = []string{"Smith", "Nguyen", "Garcia", "Johnson", "Okafor", "Chen", "Miller", "Haddad", "Kowalski", "Brown", "Silva", "Park"}
	problems   = []string{"acute decompensated heart failure", "septic shock", "COPD exacerbation", "acute kidney injury", "GI bleed", "pneumonia", "DKA", "post-op day 2 CABG", "acute pancreatitis", "stroke"}
	drugs      = []struct{ drug, dose, route string }{
		{"Furosemide", "40mg", "IV"}, {"Insulin", "5u", "SC"}, {"Ceftriaxone", "1g", "IV"},
		{"Norepinephrine", "8mcg/min", "IV"}, {"Heparin", "5000u", "SC"}, {"Metoprolol", "25mg", "PO"},
		{"Vancomycin", "1.25g", "IV"}, {"Pantoprazole", "40mg", "IV"}, {"Propofol", "30mcg/kg/min", "IV"},
		{"Aspirin", "81mg", "PO"},
	}
	todos = []string{"recheck potassium", "wean oxygen", "renal ultrasound", "culture results", "family meeting", "PT eval", "repeat CXR", "adjust sedation", "diuresis goal -1L", "advance diet"}
)

// labSpec defines the generated panels; values are drawn around plausible
// midpoints so reproductions read like real flowsheets.
var labSpec = []struct {
	code, units, panel string
	mid, spread        float64
}{
	{"Na", "mmol/L", "electrolytes", 139, 6},
	{"K", "mmol/L", "electrolytes", 4.1, 0.9},
	{"Cl", "mmol/L", "electrolytes", 103, 6},
	{"HCO3", "mmol/L", "electrolytes", 24, 4},
	{"WBC", "K/uL", "cbc", 9.5, 6},
	{"Hgb", "g/dL", "cbc", 11.5, 3},
	{"Plt", "K/uL", "cbc", 220, 120},
	{"BUN", "mg/dL", "renal", 28, 18},
	{"Cr", "mg/dL", "renal", 1.4, 0.9},
}

// Generate returns n deterministic synthetic patients for the seed, with a
// single day of labs.
func Generate(seed int64, n int) []Patient {
	return GenerateHistory(seed, n, 1)
}

// GenerateHistory returns n patients with `days` days of lab history each
// (at least 1). Longer histories make the base documents realistically
// large, which matters for the layer-volume experiment (T3).
func GenerateHistory(seed int64, n, days int) []Patient {
	if days < 1 {
		days = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Patient, 0, n)
	for i := 0; i < n; i++ {
		p := Patient{
			Name: firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))],
			MRN:  fmt.Sprintf("MRN%06d", 100000+rng.Intn(900000)),
			Age:  30 + rng.Intn(60),
		}
		for _, idx := range rng.Perm(len(problems))[:1+rng.Intn(3)] {
			p.Problems = append(p.Problems, problems[idx])
		}
		for _, idx := range rng.Perm(len(drugs))[:2+rng.Intn(4)] {
			d := drugs[idx]
			p.Meds = append(p.Meds, Med{Drug: d.drug, Dose: d.dose, Route: d.route})
		}
		for day := 0; day < days; day++ {
			var set []Lab
			for _, spec := range labSpec {
				v := spec.mid + (rng.Float64()*2-1)*spec.spread
				set = append(set, Lab{
					Code:  spec.code,
					Value: float64(int(v*10)) / 10,
					Units: spec.units,
					Panel: spec.panel,
				})
			}
			p.LabHistory = append(p.LabHistory, set)
		}
		p.Labs = p.LabHistory[len(p.LabHistory)-1]
		for _, idx := range rng.Perm(len(todos))[:1+rng.Intn(3)] {
			p.ToDos = append(p.ToDos, todos[idx])
		}
		out = append(out, p)
	}
	return out
}

// MedsCSV renders a patient's medication list as CSV with a header row, the
// content of the paper's Excel medication list (Fig. 4).
func MedsCSV(p Patient) string {
	var b strings.Builder
	b.WriteString("Drug,Dose,Route\n")
	for _, m := range p.Meds {
		fmt.Fprintf(&b, "%s,%s,%s\n", m.Drug, m.Dose, m.Route)
	}
	return b.String()
}

// LabXML renders a patient's labs as the XML lab report of Fig. 4, one
// <panel> element per panel with <result> children. With multi-day
// history, each day's panels are wrapped in a <day> element (most recent
// last), so marks into the latest results address the last <day>.
func LabXML(p Patient) string {
	var b strings.Builder
	b.WriteString("<report>\n")
	fmt.Fprintf(&b, "  <patient mrn=%q>%s</patient>\n", p.MRN, xmlEscape(p.Name))
	history := p.LabHistory
	if len(history) == 0 {
		history = [][]Lab{p.Labs}
	}
	multiDay := len(history) > 1
	for di, set := range history {
		indent := "  "
		if multiDay {
			fmt.Fprintf(&b, "  <day n=\"%d\">\n", di+1)
			indent = "    "
		}
		current := ""
		for _, l := range set {
			if l.Panel != current {
				if current != "" {
					b.WriteString(indent + "</panel>\n")
				}
				fmt.Fprintf(&b, "%s<panel name=%q>\n", indent, l.Panel)
				current = l.Panel
			}
			fmt.Fprintf(&b, "%s  <result code=%q units=%q>%g</result>\n", indent, l.Code, l.Units, l.Value)
		}
		if current != "" {
			b.WriteString(indent + "</panel>\n")
		}
		if multiDay {
			b.WriteString("  </day>\n")
		}
	}
	b.WriteString("</report>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// ProgressNote renders a sectioned progress note for the textdoc substrate.
func ProgressNote(p Patient) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Assessment\n%s is a %d year old admitted with %s.\n\n",
		p.Name, p.Age, strings.Join(p.Problems, " and "))
	b.WriteString("Overnight events reviewed with the bedside nurse.\n\n")
	b.WriteString("# Plan\n")
	for _, m := range p.Meds {
		fmt.Fprintf(&b, "Continue %s %s %s.\n\n", m.Drug, m.Dose, m.Route)
	}
	b.WriteString("# To Do\n")
	for _, td := range p.ToDos {
		fmt.Fprintf(&b, "%s.\n\n", td)
	}
	return b.String()
}

// ImagingReport renders a multi-page imaging report for the pdfdoc
// substrate (plain text; pagination is the viewer's job).
func ImagingReport(p Patient) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PORTABLE CHEST RADIOGRAPH — %s (%s)\n", p.Name, p.MRN)
	b.WriteString("INDICATION:\n")
	for _, pr := range p.Problems {
		fmt.Fprintf(&b, "  %s\n", pr)
	}
	b.WriteString("FINDINGS:\n")
	lines := []string{
		"Endotracheal tube terminates 4 cm above the carina.",
		"Right internal jugular central line tip in the SVC.",
		"Mild pulmonary vascular congestion, improved from prior.",
		"Small bilateral pleural effusions, stable.",
		"No pneumothorax.",
		"Cardiomediastinal silhouette is enlarged but stable.",
	}
	for i, l := range lines {
		fmt.Fprintf(&b, "  %d. %s\n", i+1, l)
	}
	b.WriteString("IMPRESSION:\n")
	b.WriteString("  Improving congestion; lines and tubes in standard position.\n")
	return b.String()
}
