package metamodel

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// Mapping transforms instance data of a source model into instance data of
// a target model, realizing the paper's "defining mappings between
// superimposed models, including model-to-model, schema-to-schema and even
// schema-to-model mappings" (§4.3, ref [4]). A mapping pairs source
// constructs with target constructs and source connectors with target
// connectors; Apply rewrites matching instance triples.
type Mapping struct {
	// Source and Target identify the models being bridged.
	Source, Target *Model

	constructMap map[string]string
	connectorMap map[string]string
}

// NewMapping returns an empty mapping between the two models.
func NewMapping(source, target *Model) *Mapping {
	return &Mapping{
		Source:       source,
		Target:       target,
		constructMap: make(map[string]string),
		connectorMap: make(map[string]string),
	}
}

// MapConstruct pairs a source construct with a target construct. Both must
// exist in their respective models, and a mark construct may only map to a
// mark construct (the mark's base-layer reference must survive the
// transformation).
func (mp *Mapping) MapConstruct(sourceID, targetID string) error {
	sc, ok := mp.Source.Construct(sourceID)
	if !ok {
		return fmt.Errorf("%w: %s (source)", ErrUnknownConstruct, sourceID)
	}
	tc, ok := mp.Target.Construct(targetID)
	if !ok {
		return fmt.Errorf("%w: %s (target)", ErrUnknownConstruct, targetID)
	}
	if (sc.Kind == KindMarkConstruct) != (tc.Kind == KindMarkConstruct) {
		return fmt.Errorf("metamodel: mapping %s -> %s: mark constructs may only map to mark constructs", sourceID, targetID)
	}
	mp.constructMap[sourceID] = targetID
	return nil
}

// MapConnector pairs a source connector with a target connector. Both must
// exist, and their endpoint constructs must be mapped consistently: the
// mapped From of the source connector must be the From of the target (and
// likewise for To).
func (mp *Mapping) MapConnector(sourceID, targetID string) error {
	sc, ok := mp.Source.Connector(sourceID)
	if !ok {
		return fmt.Errorf("%w: %s (source)", ErrUnknownConnector, sourceID)
	}
	tc, ok := mp.Target.Connector(targetID)
	if !ok {
		return fmt.Errorf("%w: %s (target)", ErrUnknownConnector, targetID)
	}
	if mapped, ok := mp.constructMap[sc.From]; ok && mapped != tc.From {
		return fmt.Errorf("metamodel: connector mapping %s -> %s: from-construct %s maps to %s, but target connector starts at %s",
			sourceID, targetID, sc.From, mapped, tc.From)
	}
	if mapped, ok := mp.constructMap[sc.To]; ok && mapped != tc.To {
		return fmt.Errorf("metamodel: connector mapping %s -> %s: to-construct %s maps to %s, but target connector ends at %s",
			sourceID, targetID, sc.To, mapped, tc.To)
	}
	mp.connectorMap[sourceID] = targetID
	return nil
}

// TargetConstruct returns the mapped target construct for a source
// construct IRI.
func (mp *Mapping) TargetConstruct(sourceID string) (string, bool) {
	t, ok := mp.constructMap[sourceID]
	return t, ok
}

// TargetConnector returns the mapped target connector for a source
// connector IRI.
func (mp *Mapping) TargetConnector(sourceID string) (string, bool) {
	t, ok := mp.connectorMap[sourceID]
	return t, ok
}

// ApplyStats reports what Apply did.
type ApplyStats struct {
	// TypesRewritten counts rdf:type triples mapped to target constructs.
	TypesRewritten int
	// ConnectorsRewritten counts connector triples mapped.
	ConnectorsRewritten int
	// Carried counts reserved-property triples (labels, mark ids) copied
	// unchanged for mapped instances.
	Carried int
	// Dropped counts triples of mapped instances with no mapped connector.
	Dropped int
}

// Apply reads instance data of the source model from src and writes the
// transformed instances into dst. Instances whose type has no construct
// mapping are left out entirely; properties without a connector mapping are
// dropped (and counted). Reserved properties (labels, mark ids) are carried
// through so marks keep referencing the base layer.
func (mp *Mapping) Apply(src, dst *trim.Manager) (ApplyStats, error) {
	var stats ApplyStats
	b := dst.NewBatch()

	// Which instances are mapped, and to what target construct.
	mappedInstance := map[rdf.Term]string{}
	for srcConstruct, dstConstruct := range mp.constructMap {
		for _, inst := range src.Subjects(rdf.RDFType, rdf.IRI(srcConstruct)) {
			mappedInstance[inst] = dstConstruct
			if err := b.Create(rdf.T(inst, rdf.RDFType, rdf.IRI(dstConstruct))); err != nil {
				return stats, fmt.Errorf("metamodel: apply mapping: %w", err)
			}
			stats.TypesRewritten++
		}
	}

	for inst := range mappedInstance {
		for _, t := range src.Select(rdf.P(inst, rdf.Zero, rdf.Zero)) {
			switch {
			case t.Predicate == rdf.RDFType:
				// handled above
			case isReservedProperty(t.Predicate):
				if err := b.Create(t); err != nil {
					return stats, fmt.Errorf("metamodel: apply mapping: %w", err)
				}
				stats.Carried++
			default:
				dstConn, ok := mp.connectorMap[t.Predicate.Value()]
				if !ok {
					stats.Dropped++
					continue
				}
				if err := b.Create(rdf.T(t.Subject, rdf.IRI(dstConn), t.Object)); err != nil {
					return stats, fmt.Errorf("metamodel: apply mapping: %w", err)
				}
				stats.ConnectorsRewritten++
			}
		}
	}
	if err := b.Apply(); err != nil {
		return stats, err
	}
	return stats, nil
}
