package metamodel

import (
	"repro/internal/rdf"
)

// The metamodel vocabulary: the paper represents metamodel elements "using
// RDF Schema" [5], with model, schema, and instance data all as RDF triples.
// Class IRIs reuse rdfs:Class machinery (each construct is an rdfs:Class
// typed by its metamodel kind); connector IRIs are rdf:Property instances
// typed by connector kind.
var (
	// Classes of the metamodel itself.
	ClassModel          = rdf.IRI(rdf.NSSLIM + "Model")
	ClassConstruct      = rdf.IRI(rdf.NSSLIM + "Construct")
	ClassLiteralConstr  = rdf.IRI(rdf.NSSLIM + "LiteralConstruct")
	ClassMarkConstr     = rdf.IRI(rdf.NSSLIM + "MarkConstruct")
	ClassConnector      = rdf.IRI(rdf.NSSLIM + "Connector")
	ClassConformance    = rdf.IRI(rdf.NSSLIM + "ConformanceConnector")
	ClassGeneralization = rdf.IRI(rdf.NSSLIM + "GeneralizationConnector")

	// Properties describing models.
	PropInModel  = rdf.IRI(rdf.NSSLIM + "inModel")  // construct/connector -> model
	PropFrom     = rdf.IRI(rdf.NSSLIM + "from")     // connector -> construct
	PropTo       = rdf.IRI(rdf.NSSLIM + "to")       // connector -> construct
	PropMinCard  = rdf.IRI(rdf.NSSLIM + "minCard")  // connector -> integer
	PropMaxCard  = rdf.IRI(rdf.NSSLIM + "maxCard")  // connector -> integer (-1 unbounded)
	PropDatatype = rdf.IRI(rdf.NSSLIM + "datatype") // literal construct -> datatype IRI

	// PropMarkID relates an instance of a mark construct to the mark
	// identifier handed out by the Mark Manager (the markId of Fig. 3).
	PropMarkID = rdf.IRI(rdf.NSMark + "markId")
)

func kindClass(k ConstructKind) rdf.Term {
	switch k {
	case KindLiteralConstruct:
		return ClassLiteralConstr
	case KindMarkConstruct:
		return ClassMarkConstr
	default:
		return ClassConstruct
	}
}

func classKind(t rdf.Term) (ConstructKind, bool) {
	switch t {
	case ClassConstruct:
		return KindConstruct, true
	case ClassLiteralConstr:
		return KindLiteralConstruct, true
	case ClassMarkConstr:
		return KindMarkConstruct, true
	default:
		return 0, false
	}
}

func connKindClass(k ConnectorKind) rdf.Term {
	switch k {
	case KindConformance:
		return ClassConformance
	case KindGeneralization:
		return ClassGeneralization
	default:
		return ClassConnector
	}
}

func classConnKind(t rdf.Term) (ConnectorKind, bool) {
	switch t {
	case ClassConnector:
		return KindConnector, true
	case ClassConformance:
		return KindConformance, true
	case ClassGeneralization:
		return KindGeneralization, true
	default:
		return 0, false
	}
}
