package metamodel

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// Encode writes the model's definition into the triple manager. This is the
// paper's "explicitly representing and storing model, schema, and instance"
// (§5): the model itself becomes data in the same store as its instances.
func Encode(m *Model, store *trim.Manager) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b := store.NewBatch()
	model := rdf.IRI(m.ID)
	stage := func(t rdf.Triple) error { return b.Create(t) }

	if err := stage(rdf.T(model, rdf.RDFType, ClassModel)); err != nil {
		return fmt.Errorf("metamodel: encode %s: %w", m.ID, err)
	}
	if m.Label != "" {
		if err := stage(rdf.T(model, rdf.RDFSLabel, rdf.String(m.Label))); err != nil {
			return err
		}
	}
	for _, c := range m.Constructs() {
		id := rdf.IRI(c.ID)
		if err := stage(rdf.T(id, rdf.RDFType, kindClass(c.Kind))); err != nil {
			return err
		}
		if err := stage(rdf.T(id, PropInModel, model)); err != nil {
			return err
		}
		if c.Label != "" {
			if err := stage(rdf.T(id, rdf.RDFSLabel, rdf.String(c.Label))); err != nil {
				return err
			}
		}
		if c.Kind == KindLiteralConstruct && c.Datatype != "" {
			if err := stage(rdf.T(id, PropDatatype, rdf.IRI(c.Datatype))); err != nil {
				return err
			}
		}
	}
	for _, c := range m.Connectors() {
		id := rdf.IRI(c.ID)
		if err := stage(rdf.T(id, rdf.RDFType, connKindClass(c.Kind))); err != nil {
			return err
		}
		if err := stage(rdf.T(id, PropInModel, model)); err != nil {
			return err
		}
		if c.Label != "" {
			if err := stage(rdf.T(id, rdf.RDFSLabel, rdf.String(c.Label))); err != nil {
				return err
			}
		}
		if err := stage(rdf.T(id, PropFrom, rdf.IRI(c.From))); err != nil {
			return err
		}
		if err := stage(rdf.T(id, PropTo, rdf.IRI(c.To))); err != nil {
			return err
		}
		if c.Kind == KindConnector {
			if err := stage(rdf.T(id, PropMinCard, rdf.Integer(int64(c.MinCard)))); err != nil {
				return err
			}
			if err := stage(rdf.T(id, PropMaxCard, rdf.Integer(int64(c.MaxCard)))); err != nil {
				return err
			}
		}
	}
	return b.Apply()
}

// Decode reconstructs a model from its triple representation in the store.
// The modelID must identify a resource typed slim:Model.
func Decode(store *trim.Manager, modelID string) (*Model, error) {
	model := rdf.IRI(modelID)
	if !store.Has(rdf.T(model, rdf.RDFType, ClassModel)) {
		return nil, fmt.Errorf("metamodel: %s is not a slim:Model in this store", modelID)
	}
	label := ""
	if t, err := store.One(rdf.P(model, rdf.RDFSLabel, rdf.Zero)); err == nil {
		label = t.Object.Value()
	}
	m := NewModel(modelID, label)

	members := store.Subjects(PropInModel, model)
	// First pass: constructs (connectors need their endpoints registered).
	type pending struct {
		id   rdf.Term
		kind ConnectorKind
	}
	var conns []pending
	for _, member := range members {
		kinds := store.Objects(member, rdf.RDFType)
		var isConstruct, isConnector bool
		var ck ConstructKind
		var nk ConnectorKind
		for _, k := range kinds {
			if kc, ok := classKind(k); ok {
				isConstruct, ck = true, kc
			}
			if kc, ok := classConnKind(k); ok {
				isConnector, nk = true, kc
			}
		}
		switch {
		case isConstruct && isConnector:
			return nil, fmt.Errorf("metamodel: %s typed as both construct and connector", member.Value())
		case isConstruct:
			c := Construct{ID: member.Value(), Kind: ck}
			if t, err := store.One(rdf.P(member, rdf.RDFSLabel, rdf.Zero)); err == nil {
				c.Label = t.Object.Value()
			}
			if t, err := store.One(rdf.P(member, PropDatatype, rdf.Zero)); err == nil {
				c.Datatype = t.Object.Value()
			}
			if err := m.AddConstruct(c); err != nil {
				return nil, err
			}
		case isConnector:
			conns = append(conns, pending{id: member, kind: nk})
		default:
			return nil, fmt.Errorf("metamodel: member %s of model %s has no metamodel type", member.Value(), modelID)
		}
	}
	for _, p := range conns {
		c := Connector{ID: p.id.Value(), Kind: p.kind}
		if t, err := store.One(rdf.P(p.id, rdf.RDFSLabel, rdf.Zero)); err == nil {
			c.Label = t.Object.Value()
		}
		from, err := store.One(rdf.P(p.id, PropFrom, rdf.Zero))
		if err != nil {
			return nil, fmt.Errorf("metamodel: connector %s: %w", c.ID, err)
		}
		to, err := store.One(rdf.P(p.id, PropTo, rdf.Zero))
		if err != nil {
			return nil, fmt.Errorf("metamodel: connector %s: %w", c.ID, err)
		}
		c.From, c.To = from.Object.Value(), to.Object.Value()
		if c.Kind == KindConnector {
			minT, err := store.One(rdf.P(p.id, PropMinCard, rdf.Zero))
			if err != nil {
				return nil, fmt.Errorf("metamodel: connector %s: %w", c.ID, err)
			}
			maxT, err := store.One(rdf.P(p.id, PropMaxCard, rdf.Zero))
			if err != nil {
				return nil, fmt.Errorf("metamodel: connector %s: %w", c.ID, err)
			}
			minN, ok := minT.Object.Int()
			if !ok {
				return nil, fmt.Errorf("metamodel: connector %s: minCard is not an integer", c.ID)
			}
			maxN, ok := maxT.Object.Int()
			if !ok {
				return nil, fmt.Errorf("metamodel: connector %s: maxCard is not an integer", c.ID)
			}
			c.MinCard, c.MaxCard = int(minN), int(maxN)
		}
		if err := m.AddConnector(c); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ListModels returns the IRIs of all models stored in the manager, sorted.
func ListModels(store *trim.Manager) []string {
	subs := store.Subjects(rdf.RDFType, ClassModel)
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = s.Value()
	}
	return out
}
