package metamodel

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// §4.3 names three mapping kinds: "model-to-model, schema-to-schema and
// even schema-to-model mappings". Mapping (mapping.go) is model-to-model.
// This file adds the other two for the relational example model:
//
//   - SchemaMapping rewrites instance data of one schema (a Table and its
//     Attributes) into another schema of the same model: rows of Patients
//     become rows of People, cells re-anchored to the mapped attributes.
//   - PromoteSchema is schema-to-model: it lifts a schema (a Table) into a
//     first-class model — the table becomes a construct, each attribute a
//     connector to a literal construct — and FlattenRows transforms the
//     generic Row/Cell instances into direct instances of the new model.

// SchemaMapping maps one relational schema onto another within the same
// store: table -> table and attribute -> attribute.
type SchemaMapping struct {
	SourceTable, TargetTable rdf.Term
	attrMap                  map[rdf.Term]rdf.Term
}

// NewSchemaMapping starts a mapping between two Table instances. Both must
// be typed slim Tables in the store.
func NewSchemaMapping(store *trim.Manager, source, target rdf.Term) (*SchemaMapping, error) {
	for _, tbl := range []rdf.Term{source, target} {
		if !store.Has(rdf.T(tbl, rdf.RDFType, rdf.IRI(ConstructTable))) {
			return nil, fmt.Errorf("metamodel: %s is not a Table instance", tbl.Value())
		}
	}
	return &SchemaMapping{SourceTable: source, TargetTable: target, attrMap: map[rdf.Term]rdf.Term{}}, nil
}

// MapAttribute pairs a source attribute with a target attribute. Both must
// belong to their respective tables.
func (sm *SchemaMapping) MapAttribute(store *trim.Manager, src, dst rdf.Term) error {
	if !store.Has(rdf.T(sm.SourceTable, rdf.IRI(ConnHasAttribute), src)) {
		return fmt.Errorf("metamodel: %s is not an attribute of the source table", src.Value())
	}
	if !store.Has(rdf.T(sm.TargetTable, rdf.IRI(ConnHasAttribute), dst)) {
		return fmt.Errorf("metamodel: %s is not an attribute of the target table", dst.Value())
	}
	sm.attrMap[src] = dst
	return nil
}

// Apply rewrites every row of the source table into a row of the target
// table, in place: the conformance references move to the target schema,
// and each cell re-anchors to the mapped attribute. Cells of unmapped
// attributes are detached from the row (and counted).
func (sm *SchemaMapping) Apply(store *trim.Manager) (rowsMoved, cellsDropped int, err error) {
	rowOf := rdf.IRI(ConnRowOfTable)
	cellOf := rdf.IRI(ConnCellOfAttr)
	rowCell := rdf.IRI(ConnRowCell)
	for _, row := range store.Subjects(rowOf, sm.SourceTable) {
		b := store.NewBatch()
		if err := b.Remove(rdf.T(row, rowOf, sm.SourceTable)); err != nil {
			return rowsMoved, cellsDropped, err
		}
		if err := b.Create(rdf.T(row, rowOf, sm.TargetTable)); err != nil {
			return rowsMoved, cellsDropped, err
		}
		for _, cell := range store.Objects(row, rowCell) {
			attrs := store.Objects(cell, cellOf)
			if len(attrs) != 1 {
				return rowsMoved, cellsDropped, fmt.Errorf("metamodel: cell %s has %d attribute anchors", cell.Value(), len(attrs))
			}
			dst, ok := sm.attrMap[attrs[0]]
			if !ok {
				// Unmapped column: detach the cell from the migrated row.
				if err := b.Remove(rdf.T(row, rowCell, cell)); err != nil {
					return rowsMoved, cellsDropped, err
				}
				cellsDropped++
				continue
			}
			if err := b.Remove(rdf.T(cell, cellOf, attrs[0])); err != nil {
				return rowsMoved, cellsDropped, err
			}
			if err := b.Create(rdf.T(cell, cellOf, dst)); err != nil {
				return rowsMoved, cellsDropped, err
			}
		}
		if err := b.Apply(); err != nil {
			return rowsMoved, cellsDropped, err
		}
		rowsMoved++
	}
	return rowsMoved, cellsDropped, nil
}

// PromoteSchema lifts a Table schema into its own model (schema-to-model):
// the table becomes a construct named after it, each attribute becomes a
// connector from that construct to a shared literal construct. The returned
// model is self-contained and can be registered anywhere.
func PromoteSchema(store *trim.Manager, table rdf.Term, modelID string) (*Model, error) {
	if !store.Has(rdf.T(table, rdf.RDFType, rdf.IRI(ConstructTable))) {
		return nil, fmt.Errorf("metamodel: %s is not a Table instance", table.Value())
	}
	nameT, err := store.One(rdf.P(table, rdf.IRI(ConnTableName), rdf.Zero))
	if err != nil {
		return nil, fmt.Errorf("metamodel: promoting %s: %w", table.Value(), err)
	}
	tableName := nameT.Object.Value()
	m := NewModel(modelID, tableName)
	entity := modelID + "#" + sanitizeLocal(tableName)
	valueC := modelID + "#Value"
	if err := m.AddConstruct(Construct{ID: entity, Kind: KindConstruct, Label: tableName}); err != nil {
		return nil, err
	}
	if err := m.AddConstruct(Construct{ID: valueC, Kind: KindLiteralConstruct, Label: "Value"}); err != nil {
		return nil, err
	}
	for _, attr := range store.Objects(table, rdf.IRI(ConnHasAttribute)) {
		an, err := store.One(rdf.P(attr, rdf.IRI(ConnAttributeName), rdf.Zero))
		if err != nil {
			return nil, fmt.Errorf("metamodel: promoting %s: attribute %s: %w", table.Value(), attr.Value(), err)
		}
		attrName := an.Object.Value()
		conn := Connector{
			ID:      modelID + "#" + sanitizeLocal(attrName),
			Kind:    KindConnector,
			Label:   attrName,
			From:    entity,
			To:      valueC,
			MinCard: 0,
			MaxCard: 1,
		}
		if err := m.AddConnector(conn); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// FlattenRows transforms the generic Row/Cell instances of the table into
// direct instances of the promoted model in dst: each row becomes a typed
// instance whose connector values come from its cells. It returns the
// number of rows flattened.
func FlattenRows(src *trim.Manager, table rdf.Term, promoted *Model, dst *trim.Manager) (int, error) {
	entity := ""
	for _, c := range promoted.Constructs() {
		if c.Kind == KindConstruct {
			entity = c.ID
		}
	}
	if entity == "" {
		return 0, fmt.Errorf("metamodel: promoted model has no entity construct")
	}
	// Attribute name -> connector IRI.
	connByLabel := map[string]string{}
	for _, c := range promoted.Connectors() {
		connByLabel[c.Label] = c.ID
	}
	n := 0
	for _, row := range src.Subjects(rdf.IRI(ConnRowOfTable), table) {
		b := dst.NewBatch()
		if err := b.Create(rdf.T(row, rdf.RDFType, rdf.IRI(entity))); err != nil {
			return n, err
		}
		for _, cell := range src.Objects(row, rdf.IRI(ConnRowCell)) {
			attrs := src.Objects(cell, rdf.IRI(ConnCellOfAttr))
			if len(attrs) != 1 {
				continue
			}
			an, err := src.One(rdf.P(attrs[0], rdf.IRI(ConnAttributeName), rdf.Zero))
			if err != nil {
				return n, err
			}
			conn, ok := connByLabel[an.Object.Value()]
			if !ok {
				continue
			}
			val, err := src.One(rdf.P(cell, rdf.IRI(ConnCellValue), rdf.Zero))
			if err != nil {
				return n, err
			}
			if err := b.Create(rdf.T(row, rdf.IRI(conn), val.Object)); err != nil {
				return n, err
			}
		}
		if err := b.Apply(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// sanitizeLocal turns a human name into an IRI-safe local name.
func sanitizeLocal(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
