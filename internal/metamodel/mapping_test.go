package metamodel

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// scrapToAnnotationMapping maps the Bundle-Scrap Scrap construct onto the
// annotation model: a scrap becomes an annotation, its mark handle becomes
// the anchor.
func scrapToAnnotationMapping(t *testing.T) *Mapping {
	t.Helper()
	mp := NewMapping(BundleScrapModel(), AnnotationModel())
	if err := mp.MapConstruct(ConstructScrap, ConstructAnnotation); err != nil {
		t.Fatal(err)
	}
	if err := mp.MapConstruct(ConstructMarkHandle, ConstructAnchor); err != nil {
		t.Fatal(err)
	}
	if err := mp.MapConnector(ConnScrapMark, ConnAnnAnchor); err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestMapConstructValidation(t *testing.T) {
	mp := NewMapping(BundleScrapModel(), AnnotationModel())
	if err := mp.MapConstruct("http://nope", ConstructAnnotation); err == nil {
		t.Error("unknown source construct accepted")
	}
	if err := mp.MapConstruct(ConstructScrap, "http://nope"); err == nil {
		t.Error("unknown target construct accepted")
	}
	// Mark construct must map to mark construct.
	if err := mp.MapConstruct(ConstructMarkHandle, ConstructAnnotation); err == nil {
		t.Error("mark construct mapped to plain construct")
	}
	if err := mp.MapConstruct(ConstructScrap, ConstructAnchor); err == nil {
		t.Error("plain construct mapped to mark construct")
	}
}

func TestMapConnectorValidation(t *testing.T) {
	mp := scrapToAnnotationMapping(t)
	if err := mp.MapConnector("http://nope", ConnAnnAnchor); err == nil {
		t.Error("unknown source connector accepted")
	}
	if err := mp.MapConnector(ConnScrapMark, "http://nope"); err == nil {
		t.Error("unknown target connector accepted")
	}
	// Inconsistent endpoints: scrapName goes Scrap->Name, annAnchor goes
	// Annotation->Anchor; Scrap maps to Annotation (consistent from), but
	// Name is unmapped so only the to-side cannot conflict; use scrapPos
	// against annStamp whose from is Annotation: Scrap maps to Annotation,
	// consistent. Build a genuinely inconsistent case: map nestedBundle
	// (Bundle->Bundle) to annAnchor (Annotation->Anchor) after mapping
	// Bundle to Annotation... Bundle is unmapped, so no conflict arises;
	// instead map bundleContent (Bundle->Scrap): its To (Scrap) maps to
	// Annotation, but annAnchor's To is Anchor -> conflict.
	if err := mp.MapConnector(ConnBundleContent, ConnAnnAnchor); err == nil {
		t.Error("endpoint-inconsistent connector mapping accepted")
	}
}

func TestMappingLookups(t *testing.T) {
	mp := scrapToAnnotationMapping(t)
	if got, ok := mp.TargetConstruct(ConstructScrap); !ok || got != ConstructAnnotation {
		t.Errorf("TargetConstruct = %q, %v", got, ok)
	}
	if _, ok := mp.TargetConstruct(ConstructBundle); ok {
		t.Error("unmapped construct resolved")
	}
	if got, ok := mp.TargetConnector(ConnScrapMark); !ok || got != ConnAnnAnchor {
		t.Errorf("TargetConnector = %q, %v", got, ok)
	}
	if _, ok := mp.TargetConnector(ConnScrapName); ok {
		t.Error("unmapped connector resolved")
	}
}

func TestApplyMapping(t *testing.T) {
	src := trim.NewManager()
	scrap := rdf.IRI(rdf.NSInst + "scrap1")
	handle := rdf.IRI(rdf.NSInst + "handle1")
	src.Create(rdf.T(scrap, rdf.RDFType, rdf.IRI(ConstructScrap)))
	src.Create(rdf.T(scrap, rdf.IRI(ConnScrapName), rdf.String("K+ 4.1")))
	src.Create(rdf.T(scrap, rdf.IRI(ConnScrapMark), handle))
	src.Create(rdf.T(handle, rdf.RDFType, rdf.IRI(ConstructMarkHandle)))
	src.Create(rdf.T(handle, PropMarkID, rdf.String("mark-77")))

	mp := scrapToAnnotationMapping(t)
	dst := trim.NewManager()
	stats, err := mp.Apply(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TypesRewritten != 2 {
		t.Errorf("TypesRewritten = %d, want 2", stats.TypesRewritten)
	}
	if stats.ConnectorsRewritten != 1 {
		t.Errorf("ConnectorsRewritten = %d, want 1", stats.ConnectorsRewritten)
	}
	if stats.Dropped != 1 { // scrapName has no mapping
		t.Errorf("Dropped = %d, want 1", stats.Dropped)
	}
	if stats.Carried != 1 { // the markId
		t.Errorf("Carried = %d, want 1", stats.Carried)
	}

	// The destination must hold a typed Annotation anchored via annAnchor,
	// with the mark id preserved.
	if !dst.Has(rdf.T(scrap, rdf.RDFType, rdf.IRI(ConstructAnnotation))) {
		t.Error("scrap not retyped as Annotation")
	}
	if !dst.Has(rdf.T(scrap, rdf.IRI(ConnAnnAnchor), handle)) {
		t.Error("scrapMark not rewritten to annAnchor")
	}
	if !dst.Has(rdf.T(handle, PropMarkID, rdf.String("mark-77"))) {
		t.Error("mark id lost in mapping — the base-layer link is broken")
	}
	// Nothing unexpected leaked.
	if dst.Has(rdf.T(scrap, rdf.IRI(ConnScrapName), rdf.String("K+ 4.1"))) {
		t.Error("unmapped connector leaked into target")
	}
}

func TestApplyMappingSkipsUnmappedInstances(t *testing.T) {
	src := trim.NewManager()
	bundle := rdf.IRI(rdf.NSInst + "bundle1")
	src.Create(rdf.T(bundle, rdf.RDFType, rdf.IRI(ConstructBundle)))
	src.Create(rdf.T(bundle, rdf.IRI(ConnBundleName), rdf.String("Rounds")))

	mp := scrapToAnnotationMapping(t)
	dst := trim.NewManager()
	stats, err := mp.Apply(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Fatalf("unmapped instance leaked: %d triples", dst.Len())
	}
	if stats.TypesRewritten != 0 {
		t.Errorf("TypesRewritten = %d", stats.TypesRewritten)
	}
}

func TestApplyMappingEmptySource(t *testing.T) {
	mp := scrapToAnnotationMapping(t)
	dst := trim.NewManager()
	stats, err := mp.Apply(trim.NewManager(), dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ApplyStats{}) {
		t.Errorf("stats = %+v, want zero", stats)
	}
}
