package metamodel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The paper generates DMIs "from high-level specification, using techniques
// from domain-specific languages" (§4.4; ref [24] is the SLIM-ML memo).
// This file implements that specification language: a compact line-oriented
// text format describing a model, from which slim.GenerateDMI derives the
// data manipulation interface.
//
//	model http://x/model "Tiny"
//	namespace http://x/
//
//	construct Doc "Document"
//	literal   Title string
//	mark      Ref
//
//	connector title  Doc -> Title [1..1]
//	connector notes  Doc -> Note  [0..*]
//	conformance rowOf Row -> Table
//	generalization noteIsDoc Note -> Doc
//
// Names resolve against the declared namespace unless they are full IRIs.
// Literal datatypes are string | integer | decimal | boolean | any.
// '#' starts a comment; blank lines are ignored.

// ParseModelSpec parses the SLIM-ML text format into a Model.
func ParseModelSpec(src string) (*Model, error) {
	var m *Model
	ns := ""
	resolve := func(name string) string {
		if strings.Contains(name, "://") {
			return name
		}
		return ns + name
	}
	datatypes := map[string]string{
		"string":  "http://www.w3.org/2001/XMLSchema#string",
		"integer": "http://www.w3.org/2001/XMLSchema#integer",
		"decimal": "http://www.w3.org/2001/XMLSchema#decimal",
		"boolean": "http://www.w3.org/2001/XMLSchema#boolean",
		"any":     "",
	}

	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		// '#' opens a comment only at line start or after whitespace, so
		// IRIs with fragments (http://x#y) pass through.
		for i := 0; i < len(line); i++ {
			if line[i] == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
				line = strings.TrimSpace(line[:i])
				break
			}
		}
		if line == "" {
			continue
		}
		fields, label, err := splitSpecLine(line)
		if err != nil {
			return nil, fmt.Errorf("metamodel: spec line %d: %v", lineNo, err)
		}
		kw := fields[0]
		if m == nil && kw != "model" {
			return nil, fmt.Errorf("metamodel: spec line %d: the first declaration must be 'model'", lineNo)
		}
		switch kw {
		case "model":
			if m != nil {
				return nil, fmt.Errorf("metamodel: spec line %d: duplicate model declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("metamodel: spec line %d: model needs an IRI", lineNo)
			}
			m = NewModel(fields[1], label)
		case "namespace":
			if len(fields) != 2 {
				return nil, fmt.Errorf("metamodel: spec line %d: namespace needs an IRI prefix", lineNo)
			}
			ns = fields[1]
		case "construct", "literal", "mark":
			if len(fields) < 2 {
				return nil, fmt.Errorf("metamodel: spec line %d: %s needs a name", lineNo, kw)
			}
			c := Construct{ID: resolve(fields[1]), Label: label}
			if c.Label == "" {
				c.Label = fields[1]
			}
			switch kw {
			case "literal":
				c.Kind = KindLiteralConstruct
				if len(fields) >= 3 {
					dt, ok := datatypes[fields[2]]
					if !ok {
						return nil, fmt.Errorf("metamodel: spec line %d: unknown datatype %q", lineNo, fields[2])
					}
					c.Datatype = dt
				}
			case "mark":
				c.Kind = KindMarkConstruct
			}
			if err := m.AddConstruct(c); err != nil {
				return nil, fmt.Errorf("metamodel: spec line %d: %v", lineNo, err)
			}
		case "connector", "conformance", "generalization":
			// <kw> name From -> To [min..max]
			if len(fields) < 5 || fields[3] != "->" {
				return nil, fmt.Errorf("metamodel: spec line %d: expected '%s name From -> To [min..max]'", lineNo, kw)
			}
			conn := Connector{
				ID:    resolve(fields[1]),
				Label: fields[1],
				From:  resolve(fields[2]),
				To:    resolve(fields[4]),
			}
			if label != "" {
				conn.Label = label
			}
			switch kw {
			case "conformance":
				conn.Kind = KindConformance
			case "generalization":
				conn.Kind = KindGeneralization
			default:
				conn.Kind = KindConnector
				conn.MaxCard = Unbounded
			}
			if len(fields) >= 6 {
				if conn.Kind != KindConnector {
					return nil, fmt.Errorf("metamodel: spec line %d: cardinalities only apply to connectors", lineNo)
				}
				min, max, err := parseCard(fields[5])
				if err != nil {
					return nil, fmt.Errorf("metamodel: spec line %d: %v", lineNo, err)
				}
				conn.MinCard, conn.MaxCard = min, max
			}
			if err := m.AddConnector(conn); err != nil {
				return nil, fmt.Errorf("metamodel: spec line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("metamodel: spec line %d: unknown keyword %q", lineNo, kw)
		}
	}
	if m == nil {
		return nil, fmt.Errorf("metamodel: empty model spec")
	}
	return m, nil
}

// splitSpecLine splits a line into whitespace-separated fields, pulling out
// a trailing "quoted label" if present.
func splitSpecLine(line string) (fields []string, label string, err error) {
	if i := strings.IndexByte(line, '"'); i >= 0 {
		rest := line[i+1:]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return nil, "", fmt.Errorf("unterminated label quote")
		}
		if strings.TrimSpace(rest[j+1:]) != "" {
			return nil, "", fmt.Errorf("text after the quoted label")
		}
		label = rest[:j]
		line = strings.TrimSpace(line[:i])
	}
	fields = strings.Fields(line)
	if len(fields) == 0 {
		return nil, "", fmt.Errorf("label without a declaration")
	}
	return fields, label, nil
}

// parseCard parses "[min..max]" where max is a number or '*'.
func parseCard(s string) (int, int, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("cardinality %q must be [min..max]", s)
	}
	a, b, found := strings.Cut(s[1:len(s)-1], "..")
	if !found {
		return 0, 0, fmt.Errorf("cardinality %q must be [min..max]", s)
	}
	min, err := strconv.Atoi(a)
	if err != nil || min < 0 {
		return 0, 0, fmt.Errorf("cardinality %q: bad minimum", s)
	}
	if b == "*" {
		return min, Unbounded, nil
	}
	max, err := strconv.Atoi(b)
	if err != nil || max < min {
		return 0, 0, fmt.Errorf("cardinality %q: bad maximum", s)
	}
	return min, max, nil
}

// FormatModelSpec renders a model in the SLIM-ML text format. The output
// parses back to an equal model (namespaces are not re-inferred; full IRIs
// are written).
func FormatModelSpec(m *Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s %q\n", m.ID, m.Label)
	names := map[string]string{
		"http://www.w3.org/2001/XMLSchema#string":  "string",
		"http://www.w3.org/2001/XMLSchema#integer": "integer",
		"http://www.w3.org/2001/XMLSchema#decimal": "decimal",
		"http://www.w3.org/2001/XMLSchema#boolean": "boolean",
		"": "any",
	}
	constructs := m.Constructs()
	sort.Slice(constructs, func(i, j int) bool { return constructs[i].ID < constructs[j].ID })
	for _, c := range constructs {
		switch c.Kind {
		case KindLiteralConstruct:
			dt, ok := names[c.Datatype]
			if !ok {
				dt = "any"
			}
			fmt.Fprintf(&b, "literal %s %s %q\n", c.ID, dt, c.Label)
		case KindMarkConstruct:
			fmt.Fprintf(&b, "mark %s %q\n", c.ID, c.Label)
		default:
			fmt.Fprintf(&b, "construct %s %q\n", c.ID, c.Label)
		}
	}
	for _, c := range m.Connectors() {
		switch c.Kind {
		case KindConformance:
			fmt.Fprintf(&b, "conformance %s %s -> %s %q\n", c.ID, c.From, c.To, c.Label)
		case KindGeneralization:
			fmt.Fprintf(&b, "generalization %s %s -> %s %q\n", c.ID, c.From, c.To, c.Label)
		default:
			max := "*"
			if c.MaxCard != Unbounded {
				max = strconv.Itoa(c.MaxCard)
			}
			fmt.Fprintf(&b, "connector %s %s -> %s [%d..%s] %q\n", c.ID, c.From, c.To, c.MinCard, max, c.Label)
		}
	}
	return b.String()
}
