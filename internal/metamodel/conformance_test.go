package metamodel

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// conformingInstance writes a valid Doc+Note+Ref instance into the store.
func conformingInstance(store *trim.Manager) {
	doc := rdf.IRI(ns + "i/doc1")
	note := rdf.IRI(ns + "i/note1")
	ref := rdf.IRI(ns + "i/ref1")
	store.Create(rdf.T(doc, rdf.RDFType, rdf.IRI(ns+"Doc")))
	store.Create(rdf.T(doc, rdf.IRI(ns+"title"), rdf.String("A Document")))
	store.Create(rdf.T(doc, rdf.IRI(ns+"notes"), note))
	store.Create(rdf.T(note, rdf.RDFType, rdf.IRI(ns+"Note")))
	// Note is a specialization of Doc, so it needs a title too.
	store.Create(rdf.T(note, rdf.IRI(ns+"title"), rdf.String("A Note")))
	store.Create(rdf.T(note, rdf.IRI(ns+"anchor"), ref))
	store.Create(rdf.T(ref, rdf.RDFType, rdf.IRI(ns+"Ref")))
	store.Create(rdf.T(ref, PropMarkID, rdf.String("mark-1")))
}

func checkKinds(t *testing.T, vios []Violation, want ...ViolationKind) {
	t.Helper()
	if len(vios) != len(want) {
		t.Fatalf("violations = %v, want kinds %v", vios, want)
	}
	for i, k := range want {
		if vios[i].Kind != k {
			t.Errorf("violation[%d] = %v, want kind %v", i, vios[i], k)
		}
	}
}

func TestConformingInstancePasses(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	conformingInstance(store)
	vios := NewChecker(m, store).Check()
	if len(vios) != 0 {
		t.Fatalf("conforming instance has violations: %v", vios)
	}
}

func TestSchemaLaterOrder(t *testing.T) {
	// Instance first, model second — "schema-later" data entry.
	store := trim.NewManager()
	conformingInstance(store)
	m := tinyModel(t)
	if err := Encode(m, store); err != nil { // model arrives after the data
		t.Fatal(err)
	}
	vios := NewChecker(m, store).Check()
	if len(vios) != 0 {
		t.Fatalf("schema-later store has violations: %v", vios)
	}
}

func TestUnknownConstruct(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	store.Create(rdf.T(rdf.IRI(ns+"i/x"), rdf.RDFType, rdf.IRI(ns+"Alien")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioUnknownConstruct)
}

func TestUnknownConnector(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	conformingInstance(store)
	store.Create(rdf.T(rdf.IRI(ns+"i/doc1"), rdf.IRI(ns+"freeform"), rdf.String("x")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioUnknownConnector)
}

func TestDomainViolation(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	conformingInstance(store)
	// A Ref has no 'notes' connector: Ref is not a Doc.
	store.Create(rdf.T(rdf.IRI(ns+"i/ref1"), rdf.IRI(ns+"notes"), rdf.IRI(ns+"i/note1")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioDomain)
}

func TestSpecializationSatisfiesDomain(t *testing.T) {
	// Note IsA Doc, so a Note may carry the 'notes' connector.
	m := tinyModel(t)
	store := trim.NewManager()
	conformingInstance(store)
	note2 := rdf.IRI(ns + "i/note2")
	ref2 := rdf.IRI(ns + "i/ref2")
	store.Create(rdf.T(note2, rdf.RDFType, rdf.IRI(ns+"Note")))
	store.Create(rdf.T(note2, rdf.IRI(ns+"title"), rdf.String("sub-note")))
	store.Create(rdf.T(note2, rdf.IRI(ns+"anchor"), ref2))
	store.Create(rdf.T(ref2, rdf.RDFType, rdf.IRI(ns+"Ref")))
	store.Create(rdf.T(ref2, PropMarkID, rdf.String("mark-2")))
	// Attach note2 under note1, which is legal because Note IsA Doc.
	store.Create(rdf.T(rdf.IRI(ns+"i/note1"), rdf.IRI(ns+"notes"), note2))
	vios := NewChecker(m, store).Check()
	if len(vios) != 0 {
		t.Fatalf("specialized domain rejected: %v", vios)
	}
}

func TestRangeViolation(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	conformingInstance(store)
	// notes must point at a Note, not a Ref.
	store.Create(rdf.T(rdf.IRI(ns+"i/doc1"), rdf.IRI(ns+"notes"), rdf.IRI(ns+"i/ref1")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioRange)
}

func TestLiteralTypeViolations(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	doc := rdf.IRI(ns + "i/doc2")
	store.Create(rdf.T(doc, rdf.RDFType, rdf.IRI(ns+"Doc")))
	// Resource where a literal is required.
	store.Create(rdf.T(doc, rdf.IRI(ns+"title"), rdf.IRI(ns+"i/notalit")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioLiteralType)

	store2 := trim.NewManager()
	doc2 := rdf.IRI(ns + "i/doc3")
	store2.Create(rdf.T(doc2, rdf.RDFType, rdf.IRI(ns+"Doc")))
	// Wrong datatype: integer where a string is required.
	store2.Create(rdf.T(doc2, rdf.IRI(ns+"title"), rdf.Integer(3)))
	vios2 := NewChecker(m, store2).Check()
	checkKinds(t, vios2, VioLiteralType)
}

func TestCardinalityViolations(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	doc := rdf.IRI(ns + "i/doc4")
	store.Create(rdf.T(doc, rdf.RDFType, rdf.IRI(ns+"Doc")))
	// Missing title -> cardinality-low.
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioCardinalityLow)

	// Two titles -> cardinality-high.
	store.Create(rdf.T(doc, rdf.IRI(ns+"title"), rdf.String("one")))
	store.Create(rdf.T(doc, rdf.IRI(ns+"title"), rdf.String("two")))
	vios = NewChecker(m, store).Check()
	checkKinds(t, vios, VioCardinalityHigh)
}

func TestCardinalityAppliesToSpecializations(t *testing.T) {
	// A Note (IsA Doc) without a title violates Doc's title cardinality.
	m := tinyModel(t)
	store := trim.NewManager()
	note := rdf.IRI(ns + "i/lonely")
	ref := rdf.IRI(ns + "i/refL")
	store.Create(rdf.T(note, rdf.RDFType, rdf.IRI(ns+"Note")))
	store.Create(rdf.T(note, rdf.IRI(ns+"anchor"), ref))
	store.Create(rdf.T(ref, rdf.RDFType, rdf.IRI(ns+"Ref")))
	store.Create(rdf.T(ref, PropMarkID, rdf.String("m")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioCardinalityLow)
}

func TestMissingMark(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	ref := rdf.IRI(ns + "i/bareref")
	store.Create(rdf.T(ref, rdf.RDFType, rdf.IRI(ns+"Ref")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioMissingMark)
}

func TestUntypedSubject(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	ghost := rdf.IRI(ns + "i/ghost")
	store.Create(rdf.T(ghost, rdf.IRI(ns+"title"), rdf.String("who am I")))
	vios := NewChecker(m, store).Check()
	checkKinds(t, vios, VioUntyped)
}

func TestViolationStringAndKindNames(t *testing.T) {
	v := Violation{Kind: VioDomain, Subject: rdf.IRI("x"), Detail: "d"}
	if v.String() == "" {
		t.Error("empty Violation.String")
	}
	for k := VioUnknownConstruct; k <= VioUntyped; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if ViolationKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestCheckIgnoresEncodedModelTriples(t *testing.T) {
	// Encoding the model into the same store must not create violations:
	// metamodel bookkeeping is not instance data.
	m := tinyModel(t)
	store := trim.NewManager()
	if err := Encode(m, store); err != nil {
		t.Fatal(err)
	}
	conformingInstance(store)
	vios := NewChecker(m, store).Check()
	if len(vios) != 0 {
		t.Fatalf("model triples misread as instances: %v", vios)
	}
}
