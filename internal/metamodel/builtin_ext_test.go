package metamodel

import (
	"reflect"
	"testing"

	"repro/internal/trim"
)

func TestExtendedBundleScrapModel(t *testing.T) {
	base := BundleScrapModel()
	ext := ExtendedBundleScrapModel()
	if ext.ID == base.ID {
		t.Fatal("extended model shares the base model id")
	}
	// Same constructs, three extra connectors.
	if !reflect.DeepEqual(base.Constructs(), ext.Constructs()) {
		t.Fatal("extended model changed the Fig. 3 constructs")
	}
	if len(ext.Connectors()) != len(base.Connectors())+3 {
		t.Fatalf("connectors = %d, want %d", len(ext.Connectors()), len(base.Connectors())+3)
	}
	for _, id := range []string{ConnScrapNote, ConnScrapLink, ConnTemplateName} {
		if _, ok := ext.Connector(id); !ok {
			t.Errorf("extension connector %s missing", id)
		}
		if _, ok := base.Connector(id); ok {
			t.Errorf("extension connector %s leaked into the base model", id)
		}
	}
}

func TestExtendedModelRoundTrips(t *testing.T) {
	store := trim.NewManager()
	if err := Encode(ExtendedBundleScrapModel(), store); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(store, ExtendedBundleScrapModelID)
	if err != nil {
		t.Fatal(err)
	}
	want := ExtendedBundleScrapModel()
	if !reflect.DeepEqual(want.Connectors(), back.Connectors()) {
		t.Fatal("extended model did not round trip")
	}
}
