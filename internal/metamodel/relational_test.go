package metamodel

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// relationalFixture writes the three levels into one store: the relational
// model (level 3), a Patients schema (level 2: a Table with two Attributes),
// and one row of instance data (level 1: Row with Cells conforming to the
// schema).
func relationalFixture(t *testing.T) (*Model, *trim.Manager, rdf.Term, rdf.Term) {
	t.Helper()
	m := RelationalModel()
	store := trim.NewManager()
	if err := Encode(m, store); err != nil {
		t.Fatal(err)
	}

	table := rdf.IRI(rdf.NSInst + "tbl-patients")
	attrName := rdf.IRI(rdf.NSInst + "attr-name")
	attrMRN := rdf.IRI(rdf.NSInst + "attr-mrn")
	store.Create(rdf.T(table, rdf.RDFType, rdf.IRI(ConstructTable)))
	store.Create(rdf.T(table, rdf.IRI(ConnTableName), rdf.String("Patients")))
	store.Create(rdf.T(attrName, rdf.RDFType, rdf.IRI(ConstructAttribute)))
	store.Create(rdf.T(attrName, rdf.IRI(ConnAttributeName), rdf.String("name")))
	store.Create(rdf.T(attrMRN, rdf.RDFType, rdf.IRI(ConstructAttribute)))
	store.Create(rdf.T(attrMRN, rdf.IRI(ConnAttributeName), rdf.String("mrn")))
	store.Create(rdf.T(table, rdf.IRI(ConnHasAttribute), attrName))
	store.Create(rdf.T(table, rdf.IRI(ConnHasAttribute), attrMRN))

	row := rdf.IRI(rdf.NSInst + "row-1")
	cellName := rdf.IRI(rdf.NSInst + "cell-1-name")
	store.Create(rdf.T(row, rdf.RDFType, rdf.IRI(ConstructRow)))
	store.Create(rdf.T(row, rdf.IRI(ConnRowOfTable), table))
	store.Create(rdf.T(cellName, rdf.RDFType, rdf.IRI(ConstructCell)))
	store.Create(rdf.T(cellName, rdf.IRI(ConnCellOfAttr), attrName))
	store.Create(rdf.T(cellName, rdf.IRI(ConnCellValue), rdf.String("John Smith")))
	store.Create(rdf.T(row, rdf.IRI(ConnRowCell), cellName))
	return m, store, row, table
}

func TestRelationalModelRoundTrips(t *testing.T) {
	m := RelationalModel()
	store := trim.NewManager()
	if err := Encode(m, store); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(store, RelationalModelID)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Constructs()) != 6 || len(back.Connectors()) != 7 {
		t.Fatalf("decoded %d constructs, %d connectors", len(back.Constructs()), len(back.Connectors()))
	}
	// The conformance connectors survive with their kind.
	c, ok := back.Connector(ConnRowOfTable)
	if !ok || c.Kind != KindConformance {
		t.Fatalf("rowOfTable = %+v, %v", c, ok)
	}
}

func TestThreeLevelsConform(t *testing.T) {
	m, store, _, _ := relationalFixture(t)
	// Level-2/level-1 conformance via conformance connectors.
	if vios := CheckSchemaConformance(m, store); len(vios) != 0 {
		t.Fatalf("schema violations: %v", vios)
	}
	// Model-level conformance of everything (schema and instances are both
	// instances of the model's constructs).
	if vios := NewChecker(m, store).Check(); len(vios) != 0 {
		t.Fatalf("model violations: %v", vios)
	}
}

func TestSchemaConformanceMissingReference(t *testing.T) {
	m, store, _, _ := relationalFixture(t)
	orphan := rdf.IRI(rdf.NSInst + "row-orphan")
	store.Create(rdf.T(orphan, rdf.RDFType, rdf.IRI(ConstructRow)))
	vios := CheckSchemaConformance(m, store)
	if len(vios) != 1 || vios[0].Subject != orphan {
		t.Fatalf("violations = %v", vios)
	}
	if vios[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestSchemaConformanceMultipleReferences(t *testing.T) {
	m, store, row, table := relationalFixture(t)
	other := rdf.IRI(rdf.NSInst + "tbl-other")
	store.Create(rdf.T(other, rdf.RDFType, rdf.IRI(ConstructTable)))
	store.Create(rdf.T(other, rdf.IRI(ConnTableName), rdf.String("Other")))
	store.Create(rdf.T(other, rdf.IRI(ConnHasAttribute), rdf.IRI(rdf.NSInst+"attr-name")))
	store.Create(rdf.T(row, rdf.IRI(ConnRowOfTable), other))
	_ = table
	vios := CheckSchemaConformance(m, store)
	if len(vios) != 1 {
		t.Fatalf("violations = %v", vios)
	}
}

func TestSchemaConformanceUntypedTarget(t *testing.T) {
	m, store, _, _ := relationalFixture(t)
	row2 := rdf.IRI(rdf.NSInst + "row-2")
	ghost := rdf.IRI(rdf.NSInst + "not-a-table")
	store.Create(rdf.T(row2, rdf.RDFType, rdf.IRI(ConstructRow)))
	store.Create(rdf.T(row2, rdf.IRI(ConnRowOfTable), ghost))
	vios := CheckSchemaConformance(m, store)
	if len(vios) != 1 {
		t.Fatalf("violations = %v", vios)
	}
}

func TestSchemaConformanceCellOutsideTable(t *testing.T) {
	// A cell conforming to an attribute of a *different* table.
	m, store, row, _ := relationalFixture(t)
	otherTable := rdf.IRI(rdf.NSInst + "tbl-labs")
	otherAttr := rdf.IRI(rdf.NSInst + "attr-code")
	store.Create(rdf.T(otherTable, rdf.RDFType, rdf.IRI(ConstructTable)))
	store.Create(rdf.T(otherTable, rdf.IRI(ConnTableName), rdf.String("Labs")))
	store.Create(rdf.T(otherAttr, rdf.RDFType, rdf.IRI(ConstructAttribute)))
	store.Create(rdf.T(otherAttr, rdf.IRI(ConnAttributeName), rdf.String("code")))
	store.Create(rdf.T(otherTable, rdf.IRI(ConnHasAttribute), otherAttr))

	badCell := rdf.IRI(rdf.NSInst + "cell-bad")
	store.Create(rdf.T(badCell, rdf.RDFType, rdf.IRI(ConstructCell)))
	store.Create(rdf.T(badCell, rdf.IRI(ConnCellOfAttr), otherAttr))
	store.Create(rdf.T(badCell, rdf.IRI(ConnCellValue), rdf.String("oops")))
	store.Create(rdf.T(row, rdf.IRI(ConnRowCell), badCell))

	vios := CheckSchemaConformance(m, store)
	found := false
	for _, v := range vios {
		if v.Subject == badCell {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-table cell not reported: %v", vios)
	}
}

func TestSchemaLaterThreeLevels(t *testing.T) {
	// Instances first, schema second, model last: full schema-later.
	store := trim.NewManager()
	row := rdf.IRI(rdf.NSInst + "row-1")
	table := rdf.IRI(rdf.NSInst + "tbl-patients")
	store.Create(rdf.T(row, rdf.RDFType, rdf.IRI(ConstructRow)))
	store.Create(rdf.T(row, rdf.IRI(ConnRowOfTable), table))
	// Schema arrives.
	store.Create(rdf.T(table, rdf.RDFType, rdf.IRI(ConstructTable)))
	store.Create(rdf.T(table, rdf.IRI(ConnTableName), rdf.String("Patients")))
	attr := rdf.IRI(rdf.NSInst + "attr-a")
	store.Create(rdf.T(attr, rdf.RDFType, rdf.IRI(ConstructAttribute)))
	store.Create(rdf.T(attr, rdf.IRI(ConnAttributeName), rdf.String("a")))
	store.Create(rdf.T(table, rdf.IRI(ConnHasAttribute), attr))
	// Model arrives last.
	m := RelationalModel()
	if err := Encode(m, store); err != nil {
		t.Fatal(err)
	}
	if vios := CheckSchemaConformance(m, store); len(vios) != 0 {
		t.Fatalf("schema-later violations: %v", vios)
	}
}
