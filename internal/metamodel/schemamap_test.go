package metamodel

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// twoTableFixture builds two schemas (Patients: name,mrn; People: fullName)
// plus one Patients row with both cells.
func twoTableFixture(t *testing.T) (*trim.Manager, rdf.Term, rdf.Term, rdf.Term, rdf.Term, rdf.Term) {
	t.Helper()
	_, store, row, patients := relationalFixture(t)
	attrName := rdf.IRI(rdf.NSInst + "attr-name")

	people := rdf.IRI(rdf.NSInst + "tbl-people")
	attrFull := rdf.IRI(rdf.NSInst + "attr-fullname")
	store.Create(rdf.T(people, rdf.RDFType, rdf.IRI(ConstructTable)))
	store.Create(rdf.T(people, rdf.IRI(ConnTableName), rdf.String("People")))
	store.Create(rdf.T(attrFull, rdf.RDFType, rdf.IRI(ConstructAttribute)))
	store.Create(rdf.T(attrFull, rdf.IRI(ConnAttributeName), rdf.String("fullName")))
	store.Create(rdf.T(people, rdf.IRI(ConnHasAttribute), attrFull))

	// Add an MRN cell to the row so there is an unmapped column.
	attrMRN := rdf.IRI(rdf.NSInst + "attr-mrn")
	cellMRN := rdf.IRI(rdf.NSInst + "cell-1-mrn")
	store.Create(rdf.T(cellMRN, rdf.RDFType, rdf.IRI(ConstructCell)))
	store.Create(rdf.T(cellMRN, rdf.IRI(ConnCellOfAttr), attrMRN))
	store.Create(rdf.T(cellMRN, rdf.IRI(ConnCellValue), rdf.String("MRN123")))
	store.Create(rdf.T(row, rdf.IRI(ConnRowCell), cellMRN))

	return store, row, patients, people, attrName, attrFull
}

func TestSchemaMappingApply(t *testing.T) {
	store, row, patients, people, attrName, attrFull := twoTableFixture(t)
	sm, err := NewSchemaMapping(store, patients, people)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.MapAttribute(store, attrName, attrFull); err != nil {
		t.Fatal(err)
	}
	rows, dropped, err := sm.Apply(store)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 || dropped != 1 {
		t.Fatalf("rows=%d dropped=%d", rows, dropped)
	}
	// The row now conforms to People.
	if !store.Has(rdf.T(row, rdf.IRI(ConnRowOfTable), people)) {
		t.Fatal("row not moved to target table")
	}
	if store.Has(rdf.T(row, rdf.IRI(ConnRowOfTable), patients)) {
		t.Fatal("row still in source table")
	}
	// The name cell re-anchored to fullName.
	cellName := rdf.IRI(rdf.NSInst + "cell-1-name")
	if !store.Has(rdf.T(cellName, rdf.IRI(ConnCellOfAttr), attrFull)) {
		t.Fatal("cell not re-anchored")
	}
	// Schema conformance holds after the mapping.
	if vios := CheckSchemaConformance(RelationalModel(), store); len(vios) != 0 {
		t.Fatalf("post-mapping violations: %v", vios)
	}
}

func TestSchemaMappingValidation(t *testing.T) {
	store, _, patients, people, attrName, attrFull := twoTableFixture(t)
	ghost := rdf.IRI(rdf.NSInst + "ghost")
	if _, err := NewSchemaMapping(store, ghost, people); err == nil {
		t.Error("ghost source table accepted")
	}
	if _, err := NewSchemaMapping(store, patients, ghost); err == nil {
		t.Error("ghost target table accepted")
	}
	sm, _ := NewSchemaMapping(store, patients, people)
	if err := sm.MapAttribute(store, attrFull, attrFull); err == nil {
		t.Error("attribute outside source table accepted")
	}
	if err := sm.MapAttribute(store, attrName, attrName); err == nil {
		t.Error("attribute outside target table accepted")
	}
}

func TestPromoteSchemaAndFlatten(t *testing.T) {
	store, row, patients, _, _, _ := twoTableFixture(t)
	promoted, err := PromoteSchema(store, patients, "http://promoted/patients")
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Label != "Patients" {
		t.Errorf("label = %q", promoted.Label)
	}
	// One entity construct + one literal construct; one connector per
	// attribute (name, mrn).
	if len(promoted.Constructs()) != 2 {
		t.Fatalf("constructs = %v", promoted.Constructs())
	}
	if len(promoted.Connectors()) != 2 {
		t.Fatalf("connectors = %v", promoted.Connectors())
	}

	dst := trim.NewManager()
	n, err := FlattenRows(store, patients, promoted, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("flattened = %d", n)
	}
	// The row is now a direct instance with direct property values.
	if !dst.Has(rdf.T(row, rdf.RDFType, rdf.IRI("http://promoted/patients#Patients"))) {
		t.Fatal("row not typed by promoted construct")
	}
	vals := dst.Objects(row, rdf.IRI("http://promoted/patients#name"))
	if len(vals) != 1 || vals[0].Value() != "John Smith" {
		t.Fatalf("name values = %v", vals)
	}
	// The flattened instance conforms to the promoted model.
	if vios := NewChecker(promoted, dst).Check(); len(vios) != 0 {
		t.Fatalf("promoted-model violations: %v", vios)
	}
}

func TestPromoteSchemaErrors(t *testing.T) {
	store, _, _, _, _, _ := twoTableFixture(t)
	if _, err := PromoteSchema(store, rdf.IRI(rdf.NSInst+"ghost"), "http://m"); err == nil {
		t.Error("ghost table promoted")
	}
	// A table without a name cannot be promoted.
	bare := rdf.IRI(rdf.NSInst + "tbl-bare")
	store.Create(rdf.T(bare, rdf.RDFType, rdf.IRI(ConstructTable)))
	if _, err := PromoteSchema(store, bare, "http://m"); err == nil {
		t.Error("nameless table promoted")
	}
}

func TestSanitizeLocal(t *testing.T) {
	cases := map[string]string{
		"Patients":    "Patients",
		"full name":   "full_name",
		"a-b/c":       "a_b_c",
		"":            "_",
		"héllo":       "h_llo",
		"Table2024Q1": "Table2024Q1",
	}
	for in, want := range cases {
		if got := sanitizeLocal(in); got != want {
			t.Errorf("sanitizeLocal(%q) = %q, want %q", in, got, want)
		}
	}
}
