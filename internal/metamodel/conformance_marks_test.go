package metamodel

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// Regression: mark triples persisted by the Mark Manager into the same
// store must not trip model conformance — the mark namespace belongs to the
// architecture, not to any superimposed model.
func TestCheckIgnoresMarkManagerTriples(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	conformingInstance(store)

	// What mark.Manager.SaveTo writes, inlined to avoid an import cycle.
	iri := rdf.IRI(rdf.NSMark + "id/mark-000001")
	store.Create(rdf.T(iri, rdf.RDFType, rdf.IRI(rdf.NSMark+"Mark")))
	store.Create(rdf.T(iri, rdf.RDFType, rdf.IRI(rdf.NSMark+"SpreadsheetMark")))
	store.Create(rdf.T(iri, rdf.IRI(rdf.NSMark+"scheme"), rdf.String("spreadsheet")))
	store.Create(rdf.T(iri, rdf.IRI(rdf.NSMark+"file"), rdf.String("meds.xls")))
	store.Create(rdf.T(iri, rdf.IRI(rdf.NSMark+"path"), rdf.String("Meds!A2")))
	store.Create(rdf.T(iri, rdf.IRI(rdf.NSMark+"excerpt"), rdf.String("Furosemide")))

	vios := NewChecker(m, store).Check()
	if len(vios) != 0 {
		t.Fatalf("mark triples tripped conformance: %v", vios)
	}
}
