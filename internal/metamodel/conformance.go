package metamodel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// Conformance checking realizes the "schema-later" principle: instance
// triples are written freely, and a model is applied to them after the fact.
// A Violation describes one way the instance data fails to conform.

// ViolationKind classifies conformance violations.
type ViolationKind int

const (
	// VioUnknownConstruct: an instance is typed by a construct absent from
	// the model.
	VioUnknownConstruct ViolationKind = iota
	// VioUnknownConnector: a triple uses a property IRI that is not a
	// connector of the model (and is not a reserved vocabulary property).
	VioUnknownConnector
	// VioDomain: a connector is used on a subject whose construct does not
	// match (or specialize) the connector's From construct.
	VioDomain
	// VioRange: a connector's object does not match the To construct.
	VioRange
	// VioCardinalityLow: fewer than MinCard values.
	VioCardinalityLow
	// VioCardinalityHigh: more than MaxCard values.
	VioCardinalityHigh
	// VioLiteralType: a literal construct value has the wrong datatype or
	// is not a literal.
	VioLiteralType
	// VioMissingMark: an instance of a mark construct lacks a mark:markId.
	VioMissingMark
	// VioUntyped: a resource uses connectors but has no rdf:type.
	VioUntyped
)

// String names the violation kind.
func (k ViolationKind) String() string {
	names := map[ViolationKind]string{
		VioUnknownConstruct: "unknown-construct",
		VioUnknownConnector: "unknown-connector",
		VioDomain:           "domain",
		VioRange:            "range",
		VioCardinalityLow:   "cardinality-low",
		VioCardinalityHigh:  "cardinality-high",
		VioLiteralType:      "literal-type",
		VioMissingMark:      "missing-mark",
		VioUntyped:          "untyped",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("ViolationKind(%d)", int(k))
}

// Violation is one conformance failure.
type Violation struct {
	Kind    ViolationKind
	Subject rdf.Term
	Detail  string
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Kind, v.Subject, v.Detail)
}

// Checker validates instance triples in a store against a model.
type Checker struct {
	model *Model
	store *trim.Manager
}

// NewChecker returns a checker for the model over the store.
func NewChecker(m *Model, store *trim.Manager) *Checker {
	return &Checker{model: m, store: store}
}

// reserved properties that instance data may always use. The whole mark
// namespace is reserved: mark triples (scheme, file, path, excerpt, markId)
// belong to the Mark Management component, not to any superimposed model.
func isReservedProperty(p rdf.Term) bool {
	switch p {
	case rdf.RDFType, rdf.RDFSLabel, rdf.RDFSComment, PropInModel:
		return true
	}
	if strings.HasPrefix(p.Value(), rdf.NSMark) {
		return true
	}
	switch p.Value() {
	case PropFrom.Value(), PropTo.Value(), PropMinCard.Value(), PropMaxCard.Value(), PropDatatype.Value():
		return true
	}
	return false
}

// Check validates every instance of the model's constructs found in the
// store and returns all violations, deterministically ordered. An empty
// result means the instance data conforms.
func (c *Checker) Check() []Violation {
	var out []Violation

	instances := c.instancesByConstruct()

	// 1. Instances typed by unknown constructs, and construct-level checks.
	for constructID, insts := range instances {
		construct, ok := c.model.Construct(constructID)
		if !ok {
			for _, inst := range insts {
				out = append(out, Violation{
					Kind: VioUnknownConstruct, Subject: inst,
					Detail: fmt.Sprintf("typed by %s which is not in model %s", constructID, c.model.ID),
				})
			}
			continue
		}
		for _, inst := range insts {
			if construct.Kind == KindMarkConstruct {
				if len(c.store.Objects(inst, PropMarkID)) == 0 {
					out = append(out, Violation{
						Kind: VioMissingMark, Subject: inst,
						Detail: fmt.Sprintf("instance of mark construct %s has no %s", constructID, PropMarkID.Value()),
					})
				}
			}
		}
	}

	// 2. Connector usage: domain, range, literal types.
	for _, conn := range c.model.Connectors() {
		if conn.Kind != KindConnector {
			continue
		}
		usages := c.store.Select(rdf.P(rdf.Zero, rdf.IRI(conn.ID), rdf.Zero))
		for _, t := range usages {
			out = append(out, c.checkUsage(conn, t)...)
		}
		// Cardinality: every instance of the From construct must have
		// between MinCard and MaxCard values.
		for _, inst := range c.instancesOf(conn.From) {
			n := len(c.store.Objects(inst, rdf.IRI(conn.ID)))
			if n < conn.MinCard {
				out = append(out, Violation{
					Kind: VioCardinalityLow, Subject: inst,
					Detail: fmt.Sprintf("%s has %d values of %s, model requires at least %d", inst.Value(), n, conn.Label, conn.MinCard),
				})
			}
			if conn.MaxCard != Unbounded && n > conn.MaxCard {
				out = append(out, Violation{
					Kind: VioCardinalityHigh, Subject: inst,
					Detail: fmt.Sprintf("%s has %d values of %s, model allows at most %d", inst.Value(), n, conn.Label, conn.MaxCard),
				})
			}
		}
	}

	// 3. Properties that are neither connectors nor reserved, used by typed
	// instances of this model.
	known := map[string]bool{}
	for _, conn := range c.model.Connectors() {
		known[conn.ID] = true
	}
	typed := map[rdf.Term]bool{}
	for _, insts := range instances {
		for _, i := range insts {
			typed[i] = true
		}
	}
	seen := map[string]bool{}
	for inst := range typed {
		for _, t := range c.store.Select(rdf.P(inst, rdf.Zero, rdf.Zero)) {
			p := t.Predicate
			if isReservedProperty(p) || known[p.Value()] {
				continue
			}
			key := inst.Value() + "\x00" + p.Value()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Violation{
				Kind: VioUnknownConnector, Subject: inst,
				Detail: fmt.Sprintf("uses property %s which is not a connector of model %s", p.Value(), c.model.ID),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if c := out[i].Subject.Compare(out[j].Subject); c != 0 {
			return c < 0
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

func (c *Checker) checkUsage(conn Connector, t rdf.Triple) []Violation {
	var out []Violation
	// Domain: the subject must be typed by From (or a specialization).
	if !c.hasType(t.Subject, conn.From) {
		kind := VioDomain
		detail := fmt.Sprintf("subject of %s must be a %s", conn.Label, conn.From)
		if len(c.store.Objects(t.Subject, rdf.RDFType)) == 0 {
			kind = VioUntyped
			detail = fmt.Sprintf("subject of %s has no type (expected %s)", conn.Label, conn.From)
		}
		out = append(out, Violation{Kind: kind, Subject: t.Subject, Detail: detail})
	}
	// Range: depends on the To construct's kind.
	to, ok := c.model.Construct(conn.To)
	if !ok {
		return out // model.Validate would have caught this
	}
	switch to.Kind {
	case KindLiteralConstruct:
		if !t.Object.IsLiteral() {
			out = append(out, Violation{
				Kind: VioLiteralType, Subject: t.Subject,
				Detail: fmt.Sprintf("value of %s must be a literal, got %s", conn.Label, t.Object),
			})
		} else if to.Datatype != "" && t.Object.Datatype() != to.Datatype {
			out = append(out, Violation{
				Kind: VioLiteralType, Subject: t.Subject,
				Detail: fmt.Sprintf("value of %s must have datatype %s, got %s", conn.Label, to.Datatype, t.Object.Datatype()),
			})
		}
	default:
		if !t.Object.IsResource() || !c.hasType(t.Object, conn.To) {
			out = append(out, Violation{
				Kind: VioRange, Subject: t.Subject,
				Detail: fmt.Sprintf("value of %s must be a %s, got %s", conn.Label, conn.To, t.Object),
			})
		}
	}
	return out
}

// hasType reports whether inst is typed by construct or any specialization
// of it.
func (c *Checker) hasType(inst rdf.Term, construct string) bool {
	if !inst.IsResource() {
		return false
	}
	for _, ty := range c.store.Objects(inst, rdf.RDFType) {
		if ty.Value() == construct {
			return true
		}
		if c.model.IsA(ty.Value(), construct) {
			return true
		}
	}
	return false
}

// instancesByConstruct groups typed instances by their construct IRI,
// considering only constructs that belong to this model or appear in
// rdf:type triples whose object is not a metamodel class.
func (c *Checker) instancesByConstruct() map[string][]rdf.Term {
	out := make(map[string][]rdf.Term)
	for _, t := range c.store.Select(rdf.P(rdf.Zero, rdf.RDFType, rdf.Zero)) {
		obj := t.Object
		// Skip metamodel bookkeeping triples (constructs typed as
		// slim:Construct etc., models typed slim:Model).
		if _, isMeta := classKind(obj); isMeta {
			continue
		}
		if _, isMetaConn := classConnKind(obj); isMetaConn {
			continue
		}
		if obj == ClassModel {
			continue
		}
		// Skip Mark Manager bookkeeping: resources typed by classes in the
		// mark namespace (mark:Mark and its per-scheme subclasses).
		if strings.HasPrefix(obj.Value(), rdf.NSMark) {
			continue
		}
		// Every remaining typed instance is checked; a type outside the
		// model is reported as VioUnknownConstruct. Callers validating one
		// model of a multi-model store should check against a view of that
		// model's instances rather than the whole store.
		out[obj.Value()] = append(out[obj.Value()], t.Subject)
	}
	return out
}

// instancesOf returns instances typed exactly by the construct or by one of
// its specializations.
func (c *Checker) instancesOf(constructID string) []rdf.Term {
	set := map[rdf.Term]bool{}
	for _, s := range c.store.Subjects(rdf.RDFType, rdf.IRI(constructID)) {
		set[s] = true
	}
	// Specializations: any construct that IsA constructID.
	for _, sub := range c.model.Constructs() {
		if sub.ID != constructID && c.model.IsA(sub.ID, constructID) {
			for _, s := range c.store.Subjects(rdf.RDFType, rdf.IRI(sub.ID)) {
				set[s] = true
			}
		}
	}
	out := make([]rdf.Term, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
