package metamodel

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/trim"
)

// randomModel builds a model from fuzzed bytes: constructs of varying kinds
// and connectors between random endpoints (invalid combinations are skipped
// by construction, mirroring how AddConnector guards).
func randomModel(seed []uint8) *Model {
	m := NewModel("http://prop/model", "prop")
	kinds := []ConstructKind{KindConstruct, KindLiteralConstruct, KindMarkConstruct}
	nCon := 2 + int(seedAt(seed, 0))%6
	for i := 0; i < nCon; i++ {
		k := kinds[int(seedAt(seed, i+1))%len(kinds)]
		c := Construct{
			ID:    fmt.Sprintf("http://prop/C%d", i),
			Kind:  k,
			Label: fmt.Sprintf("C%d", i),
		}
		if k == KindLiteralConstruct && seedAt(seed, i+2)%2 == 0 {
			c.Datatype = "http://www.w3.org/2001/XMLSchema#string"
		}
		m.AddConstruct(c)
	}
	cs := m.Constructs()
	nConn := int(seedAt(seed, 7)) % 8
	for i := 0; i < nConn; i++ {
		from := cs[int(seedAt(seed, 8+i))%len(cs)]
		to := cs[int(seedAt(seed, 16+i))%len(cs)]
		kind := KindConnector
		switch seedAt(seed, 24+i) % 3 {
		case 1:
			kind = KindConformance
		case 2:
			kind = KindGeneralization
		}
		min := int(seedAt(seed, 32+i)) % 3
		max := min + int(seedAt(seed, 40+i))%3
		if seedAt(seed, 48+i)%2 == 0 {
			max = Unbounded
		}
		// AddConnector rejects invalid combinations; ignore those.
		m.AddConnector(Connector{
			ID:      fmt.Sprintf("http://prop/conn%d", i),
			Kind:    kind,
			Label:   fmt.Sprintf("conn%d", i),
			From:    from.ID,
			To:      to.ID,
			MinCard: min,
			MaxCard: max,
		})
	}
	return m
}

func seedAt(seed []uint8, i int) uint8 {
	if len(seed) == 0 {
		return 0
	}
	return seed[i%len(seed)]
}

// Property: every constructible model survives Encode/Decode exactly.
func TestModelEncodeDecodeProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		m := randomModel(seed)
		store := trim.NewManager()
		if err := Encode(m, store); err != nil {
			return false
		}
		back, err := Decode(store, m.ID)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m.Constructs(), back.Constructs()) &&
			reflect.DeepEqual(m.Connectors(), back.Connectors()) &&
			back.Label == m.Label
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: IsA is reflexive for registered constructs and transitive
// through generalization chains of any constructible model.
func TestIsAProperties(t *testing.T) {
	f := func(seed []uint8) bool {
		m := randomModel(seed)
		for _, c := range m.Constructs() {
			if !m.IsA(c.ID, c.ID) {
				return false
			}
			for _, g := range m.Generalizations(c.ID) {
				if !m.IsA(c.ID, g) {
					return false
				}
				// Transitivity: generals of my generals are my generals.
				for _, gg := range m.Generalizations(g) {
					if gg != c.ID && !m.IsA(c.ID, gg) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
