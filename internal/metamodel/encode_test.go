package metamodel

import (
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/trim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := tinyModel(t)
	store := trim.NewManager()
	if err := Encode(m, store); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(store, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != m.ID || back.Label != m.Label {
		t.Fatalf("identity lost: %q %q", back.ID, back.Label)
	}
	if !reflect.DeepEqual(m.Constructs(), back.Constructs()) {
		t.Errorf("constructs differ:\n%v\n%v", m.Constructs(), back.Constructs())
	}
	if !reflect.DeepEqual(m.Connectors(), back.Connectors()) {
		t.Errorf("connectors differ:\n%v\n%v", m.Connectors(), back.Connectors())
	}
}

func TestEncodeBundleScrapRoundTrip(t *testing.T) {
	m := BundleScrapModel()
	store := trim.NewManager()
	if err := Encode(m, store); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(store, BundleScrapModelID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Constructs(), back.Constructs()) ||
		!reflect.DeepEqual(m.Connectors(), back.Connectors()) {
		t.Fatal("Bundle-Scrap model did not round trip")
	}
}

func TestEncodeTwoModelsSameStore(t *testing.T) {
	// The paper's flexibility claim: one store, several models.
	store := trim.NewManager()
	if err := Encode(BundleScrapModel(), store); err != nil {
		t.Fatal(err)
	}
	if err := Encode(AnnotationModel(), store); err != nil {
		t.Fatal(err)
	}
	models := ListModels(store)
	if len(models) != 2 {
		t.Fatalf("ListModels = %v, want 2 models", models)
	}
	bs, err := Decode(store, BundleScrapModelID)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := Decode(store, AnnotationModelID)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Constructs()) != 7 {
		t.Errorf("Bundle-Scrap constructs = %d, want 7", len(bs.Constructs()))
	}
	if len(ann.Constructs()) != 4 {
		t.Errorf("Annotation constructs = %d, want 4", len(ann.Constructs()))
	}
	// Decoding one model must not pick up the other's members.
	if _, ok := bs.Construct(ConstructAnnotation); ok {
		t.Error("Bundle-Scrap model absorbed annotation construct")
	}
}

func TestDecodeMissingModel(t *testing.T) {
	store := trim.NewManager()
	if _, err := Decode(store, "http://nope/model"); err == nil {
		t.Fatal("Decode of absent model succeeded")
	}
}

func TestDecodeCorruptMember(t *testing.T) {
	store := trim.NewManager()
	model := rdf.IRI(ns + "m")
	store.Create(rdf.T(model, rdf.RDFType, ClassModel))
	// Member with no metamodel type.
	ghost := rdf.IRI(ns + "ghost")
	store.Create(rdf.T(ghost, PropInModel, model))
	if _, err := Decode(store, ns+"m"); err == nil {
		t.Fatal("Decode accepted untyped member")
	}
}

func TestDecodeConnectorMissingEndpoints(t *testing.T) {
	store := trim.NewManager()
	model := rdf.IRI(ns + "m")
	store.Create(rdf.T(model, rdf.RDFType, ClassModel))
	conn := rdf.IRI(ns + "c")
	store.Create(rdf.T(conn, rdf.RDFType, ClassConnector))
	store.Create(rdf.T(conn, PropInModel, model))
	// from/to/minCard/maxCard all missing.
	if _, err := Decode(store, ns+"m"); err == nil {
		t.Fatal("Decode accepted connector without endpoints")
	}
}

func TestDecodeDoubleTypedMember(t *testing.T) {
	store := trim.NewManager()
	model := rdf.IRI(ns + "m")
	store.Create(rdf.T(model, rdf.RDFType, ClassModel))
	x := rdf.IRI(ns + "x")
	store.Create(rdf.T(x, rdf.RDFType, ClassConstruct))
	store.Create(rdf.T(x, rdf.RDFType, ClassConnector))
	store.Create(rdf.T(x, PropInModel, model))
	if _, err := Decode(store, ns+"m"); err == nil {
		t.Fatal("Decode accepted member typed as both construct and connector")
	}
}

func TestEncodePersistReload(t *testing.T) {
	// Model survives the XML persistence path end to end.
	store := trim.NewManager()
	if err := Encode(BundleScrapModel(), store); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.xml"
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	store2 := trim.NewManager()
	if err := store2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(store2, BundleScrapModelID)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Connectors()) != len(BundleScrapModel().Connectors()) {
		t.Fatal("model lost connectors across persistence")
	}
}
