// Package metamodel implements the paper's metamodel for superimposed
// information (§4.3): "the metamodel consists of a basic set of abstractions
// to define model constructs and relationships (called connectors). ...
// Currently, the metamodel contains only a subset of primitives: constructs,
// which define a unit of structure; literal constructs for primitive type
// definitions; mark constructs for delineating marks; connectors, which
// describe basic relationships; conformance connectors for schema-instance
// relationships; and generalization connectors for specialization
// relationships."
//
// A Model is a set of constructs and connectors. Models are encoded to and
// from RDF triples (see encode.go) using an RDF-Schema-based vocabulary, and
// instance data stored in a TRIM manager can be checked for conformance
// against a model (see conformance.go). Because conformance is checked on
// demand, data entry is "schema-later": instances may be written before any
// model or schema exists.
package metamodel

import (
	"errors"
	"fmt"
	"sort"
)

// ConstructKind distinguishes the three construct primitives.
type ConstructKind int

const (
	// KindConstruct is a plain unit of structure (e.g. Bundle, Scrap).
	KindConstruct ConstructKind = iota
	// KindLiteralConstruct defines a primitive-typed value (e.g. a name).
	KindLiteralConstruct
	// KindMarkConstruct delineates a mark reference into the base layer.
	KindMarkConstruct
)

// String returns the kind name as used in the RDF encoding.
func (k ConstructKind) String() string {
	switch k {
	case KindConstruct:
		return "Construct"
	case KindLiteralConstruct:
		return "LiteralConstruct"
	case KindMarkConstruct:
		return "MarkConstruct"
	default:
		return fmt.Sprintf("ConstructKind(%d)", int(k))
	}
}

// ConnectorKind distinguishes the three connector primitives.
type ConnectorKind int

const (
	// KindConnector is a basic relationship between constructs.
	KindConnector ConnectorKind = iota
	// KindConformance relates an instance-level construct to its
	// schema-level construct (schema-instance relationship).
	KindConformance
	// KindGeneralization relates a specialized construct to a general one.
	KindGeneralization
)

// String returns the kind name as used in the RDF encoding.
func (k ConnectorKind) String() string {
	switch k {
	case KindConnector:
		return "Connector"
	case KindConformance:
		return "ConformanceConnector"
	case KindGeneralization:
		return "GeneralizationConnector"
	default:
		return fmt.Sprintf("ConnectorKind(%d)", int(k))
	}
}

// Unbounded marks a connector with no upper cardinality limit.
const Unbounded = -1

// Construct is one unit of structure in a superimposed model.
type Construct struct {
	// ID is the construct's IRI; unique within a model.
	ID string
	// Kind selects among construct, literal construct, and mark construct.
	Kind ConstructKind
	// Label is the human-readable name.
	Label string
	// Datatype is the literal datatype IRI; meaningful only for literal
	// constructs ("" means any literal).
	Datatype string
}

// Connector is a relationship between two constructs.
type Connector struct {
	// ID is the connector's IRI; unique within a model.
	ID string
	// Kind selects among basic, conformance, and generalization connectors.
	Kind ConnectorKind
	// Label is the human-readable name.
	Label string
	// From and To are the IRIs of the related constructs (From is the
	// domain / specialized side, To the range / general side).
	From, To string
	// MinCard and MaxCard bound how many To-instances each From-instance
	// may relate to through this connector. MaxCard == Unbounded means no
	// upper bound. Cardinalities apply only to basic connectors.
	MinCard, MaxCard int
}

// Model is a named collection of constructs and connectors — one
// superimposed data model (e.g. the Bundle-Scrap model, or an annotation
// model).
type Model struct {
	// ID is the model's IRI.
	ID string
	// Label is the human-readable model name.
	Label string

	constructs map[string]*Construct
	connectors map[string]*Connector
}

// NewModel returns an empty model with the given IRI and label.
func NewModel(id, label string) *Model {
	return &Model{
		ID:         id,
		Label:      label,
		constructs: make(map[string]*Construct),
		connectors: make(map[string]*Connector),
	}
}

// Errors reported by model mutation and lookup.
var (
	ErrDuplicateConstruct = errors.New("metamodel: duplicate construct")
	ErrDuplicateConnector = errors.New("metamodel: duplicate connector")
	ErrUnknownConstruct   = errors.New("metamodel: unknown construct")
	ErrUnknownConnector   = errors.New("metamodel: unknown connector")
	ErrEmptyID            = errors.New("metamodel: empty id")
	ErrBadCardinality     = errors.New("metamodel: invalid cardinality")
	ErrBadGeneralization  = errors.New("metamodel: generalization must relate constructs of the same kind")
)

// AddConstruct registers a construct. The ID must be non-empty and unused.
func (m *Model) AddConstruct(c Construct) error {
	if c.ID == "" {
		return fmt.Errorf("%w (construct label %q)", ErrEmptyID, c.Label)
	}
	if _, ok := m.constructs[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateConstruct, c.ID)
	}
	if _, ok := m.connectors[c.ID]; ok {
		return fmt.Errorf("%w: %s (id already names a connector)", ErrDuplicateConstruct, c.ID)
	}
	cp := c
	m.constructs[c.ID] = &cp
	return nil
}

// AddConnector registers a connector. Both endpoints must already exist as
// constructs; generalization connectors must relate constructs of the same
// kind; cardinalities must satisfy 0 <= MinCard and (MaxCard == Unbounded or
// MaxCard >= MinCard).
func (m *Model) AddConnector(c Connector) error {
	if c.ID == "" {
		return fmt.Errorf("%w (connector label %q)", ErrEmptyID, c.Label)
	}
	if _, ok := m.connectors[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateConnector, c.ID)
	}
	if _, ok := m.constructs[c.ID]; ok {
		return fmt.Errorf("%w: %s (id already names a construct)", ErrDuplicateConnector, c.ID)
	}
	from, ok := m.constructs[c.From]
	if !ok {
		return fmt.Errorf("%w: connector %s from %s", ErrUnknownConstruct, c.ID, c.From)
	}
	to, ok := m.constructs[c.To]
	if !ok {
		return fmt.Errorf("%w: connector %s to %s", ErrUnknownConstruct, c.ID, c.To)
	}
	if c.Kind == KindGeneralization && from.Kind != to.Kind {
		return fmt.Errorf("%w: %s (%s -> %s)", ErrBadGeneralization, c.ID, from.Kind, to.Kind)
	}
	if c.MinCard < 0 || (c.MaxCard != Unbounded && c.MaxCard < c.MinCard) {
		return fmt.Errorf("%w: connector %s [%d..%d]", ErrBadCardinality, c.ID, c.MinCard, c.MaxCard)
	}
	if c.Kind != KindConnector {
		// Cardinalities only apply to basic connectors; normalize so models
		// compare equal regardless of how they were assembled.
		c.MinCard, c.MaxCard = 0, 0
	}
	cp := c
	m.connectors[c.ID] = &cp
	return nil
}

// Construct looks up a construct by IRI.
func (m *Model) Construct(id string) (Construct, bool) {
	c, ok := m.constructs[id]
	if !ok {
		return Construct{}, false
	}
	return *c, true
}

// Connector looks up a connector by IRI.
func (m *Model) Connector(id string) (Connector, bool) {
	c, ok := m.connectors[id]
	if !ok {
		return Connector{}, false
	}
	return *c, true
}

// Constructs returns all constructs sorted by ID.
func (m *Model) Constructs() []Construct {
	out := make([]Construct, 0, len(m.constructs))
	for _, c := range m.constructs {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Connectors returns all connectors sorted by ID.
func (m *Model) Connectors() []Connector {
	out := make([]Connector, 0, len(m.connectors))
	for _, c := range m.connectors {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ConnectorsFrom returns the basic connectors whose From side is the given
// construct, sorted by ID.
func (m *Model) ConnectorsFrom(constructID string) []Connector {
	var out []Connector
	for _, c := range m.connectors {
		if c.Kind == KindConnector && c.From == constructID {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Generalizations returns, for the given construct, the transitive set of
// more-general construct IRIs (excluding itself), following generalization
// connectors. Cycles are tolerated.
func (m *Model) Generalizations(constructID string) []string {
	seen := map[string]bool{constructID: true}
	var out []string
	frontier := []string{constructID}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, c := range m.connectors {
			if c.Kind != KindGeneralization || c.From != cur {
				continue
			}
			if seen[c.To] {
				continue
			}
			seen[c.To] = true
			out = append(out, c.To)
			frontier = append(frontier, c.To)
		}
	}
	sort.Strings(out)
	return out
}

// IsA reports whether construct sub is the same as, or a (transitive)
// specialization of, construct super.
func (m *Model) IsA(sub, super string) bool {
	if sub == super {
		_, ok := m.constructs[sub]
		return ok
	}
	for _, g := range m.Generalizations(sub) {
		if g == super {
			return true
		}
	}
	return false
}

// Validate checks the model's internal consistency: every connector
// endpoint refers to a registered construct (guaranteed by AddConnector,
// re-checked here for models assembled via decoding).
func (m *Model) Validate() error {
	for _, c := range m.connectors {
		if _, ok := m.constructs[c.From]; !ok {
			return fmt.Errorf("%w: connector %s from %s", ErrUnknownConstruct, c.ID, c.From)
		}
		if _, ok := m.constructs[c.To]; !ok {
			return fmt.Errorf("%w: connector %s to %s", ErrUnknownConstruct, c.ID, c.To)
		}
	}
	return nil
}
