package metamodel

import (
	"errors"
	"testing"
)

const ns = "http://test/"

func tinyModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel(ns+"model", "Tiny")
	steps := []error{
		m.AddConstruct(Construct{ID: ns + "Doc", Kind: KindConstruct, Label: "Doc"}),
		m.AddConstruct(Construct{ID: ns + "Note", Kind: KindConstruct, Label: "Note"}),
		m.AddConstruct(Construct{ID: ns + "Title", Kind: KindLiteralConstruct, Label: "Title", Datatype: "http://www.w3.org/2001/XMLSchema#string"}),
		m.AddConstruct(Construct{ID: ns + "Ref", Kind: KindMarkConstruct, Label: "Ref"}),
		m.AddConnector(Connector{ID: ns + "title", Kind: KindConnector, Label: "title", From: ns + "Doc", To: ns + "Title", MinCard: 1, MaxCard: 1}),
		m.AddConnector(Connector{ID: ns + "notes", Kind: KindConnector, Label: "notes", From: ns + "Doc", To: ns + "Note", MinCard: 0, MaxCard: Unbounded}),
		m.AddConnector(Connector{ID: ns + "anchor", Kind: KindConnector, Label: "anchor", From: ns + "Note", To: ns + "Ref", MinCard: 1, MaxCard: 1}),
		m.AddConnector(Connector{ID: ns + "noteIsDoc", Kind: KindGeneralization, Label: "noteIsDoc", From: ns + "Note", To: ns + "Doc"}),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestAddConstructDuplicate(t *testing.T) {
	m := tinyModel(t)
	err := m.AddConstruct(Construct{ID: ns + "Doc", Kind: KindConstruct})
	if !errors.Is(err, ErrDuplicateConstruct) {
		t.Fatalf("err = %v, want ErrDuplicateConstruct", err)
	}
	// A construct id colliding with a connector id is also rejected.
	err = m.AddConstruct(Construct{ID: ns + "title", Kind: KindConstruct})
	if !errors.Is(err, ErrDuplicateConstruct) {
		t.Fatalf("err = %v, want ErrDuplicateConstruct for connector-id collision", err)
	}
}

func TestAddConstructEmptyID(t *testing.T) {
	m := NewModel(ns+"m", "m")
	if err := m.AddConstruct(Construct{Label: "anon"}); !errors.Is(err, ErrEmptyID) {
		t.Fatalf("err = %v, want ErrEmptyID", err)
	}
}

func TestAddConnectorValidation(t *testing.T) {
	m := tinyModel(t)
	cases := []struct {
		name string
		c    Connector
		want error
	}{
		{"empty id", Connector{From: ns + "Doc", To: ns + "Note"}, ErrEmptyID},
		{"dup id", Connector{ID: ns + "title", From: ns + "Doc", To: ns + "Note"}, ErrDuplicateConnector},
		{"construct collision", Connector{ID: ns + "Doc", From: ns + "Doc", To: ns + "Note"}, ErrDuplicateConnector},
		{"unknown from", Connector{ID: ns + "x", From: ns + "Nope", To: ns + "Note"}, ErrUnknownConstruct},
		{"unknown to", Connector{ID: ns + "x", From: ns + "Doc", To: ns + "Nope"}, ErrUnknownConstruct},
		{"neg min", Connector{ID: ns + "x", From: ns + "Doc", To: ns + "Note", MinCard: -1}, ErrBadCardinality},
		{"max < min", Connector{ID: ns + "x", From: ns + "Doc", To: ns + "Note", MinCard: 2, MaxCard: 1}, ErrBadCardinality},
		{"bad generalization", Connector{ID: ns + "x", Kind: KindGeneralization, From: ns + "Doc", To: ns + "Title"}, ErrBadGeneralization},
	}
	for _, c := range cases {
		if err := m.AddConnector(c.c); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestUnboundedCardinalityAccepted(t *testing.T) {
	m := tinyModel(t)
	err := m.AddConnector(Connector{ID: ns + "many", Kind: KindConnector, From: ns + "Doc", To: ns + "Note", MinCard: 3, MaxCard: Unbounded})
	if err != nil {
		t.Fatalf("Unbounded MaxCard rejected: %v", err)
	}
}

func TestLookups(t *testing.T) {
	m := tinyModel(t)
	if c, ok := m.Construct(ns + "Doc"); !ok || c.Label != "Doc" {
		t.Errorf("Construct lookup: %v %v", c, ok)
	}
	if _, ok := m.Construct(ns + "Absent"); ok {
		t.Error("absent construct found")
	}
	if c, ok := m.Connector(ns + "title"); !ok || c.MaxCard != 1 {
		t.Errorf("Connector lookup: %v %v", c, ok)
	}
	if _, ok := m.Connector(ns + "absent"); ok {
		t.Error("absent connector found")
	}
}

func TestConstructsConnectorsSorted(t *testing.T) {
	m := tinyModel(t)
	cs := m.Constructs()
	if len(cs) != 4 {
		t.Fatalf("Constructs = %d, want 4", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].ID >= cs[i].ID {
			t.Fatal("Constructs not sorted")
		}
	}
	conns := m.Connectors()
	if len(conns) != 4 {
		t.Fatalf("Connectors = %d, want 4", len(conns))
	}
	for i := 1; i < len(conns); i++ {
		if conns[i-1].ID >= conns[i].ID {
			t.Fatal("Connectors not sorted")
		}
	}
}

func TestConnectorsFrom(t *testing.T) {
	m := tinyModel(t)
	from := m.ConnectorsFrom(ns + "Doc")
	if len(from) != 2 {
		t.Fatalf("ConnectorsFrom(Doc) = %d, want 2 (generalizations excluded)", len(from))
	}
	for _, c := range from {
		if c.Kind != KindConnector {
			t.Errorf("ConnectorsFrom returned %v", c.Kind)
		}
	}
}

func TestGeneralizationsAndIsA(t *testing.T) {
	m := tinyModel(t)
	gens := m.Generalizations(ns + "Note")
	if len(gens) != 1 || gens[0] != ns+"Doc" {
		t.Fatalf("Generalizations(Note) = %v", gens)
	}
	if !m.IsA(ns+"Note", ns+"Doc") {
		t.Error("Note IsA Doc = false")
	}
	if !m.IsA(ns+"Doc", ns+"Doc") {
		t.Error("Doc IsA Doc = false")
	}
	if m.IsA(ns+"Doc", ns+"Note") {
		t.Error("Doc IsA Note = true (generalization is directional)")
	}
	if m.IsA(ns+"Missing", ns+"Missing") {
		t.Error("IsA true for unregistered construct")
	}
}

func TestGeneralizationChainAndCycle(t *testing.T) {
	m := NewModel(ns+"g", "g")
	for _, id := range []string{"A", "B", "C"} {
		if err := m.AddConstruct(Construct{ID: ns + id, Kind: KindConstruct}); err != nil {
			t.Fatal(err)
		}
	}
	m.AddConnector(Connector{ID: ns + "ab", Kind: KindGeneralization, From: ns + "A", To: ns + "B"})
	m.AddConnector(Connector{ID: ns + "bc", Kind: KindGeneralization, From: ns + "B", To: ns + "C"})
	m.AddConnector(Connector{ID: ns + "ca", Kind: KindGeneralization, From: ns + "C", To: ns + "A"}) // cycle
	gens := m.Generalizations(ns + "A")
	if len(gens) != 2 {
		t.Fatalf("Generalizations(A) with cycle = %v", gens)
	}
	if !m.IsA(ns+"A", ns+"C") {
		t.Error("transitive IsA failed")
	}
}

func TestKindStrings(t *testing.T) {
	if KindConstruct.String() != "Construct" ||
		KindLiteralConstruct.String() != "LiteralConstruct" ||
		KindMarkConstruct.String() != "MarkConstruct" {
		t.Error("construct kind names wrong")
	}
	if KindConnector.String() != "Connector" ||
		KindConformance.String() != "ConformanceConnector" ||
		KindGeneralization.String() != "GeneralizationConnector" {
		t.Error("connector kind names wrong")
	}
	if ConstructKind(9).String() == "" || ConnectorKind(9).String() == "" {
		t.Error("unknown kinds must still render")
	}
}

func TestModelValidate(t *testing.T) {
	m := tinyModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the model the way a buggy decoder might.
	m.connectors[ns+"broken"] = &Connector{ID: ns + "broken", From: ns + "Ghost", To: ns + "Doc"}
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted dangling endpoint")
	}
}
