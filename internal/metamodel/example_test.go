package metamodel_test

import (
	"fmt"

	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/trim"
)

// Defining a superimposed model, storing it as triples, and checking
// instance data against it — the §4.3 metamodel flow.
func Example() {
	m := metamodel.NewModel("http://x/model", "Tiny")
	m.AddConstruct(metamodel.Construct{ID: "http://x/Note", Kind: metamodel.KindConstruct, Label: "Note"})
	m.AddConstruct(metamodel.Construct{ID: "http://x/Body", Kind: metamodel.KindLiteralConstruct, Label: "Body", Datatype: rdf.XSDString})
	m.AddConnector(metamodel.Connector{
		ID: "http://x/body", Kind: metamodel.KindConnector, Label: "body",
		From: "http://x/Note", To: "http://x/Body", MinCard: 1, MaxCard: 1,
	})

	store := trim.NewManager()
	metamodel.Encode(m, store)

	// Schema-later: instance data may arrive in any order.
	note := rdf.IRI("http://x/i/note1")
	store.Create(rdf.T(note, rdf.RDFType, rdf.IRI("http://x/Note")))
	store.Create(rdf.T(note, rdf.IRI("http://x/body"), rdf.String("hello")))

	fmt.Println("violations:", len(metamodel.NewChecker(m, store).Check()))

	// Drop the mandatory body: the checker notices.
	store.Remove(rdf.T(note, rdf.IRI("http://x/body"), rdf.String("hello")))
	vios := metamodel.NewChecker(m, store).Check()
	fmt.Println(vios[0].Kind)
	// Output:
	// violations: 0
	// cardinality-low
}

func ExampleBundleScrapModel() {
	m := metamodel.BundleScrapModel()
	fmt.Println(m.Label, "-", len(m.Constructs()), "constructs,", len(m.Connectors()), "connectors")
	c, _ := m.Connector(metamodel.ConnScrapMark)
	fmt.Printf("%s: %d..%d\n", c.Label, c.MinCard, c.MaxCard)
	// Output:
	// Bundle-Scrap - 7 constructs, 11 connectors
	// scrapMark: 1..-1
}
