package metamodel

import (
	"fmt"

	"repro/internal/rdf"
)

// The paper's §6 contemplates extensions to SLIMPad's information model
// "that correspond to real world manipulations of bundled information.
// These include annotations on scraps, linking among scraps and templates
// for bundles." ExtendedBundleScrapModel is Fig. 3 plus exactly those three
// extensions. It reuses the Fig. 3 construct IRIs (the constructs are the
// same concepts) under a distinct model IRI, so stores can hold either the
// plain or the extended model.
const (
	ExtendedBundleScrapModelID = rdf.NSPad + "model-ext"

	// ConnScrapNote attaches free-text annotations to a scrap (0..*).
	ConnScrapNote = rdf.NSPad + "scrapNote"
	// ConnScrapLink links a scrap to another scrap (0..*), directed.
	ConnScrapLink = rdf.NSPad + "scrapLink"
	// ConnTemplateName marks a bundle as a reusable template and names it
	// (0..1); instantiation deep-copies the bundle subtree.
	ConnTemplateName = rdf.NSPad + "templateName"
)

// ExtendedBundleScrapModel returns Fig. 3 plus the §6 extensions.
func ExtendedBundleScrapModel() *Model {
	base := BundleScrapModel()
	m := NewModel(ExtendedBundleScrapModelID, "Bundle-Scrap (extended)")
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("metamodel: building extended Bundle-Scrap model: %v", err))
		}
	}
	for _, c := range base.Constructs() {
		must(m.AddConstruct(c))
	}
	for _, c := range base.Connectors() {
		must(m.AddConnector(c))
	}
	must(m.AddConnector(Connector{ID: ConnScrapNote, Kind: KindConnector, Label: "scrapNote", From: ConstructScrap, To: ConstructName, MinCard: 0, MaxCard: Unbounded}))
	must(m.AddConnector(Connector{ID: ConnScrapLink, Kind: KindConnector, Label: "scrapLink", From: ConstructScrap, To: ConstructScrap, MinCard: 0, MaxCard: Unbounded}))
	must(m.AddConnector(Connector{ID: ConnTemplateName, Kind: KindConnector, Label: "templateName", From: ConstructBundle, To: ConstructName, MinCard: 0, MaxCard: 1}))
	return m
}
