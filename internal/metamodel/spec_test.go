package metamodel

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const tinySpec = `
# A small superimposed model in SLIM-ML.
model http://x/model "Tiny"
namespace http://x/

construct Doc "Document"
construct Note
literal   Title string "Title"
literal   Score integer
literal   Free any
mark      Ref

connector title  Doc -> Title [1..1]
connector score  Doc -> Score [0..1] "relevance score"
connector notes  Doc -> Note  [0..*]
connector anchor Note -> Ref  [1..1]
conformance noteOf Note -> Doc
generalization noteIsDoc Note -> Doc
`

func TestParseModelSpec(t *testing.T) {
	m, err := ParseModelSpec(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "http://x/model" || m.Label != "Tiny" {
		t.Fatalf("identity = %q %q", m.ID, m.Label)
	}
	if len(m.Constructs()) != 6 {
		t.Fatalf("constructs = %d", len(m.Constructs()))
	}
	if len(m.Connectors()) != 6 {
		t.Fatalf("connectors = %d", len(m.Connectors()))
	}
	doc, ok := m.Construct("http://x/Doc")
	if !ok || doc.Label != "Document" {
		t.Fatalf("Doc = %+v, %v", doc, ok)
	}
	title, _ := m.Construct("http://x/Title")
	if title.Kind != KindLiteralConstruct || !strings.HasSuffix(title.Datatype, "#string") {
		t.Fatalf("Title = %+v", title)
	}
	free, _ := m.Construct("http://x/Free")
	if free.Datatype != "" {
		t.Fatalf("Free datatype = %q", free.Datatype)
	}
	ref, _ := m.Construct("http://x/Ref")
	if ref.Kind != KindMarkConstruct {
		t.Fatalf("Ref = %+v", ref)
	}
	score, _ := m.Connector("http://x/score")
	if score.Label != "relevance score" || score.MinCard != 0 || score.MaxCard != 1 {
		t.Fatalf("score = %+v", score)
	}
	notes, _ := m.Connector("http://x/notes")
	if notes.MaxCard != Unbounded {
		t.Fatalf("notes = %+v", notes)
	}
	conf, _ := m.Connector("http://x/noteOf")
	if conf.Kind != KindConformance {
		t.Fatalf("noteOf = %+v", conf)
	}
	gen, _ := m.Connector("http://x/noteIsDoc")
	if gen.Kind != KindGeneralization {
		t.Fatalf("noteIsDoc = %+v", gen)
	}
}

func TestParseModelSpecErrors(t *testing.T) {
	bad := []string{
		"",                               // empty
		"construct X",                    // no model first
		"model",                          // missing IRI
		"model http://m\nmodel http://n", // duplicate model
		"model http://m\nbogus X",
		"model http://m\nnamespace",
		"model http://m\nliteral T nosuchtype",
		"model http://m\nconstruct A\nconnector c A - A",     // bad arrow
		"model http://m\nconstruct A\nconnector c A -> B",    // unknown endpoint
		"model http://m\nconstruct A\nconnector c A -> A [x..y]",
		"model http://m\nconstruct A\nconnector c A -> A [2..1]",
		"model http://m\nconstruct A\nconformance c A -> A [1..1]", // card on conformance
		`model http://m "unterminated`,
		`model http://m "label" extra`,
		`"just a label"`,
	}
	for _, src := range bad {
		if _, err := ParseModelSpec(src); err == nil {
			t.Errorf("ParseModelSpec(%q) succeeded", src)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, m := range []*Model{
		BundleScrapModel(),
		ExtendedBundleScrapModel(),
		AnnotationModel(),
		RelationalModel(),
		Model2(t),
	} {
		spec := FormatModelSpec(m)
		back, err := ParseModelSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v\nspec:\n%s", m.ID, err, spec)
		}
		if !reflect.DeepEqual(m.Constructs(), back.Constructs()) {
			t.Fatalf("%s: constructs differ after round trip", m.ID)
		}
		if !reflect.DeepEqual(m.Connectors(), back.Connectors()) {
			t.Fatalf("%s: connectors differ after round trip", m.ID)
		}
	}
}

// Model2 returns the parsed tiny spec, exercising spec-defined models in
// the round-trip matrix.
func Model2(t *testing.T) *Model {
	t.Helper()
	m, err := ParseModelSpec(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Property: every constructible random model survives Format/Parse.
func TestSpecRoundTripProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		m := randomModel(seed)
		back, err := ParseModelSpec(FormatModelSpec(m))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m.Constructs(), back.Constructs()) &&
			reflect.DeepEqual(m.Connectors(), back.Connectors())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
