package metamodel

import (
	"fmt"

	"repro/internal/rdf"
)

// Built-in model definitions. The Bundle-Scrap model is Fig. 3 of the paper;
// the annotation model demonstrates that the same store holds a second,
// structurally different superimposed model (the paper's flexibility claim,
// and the §5 comparison baseline).

// IRIs of the Bundle-Scrap model (Fig. 3).
const (
	BundleScrapModelID = rdf.NSPad + "model"

	ConstructSlimPad    = rdf.NSPad + "SlimPad"
	ConstructBundle     = rdf.NSPad + "Bundle"
	ConstructScrap      = rdf.NSPad + "Scrap"
	ConstructMarkHandle = rdf.NSPad + "MarkHandle"
	ConstructName       = rdf.NSPad + "Name"
	ConstructCoordinate = rdf.NSPad + "Coordinate"
	ConstructDimension  = rdf.NSPad + "Dimension"

	ConnPadName       = rdf.NSPad + "padName"
	ConnRootBundle    = rdf.NSPad + "rootBundle"
	ConnBundleName    = rdf.NSPad + "bundleName"
	ConnBundlePos     = rdf.NSPad + "bundlePos"
	ConnBundleHeight  = rdf.NSPad + "bundleHeight"
	ConnBundleWidth   = rdf.NSPad + "bundleWidth"
	ConnNestedBundle  = rdf.NSPad + "nestedBundle"
	ConnBundleContent = rdf.NSPad + "bundleContent"
	ConnScrapName     = rdf.NSPad + "scrapName"
	ConnScrapPos      = rdf.NSPad + "scrapPos"
	ConnScrapMark     = rdf.NSPad + "scrapMark"
)

// BundleScrapModel constructs the Bundle-Scrap model exactly as drawn in
// Fig. 3: a SlimPad designates at most one root Bundle; Bundles have a name,
// position and extent, contain any number of Scraps (bundleContent) and
// nested Bundles (nestedBundle); a Scrap has a name, position, and one or
// more MarkHandles (scrapMark, multiplicity 1..*).
func BundleScrapModel() *Model {
	m := NewModel(BundleScrapModelID, "Bundle-Scrap")
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("metamodel: building Bundle-Scrap model: %v", err))
		}
	}
	must(m.AddConstruct(Construct{ID: ConstructSlimPad, Kind: KindConstruct, Label: "SlimPad"}))
	must(m.AddConstruct(Construct{ID: ConstructBundle, Kind: KindConstruct, Label: "Bundle"}))
	must(m.AddConstruct(Construct{ID: ConstructScrap, Kind: KindConstruct, Label: "Scrap"}))
	must(m.AddConstruct(Construct{ID: ConstructMarkHandle, Kind: KindMarkConstruct, Label: "MarkHandle"}))
	must(m.AddConstruct(Construct{ID: ConstructName, Kind: KindLiteralConstruct, Label: "Name", Datatype: rdf.XSDString}))
	must(m.AddConstruct(Construct{ID: ConstructCoordinate, Kind: KindLiteralConstruct, Label: "Coordinate", Datatype: rdf.XSDString}))
	must(m.AddConstruct(Construct{ID: ConstructDimension, Kind: KindLiteralConstruct, Label: "Dimension", Datatype: rdf.XSDInteger}))

	must(m.AddConnector(Connector{ID: ConnPadName, Kind: KindConnector, Label: "padName", From: ConstructSlimPad, To: ConstructName, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnRootBundle, Kind: KindConnector, Label: "rootBundle", From: ConstructSlimPad, To: ConstructBundle, MinCard: 0, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnBundleName, Kind: KindConnector, Label: "bundleName", From: ConstructBundle, To: ConstructName, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnBundlePos, Kind: KindConnector, Label: "bundlePos", From: ConstructBundle, To: ConstructCoordinate, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnBundleHeight, Kind: KindConnector, Label: "bundleHeight", From: ConstructBundle, To: ConstructDimension, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnBundleWidth, Kind: KindConnector, Label: "bundleWidth", From: ConstructBundle, To: ConstructDimension, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnNestedBundle, Kind: KindConnector, Label: "nestedBundle", From: ConstructBundle, To: ConstructBundle, MinCard: 0, MaxCard: Unbounded}))
	must(m.AddConnector(Connector{ID: ConnBundleContent, Kind: KindConnector, Label: "bundleContent", From: ConstructBundle, To: ConstructScrap, MinCard: 0, MaxCard: Unbounded}))
	must(m.AddConnector(Connector{ID: ConnScrapName, Kind: KindConnector, Label: "scrapName", From: ConstructScrap, To: ConstructName, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnScrapPos, Kind: KindConnector, Label: "scrapPos", From: ConstructScrap, To: ConstructCoordinate, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnScrapMark, Kind: KindConnector, Label: "scrapMark", From: ConstructScrap, To: ConstructMarkHandle, MinCard: 1, MaxCard: Unbounded}))
	return m
}

// IRIs of the annotation model (a ComMentor-like structure: an Annotation
// has a type, a creation time, a body, and a single mark anchor).
const (
	AnnotationModelID = rdf.NSSLIM + "annotation-model"

	ConstructAnnotation = rdf.NSSLIM + "Annotation"
	ConstructAnchor     = rdf.NSSLIM + "Anchor"
	ConstructAnnText    = rdf.NSSLIM + "AnnotationText"
	ConstructAnnStamp   = rdf.NSSLIM + "AnnotationStamp"

	ConnAnnType   = rdf.NSSLIM + "annType"
	ConnAnnBody   = rdf.NSSLIM + "annBody"
	ConnAnnStamp  = rdf.NSSLIM + "annStamp"
	ConnAnnAnchor = rdf.NSSLIM + "annAnchor"
)

// AnnotationModel constructs the annotation model: a flat, single-anchor
// model contrasting with Bundle-Scrap's nested containment.
func AnnotationModel() *Model {
	m := NewModel(AnnotationModelID, "Annotation")
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("metamodel: building annotation model: %v", err))
		}
	}
	must(m.AddConstruct(Construct{ID: ConstructAnnotation, Kind: KindConstruct, Label: "Annotation"}))
	must(m.AddConstruct(Construct{ID: ConstructAnchor, Kind: KindMarkConstruct, Label: "Anchor"}))
	must(m.AddConstruct(Construct{ID: ConstructAnnText, Kind: KindLiteralConstruct, Label: "AnnotationText", Datatype: rdf.XSDString}))
	must(m.AddConstruct(Construct{ID: ConstructAnnStamp, Kind: KindLiteralConstruct, Label: "AnnotationStamp", Datatype: rdf.XSDInteger}))

	must(m.AddConnector(Connector{ID: ConnAnnType, Kind: KindConnector, Label: "annType", From: ConstructAnnotation, To: ConstructAnnText, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnAnnBody, Kind: KindConnector, Label: "annBody", From: ConstructAnnotation, To: ConstructAnnText, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnAnnStamp, Kind: KindConnector, Label: "annStamp", From: ConstructAnnotation, To: ConstructAnnStamp, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnAnnAnchor, Kind: KindConnector, Label: "annAnchor", From: ConstructAnnotation, To: ConstructAnchor, MinCard: 1, MaxCard: 1}))
	return m
}
