package metamodel

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// The three-level story of §4.3: "in the relational model, tables,
// attributes, keys and domains are constructs. The notion that tables
// contain attributes ... are implicit connections among the constructs
// defined by the model." RelationalModel makes those constructs explicit,
// and — unlike the Bundle-Scrap model, whose instances conform directly to
// the model — it uses **conformance connectors** to relate instance-level
// constructs (Row, Cell) to schema-level constructs (Table, Attribute):
// a schema (the Patients table with its columns) is itself data, and rows
// conform to it. This realizes "data model as well as schema being
// selectable and explicitly represented" (§6).
const (
	RelationalModelID = rdf.NSSLIM + "relational-model"

	// Schema-level constructs.
	ConstructTable     = rdf.NSSLIM + "Table"
	ConstructAttribute = rdf.NSSLIM + "Attribute"
	// Instance-level constructs.
	ConstructRow  = rdf.NSSLIM + "Row"
	ConstructCell = rdf.NSSLIM + "Cell"
	// Literal constructs.
	ConstructRelName  = rdf.NSSLIM + "RelName"
	ConstructRelValue = rdf.NSSLIM + "RelValue"

	// Schema-level connectors.
	ConnTableName     = rdf.NSSLIM + "tableName"
	ConnHasAttribute  = rdf.NSSLIM + "hasAttribute"
	ConnAttributeName = rdf.NSSLIM + "attributeName"
	// Instance-level connectors.
	ConnRowCell   = rdf.NSSLIM + "rowCell"
	ConnCellValue = rdf.NSSLIM + "cellValue"
	// Conformance connectors: the schema-instance relationships.
	ConnRowOfTable = rdf.NSSLIM + "rowOfTable"
	ConnCellOfAttr = rdf.NSSLIM + "cellOfAttribute"
)

// RelationalModel builds the relational example model with explicit
// conformance connectors.
func RelationalModel() *Model {
	m := NewModel(RelationalModelID, "Relational")
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("metamodel: building relational model: %v", err))
		}
	}
	must(m.AddConstruct(Construct{ID: ConstructTable, Kind: KindConstruct, Label: "Table"}))
	must(m.AddConstruct(Construct{ID: ConstructAttribute, Kind: KindConstruct, Label: "Attribute"}))
	must(m.AddConstruct(Construct{ID: ConstructRow, Kind: KindConstruct, Label: "Row"}))
	must(m.AddConstruct(Construct{ID: ConstructCell, Kind: KindConstruct, Label: "Cell"}))
	must(m.AddConstruct(Construct{ID: ConstructRelName, Kind: KindLiteralConstruct, Label: "RelName", Datatype: rdf.XSDString}))
	must(m.AddConstruct(Construct{ID: ConstructRelValue, Kind: KindLiteralConstruct, Label: "RelValue"}))

	must(m.AddConnector(Connector{ID: ConnTableName, Kind: KindConnector, Label: "tableName", From: ConstructTable, To: ConstructRelName, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnHasAttribute, Kind: KindConnector, Label: "hasAttribute", From: ConstructTable, To: ConstructAttribute, MinCard: 1, MaxCard: Unbounded}))
	must(m.AddConnector(Connector{ID: ConnAttributeName, Kind: KindConnector, Label: "attributeName", From: ConstructAttribute, To: ConstructRelName, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnRowCell, Kind: KindConnector, Label: "rowCell", From: ConstructRow, To: ConstructCell, MinCard: 0, MaxCard: Unbounded}))
	must(m.AddConnector(Connector{ID: ConnCellValue, Kind: KindConnector, Label: "cellValue", From: ConstructCell, To: ConstructRelValue, MinCard: 1, MaxCard: 1}))
	must(m.AddConnector(Connector{ID: ConnRowOfTable, Kind: KindConformance, Label: "rowOfTable", From: ConstructRow, To: ConstructTable}))
	must(m.AddConnector(Connector{ID: ConnCellOfAttr, Kind: KindConformance, Label: "cellOfAttribute", From: ConstructCell, To: ConstructAttribute}))
	return m
}

// SchemaViolation describes one failure of instance data against a schema
// expressed through conformance connectors.
type SchemaViolation struct {
	Subject rdf.Term
	Detail  string
}

// String renders the violation.
func (v SchemaViolation) String() string {
	return fmt.Sprintf("%s: %s", v.Subject, v.Detail)
}

// CheckSchemaConformance validates instance-level data against schema-level
// data using the model's conformance connectors: for every conformance
// connector From→To, each instance of From must reference exactly one
// instance of To through the connector, and — for the relational pair
// Row/Cell — each row's cells must conform to attributes of the row's own
// table. The general mechanism (conformance reference present and typed)
// works for any model; the containment cross-check applies when the model
// has both rowOfTable and cellOfAttribute.
func CheckSchemaConformance(m *Model, store *trim.Manager) []SchemaViolation {
	var out []SchemaViolation
	for _, conn := range m.Connectors() {
		if conn.Kind != KindConformance {
			continue
		}
		for _, inst := range store.Subjects(rdf.RDFType, rdf.IRI(conn.From)) {
			targets := store.Objects(inst, rdf.IRI(conn.ID))
			switch len(targets) {
			case 0:
				out = append(out, SchemaViolation{Subject: inst,
					Detail: fmt.Sprintf("instance of %s lacks conformance reference %s", conn.From, conn.Label)})
				continue
			case 1:
			default:
				out = append(out, SchemaViolation{Subject: inst,
					Detail: fmt.Sprintf("instance of %s conforms to %d schema elements via %s, want 1", conn.From, len(targets), conn.Label)})
				continue
			}
			target := targets[0]
			typed := false
			for _, ty := range store.Objects(target, rdf.RDFType) {
				if ty.Value() == conn.To {
					typed = true
				}
			}
			if !typed {
				out = append(out, SchemaViolation{Subject: inst,
					Detail: fmt.Sprintf("conformance target %s is not a %s", target.Value(), conn.To)})
			}
		}
	}
	// Relational cross-check: a row's cells must belong to attributes of
	// the row's table.
	rowOf, hasRow := m.Connector(ConnRowOfTable)
	cellOf, hasCell := m.Connector(ConnCellOfAttr)
	if hasRow && hasCell {
		for _, row := range store.Subjects(rdf.RDFType, rdf.IRI(ConstructRow)) {
			tables := store.Objects(row, rdf.IRI(rowOf.ID))
			if len(tables) != 1 {
				continue // already reported above
			}
			tableAttrs := map[rdf.Term]bool{}
			for _, a := range store.Objects(tables[0], rdf.IRI(ConnHasAttribute)) {
				tableAttrs[a] = true
			}
			for _, cell := range store.Objects(row, rdf.IRI(ConnRowCell)) {
				attrs := store.Objects(cell, rdf.IRI(cellOf.ID))
				for _, a := range attrs {
					if !tableAttrs[a] {
						out = append(out, SchemaViolation{Subject: cell,
							Detail: fmt.Sprintf("cell conforms to attribute %s which is not in the row's table", a.Value())})
					}
				}
			}
		}
	}
	return out
}
