// Package durable is the shared durability substrate of the SLIM stack:
// crash-safe atomic file replacement and the injectable fault-stage hook
// that lets tests kill any write path at a precise point.
//
// It exists so the XML snapshot backend (internal/trim), the mark store
// (internal/mark via trim), and the append-only WAL (internal/wal) all run
// the exact same temp-write → fsync → backup → rename → dir-sync sequence
// and the exact same fault seams, instead of each maintaining a private
// copy of the machinery (docs/ROBUSTNESS.md, "Durability backends").
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/obs"
)

// BackupSuffix is appended to a store path to name the previous good
// snapshot kept by WriteFileAtomic when backups are requested.
const BackupSuffix = ".bak"

// Stage names one step of a durability I/O sequence; the fault hook
// receives it so tests can fail (or corrupt) a precise point in the write
// path — e.g. "the process died between temp-write and rename".
type Stage string

const (
	// StageTempWrite: about to write the snapshot bytes to the temp file.
	StageTempWrite Stage = "temp-write"
	// StageTempSync: about to fsync the temp file.
	StageTempSync Stage = "temp-sync"
	// StageBackup: about to copy the current file to its .bak sibling.
	StageBackup Stage = "backup"
	// StageRename: about to rename the temp file over the target.
	StageRename Stage = "rename"
	// StageDirSync: about to fsync the parent directory.
	StageDirSync Stage = "dir-sync"

	// StageWALAppend: about to append a framed record to the WAL.
	StageWALAppend Stage = "wal-append"
	// StageWALSync: about to fsync the WAL after an append batch.
	StageWALSync Stage = "wal-sync"
	// StageWALCompact: about to begin WAL snapshot compaction (the
	// snapshot write itself then runs the temp-write/temp-sync/backup/
	// rename/dir-sync stages against the snapshot path).
	StageWALCompact Stage = "wal-compact"
	// StageWALTruncate: about to truncate the WAL after a successful
	// snapshot compaction.
	StageWALTruncate Stage = "wal-truncate"
)

// Fault is an injectable fault hook for durability I/O. It runs before
// each stage with the target path; returning a non-nil error aborts the
// operation as if the I/O at that stage had failed. The hook may also
// mutate the filesystem (truncate the target, delete the backup) to
// simulate torn writes and crashes deterministically.
type Fault func(stage Stage, path string) error

var fault atomic.Pointer[Fault]

// SetFault installs the durability fault hook (nil removes it) and returns
// the previous hook. Tests use it to exercise crash recovery; it is
// process-wide, so parallel tests should not share it.
func SetFault(h Fault) (prev Fault) {
	var old *Fault
	if h == nil {
		old = fault.Swap(nil)
	} else {
		old = fault.Swap(&h)
	}
	if old == nil {
		return nil
	}
	return *old
}

// FaultAt runs the installed fault hook, if any, for one stage.
func FaultAt(stage Stage, path string) error {
	if h := fault.Load(); h != nil {
		if err := (*h)(stage, path); err != nil {
			return fmt.Errorf("durable: %s %s: %w", stage, path, err)
		}
	}
	return nil
}

// mDirsyncSkipped counts directory fsyncs that failed or were refused.
// Directory fsync is best effort — some filesystems refuse it — but a
// skipped one is a real (if small) durability gap, so it is counted
// instead of discarded invisibly.
var mDirsyncSkipped = obs.C(obs.NameTrimPersistDirsyncSkipped)

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsyncing the temp file before the rename and the parent directory after
// it, so a crash at any point leaves either the old file or the new file —
// never a torn mixture. When backup is true and a previous file exists, a
// copy is kept as path+BackupSuffix before the rename.
func WriteFileAtomic(path string, data []byte, backup bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".durable-*.tmp")
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	err = func() error {
		if err := FaultAt(StageTempWrite, path); err != nil {
			return err
		}
		if _, err := tmp.Write(data); err != nil {
			return fmt.Errorf("durable: write %s: %w", path, err)
		}
		if err := FaultAt(StageTempSync, path); err != nil {
			return err
		}
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("durable: write %s: %w", path, err)
		}
		return nil
	}()
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("durable: write %s: %w", path, cerr)
	}
	if err != nil {
		return err
	}

	if backup {
		if _, serr := os.Stat(path); serr == nil {
			if err := FaultAt(StageBackup, path); err != nil {
				return err
			}
			// The backup is a copy, not a hard link: a link would share
			// the inode with the primary, so a later torn in-place write
			// to the primary would corrupt the backup with it. Failure to
			// keep a backup must not block the save.
			if prev, rerr := os.ReadFile(path); rerr == nil {
				os.WriteFile(path+BackupSuffix, prev, 0o644)
			}
		}
	}

	if err := FaultAt(StageRename, path); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := FaultAt(StageDirSync, path); err != nil {
		return err
	}
	SyncDir(dir)
	return nil
}

// SyncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. It is best effort: some filesystems refuse directory fsync, and
// a skip is counted (trim.persist.dirsync_skipped) rather than silently
// discarded.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		mDirsyncSkipped.Inc()
		return
	}
	if err := d.Sync(); err != nil {
		mDirsyncSkipped.Inc()
	}
	d.Close()
}
