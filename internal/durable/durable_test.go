package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := WriteFileAtomic(path, []byte("v1"), true); err != nil {
		t.Fatalf("first write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// First write of a fresh path leaves no backup (nothing to back up).
	if _, err := os.Stat(path + BackupSuffix); !os.IsNotExist(err) {
		t.Fatalf("backup exists after first write: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), true); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, _ = os.ReadFile(path)
	bak, berr := os.ReadFile(path + BackupSuffix)
	if string(got) != "v2" || berr != nil || string(bak) != "v1" {
		t.Fatalf("after second write: primary %q, backup %q (%v)", got, bak, berr)
	}
}

func TestWriteFileAtomicNoBackup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := WriteFileAtomic(path, []byte("v1"), false); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + BackupSuffix); !os.IsNotExist(err) {
		t.Fatalf("backup written despite backup=false: %v", err)
	}
}

// TestFaultStagesAbortWrite fails each snapshot-write stage in turn; the
// target file must be left untouched (old contents) and no temp litter
// behind.
func TestFaultStagesAbortWrite(t *testing.T) {
	for _, stage := range []Stage{StageTempWrite, StageTempSync, StageBackup, StageRename} {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "data.bin")
			if err := WriteFileAtomic(path, []byte("old"), true); err != nil {
				t.Fatal(err)
			}
			fail := stage
			prev := SetFault(func(s Stage, _ string) error {
				if s == fail {
					return fmt.Errorf("injected at %s", s)
				}
				return nil
			})
			err := WriteFileAtomic(path, []byte("new"), true)
			SetFault(prev)
			if err == nil {
				t.Fatalf("write survived injected fault at %s", stage)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil || string(got) != "old" {
				t.Fatalf("target after fault at %s: %q, %v", stage, got, rerr)
			}
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if e.Name() != "data.bin" && e.Name() != "data.bin"+BackupSuffix {
					t.Fatalf("litter left after fault at %s: %s", stage, e.Name())
				}
			}
		})
	}
}

func TestFaultErrorIsWrapped(t *testing.T) {
	sentinel := errors.New("sentinel")
	prev := SetFault(func(Stage, string) error { return sentinel })
	defer SetFault(prev)
	err := FaultAt(StageRename, "/x/y")
	if !errors.Is(err, sentinel) {
		t.Fatalf("FaultAt error %v does not wrap the hook error", err)
	}
}

// TestDirSyncSkipCounted verifies the dirsync-skipped counter moves when
// the directory fsync cannot run — the silent best-effort path is now
// observable.
func TestDirSyncSkipCounted(t *testing.T) {
	before := obs.C(obs.NameTrimPersistDirsyncSkipped).Value()
	// A directory that cannot be opened forces the skip path.
	SyncDir(filepath.Join(t.TempDir(), "does-not-exist"))
	after := obs.C(obs.NameTrimPersistDirsyncSkipped).Value()
	if after != before+1 {
		t.Fatalf("dirsync_skipped = %d -> %d, want +1", before, after)
	}
}
