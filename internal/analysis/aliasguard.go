package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AliasGuard enforces the snapshot-immutability precondition the MVCC
// refactor (ROADMAP item 2) depends on: a reference-typed field annotated
// `guarded by mu` — a slice, map, pointer, or channel — aliases mutable
// shared state, and lockguard's "only touch it under mu" rule is vacuous
// if the *reference itself* leaks out of the critical section. Once an
// alias escapes, every later access through it is an unguarded access the
// lock analyzers can no longer see.
//
// Four escape routes are checked, per function:
//
//  1. Returned: `return s.items` (directly, through a local alias, or
//     embedded in a returned composite literal) hands the caller a live
//     alias. Exempt in `*Locked` / "caller holds mu" helpers — there the
//     caller is inside the critical section by convention and owns the
//     alias's lifetime.
//  2. Stored into an unguarded field, or a field guarded by a different
//     lock: the alias outlives this critical section under someone else's
//     (or no) discipline.
//  3. Captured by a goroutine, or by a deferred call that runs after the
//     lock is explicitly released (a deferred closure registered after
//     `defer mu.Unlock()` runs before the unlock — LIFO — and is fine).
//     A goroutine that re-acquires the guarding lock itself is fine.
//  4. Handed to a callback — a dynamic function value, not a statically
//     resolved call — without a copy. Static callees are synchronous and
//     checkable; a callback is arbitrary code that may retain the
//     argument.
//
// The fix is always the same: copy under the lock, publish the copy.
var AliasGuard = &Analyzer{
	Name: "aliasguard",
	Doc: "reference-typed fields annotated `guarded by mu` must not escape the " +
		"critical section: not returned, stored into unguarded fields, captured " +
		"by goroutines/deferred closures, or handed to callbacks without a copy",
	Run: runAliasGuard,
}

func runAliasGuard(pass *Pass) error {
	refGuarded, allGuarded := collectAliasGuardFields(pass)
	if len(refGuarded) == 0 {
		return nil
	}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &agState{
				pass:          pass,
				fn:            fd,
				guarded:       refGuarded,
				allGuarded:    allGuarded,
				aliases:       map[types.Object]*types.Var{},
				localFns:      map[types.Object]bool{},
				deferUnlocked: map[string]bool{},
				reported:      map[string]bool{},
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || callerHoldsRe.MatchString(fd.Doc.Text()) {
				s.exempt = true
			}
			s.walkStmts(fd.Body.List)
		}
	}
	return nil
}

// collectAliasGuardFields gathers the `guarded by <lock>` fields.
// refGuarded holds only the aliasable (reference-typed) ones aliasguard
// polices; allGuarded holds every annotated field so rule 2 can tell a
// guarded destination from an unguarded one. Annotation validation
// (naming a lock the struct lacks) is lockguard's diagnostic, not
// duplicated here.
func collectAliasGuardFields(pass *Pass) (refGuarded, allGuarded map[*types.Var]string) {
	info := pass.Info()
	refGuarded = map[*types.Var]string{}
	allGuarded = map[*types.Var]string{}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := field.Doc.Text() + " " + field.Comment.Text()
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					allGuarded[v] = m[1]
					if aliasableType(v.Type()) {
						refGuarded[v] = m[1]
					}
				}
			}
			return true
		})
	}
	return refGuarded, allGuarded
}

// aliasableType reports whether a value of type t shares mutable state
// with every copy of it: slices, maps, pointers, and channels. Value
// types (ints, structs of values) are copied on assignment and cannot
// leak the guarded state; function-typed fields are lockguard's
// callback-under-lock territory.
func aliasableType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// agState is the per-function walk state.
type agState struct {
	pass       *Pass
	fn         *ast.FuncDecl
	guarded    map[*types.Var]string // aliasable guarded fields
	allGuarded map[*types.Var]string // every guarded field (store-rule destinations)
	// exempt: *Locked / caller-holds helpers may return guarded state; the
	// caller is inside the critical section by convention.
	exempt bool
	// aliases maps local idents assigned directly from a guarded field to
	// that field, so `r := s.ring; return r` is caught like `return s.ring`.
	aliases map[types.Object]*types.Var
	// localFns marks idents bound to function literals in this function
	// (`consider := func(...) {...}`): calls to them are synchronous local
	// code, not callbacks.
	localFns map[types.Object]bool
	// deferUnlocked records locks whose Unlock has been deferred so far; a
	// deferred call registered after it still runs under the lock (LIFO).
	deferUnlocked map[string]bool
	// reported dedupes (function, field, rule) triples.
	reported map[string]bool
}

func (s *agState) report(pos ast.Node, field *types.Var, rule, format string, args ...any) {
	key := s.fn.Name.Name + "\x00" + field.Name() + "\x00" + rule
	if s.reported[key] {
		return
	}
	s.reported[key] = true
	s.pass.Reportf(pos.Pos(), format, args...)
}

func (s *agState) walkStmts(stmts []ast.Stmt) {
	for _, st := range stmts {
		s.walkStmt(st)
	}
}

func (s *agState) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.checkStores(st)
		s.recordAliases(st)
		for _, rhs := range st.Rhs {
			s.checkExprTree(rhs)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if obj := specObj(s.pass.Info(), vs, i); obj != nil {
						if _, isLit := ast.Unparen(val).(*ast.FuncLit); isLit {
							s.localFns[obj] = true
						} else if v := s.guardedRef(val); v != nil {
							s.aliases[obj] = v
						}
					}
					s.checkExprTree(val)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			if v := s.returnedGuardedRef(res); v != nil && !s.exempt {
				s.report(res, v, "return",
					"%s returns guarded field %s (guarded by %s); the alias outlives the critical section — return a copy or make this a *Locked helper",
					funcDisplayName(s.fn), v.Name(), s.guarded[v])
			}
			s.checkExprTree(res)
		}
	case *ast.GoStmt:
		s.checkConcurrentCapture(st.Call, "goroutine",
			"%s lets guarded field %s (guarded by %s) escape into a goroutine; the goroutine runs outside the critical section — pass a copy or re-acquire %s inside it")
	case *ast.DeferStmt:
		if recv, method, ok := lockCall(s.pass.Info(), st.Call); ok {
			if unlockMethods[method] {
				if name := lockRecvName(recv); name != "" {
					s.deferUnlocked[name] = true
				}
			}
			return
		}
		s.checkDeferCapture(st.Call)
	case *ast.ExprStmt:
		s.checkExprTree(st.X)
	case *ast.BlockStmt:
		s.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		s.checkExprTree(st.Cond)
		s.walkStmt(st.Body)
		if st.Else != nil {
			s.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		if st.Cond != nil {
			s.checkExprTree(st.Cond)
		}
		s.walkStmt(st.Body)
		if st.Post != nil {
			s.walkStmt(st.Post)
		}
	case *ast.RangeStmt:
		s.checkExprTree(st.X)
		s.walkStmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		if st.Tag != nil {
			s.checkExprTree(st.Tag)
		}
		s.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		s.walkStmt(st.Assign)
		s.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.checkExprTree(e)
		}
		s.walkStmts(st.Body)
	case *ast.SelectStmt:
		s.walkStmt(st.Body)
	case *ast.CommClause:
		if st.Comm != nil {
			s.walkStmt(st.Comm)
		}
		s.walkStmts(st.Body)
	case *ast.LabeledStmt:
		s.walkStmt(st.Stmt)
	case *ast.SendStmt:
		// Sending a guarded reference down a channel publishes it to the
		// receiver — the callback rule's channel-shaped twin.
		if v := s.guardedRef(st.Value); v != nil {
			s.report(st.Value, v, "send",
				"%s sends guarded field %s (guarded by %s) on a channel; the receiver gets a live alias — send a copy",
				funcDisplayName(s.fn), v.Name(), s.guarded[v])
		}
		s.checkExprTree(st.Chan)
		s.checkExprTree(st.Value)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.checkExprTree(e)
				return false
			}
			return true
		})
	}
}

// guardedRef resolves expr to a guarded aliasable field: the field
// selector itself (through parens and re-slicings, which alias the same
// backing store) or a local alias of one. Index expressions do NOT
// resolve — an element fetched from a guarded map/slice is a copy of the
// element, not the container.
func (s *agState) guardedRef(expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			selection, ok := s.pass.Info().Selections[e]
			if !ok || selection.Kind() != types.FieldVal {
				return nil
			}
			v, ok := selection.Obj().(*types.Var)
			if !ok {
				return nil
			}
			if _, guarded := s.guarded[v]; guarded {
				return v
			}
			return nil
		case *ast.Ident:
			obj := s.pass.Info().Uses[e]
			if obj == nil {
				return nil
			}
			return s.aliases[obj]
		default:
			return nil
		}
	}
}

// returnedGuardedRef extends guardedRef through composite literals: a
// guarded reference embedded in a returned struct/slice/map literal (or a
// pointer to one) escapes exactly like a bare return. Call arguments are
// not traversed — `return append([]T(nil), s.ring...)` is the sanctioned
// copy idiom.
func (s *agState) returnedGuardedRef(expr ast.Expr) *types.Var {
	if v := s.guardedRef(expr); v != nil {
		return v
	}
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return s.returnedGuardedRef(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return s.returnedGuardedRef(e.X)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if v := s.returnedGuardedRef(el); v != nil {
				return v
			}
		}
	}
	return nil
}

// recordAliases taints `r := s.ring` style assignments so later escapes of
// r are attributed to the field.
func (s *agState) recordAliases(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := s.pass.Info().Defs[id]
		if obj == nil {
			obj = s.pass.Info().Uses[id]
		}
		if obj == nil {
			continue
		}
		if _, isLit := ast.Unparen(st.Rhs[i]).(*ast.FuncLit); isLit {
			s.localFns[obj] = true
			continue
		}
		if v := s.guardedRef(st.Rhs[i]); v != nil {
			s.aliases[obj] = v
		}
	}
}

// checkStores applies rule 2: a guarded reference assigned into a field
// that is unguarded, or guarded by a different lock, escapes this
// critical section's discipline.
func (s *agState) checkStores(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		v := s.guardedRef(st.Rhs[i])
		if v == nil {
			continue
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection, ok := s.pass.Info().Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		dst, ok := selection.Obj().(*types.Var)
		if !ok {
			continue
		}
		dstLock, dstGuarded := s.allGuarded[dst]
		if dstGuarded && dstLock == s.guarded[v] {
			continue // same critical section; still covered by the guard
		}
		where := "unguarded field " + dst.Name()
		if dstGuarded {
			where = "field " + dst.Name() + " guarded by a different lock (" + dstLock + ")"
		}
		s.report(lhs, v, "store",
			"%s stores guarded field %s (guarded by %s) into %s; the alias escapes the critical section — store a copy",
			funcDisplayName(s.fn), v.Name(), s.guarded[v], where)
	}
}

// checkExprTree finds rule-4 violations (guarded references handed to
// dynamic callees) anywhere in an expression subtree.
func (s *agState) checkExprTree(expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s.staticCallee(call) {
			return true
		}
		for _, arg := range call.Args {
			if v := s.guardedRef(arg); v != nil {
				s.report(arg, v, "callback",
					"%s hands guarded field %s (guarded by %s) to a callback without a copy; the callback may retain the alias past the critical section",
					funcDisplayName(s.fn), v.Name(), s.guarded[v])
			}
		}
		return true
	})
}

// staticCallee reports whether call's target is statically known code —
// a declared function or method, a builtin, a type conversion, or an
// immediately invoked literal — rather than a dynamic function value.
func (s *agState) staticCallee(call *ast.CallExpr) bool {
	info := s.pass.Info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion: makes a copy or re-types, no dynamic code
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return true // invoked inline, synchronously
	case *ast.Ident:
		obj := info.Uses[fun]
		switch obj.(type) {
		case *types.Func, *types.Builtin:
			return true
		}
		return obj != nil && s.localFns[obj]
	case *ast.SelectorExpr:
		_, isFunc := info.Uses[fun.Sel].(*types.Func)
		return isFunc
	}
	return false
}

// checkConcurrentCapture applies rule 3's goroutine half: any guarded
// reference inside the `go` call (arguments or a closure body) escapes
// onto another goroutine's schedule — unless that code re-acquires the
// guarding lock itself.
func (s *agState) checkConcurrentCapture(call *ast.CallExpr, what, format string) {
	relocked := s.relockedIn(call)
	ast.Inspect(call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		v := s.guardedRef(e)
		if v == nil {
			return true
		}
		lock := s.guarded[v]
		if relocked[lock] {
			return false
		}
		s.report(e, v, what, format, funcDisplayName(s.fn), v.Name(), lock, lock)
		return false
	})
}

// checkDeferCapture applies rule 3's defer half. A deferred call runs at
// function exit; if the guarding lock's own unlock was already deferred,
// LIFO ordering runs this call before the unlock — still inside the
// critical section — otherwise the reference is used after whatever
// explicit unlock the body performs.
func (s *agState) checkDeferCapture(call *ast.CallExpr) {
	relocked := s.relockedIn(call)
	ast.Inspect(call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		v := s.guardedRef(e)
		if v == nil {
			return true
		}
		lock := s.guarded[v]
		if relocked[lock] || s.deferUnlocked[lock] {
			return false
		}
		s.report(e, v, "defer",
			"%s captures guarded field %s (guarded by %s) in a deferred call that runs after the lock is released; defer the unlock first or pass a copy",
			funcDisplayName(s.fn), v.Name(), lock)
		return false
	})
}

// relockedIn collects locks re-acquired anywhere inside node (a goroutine
// or deferred closure that does its own locking is running its own
// critical section).
func (s *agState) relockedIn(node ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := lockCall(s.pass.Info(), call); ok && lockMethodName[method] {
			if name := lockRecvName(recv); name != "" {
				out[name] = true
			}
		}
		return true
	})
	return out
}

// specObj resolves the i'th declared name of a ValueSpec to its object.
func specObj(info *types.Info, vs *ast.ValueSpec, i int) types.Object {
	if i >= len(vs.Names) {
		return nil
	}
	return info.Defs[vs.Names[i]]
}

// lockRecvName extracts the lock's field/variable name from a lock-method
// receiver expression.
func lockRecvName(recv ast.Expr) string {
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		return r.Sel.Name
	case *ast.Ident:
		return r.Name
	}
	return ""
}
