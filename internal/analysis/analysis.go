// Package analysis is slimvet's standard-library-only static-analysis
// framework: a small analyzer driver built on go/ast, go/parser, go/token,
// and go/types (with the source importer) plus the five SLIM-specific
// analyzers described in docs/STATIC_ANALYSIS.md.
//
// The paper's DMI contract (§4.4) — and the conventions PRs 1–3 layered on
// top of it (TRIM state only touched under mu, typed error sentinels, *Ctx
// resolution paths, obs instrumentation on every exported op) — are
// convention-enforced, exactly the kind of invariant that rots silently as
// the codebase grows. This package turns those conventions into mechanical
// checks, the XBase argument (PAPERS.md) for checked uniformity over
// hand-maintained discipline.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature (Analyzer, Pass, Reportf) so analyzers stay portable if the
// repo ever adopts the real thing, but it depends on nothing outside the
// standard library.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, positioned in module-root-relative terms so
// output and baselines are stable across checkouts.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, forward slashes
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Key is the diagnostic's baseline identity: analyzer, file, and message —
// deliberately not the line number, so baselined debt survives unrelated
// edits to the same file.
func (d Diagnostic) Key() string {
	return d.Analyzer + "\x00" + d.File + "\x00" + d.Message
}

// Analyzer is one named convention check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, baselines, and the
	// driver's -enable/-disable flags.
	Name string
	// Doc is a one-paragraph description shown by `slimvet -list`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one (package, analyzer) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the loaded package: parsed files plus type information.
	Pkg *Package
	// moduleRoot rewrites absolute positions into repo-relative ones.
	moduleRoot string
	diags      *[]Diagnostic
}

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// TypesPkg returns the package's type-checked package object.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := relPath(p.moduleRoot, position.Filename)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockGuard, ErrWrap, CtxFlow, ObsCoverage, MetricNames, TraceCtx,
		AliasGuard, LockOrder, AtomicHygiene, GoroLife,
	}
}

// ByName resolves analyzer names (e.g. from -enable/-disable flags).
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
