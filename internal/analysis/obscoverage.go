package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// ObsCoverage enforces the PR-1 observability contract: every exported
// mutating operation in the instrumented layers records a metric or span.
// "Mutating" is keyed off the op's leading verb (see mutatingVerbs in
// obsregistry.go); "records" means the op's body — or a same-package helper
// it calls, transitively — reaches one of the declared instrumentation
// sinks (instrumentationSinks in obsregistry.go).
//
// Ops that legitimately skip instrumentation (test hooks, staging-only
// methods whose commit point records for them) carry a
// `// slimvet:noobs <reason>` line in their doc comment.
var ObsCoverage = &Analyzer{
	Name: "obscoverage",
	Doc: "exported mutating ops in the instrumented layers (trim, mark, slim) must " +
		"record a metric or span, directly or via a same-package helper",
	Run: runObsCoverage,
}

func runObsCoverage(pass *Pass) error {
	if !ObsCoverageTargets[pass.Pkg.Path] {
		return nil
	}
	info := pass.Info()

	// declOf maps function objects to their declarations, for the
	// transitive search through same-package helpers.
	declOf := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					declOf[fn] = fd
				}
			}
		}
	}

	// instruments reports whether fd's body reaches an instrumentation
	// sink within the given call depth.
	var instruments func(fd *ast.FuncDecl, depth int, seen map[*ast.FuncDecl]bool) bool
	instruments = func(fd *ast.FuncDecl, depth int, seen map[*ast.FuncDecl]bool) bool {
		if seen[fd] {
			return false
		}
		seen[fd] = true
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if isInstrumentationSink(callee) {
				found = true
				return false
			}
			if depth > 0 && callee.Pkg() == pass.TypesPkg() {
				if helper, ok := declOf[callee]; ok && instruments(helper, depth-1, seen) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !isMutatingOpName(fd.Name.Name) {
				continue
			}
			if strings.Contains(fd.Doc.Text(), "slimvet:noobs") {
				continue
			}
			if !instruments(fd, obsCoverageDepth, map[*ast.FuncDecl]bool{}) {
				pass.Reportf(fd.Name.Pos(),
					"exported mutating op %s records no metric or span (sinks: internal/analysis/obsregistry.go; exempt with `// slimvet:noobs <reason>`)",
					funcDisplayName(fd))
			}
		}
	}
	return nil
}

// calleeFunc resolves a call to its static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// isInstrumentationSink reports whether fn is one of the declared obs
// recording entry points.
func isInstrumentationSink(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
		return false
	}
	name := fn.Name()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			name = named.Obj().Name() + "." + name
		}
	}
	return instrumentationSinks[name]
}

// isMutatingOpName reports whether an exported identifier starts with a
// mutating verb at a word boundary (SetUnique yes, Settings no).
func isMutatingOpName(name string) bool {
	for _, verb := range mutatingVerbs {
		if rest, ok := strings.CutPrefix(name, verb); ok {
			if rest == "" || unicode.IsUpper(rune(rest[0])) || unicode.IsDigit(rune(rest[0])) {
				return true
			}
		}
	}
	return false
}
