package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// RunInfo summarizes one Run invocation: how much was analyzed, what was
// silenced, and what each analyzer cost. Lint wall-time must stay visible
// as analyzers accumulate, or the lane quietly becomes the slowest thing
// in CI.
type RunInfo struct {
	// Files is the number of source files analyzed across all packages.
	Files int
	// Suppressed counts findings dropped by slimvet:ignore annotations.
	Suppressed int
	// AnalyzerNS maps analyzer name to its total wall-clock nanoseconds
	// across all packages.
	AnalyzerNS map[string]int64
}

// Run applies the analyzers to the packages and returns the findings,
// sorted by file, line, column, and analyzer. Findings on lines annotated
// `// slimvet:ignore <analyzer>[,<analyzer>]` (on the finding's line or the
// line above) are suppressed.
func (l *Loader) Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := l.RunDetailed(pkgs, analyzers)
	return diags, err
}

// RunDetailed is Run plus per-run accounting: file counts, suppression
// counts, and per-analyzer wall time.
func (l *Loader) RunDetailed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, RunInfo, error) {
	info := RunInfo{AnalyzerNS: make(map[string]int64, len(analyzers))}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		info.Files += len(pkg.Files)
		suppress := collectSuppressions(l.Fset, pkg, l.ModuleRoot)
		for _, az := range analyzers {
			pass := &Pass{
				Analyzer:   az,
				Fset:       l.Fset,
				Pkg:        pkg,
				moduleRoot: l.ModuleRoot,
				diags:      &diags,
			}
			start := time.Now()
			err := az.Run(pass)
			info.AnalyzerNS[az.Name] += int64(time.Since(start))
			if err != nil {
				return nil, info, err
			}
		}
		before := len(diags)
		diags = applySuppressions(diags, suppress)
		info.Suppressed += before - len(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, info, nil
}

var ignoreRe = regexp.MustCompile(`slimvet:ignore\s+([\w,]+)`)

// suppression marks one file line as exempt from the named analyzers.
type suppression map[string]map[int]map[string]bool // file -> line -> analyzers

// collectSuppressions scans a package's comments for slimvet:ignore
// annotations. The annotation names the analyzers it silences; there is no
// blanket form, so every exemption stays attributable.
func collectSuppressions(fset *token.FileSet, pkg *Package, moduleRoot string) suppression {
	sup := suppression{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				file := relPath(moduleRoot, pos.Filename)
				if sup[file] == nil {
					sup[file] = map[int]map[string]bool{}
				}
				names := map[string]bool{}
				for _, name := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(name)] = true
				}
				sup[file][pos.Line] = names
			}
		}
	}
	return sup
}

// relPath rewrites an absolute file path into module-root-relative form.
func relPath(moduleRoot, file string) string {
	if rel, err := filepath.Rel(moduleRoot, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return file
}

// applySuppressions drops diagnostics whose line (or the line above it)
// carries a matching slimvet:ignore annotation.
func applySuppressions(diags []Diagnostic, sup suppression) []Diagnostic {
	if len(sup) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		lines := sup[d.File]
		if lines[d.Line][d.Analyzer] || lines[d.Line-1][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}
