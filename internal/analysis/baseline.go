package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline records accepted debt: findings that predate an analyzer and
// are being burned down rather than fixed in one PR. The lint lane gates on
// findings *beyond* the baseline, and on baseline entries that no longer
// match anything (stale entries), so the file can only shrink truthfully.
//
// Entries are keyed by (analyzer, file, message) with an occurrence count —
// no line numbers, so unrelated edits to a baselined file don't invalidate
// it, while fixing one of N identical findings does force a refresh.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding kind in one file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// String renders the entry for human-readable stale reports.
func (e BaselineEntry) String() string {
	return fmt.Sprintf("%s: %s (%s) ×%d", e.File, e.Message, e.Analyzer, e.Count)
}

// NewBaseline aggregates diagnostics into a baseline.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		k := d.Key()
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: d.Message, Count: 1}
	}
	b := &Baseline{Version: 1}
	for _, e := range counts {
		b.Entries = append(b.Entries, *e)
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
	return b
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// so a repo without debt needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as stable, diff-friendly JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: encode baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("analysis: write baseline: %w", err)
	}
	return nil
}

// Apply splits findings against the baseline: fresh findings exceed their
// entry's count (or have no entry), stale entries cover more findings than
// still exist. When a key's findings exceed its allowance the later
// occurrences (by position) are reported, so long-standing debt at the top
// of a file stays baselined.
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	allowed := map[string]int{}
	for _, e := range b.Entries {
		allowed[e.key()] += e.Count
	}
	seen := map[string]int{}
	for _, d := range diags {
		k := d.Key()
		seen[k]++
		if seen[k] > allowed[k] {
			fresh = append(fresh, d)
		}
	}
	for _, e := range b.Entries {
		if n := seen[e.key()]; n < e.Count {
			left := e
			left.Count = e.Count - n
			stale = append(stale, left)
		}
	}
	return fresh, stale
}
