package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicHygiene enforces all-or-nothing atomicity: state accessed through
// sync/atomic anywhere must be accessed atomically everywhere. A single
// plain read racing one atomic write is still a data race, and it is the
// easiest regression to introduce — the plain access compiles, passes
// tests, and works until the scheduler disagrees. Lock-free reader paths
// are the heart of the MVCC design (ROADMAP item 2), so this discipline
// has to be mechanical before that code lands.
//
// Two regimes are checked:
//
//  1. Typed atomics (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...):
//     the only legal uses of a value of these types are calling its
//     methods and taking its address. Copying one by value (assignment,
//     struct copy, range over a slice of them, passing as an argument)
//     silently forks the value — both copies keep "working" atomically
//     while no longer being the same variable.
//
//  2. Function-style atomics (atomic.LoadInt64(&x), atomic.AddUint64(&x,
//     1), ...): once any variable's address flows into a sync/atomic
//     call, every other access to that variable must be atomic too.
//     Constructor/init paths (func init, New*-named constructors) are
//     exempt — before the value is published there is no concurrency to
//     race with.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc: "state accessed via sync/atomic anywhere must be accessed atomically " +
		"everywhere: typed atomics must never be copied by value, and variables " +
		"used with atomic.Load*/Store*/Add* must not mix in plain reads or writes " +
		"outside an init path",
	Run: runAtomicHygiene,
}

func runAtomicHygiene(pass *Pass) error {
	checkTypedAtomics(pass)
	checkFunctionAtomics(pass)
	return nil
}

// isAtomicValueType reports whether t (or what it names) is one of
// sync/atomic's typed atomics (Int64, Bool, Pointer[T], ...). The Value
// type included: copying an atomic.Value after first use is equally
// broken.
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// Generic instantiations (atomic.Pointer[T]) still present as Named;
		// aliases resolve through Underlying via the Named origin.
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkTypedAtomics flags by-value uses of typed atomics. The walk keeps
// the parent node at hand: an expression of atomic type is fine exactly
// when it is the receiver of a method call, the operand of &, or a
// declaration/selection naming it — anything else observes or copies the
// value.
func checkTypedAtomics(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := info.Types[e]
			if !ok || tv.IsType() || !tv.IsValue() || !isAtomicValueType(tv.Type) {
				return true
			}
			if _, isLit := e.(*ast.CompositeLit); isLit {
				// The literal itself (atomic.Int64{}) is a fresh zero value;
				// what happens to it is judged at the parent node.
				return true
			}
			if typedAtomicUseOK(info, stack, e) {
				return true
			}
			pass.Reportf(e.Pos(), "%s value of type %s is copied or read by value; typed atomics must only be used via their methods or address",
				exprLabel(e), types.TypeString(tv.Type, types.RelativeTo(pass.TypesPkg())))
			return true
		})
	}

	// Range statements copy elements: `for _, c := range counters` where the
	// element type is (or contains at top level) a typed atomic forks every
	// element. The element expression itself never appears in info.Types, so
	// it needs its own check.
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || rs.Value == nil {
				return true
			}
			t := info.TypeOf(rs.Value)
			if t != nil && isAtomicValueType(t) {
				pass.Reportf(rs.Value.Pos(), "range copies %s values element-by-element; iterate by index and use the element's address",
					types.TypeString(t, types.RelativeTo(pass.TypesPkg())))
			}
			return true
		})
	}
}

// typedAtomicUseOK reports whether the typed-atomic expression e, whose
// parent chain is stack (e last), is used legally: method receiver,
// address-of, or as the inner expression of a selector/paren chain that
// is itself legal.
func typedAtomicUseOK(info *types.Info, stack []ast.Node, e ast.Expr) bool {
	if len(stack) < 2 {
		return true
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.Sel == e {
			return true // the name inside a selector, not a value use
		}
		// e is p.X: fine if the selector is a method (c.total.Load) or a
		// deeper field path ((&s.counters).total); a field selection *of*
		// the atomic would be reaching into its unexported guts — flag it.
		if sel, ok := info.Selections[p]; ok {
			return sel.Kind() == types.MethodVal
		}
		return true
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	case *ast.KeyValueExpr:
		return p.Key == e // map{atomicVal: ...} as a key would be bizarre; field names land here
	case *ast.StarExpr, *ast.ParenExpr:
		// Deref of *atomic.T or parens: judged at the grandparent via its
		// own Types entry.
		return true
	}
	return false
}

// exprLabel renders a short source-ish label for an expression in
// diagnostics.
func exprLabel(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprLabel(e.X)
	case *ast.ParenExpr:
		return exprLabel(e.X)
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[...]"
	case *ast.CallExpr:
		return exprLabel(e.Fun) + "(...)"
	}
	return "expression"
}

// checkFunctionAtomics implements the mixed-access rule for function-style
// atomics: collect every variable whose address is passed to a sync/atomic
// function, then flag its plain uses.
func checkFunctionAtomics(pass *Pass) {
	info := pass.Info()

	// Pass 1: variables used atomically — &v as the address argument of a
	// sync/atomic call.
	atomicVars := map[*types.Var]bool{}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if v := addressedVar(info, arg); v != nil {
					atomicVars[v] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: any other use of those variables is a plain (racy) access,
	// unless it is itself an address-arg to a sync/atomic call or the
	// enclosing function is an init path.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isInitPath(fd.Name.Name) {
				continue
			}
			reported := map[*types.Var]bool{}
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				v := atomicUseVar(info, n)
				if v == nil || !atomicVars[v] || reported[v] {
					return true
				}
				if insideAtomicAddressArg(info, stack) {
					return true
				}
				reported[v] = true
				pass.Reportf(n.Pos(), "%s mixes a plain access to %s with sync/atomic operations elsewhere; every access must go through sync/atomic",
					funcDisplayName(fd), v.Name())
				return true
			})
		}
	}
}

// isAtomicPkgCall reports whether call targets a function in sync/atomic
// (LoadInt64, StoreUint64, AddInt32, SwapPointer, CompareAndSwap*, ...).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// addressedVar resolves an `&expr` argument to the variable whose address
// is taken: a plain ident or a field selector's field object.
func addressedVar(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	return varOf(info, un.X)
}

// varOf resolves expr to the variable object it names: `count` -> count,
// `s.count` -> the field object (shared across instances — matching the
// field-identity model lockguard and lockorder use).
func varOf(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		v, _ := obj.(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	}
	return nil
}

// atomicUseVar maps an AST node to the atomic-tracked variable it uses, if
// any: the ident or field-selector access itself.
func atomicUseVar(info *types.Info, n ast.Node) *types.Var {
	switch e := n.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	}
	return nil
}

// insideAtomicAddressArg reports whether the current node (stack's last
// element) sits under an & expression that is an argument to a
// sync/atomic call — i.e. this use IS the atomic access.
func insideAtomicAddressArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.UnaryExpr:
			if p.Op.String() != "&" {
				return false
			}
		case *ast.CallExpr:
			return isAtomicPkgCall(info, p)
		case *ast.ParenExpr, *ast.SelectorExpr:
			// keep climbing
		default:
			return false
		}
	}
	return false
}

// isInitPath reports whether a function name marks pre-publication
// initialization, where plain writes to later-atomic state are safe.
func isInitPath(name string) bool {
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}
