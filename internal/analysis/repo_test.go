package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoMatchesBaseline runs the full analyzer set over the real module
// and asserts the committed baseline is exact: no findings beyond it (the
// lint gate would fail) and no stale entries (debt that was fixed without
// refreshing the baseline). This is the same check `make lint` applies in
// CI, pinned as a test so `go test ./...` catches drift too.
func TestRepoMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	l, err := NewLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load ./... found only %d packages; discovery is broken", len(pkgs))
	}
	diags, err := l.Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	baseline, err := LoadBaseline(filepath.Join(l.ModuleRoot, "slimvet.baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(baseline.Entries) == 0 {
		t.Fatalf("slimvet.baseline.json is missing or empty; the repo carries known errwrap debt")
	}
	fresh, stale := baseline.Apply(diags)
	for _, d := range fresh {
		t.Errorf("finding beyond baseline: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (fixed? refresh with slimvet -update-baseline): %s", e)
	}

	// The satellite contract: trim and mark carry zero errwrap/lockguard
	// debt, baselined or otherwise.
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "internal/trim/") && !strings.HasPrefix(d.File, "internal/mark/") {
			continue
		}
		if d.Analyzer == "errwrap" || d.Analyzer == "lockguard" {
			t.Errorf("internal/trim and internal/mark must stay clean: %s", d)
		}
	}
}
