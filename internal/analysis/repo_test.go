package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoMatchesBaseline runs the full analyzer set over the real module
// and asserts the committed baseline is exact: no findings beyond it (the
// lint gate would fail) and no stale entries (debt that was fixed without
// refreshing the baseline). This is the same check `make lint` applies in
// CI, pinned as a test so `go test ./...` catches drift too.
func TestRepoMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	l, err := NewLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load ./... found only %d packages; discovery is broken", len(pkgs))
	}
	diags, err := l.Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	baseline, err := LoadBaseline(filepath.Join(l.ModuleRoot, "slimvet.baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(baseline.Entries) == 0 {
		t.Fatalf("slimvet.baseline.json is missing or empty; the repo carries known errwrap debt")
	}
	fresh, stale := baseline.Apply(diags)
	for _, d := range fresh {
		t.Errorf("finding beyond baseline: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (fixed? refresh with slimvet -update-baseline): %s", e)
	}

	// The satellite contract: trim and mark carry zero errwrap/lockguard
	// debt, baselined or otherwise.
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "internal/trim/") && !strings.HasPrefix(d.File, "internal/mark/") {
			continue
		}
		if d.Analyzer == "errwrap" || d.Analyzer == "lockguard" {
			t.Errorf("internal/trim and internal/mark must stay clean: %s", d)
		}
	}

	// The MVCC-readiness contract (ISSUE 9): the packages ROADMAP item 2
	// will rewrite pass the four concurrency-safety analyzers with an empty
	// baseline — zero findings, baselined or otherwise. Mirrors the gating
	// zero-baseline lane in scripts/ci.sh.
	concurrencyAnalyzers := map[string]bool{
		"aliasguard": true, "lockorder": true, "atomichygiene": true, "gorolife": true,
	}
	cleanDirs := []string{"internal/trim/", "internal/wal/", "internal/durable/", "internal/mark/"}
	for _, d := range diags {
		if !concurrencyAnalyzers[d.Analyzer] {
			continue
		}
		for _, dir := range cleanDirs {
			if strings.HasPrefix(d.File, dir) {
				t.Errorf("%s must stay clean under the concurrency analyzers: %s", strings.TrimSuffix(dir, "/"), d)
			}
		}
	}
}

// TestLockOrderCycleWithTrackedMutexes is the tracked-lock regression: the
// obs.TrackedMutex drop-ins must participate in the acquisition graph
// exactly like sync.Mutex, so an inconsistent order between two tracked
// locks is reported from both sides. The lockorder fixture's Tracked
// scenario is the input; this test pins that the findings come from the
// tracked pair specifically, not just the plain-mutex scenarios.
func TestLockOrderCycleWithTrackedMutexes(t *testing.T) {
	l := newFixtureLoader(t)
	dir := filepath.Join(fixtureRoot(t, l), "lockorder")
	pkg, err := l.LoadDir(dir, "fixture/internal/lockorder")
	if err != nil {
		t.Fatalf("load lockorder fixture: %v", err)
	}
	diags, err := l.Run([]*Package{pkg}, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatalf("run lockorder: %v", err)
	}
	var forward, backward bool
	for _, d := range diags {
		if strings.Contains(d.Message, "Tracked.tn is acquired while holding Tracked.tm") {
			forward = true
		}
		if strings.Contains(d.Message, "Tracked.tm is acquired while holding Tracked.tn") {
			backward = true
		}
	}
	if !forward || !backward {
		t.Errorf("tracked-mutex cycle not reported from both sides (forward=%v backward=%v):\n%s",
			forward, backward, diagDump(diags))
	}
}
