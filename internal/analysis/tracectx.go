package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TraceCtx enforces the span-lifecycle conventions of the causal-tracing
// layer (docs/OBSERVABILITY.md): a span handed out by obs.StartCtx records
// nothing until it is finished, so losing the handle silently drops the
// span — and every child started under the lost span's context still
// records, leaving a hole in the middle of the trace tree.
//
//  1. The span result of obs.StartCtx must not be discarded (assigned to
//     `_`, or the call used as a bare statement).
//  2. The span must be finished in a defer — `defer sp.Finish()`,
//     `defer sp.FinishErr(err)`, or a deferred func literal that calls
//     either — so early returns and panics record too. A span that
//     escapes the function (returned, passed to a call, stored in a
//     struct) is the caller's to finish and is exempt.
//  3. A span finished only by a plain (non-deferred) call is reported:
//     every return path before the call skips the record.
//
// The obs package itself (the implementation) is exempt, matching
// metricnames.
var TraceCtx = &Analyzer{
	Name: "tracectx",
	Doc: "spans from obs.StartCtx must be finished in a defer (or escape to " +
		"the caller), never discarded",
	Run: runTraceCtxPass,
}

// isStartCtxFunc reports whether fn is the obs StartCtx entry point — the
// package function or the Tracer method, keyed off the import-path suffix
// like the other obs-aware analyzers.
func isStartCtxFunc(fn *types.Func) bool {
	return fn != nil && fn.Name() == "StartCtx" &&
		fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/obs")
}

// spanState tracks one span variable born from obs.StartCtx.
type spanState struct {
	name    string
	pos     ast.Node // the StartCtx call, for reporting
	defers  bool     // finished inside a defer
	direct  bool     // finished by a plain call
	escapes bool     // leaves the function: the caller finishes it
}

func runTraceCtxPass(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanLifecycles(pass, info, fd.Body)
		}
	}
	return nil
}

// checkSpanLifecycles runs the three rules over one function body.
// Function literals are checked as part of the enclosing body: a span
// started inside a literal and finished there resolves the same way.
func checkSpanLifecycles(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Pass 1: find StartCtx call sites and the span objects they define.
	spans := map[types.Object]*spanState{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isStartCtxFunc(calleeFunc(info, call)) {
				pass.Reportf(call.Pos(), "obs.StartCtx result discarded; the span is never finished and never records")
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isStartCtxFunc(calleeFunc(info, call)) {
					continue
				}
				// StartCtx returns (ctx, span); with a single call on the
				// RHS the span lands in the second LHS slot.
				if len(n.Rhs) != 1 || len(n.Lhs) != 2 {
					continue
				}
				id, ok := n.Lhs[1].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(call.Pos(), "span from obs.StartCtx assigned to _; it is never finished and never records")
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					spans[obj] = &spanState{name: id.Name, pos: call}
				}
			}
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// lookup resolves an expression to a tracked span, if any.
	lookup := func(e ast.Expr) *spanState {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return spans[info.Uses[id]]
	}
	// finishCall resolves a call like sp.Finish()/sp.FinishErr(err) to the
	// span it finishes.
	finishCall := func(call *ast.CallExpr) *spanState {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Finish" && sel.Sel.Name != "FinishErr") {
			return nil
		}
		return lookup(sel.X)
	}

	// Pass 2: classify every use of each span. Deferred finishes are
	// marked first so pass 3 can treat the remaining finish calls as
	// plain ones.
	deferredFinishes := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if st := finishCall(d.Call); st != nil {
			st.defers = true
			deferredFinishes[d.Call] = true
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if st := finishCall(call); st != nil {
						st.defers = true
						deferredFinishes[call] = true
					}
				}
				return true
			})
		}
		return true
	})

	// Pass 3: plain finishes and escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if st := finishCall(n); st != nil && !deferredFinishes[n] {
				st.direct = true
			}
			// A span passed as an argument escapes to the callee.
			for _, arg := range n.Args {
				if st := lookup(arg); st != nil {
					st.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if st := lookup(res); st != nil {
					st.escapes = true
				}
			}
		case *ast.AssignStmt:
			// Reassigning the span elsewhere (a field, another variable)
			// hands the lifecycle over.
			for _, rhs := range n.Rhs {
				if st := lookup(rhs); st != nil {
					st.escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if st := lookup(e); st != nil {
					st.escapes = true
				}
			}
		}
		return true
	})

	for _, st := range spans {
		switch {
		case st.defers || st.escapes:
		case st.direct:
			pass.Reportf(st.pos.Pos(), "span %s is finished outside a defer; early returns skip the record — use defer %s.Finish() or defer a FinishErr closure",
				st.name, st.name)
		default:
			pass.Reportf(st.pos.Pos(), "span %s from obs.StartCtx is never finished; defer %s.Finish() (or FinishErr) so the span records",
				st.name, st.name)
		}
	}
}
