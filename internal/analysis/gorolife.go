package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GoroLife requires every goroutine started in a library package
// (anything under internal/) to have a bounded lifecycle. A goroutine
// with no way to be told to stop outlives its owner: it leaks, keeps its
// captures reachable, and — the concern that motivates checking this now
// — turns the shutdown half of every lifecycle bug into a hang. The MVCC
// refactor (ROADMAP item 2) adds background work (snapshot GC, shard
// maintenance), so the rule goes in before that code does.
//
// A `go` statement is bounded when the spawned code observably watches
// for termination or completion:
//
//   - it receives from or ranges over a channel (a done/stop channel or a
//     work queue whose close terminates the loop),
//   - it calls ctx.Done()/ctx.Err() on a context.Context,
//   - it signals a sync.WaitGroup via Done (the owner is tracking it).
//
// The check looks inside function literals and one level into
// same-package named callees (`go s.loop(...)` keeps its loop in a
// method). A goroutine running a cross-package or dynamic callee is given
// the benefit of the doubt when a context, channel, or *sync.WaitGroup is
// among the arguments — the callee was visibly handed a termination
// signal.
//
// Deliberate process-lifetime goroutines are annotated at the go
// statement:
//
//	// slimvet:gorolife <reason>
//
// with a non-empty reason, which is itself enforced: a bare annotation is
// a finding, so every escape hatch records why it is safe.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc: "goroutines in internal/ packages must have a bounded lifecycle: observe a " +
		"context.Context or done channel, or signal a sync.WaitGroup; annotate " +
		"deliberate process-lifetime goroutines with `// slimvet:gorolife <reason>`",
	Run: runGoroLife,
}

var goroLifeAnnotationRe = regexp.MustCompile(`^slimvet:gorolife(?:\s+(.*))?$`)

func runGoroLife(pass *Pass) error {
	if !strings.Contains(pass.TypesPkg().Path(), "internal/") {
		return nil // cmd/ and test scaffolding own their process lifetime
	}
	info := pass.Info()

	// Index same-package function bodies for the one-level callee check.
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}

	for _, f := range pass.Files() {
		annotations := goroLifeAnnotations(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			line := pass.Fset.Position(gs.Pos()).Line
			if annotations[line] {
				return true
			}
			if goStmtBounded(info, bodies, gs) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine has no bounded lifecycle: it observes no context or done channel and signals no WaitGroup; wire a stop signal or annotate `// slimvet:gorolife <reason>`")
			return true
		})
	}
	return nil
}

// goroLifeAnnotations collects the lines covered by `slimvet:gorolife
// <reason>` comments (the comment's own line and the line after it, so
// both same-line and line-above placement work), reporting bare
// annotations with no reason.
func goroLifeAnnotations(pass *Pass, f *ast.File) map[int]bool {
	covered := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := annotationText(c.Text, "slimvet:gorolife")
			if !ok {
				continue
			}
			m := goroLifeAnnotationRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			if strings.TrimSpace(m[1]) == "" {
				pass.Reportf(c.Pos(), "slimvet:gorolife annotation needs a reason: say why this goroutine may run for the process lifetime")
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			covered[line] = true
			covered[line+1] = true
		}
	}
	return covered
}

// goStmtBounded decides whether the go statement's spawned code has a
// visible termination signal.
func goStmtBounded(info *types.Info, bodies map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) bool {
	call := gs.Call

	// A closure: inspect its body directly.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyObservesTermination(info, lit.Body)
	}

	// A named same-package callee: look one level into its body.
	if fn := calleeFunc(info, call); fn != nil {
		if fd, ok := bodies[fn]; ok {
			return bodyObservesTermination(info, fd.Body)
		}
	}

	// Cross-package or dynamic callee: bounded if it was handed a
	// termination signal — a context, a channel, or a WaitGroup pointer.
	for _, arg := range call.Args {
		if isTerminationCarrier(info.TypeOf(arg)) {
			return true
		}
	}
	// Method call on a receiver that carries a signal is opaque; without
	// arguments to judge by, treat it as unbounded and let the author
	// annotate.
	return false
}

// bodyObservesTermination reports whether body contains a channel
// receive, a range over a channel, a ctx.Done()/ctx.Err() call, or a
// WaitGroup.Done call. Nested `go` statements are not descended into —
// each goroutine justifies its own lifecycle — but nested function
// literals are, since the body may delegate its select loop to a local
// closure it calls.
func bodyObservesTermination(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if isTerminationCall(info, n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isTerminationCall reports whether call is ctx.Done(), ctx.Err(), or
// (*sync.WaitGroup).Done().
func isTerminationCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Done", "Err":
	default:
		return false
	}
	recvT := info.TypeOf(sel.X)
	if recvT == nil {
		return false
	}
	if isContextType(recvT) {
		return true
	}
	return sel.Sel.Name == "Done" && isWaitGroupType(recvT)
}

// isTerminationCarrier reports whether an argument of type t hands the
// callee a termination signal: a context.Context, any channel, or a
// *sync.WaitGroup.
func isTerminationCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) || isWaitGroupType(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
