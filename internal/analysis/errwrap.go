package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the error-taxonomy conventions from docs/ROBUSTNESS.md:
//
//  1. fmt.Errorf must format error operands with %w, not %v/%s — otherwise
//     the chain is cut and errors.Is(err, ErrTransient)-style
//     classification (mark.Classify, the degradation ladder) stops seeing
//     the sentinel.
//  2. Sentinel errors (package-level `ErrX` variables) must be compared
//     with errors.Is, never == or a switch case — wrapped sentinels fail
//     direct comparison.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf with an error operand must use %w; " +
		"sentinel errors must be compared with errors.Is, not == / switch",
	Run: runErrWrap,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

func runErrWrap(pass *Pass) error {
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfCall(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n.Pos(), n.X, n.Y)
				}
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorfCall flags fmt.Errorf calls whose format string applies a
// non-%w verb to an error operand.
func checkErrorfCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Info()
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	for _, v := range parseVerbs(format) {
		// %w wraps; %T legitimately prints an error's concrete type.
		if v.verb == 'w' || v.verb == 'T' {
			continue
		}
		argIdx := 1 + v.operand
		if argIdx >= len(call.Args) {
			continue
		}
		arg := call.Args[argIdx]
		if !implementsError(info.TypeOf(arg)) {
			continue
		}
		pass.Reportf(arg.Pos(), "fmt.Errorf formats error %q with %%%c; use %%w to keep the chain classifiable",
			exprText(arg), v.verb)
	}
}

// verb is one format directive and the 0-based operand index it consumes.
type verb struct {
	verb    rune
	operand int
}

// parseVerbs extracts the verbs of a fmt format string together with the
// operand index each consumes. Explicit argument indexes (%[n]d) abort
// parsing — they are rare and not worth modeling here.
func parseVerbs(format string) []verb {
	var out []verb
	operand := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		if rs[i] == '[' {
			return nil // explicit argument index: give up on the whole string
		}
		// flags, width, precision; '*' consumes an operand of its own.
		for i < len(rs) {
			r := rs[i]
			if strings.ContainsRune("+-# 0.", r) || (r >= '0' && r <= '9') {
				i++
				continue
			}
			if r == '*' {
				operand++
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		out = append(out, verb{verb: rs[i], operand: operand})
		operand++
	}
	return out
}

// sentinelVar resolves expr to a package-level error variable named Err*.
func sentinelVar(info *types.Info, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	// Package level: the variable's parent scope is its package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

func isNilIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// checkSentinelCompare flags `err == ErrX` / `err != ErrX`.
func checkSentinelCompare(pass *Pass, pos token.Pos, x, y ast.Expr) {
	info := pass.Info()
	if isNilIdent(info, x) || isNilIdent(info, y) {
		return
	}
	for _, side := range []ast.Expr{x, y} {
		if v := sentinelVar(info, side); v != nil {
			pass.Reportf(pos, "sentinel %s compared with ==/!=; use errors.Is so wrapped errors still match", v.Name())
			return
		}
	}
}

// checkSentinelSwitch flags `switch err { case ErrX: }`.
func checkSentinelSwitch(pass *Pass, info *types.Info, st *ast.SwitchStmt) {
	if st.Tag == nil || !implementsError(info.TypeOf(st.Tag)) {
		return
	}
	ast.Inspect(st.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if v := sentinelVar(info, e); v != nil {
				pass.Reportf(e.Pos(), "sentinel %s compared with ==/!=; use errors.Is so wrapped errors still match", v.Name())
			}
		}
		return true
	})
}

// exprText renders a short source form of an expression for messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	default:
		return "expr"
	}
}
