package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces SLIM's locking discipline:
//
//  1. A struct field whose doc or line comment says "guarded by <lock>"
//     (conventionally `// guarded by mu.`) may only be touched by code that
//     holds that lock: the function either acquires <lock> before the
//     access, is named with the *Locked suffix, or documents "caller holds
//     <lock>".
//  2. Callback values loaded from a guarded field (TRIM's observers) must
//     not be invoked while the lock is held — synchronous fan-out under the
//     store lock turns a slow observer into a store-wide stall and a
//     re-entrant observer into a deadlock. Snapshot under the lock, deliver
//     after unlock.
//
// Lock state is tracked in statement order per function (Lock/RLock sets
// it, Unlock/RUnlock clears it, deferred unlocks hold to function end);
// branches are treated as straight-line code, which is exact for the
// lock-then-defer-unlock shapes this repo uses.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `guarded by mu` must only be accessed with the lock held; " +
		"callbacks loaded from guarded fields must not run under the lock",
	Run: runLockGuard,
}

var (
	guardedByRe    = regexp.MustCompile(`(?i)guarded by (\w+)`)
	callerHoldsRe  = regexp.MustCompile(`(?i)caller[s]? (?:must )?hold[s]? (\w+)`)
	lockMethodName = map[string]bool{"Lock": true, "RLock": true}
	unlockMethods  = map[string]bool{"Unlock": true, "RUnlock": true}
)

func runLockGuard(pass *Pass) error {
	info := pass.Info()

	// Pass 1: collect guarded fields (field object -> lock field name) and
	// validate that the named lock exists in the same struct.
	guarded := map[*types.Var]string{}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				text := field.Doc.Text() + " " + field.Comment.Text()
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				lock := m[1]
				if !fieldNames[lock] {
					pass.Reportf(field.Pos(), "field is annotated `guarded by %s` but the struct has no field %q", lock, lock)
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						guarded[v] = lock
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Pass 2: walk every function, tracking lock state in statement order.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockGuardFunc(pass, fd, guarded)
		}
	}
	return nil
}

// lgState is the per-function walk state.
type lgState struct {
	pass    *Pass
	fn      *ast.FuncDecl
	guarded map[*types.Var]string
	// held tracks which lock names are currently held.
	held map[string]bool
	// entryHeld: the function is *Locked-suffixed or documented as running
	// under the caller's lock, so every guard is considered held throughout.
	entryHeld bool
	// tainted maps local idents holding callback values loaded from a
	// guarded field to that field's name.
	tainted map[types.Object]string
	// reported dedupes (field, function) pairs so one unguarded field used
	// five times yields one finding.
	reported map[string]bool
}

func checkLockGuardFunc(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	name := fd.Name.Name
	s := &lgState{
		pass:     pass,
		fn:       fd,
		guarded:  guarded,
		held:     map[string]bool{},
		tainted:  map[types.Object]string{},
		reported: map[string]bool{},
	}
	if strings.HasSuffix(name, "Locked") || callerHoldsRe.MatchString(fd.Doc.Text()) {
		s.entryHeld = true
	}
	s.walkStmts(fd.Body.List)
}

// walkStmts processes statements in source order, updating lock state and
// checking expressions.
func (s *lgState) walkStmts(stmts []ast.Stmt) {
	for _, st := range stmts {
		s.walkStmt(st)
	}
}

func (s *lgState) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if lock, isLock, acquires := s.lockOp(call); isLock {
				s.held[lock] = acquires
				return
			}
		}
		s.checkExpr(st.X)
	case *ast.DeferStmt:
		if lock, isLock, acquires := s.lockOp(st.Call); isLock {
			if acquires {
				s.held[lock] = true // defer Lock() is odd; treat as held
			}
			// Deferred unlock: the lock stays held for the rest of the body.
			return
		}
		s.checkExpr(st.Call)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.checkExpr(rhs)
		}
		s.recordTaintAssign(st)
		for _, lhs := range st.Lhs {
			s.checkExpr(lhs)
		}
	case *ast.RangeStmt:
		s.checkExpr(st.X)
		s.recordTaintRange(st)
		s.walkBranch(st.Body)
	case *ast.BlockStmt:
		s.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		s.checkExpr(st.Cond)
		s.walkBranch(st.Body)
		if st.Else != nil {
			s.walkBranch(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		if st.Cond != nil {
			s.checkExpr(st.Cond)
		}
		s.walkBranch(st.Body)
		if st.Post != nil {
			s.walkStmt(st.Post)
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		if st.Tag != nil {
			s.checkExpr(st.Tag)
		}
		s.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		s.walkStmt(st.Assign)
		s.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.checkExpr(e)
		}
		s.walkBranchStmts(st.Body)
	case *ast.SelectStmt:
		s.walkStmt(st.Body)
	case *ast.CommClause:
		if st.Comm != nil {
			s.walkStmt(st.Comm)
		}
		s.walkBranchStmts(st.Body)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.checkExpr(e)
		}
	case *ast.GoStmt:
		// A goroutine runs on its own schedule: lock state there is unknown,
		// so only guarded-access checks apply, with no held locks.
		saved := s.held
		s.held = map[string]bool{}
		s.checkExpr(st.Call)
		s.held = saved
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.LabeledStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.checkExpr(e)
				return false
			}
			return true
		})
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.checkExpr(e)
				return false
			}
			return true
		})
	}
}

// walkBranch walks a conditionally executed body with branch-local lock
// state: a Lock/Unlock inside the branch does not leak into the code after
// it. This keeps the common early-exit shape
//
//	if !ok { mu.Unlock(); return }
//
// from clearing the held set on the fallthrough path. The trade-off is
// that a lock acquired inside a branch for use after it goes untracked —
// an already-suspect shape this repo does not use.
func (s *lgState) walkBranch(body ast.Stmt) {
	saved := make(map[string]bool, len(s.held))
	for k, v := range s.held {
		saved[k] = v
	}
	s.walkStmt(body)
	s.held = saved
}

// walkBranchStmts is walkBranch for case/comm clause bodies.
func (s *lgState) walkBranchStmts(body []ast.Stmt) {
	saved := make(map[string]bool, len(s.held))
	for k, v := range s.held {
		saved[k] = v
	}
	s.walkStmts(body)
	s.held = saved
}

// lockOp reports whether call is <x>.<lock>.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/sync.RWMutex or on one of the obs package's instrumented
// drop-ins (obs.TrackedMutex/TrackedRWMutex); acquires is true for
// Lock/RLock.
func (s *lgState) lockOp(call *ast.CallExpr) (lock string, isLock, acquires bool) {
	recv, method, ok := lockCall(s.pass.Info(), call)
	if !ok {
		return "", false, false
	}
	// The lock's name: the final selector or ident of the receiver expr.
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		lock = recv.Sel.Name
	case *ast.Ident:
		lock = recv.Name
	default:
		return "", false, false
	}
	return lock, true, lockMethodName[method]
}

// lockCall reports whether call is a Lock/RLock/Unlock/RUnlock method call
// on a lock-provider type (sync.Mutex/RWMutex or the obs tracked drop-ins),
// returning the receiver expression — the lock itself — and the method
// name. Shared by lockguard, aliasguard, and lockorder, so the three
// analyzers agree on what counts as a lock operation.
func lockCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	method = sel.Sel.Name
	if !lockMethodName[method] && !unlockMethods[method] {
		return nil, "", false
	}
	obj, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || !lockProviderPkg(obj.Pkg().Path()) {
		return nil, "", false
	}
	return sel.X, method, true
}

// lockProviderPkg reports whether a package declares lock types whose
// Lock/RLock/Unlock/RUnlock methods count as lock operations: the
// standard library's sync, and the obs package's tracked drop-ins.
func lockProviderPkg(path string) bool {
	return path == "sync" || strings.HasSuffix(path, "internal/obs")
}

// heldFor reports whether the lock guarding a field is held here.
func (s *lgState) heldFor(lock string) bool {
	return s.entryHeld || s.held[lock]
}

// checkExpr inspects an expression subtree for guarded-field accesses and
// guarded-callback invocations under the current lock state.
func (s *lgState) checkExpr(expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			s.checkCallbackCall(n)
		case *ast.SelectorExpr:
			if v, lock, ok := s.guardedField(n); ok && !s.heldFor(lock) {
				key := s.fn.Name.Name + "." + v.Name()
				if !s.reported[key] {
					s.reported[key] = true
					s.pass.Reportf(n.Sel.Pos(), "%s accesses %s (guarded by %s) without holding %s",
						funcDisplayName(s.fn), v.Name(), lock, lock)
				}
			}
		}
		return true
	})
}

// guardedField resolves a selector to a guarded struct field.
func (s *lgState) guardedField(sel *ast.SelectorExpr) (*types.Var, string, bool) {
	selection, ok := s.pass.Info().Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, "", false
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil, "", false
	}
	lock, ok := s.guarded[v]
	return v, lock, ok
}

// checkCallbackCall flags dynamic calls of values that came out of a
// guarded field while the guarding lock is held.
func (s *lgState) checkCallbackCall(call *ast.CallExpr) {
	var field string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := s.pass.Info().Uses[fun]
		if obj == nil {
			return
		}
		field = s.tainted[obj]
	default:
		if v, lock, ok := s.rootGuardedField(call.Fun); ok && isCallbackType(s.pass.Info().TypeOf(call.Fun)) {
			_ = lock
			field = v.Name()
		}
	}
	if field == "" {
		return
	}
	lock := ""
	for v, l := range s.guarded {
		if v.Name() == field {
			lock = l
			break
		}
	}
	if lock == "" || !s.heldFor(lock) {
		return
	}
	s.pass.Reportf(call.Pos(), "%s invokes a callback from guarded field %s while %s is held; snapshot under the lock and deliver after unlocking",
		funcDisplayName(s.fn), field, lock)
}

// rootGuardedField unwraps index/paren expressions to find a guarded-field
// selector at the root of expr.
func (s *lgState) rootGuardedField(expr ast.Expr) (*types.Var, string, bool) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return s.guardedField(e)
		default:
			return nil, "", false
		}
	}
}

// recordTaintRange taints `for _, v := range x.guardedField` value idents
// of callback type.
func (s *lgState) recordTaintRange(st *ast.RangeStmt) {
	v, _, ok := s.rootGuardedField(st.X)
	if !ok {
		return
	}
	val, ok := st.Value.(*ast.Ident)
	if !ok || val.Name == "_" {
		return
	}
	obj := s.pass.Info().Defs[val]
	if obj == nil {
		obj = s.pass.Info().Uses[val]
	}
	if obj != nil && isCallbackType(obj.Type()) {
		s.tainted[obj] = v.Name()
	}
}

// recordTaintAssign taints `cb := x.guardedField[...]` style assignments.
func (s *lgState) recordTaintAssign(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v, _, ok := s.rootGuardedField(st.Rhs[i])
		if !ok {
			continue
		}
		obj := s.pass.Info().Defs[id]
		if obj == nil {
			obj = s.pass.Info().Uses[id]
		}
		if obj != nil && isCallbackType(obj.Type()) {
			s.tainted[obj] = v.Name()
		}
	}
}

// isCallbackType reports whether t is (or names) a function type.
func isCallbackType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// funcDisplayName renders Type.Method or Func for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		if id, ok := idx.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
