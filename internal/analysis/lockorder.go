package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockOrder builds a per-package lock-acquisition graph and reports
// cycles. Deadlock via inconsistent acquisition order is the classic
// multi-lock failure, and it is exactly what the MVCC refactor (ROADMAP
// item 2) introduces the raw material for: per-shard locks plus the
// existing store and observability locks. A cycle only manifests under
// the right interleaving, so it survives any amount of testing; the
// acquisition *graph*, by contrast, is static.
//
// An edge a → b is recorded whenever lock b (a sync.Mutex/RWMutex or an
// obs tracked drop-in) is acquired while a is held — in straight-line
// code, or one call level deep through a same-package helper (the
// `*Locked` convention means the interesting acquisition often lives in
// the callee). Locks are keyed as Type.field for struct fields and by
// variable name for package-level locks, so two instances of the same
// struct share an identity — which is precisely the sharded-lock regime
// where ordering matters.
//
// The canonical order is declared once with an annotation anywhere in the
// package:
//
//	// slimvet:lockorder a < b
//
// Observed edges that agree with a declared order are never reported even
// if the reverse edge also exists — the declaration says which side is
// the bug. Declared edges that contradict each other, and declared names
// matching no lock in the package, are findings in their own right so the
// annotations cannot rot.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "locks must be acquired in a consistent order: the per-package acquisition " +
		"graph (including one call level through helpers) must be acyclic, with " +
		"`// slimvet:lockorder a < b` declaring the canonical order",
	Run: runLockOrder,
}

var lockOrderAnnotationRe = regexp.MustCompile(`^slimvet:lockorder\s+([\w.]+)\s*<\s*([\w.]+)`)

// annotationText strips comment markers and reports whether the comment is
// a slimvet annotation of the given kind — the marker must START the
// comment, so prose and doc examples that merely mention an annotation
// (like the analyzer docs themselves) do not register as one.
func annotationText(comment, marker string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	return text, true
}

// loEdge is one acquisition-order observation: to was acquired while from
// was held, first seen at pos.
type loEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *Pass) error {
	w := &loWalker{
		pass:     pass,
		bodies:   map[*types.Func]*ast.FuncDecl{},
		edges:    map[[2]string]token.Pos{},
		declared: map[[2]string]token.Pos{},
		known:    map[string]bool{},
	}

	// Index function bodies for the one-level callee scan, and collect
	// slimvet:lockorder declarations.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info().Defs[fd.Name].(*types.Func); ok {
				w.bodies[fn] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := annotationText(c.Text, "slimvet:lockorder")
				if !ok {
					continue
				}
				if m := lockOrderAnnotationRe.FindStringSubmatch(text); m != nil {
					key := [2]string{m[1], m[2]}
					if _, ok := w.declared[key]; !ok {
						w.declared[key] = c.Pos()
					}
				}
			}
		}
	}

	// Walk every function, tracking held locks in statement order.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.held = map[string]bool{}
			w.walkStmts(fd.Body.List)
		}
	}

	w.reportFindings()
	return nil
}

// loWalker accumulates the package's acquisition graph.
type loWalker struct {
	pass   *Pass
	bodies map[*types.Func]*ast.FuncDecl
	// held is the current function's held-lock set, branch-local like
	// lockguard's.
	held map[string]bool
	// edges: observed acquired-while-held pairs -> first position.
	edges map[[2]string]token.Pos
	// declared: slimvet:lockorder annotations -> annotation position.
	declared map[[2]string]token.Pos
	// known: every lock key seen in any lock operation, for validating
	// declared names.
	known map[string]bool
}

// lockOrderKey names a lock for graph purposes: Type.field for struct
// fields (so every instance of a sharded struct maps to one node) and the
// variable name for package-level or local lock variables.
func lockOrderKey(info *types.Info, recv ast.Expr) string {
	switch r := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[r]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + sel.Obj().Name()
			}
			return sel.Obj().Name()
		}
		if v, ok := info.Uses[r.Sel].(*types.Var); ok {
			return v.Name() // qualified package-level var: pkg.mu
		}
	case *ast.Ident:
		if v, ok := info.Uses[r].(*types.Var); ok {
			return v.Name()
		}
	}
	return ""
}

// lockOrderOp resolves call to a lock operation and its graph key.
func (w *loWalker) lockOrderOp(call *ast.CallExpr) (key string, isLock, acquires bool) {
	recv, method, ok := lockCall(w.pass.Info(), call)
	if !ok {
		return "", false, false
	}
	key = lockOrderKey(w.pass.Info(), recv)
	if key == "" {
		return "", false, false
	}
	return key, true, lockMethodName[method]
}

// acquire records lock key being taken at pos: edges from every held lock,
// then key joins the held set.
func (w *loWalker) acquire(key string, pos token.Pos) {
	w.known[key] = true
	for held := range w.held {
		e := [2]string{held, key}
		if _, ok := w.edges[e]; !ok {
			w.edges[e] = pos
		}
	}
	w.held[key] = true
}

func (w *loWalker) walkStmts(stmts []ast.Stmt) {
	for _, st := range stmts {
		w.walkStmt(st)
	}
}

func (w *loWalker) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, isLock, acquires := w.lockOrderOp(call); isLock {
				if acquires {
					w.acquire(key, call.Pos())
				} else {
					delete(w.held, key)
				}
				return
			}
		}
		w.scanExpr(st.X)
	case *ast.DeferStmt:
		if key, isLock, acquires := w.lockOrderOp(st.Call); isLock {
			if acquires {
				w.acquire(key, st.Call.Pos())
			}
			// Deferred unlock: held for the rest of the body.
			return
		}
		w.scanExpr(st.Call)
	case *ast.GoStmt:
		// The goroutine starts with nothing held; its own acquisitions
		// still contribute nodes and edges.
		saved := w.held
		w.held = map[string]bool{}
		w.scanExpr(st.Call)
		w.held = saved
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.scanExpr(st.Cond)
		w.walkBranch(st.Body)
		if st.Else != nil {
			w.walkBranch(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond)
		}
		w.walkBranch(st.Body)
		if st.Post != nil {
			w.walkStmt(st.Post)
		}
	case *ast.RangeStmt:
		w.scanExpr(st.X)
		w.walkBranch(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Tag != nil {
			w.scanExpr(st.Tag)
		}
		w.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkStmt(st.Assign)
		w.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			w.scanExpr(e)
		}
		w.walkBranchStmts(st.Body)
	case *ast.SelectStmt:
		w.walkStmt(st.Body)
	case *ast.CommClause:
		if st.Comm != nil {
			w.walkStmt(st.Comm)
		}
		w.walkBranchStmts(st.Body)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e)
				return false
			}
			return true
		})
	}
}

// walkBranch walks a conditionally executed body with branch-local held
// state, matching lockguard's model.
func (w *loWalker) walkBranch(body ast.Stmt) {
	saved := make(map[string]bool, len(w.held))
	for k, v := range w.held {
		saved[k] = v
	}
	w.walkStmt(body)
	w.held = saved
}

func (w *loWalker) walkBranchStmts(body []ast.Stmt) {
	saved := make(map[string]bool, len(w.held))
	for k, v := range w.held {
		saved[k] = v
	}
	w.walkStmts(body)
	w.held = saved
}

// scanExpr finds lock operations and helper calls buried in expressions
// (a lock op used as an expression is unusual but legal) and applies the
// one-level callee scan to static same-package calls made while holding.
func (w *loWalker) scanExpr(expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, isLock, acquires := w.lockOrderOp(call); isLock {
			if acquires {
				w.acquire(key, call.Pos())
			} else {
				delete(w.held, key)
			}
			return true
		}
		w.scanCallee(call)
		return true
	})
}

// scanCallee follows a static same-package call one level deep: any lock
// the callee acquires is an edge from every lock held at the call site,
// reported at the call site. This is what makes `*Locked` helpers —
// where the nested acquisition actually lives — visible to the graph.
// Goroutines and function literals inside the callee run on their own
// schedules and are skipped; recursion stops at one level.
func (w *loWalker) scanCallee(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	fn := calleeFunc(w.pass.Info(), call)
	if fn == nil {
		return
	}
	fd, ok := w.bodies[fn]
	if !ok {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, isLock, acquires := w.lockOrderOp(n); isLock && acquires {
				w.known[key] = true
				for held := range w.held {
					if held == key {
						continue // re-acquire through helper: the self-edge rule covers direct cases
					}
					e := [2]string{held, key}
					if _, ok := w.edges[e]; !ok {
						w.edges[e] = call.Pos()
					}
				}
			}
		}
		return true
	})
}

// reportFindings turns the accumulated graph into diagnostics:
// self-deadlocks, observed cycles not sanctioned by declarations,
// contradictory declarations, and declarations naming unknown locks.
func (w *loWalker) reportFindings() {
	observed := sortedEdges(w.edges)
	declared := sortedEdges(w.declared)

	declaredAdj := edgeAdjacency(w.declared)
	combined := map[string]map[string]bool{}
	for e := range w.edges {
		addEdge(combined, e[0], e[1])
	}
	for e := range w.declared {
		addEdge(combined, e[0], e[1])
	}

	for _, e := range observed {
		if e.from == e.to {
			w.pass.Reportf(e.pos, "%s is acquired while already held: self-deadlock", e.to)
			continue
		}
		if reaches(declaredAdj, e.from, e.to) {
			continue // conforms to the declared order; the reverse edge is the bug
		}
		if reaches(combined, e.to, e.from) {
			w.pass.Reportf(e.pos,
				"lock-order cycle: %s is acquired while holding %s, but %s is also acquired (directly or transitively) while holding %s; declare the canonical order with // slimvet:lockorder",
				e.to, e.from, e.from, e.to)
		}
	}

	for _, e := range declared {
		if e.from == e.to {
			w.pass.Reportf(e.pos, "slimvet:lockorder declares %s < %s: a lock cannot order before itself", e.from, e.to)
			continue
		}
		// Contradiction among declarations: remove this edge; if the reverse
		// is still reachable, the annotations themselves cycle.
		if reachesWithout(declaredAdj, e.to, e.from, e) {
			w.pass.Reportf(e.pos,
				"slimvet:lockorder declares %s < %s but other annotations imply %s < %s: contradictory declared order",
				e.from, e.to, e.to, e.from)
		}
		for _, name := range []string{e.from, e.to} {
			if !w.known[name] {
				w.pass.Reportf(e.pos, "slimvet:lockorder names unknown lock %q: no such lock operation in this package", name)
			}
		}
	}
}

func sortedEdges(m map[[2]string]token.Pos) []loEdge {
	out := make([]loEdge, 0, len(m))
	for e, pos := range m {
		out = append(out, loEdge{from: e[0], to: e[1], pos: pos})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

func addEdge(adj map[string]map[string]bool, from, to string) {
	if adj[from] == nil {
		adj[from] = map[string]bool{}
	}
	adj[from][to] = true
}

func edgeAdjacency(m map[[2]string]token.Pos) map[string]map[string]bool {
	adj := map[string]map[string]bool{}
	for e := range m {
		addEdge(adj, e[0], e[1])
	}
	return adj
}

// reaches reports whether to is reachable from from (in one or more hops).
func reaches(adj map[string]map[string]bool, from, to string) bool {
	return reachesWithout(adj, from, to, loEdge{})
}

// reachesWithout is reaches with one edge excluded (used to test whether a
// declaration contradicts the *other* declarations).
func reachesWithout(adj map[string]map[string]bool, from, to string, skip loEdge) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range adj[cur] {
			if cur == skip.from && next == skip.to {
				continue
			}
			if next == to {
				return true
			}
			if !seen[next] {
				stack = append(stack, next)
			}
		}
	}
	return false
}
