package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture corpus: one package per analyzer under
// testdata/src/fixture/internal/<name>, annotated with golden expectations:
//
//	s.data[k] // want `Store\.Peek accesses data`
//
// Each `// want` clause holds one or more backquoted regexps; every
// diagnostic the analyzer reports must match an expectation on its line,
// and every expectation must be consumed by exactly one diagnostic.

// fixtureRoot returns the absolute directory holding the fixture packages.
func fixtureRoot(t *testing.T, l *Loader) string {
	t.Helper()
	return filepath.Join(l.ModuleRoot, "internal", "analysis", "testdata", "src", "fixture", "internal")
}

// newFixtureLoader builds a Loader with the fixture-only import graph
// registered (the mini obs package the obscoverage/metricnames fixtures
// import).
func newFixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.RegisterImport("fixture/internal/obs", filepath.Join(fixtureRoot(t, l), "obs"))
	return l
}

// wantExpectation is one backquoted regexp from a `// want` comment.
type wantExpectation struct {
	file string // base name of the fixture file
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantClauseRe = regexp.MustCompile("`([^`]+)`")

// parseWants scans a fixture directory for `// want` annotations.
func parseWants(t *testing.T, dir string) []*wantExpectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*wantExpectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			_, clause, ok := strings.Cut(lineText, "// want ")
			if !ok {
				continue
			}
			matches := wantClauseRe.FindAllStringSubmatch(clause, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: `// want` with no backquoted pattern", e.Name(), i+1)
			}
			for _, m := range matches {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, &wantExpectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture loads one fixture package, runs one analyzer, and checks the
// diagnostics against the `// want` expectations in both directions.
func runFixture(t *testing.T, az *Analyzer, name string) {
	t.Helper()
	l := newFixtureLoader(t)
	dir := filepath.Join(fixtureRoot(t, l), name)
	pkg, err := l.LoadDir(dir, "fixture/internal/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	diags, err := l.Run([]*Package{pkg}, []*Analyzer{az})
	if err != nil {
		t.Fatalf("run %s: %v", az.Name, err)
	}
	wants := parseWants(t, dir)

	for _, d := range diags {
		if d.Analyzer != az.Name {
			t.Errorf("diagnostic from unexpected analyzer: %s", d)
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.hit && d.File != "" && filepath.Base(d.File) == w.file &&
				d.Line == w.line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestLockGuardFixture(t *testing.T)     { runFixture(t, LockGuard, "lockguard") }
func TestErrWrapFixture(t *testing.T)       { runFixture(t, ErrWrap, "errwrap") }
func TestCtxFlowFixture(t *testing.T)       { runFixture(t, CtxFlow, "ctxflow") }
func TestMetricNamesFixture(t *testing.T)   { runFixture(t, MetricNames, "metricnames") }
func TestTraceCtxFixture(t *testing.T)      { runFixture(t, TraceCtx, "tracectx") }
func TestAliasGuardFixture(t *testing.T)    { runFixture(t, AliasGuard, "aliasguard") }
func TestLockOrderFixture(t *testing.T)     { runFixture(t, LockOrder, "lockorder") }
func TestAtomicHygieneFixture(t *testing.T) { runFixture(t, AtomicHygiene, "atomichygiene") }
func TestGoroLifeFixture(t *testing.T)      { runFixture(t, GoroLife, "gorolife") }

func TestObsCoverageFixture(t *testing.T) {
	// The coverage contract binds a declared package set; enroll the fixture
	// for the duration of the test.
	const path = "fixture/internal/obscoverage"
	ObsCoverageTargets[path] = true
	defer delete(ObsCoverageTargets, path)
	runFixture(t, ObsCoverage, "obscoverage")
}

// TestSuppressionsCoverFixture locks in the slimvet:ignore behavior: the
// errwrap fixture contains one ignored violation, and removing the
// annotation must surface it.
func TestSuppressionsCoverFixture(t *testing.T) {
	l := newFixtureLoader(t)
	dir := filepath.Join(fixtureRoot(t, l), "errwrap")
	data, err := os.ReadFile(filepath.Join(dir, "errwrap.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	if !strings.Contains(string(data), "// slimvet:ignore errwrap") {
		t.Fatalf("errwrap fixture lost its slimvet:ignore case")
	}
	stripped := strings.Replace(string(data), "// slimvet:ignore errwrap", "", 1)

	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "errwrap.go"), []byte(stripped), 0o644); err != nil {
		t.Fatalf("write stripped fixture: %v", err)
	}
	pkg, err := l.LoadDir(tmp, "fixture/internal/errwrapstripped")
	if err != nil {
		t.Fatalf("load stripped fixture: %v", err)
	}
	diags, err := l.Run([]*Package{pkg}, []*Analyzer{ErrWrap})
	if err != nil {
		t.Fatalf("run errwrap: %v", err)
	}

	base, err := l.LoadDir(dir, "fixture/internal/errwrap")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	baseDiags, err := l.Run([]*Package{base}, []*Analyzer{ErrWrap})
	if err != nil {
		t.Fatalf("run errwrap: %v", err)
	}
	if want := len(baseDiags) + 1; len(diags) != want {
		t.Errorf("stripping slimvet:ignore should surface exactly one more finding: got %d, want %d\n%s",
			len(diags), want, diagDump(diags))
	}
}

func diagDump(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
