package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/trim").
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks the module's packages. It is
// go-list-style discovery without the go tool in the loop for the walking
// part: the file tree under the module root is the package universe, and
// type checking uses the stdlib source importer (which resolves the module's
// own import paths as well as the standard library from source).
//
// The importer is shared across Load calls, so dependencies — including the
// standard library — are type-checked once per Loader.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	imp        types.Importer
	// extraImports maps import paths to source directories outside the
	// module's import graph (test fixtures); extraLoaded caches packages
	// loaded through it.
	extraImports map[string]string
	extraLoaded  map[string]*Package
}

// RegisterImport maps an import path to a source directory, letting the
// fixture tests load packages that import one another ("fixture/internal/
// obs") without those paths existing in the real module.
func (l *Loader) RegisterImport(importPath, dir string) {
	if l.extraImports == nil {
		l.extraImports = map[string]string{}
		l.extraLoaded = map[string]*Package{}
	}
	l.extraImports[importPath] = dir
}

// loaderImporter routes type-checker imports through the Loader: registered
// fixture paths load from their directories, everything else goes to the
// stdlib source importer.
type loaderImporter struct{ l *Loader }

func (li loaderImporter) Import(path string) (*types.Package, error) {
	return li.resolve(path, "", 0)
}

func (li loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return li.resolve(path, dir, mode)
}

func (li loaderImporter) resolve(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := li.l
	if pkg, ok := l.extraLoaded[path]; ok {
		return pkg.Types, nil
	}
	if dir, ok := l.extraImports[path]; ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: registered import %s has no Go files in %s", path, dir)
		}
		l.extraLoaded[path] = pkg
		return pkg.Types, nil
	}
	if from, ok := l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return l.imp.Import(path)
}

// NewLoader locates the enclosing module (walking up from the working
// directory to the nearest go.mod) and prepares a type-checking importer.
func NewLoader() (*Loader, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, fmt.Errorf("analysis: getwd: %w", err)
	}
	root, modPath, err := findModule(cwd)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		modFile := filepath.Join(d, "go.mod")
		if data, rerr := os.ReadFile(modFile); rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s has no module line", modFile)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves package patterns and returns the loaded packages, sorted by
// import path. Patterns are module-root-relative: "./..." (everything),
// "dir/..." (a subtree), "dir" (one package), or a full import path within
// the module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "" {
			pat = "..."
		}
		// Import paths inside the module reduce to relative directories.
		if rest, ok := strings.CutPrefix(pat, l.ModulePath); ok {
			pat = strings.TrimPrefix(rest, "/")
			if pat == "" {
				pat = "."
			}
		}
		if sub, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.ModuleRoot, strings.TrimSuffix(sub, "/"))
			if err := walkPackageDirs(base, dirs); err != nil {
				return nil, err
			}
			continue
		}
		dirs[filepath.Join(l.ModuleRoot, pat)] = true
	}

	var out []*Package
	for _, dir := range sortedKeys(dirs) {
		pkg, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walkPackageDirs collects every directory under base that can hold a
// package, skipping testdata, vendor, and hidden or underscore directories
// — the same pruning the go tool applies to "./..." patterns.
func walkPackageDirs(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Directories with no non-test Go files load as nil, nil.
// Test files (_test.go) are excluded: slimvet checks library and command
// conventions, and test scaffolding legitimately breaks several of them
// (context.Background, raw metric names, direct field pokes).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: loaderImporter{l}}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
