package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MetricNames keeps the /metrics name space in one place: every metric or
// health-check name that reaches an obs registration sink (obs.C, obs.H,
// obs.HSize, Registry.Counter/Histogram, HealthRegistry.Register/
// Unregister) must be built from constants declared in the obs package's
// name registry (internal/obs/names.go) — never from string literals or
// constants scattered through other packages. That is what lets
// docs/OBSERVABILITY.md enumerate the exported families without drifting
// from the code.
//
// Dynamic name parts (per-scheme, per-op families) are fine: the rule only
// rejects string *literals* and foreign *constants* inside the name
// argument, so `obs.H(fmt.Sprintf(obs.FmtMarkOpNS, op, scheme))` passes
// while `obs.H("mark." + op + ".ns")` does not.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc: "metric and health-check names must come from the obs name registry " +
		"(internal/obs/names.go), not in-place string literals",
	Run: runMetricNames,
}

// metricNameSinks maps obs functions/methods to the index of their name
// argument. Keys follow the instrumentationSinks convention.
var metricNameSinks = map[string]int{
	"C":                       0,
	"H":                       0,
	"HSize":                   0,
	"G":                       0,
	"Registry.Counter":        0,
	"Registry.Histogram":      0,
	"Registry.Gauge":          0,
	"HealthRegistry.Register": 0,
	// Unregister must match Register, or checks become unremovable.
	"HealthRegistry.Unregister": 0,
	// Tracked locks expand their name into the lock.* metric families, so
	// the lock name itself must come from the registry.
	"NewTrackedMutex":   0,
	"NewTrackedRWMutex": 0,
}

func runMetricNames(pass *Pass) error {
	// The obs package itself declares the registry (and its own internal
	// plumbing); the rule binds everyone else.
	if strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || callee.Pkg() == nil ||
				!strings.HasSuffix(callee.Pkg().Path(), "internal/obs") {
				return true
			}
			argIdx, ok := metricNameSinks[sinkKey(callee)]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			checkMetricNameExpr(pass, callee, call.Args[argIdx])
			return true
		})
	}
	return nil
}

// sinkKey renders a *types.Func as "Type.Method" or a bare function name.
func sinkKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return fn.Name()
	}
	return named.Obj().Name() + "." + fn.Name()
}

// checkMetricNameExpr walks a name argument and reports literals and
// foreign constants. One finding per offending token keeps counts exact
// for the baseline.
func checkMetricNameExpr(pass *Pass, sink *types.Func, arg ast.Expr) {
	info := pass.Info()
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.STRING {
				pass.Reportf(n.Pos(), "metric/health name passed to obs.%s as string literal %s; use a constant from the obs name registry (internal/obs/names.go)",
					sink.Name(), n.Value)
			}
		case *ast.Ident:
			reportForeignConst(pass, n, info.Uses[n], sink)
		case *ast.SelectorExpr:
			reportForeignConst(pass, n.Sel, info.Uses[n.Sel], sink)
			return false // don't re-visit the Sel ident
		}
		return true
	})
}

// reportForeignConst flags string constants declared outside the obs
// package that flow into a name argument.
func reportForeignConst(pass *Pass, at *ast.Ident, obj types.Object, sink *types.Func) {
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return
	}
	basic, ok := c.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return
	}
	if strings.HasSuffix(c.Pkg().Path(), "internal/obs") {
		return
	}
	pass.Reportf(at.Pos(), "metric/health name constant %s (declared in %s) passed to obs.%s; name constants belong in the obs name registry (internal/obs/names.go)",
		c.Name(), c.Pkg().Name(), sink.Name())
}
