// Package ctxflow exercises the ctxflow analyzer. Its registered import
// path ("fixture/internal/ctxflow") contains "/internal/", so the
// library-code rules (no fabricated contexts) apply.
package ctxflow

import "context"

// Thing offers both plain and Ctx resolution paths.
type Thing struct{}

func (t *Thing) Fetch(id string) error { _ = id; return nil }

// FetchCtx delegating to Fetch is the implementation pattern, not a
// violation.
func (t *Thing) FetchCtx(ctx context.Context, id string) error {
	_ = ctx
	return t.Fetch(id)
}

func Load(name string) error { _ = name; return nil }

func LoadCtx(ctx context.Context, name string) error {
	_ = ctx
	return Load(name)
}

func ResolveCtx(id string) error { // want `ResolveCtx has the Ctx suffix but does not take context\.Context as its first parameter`
	_ = id
	return nil
}

func Misplaced(id string, ctx context.Context) error { // want `Misplaced takes context\.Context as parameter 2; context must be the first parameter`
	_, _ = id, ctx
	return nil
}

func Fabricate(t *Thing) error {
	ctx := context.Background() // want `library code calls context\.Background\(\); accept a context from the caller instead`
	return t.FetchCtx(ctx, "x")
}

func FabricateTODO(t *Thing) error {
	return t.FetchCtx(context.TODO(), "x") // want `library code calls context\.TODO\(\); accept a context from the caller instead`
}

func DropsCtx(ctx context.Context, t *Thing) error {
	_ = ctx
	return t.Fetch("x") // want `DropsCtx holds a context but calls Fetch; call FetchCtx and propagate ctx`
}

func DropsCtxFunc(ctx context.Context) error {
	_ = ctx
	return Load("x") // want `DropsCtxFunc holds a context but calls Load; call LoadCtx and propagate ctx`
}

func PropagatesCtx(ctx context.Context, t *Thing) error {
	return t.FetchCtx(ctx, "x")
}
