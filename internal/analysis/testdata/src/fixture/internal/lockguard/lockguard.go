// Package lockguard exercises the lockguard analyzer: guarded-field
// access rules, the *Locked and "caller holds mu" conventions, branch-local
// lock state, and the callback-under-lock rule.
package lockguard

import "sync"

// Store has annotated guarded fields plus one unguarded field.
type Store struct {
	mu        sync.RWMutex
	data      map[string]int   // guarded by mu
	observers []func(k string) // guarded by mu
	hint      int              // intentionally unguarded
}

// Broken demonstrates the annotation-validation diagnostic.
type Broken struct {
	x int // guarded by lock // want `field is annotated .guarded by lock. but the struct has no field "lock"`
}

// Get holds the lock via defer: fine.
func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

// Put locks and unlocks explicitly: fine.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	s.data[k] = v
	s.mu.Unlock()
}

// Peek reads a guarded field with no lock at all.
func (s *Store) Peek(k string) int {
	return s.data[k] // want `Store\.Peek accesses data \(guarded by mu\) without holding mu`
}

// getLocked relies on the *Locked naming convention: fine.
func (s *Store) getLocked(k string) int {
	return s.data[k]
}

// documentedEntry: caller holds mu.
func (s *Store) documentedEntry(k string) int {
	return s.data[k]
}

// EarlyExit unlocks inside an error branch; the fallthrough path still
// holds the lock (branch-local state must not leak).
func (s *Store) EarlyExit(k string) int {
	s.mu.Lock()
	if s.hint == 0 {
		s.mu.Unlock()
		return 0
	}
	v := s.data[k]
	s.mu.Unlock()
	return v
}

// FanOutBad invokes callbacks loaded from a guarded field while the lock
// is held.
func (s *Store) FanOutBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range s.observers {
		o("change") // want `Store\.FanOutBad invokes a callback from guarded field observers while mu is held`
	}
}

// FanOutGood snapshots under the lock and delivers after unlocking.
func (s *Store) FanOutGood() {
	s.mu.Lock()
	snapshot := make([]func(string), len(s.observers))
	copy(snapshot, s.observers)
	s.mu.Unlock()
	for _, o := range snapshot {
		o("change")
	}
}

// use silences unused-function lint at type-check level by referencing the
// convention-named helpers.
func (s *Store) use() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked("x") + s.documentedEntry("y")
}
