// Package obscoverage exercises the obscoverage analyzer. The test enrolls
// this package in ObsCoverageTargets for the duration of the run.
package obscoverage

import "fixture/internal/obs"

var total = obs.C(obs.NameGoodTotal)

// Create records directly: fine.
func Create() {
	total.Inc()
}

// CreateDeep records through a chain of same-package helpers.
func CreateDeep() {
	helperOne()
}

func helperOne() { helperTwo() }
func helperTwo() { total.Inc() }

// Remove records nothing.
func Remove() { // want `exported mutating op Remove records no metric or span`
}

// RemoveQuiet is exempted.
//
// slimvet:noobs fixture: commit point records elsewhere.
func RemoveQuiet() {
}

// Get is not a mutating verb: fine.
func Get() {
}

// Settings starts with "Set" but not at a word boundary: fine.
func Settings() {
}

// unexportedSet is mutating but unexported: fine.
func unexportedSet() {
}

func init() { unexportedSet() }
