// Package tracectx exercises the tracectx analyzer: spans born from
// obs.StartCtx must be deferred-finished or escape; discards and plain
// finishes are reported.
package tracectx

import (
	"context"

	"fixture/internal/obs"
)

// DeferFinish is the canonical pattern.
func DeferFinish(ctx context.Context) {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "")
	defer sp.Finish()
	_ = ctx
}

// DeferClosure finishes through a deferred func literal, the named-return
// error pattern.
func DeferClosure(ctx context.Context) (err error) {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "")
	defer func() { sp.FinishErr(err) }()
	_ = ctx
	return nil
}

// EscapeReturn hands the span to the caller, whose job the finish becomes.
func EscapeReturn(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "")
	return ctx, sp
}

// op carries a span across a staged operation, like the dmi layer does.
type op struct{ span *obs.Span }

// EscapeStruct stores the span in a struct; the holder finishes it later.
func EscapeStruct(ctx context.Context) op {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "")
	_ = ctx
	return op{span: sp}
}

func finishLater(s *obs.Span) { s.Finish() }

// EscapeArg passes the span to a helper.
func EscapeArg(ctx context.Context) {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "")
	_ = ctx
	finishLater(sp)
}

// ChildSpans may be finished inline (the retry-attempt pattern); only the
// StartCtx root is bound to the defer rule.
func ChildSpans(ctx context.Context) {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "")
	defer sp.Finish()
	_ = ctx
	for i := 0; i < 3; i++ {
		c := sp.Child("fixture.attempt", "")
		c.FinishErr(nil)
	}
}

// DiscardBare drops both results on the floor.
func DiscardBare(ctx context.Context) {
	obs.StartCtx(ctx, "fixture.op", "") // want `obs\.StartCtx result discarded; the span is never finished and never records`
}

// DiscardBlank keeps the context but throws the span away.
func DiscardBlank(ctx context.Context) context.Context {
	ctx, _ = obs.StartCtx(ctx, "fixture.op", "") // want `span from obs\.StartCtx assigned to _; it is never finished and never records`
	return ctx
}

// PlainFinish records only on the happy path.
func PlainFinish(ctx context.Context) error {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "") // want `span sp is finished outside a defer; early returns skip the record`
	if ctx == nil {
		return context.Canceled
	}
	sp.Finish()
	return nil
}

// NeverFinished leaks the span entirely.
func NeverFinished(ctx context.Context) {
	ctx, sp := obs.StartCtx(ctx, "fixture.op", "") // want `span sp from obs\.StartCtx is never finished; defer sp\.Finish\(\) \(or FinishErr\) so the span records`
	_ = ctx
	_ = sp.Child("fixture.child", "")
}
