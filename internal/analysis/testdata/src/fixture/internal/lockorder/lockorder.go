// Package lockorder exercises the lockorder analyzer: acquisition-order
// cycles between plain and tracked mutexes, declared canonical orders,
// one-level helper traversal, self-deadlocks, and annotation validation.
// Each scenario uses its own struct so the lock sets stay disjoint.
package lockorder

import (
	"sync"

	"fixture/internal/obs"
)

// AB acquires its two locks in both orders with no declared order: both
// edges complete a cycle, so both sides are reported.
type AB struct {
	a sync.Mutex
	b sync.Mutex
}

func (x *AB) One() {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock() // want `lock-order cycle: AB\.b is acquired while holding AB\.a`
	defer x.b.Unlock()
}

func (x *AB) Two() {
	x.b.Lock()
	defer x.b.Unlock()
	x.a.Lock() // want `lock-order cycle: AB\.a is acquired while holding AB\.b`
	defer x.a.Unlock()
}

// CD has a declared canonical order, so only the violating side is
// reported.
//
// slimvet:lockorder CD.c < CD.d

type CD struct {
	c sync.Mutex
	d sync.Mutex
}

func (x *CD) Good() {
	x.c.Lock()
	defer x.c.Unlock()
	x.d.Lock()
	defer x.d.Unlock()
}

func (x *CD) Bad() {
	x.d.Lock()
	defer x.d.Unlock()
	x.c.Lock() // want `lock-order cycle: CD\.c is acquired while holding CD\.d`
	defer x.c.Unlock()
}

// EF's nested acquisition hides inside a helper: the one-level callee scan
// must surface the e -> f edge at the call site.
type EF struct {
	e sync.Mutex
	f sync.Mutex
	n int
}

func (x *EF) bumpUnderF() {
	x.f.Lock()
	x.n++
	x.f.Unlock()
}

func (x *EF) Outer() {
	x.e.Lock()
	defer x.e.Unlock()
	x.bumpUnderF() // want `lock-order cycle: EF\.f is acquired while holding EF\.e`
}

func (x *EF) Reverse() {
	x.f.Lock()
	defer x.f.Unlock()
	x.e.Lock() // want `lock-order cycle: EF\.e is acquired while holding EF\.f`
	defer x.e.Unlock()
}

// Nested acquisition in a consistent order only: no finding.
type Ordered struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (x *Ordered) Both() {
	x.outer.Lock()
	defer x.outer.Unlock()
	x.inner.Lock()
	defer x.inner.Unlock()
}

func (x *Ordered) InnerOnly() {
	x.inner.Lock()
	defer x.inner.Unlock()
}

// Self re-acquires a non-reentrant mutex: guaranteed deadlock.
type Self struct {
	m sync.Mutex
}

func (x *Self) Re() {
	x.m.Lock()
	x.m.Lock() // want `Self\.m is acquired while already held: self-deadlock`
	x.m.Unlock()
	x.m.Unlock()
}

// GH's declarations contradict each other; both annotations are reported.
//
/* slimvet:lockorder GH.g < GH.h */ // want `slimvet:lockorder declares GH\.g < GH\.h but other annotations imply GH\.h < GH\.g`
/* slimvet:lockorder GH.h < GH.g */ // want `slimvet:lockorder declares GH\.h < GH\.g but other annotations imply GH\.g < GH\.h`

type GH struct {
	g sync.Mutex
	h sync.Mutex
}

func (x *GH) Touch() {
	x.g.Lock()
	x.g.Unlock()
	x.h.Lock()
	x.h.Unlock()
}

// A declaration naming a lock that does not exist in the package is itself
// a finding, so annotations cannot rot.
//
/* slimvet:lockorder Ghost.z < CD.c */ // want `slimvet:lockorder names unknown lock "Ghost\.z"`

// Tracked is the instrumented-lock regression: the obs drop-ins count as
// locks, so an inconsistent order between two tracked mutexes cycles just
// like plain sync ones.
type Tracked struct {
	tm *obs.TrackedMutex
	tn *obs.TrackedMutex
}

func (x *Tracked) Forward() {
	x.tm.Lock()
	defer x.tm.Unlock()
	x.tn.Lock() // want `lock-order cycle: Tracked\.tn is acquired while holding Tracked\.tm`
	defer x.tn.Unlock()
}

func (x *Tracked) Backward() {
	x.tn.Lock()
	defer x.tn.Unlock()
	x.tm.Lock() // want `lock-order cycle: Tracked\.tm is acquired while holding Tracked\.tn`
	defer x.tm.Unlock()
}
