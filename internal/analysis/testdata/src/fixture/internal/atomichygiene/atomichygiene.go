// Package atomichygiene exercises the atomichygiene analyzer: typed
// atomics copied by value, ranges over atomic elements, and plain accesses
// mixed with function-style sync/atomic operations — plus the legal
// shapes (method calls, address-of, init paths) that must stay silent.
package atomichygiene

import "sync/atomic"

// Counters mixes a typed atomic, a function-style atomic field, and a
// plain field.
type Counters struct {
	total atomic.Int64
	hits  int64
	gen   int64
}

// Inc uses the typed atomic through its methods: fine.
func (c *Counters) Inc() {
	c.total.Add(1)
}

// Reset takes the address: fine.
func Reset(c *Counters) {
	ptr := &c.total
	ptr.Store(0)
}

// BadCopy returns the typed atomic by value, forking its state.
func (c *Counters) BadCopy() atomic.Int64 {
	return c.total // want `c\.total value of type .*atomic\.Int64 is copied or read by value`
}

// BadAssign copies through a local.
func (c *Counters) BadAssign() int64 {
	t := c.total // want `c\.total value of type .*atomic\.Int64 is copied or read by value`
	return t.Load()
}

// consume takes an atomic by value; calling it with one is the copy.
func consume(v atomic.Int64) int64 {
	return v.Load()
}

func (c *Counters) BadArg() int64 {
	return consume(c.total) // want `c\.total value of type .*atomic\.Int64 is copied or read by value`
}

// SumAll ranges by value over atomic elements, copying each one.
func SumAll(cs []atomic.Int64) int64 {
	var n int64
	for _, c := range cs { // want `range copies .*atomic\.Int64 values element-by-element`
		n += c.Load()
	}
	return n
}

// SumIdx iterates by index and uses each element in place: fine.
func SumIdx(cs []atomic.Int64) int64 {
	var n int64
	for i := range cs {
		n += cs[i].Load()
	}
	return n
}

// Hit is the sole atomic accessor of hits...
func (c *Counters) Hit() {
	atomic.AddInt64(&c.hits, 1)
}

// ...so Snapshot's plain read races it.
func (c *Counters) Snapshot() int64 {
	return c.hits // want `Counters\.Snapshot mixes a plain access to hits with sync/atomic operations elsewhere`
}

// Drain reads hits atomically: fine.
func (c *Counters) Drain() int64 {
	return atomic.SwapInt64(&c.hits, 0)
}

// Gen reads a field no atomic op ever touches: plain access is fine.
func (c *Counters) Gen() int64 {
	return c.gen
}

// NewCounters is an init path: the value is not yet published, so plain
// writes to the atomically-accessed field are safe.
func NewCounters(seed int64) *Counters {
	c := &Counters{}
	c.hits = seed
	return c
}
