// Package obs is a miniature of the real repro/internal/obs, with just
// enough surface for the obscoverage, metricnames, and tracectx fixtures:
// the analyzers key off the import-path suffix "internal/obs", which this
// package shares via the registered path "fixture/internal/obs".
package obs

import "context"

// Span and StartCtx mirror the causal-tracing surface the tracectx
// analyzer checks.
type Span struct{}

func (s *Span) Finish()                       {}
func (s *Span) FinishErr(err error)           { _ = err }
func (s *Span) Child(op, detail string) *Span { _, _ = op, detail; return &Span{} }

func StartCtx(ctx context.Context, op, detail string) (context.Context, *Span) {
	_, _ = op, detail
	return ctx, &Span{}
}

func ContextWithSpan(ctx context.Context, s *Span) context.Context { _ = s; return ctx }

// Counter is a metric counter stub.
type Counter struct{ n int64 }

func (c *Counter) Inc()        { c.n++ }
func (c *Counter) Add(d int64) { c.n += d }

// Histogram is a latency/size histogram stub.
type Histogram struct{ n int64 }

func (h *Histogram) Observe(v int64) { h.n += v }

// C and H mirror the real registry accessors.
func C(name string) *Counter   { _ = name; return &Counter{} }
func H(name string) *Histogram { _ = name; return &Histogram{} }

// HealthRegistry mirrors the real health-check registry.
type HealthRegistry struct{}

func (r *HealthRegistry) Register(name string, check func() error) { _, _ = name, check }

// TrackedMutex and TrackedRWMutex mirror the real instrumented locks: the
// lock analyzers (lockguard, aliasguard, lockorder) treat Lock/Unlock
// methods from any package whose path ends in internal/obs as lock
// operations, so fixtures can exercise tracked-lock scenarios.
type TrackedMutex struct{ held bool }

func (m *TrackedMutex) Lock()   { m.held = true }
func (m *TrackedMutex) Unlock() { m.held = false }

type TrackedRWMutex struct{ held bool }

func (m *TrackedRWMutex) Lock()    { m.held = true }
func (m *TrackedRWMutex) Unlock()  { m.held = false }
func (m *TrackedRWMutex) RLock()   { m.held = true }
func (m *TrackedRWMutex) RUnlock() { m.held = false }

// Name registry, mirroring internal/obs/names.go.
const (
	NameGoodTotal = "fixture.good.total"
	FmtGoodNS     = "fixture.%s.ns"

	HealthGood = "fixture.good"
)
