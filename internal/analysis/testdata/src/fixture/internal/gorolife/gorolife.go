// Package gorolife exercises the gorolife analyzer: goroutines with no
// termination signal, the bounded shapes (context, done channel, work
// queue, WaitGroup), the one-level callee scan, termination-carrier
// arguments to opaque callees, and the slimvet:gorolife escape hatch.
package gorolife

import (
	"context"
	"sync"
)

// Leak spawns a goroutine nothing can stop.
func Leak() {
	go func() { // want `goroutine has no bounded lifecycle`
		for {
		}
	}()
}

// CtxBound watches its context: fine.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ErrBound polls ctx.Err: also a context observation.
func ErrBound(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
		}
	}()
}

// DoneBound selects on a done channel: fine.
func DoneBound(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			}
		}
	}()
}

// RangeBound drains a work queue until close: fine.
func RangeBound(work chan int) {
	go func() {
		for range work {
		}
	}()
}

// WGBound is tracked by a WaitGroup: the owner can wait for it.
func WGBound(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

// Pump delegates its loop to a named method; the one-level callee scan
// must find the stop-channel receive inside it.
type Pump struct {
	stop chan struct{}
}

func (p *Pump) loop() {
	for {
		select {
		case <-p.stop:
			return
		}
	}
}

func (p *Pump) Start() {
	go p.loop()
}

// run spins with no signal; spawning it leaks even though the receiver
// carries a stop channel the method never looks at.
func (p *Pump) run() {
	for {
	}
}

func (p *Pump) StartLeak() {
	go p.run() // want `goroutine has no bounded lifecycle`
}

// Handoff passes the context to an opaque callee: benefit of the doubt.
func Handoff(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

// Opaque hands the callee nothing to stop on.
func Opaque(f func()) {
	go f() // want `goroutine has no bounded lifecycle`
}

// Forever is deliberate: the annotation (with a reason) covers the next
// line.
func Forever() {
	// slimvet:gorolife demo pump runs for the process lifetime by design
	go func() {
		for {
		}
	}()
}

// SameLine annotates on the go statement's own line.
func SameLine() {
	go spin() // slimvet:gorolife spinner owns no resources and dies with the process
}

func spin() {
	for {
	}
}

// A bare annotation with no reason is itself a finding.
func BareAnnotation(done chan struct{}) {
	/* slimvet:gorolife */ // want `slimvet:gorolife annotation needs a reason`
	go func() {
		<-done
	}()
}
