// Package errwrap exercises the errwrap analyzer: %w enforcement on error
// operands and errors.Is enforcement for sentinel comparisons.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrMissing is a sentinel; notAnErr is package-level but not an error.
var (
	ErrMissing = errors.New("missing")
	ErrClosed  = errors.New("closed")
)

func wrapGood(err error) error {
	return fmt.Errorf("op: %w", err)
}

func wrapBad(err error) error {
	return fmt.Errorf("op: %v", err) // want `fmt\.Errorf formats error "err" with %v; use %w to keep the chain classifiable`
}

func wrapBadString(err error) error {
	return fmt.Errorf("op: %s", err) // want `fmt\.Errorf formats error "err" with %s; use %w to keep the chain classifiable`
}

func wrapMixed(path string, err error) error {
	return fmt.Errorf("load %s: %v", path, err) // want `fmt\.Errorf formats error "err" with %v`
}

func wrapType(err error) error {
	return fmt.Errorf("unexpected error type %T", err) // %T prints the type: fine
}

func wrapNonError(name string, n int) error {
	return fmt.Errorf("op %s failed %d times", name, n)
}

func wrapIgnored(err error) error {
	return fmt.Errorf("op: %v", err) // slimvet:ignore errwrap
}

func compareGood(err error) bool {
	return errors.Is(err, ErrMissing)
}

func compareBad(err error) bool {
	return err == ErrMissing // want `sentinel ErrMissing compared with ==/!=; use errors\.Is`
}

func compareBadNeq(err error) bool {
	return err != ErrClosed // want `sentinel ErrClosed compared with ==/!=`
}

func compareNil(err error) bool {
	return err == nil
}

func switchBad(err error) bool {
	switch err {
	case ErrMissing: // want `sentinel ErrMissing compared with ==/!=`
		return true
	}
	return false
}
