// Package aliasguard exercises the aliasguard analyzer: guarded
// reference-typed fields escaping the critical section by return, store,
// goroutine/defer capture, callback hand-off, and channel send — plus the
// sanctioned shapes (copies, *Locked helpers, local closures, re-locking
// goroutines) that must stay silent.
package aliasguard

import "sync"

// Store mixes aliasable guarded fields, a value-typed guarded field, and
// unguarded destinations.
type Store struct {
	mu  sync.Mutex
	mu2 sync.Mutex

	items    []int          // guarded by mu
	index    map[string]int // guarded by mu
	head     *int           // guarded by mu
	snapshot []int          // guarded by mu
	gen      int            // guarded by mu
	other    []int          // guarded by mu2
	leaked   []int          // intentionally unguarded
}

// ReturnAlias hands the caller a live alias of the guarded slice.
func (s *Store) ReturnAlias() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items // want `Store\.ReturnAlias returns guarded field items \(guarded by mu\)`
}

// ReturnCopy snapshots under the lock: fine.
func (s *Store) ReturnCopy() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.items...)
}

// itemsLocked is a *Locked helper: returning the alias to a caller inside
// the critical section is the convention.
func (s *Store) itemsLocked() []int {
	return s.items
}

// snapshotUnder documents the caller-holds convention: exempt like *Locked.
// Callers must hold mu.
func (s *Store) snapshotUnder() []int {
	return s.items
}

// ReturnViaAlias leaks through a local alias.
func (s *Store) ReturnViaAlias() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.items
	return r // want `Store\.ReturnViaAlias returns guarded field items`
}

// ReturnSliced leaks through a re-slice (same backing array).
func (s *Store) ReturnSliced() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[:1] // want `Store\.ReturnSliced returns guarded field items`
}

// View wraps a slice; returning a guarded reference inside a composite
// literal escapes just the same.
type View struct{ Items []int }

func (s *Store) ReturnWrapped() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return View{Items: s.items} // want `Store\.ReturnWrapped returns guarded field items`
}

// ReturnElement copies one element out of the guarded map: fine.
func (s *Store) ReturnElement(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[k]
}

// Generation returns a value-typed guarded field — a copy, not an alias.
func (s *Store) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// ReturnHead leaks the guarded pointer.
func (s *Store) ReturnHead() *int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head // want `Store\.ReturnHead returns guarded field head`
}

// Publish stores the guarded slice into an unguarded field.
func (s *Store) Publish() {
	s.mu.Lock()
	s.leaked = s.items // want `Store\.Publish stores guarded field items \(guarded by mu\) into unguarded field leaked`
	s.mu.Unlock()
}

// Rotate stores into a field guarded by the same lock: still covered.
func (s *Store) Rotate() {
	s.mu.Lock()
	s.snapshot = s.items
	s.mu.Unlock()
}

// CrossLock stores into a field under a different lock.
func (s *Store) CrossLock() {
	s.mu.Lock()
	s.other = s.items // want `Store\.CrossLock stores guarded field items .* into field other guarded by a different lock \(mu2\)`
	s.mu.Unlock()
}

// Async captures the guarded slice in a goroutine with no re-lock.
func (s *Store) Async() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = len(s.items) // want `Store\.Async lets guarded field items \(guarded by mu\) escape into a goroutine`
	}()
}

// AsyncSafe re-acquires the lock inside the goroutine: fine.
func (s *Store) AsyncSafe() {
	go func() {
		s.mu.Lock()
		_ = len(s.items)
		s.mu.Unlock()
	}()
}

// DeferSafe registers its closure after the deferred unlock, so LIFO runs
// it while the lock is still held: fine.
func (s *Store) DeferSafe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { _ = len(s.items) }()
}

// DeferLeak unlocks explicitly; the deferred closure runs after.
func (s *Store) DeferLeak() {
	s.mu.Lock()
	defer func() { _ = len(s.items) }() // want `Store\.DeferLeak captures guarded field items \(guarded by mu\) in a deferred call`
	s.mu.Unlock()
}

// Walk hands the live alias to an arbitrary callback.
func (s *Store) Walk(cb func([]int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cb(s.items) // want `Store\.Walk hands guarded field items \(guarded by mu\) to a callback without a copy`
}

// WalkCopy hands the callback a copy: fine.
func (s *Store) WalkCopy(cb func([]int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cb(append([]int(nil), s.items...))
}

// Sum passes the alias to a local closure — synchronous local code, not a
// callback.
func (s *Store) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	add := func(xs []int) {
		for _, x := range xs {
			total += x
		}
	}
	add(s.items)
	return total
}

// length is a package function: a static callee, checkable, fine.
func length(xs []int) int { return len(xs) }

func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return length(s.items)
}

// Feed publishes the alias to whoever reads the channel.
func (s *Store) Feed(ch chan []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.items // want `Store\.Feed sends guarded field items \(guarded by mu\) on a channel`
}
