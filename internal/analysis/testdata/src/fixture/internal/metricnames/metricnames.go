// Package metricnames exercises the metricnames analyzer: names reaching
// obs sinks must come from the obs name registry, not in-place literals or
// locally declared constants.
package metricnames

import (
	"fmt"

	"fixture/internal/obs"
)

// Registry constants pass.
var good = obs.C(obs.NameGoodTotal)

// A raw literal fails.
var bad = obs.C("fixture.bad.total") // want `metric/health name passed to obs\.C as string literal "fixture\.bad\.total"`

// A constant declared outside the obs package fails too.
const localName = "fixture.local.total"

var badConst = obs.C(localName) // want `metric/health name constant localName \(declared in metricnames\) passed to obs\.C`

// Dynamic families built from a registry Fmt constant pass; inline literal
// concatenation fails.
func family(op string) {
	obs.H(fmt.Sprintf(obs.FmtGoodNS, op)).Observe(1)
	obs.H("fixture." + op + ".ns").Observe(1) // want `metric/health name passed to obs\.H as string literal "fixture\."` `metric/health name passed to obs\.H as string literal "\.ns"`
}

// Health checks follow the same rule.
func health(r *obs.HealthRegistry) {
	r.Register(obs.HealthGood, nil)
	r.Register("fixture.rogue", nil) // want `metric/health name passed to obs\.Register as string literal "fixture\.rogue"`
}

func use() { _, _ = good, bad; _ = badConst; family("x"); health(&obs.HealthRegistry{}) }

func init() { use() }
