package analysis

// This file is the declared-instrumentation registry the obscoverage
// analyzer keys off: which packages owe instrumentation, which verbs make
// an exported op "mutating", how deep the helper search goes, and which obs
// entry points count as actually recording something. Extending the
// observability layer (new recording helpers) or the instrumented surface
// (new layers) means extending these tables — the analyzer itself does not
// change.

// ObsCoverageTargets are the packages whose exported mutating ops must be
// instrumented: the three store layers the paper's DMI contract spans.
// Exported so the fixture tests can temporarily enroll a test package.
var ObsCoverageTargets = map[string]bool{
	"repro/internal/trim": true,
	"repro/internal/mark": true,
	"repro/internal/slim": true,
}

// mutatingVerbs are the leading verbs that mark an exported op as mutating
// (matched at an upper-case word boundary: SetUnique yes, Settings no).
var mutatingVerbs = []string{
	"Create", "Remove", "Delete",
	"Add", "Put", "Store",
	"Set", "Update", "Replace", "Clear",
	"Register", "Unregister",
	"Apply", "Save", "Load", "Refresh",
}

// obsCoverageDepth bounds the transitive search through same-package
// helpers (op → markOpDone → obs.H(...).Observe is depth 2).
const obsCoverageDepth = 4

// instrumentationSinks are the obs entry points that count as recording a
// metric or span. Keys are "Type.Method" for methods and the bare name for
// functions, all in the package whose import path ends in "internal/obs".
var instrumentationSinks = map[string]bool{
	// Counters.
	"Counter.Inc": true,
	"Counter.Add": true,
	// Histograms.
	"Histogram.Observe":      true,
	"Histogram.ObserveSince": true,
	// Gauges.
	"Gauge.Set": true,
	"Gauge.Add": true,
	// Spans / tracing. StartCtx counts because the span it opens records
	// on finish, and tracectx separately guarantees the finish happens.
	"Trace":           true,
	"StartCtx":        true,
	"Tracer.StartCtx": true,
	"Span.Finish":     true,
	"Span.FinishErr":  true,
	// Slow-op journal.
	"SlowOps.Observe": true,
	// Workload analytics: heavy-hitter sketch recording.
	"TopK.Record":      true,
	"TopK.RecordN":     true,
	"RecordQueryShape": true,
}
