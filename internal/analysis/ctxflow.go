package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the *Ctx resolution-path conventions introduced with the
// resilience layer (docs/ROBUSTNESS.md):
//
//  1. A function named *Ctx takes context.Context as its first parameter
//     (and any function taking a context takes it first).
//  2. Library code (packages under internal/) never calls
//     context.Background() or context.TODO(): the context is the caller's
//     to provide, and a fabricated one silently disables cancellation of
//     the retry/backoff paths. The obs package's context constructors
//     (StartCtx, ContextWithSpan) are the sanctioned exception: they
//     normalize a caller-supplied nil ctx to Background so plain entry
//     points can delegate to their Ctx variants, and they only ever attach
//     a value — no deadline or cancellation is fabricated.
//  3. A function that has a context must propagate it: calling Foo when the
//     callee also offers FooCtx(ctx, ...) drops cancellation on the floor.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "*Ctx functions take context.Context first; library code never fabricates " +
		"contexts; functions holding a ctx call the *Ctx variant of their callees",
	Run: runCtxFlow,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sanctionedCtxConstructors are the obs functions allowed to normalize a
// nil context to context.Background(): the official on-ramps library code
// uses instead of fabricating contexts itself.
var sanctionedCtxConstructors = map[string]bool{
	"StartCtx":        true,
	"ContextWithSpan": true,
}

// isSanctionedCtxConstructor reports whether fd is one of the obs context
// constructors exempt from the fabricated-context rule.
func isSanctionedCtxConstructor(pkgPath string, fd *ast.FuncDecl) bool {
	return strings.HasSuffix(pkgPath, "internal/obs") && sanctionedCtxConstructors[fd.Name.Name]
}

func runCtxFlow(pass *Pass) error {
	info := pass.Info()
	isLibrary := strings.Contains(pass.Pkg.Path, "/internal/")

	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxSignature(pass, fd)
			if fd.Body == nil {
				continue
			}
			checkFabrication := isLibrary && !isSanctionedCtxConstructor(pass.Pkg.Path, fd)
			hasCtx := funcHasCtxParam(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if checkFabrication {
					checkFabricatedContext(pass, info, call)
				}
				if hasCtx {
					checkCtxPropagation(pass, info, fd, call)
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxSignature enforces rule 1 on a function declaration.
func checkCtxSignature(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info()
	obj := info.Defs[fd.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	name := fd.Name.Name
	if strings.HasSuffix(name, "Ctx") {
		if params.Len() == 0 || !isContextType(params.At(0).Type()) {
			pass.Reportf(fd.Name.Pos(), "%s has the Ctx suffix but does not take context.Context as its first parameter",
				funcDisplayName(fd))
			return
		}
	}
	for i := 1; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			pass.Reportf(fd.Name.Pos(), "%s takes context.Context as parameter %d; context must be the first parameter",
				funcDisplayName(fd), i+1)
		}
	}
}

// checkFabricatedContext enforces rule 2 on one call.
func checkFabricatedContext(pass *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		pass.Reportf(call.Pos(), "library code calls context.%s(); accept a context from the caller instead",
			fn.Name())
	}
}

// checkCtxPropagation enforces rule 3 on one call inside a ctx-holding
// function.
func checkCtxPropagation(pass *Pass, info *types.Info, caller *ast.FuncDecl, call *ast.CallExpr) {
	var callee *types.Func
	var recvType types.Type
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		callee = fn
		if selection, ok := info.Selections[fun]; ok && selection.Kind() == types.MethodVal {
			recvType = selection.Recv()
		}
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		if !ok {
			return
		}
		callee = fn
	default:
		return
	}
	if callee.Pkg() == nil || strings.HasSuffix(callee.Name(), "Ctx") {
		return
	}
	// The Ctx variant delegating to its base (ResolveWithCtx → ResolveWith)
	// is the implementation pattern, not a violation.
	if strings.TrimSuffix(caller.Name.Name, "Ctx") == callee.Name() {
		return
	}
	variant := callee.Name() + "Ctx"
	var alt types.Object
	if recvType != nil {
		alt, _, _ = types.LookupFieldOrMethod(recvType, true, callee.Pkg(), variant)
	} else {
		alt = callee.Pkg().Scope().Lookup(variant)
	}
	fn, ok := alt.(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "%s holds a context but calls %s; call %s and propagate ctx",
		funcDisplayName(caller), callee.Name(), variant)
}

// funcHasCtxParam reports whether fd declares a context.Context parameter.
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj := info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
