package trim

import "repro/internal/obs"

// Metric handles are resolved once at init so hot paths pay only the
// atomic increments. Names are documented in docs/OBSERVABILITY.md.
var (
	mCreateTotal  = obs.C("trim.create.total")
	mCreateNew    = obs.C("trim.create.new")
	mCreateErrors = obs.C("trim.create.errors")
	mCreateNS     = obs.H("trim.create.ns")

	mRemoveTotal = obs.C("trim.remove.total")
	mRemoveHit   = obs.C("trim.remove.hit")

	mSelectTotal = obs.C("trim.select.total")
	mSelectNS    = obs.H("trim.select.ns")
	mCountTotal  = obs.C("trim.count.total")
	mStatsTotal  = obs.C("trim.stats.total")

	// Index-choice counters quantify the query planner: which position's
	// hash index served a pattern, or whether a full scan was needed.
	mIdxSubject   = obs.C("trim.index.subject")
	mIdxPredicate = obs.C("trim.index.predicate")
	mIdxObject    = obs.C("trim.index.object")
	mIdxScan      = obs.C("trim.index.scan")

	mViewTotal = obs.C("trim.view.total")
	mViewNS    = obs.H("trim.view.ns")

	mBatchTotal = obs.C("trim.batch.total")
	mBatchNS    = obs.H("trim.batch.apply.ns")
	mBatchOps   = obs.HSize("trim.batch.ops")

	// mLoadTriples counts triples entering the store through bulk Replace
	// (file loads); Create-path inserts are counted by trim.create.*.
	mLoadTriples = obs.C("trim.load.triples")
	mLoadNS      = obs.H("trim.load.ns")

	// mNotifyFanout counts observer callbacks delivered (one per observer
	// per mutation): the Observer notification fan-out.
	mNotifyFanout = obs.C("trim.observer.fanout")

	// Persistence outcomes (docs/ROBUSTNESS.md): saves attempted/failed,
	// loads attempted, corrupt primaries detected, and loads recovered
	// from the .bak snapshot.
	mSaveTotal     = obs.C("trim.persist.save.total")
	mSaveErrors    = obs.C("trim.persist.save.errors")
	mLoadFileTotal = obs.C("trim.persist.load.total")
	mLoadCorrupt   = obs.C("trim.persist.load.corrupt")
	mLoadRecovered = obs.C("trim.persist.load.recovered")
)

// indexChoice identifies which index (if any) served a pattern.
type indexChoice int

const (
	indexNone indexChoice = iota
	indexSubject
	indexPredicate
	indexObject
)

func (c indexChoice) count() {
	switch c {
	case indexSubject:
		mIdxSubject.Inc()
	case indexPredicate:
		mIdxPredicate.Inc()
	case indexObject:
		mIdxObject.Inc()
	default:
		mIdxScan.Inc()
	}
}
