package trim

import "repro/internal/obs"

// Metric handles are resolved once at init so hot paths pay only the
// atomic increments. Names come from the obs name registry
// (internal/obs/names.go) and are documented in docs/OBSERVABILITY.md.
var (
	mCreateTotal  = obs.C(obs.NameTrimCreateTotal)
	mCreateNew    = obs.C(obs.NameTrimCreateNew)
	mCreateErrors = obs.C(obs.NameTrimCreateErrors)
	mCreateNS     = obs.H(obs.NameTrimCreateNS)

	mRemoveTotal = obs.C(obs.NameTrimRemoveTotal)
	mRemoveHit   = obs.C(obs.NameTrimRemoveHit)

	mSelectTotal = obs.C(obs.NameTrimSelectTotal)
	mSelectNS    = obs.H(obs.NameTrimSelectNS)
	mCountTotal  = obs.C(obs.NameTrimCountTotal)
	mStatsTotal  = obs.C(obs.NameTrimStatsTotal)

	// Deep space accountant (space.go): report counter and the last
	// report's headline gauges, so /metrics carries the bytes-per-triple
	// trajectory between scrapes of /debug/space.
	mSpaceTotal          = obs.C(obs.NameTrimSpaceTotal)
	gSpaceBytesPerTriple = obs.G(obs.NameTrimSpaceBytesPerTriple)
	gSpaceStringBytes    = obs.G(obs.NameTrimSpaceStringBytes)
	gSpaceUniqueBytes    = obs.G(obs.NameTrimSpaceUniqueBytes)
	gSpaceDupPct         = obs.G(obs.NameTrimSpaceDupPct)
	gSpaceInterningSaved = obs.G(obs.NameTrimSpaceInterningSaved)

	// Alloc-per-op probe harness (probe.go).
	mProbeTotal = obs.C(obs.NameTrimProbeTotal)
	mProbeNS    = obs.H(obs.NameTrimProbeNS)

	// Index-choice counters quantify the query planner: which position's
	// hash index served a pattern, or whether a full scan was needed.
	mIdxSubject   = obs.C(obs.NameTrimIndexSubject)
	mIdxPredicate = obs.C(obs.NameTrimIndexPredicate)
	mIdxObject    = obs.C(obs.NameTrimIndexObject)
	mIdxScan      = obs.C(obs.NameTrimIndexScan)

	mViewTotal = obs.C(obs.NameTrimViewTotal)
	mViewNS    = obs.H(obs.NameTrimViewNS)

	mBatchTotal = obs.C(obs.NameTrimBatchTotal)
	mBatchNS    = obs.H(obs.NameTrimBatchApplyNS)
	mBatchOps   = obs.HSize(obs.NameTrimBatchOps)

	// mLoadTriples counts triples entering the store through bulk Replace
	// (file loads); Create-path inserts are counted by trim.create.*.
	mLoadTriples = obs.C(obs.NameTrimLoadTriples)
	mLoadNS      = obs.H(obs.NameTrimLoadNS)

	// mNotifyFanout counts observer callbacks delivered (one per observer
	// per mutation): the Observer notification fan-out.
	mNotifyFanout = obs.C(obs.NameTrimObserverFanout)

	// Persistence outcomes (docs/ROBUSTNESS.md): saves attempted/failed,
	// loads attempted, corrupt primaries detected, and loads recovered
	// from the .bak snapshot.
	mSaveTotal     = obs.C(obs.NameTrimPersistSaveTotal)
	mSaveErrors    = obs.C(obs.NameTrimPersistSaveErrors)
	mLoadFileTotal = obs.C(obs.NameTrimPersistLoadTotal)
	mLoadCorrupt   = obs.C(obs.NameTrimPersistLoadCorrupt)
	mLoadRecovered = obs.C(obs.NameTrimPersistLoadRecovered)

	// JSONL export/import (the portability backend, jsonl.go).
	mExportTotal = obs.C(obs.NameTrimPersistExportTotal)
	mImportTotal = obs.C(obs.NameTrimPersistImportTotal)

	// WAL backend (wal.go): commit appends, fsyncs, recovery replays, and
	// snapshot compactions.
	mWALAppendTotal   = obs.C(obs.NameTrimWALAppendTotal)
	mWALAppendErrors  = obs.C(obs.NameTrimWALAppendErrors)
	mWALAppendBytes   = obs.C(obs.NameTrimWALAppendBytes)
	mWALAppendNS      = obs.H(obs.NameTrimWALAppendNS)
	mWALSyncTotal     = obs.C(obs.NameTrimWALSyncTotal)
	mWALSyncNS        = obs.H(obs.NameTrimWALSyncNS)
	mWALCommitOps     = obs.HSize(obs.NameTrimWALCommitOps)
	mWALReplayTotal   = obs.C(obs.NameTrimWALReplayTotal)
	mWALReplayRecords = obs.C(obs.NameTrimWALReplayRecords)
	mWALReplayTorn    = obs.C(obs.NameTrimWALReplayTorn)
	mWALReplayNS      = obs.H(obs.NameTrimWALReplayNS)
	mWALCompactTotal  = obs.C(obs.NameTrimWALCompactTotal)
	mWALCompactErrors = obs.C(obs.NameTrimWALCompactErrors)
	mWALCompactNS     = obs.H(obs.NameTrimWALCompactNS)
)

// indexChoice identifies which index (if any) served a pattern.
type indexChoice int

const (
	indexNone indexChoice = iota
	indexSubject
	indexPredicate
	indexObject
)

func (c indexChoice) count() {
	switch c {
	case indexSubject:
		mIdxSubject.Inc()
	case indexPredicate:
		mIdxPredicate.Inc()
	case indexObject:
		mIdxObject.Inc()
	default:
		mIdxScan.Inc()
	}
}
