package trim

// The fault-injection sweep lane (docs/ROBUSTNESS.md): slower and more
// exhaustive than the unit tests, it is gated behind SLIM_FAULT_SWEEP and
// run by `make faults` / scripts/ci.sh. The invariant under test is global
// crash-safety — after ANY single injected fault, torn write, or flipped
// byte, LoadFile yields a complete snapshot (old or new, possibly via the
// .bak fallback) or a diagnosable error; never a torn store, never a panic.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

func sweepGate(t *testing.T) {
	t.Helper()
	if os.Getenv("SLIM_FAULT_SWEEP") == "" {
		t.Skip("fault sweep skipped: set SLIM_FAULT_SWEEP=1 (or run `make faults`)")
	}
}

// requireOldOrNew loads path into a fresh manager and fails unless the
// result is exactly one of the two known-good snapshots.
func requireOldOrNew(t *testing.T, label, path string, old, next *rdf.Graph) {
	t.Helper()
	got := NewManager()
	if err := got.LoadFile(path); err != nil {
		t.Fatalf("%s: store unreadable: %v", label, err)
	}
	if snap := got.Snapshot(); !snap.Equal(old) && !snap.Equal(next) {
		t.Fatalf("%s: store is neither the old nor the new snapshot (%d triples)", label, got.Len())
	}
}

// TestFaultSweepStages fails every stage of the persistence sequence in
// turn and checks the on-disk store still loads as a complete snapshot.
func TestFaultSweepStages(t *testing.T) {
	sweepGate(t)
	for _, stage := range []PersistStage{StageTempWrite, StageTempSync, StageBackup, StageRename, StageDirSync} {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "store.xml")
			old := NewManager()
			populate(old, 12)
			if err := old.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			next := NewManager()
			populate(next, 30)
			fail := stage
			defer SetPersistFault(SetPersistFault(func(s PersistStage, _ string) error {
				if s == fail {
					return fmt.Errorf("injected at %s", s)
				}
				return nil
			}))
			if err := next.SaveFile(path); err == nil {
				t.Fatalf("save survived injected fault at %s", stage)
			}
			SetPersistFault(nil)
			requireOldOrNew(t, string(stage), path, old.Snapshot(), next.Snapshot())
		})
	}
}

// TestFaultSweepTruncation tears the primary file at every length (the
// .bak from the previous save intact) and requires a full recovery.
func TestFaultSweepTruncation(t *testing.T) {
	sweepGate(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	old := NewManager()
	populate(old, 8)
	if err := old.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	next := NewManager()
	populate(next, 20)
	if err := next.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(full); n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		requireOldOrNew(t, fmt.Sprintf("truncated to %d/%d bytes", n, len(full)),
			path, old.Snapshot(), next.Snapshot())
	}
}

// TestFaultSweepBitRot flips every byte of the primary file in turn; the
// checksum trailer must catch the damage (or prove it harmless) so the
// load never surfaces a silently different store.
func TestFaultSweepBitRot(t *testing.T) {
	sweepGate(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	old := NewManager()
	populate(old, 8)
	if err := old.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	next := NewManager()
	populate(next, 20)
	if err := next.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		flipped := append([]byte(nil), full...)
		flipped[i] ^= 0xFF
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		requireOldOrNew(t, fmt.Sprintf("byte %d flipped", i), path, old.Snapshot(), next.Snapshot())
	}
}
