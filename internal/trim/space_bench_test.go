package trim

import (
	"runtime"
	"testing"

	"repro/internal/rdf"
)

// benchSpaceStore builds the shared 10k-triple store the space benchmarks
// read from (same shape as the other trim benchmarks: 10k subjects over
// 16 predicates and 256 literal values, so strings duplicate heavily).
func benchSpaceStore(b *testing.B) *Manager {
	b.Helper()
	m := NewManager()
	for i := 0; i < 10000; i++ {
		if _, err := m.Create(benchTriple(i)); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkSpace measures the deep space accountant itself and reports
// the paper's §6 trajectory number — bytes per captive triple — as a
// custom metric, so every bench-json snapshot carries the space figure
// and bench-diff tracks it release over release.
func BenchmarkSpace(b *testing.B) {
	m := benchSpaceStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	var s SpaceStats
	for i := 0; i < b.N; i++ {
		s = m.Space()
	}
	b.ReportMetric(s.BytesPerTriple, "bytes/triple")
	b.ReportMetric(s.DuplicationRatio, "dup-ratio")
}

// BenchmarkSelectAllocs pins the allocation cost of the bound-subject hot
// path as a first-class metric (allocs/select), measured with the same
// MemStats-delta technique as the trimq probe harness — the number the
// interning work (ROADMAP item 1) must not regress.
func BenchmarkSelectAllocs(b *testing.B) {
	m := benchSpaceStore(b)
	pat := rdf.P(rdf.IRI("http://t/s5000"), rdf.Zero, rdf.Zero)
	b.ReportAllocs()
	b.ResetTimer()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < b.N; i++ {
		if len(m.Select(pat)) != 1 {
			b.Fatal("wrong result")
		}
	}
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N), "allocs/select")
}
