package trim

import (
	"testing"

	"repro/internal/rdf"
)

func pathFixture() (*Manager, rdf.Term) {
	m := NewManager()
	pad := rdf.IRI("http://t/pad")
	m.Create(link("pad", "rootBundle", "root"))
	m.Create(link("root", "content", "scrap1"))
	m.Create(link("root", "content", "scrap2"))
	m.Create(link("scrap1", "mark", "h1"))
	m.Create(link("scrap2", "mark", "h2"))
	m.Create(link("scrap2", "mark", "h3"))
	m.Create(tr("h1", "markId", "mark-000001"))
	return m, pad
}

func TestPath(t *testing.T) {
	m, pad := pathFixture()
	rootBundle := rdf.IRI("http://t/rootBundle")
	content := rdf.IRI("http://t/content")
	markP := rdf.IRI("http://t/mark")

	handles := m.Path([]rdf.Term{pad}, rootBundle, content, markP)
	if len(handles) != 3 {
		t.Fatalf("handles = %v", handles)
	}
	// Sorted output.
	for i := 1; i < len(handles); i++ {
		if handles[i-1].Compare(handles[i]) >= 0 {
			t.Fatal("Path output not sorted")
		}
	}
	// Partial path.
	scraps := m.Path([]rdf.Term{pad}, rootBundle, content)
	if len(scraps) != 2 {
		t.Fatalf("scraps = %v", scraps)
	}
	// Empty when a step has no matches.
	none := m.Path([]rdf.Term{pad}, rootBundle, rdf.IRI("http://t/absent"), markP)
	if len(none) != 0 {
		t.Fatalf("none = %v", none)
	}
	// Literal starts are dropped.
	if got := m.Path([]rdf.Term{rdf.String("lit")}, content); len(got) != 0 {
		t.Fatalf("literal start = %v", got)
	}
	// No predicates: the start set itself.
	if got := m.Path([]rdf.Term{pad}); len(got) != 1 || got[0] != pad {
		t.Fatalf("identity path = %v", got)
	}
}

func TestPathInverse(t *testing.T) {
	m, _ := pathFixture()
	markP := rdf.IRI("http://t/mark")
	content := rdf.IRI("http://t/content")
	h3 := rdf.IRI("http://t/h3")

	scraps := m.PathInverse([]rdf.Term{h3}, markP)
	if len(scraps) != 1 || scraps[0] != rdf.IRI("http://t/scrap2") {
		t.Fatalf("scraps = %v", scraps)
	}
	bundles := m.PathInverse([]rdf.Term{h3}, markP, content)
	if len(bundles) != 1 || bundles[0] != rdf.IRI("http://t/root") {
		t.Fatalf("bundles = %v", bundles)
	}
	// Inverse from a literal works (literals appear as objects).
	lit := rdf.String("mark-000001")
	owners := m.PathInverse([]rdf.Term{lit}, rdf.IRI("http://t/markId"))
	if len(owners) != 1 || owners[0] != rdf.IRI("http://t/h1") {
		t.Fatalf("owners = %v", owners)
	}
	// Dead end.
	if got := m.PathInverse([]rdf.Term{h3}, content); len(got) != 0 {
		t.Fatalf("dead end = %v", got)
	}
}
