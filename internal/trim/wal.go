package trim

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/wal"
)

// The WAL durability backend (docs/ROBUSTNESS.md "Durability backends"):
// instead of rewriting the whole XML snapshot per mutation batch —
// crash-safe but O(store) — mutations are captured through the Manager's
// generation-stamped observer seam and appended to a CRC-framed write-
// ahead log (internal/wal) as one record per commit, O(batch). Periodic
// snapshot compaction rewrites the XML snapshot through the same atomic
// temp+rename machinery as SaveFile and truncates the log, bounding
// recovery time. Recovery loads the snapshot (with .bak fallback),
// truncates any torn log tail, and replays the surviving records in exact
// generation order; replay is idempotent, so a crash anywhere — including
// mid-compaction, or a retried commit that duplicated a record — converges
// to a prefix-consistent store.

// SnapshotSuffix names the compacted XML snapshot kept beside a WAL file:
// <wal path> + SnapshotSuffix.
const SnapshotSuffix = ".snapshot"

// DefaultCompactEvery is the records-since-compaction threshold at which
// Save triggers snapshot compaction.
const DefaultCompactEvery = 1024

// WALOptions tunes a WALStore.
type WALOptions struct {
	// CompactEvery is the number of committed records after which Save
	// compacts the log into a fresh snapshot; <= 0 means
	// DefaultCompactEvery. Compaction cost is O(store), so the threshold
	// trades recovery/replay time against amortized save cost.
	CompactEvery int
}

// walOp is one captured mutation: the store generation at which it
// committed, the triple, and whether it was an insert.
type walOp struct {
	gen uint64
	add bool
	t   rdf.Triple
}

// WALStore attaches write-ahead durability to a Manager. Open it with
// OpenWAL; afterwards every mutation on the Manager (directly or through
// the DMI layers) is captured via the generation-stamped observer seam and
// buffered; Commit (or Save) appends the buffer as one CRC-framed record
// and fsyncs — the acknowledgment point. All methods are safe for
// concurrent use.
//
// Bulk Replace/Clear/LoadFile calls on the underlying Manager bypass the
// observer seam by design (they emit no per-triple events); after one,
// call Compact to re-anchor the snapshot before relying on recovery.
type WALStore struct {
	m    *Manager
	path string // WAL file path
	snap string // compacted snapshot path (path + SnapshotSuffix)

	mu           sync.Mutex
	log          *wal.Log // guarded by mu
	obsID        int      // observer handle; guarded by mu
	pending      []walOp  // captured ops not yet committed; guarded by mu
	sinceCompact int64    // records appended since the last compaction; guarded by mu
	compactEvery int64
	closed       bool // guarded by mu
}

// OpenWAL opens (creating if needed) the WAL backend rooted at path and
// recovers the Manager from it: the compacted snapshot at
// path+SnapshotSuffix is loaded first (with .bak fallback), any torn log
// tail is truncated away, and the surviving records replay in exact
// generation order, replacing the Manager's contents. When no durable
// state exists yet (no snapshot, no log records) the Manager's current
// contents are adopted unchanged as the initial state instead — attach
// then Compact converts an existing in-memory store to WAL-backed. On
// return every further mutation is captured for the next Commit.
func OpenWAL(m *Manager, path string, opts WALOptions) (*WALStore, error) {
	start := time.Now()
	mWALReplayTotal.Inc()
	compactEvery := int64(opts.CompactEvery)
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}

	// Base state: the compacted snapshot, or empty when none exists yet.
	base := rdf.NewGraph()
	haveSnap := false
	snap := path + SnapshotSuffix
	if _, err := os.Stat(snap); err == nil || !os.IsNotExist(err) {
		g, lerr := loadSnapshot(snap)
		if lerr != nil {
			return nil, fmt.Errorf("trim: wal open %s: %w", path, lerr)
		}
		base = g
		haveSnap = true
	}

	// Scan the log, collecting ops; frame integrity is the wal package's
	// job, op decoding ours.
	var ops []walOp
	l, rec, err := wal.Open(path, func(payload []byte) error {
		decoded, derr := decodeWALOps(payload)
		if derr != nil {
			return derr
		}
		ops = append(ops, decoded...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("trim: wal open %s: %w", path, err)
	}
	if rec.Torn() {
		mWALReplayTorn.Inc()
		obs.Log().Warn("trim: wal recovery truncated torn tail",
			"path", path, "records", rec.Records, "torn_bytes", rec.TornBytes)
	}

	if haveSnap || rec.Records > 0 || rec.Torn() {
		// Durable state exists: recover onto it, replacing the Manager's
		// contents. Replay runs in exact commit order — generations are
		// unique and strictly increasing per mutation, so a stable sort
		// restores the global order even across records written by racing
		// committers; applying an op sequence whose effects the snapshot
		// already contains is a no-op (last writer per triple wins), which
		// is what makes replay after a mid-compaction crash — or after a
		// retried commit that duplicated a record — idempotent.
		m.Replace(base)
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].gen < ops[j].gen })
		for _, op := range ops {
			if op.add {
				if _, err := m.Create(op.t); err != nil {
					l.Close()
					return nil, fmt.Errorf("trim: wal replay %s: %w", path, err)
				}
			} else {
				m.Remove(op.t)
			}
		}
	}
	// Otherwise no durable state exists yet (fresh path): the Manager's
	// current contents are adopted as the initial state, so attaching a WAL
	// to a populated in-memory store does not wipe it. The initial state
	// becomes durable at the first Compact (bulk contents) or incrementally
	// as new mutations commit.
	mWALReplayRecords.Add(int64(rec.Records))
	mWALReplayNS.ObserveSince(start)

	ws := &WALStore{
		m:            m,
		path:         path,
		snap:         snap,
		log:          l,
		compactEvery: compactEvery,
		sinceCompact: int64(rec.Records),
	}
	id := m.ObserveSeq(ws.capture)
	ws.mu.Lock()
	ws.obsID = id
	ws.mu.Unlock()
	return ws, nil
}

// capture is the SeqObserver: it buffers one committed mutation for the
// next Commit. It runs on the mutating goroutine with no Manager lock
// held.
func (ws *WALStore) capture(gen uint64, t rdf.Triple, added bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return
	}
	ws.pending = append(ws.pending, walOp{gen: gen, add: added, t: t})
}

// Manager returns the Manager this WALStore is attached to.
func (ws *WALStore) Manager() *Manager { return ws.m }

// Path returns the WAL file path; the compacted snapshot lives at
// Path()+SnapshotSuffix.
func (ws *WALStore) Path() string { return ws.path }

// Kind identifies the backend ("wal") for the Backend interface.
func (ws *WALStore) Kind() string { return BackendWAL }

// Pending returns the number of captured, not-yet-committed ops.
func (ws *WALStore) Pending() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.pending)
}

// RecordsSinceCompact returns how many records the log has accumulated
// since the last snapshot compaction — the replay debt a recovery would
// pay right now.
func (ws *WALStore) RecordsSinceCompact() int64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.sinceCompact
}

// Commit appends every captured-but-uncommitted mutation as one CRC-framed
// record and fsyncs the log: when Commit returns nil, those mutations are
// durable (the acknowledgment point). An empty buffer commits trivially.
// On error the buffer is retained, so a later Commit retries; a retry
// after a failed fsync may duplicate the record in the log, which replay
// tolerates (idempotence by generation order).
func (ws *WALStore) Commit() error {
	start := time.Now()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return fmt.Errorf("trim: wal commit %s: %w", ws.path, wal.ErrClosed)
	}
	if len(ws.pending) == 0 {
		return nil
	}
	// Sort by generation so the record itself is in commit order even
	// when concurrent mutators delivered out of order.
	sort.SliceStable(ws.pending, func(i, j int) bool { return ws.pending[i].gen < ws.pending[j].gen })
	payload := encodeWALOps(ws.pending)
	if err := ws.log.Append(payload); err != nil {
		mWALAppendErrors.Inc()
		return fmt.Errorf("trim: wal commit: %w", err)
	}
	syncStart := time.Now()
	if err := ws.log.Sync(); err != nil {
		mWALAppendErrors.Inc()
		return fmt.Errorf("trim: wal commit: %w", err)
	}
	mWALSyncTotal.Inc()
	mWALSyncNS.ObserveSince(syncStart)
	mWALAppendTotal.Inc()
	mWALAppendBytes.Add(int64(len(payload)))
	mWALCommitOps.Observe(int64(len(ws.pending)))
	mWALAppendNS.ObserveSince(start)
	ws.pending = ws.pending[:0]
	ws.sinceCompact++
	return nil
}

// Compact re-anchors durability in a fresh snapshot: pending ops are
// committed, the Manager's current contents are written to the snapshot
// path through the same atomic temp+fsync+backup+rename sequence as
// SaveFile, and — only once that snapshot is durable — the log is
// truncated. A crash before the rename leaves the old snapshot plus the
// full log; a crash between the rename and the truncate leaves the new
// snapshot plus a log whose replay is a no-op. Either way recovery is
// exact.
func (ws *WALStore) Compact() error {
	start := time.Now()
	mWALCompactTotal.Inc()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return fmt.Errorf("trim: wal compact %s: %w", ws.path, wal.ErrClosed)
	}
	if err := ws.compactLocked(); err != nil {
		mWALCompactErrors.Inc()
		return err
	}
	mWALCompactNS.ObserveSince(start)
	return nil
}

// compactLocked runs the compaction sequence; caller holds ws.mu.
func (ws *WALStore) compactLocked() error {
	if err := durable.FaultAt(durable.StageWALCompact, ws.snap); err != nil {
		return fmt.Errorf("trim: wal compact: %w", err)
	}
	// Flush the capture buffer first so every acknowledged-or-buffered op
	// is covered by log or snapshot throughout the sequence.
	if len(ws.pending) > 0 {
		sort.SliceStable(ws.pending, func(i, j int) bool { return ws.pending[i].gen < ws.pending[j].gen })
		if err := ws.log.Append(encodeWALOps(ws.pending)); err != nil {
			mWALAppendErrors.Inc()
			return fmt.Errorf("trim: wal compact: %w", err)
		}
		if err := ws.log.Sync(); err != nil {
			mWALAppendErrors.Inc()
			return fmt.Errorf("trim: wal compact: %w", err)
		}
		mWALAppendTotal.Inc()
		ws.pending = ws.pending[:0]
		ws.sinceCompact++
	}
	data, err := snapshotBytes(ws.m.Snapshot())
	if err != nil {
		return fmt.Errorf("trim: wal compact %s: %w", ws.snap, err)
	}
	if err := saveAtomic(ws.snap, data, true); err != nil {
		return fmt.Errorf("trim: wal compact: %w", err)
	}
	if err := ws.log.Reset(); err != nil {
		return fmt.Errorf("trim: wal compact: %w", err)
	}
	ws.sinceCompact = 0
	return nil
}

// Save implements the Backend interface: commit the captured ops, then
// compact if the log has crossed the compaction threshold. The common-case
// cost is O(batch) — one framed append plus one fsync — against the XML
// backend's O(store) rewrite.
func (ws *WALStore) Save() error {
	mSaveTotal.Inc()
	if err := ws.Commit(); err != nil {
		mSaveErrors.Inc()
		return err
	}
	ws.mu.Lock()
	due := ws.sinceCompact >= ws.compactEvery
	ws.mu.Unlock()
	if !due {
		return nil
	}
	if err := ws.Compact(); err != nil {
		mSaveErrors.Inc()
		return err
	}
	return nil
}

// Load implements the Backend interface: it re-runs full recovery
// (snapshot + replay) from disk, replacing the Manager contents. The
// WALStore keeps capturing afterwards. Uncommitted captured ops are
// discarded — Load means "return to the durable state".
func (ws *WALStore) Load() error {
	mLoadFileTotal.Inc()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return fmt.Errorf("trim: wal load %s: %w", ws.path, wal.ErrClosed)
	}
	// Detach capture and close the log around the reload so replayed ops
	// are not re-captured and the file is re-scanned from scratch.
	ws.m.Unobserve(ws.obsID)
	if err := ws.log.Close(); err != nil {
		return err
	}
	ws.pending = nil
	reopened, err := OpenWAL(ws.m, ws.path, WALOptions{CompactEvery: int(ws.compactEvery)})
	if err != nil {
		ws.closed = true // the log handle is gone; this store is unusable
		return err
	}
	// Adopt the reopened state; detach the temporary store's observer in
	// favor of our own registration.
	reopened.m.Unobserve(reopened.obsID)
	ws.log = reopened.log
	ws.sinceCompact = reopened.sinceCompact
	ws.obsID = ws.m.ObserveSeq(ws.capture)
	return nil
}

// Close commits any captured ops, detaches from the Manager, and closes
// the log file.
func (ws *WALStore) Close() error {
	if err := ws.Commit(); err != nil {
		return err
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return nil
	}
	ws.closed = true
	ws.m.Unobserve(ws.obsID)
	return ws.log.Close()
}

// HealthCheck returns a liveness check for the diagnostics server
// (registered as obs.HealthTrimWAL): it scans the log's frame integrity
// read-only and fails on a torn tail or an unreadable snapshot.
//
// slimvet:noobs health probe constructor, not a store operation.
func (ws *WALStore) HealthCheck() obs.HealthCheck {
	return func(context.Context) error {
		rep, err := WALCheck(ws.path)
		if err != nil {
			return err
		}
		if rep.TornBytes > 0 {
			return fmt.Errorf("trim: wal %s has a torn tail (%d bytes beyond last intact record)", ws.path, rep.TornBytes)
		}
		if !rep.SnapshotOK && rep.SnapshotErr != "" {
			return fmt.Errorf("trim: wal snapshot %s unusable: %s", rep.SnapshotPath, rep.SnapshotErr)
		}
		return nil
	}
}

// WALReport is the machine-readable result of WALCheck: the tail integrity
// of the log and the state of its compacted snapshot.
type WALReport struct {
	Path         string `json:"path"`
	SizeBytes    int64  `json:"size_bytes"`
	Records      int    `json:"records"`
	TornBytes    int64  `json:"torn_bytes"`
	SnapshotPath string `json:"snapshot_path"`
	// SnapshotOK is true when the snapshot file exists and passes trailer
	// verification (or does not exist yet, which is a valid empty base).
	SnapshotOK  bool   `json:"snapshot_ok"`
	SnapshotErr string `json:"snapshot_err,omitempty"`
}

// String renders the report in the human-readable one-stanza form used by
// `trimq walcheck`.
func (r WALReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal %s: %d record(s), %d byte(s)", r.Path, r.Records, r.SizeBytes)
	if r.TornBytes > 0 {
		fmt.Fprintf(&b, ", TORN TAIL (%d byte(s))", r.TornBytes)
	} else {
		b.WriteString(", tail intact")
	}
	if r.SnapshotOK {
		fmt.Fprintf(&b, "\nsnapshot %s: ok", r.SnapshotPath)
	} else {
		fmt.Fprintf(&b, "\nsnapshot %s: UNUSABLE (%s)", r.SnapshotPath, r.SnapshotErr)
	}
	return b.String()
}

// WALCheck inspects the WAL rooted at path read-only: frame/tail integrity
// of the log and trailer verification of the compacted snapshot. It never
// mutates either file, so it is safe against a live store.
func WALCheck(path string) (WALReport, error) {
	rep := WALReport{Path: path, SnapshotPath: path + SnapshotSuffix}
	rec, err := wal.Check(path)
	if err != nil {
		return rep, fmt.Errorf("trim: wal check: %w", err)
	}
	rep.Records = rec.Records
	rep.SizeBytes = rec.GoodBytes + rec.TornBytes
	rep.TornBytes = rec.TornBytes
	rep.SnapshotOK = true
	if _, serr := os.Stat(rep.SnapshotPath); serr == nil {
		if _, lerr := loadSnapshot(rep.SnapshotPath); lerr != nil {
			rep.SnapshotOK = false
			rep.SnapshotErr = lerr.Error()
		}
	} else if !os.IsNotExist(serr) {
		rep.SnapshotOK = false
		rep.SnapshotErr = serr.Error()
	}
	return rep, nil
}

// encodeWALOps renders captured ops as one record payload: one op per
// line, `C <gen> <n-triple>` for inserts and `R <gen> <n-triple>` for
// removals. The N-Triples statement form is the store's canonical
// single-triple serialization, so the log stays greppable and versionless.
func encodeWALOps(ops []walOp) []byte {
	var b strings.Builder
	for _, op := range ops {
		if op.add {
			b.WriteByte('C')
		} else {
			b.WriteByte('R')
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(op.gen, 10))
		b.WriteByte(' ')
		b.WriteString(rdf.EncodeTriple(op.t))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// decodeWALOps parses one record payload back into ops. The payload has
// already passed CRC verification, so a malformed line is a logic or
// version error, not bit rot — it aborts recovery rather than being
// silently skipped.
func decodeWALOps(payload []byte) ([]walOp, error) {
	lines := strings.Split(string(payload), "\n")
	ops := make([]walOp, 0, len(lines))
	for _, line := range lines {
		if line == "" {
			continue
		}
		kind, rest, ok := strings.Cut(line, " ")
		if !ok || (kind != "C" && kind != "R") {
			return nil, fmt.Errorf("%w: malformed wal op line %q", ErrCorrupt, line)
		}
		genText, stmt, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("%w: malformed wal op line %q", ErrCorrupt, line)
		}
		gen, err := strconv.ParseUint(genText, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad wal op generation %q: %w", ErrCorrupt, genText, err)
		}
		t, err := rdf.ParseTriple(stmt)
		if err != nil {
			return nil, fmt.Errorf("%w: bad wal op triple %q: %w", ErrCorrupt, stmt, err)
		}
		ops = append(ops, walOp{gen: gen, add: kind == "C", t: t})
	}
	return ops, nil
}
