package trim

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Persistence here is failure-aware (docs/ROBUSTNESS.md): saves are atomic
// and durable (temp file + fsync + rename + directory fsync), snapshots
// carry a length+checksum trailer so torn or truncated files are detected
// on load, and every save keeps the previous good snapshot as a ".bak"
// sibling that LoadFile falls back to when the primary is corrupt.

// ErrCorrupt marks a store file whose bytes fail integrity verification
// (truncation, checksum mismatch, or unparseable content). Callers can
// errors.Is against it to distinguish corruption from I/O errors.
var ErrCorrupt = errors.New("trim: corrupt store file")

// BackupSuffix is appended to the store path to name the previous good
// snapshot kept by SaveFile.
const BackupSuffix = ".bak"

// PersistStage names one step of the persistence I/O sequence; the fault
// hook receives it so tests can fail (or corrupt) a precise point in the
// write path — e.g. "the process died between temp-write and rename".
type PersistStage string

const (
	// StageTempWrite: about to write the snapshot bytes to the temp file.
	StageTempWrite PersistStage = "temp-write"
	// StageTempSync: about to fsync the temp file.
	StageTempSync PersistStage = "temp-sync"
	// StageBackup: about to copy the current file to its .bak sibling.
	StageBackup PersistStage = "backup"
	// StageRename: about to rename the temp file over the target.
	StageRename PersistStage = "rename"
	// StageDirSync: about to fsync the parent directory.
	StageDirSync PersistStage = "dir-sync"
)

// PersistFault is an injectable fault hook for persistence I/O. It runs
// before each stage with the target path; returning a non-nil error aborts
// the save as if the I/O at that stage had failed. The hook may also
// mutate the filesystem (truncate the target, delete the backup) to
// simulate torn writes and crashes deterministically.
type PersistFault func(stage PersistStage, path string) error

var persistFault atomic.Pointer[PersistFault]

// SetPersistFault installs the persistence fault hook (nil removes it) and
// returns the previous hook. Tests use it to exercise crash recovery; it
// is process-wide, so parallel tests should not share it.
//
// slimvet:noobs test-only fault-injection hook, not a store operation.
func SetPersistFault(h PersistFault) (prev PersistFault) {
	var old *PersistFault
	if h == nil {
		old = persistFault.Swap(nil)
	} else {
		old = persistFault.Swap(&h)
	}
	if old == nil {
		return nil
	}
	return *old
}

// faultAt runs the installed fault hook, if any, for one stage.
func faultAt(stage PersistStage, path string) error {
	if h := persistFault.Load(); h != nil {
		if err := (*h)(stage, path); err != nil {
			return fmt.Errorf("trim: %s %s: %w", stage, path, err)
		}
	}
	return nil
}

// The trailer is an XML comment appended after the document: harmless to
// any XML parser (the decoder stops at the end of the root element), but
// enough to detect truncation (declared length vs actual) and bit rot
// (CRC-32 of the body). Legacy files without a trailer still load.
const trailerPrefix = "<!-- slim-trailer "

func appendTrailer(body []byte) []byte {
	sum := crc32.ChecksumIEEE(body)
	return append(body, fmt.Sprintf("%slen=%d crc32=%08x -->\n", trailerPrefix, len(body), sum)...)
}

// verifyTrailer checks the integrity trailer and returns the body bytes
// that precede it. Files without a trailer are returned unchanged (legacy
// format); a present-but-inconsistent trailer is ErrCorrupt.
func verifyTrailer(data []byte) ([]byte, error) {
	i := bytes.LastIndex(data, []byte(trailerPrefix))
	if i < 0 {
		return data, nil
	}
	var declared int
	var sum uint32
	if _, err := fmt.Sscanf(string(data[i+len(trailerPrefix):]), "len=%d crc32=%x", &declared, &sum); err != nil {
		return nil, fmt.Errorf("%w: unreadable trailer", ErrCorrupt)
	}
	if declared != i {
		return nil, fmt.Errorf("%w: trailer declares %d body bytes, file has %d", ErrCorrupt, declared, i)
	}
	body := data[:i]
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	return body, nil
}

// saveAtomic writes data to path via a same-directory temp file, fsyncing
// the temp file before the rename and the parent directory after it, so a
// crash at any point leaves either the old file or the new file — never a
// torn mixture. When backup is true and a previous file exists, a copy is
// kept as path+BackupSuffix before the rename.
func saveAtomic(path string, data []byte, backup bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".trim-*.tmp")
	if err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	err = func() error {
		if err := faultAt(StageTempWrite, path); err != nil {
			return err
		}
		if _, err := tmp.Write(data); err != nil {
			return fmt.Errorf("trim: save %s: %w", path, err)
		}
		if err := faultAt(StageTempSync, path); err != nil {
			return err
		}
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("trim: save %s: %w", path, err)
		}
		return nil
	}()
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("trim: save %s: %w", path, cerr)
	}
	if err != nil {
		return err
	}

	if backup {
		if _, serr := os.Stat(path); serr == nil {
			if err := faultAt(StageBackup, path); err != nil {
				return err
			}
			// The backup is a copy, not a hard link: a link would share
			// the inode with the primary, so a later torn in-place write
			// to the primary would corrupt the backup with it. Failure to
			// keep a backup must not block the save.
			if prev, rerr := os.ReadFile(path); rerr == nil {
				os.WriteFile(path+BackupSuffix, prev, 0o644)
			}
		}
	}

	if err := faultAt(StageRename, path); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := faultAt(StageDirSync, path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync() // best effort: some filesystems refuse directory fsync
		d.Close()
	}
	return nil
}

// SaveFile persists the store to an XML file (the paper's persistence
// format, §4.4: "persist (through XML files)"). The write is crash-safe:
// the snapshot (with an integrity trailer) is written to a temporary file,
// fsynced, and renamed into place with the parent directory fsynced, and
// the previous good snapshot is kept as path+".bak" for LoadFile recovery.
func (m *Manager) SaveFile(path string) error {
	mSaveTotal.Inc()
	snapshot := m.Snapshot()
	var buf bytes.Buffer
	if err := rdf.WriteXML(&buf, snapshot); err != nil {
		mSaveErrors.Inc()
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := saveAtomic(path, appendTrailer(buf.Bytes()), true); err != nil {
		mSaveErrors.Inc()
		return err
	}
	return nil
}

// loadBytes verifies and parses one store file's bytes.
func loadBytes(path string) (*rdf.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trim: load: %w", err)
	}
	body, err := verifyTrailer(data)
	if err != nil {
		return nil, fmt.Errorf("trim: load %s: %w", path, err)
	}
	g, err := rdf.ReadXML(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("trim: load %s: %w: %w", path, ErrCorrupt, err)
	}
	return g, nil
}

// LoadFile replaces the store contents with the triples in the XML file.
// Corruption (truncation, checksum mismatch, unparseable XML) is detected
// via the integrity trailer; when the primary file is corrupt or missing,
// LoadFile falls back to the ".bak" snapshot kept by SaveFile, counting
// the recovery in obs (trim.persist.load.recovered). The store is left
// untouched unless a good snapshot is found.
func (m *Manager) LoadFile(path string) error {
	mLoadFileTotal.Inc()
	g, err := loadBytes(path)
	if err == nil {
		m.Replace(g)
		return nil
	}
	if errors.Is(err, ErrCorrupt) {
		mLoadCorrupt.Inc()
	}
	bak := path + BackupSuffix
	if _, serr := os.Stat(bak); serr != nil {
		return err
	}
	bg, berr := loadBytes(bak)
	if berr != nil {
		return fmt.Errorf("%w (backup %s also unusable: %w)", err, bak, berr)
	}
	m.Replace(bg)
	mLoadRecovered.Inc()
	obs.Log().Warn("trim: recovered store from backup snapshot",
		"path", path, "backup", bak, "err", err)
	return nil
}

// SaveNTriples persists the store in N-Triples form, useful for diffing and
// for interchange with tools outside the SLIM stack. The write goes through
// the same atomic temp-file+rename path as SaveFile, so a crash mid-save
// never leaves a truncated file (N-Triples files carry no trailer: the
// format is line-oriented and consumed by external tools).
func (m *Manager) SaveNTriples(path string) (err error) {
	mSaveTotal.Inc()
	defer func() {
		if err != nil {
			mSaveErrors.Inc()
		}
	}()
	snapshot := m.Snapshot()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, snapshot); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	return saveAtomic(path, buf.Bytes(), false)
}

// LoadNTriples replaces the store contents with the triples in an
// N-Triples file.
func (m *Manager) LoadNTriples(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trim: load: %w", err)
	}
	defer f.Close()
	g, err := rdf.ReadNTriples(f)
	if err != nil {
		return fmt.Errorf("trim: load %s: %w", path, err)
	}
	m.Replace(g)
	return nil
}
