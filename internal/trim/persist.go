package trim

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/rdf"
)

// Persistence here is failure-aware (docs/ROBUSTNESS.md): saves are atomic
// and durable (temp file + fsync + rename + directory fsync, via the
// shared internal/durable helper), snapshots carry a length+checksum
// trailer so torn or truncated files are detected on load, and every save
// keeps the previous good snapshot as a ".bak" sibling that LoadFile falls
// back to when the primary is corrupt. This file is the XML snapshot
// backend — the paper-fidelity interchange format; see backend.go for the
// pluggable backend surface and wal.go for the append-only WAL backend.

// ErrCorrupt marks a store file whose bytes fail integrity verification
// (truncation, checksum mismatch, or unparseable content). Callers can
// errors.Is against it to distinguish corruption from I/O errors.
var ErrCorrupt = errors.New("trim: corrupt store file")

// BackupSuffix is appended to the store path to name the previous good
// snapshot kept by SaveFile.
const BackupSuffix = durable.BackupSuffix

// PersistStage names one step of the persistence I/O sequence; the fault
// hook receives it so tests can fail (or corrupt) a precise point in the
// write path — e.g. "the process died between temp-write and rename". It
// is the shared durable.Stage: the same hook reaches the XML snapshot
// write, the mark store save, and every WAL step.
type PersistStage = durable.Stage

const (
	// StageTempWrite: about to write the snapshot bytes to the temp file.
	StageTempWrite = durable.StageTempWrite
	// StageTempSync: about to fsync the temp file.
	StageTempSync = durable.StageTempSync
	// StageBackup: about to copy the current file to its .bak sibling.
	StageBackup = durable.StageBackup
	// StageRename: about to rename the temp file over the target.
	StageRename = durable.StageRename
	// StageDirSync: about to fsync the parent directory.
	StageDirSync = durable.StageDirSync

	// WAL backend stages (internal/wal, wal.go). The snapshot written by
	// compaction additionally runs the five stages above against the
	// snapshot path.
	StageWALAppend   = durable.StageWALAppend
	StageWALSync     = durable.StageWALSync
	StageWALCompact  = durable.StageWALCompact
	StageWALTruncate = durable.StageWALTruncate
)

// PersistFault is an injectable fault hook for persistence I/O. It runs
// before each stage with the target path; returning a non-nil error aborts
// the save as if the I/O at that stage had failed. The hook may also
// mutate the filesystem (truncate the target, delete the backup) to
// simulate torn writes and crashes deterministically.
type PersistFault = durable.Fault

// SetPersistFault installs the persistence fault hook (nil removes it) and
// returns the previous hook. The hook is shared across every durability
// path — XML snapshot saves, WAL appends/fsyncs/compactions, and the mark
// store — so one installation reaches all write-path steps. Tests use it
// to exercise crash recovery; it is process-wide, so parallel tests should
// not share it.
//
// slimvet:noobs test-only fault-injection hook, not a store operation.
func SetPersistFault(h PersistFault) (prev PersistFault) {
	return durable.SetFault(h)
}

// faultAt runs the installed fault hook, if any, for one stage.
func faultAt(stage PersistStage, path string) error {
	return durable.FaultAt(stage, path)
}

// The trailer is an XML comment appended after the document: harmless to
// any XML parser (the decoder stops at the end of the root element), but
// enough to detect truncation (declared length vs actual) and bit rot
// (CRC-32 of the body). Legacy files without a trailer still load.
const trailerPrefix = "<!-- slim-trailer "

func appendTrailer(body []byte) []byte {
	sum := crc32.ChecksumIEEE(body)
	return append(body, fmt.Sprintf("%slen=%d crc32=%08x -->\n", trailerPrefix, len(body), sum)...)
}

// verifyTrailer checks the integrity trailer and returns the body bytes
// that precede it. Files without a trailer are returned unchanged (legacy
// format); a present-but-inconsistent trailer is ErrCorrupt.
func verifyTrailer(data []byte) ([]byte, error) {
	i := bytes.LastIndex(data, []byte(trailerPrefix))
	if i < 0 {
		return data, nil
	}
	var declared int
	var sum uint32
	if _, err := fmt.Sscanf(string(data[i+len(trailerPrefix):]), "len=%d crc32=%x", &declared, &sum); err != nil {
		return nil, fmt.Errorf("%w: unreadable trailer", ErrCorrupt)
	}
	if declared != i {
		return nil, fmt.Errorf("%w: trailer declares %d body bytes, file has %d", ErrCorrupt, declared, i)
	}
	body := data[:i]
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	return body, nil
}

// saveAtomic writes data to path crash-safely through the shared
// atomic-write helper (docs/ROBUSTNESS.md): same-directory temp file,
// fsync, optional .bak backup, rename, directory fsync.
func saveAtomic(path string, data []byte, backup bool) error {
	if err := durable.WriteFileAtomic(path, data, backup); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	return nil
}

// snapshotBytes renders a graph as the trailer-carrying XML snapshot form.
func snapshotBytes(g *rdf.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := rdf.WriteXML(&buf, g); err != nil {
		return nil, err
	}
	return appendTrailer(buf.Bytes()), nil
}

// SaveFile persists the store to an XML file (the paper's persistence
// format, §4.4: "persist (through XML files)"). The write is crash-safe:
// the snapshot (with an integrity trailer) is written to a temporary file,
// fsynced, and renamed into place with the parent directory fsynced, and
// the previous good snapshot is kept as path+".bak" for LoadFile recovery.
func (m *Manager) SaveFile(path string) error {
	mSaveTotal.Inc()
	data, err := snapshotBytes(m.Snapshot())
	if err != nil {
		mSaveErrors.Inc()
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := saveAtomic(path, data, true); err != nil {
		mSaveErrors.Inc()
		return err
	}
	return nil
}

// loadBytes verifies and parses one store file's bytes.
func loadBytes(path string) (*rdf.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trim: load: %w", err)
	}
	body, err := verifyTrailer(data)
	if err != nil {
		return nil, fmt.Errorf("trim: load %s: %w", path, err)
	}
	g, err := rdf.ReadXML(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("trim: load %s: %w: %w", path, ErrCorrupt, err)
	}
	return g, nil
}

// loadSnapshot reads a snapshot file with .bak fallback, returning the
// recovered graph without touching any manager. It is the shared read side
// of LoadFile and the WAL backend's compacted-snapshot recovery.
func loadSnapshot(path string) (*rdf.Graph, error) {
	g, err := loadBytes(path)
	if err == nil {
		return g, nil
	}
	if errors.Is(err, ErrCorrupt) {
		mLoadCorrupt.Inc()
	}
	bak := path + BackupSuffix
	if _, serr := os.Stat(bak); serr != nil {
		return nil, err
	}
	bg, berr := loadBytes(bak)
	if berr != nil {
		return nil, fmt.Errorf("%w (backup %s also unusable: %w)", err, bak, berr)
	}
	mLoadRecovered.Inc()
	obs.Log().Warn("trim: recovered store from backup snapshot",
		"path", path, "backup", bak, "err", err)
	return bg, nil
}

// LoadFile replaces the store contents with the triples in the XML file.
// Corruption (truncation, checksum mismatch, unparseable XML) is detected
// via the integrity trailer; when the primary file is corrupt or missing,
// LoadFile falls back to the ".bak" snapshot kept by SaveFile, counting
// the recovery in obs (trim.persist.load.recovered). The store is left
// untouched unless a good snapshot is found.
func (m *Manager) LoadFile(path string) error {
	mLoadFileTotal.Inc()
	g, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	m.Replace(g)
	return nil
}

// SaveNTriples persists the store in N-Triples form, useful for diffing and
// for interchange with tools outside the SLIM stack. The write goes through
// the same atomic temp-file+rename path as SaveFile, so a crash mid-save
// never leaves a truncated file (N-Triples files carry no trailer: the
// format is line-oriented and consumed by external tools).
func (m *Manager) SaveNTriples(path string) (err error) {
	mSaveTotal.Inc()
	defer func() {
		if err != nil {
			mSaveErrors.Inc()
		}
	}()
	snapshot := m.Snapshot()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, snapshot); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	return saveAtomic(path, buf.Bytes(), false)
}

// LoadNTriples replaces the store contents with the triples in an
// N-Triples file.
func (m *Manager) LoadNTriples(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trim: load: %w", err)
	}
	defer f.Close()
	g, err := rdf.ReadNTriples(f)
	if err != nil {
		return fmt.Errorf("trim: load %s: %w", path, err)
	}
	m.Replace(g)
	return nil
}
