package trim

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/rdf"
)

// SaveFile persists the store to an XML file (the paper's persistence
// format, §4.4: "persist (through XML files)"). The write is atomic: the
// content is written to a temporary file in the same directory and renamed
// into place, so a crash never leaves a half-written store.
func (m *Manager) SaveFile(path string) error {
	snapshot := m.Snapshot()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".trim-*.xml")
	if err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	if err := rdf.WriteXML(tmp, snapshot); err != nil {
		tmp.Close()
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	return nil
}

// LoadFile replaces the store contents with the triples in the XML file.
func (m *Manager) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trim: load: %w", err)
	}
	defer f.Close()
	g, err := rdf.ReadXML(f)
	if err != nil {
		return fmt.Errorf("trim: load %s: %w", path, err)
	}
	m.Replace(g)
	return nil
}

// SaveNTriples persists the store in N-Triples form, useful for diffing and
// for interchange with tools outside the SLIM stack.
func (m *Manager) SaveNTriples(path string) error {
	snapshot := m.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := rdf.WriteNTriples(f, snapshot); err != nil {
		f.Close()
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	return nil
}

// LoadNTriples replaces the store contents with the triples in an
// N-Triples file.
func (m *Manager) LoadNTriples(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trim: load: %w", err)
	}
	defer f.Close()
	g, err := rdf.ReadNTriples(f)
	if err != nil {
		return fmt.Errorf("trim: load %s: %w", path, err)
	}
	m.Replace(g)
	return nil
}
