package trim

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// Counter assertions are deltas: the obs registry is process-wide and other
// tests in this package record into the same metrics.
func TestMetricsCreateSelect(t *testing.T) {
	create0, new0 := mCreateTotal.Value(), mCreateNew.Value()
	sel0, selNS0 := mSelectTotal.Value(), mSelectNS.Count()
	idxSub0, scan0 := mIdxSubject.Value(), mIdxScan.Value()
	createNS0 := mCreateNS.Count()

	m := NewManager()
	s := rdf.IRI("http://x/s")
	if _, err := m.Create(rdf.T(s, rdf.IRI("http://x/p"), rdf.String("v"))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(rdf.T(s, rdf.IRI("http://x/p"), rdf.String("v"))); err != nil {
		t.Fatal(err) // duplicate: total bumps, new does not
	}
	m.Select(rdf.P(s, rdf.Zero, rdf.Zero))        // subject index
	m.Select(rdf.P(rdf.Zero, rdf.Zero, rdf.Zero)) // full scan

	if got := mCreateTotal.Value() - create0; got != 2 {
		t.Errorf("trim.create.total delta = %d, want 2", got)
	}
	if got := mCreateNew.Value() - new0; got != 1 {
		t.Errorf("trim.create.new delta = %d, want 1", got)
	}
	if got := mCreateNS.Count() - createNS0; got != 2 {
		t.Errorf("trim.create.ns observations delta = %d, want 2", got)
	}
	if got := mSelectTotal.Value() - sel0; got != 2 {
		t.Errorf("trim.select.total delta = %d, want 2", got)
	}
	if got := mSelectNS.Count() - selNS0; got != 2 {
		t.Errorf("trim.select.ns observations delta = %d, want 2", got)
	}
	if got := mIdxSubject.Value() - idxSub0; got != 1 {
		t.Errorf("trim.index.subject delta = %d, want 1", got)
	}
	if got := mIdxScan.Value() - scan0; got != 1 {
		t.Errorf("trim.index.scan delta = %d, want 1", got)
	}
}

func TestMetricsObserverFanout(t *testing.T) {
	fan0 := mNotifyFanout.Value()
	m := NewManager()
	seen := 0
	m.Observe(func(rdf.Triple, bool) { seen++ })
	m.Observe(func(rdf.Triple, bool) { seen++ })
	if _, err := m.Create(rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.String("v"))); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("observers saw %d notifications, want 2", seen)
	}
	if got := mNotifyFanout.Value() - fan0; got != 2 {
		t.Errorf("trim.observer.fanout delta = %d, want 2", got)
	}
}

func TestMetricsBatchAndLoad(t *testing.T) {
	batch0, batchOps0 := mBatchTotal.Value(), mBatchOps.Count()
	load0 := mLoadTriples.Value()

	m := NewManager()
	b := m.NewBatch()
	for i := 0; i < 3; i++ {
		if err := b.Create(rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.Integer(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	if got := mBatchTotal.Value() - batch0; got != 1 {
		t.Errorf("trim.batch.total delta = %d, want 1", got)
	}
	if got := mBatchOps.Count() - batchOps0; got != 1 {
		t.Errorf("trim.batch.ops observations delta = %d, want 1", got)
	}

	other := NewManager()
	other.Replace(m.Snapshot())
	if got := mLoadTriples.Value() - load0; got != 3 {
		t.Errorf("trim.load.triples delta = %d, want 3", got)
	}
}

func TestStatsIndexAndGeneration(t *testing.T) {
	m := NewManager()
	s1, s2 := rdf.IRI("http://x/a"), rdf.IRI("http://x/b")
	p := rdf.IRI("http://x/p")
	m.Create(rdf.T(s1, p, rdf.String("1")))
	m.Create(rdf.T(s2, p, rdf.String("2")))
	m.Create(rdf.T(s1, p, s2))

	st := m.Stats()
	if st.IndexSPO != 3 || st.IndexPOS != 3 || st.IndexOSP != 3 {
		t.Errorf("index entries = %d/%d/%d, want 3/3/3", st.IndexSPO, st.IndexPOS, st.IndexOSP)
	}
	if st.Generation != m.Generation() || st.Generation == 0 {
		t.Errorf("stats generation = %d, manager generation = %d", st.Generation, m.Generation())
	}
	line := st.String()
	for _, want := range []string{"spo=3", "pos=3", "osp=3", "generation=3", "triples=3"} {
		if !strings.Contains(line, want) {
			t.Errorf("stats string missing %q: %s", want, line)
		}
	}
	// Remove updates the index tallies.
	m.Remove(rdf.T(s1, p, s2))
	st = m.Stats()
	if st.IndexSPO != 2 || st.Generation != 4 {
		t.Errorf("after remove: spo=%d generation=%d, want 2, 4", st.IndexSPO, st.Generation)
	}
}
