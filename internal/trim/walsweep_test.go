package trim

// The WAL torture lane of the fault-injection sweep (docs/ROBUSTNESS.md):
// gated behind SLIM_FAULT_SWEEP with the rest of the sweep and run by
// `make faults`. The invariant is prefix consistency — after ANY torn
// tail, flipped bit, or interrupted compaction, recovery lands on exactly
// one of the acknowledged commit states (never a partial batch, never a
// panic), and a post-crash compaction retry converges.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/wal"
)

// walHistory builds a WAL with several acknowledged commits and returns
// the log path plus the snapshot after each commit (index 0 = empty).
func walHistory(t *testing.T, dir string, commits int) (string, []*rdf.Graph) {
	t.Helper()
	path := filepath.Join(dir, "store.wal")
	m := NewManager()
	ws, err := OpenWAL(m, path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	states := []*rdf.Graph{m.Snapshot()}
	for c := 0; c < commits; c++ {
		m.Create(rdf.T(
			rdf.IRI(fmt.Sprintf("http://t/c%d", c)),
			rdf.IRI("http://t/p"),
			rdf.String(fmt.Sprintf("commit %d payload with some ballast", c)),
		))
		if c > 0 {
			m.Remove(rdf.T(
				rdf.IRI(fmt.Sprintf("http://t/c%d", c-1)),
				rdf.IRI("http://t/p"),
				rdf.String(fmt.Sprintf("commit %d payload with some ballast", c-1)),
			))
		}
		if err := ws.Commit(); err != nil {
			t.Fatal(err)
		}
		states = append(states, m.Snapshot())
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	return path, states
}

// requireAckedState recovers the WAL and fails unless the result equals
// one of the given acknowledged states, returning its index.
func requireAckedState(t *testing.T, label, path string, states []*rdf.Graph) int {
	t.Helper()
	m := NewManager()
	ws, err := OpenWAL(m, path, WALOptions{})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer ws.Close()
	got := m.Snapshot()
	for i, s := range states {
		if got.Equal(s) {
			return i
		}
	}
	t.Fatalf("%s: recovered state (%d triples) matches no acknowledged commit state", label, m.Len())
	return -1
}

// TestFaultSweepWALTruncation cuts the log at every byte offset and
// requires recovery to land on the exact commit prefix that fits: commit
// k's state iff its record survived whole.
func TestFaultSweepWALTruncation(t *testing.T) {
	sweepGate(t)
	dir := t.TempDir()
	master, states := walHistory(t, dir, 4)
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for n := 0; n <= len(full); n++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got := requireAckedState(t, fmt.Sprintf("cut at %d/%d", n, len(full)), path, states)
		// More surviving bytes can never recover an EARLIER commit.
		if got < prev {
			t.Fatalf("cut at %d recovered commit %d, but cut at %d recovered commit %d", n, got, n-1, prev)
		}
		prev = got
	}
	if prev != len(states)-1 {
		t.Fatalf("full log recovered commit %d, want %d", prev, len(states)-1)
	}
}

// TestFaultSweepWALBitRot flips every bit of the last record in turn: the
// CRC frame must reject the record wholesale, landing recovery on the
// previous commit — never applying a corrupted op.
func TestFaultSweepWALBitRot(t *testing.T) {
	sweepGate(t)
	dir := t.TempDir()
	master, states := walHistory(t, dir, 3)
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record: scanning the file cut one byte short leaves
	// every record but the last intact, so that scan's good-bytes mark is
	// exactly where the last record's frame begins.
	probe := filepath.Join(dir, "probe.wal")
	if err := os.WriteFile(probe, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Check(probe)
	if err != nil {
		t.Fatal(err)
	}
	start := int(rec.GoodBytes)
	if start <= 0 || start >= len(full) {
		t.Fatalf("could not locate the final record (good bytes = %d of %d)", start, len(full))
	}
	for off := start; off < len(full); off++ {
		for bit := 0; bit < 8; bit++ {
			damaged := append([]byte(nil), full...)
			damaged[off] ^= 1 << bit
			path := filepath.Join(dir, "flip.wal")
			if err := os.WriteFile(path, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			got := requireAckedState(t, fmt.Sprintf("flip byte %d bit %d", off, bit), path, states)
			if got == len(states)-1 {
				t.Fatalf("flip byte %d bit %d: corrupted final record survived recovery", off, bit)
			}
		}
	}
}

// TestFaultSweepWALCompactionInterrupt kills compaction at every durable
// stage, then verifies (a) recovery still yields the exact pre-compaction
// state and (b) a retried compaction afterwards converges with an intact
// snapshot and an empty log.
func TestFaultSweepWALCompactionInterrupt(t *testing.T) {
	sweepGate(t)
	stages := []PersistStage{
		StageWALCompact, StageTempWrite, StageTempSync, StageBackup,
		StageRename, StageDirSync, StageWALTruncate,
	}
	for _, stage := range stages {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "store.wal")
			m, ws := openWALT(t, path, WALOptions{})
			populate(m, 20)
			if err := ws.Commit(); err != nil {
				t.Fatal(err)
			}
			// Seed a first snapshot so every stage (incl. backup) fires.
			if err := ws.Compact(); err != nil {
				t.Fatal(err)
			}
			m.Create(rdf.T(rdf.IRI("http://t/late"), rdf.IRI("http://t/p"), rdf.String("post-snapshot")))
			if err := ws.Commit(); err != nil {
				t.Fatal(err)
			}
			want := m.Snapshot()

			fail := stage
			defer SetPersistFault(SetPersistFault(func(s PersistStage, _ string) error {
				if s == fail {
					return fmt.Errorf("injected at %s", s)
				}
				return nil
			}))
			if err := ws.Compact(); err == nil {
				t.Fatalf("compaction survived injected fault at %s", stage)
			}
			SetPersistFault(nil)

			// Crash here: abandon ws, recover fresh, state must be exact.
			m2 := NewManager()
			ws2, err := OpenWAL(m2, path, WALOptions{})
			if err != nil {
				t.Fatalf("recovery after %s: %v", stage, err)
			}
			defer ws2.Close()
			if !m2.Snapshot().Equal(want) {
				t.Fatalf("recovery after crash at %s lost state (%d vs %d triples)", stage, m2.Len(), want.Len())
			}
			// The retry converges: intact snapshot, empty log, same state.
			if err := ws2.Compact(); err != nil {
				t.Fatalf("compaction retry after %s: %v", stage, err)
			}
			rep, err := WALCheck(path)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Records != 0 || rep.TornBytes != 0 || !rep.SnapshotOK {
				t.Fatalf("after retried compaction: %+v, want empty intact log + ok snapshot", rep)
			}
			requireRecovered(t, "retry "+string(stage), path, want)
		})
	}
}
