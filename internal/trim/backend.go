package trim

import (
	"fmt"
	"strings"
)

// Backend is the pluggable durability surface (docs/ROBUSTNESS.md
// "Durability backends"): a store rooted at one filesystem path that can
// persist and recover a Manager. Three implementations ship:
//
//   - "xml"   — the paper-fidelity XML snapshot (persist.go): every Save
//     rewrites the whole store crash-safely, O(store).
//   - "wal"   — the CRC-framed write-ahead log (wal.go): Save appends one
//     fsynced record per mutation batch, O(batch), with periodic snapshot
//     compaction and torn-tail recovery.
//   - "jsonl" — JSON Lines (jsonl.go): the portability format for
//     export/import and interchange with non-SLIM tooling.
//
// Save and Load are full-store operations from the caller's view; how much
// I/O they cost is the backend's concern. Close releases file handles (and
// for the WAL flushes captured ops); a Backend is not usable after Close.
type Backend interface {
	// Kind names the backend: BackendXML, BackendWAL, or BackendJSONL.
	Kind() string
	// Path is the primary file the backend persists to.
	Path() string
	// Save persists the Manager's current contents durably.
	Save() error
	// Load recovers the Manager's contents from disk, replacing them.
	Load() error
	// Close flushes and releases the backend.
	Close() error
}

// Backend kind names accepted by OpenBackend (and the CLIs' -backend flag).
const (
	BackendXML   = "xml"
	BackendWAL   = "wal"
	BackendJSONL = "jsonl"
)

// BackendKinds lists the accepted -backend values for usage strings.
func BackendKinds() []string { return []string{BackendXML, BackendWAL, BackendJSONL} }

// OpenBackend constructs the named durability backend over m rooted at
// path. Kind is one of BackendKinds (case-insensitive). The WAL backend
// performs recovery immediately (snapshot load + log replay), replacing
// m's contents; the XML and JSONL backends touch no files until Save or
// Load is called.
//
// slimvet:noobs constructor; the I/O paths behind Save/Load carry the obs
// instrumentation.
func OpenBackend(kind string, m *Manager, path string) (Backend, error) {
	switch strings.ToLower(kind) {
	case BackendXML, "":
		return NewXMLBackend(m, path), nil
	case BackendWAL:
		return OpenWAL(m, path, WALOptions{})
	case BackendJSONL:
		return NewJSONLBackend(m, path), nil
	default:
		return nil, fmt.Errorf("trim: unknown backend kind %q (want one of %s)",
			kind, strings.Join(BackendKinds(), "|"))
	}
}

// XMLBackend adapts the XML snapshot persistence (SaveFile/LoadFile) to
// the Backend interface.
type XMLBackend struct {
	m    *Manager
	path string
}

// NewXMLBackend returns the XML snapshot backend rooted at path.
//
// slimvet:noobs constructor; SaveFile/LoadFile carry the instrumentation.
func NewXMLBackend(m *Manager, path string) *XMLBackend {
	return &XMLBackend{m: m, path: path}
}

// Kind identifies the backend ("xml").
func (b *XMLBackend) Kind() string { return BackendXML }

// Path returns the snapshot path.
func (b *XMLBackend) Path() string { return b.path }

// Save persists the full store as a crash-safe XML snapshot.
func (b *XMLBackend) Save() error { return b.m.SaveFile(b.path) }

// Load replaces the store contents from the snapshot (with .bak fallback).
func (b *XMLBackend) Load() error { return b.m.LoadFile(b.path) }

// Close is a no-op: the XML backend holds no open files between saves.
//
// slimvet:noobs no-op release, nothing to instrument.
func (b *XMLBackend) Close() error { return nil }

// JSONLBackend adapts the JSON Lines persistence (SaveJSONL/LoadJSONL) to
// the Backend interface.
type JSONLBackend struct {
	m    *Manager
	path string
}

// NewJSONLBackend returns the JSON Lines backend rooted at path.
//
// slimvet:noobs constructor; SaveJSONL/LoadJSONL carry the instrumentation.
func NewJSONLBackend(m *Manager, path string) *JSONLBackend {
	return &JSONLBackend{m: m, path: path}
}

// Kind identifies the backend ("jsonl").
func (b *JSONLBackend) Kind() string { return BackendJSONL }

// Path returns the JSONL file path.
func (b *JSONLBackend) Path() string { return b.path }

// Save persists the full store as atomically-written JSON Lines.
func (b *JSONLBackend) Save() error { return b.m.SaveJSONL(b.path) }

// Load replaces the store contents from the JSONL file.
func (b *JSONLBackend) Load() error { return b.m.LoadJSONL(b.path) }

// Close is a no-op: the JSONL backend holds no open files between saves.
//
// slimvet:noobs no-op release, nothing to instrument.
func (b *JSONLBackend) Close() error { return nil }
