package trim

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

func TestSaveLoadXML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")

	m := NewManager()
	populate(m, 25)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !m.Snapshot().Equal(loaded.Snapshot()) {
		t.Fatal("loaded store differs from saved store")
	}
	// Indexes must work after load.
	if n := loaded.Count(rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero)); n != 3 {
		t.Fatalf("Count after load = %d, want 3", n)
	}
}

func TestSaveLoadNTriples(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.nt")
	m := NewManager()
	populate(m, 10)
	if err := m.SaveNTriples(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewManager()
	if err := loaded.LoadNTriples(path); err != nil {
		t.Fatal(err)
	}
	if !m.Snapshot().Equal(loaded.Snapshot()) {
		t.Fatal("N-Triples round trip differs")
	}
}

func TestLoadMissingFile(t *testing.T) {
	m := NewManager()
	if err := m.LoadFile(filepath.Join(t.TempDir(), "absent.xml")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if err := m.LoadNTriples(filepath.Join(t.TempDir(), "absent.nt")); err == nil {
		t.Fatal("loading a missing N-Triples file succeeded")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.xml")
	if err := os.WriteFile(path, []byte("<not a store>"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	populate(m, 5)
	if err := m.LoadFile(path); err == nil {
		t.Fatal("loading corrupt XML succeeded")
	}
	// The prior content must survive a failed load.
	if m.Len() != 5 {
		t.Fatalf("failed load clobbered the store: Len = %d", m.Len())
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	m := NewManager()
	populate(m, 5)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory has leftovers: %v", names)
	}
	// Overwriting works.
	m.Create(tr("extra", "p", "v"))
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 6 {
		t.Fatalf("overwrite lost data: Len = %d", loaded.Len())
	}
}

func TestSaveToBadDirectory(t *testing.T) {
	m := NewManager()
	if err := m.SaveFile(filepath.Join(t.TempDir(), "nodir", "store.xml")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}

func TestStats(t *testing.T) {
	m := NewManager()
	m.Create(tr("s1", "p1", "lit"))
	m.Create(link("s1", "p2", "s2"))
	s := m.Stats()
	if s.Triples != 2 {
		t.Errorf("Triples = %d", s.Triples)
	}
	if s.DistinctSubjects != 1 {
		t.Errorf("DistinctSubjects = %d", s.DistinctSubjects)
	}
	if s.DistinctPredicates != 2 {
		t.Errorf("DistinctPredicates = %d", s.DistinctPredicates)
	}
	if s.LiteralObjects != 1 || s.ResourceObjects != 1 {
		t.Errorf("object kinds = %d/%d", s.LiteralObjects, s.ResourceObjects)
	}
	if s.ApproxBytes == 0 {
		t.Error("ApproxBytes = 0")
	}
	if s.String() == "" {
		t.Error("empty Stats.String()")
	}
}

// --- crash-safety and corruption recovery (docs/ROBUSTNESS.md) ---

func TestTrailerDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	m := NewManager()
	populate(m, 10)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes out of the middle, keeping the trailer: the declared
	// length no longer matches.
	cut := append(append([]byte{}, data[:len(data)/3]...), data[2*len(data)/3:]...)
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	err = NewManager().LoadFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated load err = %v, want ErrCorrupt", err)
	}
}

func TestTrailerDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	m := NewManager()
	populate(m, 5)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside a literal value: still well-formed XML, same
	// length — only the checksum can catch it.
	i := bytes.Index(data, []byte("v1"))
	if i < 0 {
		t.Fatal("marker not found")
	}
	data[i] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewManager().LoadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-rot load err = %v, want ErrCorrupt", err)
	}
}

func TestLoadDiagnosableGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty.xml":     {},
		"garbage.xml":   []byte("\x00\xffnot xml at all\x13\x37"),
		"truncated.xml": []byte("<?xml version=\"1.0\"?>\n<slimstore version=\"1\"><triple><subject kind=\"iri\">http://t/"),
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		m := NewManager()
		populate(m, 3)
		err := m.LoadFile(path)
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
		// Never a partial or clobbered graph.
		if m.Len() != 3 {
			t.Errorf("%s: store clobbered, Len = %d", name, m.Len())
		}
	}
}

func TestLegacyFileWithoutTrailerLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.xml")
	m := NewManager()
	populate(m, 4)
	// Write the pre-trailer format directly.
	var buf bytes.Buffer
	if err := rdf.WriteXML(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !m.Snapshot().Equal(loaded.Snapshot()) {
		t.Fatal("legacy load differs")
	}
}

func TestSaveKeepsBackupAndLoadRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	v1 := NewManager()
	populate(v1, 5)
	if err := v1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	v2 := NewManager()
	populate(v2, 9)
	if err := v2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + BackupSuffix); err != nil {
		t.Fatalf("no backup kept: %v", err)
	}
	// Corrupt the primary (a torn in-place write); load falls back to the
	// .bak, which holds the previous good snapshot (v1).
	recovered := obs.C("trim.persist.load.recovered").Value()
	if err := os.WriteFile(path, []byte("<torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatalf("recovery load failed: %v", err)
	}
	if !loaded.Snapshot().Equal(v1.Snapshot()) {
		t.Fatal("recovered snapshot is not the previous good one")
	}
	if got := obs.C("trim.persist.load.recovered").Value(); got != recovered+1 {
		t.Errorf("recovered counter = %d, want %d", got, recovered+1)
	}
}

func TestLoadReportsWhenBackupAlsoBad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+BackupSuffix, []byte("also junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := NewManager().LoadFile(path)
	if err == nil {
		t.Fatal("load of doubly-bad store succeeded")
	}
	if !strings.Contains(err.Error(), "backup") {
		t.Errorf("error does not mention backup: %v", err)
	}
}

func TestPersistFaultHookAbortsSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	v1 := NewManager()
	populate(v1, 5)
	if err := v1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Simulate the process dying between temp-write and rename: the hook
	// fails the rename stage, after the temp file was written and synced.
	boom := errors.New("power cut")
	prev := SetPersistFault(func(stage PersistStage, p string) error {
		if stage == StageRename {
			return boom
		}
		return nil
	})
	defer SetPersistFault(prev)
	v2 := NewManager()
	populate(v2, 9)
	if err := v2.SaveFile(path); !errors.Is(err, boom) {
		t.Fatalf("save err = %v, want injected fault", err)
	}
	SetPersistFault(prev)
	// The target still holds the previous good snapshot.
	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !loaded.Snapshot().Equal(v1.Snapshot()) {
		t.Fatal("aborted save damaged the target")
	}
}

func TestCrashBetweenWriteAndRenameRecoversViaBackup(t *testing.T) {
	// The acceptance scenario: a save sequence that dies after tearing the
	// target (a non-atomic filesystem, or a crash observed mid-rename)
	// must leave LoadFile recovering the previous good snapshot from .bak,
	// with the recovery counted in obs.
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	v1 := NewManager()
	populate(v1, 6)
	if err := v1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	v2 := NewManager()
	populate(v2, 12)
	if err := v2.SaveFile(path); err != nil { // keeps v1 as .bak
		t.Fatal(err)
	}
	crash := errors.New("kill -9")
	prev := SetPersistFault(func(stage PersistStage, p string) error {
		if stage == StageRename {
			// Tear the target in place, then die.
			if err := os.Truncate(p, 40); err != nil {
				t.Fatal(err)
			}
			return crash
		}
		return nil
	})
	defer SetPersistFault(prev)
	v3 := NewManager()
	populate(v3, 20)
	if err := v3.SaveFile(path); !errors.Is(err, crash) {
		t.Fatalf("save err = %v", err)
	}
	SetPersistFault(prev)

	recovered := obs.C("trim.persist.load.recovered").Value()
	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatalf("post-crash load: %v", err)
	}
	// The .bak kept by the v3 save attempt holds v2 — the previous good
	// snapshot at the moment of the crash.
	if !loaded.Snapshot().Equal(v2.Snapshot()) {
		t.Fatal("recovered snapshot is not the previous good one")
	}
	if got := obs.C("trim.persist.load.recovered").Value(); got != recovered+1 {
		t.Errorf("recovered counter = %d, want %d", got, recovered+1)
	}
}

func TestSaveNTriplesIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.nt")
	v1 := NewManager()
	populate(v1, 5)
	if err := v1.SaveNTriples(path); err != nil {
		t.Fatal(err)
	}
	// A failed save must not touch the existing file (the old behavior
	// truncated it in place via os.Create).
	boom := errors.New("crash")
	prev := SetPersistFault(func(stage PersistStage, p string) error {
		if stage == StageRename {
			return boom
		}
		return nil
	})
	defer SetPersistFault(prev)
	v2 := NewManager()
	populate(v2, 9)
	if err := v2.SaveNTriples(path); !errors.Is(err, boom) {
		t.Fatalf("save err = %v", err)
	}
	SetPersistFault(prev)
	loaded := NewManager()
	if err := loaded.LoadNTriples(path); err != nil {
		t.Fatal(err)
	}
	if !loaded.Snapshot().Equal(v1.Snapshot()) {
		t.Fatal("failed N-Triples save damaged the target")
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory has leftovers: %v", names)
	}
}
