package trim

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

func TestSaveLoadXML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")

	m := NewManager()
	populate(m, 25)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !m.Snapshot().Equal(loaded.Snapshot()) {
		t.Fatal("loaded store differs from saved store")
	}
	// Indexes must work after load.
	if n := loaded.Count(rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero)); n != 3 {
		t.Fatalf("Count after load = %d, want 3", n)
	}
}

func TestSaveLoadNTriples(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.nt")
	m := NewManager()
	populate(m, 10)
	if err := m.SaveNTriples(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewManager()
	if err := loaded.LoadNTriples(path); err != nil {
		t.Fatal(err)
	}
	if !m.Snapshot().Equal(loaded.Snapshot()) {
		t.Fatal("N-Triples round trip differs")
	}
}

func TestLoadMissingFile(t *testing.T) {
	m := NewManager()
	if err := m.LoadFile(filepath.Join(t.TempDir(), "absent.xml")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if err := m.LoadNTriples(filepath.Join(t.TempDir(), "absent.nt")); err == nil {
		t.Fatal("loading a missing N-Triples file succeeded")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.xml")
	if err := os.WriteFile(path, []byte("<not a store>"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	populate(m, 5)
	if err := m.LoadFile(path); err == nil {
		t.Fatal("loading corrupt XML succeeded")
	}
	// The prior content must survive a failed load.
	if m.Len() != 5 {
		t.Fatalf("failed load clobbered the store: Len = %d", m.Len())
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.xml")
	m := NewManager()
	populate(m, 5)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory has leftovers: %v", names)
	}
	// Overwriting works.
	m.Create(tr("extra", "p", "v"))
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewManager()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 6 {
		t.Fatalf("overwrite lost data: Len = %d", loaded.Len())
	}
}

func TestSaveToBadDirectory(t *testing.T) {
	m := NewManager()
	if err := m.SaveFile(filepath.Join(t.TempDir(), "nodir", "store.xml")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}

func TestStats(t *testing.T) {
	m := NewManager()
	m.Create(tr("s1", "p1", "lit"))
	m.Create(link("s1", "p2", "s2"))
	s := m.Stats()
	if s.Triples != 2 {
		t.Errorf("Triples = %d", s.Triples)
	}
	if s.DistinctSubjects != 1 {
		t.Errorf("DistinctSubjects = %d", s.DistinctSubjects)
	}
	if s.DistinctPredicates != 2 {
		t.Errorf("DistinctPredicates = %d", s.DistinctPredicates)
	}
	if s.LiteralObjects != 1 || s.ResourceObjects != 1 {
		t.Errorf("object kinds = %d/%d", s.LiteralObjects, s.ResourceObjects)
	}
	if s.ApproxBytes == 0 {
		t.Error("ApproxBytes = 0")
	}
	if s.String() == "" {
		t.Error("empty Stats.String()")
	}
}
