package trim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
)

// CompactStore is the alternative TRIM implementation foreshadowed in §6:
// "In applications of our SLIM Store technology beyond SLIMPad, some data
// sets are quite large and we are developing alternative implementation
// mechanisms."
//
// Terms are interned into a dictionary once and triples become fixed-size
// integer tuples, cutting per-triple memory versus the map-of-structs
// Manager and making bulk loads cheap. The trade-off is that removals are
// tombstoned until Compact is called. The ablation bench
// (BenchmarkAblation_CompactStore) quantifies the difference.
type CompactStore struct {
	mu sync.RWMutex

	// dictionary
	terms  []rdf.Term         // guarded by mu
	termID map[rdf.Term]int32 // guarded by mu

	// triples as parallel columns; dead[i] marks tombstones.
	subs, preds, objs []int32 // guarded by mu
	dead              []bool  // guarded by mu
	live              int     // guarded by mu

	// present prevents duplicate triples.
	present map[[3]int32]int32 // triple -> row index; guarded by mu

	// posting lists per term position.
	bySub, byPred, byObj map[int32][]int32 // term id -> row indexes; guarded by mu
}

// NewCompactStore returns an empty compact store.
func NewCompactStore() *CompactStore {
	return &CompactStore{
		termID:  make(map[rdf.Term]int32),
		present: make(map[[3]int32]int32),
		bySub:   make(map[int32][]int32),
		byPred:  make(map[int32][]int32),
		byObj:   make(map[int32][]int32),
	}
}

func (c *CompactStore) internLocked(t rdf.Term) int32 {
	if id, ok := c.termID[t]; ok {
		return id
	}
	id := int32(len(c.terms))
	c.terms = append(c.terms, t)
	c.termID[t] = id
	return id
}

// Create inserts a triple, reporting whether it was new.
//
// slimvet:noobs ablation-bench baseline store; the instrumented production
// path is Manager (BenchmarkAblation_CompactStore compares the two).
func (c *CompactStore) Create(t rdf.Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, fmt.Errorf("trim: compact create: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := [3]int32{c.internLocked(t.Subject), c.internLocked(t.Predicate), c.internLocked(t.Object)}
	if row, ok := c.present[key]; ok {
		if !c.dead[row] {
			return false, nil
		}
		// Resurrect the tombstoned row.
		c.dead[row] = false
		c.live++
		return true, nil
	}
	row := int32(len(c.subs))
	c.subs = append(c.subs, key[0])
	c.preds = append(c.preds, key[1])
	c.objs = append(c.objs, key[2])
	c.dead = append(c.dead, false)
	c.present[key] = row
	c.bySub[key[0]] = append(c.bySub[key[0]], row)
	c.byPred[key[1]] = append(c.byPred[key[1]], row)
	c.byObj[key[2]] = append(c.byObj[key[2]], row)
	c.live++
	return true, nil
}

// Remove tombstones a triple, reporting whether it was present.
//
// slimvet:noobs ablation-bench baseline store (see Create).
func (c *CompactStore) Remove(t rdf.Triple) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok1 := c.termID[t.Subject]
	p, ok2 := c.termID[t.Predicate]
	o, ok3 := c.termID[t.Object]
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	row, ok := c.present[[3]int32{s, p, o}]
	if !ok || c.dead[row] {
		return false
	}
	c.dead[row] = true
	c.live--
	return true
}

// Has reports whether the exact triple is stored (and live).
func (c *CompactStore) Has(t rdf.Triple) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok1 := c.termID[t.Subject]
	p, ok2 := c.termID[t.Predicate]
	o, ok3 := c.termID[t.Object]
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	row, ok := c.present[[3]int32{s, p, o}]
	return ok && !c.dead[row]
}

// Len returns the number of live triples.
func (c *CompactStore) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.live
}

// Select returns all live triples matching the pattern in deterministic
// order, using the smallest applicable posting list.
func (c *CompactStore) Select(p rdf.Pattern) []rdf.Triple {
	c.mu.RLock()
	defer c.mu.RUnlock()

	rows, scanned := c.candidateRowsLocked(p)
	var out []rdf.Triple
	check := func(row int32) {
		if c.dead[row] {
			return
		}
		t := rdf.T(c.terms[c.subs[row]], c.terms[c.preds[row]], c.terms[c.objs[row]])
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	if scanned {
		for _, row := range rows {
			check(row)
		}
	} else {
		for row := int32(0); row < int32(len(c.subs)); row++ {
			check(row)
		}
	}
	rdf.SortTriples(out)
	return out
}

// candidateRowsLocked picks the smallest posting list among bound
// positions.
func (c *CompactStore) candidateRowsLocked(p rdf.Pattern) ([]int32, bool) {
	var best []int32
	found := false
	consider := func(idx map[int32][]int32, term rdf.Term) bool {
		if term.IsZero() {
			return true
		}
		id, ok := c.termID[term]
		if !ok {
			best, found = nil, true // bound to an unknown term: empty result
			return false
		}
		list := idx[id]
		if !found || len(list) < len(best) {
			best, found = list, true
		}
		return true
	}
	if !consider(c.bySub, p.Subject) {
		return nil, true
	}
	if !consider(c.byPred, p.Predicate) {
		return nil, true
	}
	if !consider(c.byObj, p.Object) {
		return nil, true
	}
	return best, found
}

// Count returns the number of live matches.
func (c *CompactStore) Count(p rdf.Pattern) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rows, scanned := c.candidateRowsLocked(p)
	n := 0
	check := func(row int32) {
		if c.dead[row] {
			return
		}
		t := rdf.T(c.terms[c.subs[row]], c.terms[c.preds[row]], c.terms[c.objs[row]])
		if p.Matches(t) {
			n++
		}
	}
	if scanned {
		for _, row := range rows {
			check(row)
		}
	} else {
		for row := int32(0); row < int32(len(c.subs)); row++ {
			check(row)
		}
	}
	return n
}

// Compact rebuilds the store without tombstones, reclaiming memory after
// heavy deletion. It reports how many tombstones were dropped.
func (c *CompactStore) Compact() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	fresh := NewCompactStore()
	for row := range c.subs {
		if c.dead[row] {
			dropped++
			continue
		}
		t := rdf.T(c.terms[c.subs[row]], c.terms[c.preds[row]], c.terms[c.objs[row]])
		// Triples were validated on the way in.
		if _, err := fresh.Create(t); err != nil {
			panic(fmt.Sprintf("trim: compact rebuild: %v", err))
		}
	}
	c.terms, c.termID = fresh.terms, fresh.termID
	c.subs, c.preds, c.objs, c.dead = fresh.subs, fresh.preds, fresh.objs, fresh.dead
	c.present = fresh.present
	c.bySub, c.byPred, c.byObj = fresh.bySub, fresh.byPred, fresh.byObj
	c.live = fresh.live
	return dropped
}

// Snapshot materializes the live triples as a graph.
func (c *CompactStore) Snapshot() *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range c.Select(rdf.Pattern{}) {
		g.Add(t)
	}
	return g
}

// LoadGraph bulk-loads a graph, replacing current contents.
//
// slimvet:noobs ablation-bench baseline store (see Create).
func (c *CompactStore) LoadGraph(g *rdf.Graph) error {
	fresh := NewCompactStore()
	triples := g.All()
	sort.Slice(triples, func(i, j int) bool { return triples[i].Compare(triples[j]) < 0 })
	for _, t := range triples {
		if _, err := fresh.Create(t); err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.terms, c.termID = fresh.terms, fresh.termID
	c.subs, c.preds, c.objs, c.dead = fresh.subs, fresh.preds, fresh.objs, fresh.dead
	c.present = fresh.present
	c.bySub, c.byPred, c.byObj = fresh.bySub, fresh.byPred, fresh.byObj
	c.live = fresh.live
	return nil
}

// DictionarySize returns the number of interned terms (diagnostics).
func (c *CompactStore) DictionarySize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.terms)
}
