package trim

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadedCheck(t *testing.T) {
	m := NewManager()
	check := m.LoadedCheck()
	if err := check(context.Background()); err == nil {
		t.Fatal("empty store must fail the readiness check")
	}
	if _, err := m.Create(tr("s", "p", "o")); err != nil {
		t.Fatal(err)
	}
	if err := check(context.Background()); err != nil {
		t.Fatalf("loaded store failed: %v", err)
	}
}

func TestWritableCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.xml")
	check := WritableCheck(path)
	if err := check(context.Background()); err != nil {
		t.Fatalf("writable dir failed: %v", err)
	}
	if err := WritableCheck(filepath.Join(t.TempDir(), "missing", "store.xml"))(context.Background()); err == nil {
		t.Fatal("missing directory must fail the check")
	} else if !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("err = %v", err)
	}
}

// TestWritableCheckSeesPersistFault is the /healthz acceptance path: an
// injected persistence fault must flip the liveness check, because the
// check runs the same fault hook as SaveFile's temp-write stage.
func TestWritableCheckSeesPersistFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.xml")
	check := WritableCheck(path)

	prev := SetPersistFault(func(stage PersistStage, _ string) error {
		if stage == StageTempWrite {
			return errors.New("injected: disk full")
		}
		return nil
	})
	defer SetPersistFault(prev)

	err := check(context.Background())
	if err == nil || !strings.Contains(err.Error(), "injected: disk full") {
		t.Fatalf("fault not surfaced: %v", err)
	}

	SetPersistFault(prev)
	if err := check(context.Background()); err != nil {
		t.Fatalf("check still failing after fault cleared: %v", err)
	}
}
