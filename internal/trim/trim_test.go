package trim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func tr(s, p, o string) rdf.Triple {
	return rdf.T(rdf.IRI("http://t/"+s), rdf.IRI("http://t/"+p), rdf.String(o))
}

func link(s, p, o string) rdf.Triple {
	return rdf.T(rdf.IRI("http://t/"+s), rdf.IRI("http://t/"+p), rdf.IRI("http://t/"+o))
}

func TestCreateRemoveHas(t *testing.T) {
	m := NewManager()
	x := tr("s", "p", "v")
	added, err := m.Create(x)
	if err != nil || !added {
		t.Fatalf("Create = %v, %v", added, err)
	}
	if !m.Has(x) || m.Len() != 1 {
		t.Fatal("triple not stored")
	}
	added, err = m.Create(x)
	if err != nil || added {
		t.Fatalf("duplicate Create = %v, %v", added, err)
	}
	if !m.Remove(x) {
		t.Fatal("Remove = false")
	}
	if m.Has(x) || m.Len() != 0 {
		t.Fatal("triple still present after Remove")
	}
	if m.Remove(x) {
		t.Fatal("second Remove = true")
	}
}

func TestCreateInvalid(t *testing.T) {
	m := NewManager()
	if _, err := m.Create(rdf.T(rdf.String("s"), rdf.IRI("p"), rdf.String("o"))); err == nil {
		t.Fatal("invalid triple accepted")
	}
	if m.Len() != 0 {
		t.Fatal("invalid triple stored")
	}
}

func populate(m *Manager, n int) {
	for i := 0; i < n; i++ {
		m.Create(rdf.T(
			rdf.IRI(fmt.Sprintf("http://t/s%d", i%10)),
			rdf.IRI(fmt.Sprintf("http://t/p%d", i%5)),
			rdf.String(fmt.Sprintf("v%d", i)),
		))
	}
}

func TestSelectUsesAllBindingShapes(t *testing.T) {
	m := NewManager()
	populate(m, 100)
	// All 8 binding shapes of a selection query.
	shapes := []struct {
		pat  rdf.Pattern
		want int
	}{
		{rdf.P(rdf.Zero, rdf.Zero, rdf.Zero), 100},
		{rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero), 10},
		{rdf.P(rdf.Zero, rdf.IRI("http://t/p2"), rdf.Zero), 20},
		{rdf.P(rdf.Zero, rdf.Zero, rdf.String("v7")), 1},
		{rdf.P(rdf.IRI("http://t/s7"), rdf.IRI("http://t/p2"), rdf.Zero), 10},
		{rdf.P(rdf.IRI("http://t/s7"), rdf.Zero, rdf.String("v7")), 1},
		{rdf.P(rdf.Zero, rdf.IRI("http://t/p2"), rdf.String("v7")), 1},
		{rdf.P(rdf.IRI("http://t/s7"), rdf.IRI("http://t/p2"), rdf.String("v7")), 1},
	}
	for _, s := range shapes {
		got := m.Select(s.pat)
		if len(got) != s.want {
			t.Errorf("Select(%v) = %d results, want %d", s.pat, len(got), s.want)
		}
		if m.Count(s.pat) != s.want {
			t.Errorf("Count(%v) = %d, want %d", s.pat, m.Count(s.pat), s.want)
		}
		for _, x := range got {
			if !s.pat.Matches(x) {
				t.Errorf("Select(%v) returned non-matching %v", s.pat, x)
			}
		}
	}
}

func TestSelectAbsentKey(t *testing.T) {
	m := NewManager()
	populate(m, 10)
	if got := m.Select(rdf.P(rdf.IRI("http://t/absent"), rdf.Zero, rdf.Zero)); len(got) != 0 {
		t.Fatalf("Select absent subject = %d results", len(got))
	}
	if got := m.Count(rdf.P(rdf.Zero, rdf.Zero, rdf.String("nope"))); got != 0 {
		t.Fatalf("Count absent object = %d", got)
	}
}

func TestRemoveMatching(t *testing.T) {
	m := NewManager()
	populate(m, 100)
	n := m.RemoveMatching(rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero))
	if n != 10 {
		t.Fatalf("RemoveMatching = %d, want 10", n)
	}
	if m.Len() != 90 {
		t.Fatalf("Len = %d, want 90", m.Len())
	}
	if m.Count(rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero)) != 0 {
		t.Fatal("matching triples remain")
	}
}

func TestOne(t *testing.T) {
	m := NewManager()
	m.Create(tr("s", "name", "Ada"))
	got, err := m.One(rdf.P(rdf.IRI("http://t/s"), rdf.IRI("http://t/name"), rdf.Zero))
	if err != nil {
		t.Fatal(err)
	}
	if got.Object.Value() != "Ada" {
		t.Fatalf("One = %v", got)
	}
	if _, err := m.One(rdf.P(rdf.IRI("http://t/absent"), rdf.Zero, rdf.Zero)); err == nil {
		t.Fatal("One with zero matches should error")
	}
	m.Create(tr("s", "name", "Grace"))
	if _, err := m.One(rdf.P(rdf.IRI("http://t/s"), rdf.IRI("http://t/name"), rdf.Zero)); err == nil {
		t.Fatal("One with two matches should error")
	}
}

func TestSetUnique(t *testing.T) {
	m := NewManager()
	s, p := rdf.IRI("http://t/s"), rdf.IRI("http://t/name")
	if err := m.SetUnique(s, p, rdf.String("Ada")); err != nil {
		t.Fatal(err)
	}
	if err := m.SetUnique(s, p, rdf.String("Grace")); err != nil {
		t.Fatal(err)
	}
	objs := m.Objects(s, p)
	if len(objs) != 1 || objs[0].Value() != "Grace" {
		t.Fatalf("after SetUnique: %v", objs)
	}
}

func TestObjectsSubjects(t *testing.T) {
	m := NewManager()
	m.Create(link("a", "child", "b"))
	m.Create(link("a", "child", "c"))
	m.Create(link("d", "child", "b"))
	objs := m.Objects(rdf.IRI("http://t/a"), rdf.IRI("http://t/child"))
	if len(objs) != 2 {
		t.Fatalf("Objects = %v", objs)
	}
	subs := m.Subjects(rdf.IRI("http://t/child"), rdf.IRI("http://t/b"))
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v", subs)
	}
}

func TestGenerationAdvances(t *testing.T) {
	m := NewManager()
	g0 := m.Generation()
	m.Create(tr("s", "p", "v"))
	g1 := m.Generation()
	if g1 <= g0 {
		t.Fatal("generation did not advance on create")
	}
	m.Remove(tr("s", "p", "v"))
	if m.Generation() <= g1 {
		t.Fatal("generation did not advance on remove")
	}
	// Failed duplicate create leaves generation unchanged.
	m.Create(tr("x", "p", "v"))
	g2 := m.Generation()
	m.Create(tr("x", "p", "v"))
	if m.Generation() != g2 {
		t.Fatal("no-op create advanced generation")
	}
}

func TestObservers(t *testing.T) {
	m := NewManager()
	var events []string
	id := m.Observe(func(x rdf.Triple, added bool) {
		events = append(events, fmt.Sprintf("%v:%v", added, x.Object.Value()))
	})
	m.Create(tr("s", "p", "1"))
	m.Remove(tr("s", "p", "1"))
	m.Unobserve(id)
	m.Create(tr("s", "p", "2"))
	if len(events) != 2 || events[0] != "true:1" || events[1] != "false:1" {
		t.Fatalf("events = %v", events)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := NewManager()
	populate(m, 5)
	snap := m.Snapshot()
	m.Create(tr("new", "p", "v"))
	if snap.Len() != 5 {
		t.Fatal("snapshot changed after mutation")
	}
}

func TestReplaceRebuildsIndexes(t *testing.T) {
	m := NewManager()
	populate(m, 50)
	g := rdf.NewGraph()
	g.Add(tr("only", "p", "v"))
	m.Replace(g)
	if m.Len() != 1 {
		t.Fatalf("Len after Replace = %d", m.Len())
	}
	got := m.Select(rdf.P(rdf.IRI("http://t/only"), rdf.Zero, rdf.Zero))
	if len(got) != 1 {
		t.Fatal("index not rebuilt for new content")
	}
	if n := m.Count(rdf.P(rdf.IRI("http://t/s1"), rdf.Zero, rdf.Zero)); n != 0 {
		t.Fatalf("stale index entries: %d", n)
	}
}

func TestClear(t *testing.T) {
	m := NewManager()
	populate(m, 10)
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear left triples")
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := rdf.T(
					rdf.IRI(fmt.Sprintf("http://t/w%d", w)),
					rdf.IRI("http://t/p"),
					rdf.Integer(int64(i)),
				)
				m.Create(x)
				m.Select(rdf.P(rdf.IRI(fmt.Sprintf("http://t/w%d", w)), rdf.Zero, rdf.Zero))
				if i%3 == 0 {
					m.Remove(x)
				}
			}
		}(w)
	}
	wg.Wait()
	// Each worker keeps i where i%3 != 0: 133 of 200.
	want := 8 * 133
	if m.Len() != want {
		t.Fatalf("Len = %d, want %d", m.Len(), want)
	}
}

// Property: the indexed Select agrees with a brute-force scan for random
// data and random patterns.
func TestSelectAgreesWithScanProperty(t *testing.T) {
	f := func(seeds []uint16, sPick, pPick, oPick uint8, useS, useP, useO bool) bool {
		m := NewManager()
		for _, s := range seeds {
			m.Create(rdf.T(
				rdf.IRI(fmt.Sprintf("http://t/s%d", s%11)),
				rdf.IRI(fmt.Sprintf("http://t/p%d", s%7)),
				rdf.Integer(int64(s%13)),
			))
		}
		pat := rdf.Pattern{}
		if useS {
			pat.Subject = rdf.IRI(fmt.Sprintf("http://t/s%d", sPick%11))
		}
		if useP {
			pat.Predicate = rdf.IRI(fmt.Sprintf("http://t/p%d", pPick%7))
		}
		if useO {
			pat.Object = rdf.Integer(int64(oPick % 13))
		}
		indexed := m.Select(pat)
		scanned := m.Snapshot().Select(pat)
		if len(indexed) != len(scanned) {
			return false
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
