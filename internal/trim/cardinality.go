package trim

import (
	"sort"

	"repro/internal/rdf"
)

// Per-predicate cardinality statistics, maintained incrementally by the
// two mutation points (createLocked/removeLocked) so they are always
// exact and cost O(1) per mutation. They answer the planner's question —
// "how many rows will this pattern touch?" — per predicate instead of
// store-wide, feed the EXPLAIN estimated-selectivity line, and are the
// ground-truth input the term-dictionary/index rework (ROADMAP item 1)
// needs to choose layouts.

// predCard tracks one predicate's live cardinality. The subject/object
// maps refcount triples per term so removals decrement exactly.
type predCard struct {
	triples  int
	subjects map[rdf.Term]int
	objects  map[rdf.Term]int
}

// cardAddLocked records a newly inserted triple.
func (m *Manager) cardAddLocked(t rdf.Triple) {
	pc, ok := m.predCards[t.Predicate]
	if !ok {
		pc = &predCard{subjects: make(map[rdf.Term]int), objects: make(map[rdf.Term]int)}
		m.predCards[t.Predicate] = pc
	}
	pc.triples++
	pc.subjects[t.Subject]++
	pc.objects[t.Object]++
}

// cardRemoveLocked records a removed triple.
func (m *Manager) cardRemoveLocked(t rdf.Triple) {
	pc, ok := m.predCards[t.Predicate]
	if !ok {
		return
	}
	pc.triples--
	if pc.subjects[t.Subject]--; pc.subjects[t.Subject] == 0 {
		delete(pc.subjects, t.Subject)
	}
	if pc.objects[t.Object]--; pc.objects[t.Object] == 0 {
		delete(pc.objects, t.Object)
	}
	if pc.triples == 0 {
		delete(m.predCards, t.Predicate)
	}
}

// PredicateStats is one predicate's cardinality summary as reported by
// Stats: how many triples carry it, over how many distinct subjects and
// objects, and what fraction of the store a predicate-bound select would
// touch.
type PredicateStats struct {
	Predicate        string `json:"predicate"`
	Triples          int    `json:"triples"`
	DistinctSubjects int    `json:"distinct_subjects"`
	DistinctObjects  int    `json:"distinct_objects"`
	// Selectivity is Triples divided by the store size: the fraction of
	// the store a select bound only on this predicate matches.
	Selectivity float64 `json:"selectivity"`
}

// predicateStatsLocked renders the cardinality table sorted by predicate.
func (m *Manager) predicateStatsLocked() []PredicateStats {
	size := m.graph.Len()
	out := make([]PredicateStats, 0, len(m.predCards))
	for pred, pc := range m.predCards {
		ps := PredicateStats{
			Predicate:        pred.Value(),
			Triples:          pc.triples,
			DistinctSubjects: len(pc.subjects),
			DistinctObjects:  len(pc.objects),
		}
		if size > 0 {
			ps.Selectivity = float64(pc.triples) / float64(size)
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Predicate < out[j].Predicate })
	return out
}

// estimateLocked is the planner's cardinality estimate for a pattern:
// expected result rows and their fraction of the store. A bound predicate
// uses the exact per-predicate stats (triples, scaled down by the mean
// triples-per-subject/object when those positions are bound too); an
// unbound predicate falls back to the exact index bucket sizes the
// planner already consults. The estimate is exact for single-position
// patterns and a uniformity assumption beyond that.
func (m *Manager) estimateLocked(p rdf.Pattern) (rows int, selectivity float64) {
	size := m.graph.Len()
	if size == 0 {
		return 0, 0
	}
	est := size
	if !p.Predicate.IsZero() {
		pc, ok := m.predCards[p.Predicate]
		if !ok {
			return 0, 0
		}
		est = pc.triples
		if !p.Subject.IsZero() && len(pc.subjects) > 0 {
			est = meanShare(est, len(pc.subjects))
		}
		if !p.Object.IsZero() && len(pc.objects) > 0 {
			est = meanShare(est, len(pc.objects))
		}
	} else {
		if !p.Subject.IsZero() {
			est = min(est, len(m.bySubject[p.Subject]))
		}
		if !p.Object.IsZero() {
			est = min(est, len(m.byObject[p.Object]))
		}
	}
	return est, float64(est) / float64(size)
}

// meanShare is total/parts rounded to at least 1 while total is nonzero:
// the expected bucket share under uniformity, never estimating a present
// predicate at zero rows.
func meanShare(total, parts int) int {
	if total == 0 {
		return 0
	}
	share := total / parts
	if share < 1 {
		share = 1
	}
	return share
}
