package trim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Health probes for the diagnostics server (docs/OBSERVABILITY.md): the
// binaries register these against obs.DefaultReady and obs.DefaultHealth
// so /readyz reflects whether the store has loaded and /healthz whether
// persistence would currently succeed.

// LoadedCheck returns a readiness check that passes once the store holds
// at least one triple — "TRIM store loaded".
func (m *Manager) LoadedCheck() obs.HealthCheck {
	return func(context.Context) error {
		if m.Len() == 0 {
			return errors.New("trim: store is empty (not loaded)")
		}
		return nil
	}
}

// WritableCheck returns a liveness check probing whether a SaveFile to
// path would currently succeed: it runs the same injectable fault hook as
// the save path (so a staged persistence fault flips /healthz exactly
// like it would fail the next save) and then creates and removes a probe
// file in the store's directory.
func WritableCheck(path string) obs.HealthCheck {
	return func(context.Context) error {
		if err := faultAt(StageTempWrite, path); err != nil {
			return err
		}
		dir := filepath.Dir(path)
		f, err := os.CreateTemp(dir, ".trim-health-*")
		if err != nil {
			return fmt.Errorf("trim: persistence not writable at %s: %w", dir, err)
		}
		name := f.Name()
		f.Close()
		os.Remove(name)
		return nil
	}
}
