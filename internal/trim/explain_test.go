package trim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

func TestSelectExplainIndexChoice(t *testing.T) {
	m := NewManager()
	populate(m, 100) // subjects s0..s9 (10 each), predicates p0..p4 (20 each)

	cases := []struct {
		name       string
		pat        rdf.Pattern
		index      string
		candidates int
		matched    int
	}{
		{"unbound is a full scan", rdf.P(rdf.Zero, rdf.Zero, rdf.Zero), "scan", 100, 100},
		{"subject bound", rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero), "subject", 10, 10},
		{"predicate bound", rdf.P(rdf.Zero, rdf.IRI("http://t/p2"), rdf.Zero), "predicate", 20, 20},
		{"object bound", rdf.P(rdf.Zero, rdf.Zero, rdf.String("v7")), "object", 1, 1},
		// Subject (10) beats predicate (20): planner takes the smaller bucket.
		{"smallest bucket wins", rdf.P(rdf.IRI("http://t/s7"), rdf.IRI("http://t/p2"), rdf.Zero), "subject", 10, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, e := m.SelectExplain(tc.pat)
			if e.Op != "select" {
				t.Errorf("Op = %q", e.Op)
			}
			if e.Index != tc.index {
				t.Errorf("Index = %q, want %q", e.Index, tc.index)
			}
			if e.Candidates != tc.candidates {
				t.Errorf("Candidates = %d, want %d", e.Candidates, tc.candidates)
			}
			if e.Matched != tc.matched || len(out) != tc.matched {
				t.Errorf("Matched = %d (len %d), want %d", e.Matched, len(out), tc.matched)
			}
			if e.StoreSize != 100 {
				t.Errorf("StoreSize = %d", e.StoreSize)
			}
			if e.Query != tc.pat.String() {
				t.Errorf("Query = %q, want %q", e.Query, tc.pat.String())
			}
			// SelectExplain must return exactly what Select returns.
			plain := m.Select(tc.pat)
			if len(plain) != len(out) {
				t.Errorf("Select len %d != SelectExplain len %d", len(plain), len(out))
			}
			for i := range plain {
				if plain[i] != out[i] {
					t.Fatalf("result %d differs: %v vs %v", i, plain[i], out[i])
				}
			}
		})
	}
}

func TestExplainString(t *testing.T) {
	m := NewManager()
	populate(m, 20)
	_, e := m.SelectExplain(rdf.P(rdf.IRI("http://t/s1"), rdf.Zero, rdf.Zero))
	s := e.String()
	for _, want := range []string{"op=select", "index=subject", "candidates=2", "matched=2", "store=20", "wall="} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain.String() missing %q: %s", want, s)
		}
	}
}

func TestViewExplain(t *testing.T) {
	m := NewManager()
	// root -> a -> b, plus an unreachable island.
	for _, x := range []rdf.Triple{
		link("root", "has", "a"),
		link("a", "has", "b"),
		tr("b", "label", "leaf"),
		tr("island", "label", "alone"),
	} {
		if _, err := m.Create(x); err != nil {
			t.Fatal(err)
		}
	}
	g, e := m.ViewExplain(rdf.IRI("http://t/root"))
	if e.Op != "view" || e.Index != "subject" {
		t.Fatalf("Op=%q Index=%q", e.Op, e.Index)
	}
	if g.Len() != 3 || e.Matched != 3 {
		t.Fatalf("view Len=%d Matched=%d, want 3 (island excluded)", g.Len(), e.Matched)
	}
	if e.Candidates < e.Matched {
		t.Fatalf("Candidates=%d < Matched=%d: walk must examine every included edge", e.Candidates, e.Matched)
	}
	if e.StoreSize != 4 {
		t.Fatalf("StoreSize = %d", e.StoreSize)
	}
	plain := m.View(rdf.IRI("http://t/root"))
	if plain.Len() != g.Len() {
		t.Fatalf("View len %d != ViewExplain len %d", plain.Len(), g.Len())
	}
}

func TestPathExplain(t *testing.T) {
	m := NewManager()
	for _, x := range []rdf.Triple{
		link("root", "has", "a"),
		link("root", "has", "b"),
		link("a", "next", "c"),
		link("b", "next", "c"),
		link("b", "other", "d"),
	} {
		if _, err := m.Create(x); err != nil {
			t.Fatal(err)
		}
	}
	out, e := m.PathExplain(
		[]rdf.Term{rdf.IRI("http://t/root")},
		rdf.IRI("http://t/has"), rdf.IRI("http://t/next"),
	)
	if e.Op != "path" {
		t.Fatalf("Op = %q", e.Op)
	}
	if len(out) != 1 || e.Matched != 1 {
		t.Fatalf("path result %v Matched=%d, want the single term c", out, e.Matched)
	}
	// Hop 1 examines root's 2 edges; hop 2 examines a's 1 + b's 2.
	if e.Candidates != 5 {
		t.Fatalf("Candidates = %d, want 5", e.Candidates)
	}
	if !strings.Contains(e.Query, "/") {
		t.Fatalf("path Query %q should join predicates with /", e.Query)
	}
	plain := m.Path([]rdf.Term{rdf.IRI("http://t/root")}, rdf.IRI("http://t/has"), rdf.IRI("http://t/next"))
	if len(plain) != len(out) {
		t.Fatalf("Path len %d != PathExplain len %d", len(plain), len(out))
	}
}

// TestExplainJournalsSlowQueries pins the EXPLAIN -> slow-op journal wiring:
// with the threshold floored, every query lands in obs.DefaultSlowOps with
// its EXPLAIN line as the detail.
func TestExplainJournalsSlowQueries(t *testing.T) {
	prev := obs.DefaultSlowOps.Threshold()
	obs.DefaultSlowOps.SetThreshold(time.Nanosecond)
	defer func() {
		obs.DefaultSlowOps.SetThreshold(prev)
		obs.DefaultSlowOps.Reset()
	}()
	obs.DefaultSlowOps.Reset()

	m := NewManager()
	populate(m, 50)
	m.Select(rdf.P(rdf.Zero, rdf.Zero, rdf.Zero)) // plain Select journals too

	recs := obs.DefaultSlowOps.Recent()
	if len(recs) == 0 {
		t.Fatal("no slow ops journaled")
	}
	last := recs[len(recs)-1]
	if last.Op != "trim.select" {
		t.Fatalf("journaled op = %q", last.Op)
	}
	for _, want := range []string{"op=select", "index=scan", "candidates=50", "matched=50"} {
		if !strings.Contains(last.Detail, want) {
			t.Errorf("journal detail missing %q: %s", want, last.Detail)
		}
	}
}
