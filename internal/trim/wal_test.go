package trim

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// openWALT opens a WAL backend over a fresh manager, failing the test on
// error.
func openWALT(t *testing.T, path string, opts WALOptions) (*Manager, *WALStore) {
	t.Helper()
	m := NewManager()
	ws, err := OpenWAL(m, path, opts)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	t.Cleanup(func() { ws.Close() })
	return m, ws
}

// requireRecovered reopens the WAL at path into a fresh manager and fails
// unless the recovered contents equal want.
func requireRecovered(t *testing.T, label, path string, want *rdf.Graph) {
	t.Helper()
	m := NewManager()
	ws, err := OpenWAL(m, path, WALOptions{})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer ws.Close()
	if got := m.Snapshot(); !got.Equal(want) {
		t.Fatalf("%s: recovered %d triple(s), want %d (contents differ)", label, m.Len(), want.Len())
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	populate(m, 25)
	m.Remove(rdf.T(rdf.IRI("http://t/s3"), rdf.IRI("http://t/p3"), rdf.String("v3")))
	if ws.Pending() == 0 {
		t.Fatal("mutations were not captured")
	}
	if err := ws.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if ws.Pending() != 0 {
		t.Fatalf("%d ops still pending after Commit", ws.Pending())
	}
	requireRecovered(t, "round trip", path, m.Snapshot())
}

func TestWALBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	populate(m, 10)
	b := m.NewBatch()
	if err := b.RemoveMatching(rdf.P(rdf.IRI("http://t/s1"), rdf.Zero, rdf.Zero)); err != nil {
		t.Fatal(err)
	}
	if err := b.Create(rdf.T(rdf.IRI("http://t/new"), rdf.RDFType, rdf.IRI("http://t/Thing"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	requireRecovered(t, "batch", path, m.Snapshot())
}

// TestWALCommitRetryIdempotent fails the fsync so Commit errors after the
// record may already be in the file, then retries: the retry appends a
// duplicate record, and recovery must still converge to exactly the final
// state (no loss, no duplicates from re-replay).
func TestWALCommitRetryIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	populate(m, 8)
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	m.Create(rdf.T(rdf.IRI("http://t/x"), rdf.IRI("http://t/p"), rdf.String("batch2")))
	m.Remove(rdf.T(rdf.IRI("http://t/s2"), rdf.IRI("http://t/p2"), rdf.String("v2")))

	defer SetPersistFault(SetPersistFault(func(s PersistStage, _ string) error {
		if s == StageWALSync {
			return fmt.Errorf("injected at %s", s)
		}
		return nil
	}))
	if err := ws.Commit(); err == nil {
		t.Fatal("Commit survived injected fsync fault")
	}
	if ws.Pending() == 0 {
		t.Fatal("pending ops dropped on failed Commit")
	}
	SetPersistFault(nil)
	// Retry succeeds and may write the ops a second time.
	if err := ws.Commit(); err != nil {
		t.Fatalf("retry Commit: %v", err)
	}
	requireRecovered(t, "after retry", path, m.Snapshot())
}

func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{CompactEvery: 3})
	for i := 0; i < 3; i++ {
		m.Create(rdf.T(rdf.IRI(fmt.Sprintf("http://t/r%d", i)), rdf.IRI("http://t/p"), rdf.String("v")))
		if err := ws.Save(); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	// The third Save crossed the threshold: snapshot written, log reset.
	if n := ws.RecordsSinceCompact(); n != 0 {
		t.Fatalf("RecordsSinceCompact = %d after threshold, want 0", n)
	}
	if _, err := os.Stat(path + SnapshotSuffix); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	rep, err := WALCheck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || !rep.SnapshotOK {
		t.Fatalf("post-compaction WALCheck = %+v, want empty intact log + ok snapshot", rep)
	}
	requireRecovered(t, "compacted", path, m.Snapshot())

	// Post-compaction mutations land in the fresh log and recovery layers
	// them over the snapshot.
	m.Create(rdf.T(rdf.IRI("http://t/after"), rdf.IRI("http://t/p"), rdf.String("v")))
	if err := ws.Save(); err != nil {
		t.Fatal(err)
	}
	requireRecovered(t, "snapshot+log", path, m.Snapshot())
}

// TestWALAdoptsInMemoryState attaches a WAL to an already-populated
// manager: with no durable state on disk, the contents must survive the
// attach and become durable at the first Compact.
func TestWALAdoptsInMemoryState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m := NewManager()
	populate(m, 15)
	before := m.Snapshot()
	ws, err := OpenWAL(m, path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if !m.Snapshot().Equal(before) {
		t.Fatal("attaching a WAL to a fresh path wiped the manager")
	}
	if err := ws.Compact(); err != nil {
		t.Fatal(err)
	}
	requireRecovered(t, "adopted", path, before)
}

// TestWALLoadDropsUncommitted verifies Load returns to the durable state,
// discarding captured-but-uncommitted mutations.
func TestWALLoadDropsUncommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	populate(m, 5)
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	durableState := m.Snapshot()
	m.Create(rdf.T(rdf.IRI("http://t/uncommitted"), rdf.IRI("http://t/p"), rdf.String("v")))
	if err := ws.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !m.Snapshot().Equal(durableState) {
		t.Fatal("Load did not return to the last durable state")
	}
	// The store keeps capturing after a Load.
	m.Create(rdf.T(rdf.IRI("http://t/after-load"), rdf.IRI("http://t/p"), rdf.String("v")))
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	requireRecovered(t, "after load", path, m.Snapshot())
}

// TestWALConcurrentMutators races mutations from several goroutines: the
// generation stamps must give replay a total order that reproduces the
// final state exactly, even though observer delivery order is unspecified.
func TestWALConcurrentMutators(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Every goroutine fights over the same shared triples, so
				// creates and removes of the same triple interleave.
				shared := rdf.T(rdf.IRI(fmt.Sprintf("http://t/shared%d", i%7)), rdf.IRI("http://t/p"), rdf.String("s"))
				if i%3 == 0 {
					m.Remove(shared)
				} else {
					m.Create(shared)
				}
				m.Create(rdf.T(rdf.IRI(fmt.Sprintf("http://t/g%d", g)), rdf.IRI("http://t/i"), rdf.String(fmt.Sprintf("%d", i))))
			}
		}(g)
	}
	wg.Wait()
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	requireRecovered(t, "concurrent", path, m.Snapshot())
}

// TestWALCrashPointSweep is the crash-point sweep over every durable stage
// of the WAL write path (commit append, commit fsync, compaction begin,
// the five snapshot-write stages, and the post-compaction truncate). For
// each stage it builds an acknowledged state, injects the fault, attempts
// the operation, abandons the store (the "crash"), and asserts recovery
// lands on exactly the expected side of the acknowledgment point.
func TestWALCrashPointSweep(t *testing.T) {
	type expect int
	const (
		ackedOnly expect = iota // batch B must NOT survive
		withBatch               // batch B must survive
	)
	cases := []struct {
		stage   PersistStage
		compact bool // fail during Compact (vs Commit)
		want    expect
	}{
		// Commit path: a fault before the record is written loses only the
		// unacknowledged batch; a fault at fsync leaves the record in the
		// file (this process wrote it), so in-process recovery sees it.
		{StageWALAppend, false, ackedOnly},
		{StageWALSync, false, withBatch},
		// Compaction path: the begin-stage fault fires before the pending
		// batch is flushed; every later fault happens after the flush, so
		// the batch is durable in the old log regardless of how far the
		// snapshot write got.
		{StageWALCompact, true, ackedOnly},
		{StageTempWrite, true, withBatch},
		{StageTempSync, true, withBatch},
		{StageBackup, true, withBatch},
		{StageRename, true, withBatch},
		{StageDirSync, true, withBatch},
		{StageWALTruncate, true, withBatch},
	}
	for _, tc := range cases {
		t.Run(string(tc.stage), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "store.wal")
			m, ws := openWALT(t, path, WALOptions{})
			populate(m, 10)
			if err := ws.Commit(); err != nil {
				t.Fatal(err)
			}
			// A prior compaction so the snapshot exists — otherwise the
			// backup stage never fires during the swept compaction.
			if err := ws.Compact(); err != nil {
				t.Fatal(err)
			}
			acked := m.Snapshot()

			// Batch B: captured but not yet acknowledged.
			m.Create(rdf.T(rdf.IRI("http://t/b"), rdf.IRI("http://t/p"), rdf.String("batch")))
			m.Remove(rdf.T(rdf.IRI("http://t/s4"), rdf.IRI("http://t/p4"), rdf.String("v4")))
			withB := m.Snapshot()

			fail := tc.stage
			defer SetPersistFault(SetPersistFault(func(s PersistStage, _ string) error {
				if s == fail {
					return fmt.Errorf("injected at %s", s)
				}
				return nil
			}))
			var err error
			if tc.compact {
				err = ws.Compact()
			} else {
				err = ws.Commit()
			}
			SetPersistFault(nil)
			if err == nil {
				t.Fatalf("operation survived injected fault at %s", tc.stage)
			}
			// Crash: the store is abandoned without Close (Close would
			// commit the retained batch). Recovery opens the files fresh.
			want := acked
			if tc.want == withBatch {
				want = withB
			}
			requireRecovered(t, string(tc.stage), path, want)
		})
	}
}

func TestWALCheckReportsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	populate(m, 6)
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	m.Create(rdf.T(rdf.IRI("http://t/x"), rdf.IRI("http://t/p"), rdf.String("second")))
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := WALCheck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.TornBytes != 0 {
		t.Fatalf("intact WALCheck = %+v, want 2 records, no torn bytes", rep)
	}

	// Tear the tail: the report flags it without repairing the file.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = WALCheck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 1 || rep.TornBytes == 0 {
		t.Fatalf("torn WALCheck = %+v, want 1 record + torn bytes", rep)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(len(full)-3) {
		t.Fatal("WALCheck modified the file")
	}
}

func TestWALHealthCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	m, ws := openWALT(t, path, WALOptions{})
	populate(m, 4)
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	check := ws.HealthCheck()
	if err := check(nil); err != nil {
		t.Fatalf("healthy WAL reported unhealthy: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(nil); err == nil {
		t.Fatal("torn tail not reported by health check")
	}
}

func TestOpenBackendKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range BackendKinds() {
		m := NewManager()
		populate(m, 9)
		want := m.Snapshot()
		b, err := OpenBackend(kind, m, filepath.Join(dir, "store."+kind))
		if err != nil {
			t.Fatalf("OpenBackend(%s): %v", kind, err)
		}
		if b.Kind() != kind {
			t.Fatalf("Kind = %q, want %q", b.Kind(), kind)
		}
		if err := b.Save(); err != nil {
			t.Fatalf("%s Save: %v", kind, err)
		}
		if kind == BackendWAL {
			// The population predates the WAL attach (OpenBackend adopted
			// it); anchor it so Load has durable state to recover.
			if err := b.(*WALStore).Compact(); err != nil {
				t.Fatal(err)
			}
		}
		m.Clear()
		if err := b.Load(); err != nil {
			t.Fatalf("%s Load: %v", kind, err)
		}
		if !m.Snapshot().Equal(want) {
			t.Fatalf("%s round trip lost data: %d triple(s), want %d", kind, m.Len(), want.Len())
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%s Close: %v", kind, err)
		}
	}
	if _, err := OpenBackend("tape", NewManager(), filepath.Join(dir, "x")); err == nil {
		t.Fatal("unknown backend kind accepted")
	}
}

func TestJSONLRoundTripManager(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	m := NewManager()
	populate(m, 12)
	m.Create(rdf.T(rdf.IRI("http://t/typed"), rdf.IRI("http://t/n"),
		rdf.TypedLiteral("42", rdf.XSDInteger)))
	if err := m.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	got := NewManager()
	if err := got.LoadJSONL(path); err != nil {
		t.Fatal(err)
	}
	if !got.Snapshot().Equal(m.Snapshot()) {
		t.Fatalf("JSONL round trip: %d triple(s), want %d", got.Len(), m.Len())
	}
}
