package trim

import (
	"repro/internal/rdf"
)

// Path evaluates a predicate path: starting from the given resources, it
// follows each predicate in sequence (subject -> object) and returns the
// terms reached at the end, deduplicated and sorted. It is the small
// navigational query facility of §6's "query capabilities, in addition to
// the current navigational access" — e.g.
//
//	m.Path([]rdf.Term{pad}, rootBundle, bundleContent, scrapMark)
//
// yields every mark handle reachable from a pad.
func (m *Manager) Path(start []rdf.Term, predicates ...rdf.Term) []rdf.Term {
	recordPathShape(predicates, false)
	m.mu.RLock()
	defer m.mu.RUnlock()

	frontier := make(map[rdf.Term]struct{}, len(start))
	for _, s := range start {
		if s.IsResource() {
			frontier[s] = struct{}{}
		}
	}
	for _, pred := range predicates {
		next := make(map[rdf.Term]struct{})
		for node := range frontier {
			for t := range m.bySubject[node] {
				if t.Predicate == pred {
					next[t.Object] = struct{}{}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]rdf.Term, 0, len(frontier))
	for t := range frontier {
		out = append(out, t)
	}
	sortTerms(out)
	return out
}

// PathInverse follows predicates backwards (object -> subject): "which
// scraps hold this mark handle" style questions.
func (m *Manager) PathInverse(start []rdf.Term, predicates ...rdf.Term) []rdf.Term {
	recordPathShape(predicates, true)
	m.mu.RLock()
	defer m.mu.RUnlock()

	frontier := make(map[rdf.Term]struct{}, len(start))
	for _, s := range start {
		frontier[s] = struct{}{}
	}
	for _, pred := range predicates {
		next := make(map[rdf.Term]struct{})
		for node := range frontier {
			for t := range m.byObject[node] {
				if t.Predicate == pred {
					next[t.Subject] = struct{}{}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]rdf.Term, 0, len(frontier))
	for t := range frontier {
		out = append(out, t)
	}
	sortTerms(out)
	return out
}
