package trim

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// The alloc-per-op probe harness: benchmark-style allocs/op and B/op
// measurements for the heavy-hitter query shapes, run against the live
// store instead of a synthetic fixture. ROADMAP item 1 promises a
// near-zero-alloc query path; these probes are the numbers that promise
// is scored against, and `trimq space -probe` makes them a one-command
// check on any persisted store. Each probe runs under a trace span whose
// detail is the result line, so a -serve'd store journals its own
// allocation profile.

// ProbeResult is one query shape's measurement.
type ProbeResult struct {
	// Op names the shape: select/<mask> (bound-position mask, e.g. s??),
	// view, path, or resolve.
	Op string `json:"op"`
	// Query is the concrete query the probe ran, in CLI syntax.
	Query       string  `json:"query"`
	Iters       int     `json:"iters"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	// Matched is the result-row count of one run, so a cheap probe over an
	// empty bucket is not mistaken for an efficient one.
	Matched int `json:"matched"`
}

// String renders the result in go-bench style.
func (r ProbeResult) String() string {
	return fmt.Sprintf("%-12s %8.1f allocs/op %10.1f B/op %10.1f ns/op  (%d iters, %d matched, %s)",
		r.Op, r.AllocsPerOp, r.BytesPerOp, r.NsPerOp, r.Iters, r.Matched, r.Query)
}

// probeExemplars picks deterministic representative terms under the read
// lock: the subject and object with the largest index buckets, the
// predicate with the most triples, and the smallest triple carrying that
// predicate (for the fully bound probe). ok is false on an empty store.
func (m *Manager) probeExemplars() (subject, predicate, object rdf.Term, exact rdf.Triple, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.graph.Len() == 0 {
		return rdf.Zero, rdf.Zero, rdf.Zero, rdf.Triple{}, false
	}
	heaviest := func(idx map[rdf.Term]map[rdf.Triple]struct{}) rdf.Term {
		best := rdf.Zero
		bestLen := -1
		for term, set := range idx {
			if len(set) > bestLen || (len(set) == bestLen && term.Compare(best) < 0) {
				best, bestLen = term, len(set)
			}
		}
		return best
	}
	subject = heaviest(m.bySubject)
	predicate = heaviest(m.byPredicate)
	object = heaviest(m.byObject)
	first := true
	for t := range m.byPredicate[predicate] {
		if first || t.Compare(exact) < 0 {
			exact = t
			first = false
		}
	}
	return subject, predicate, object, exact, true
}

// measure runs f iters times pinned to one P and returns per-op allocs,
// bytes, and wall time from the runtime's cumulative counters, the same
// way testing.AllocsPerRun measures. One warm-up run is excluded.
func measure(iters int, f func()) (allocsPerOp, bytesPerOp, nsPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n,
		float64(elapsed.Nanoseconds()) / n
}

// ProbeAllocs measures allocs/op, B/op, and ns/op for the heavy-hitter
// query shapes against the live store: selects at every bound-position
// mask, a reachability view, a path walk, and a property resolve
// (Objects — the primitive the DMI's attribute reads and the mark layer's
// resolver lookups bottom out in). iters <= 0 defaults to 100. The store
// must not be mutated concurrently if run-to-run comparability matters;
// a nil result means the store is empty.
func (m *Manager) ProbeAllocs(ctx context.Context, iters int) []ProbeResult {
	if iters <= 0 {
		iters = 100
	}
	probes, ok := m.probeTable()
	if !ok {
		return nil
	}
	out := make([]ProbeResult, 0, len(probes))
	for _, p := range probes {
		out = append(out, m.probeOne(ctx, p.op, p.query, iters, p.run))
	}
	return out
}

// probeSpec names one measured query shape and the closure that runs it.
type probeSpec struct {
	op    string
	query string
	run   func() int
}

// probeTable builds the measured closures. It deliberately holds no
// context: the closures call the span-free query variants so the
// measurement reads the raw resolution path — a per-iteration span would
// charge the tracer's allocations to the store.
func (m *Manager) probeTable() ([]probeSpec, bool) {
	subject, predicate, object, exact, ok := m.probeExemplars()
	if !ok {
		return nil, false
	}
	return []probeSpec{
		{"select/spo", fmt.Sprintf("select %s %s %s", exact.Subject, exact.Predicate, exact.Object),
			func() int { return len(m.Select(rdf.P(exact.Subject, exact.Predicate, exact.Object))) }},
		{"select/s??", fmt.Sprintf("select %s ? ?", subject),
			func() int { return len(m.Select(rdf.P(subject, rdf.Zero, rdf.Zero))) }},
		{"select/?p?", fmt.Sprintf("select ? %s ?", predicate),
			func() int { return len(m.Select(rdf.P(rdf.Zero, predicate, rdf.Zero))) }},
		{"select/??o", fmt.Sprintf("select ? ? %s", object),
			func() int { return len(m.Select(rdf.P(rdf.Zero, rdf.Zero, object))) }},
		{"select/???", "select ? ? ?",
			func() int { return len(m.Select(rdf.P(rdf.Zero, rdf.Zero, rdf.Zero))) }},
		{"view", fmt.Sprintf("view %s", subject),
			func() int { return m.View(subject).Len() }},
		{"path", fmt.Sprintf("path %s %s", subject, predicate),
			func() int { return len(m.Path([]rdf.Term{subject}, predicate)) }},
		{"resolve", fmt.Sprintf("resolve %s %s", exact.Subject, exact.Predicate),
			func() int { return len(m.Objects(exact.Subject, exact.Predicate)) }},
	}, true
}

// probeOne measures one shape under its own trace span; the result line
// becomes the span detail, so the journal and trace tree carry the
// measured numbers, not just the fact a probe ran.
func (m *Manager) probeOne(ctx context.Context, op, query string, iters int, run func() int) ProbeResult {
	start := time.Now()
	_, sp := obs.StartCtx(ctx, "trim.probe", op)
	defer sp.Finish()
	r := ProbeResult{Op: op, Query: query, Iters: iters, Matched: run()}
	r.AllocsPerOp, r.BytesPerOp, r.NsPerOp = measure(iters, func() { run() })
	sp.SetDetail(r.String())
	mProbeTotal.Inc()
	mProbeNS.ObserveSince(start)
	return r
}
