package trim

import (
	"context"
	"strings"
	"testing"
)

// TestProbeAllocsShapes pins the harness contract: all eight heavy-hitter
// shapes are measured, per-op figures are sane, and the fully bound and
// resolve probes actually matched rows (the exemplars come from the live
// store, so an empty match would mean exemplar selection broke).
func TestProbeAllocsShapes(t *testing.T) {
	m := NewManager()
	populate(m, 60)
	results := m.ProbeAllocs(context.Background(), 10)
	want := []string{"select/spo", "select/s??", "select/?p?", "select/??o", "select/???", "view", "path", "resolve"}
	if len(results) != len(want) {
		t.Fatalf("got %d probes, want %d: %+v", len(results), len(want), results)
	}
	for i, r := range results {
		if r.Op != want[i] {
			t.Errorf("probe %d op = %q, want %q", i, r.Op, want[i])
		}
		if r.Iters != 10 {
			t.Errorf("%s: iters = %d, want 10", r.Op, r.Iters)
		}
		if r.AllocsPerOp < 0 || r.BytesPerOp < 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", r.Op, r)
		}
		if r.Query == "" {
			t.Errorf("%s: empty query rendering", r.Op)
		}
		if !strings.Contains(r.String(), "allocs/op") {
			t.Errorf("%s: String() missing allocs/op: %s", r.Op, r)
		}
	}
	if results[0].Matched != 1 {
		t.Errorf("select/spo matched %d, want 1 (exact triple)", results[0].Matched)
	}
	// The full scan matches the whole store.
	if results[4].Matched != m.Len() {
		t.Errorf("select/??? matched %d, want %d", results[4].Matched, m.Len())
	}
	if results[7].Matched < 1 {
		t.Errorf("resolve matched %d, want >= 1", results[7].Matched)
	}
}

// TestProbeAllocsEmptyStore: no exemplars, no probes.
func TestProbeAllocsEmptyStore(t *testing.T) {
	if got := NewManager().ProbeAllocs(context.Background(), 5); got != nil {
		t.Fatalf("ProbeAllocs on empty store = %+v, want nil", got)
	}
}

// TestProbeExemplarsDeterministic: two runs over the same store pick the
// same exemplars, so probe results are comparable run to run.
func TestProbeExemplarsDeterministic(t *testing.T) {
	m := NewManager()
	populate(m, 50)
	s1, p1, o1, x1, ok1 := m.probeExemplars()
	s2, p2, o2, x2, ok2 := m.probeExemplars()
	if !ok1 || !ok2 {
		t.Fatal("probeExemplars reported an empty store")
	}
	if s1 != s2 || p1 != p2 || o1 != o2 || x1 != x2 {
		t.Fatalf("exemplars differ across runs: (%v %v %v %v) vs (%v %v %v %v)",
			s1, p1, o1, x1, s2, p2, o2, x2)
	}
}
