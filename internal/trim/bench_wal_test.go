package trim

// Durability benchmarks for `make bench-json` / benchdiff. The headline
// comparison is BenchmarkPersistPerBatch: committing a small batch through
// the WAL is O(batch) — the cost does not move when the store grows — while
// persisting the same batch via an XML snapshot rewrite is O(store).

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

func benchWALTriple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://w/s%d", i)),
		rdf.IRI(fmt.Sprintf("http://w/p%d", i%16)),
		rdf.String(fmt.Sprintf("value-%d", i)),
	)
}

// BenchmarkWALCommit measures one acknowledged batch: frame encode, append,
// fsync. CompactEvery is pushed out of reach so compaction never skews an
// iteration.
func BenchmarkWALCommit(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	m := NewManager()
	ws, err := OpenWAL(m, path, WALOptions{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer ws.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 5; j++ {
			m.Create(benchWALTriple(i*5 + j))
		}
		if err := ws.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures cold recovery of a 1000-commit log into a
// fresh manager.
func BenchmarkWALReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	m := NewManager()
	ws, err := OpenWAL(m, path, WALOptions{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	const commits = 1000
	for i := 0; i < commits; i++ {
		for j := 0; j < 5; j++ {
			m.Create(benchWALTriple(i*5 + j))
		}
		if err := ws.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	want := m.Len()
	if err := ws.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m2 := NewManager()
		ws2, err := OpenWAL(m2, path, WALOptions{CompactEvery: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if m2.Len() != want {
			b.Fatalf("replayed %d triples, want %d", m2.Len(), want)
		}
		if err := ws2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistPerBatch persists a 5-triple batch against stores of
// growing size, once by rewriting the XML snapshot and once by a WAL
// commit. The xml variants scale with the store; the wal variants do not.
func BenchmarkPersistPerBatch(b *testing.B) {
	for _, size := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("xml/store=%d", size), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "store.xml")
			m := NewManager()
			for i := 0; i < size; i++ {
				m.Create(benchWALTriple(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 5; j++ {
					m.Create(benchWALTriple(size + i*5 + j))
				}
				if err := m.SaveFile(path); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("wal/store=%d", size), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "store.wal")
			m := NewManager()
			for i := 0; i < size; i++ {
				m.Create(benchWALTriple(i))
			}
			// Adopt-when-empty: the prepopulated store attaches without a
			// rewrite, so iterations pay for their own batch only.
			ws, err := OpenWAL(m, path, WALOptions{CompactEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer ws.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 5; j++ {
					m.Create(benchWALTriple(size + i*5 + j))
				}
				if err := ws.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
