package trim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Stats summarizes the contents of the store, used by cmd/trimq and the
// space-overhead experiments (T1/T3 in DESIGN.md).
type Stats struct {
	Triples            int `json:"triples"`
	DistinctSubjects   int `json:"distinct_subjects"`
	DistinctPredicates int `json:"distinct_predicates"`
	DistinctObjects    int `json:"distinct_objects"`
	LiteralObjects     int `json:"literal_objects"`
	ResourceObjects    int `json:"resource_objects"`
	// ApproxBytes estimates the in-memory footprint of the term text: the
	// sum of the lengths of all term values and datatypes. Index overhead
	// is excluded; the figure is used as a portable proxy for the paper's
	// "space efficiency" trade-off discussion (§6).
	ApproxBytes int `json:"approx_bytes"`
	// IndexSPO/IndexPOS/IndexOSP are the total entry counts of the
	// subject-, predicate-, and object-keyed hash indexes (each entry is
	// one triple in one bucket), matching what the trim.index.* metrics
	// expose. In a consistent store each equals Triples.
	IndexSPO int `json:"index_spo"`
	IndexPOS int `json:"index_pos"`
	IndexOSP int `json:"index_osp"`
	// Generation is the store's mutation counter at the time of the call.
	Generation uint64 `json:"generation"`
	// Predicates is the per-predicate cardinality table (triples, distinct
	// subjects/objects, selectivity), sorted by predicate. Maintained
	// incrementally, so reporting it here costs one pass over the
	// predicates, not over the triples.
	Predicates []PredicateStats `json:"predicates"`
	// Locks is the contention profile of the store mutex (wait/hold
	// quantiles, acquisition and contended counts per mode), taken from
	// the process-wide tracked-lock table. Empty when no tracked lock has
	// registered under the store's name yet.
	Locks []obs.LockStats `json:"locks,omitempty"`
	// Space is the deep space accountant's report (space.go): string-byte
	// duplication, index overhead, per-predicate byte attribution, and the
	// projected interning win, computed in the same locked pass.
	Space SpaceStats `json:"space"`
}

// Stats computes current statistics in one pass under a read lock.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()

	mStatsTotal.Inc()
	s := Stats{
		Triples:            m.graph.Len(),
		DistinctSubjects:   len(m.bySubject),
		DistinctPredicates: len(m.byPredicate),
		DistinctObjects:    len(m.byObject),
		Generation:         m.generation,
		Predicates:         m.predicateStatsLocked(),
		Space:              m.spaceLocked(),
	}
	for _, set := range m.bySubject {
		s.IndexSPO += len(set)
	}
	for _, set := range m.byPredicate {
		s.IndexPOS += len(set)
	}
	for _, set := range m.byObject {
		s.IndexOSP += len(set)
	}
	m.graph.Each(func(t rdf.Triple) bool {
		if t.Object.IsLiteral() {
			s.LiteralObjects++
		} else {
			s.ResourceObjects++
		}
		s.ApproxBytes += len(t.Subject.Value()) + len(t.Predicate.Value()) +
			len(t.Object.Value()) + len(t.Object.Datatype())
		return true
	})
	if ls, ok := obs.LockProfile(obs.LockTrimStore); ok {
		s.Locks = []obs.LockStats{ls}
	}
	return s
}

// String renders the stats in a one-line human-readable form. New fields
// are appended so existing consumers of the prefix keep parsing.
func (s Stats) String() string {
	return fmt.Sprintf("triples=%d subjects=%d predicates=%d objects=%d (literals=%d resources=%d) approx_bytes=%d spo=%d pos=%d osp=%d generation=%d",
		s.Triples, s.DistinctSubjects, s.DistinctPredicates, s.DistinctObjects,
		s.LiteralObjects, s.ResourceObjects, s.ApproxBytes,
		s.IndexSPO, s.IndexPOS, s.IndexOSP, s.Generation)
}
