package trim

import (
	"math"
	"testing"

	"repro/internal/rdf"
)

// recomputeStrings is the brute-force truth the accountant is checked
// against: walk a graph snapshot and sum string bytes with independent
// bookkeeping (no index or cardinality state involved).
func recomputeStrings(g *rdf.Graph) (total, unique int64, uniqueTerms int) {
	seen := make(map[rdf.Term]struct{})
	g.Each(func(t rdf.Triple) bool {
		for _, term := range [3]rdf.Term{t.Subject, t.Predicate, t.Object} {
			b := termStringBytes(term)
			total += b
			if _, ok := seen[term]; !ok {
				seen[term] = struct{}{}
				unique += b
			}
		}
		return true
	})
	return total, unique, len(seen)
}

// checkSpaceTruth asserts the accountant's exact figures against the
// brute-force recompute and its internal arithmetic against itself.
func checkSpaceTruth(t *testing.T, m *Manager, step string) {
	t.Helper()
	s := m.Space()
	total, unique, uniqueTerms := recomputeStrings(m.Snapshot())
	if s.TotalStringBytes != total {
		t.Errorf("%s: TotalStringBytes = %d, recompute = %d", step, s.TotalStringBytes, total)
	}
	if s.UniqueStringBytes != unique {
		t.Errorf("%s: UniqueStringBytes = %d, recompute = %d", step, s.UniqueStringBytes, unique)
	}
	if s.UniqueTerms != uniqueTerms {
		t.Errorf("%s: UniqueTerms = %d, recompute = %d", step, s.UniqueTerms, uniqueTerms)
	}
	if got := s.Subject.TotalBytes + s.Predicate.TotalBytes + s.Object.TotalBytes; got != total {
		t.Errorf("%s: per-position totals sum to %d, want %d", step, got, total)
	}
	if s.Triples != m.Len() {
		t.Errorf("%s: Triples = %d, store has %d", step, s.Triples, m.Len())
	}
	if s.Subject.Refs != s.Triples || s.Predicate.Refs != s.Triples || s.Object.Refs != s.Triples {
		t.Errorf("%s: position refs %d/%d/%d, want %d each",
			step, s.Subject.Refs, s.Predicate.Refs, s.Object.Refs, s.Triples)
	}
	var perPred int64
	for _, ps := range s.Predicates {
		perPred += ps.TotalBytes
	}
	if perPred != total {
		t.Errorf("%s: predicate attribution sums to %d, want %d", step, perPred, total)
	}
	for _, ix := range s.Indexes {
		if ix.Entries != s.Triples {
			t.Errorf("%s: index %s has %d entries, want %d", step, ix.Name, ix.Entries, s.Triples)
		}
	}
	if unique > 0 {
		want := float64(total) / float64(unique)
		if math.Abs(s.DuplicationRatio-want) > 1e-9 {
			t.Errorf("%s: DuplicationRatio = %v, want %v", step, s.DuplicationRatio, want)
		}
	} else if s.DuplicationRatio != 0 {
		t.Errorf("%s: DuplicationRatio = %v on empty store", step, s.DuplicationRatio)
	}
	if got := s.GraphBytes + s.IndexOverheadBytes + s.CardOverheadBytes + s.TotalStringBytes; got != s.EstimatedBytes {
		t.Errorf("%s: EstimatedBytes = %d, components sum to %d", step, s.EstimatedBytes, got)
	}
	in := s.Interning
	if got := in.DictionaryBytes + in.TripleBytes + in.IndexBytes; got != in.ProjectedBytes {
		t.Errorf("%s: ProjectedBytes = %d, components sum to %d", step, in.ProjectedBytes, got)
	}
	if in.SavedBytes != s.EstimatedBytes-in.ProjectedBytes {
		t.Errorf("%s: SavedBytes = %d, want %d", step, in.SavedBytes, s.EstimatedBytes-in.ProjectedBytes)
	}
}

// TestSpaceTruthAcrossMutations is the satellite contract: every mutation
// path — create, remove, batch, Replace, Clear — keeps the reported
// string-byte figures exactly equal to a brute-force recompute of the
// live graph.
func TestSpaceTruthAcrossMutations(t *testing.T) {
	m := NewManager()
	checkSpaceTruth(t, m, "empty")

	populate(m, 40)
	checkSpaceTruth(t, m, "create")

	m.Remove(rdf.T(rdf.IRI("http://t/s0"), rdf.IRI("http://t/p0"), rdf.String("v0")))
	m.RemoveMatching(rdf.P(rdf.IRI("http://t/s1"), rdf.Zero, rdf.Zero))
	checkSpaceTruth(t, m, "remove")

	b := m.NewBatch()
	if err := b.Create(tr("bs", "bp", "bv")); err != nil {
		t.Fatalf("batch create: %v", err)
	}
	if err := b.Remove(tr("s2", "p2", "v2")); err != nil {
		t.Fatalf("batch remove: %v", err)
	}
	if err := b.Apply(); err != nil {
		t.Fatalf("batch apply: %v", err)
	}
	checkSpaceTruth(t, m, "batch")

	if err := m.SetUnique(rdf.IRI("http://t/s3"), rdf.IRI("http://t/p3"), rdf.String("replacement")); err != nil {
		t.Fatalf("SetUnique: %v", err)
	}
	checkSpaceTruth(t, m, "setunique")

	g := rdf.NewGraph()
	g.Add(tr("r1", "rp", "shared value"))
	g.Add(tr("r2", "rp", "shared value"))
	m.Replace(g)
	checkSpaceTruth(t, m, "replace")

	m.Clear()
	checkSpaceTruth(t, m, "clear")
}

// TestSpaceDuplicationAndInterning pins the headline semantics on a
// store built to share strings: the duplication ratio reflects the
// sharing, the unique roll-up dedupes across positions, and the
// projection actually projects a smaller store.
func TestSpaceDuplicationAndInterning(t *testing.T) {
	m := NewManager()
	// One predicate and one object shared by every triple; subjects unique.
	for i := 0; i < 32; i++ {
		m.Create(link("subject-with-a-long-iri-"+string(rune('a'+i)), "sharedPredicate", "sharedObject"))
	}
	s := m.Space()
	if s.DuplicationRatio <= 1 {
		t.Fatalf("DuplicationRatio = %v, want > 1 on a string-sharing store", s.DuplicationRatio)
	}
	if s.Predicate.Unique != 1 || s.Object.Unique != 1 {
		t.Fatalf("unique predicate/object = %d/%d, want 1/1", s.Predicate.Unique, s.Object.Unique)
	}
	// The shared object also appears nowhere else, so the global unique
	// set is subjects + predicate + object.
	if want := s.Subject.Unique + 2; s.UniqueTerms != want {
		t.Fatalf("UniqueTerms = %d, want %d", s.UniqueTerms, want)
	}
	if s.Interning.ProjectedBytes >= s.EstimatedBytes {
		t.Fatalf("interning projects %d bytes, not smaller than current %d",
			s.Interning.ProjectedBytes, s.EstimatedBytes)
	}
	if s.Interning.Factor <= 1 {
		t.Fatalf("interning Factor = %v, want > 1", s.Interning.Factor)
	}
	if s.BytesPerTriple <= 0 {
		t.Fatalf("BytesPerTriple = %v, want > 0", s.BytesPerTriple)
	}
	// A term dedupes across positions: reuse a subject IRI as an object.
	m.Create(link("x", "sharedPredicate", "subject-with-a-long-iri-a"))
	s = m.Space()
	if posSum := s.Subject.UniqueBytes + s.Predicate.UniqueBytes + s.Object.UniqueBytes; s.UniqueStringBytes >= posSum {
		t.Fatalf("UniqueStringBytes = %d, want < per-position sum %d after cross-position reuse",
			s.UniqueStringBytes, posSum)
	}
}

// TestStatsCarriesSpace pins the Stats().Space wiring: the same locked
// pass fills the deep report, consistent with the classic ApproxBytes
// text proxy (value+datatype bytes of the object only differ by the
// subject/predicate datatype bytes, which are zero for resources).
func TestStatsCarriesSpace(t *testing.T) {
	m := NewManager()
	populate(m, 25)
	st := m.Stats()
	if st.Space.Triples != st.Triples {
		t.Fatalf("Stats().Space.Triples = %d, want %d", st.Space.Triples, st.Triples)
	}
	if int64(st.ApproxBytes) != st.Space.TotalStringBytes {
		t.Fatalf("ApproxBytes = %d, Space.TotalStringBytes = %d (should agree: subjects and predicates are IRIs with no datatype)",
			st.ApproxBytes, st.Space.TotalStringBytes)
	}
	if st.Space.String() == "" {
		t.Fatal("SpaceStats.String is empty")
	}
}

// TestMapBytesModel pins the estimator's shape: zero for empty maps,
// monotone in entry count, and super-linear past each bucket doubling.
func TestMapBytesModel(t *testing.T) {
	if got := mapBytes(0, tripleBytes); got != 0 {
		t.Fatalf("mapBytes(0) = %d, want 0", got)
	}
	prev := int64(0)
	for _, n := range []int{1, 8, 13, 52, 100, 1000} {
		got := mapBytes(n, tripleBytes)
		if got < prev {
			t.Fatalf("mapBytes(%d) = %d, smaller than a smaller map (%d)", n, got, prev)
		}
		prev = got
	}
	// 13 entries exceed one bucket's 6.5 load target: two buckets minimum.
	if one, two := mapBytes(6, 8), mapBytes(13, 8); two <= one {
		t.Fatalf("mapBytes(13) = %d, want > mapBytes(6) = %d (bucket doubling)", two, one)
	}
}
