// Package trim implements TRIM, the Triple Manager of the SLIM architecture
// (paper §4.4): "To manage triples, we use the TRIM (Triple Manager)
// sub-component, which handles basic operations over the triple
// representation. Through TRIM, the DMI can create, remove, persist (through
// XML files), query, and create simple views over the underlying triples."
//
// The Manager is a concurrency-safe, fully indexed in-memory triple store.
// Selection queries (any subset of subject/predicate/object fixed) are served
// from hash indexes; views are reachability closures from a root resource.
package trim

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Manager is the TRIM triple manager. The zero value is not usable; call
// NewManager. All methods are safe for concurrent use.
type Manager struct {
	// mu is the store lock, instrumented: wait/hold histograms land in the
	// lock.trim.store.* metric families and /debug/contention — the
	// telemetry the ROADMAP item-2 sharding work is scored against.
	mu *obs.TrackedRWMutex
	// graph is the ground truth set of triples; guarded by mu.
	graph *rdf.Graph
	// Hash indexes, one per triple position. Values are sets of triples.
	bySubject   map[rdf.Term]map[rdf.Triple]struct{} // guarded by mu
	byPredicate map[rdf.Term]map[rdf.Triple]struct{} // guarded by mu
	byObject    map[rdf.Term]map[rdf.Triple]struct{} // guarded by mu
	// predCards tracks per-predicate cardinality (triples, distinct
	// subjects/objects), maintained by the mutation points so EXPLAIN's
	// selectivity estimates are always exact. Guarded by mu.
	predCards map[rdf.Term]*predCard
	// generation increments on every successful mutation; observers and
	// optimistic readers use it to detect change. Guarded by mu.
	generation uint64
	observers  map[int]Observer // guarded by mu
	// seqObservers receive the same events with their generation stamp;
	// the WAL backend uses the stamp to order captured ops exactly even
	// when concurrent mutators deliver out of order. Guarded by mu.
	seqObservers map[int]SeqObserver // guarded by mu
	nextObsID    int                 // guarded by mu
	// pending stages observer notifications while mu is held; the mutating
	// call drains and delivers them after unlocking. Guarded by mu.
	pending []obsEvent
}

// Observer receives change notifications. Added is true for insertions,
// false for removals. Observers run synchronously on the mutating
// goroutine after the store lock is released: within one mutating call
// events arrive in mutation order, between concurrent calls the order is
// unspecified. Because no lock is held, observers may call back into the
// Manager; a slow observer delays only its own mutating call, not readers.
type Observer func(t rdf.Triple, added bool)

// SeqObserver is an Observer that additionally receives the store
// generation at which the mutation committed. Generations are unique and
// strictly increasing per mutation, so a consumer that buffers events from
// concurrent mutators can sort by gen to recover the exact commit order —
// the property the WAL backend's replay correctness rests on.
type SeqObserver func(gen uint64, t rdf.Triple, added bool)

// obsEvent is one staged observer notification.
type obsEvent struct {
	gen   uint64
	t     rdf.Triple
	added bool
}

// NewManager returns an empty triple manager.
func NewManager() *Manager {
	return &Manager{
		mu:           obs.NewTrackedRWMutex(obs.LockTrimStore),
		graph:        rdf.NewGraph(),
		bySubject:    make(map[rdf.Term]map[rdf.Triple]struct{}),
		byPredicate:  make(map[rdf.Term]map[rdf.Triple]struct{}),
		byObject:     make(map[rdf.Term]map[rdf.Triple]struct{}),
		predCards:    make(map[rdf.Term]*predCard),
		observers:    make(map[int]Observer),
		seqObservers: make(map[int]SeqObserver),
	}
}

// Create inserts a triple. It reports whether the triple was new; inserting
// a triple already present is a no-op returning false, matching the set
// semantics of the underlying graph.
func (m *Manager) Create(t rdf.Triple) (bool, error) {
	start := time.Now()
	m.mu.Lock()
	added, err := m.createLocked(t)
	events, targets, seqTargets := m.drainLocked()
	m.mu.Unlock()
	m.deliver(targets, seqTargets, events)
	mCreateNS.ObserveSince(start)
	mCreateTotal.Inc()
	switch {
	case err != nil:
		mCreateErrors.Inc()
	case added:
		mCreateNew.Inc()
	}
	return added, err
}

func (m *Manager) createLocked(t rdf.Triple) (bool, error) {
	added, err := m.graph.Add(t)
	if err != nil {
		return false, fmt.Errorf("trim: create: %w", err)
	}
	if !added {
		return false, nil
	}
	indexAdd(m.bySubject, t.Subject, t)
	indexAdd(m.byPredicate, t.Predicate, t)
	indexAdd(m.byObject, t.Object, t)
	m.cardAddLocked(t)
	m.generation++
	m.queueNotifyLocked(t, true)
	return true, nil
}

// Remove deletes an exact triple, reporting whether it was present.
func (m *Manager) Remove(t rdf.Triple) bool {
	m.mu.Lock()
	removed := m.removeLocked(t)
	events, targets, seqTargets := m.drainLocked()
	m.mu.Unlock()
	m.deliver(targets, seqTargets, events)
	mRemoveTotal.Inc()
	if removed {
		mRemoveHit.Inc()
	}
	return removed
}

func (m *Manager) removeLocked(t rdf.Triple) bool {
	if !m.graph.Remove(t) {
		return false
	}
	indexRemove(m.bySubject, t.Subject, t)
	indexRemove(m.byPredicate, t.Predicate, t)
	indexRemove(m.byObject, t.Object, t)
	m.cardRemoveLocked(t)
	m.generation++
	m.queueNotifyLocked(t, false)
	return true
}

// RemoveMatching deletes every triple matching the pattern and returns how
// many were removed.
func (m *Manager) RemoveMatching(p rdf.Pattern) int {
	m.mu.Lock()
	matches := m.selectLocked(p)
	for _, t := range matches {
		m.removeLocked(t)
	}
	events, targets, seqTargets := m.drainLocked()
	m.mu.Unlock()
	m.deliver(targets, seqTargets, events)
	return len(matches)
}

// Has reports whether the exact triple is stored.
func (m *Manager) Has(t rdf.Triple) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.graph.Has(t)
}

// Len returns the number of stored triples.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.graph.Len()
}

// Generation returns the mutation counter; it increases on every successful
// create or remove.
func (m *Manager) Generation() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.generation
}

// Select returns all triples matching the pattern in deterministic order.
// The query planner uses the most selective available index: an exact
// subject, object, or predicate binding narrows the scan to that index
// bucket; a fully wild pattern scans the whole store.
func (m *Manager) Select(p rdf.Pattern) []rdf.Triple {
	start := time.Now()
	m.mu.RLock()
	out, e := m.selectExplainLocked(p)
	m.mu.RUnlock()
	d := time.Since(start)
	mSelectNS.Observe(int64(d))
	mSelectTotal.Inc()
	recordSelectShape(p, e.Index)
	if obs.DefaultSlowOps.Slow(d) {
		e.Query = p.String()
		e.WallNS = int64(d)
		e.journal(start)
	}
	return out
}

// selectLocked runs a selection under a held lock, discarding the explain.
func (m *Manager) selectLocked(p rdf.Pattern) []rdf.Triple {
	out, _ := m.selectExplainLocked(p)
	return out
}

// chooseIndexLocked picks the smallest applicable index bucket. The second
// result is indexNone when no position is bound (full scan needed).
func (m *Manager) chooseIndexLocked(p rdf.Pattern) (map[rdf.Triple]struct{}, indexChoice) {
	var best map[rdf.Triple]struct{}
	choice := indexNone
	consider := func(idx map[rdf.Term]map[rdf.Triple]struct{}, key rdf.Term, which indexChoice) {
		if key.IsZero() {
			return
		}
		bucket := idx[key] // nil bucket = empty result, still a valid choice
		if choice == indexNone || len(bucket) < len(best) {
			best, choice = bucket, which
		}
	}
	consider(m.bySubject, p.Subject, indexSubject)
	consider(m.byObject, p.Object, indexObject)
	consider(m.byPredicate, p.Predicate, indexPredicate)
	return best, choice
}

// Count returns the number of triples matching the pattern without
// materializing them in sorted order.
func (m *Manager) Count(p rdf.Pattern) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	mCountTotal.Inc()
	bucket, choice := m.chooseIndexLocked(p)
	choice.count()
	if choice == indexNone {
		return m.graph.Len()
	}
	n := 0
	for t := range bucket {
		if p.Matches(t) {
			n++
		}
	}
	return n
}

// One returns the single triple matching the pattern. It returns an error
// when zero or more than one triple matches; callers use it to read
// single-valued properties.
func (m *Manager) One(p rdf.Pattern) (rdf.Triple, error) {
	matches := m.Select(p)
	switch len(matches) {
	case 0:
		return rdf.Triple{}, fmt.Errorf("trim: no triple matches %v", p)
	case 1:
		return matches[0], nil
	default:
		return rdf.Triple{}, fmt.Errorf("trim: %d triples match %v, want exactly 1", len(matches), p)
	}
}

// Objects returns the object terms of all triples with the given subject
// and predicate, in deterministic order.
func (m *Manager) Objects(subject, predicate rdf.Term) []rdf.Term {
	ts := m.Select(rdf.P(subject, predicate, rdf.Zero))
	out := make([]rdf.Term, len(ts))
	for i, t := range ts {
		out[i] = t.Object
	}
	return out
}

// Subjects returns the subject terms of all triples with the given
// predicate and object, in deterministic order.
func (m *Manager) Subjects(predicate, object rdf.Term) []rdf.Term {
	ts := m.Select(rdf.P(rdf.Zero, predicate, object))
	out := make([]rdf.Term, len(ts))
	for i, t := range ts {
		out[i] = t.Subject
	}
	return out
}

// SetUnique replaces all triples (subject, predicate, *) with the single
// triple (subject, predicate, object): the write primitive behind the DMI's
// Update_ operations.
func (m *Manager) SetUnique(subject, predicate, object rdf.Term) error {
	m.mu.Lock()
	for _, t := range m.selectLocked(rdf.P(subject, predicate, rdf.Zero)) {
		m.removeLocked(t)
	}
	_, err := m.createLocked(rdf.T(subject, predicate, object))
	events, targets, seqTargets := m.drainLocked()
	m.mu.Unlock()
	m.deliver(targets, seqTargets, events)
	return err
}

// Snapshot returns an independent copy of the entire graph.
func (m *Manager) Snapshot() *rdf.Graph {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.graph.Clone()
}

// Replace swaps the manager's contents for the given graph, rebuilding all
// indexes. It is the load primitive for persistence. Loaded triples count
// toward trim.create.total/new (they enter the store like any create) and
// additionally toward trim.load.triples, which tells bulk loads apart;
// trim.create.ns records only individual Create calls.
func (m *Manager) Replace(g *rdf.Graph) {
	start := time.Now()
	defer mLoadNS.ObserveSince(start)
	n := int64(g.Len())
	mLoadTriples.Add(n)
	mCreateTotal.Add(n)
	mCreateNew.Add(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.graph = g.Clone()
	m.bySubject = make(map[rdf.Term]map[rdf.Triple]struct{})
	m.byPredicate = make(map[rdf.Term]map[rdf.Triple]struct{})
	m.byObject = make(map[rdf.Term]map[rdf.Triple]struct{})
	m.predCards = make(map[rdf.Term]*predCard)
	m.graph.Each(func(t rdf.Triple) bool {
		indexAdd(m.bySubject, t.Subject, t)
		indexAdd(m.byPredicate, t.Predicate, t)
		indexAdd(m.byObject, t.Object, t)
		m.cardAddLocked(t)
		return true
	})
	m.generation++
}

// Clear removes every triple.
func (m *Manager) Clear() {
	m.Replace(rdf.NewGraph())
}

// Observe registers an observer and returns a handle for Unobserve.
func (m *Manager) Observe(obs Observer) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextObsID
	m.nextObsID++
	m.observers[id] = obs
	return id
}

// ObserveSeq registers a generation-stamped observer and returns a handle
// for Unobserve. Delivery rules match Observe: synchronously on the
// mutating goroutine, after the store lock is released.
func (m *Manager) ObserveSeq(obs SeqObserver) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextObsID
	m.nextObsID++
	m.seqObservers[id] = obs
	return id
}

// Unobserve removes a previously registered observer (plain or seq).
func (m *Manager) Unobserve(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.observers, id)
	delete(m.seqObservers, id)
}

// queueNotifyLocked stages one observer notification. Callbacks must not
// run here — the caller holds mu, and observer code is allowed to be slow
// and to call back into the Manager — so the event is queued and the
// mutating entry point delivers it after unlocking. The generation stamp
// is captured now, under the lock, where it is exact.
func (m *Manager) queueNotifyLocked(t rdf.Triple, added bool) {
	if len(m.observers) == 0 && len(m.seqObservers) == 0 {
		return
	}
	m.pending = append(m.pending, obsEvent{gen: m.generation, t: t, added: added})
}

// drainLocked takes the staged notifications and a snapshot of the current
// observers. It returns data, not a closure: delivery happens in the
// caller, demonstrably outside the lock.
func (m *Manager) drainLocked() ([]obsEvent, []Observer, []SeqObserver) {
	if len(m.pending) == 0 {
		return nil, nil, nil
	}
	events := m.pending
	m.pending = nil
	targets := make([]Observer, 0, len(m.observers))
	for _, o := range m.observers {
		targets = append(targets, o)
	}
	seqTargets := make([]SeqObserver, 0, len(m.seqObservers))
	for _, o := range m.seqObservers {
		seqTargets = append(seqTargets, o)
	}
	return events, targets, seqTargets
}

// deliver fans staged events out to the observer snapshots, in mutation
// order, with no lock held.
func (m *Manager) deliver(targets []Observer, seqTargets []SeqObserver, events []obsEvent) {
	if len(events) == 0 || (len(targets) == 0 && len(seqTargets) == 0) {
		return
	}
	mNotifyFanout.Add(int64(len(events)) * int64(len(targets)+len(seqTargets)))
	for _, ev := range events {
		for _, o := range targets {
			o(ev.t, ev.added)
		}
		for _, o := range seqTargets {
			o(ev.gen, ev.t, ev.added)
		}
	}
}

func indexAdd(idx map[rdf.Term]map[rdf.Triple]struct{}, key rdf.Term, t rdf.Triple) {
	set, ok := idx[key]
	if !ok {
		set = make(map[rdf.Triple]struct{})
		idx[key] = set
	}
	set[t] = struct{}{}
}

func indexRemove(idx map[rdf.Term]map[rdf.Triple]struct{}, key rdf.Term, t rdf.Triple) {
	set, ok := idx[key]
	if !ok {
		return
	}
	delete(set, t)
	if len(set) == 0 {
		delete(idx, key)
	}
}
