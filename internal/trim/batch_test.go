package trim

import (
	"testing"

	"repro/internal/rdf"
)

func TestBatchApply(t *testing.T) {
	m := NewManager()
	m.Create(tr("s", "old", "x"))
	b := m.NewBatch()
	if err := b.Create(tr("s", "name", "Ada")); err != nil {
		t.Fatal(err)
	}
	if err := b.Create(tr("s", "pos", "1,2")); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove(tr("s", "old", "x")); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("store Len = %d, want 2", m.Len())
	}
	if m.Has(tr("s", "old", "x")) {
		t.Fatal("removed triple still present")
	}
}

func TestBatchStagingValidation(t *testing.T) {
	m := NewManager()
	b := m.NewBatch()
	if err := b.Create(rdf.T(rdf.String("bad"), rdf.IRI("p"), rdf.String("o"))); err == nil {
		t.Fatal("invalid triple staged without error")
	}
	if b.Len() != 0 {
		t.Fatal("invalid triple counted")
	}
}

func TestBatchRemoveMatching(t *testing.T) {
	m := NewManager()
	m.Create(tr("s", "p", "1"))
	m.Create(tr("s", "p", "2"))
	m.Create(tr("s", "q", "3"))
	b := m.NewBatch()
	b.RemoveMatching(rdf.P(rdf.IRI("http://t/s"), rdf.IRI("http://t/p"), rdf.Zero))
	b.Create(tr("s", "p", "new"))
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	objs := m.Objects(rdf.IRI("http://t/s"), rdf.IRI("http://t/p"))
	if len(objs) != 1 || objs[0].Value() != "new" {
		t.Fatalf("after batch: %v", objs)
	}
	if !m.Has(tr("s", "q", "3")) {
		t.Fatal("unrelated triple removed")
	}
}

func TestBatchRemoveMatchingExpandsAtApply(t *testing.T) {
	m := NewManager()
	b := m.NewBatch()
	b.RemoveMatching(rdf.P(rdf.IRI("http://t/s"), rdf.Zero, rdf.Zero))
	// Triple created after staging but before apply must still be removed.
	m.Create(tr("s", "p", "late"))
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("pattern expanded at staging time, not apply time")
	}
}

func TestBatchSingleUse(t *testing.T) {
	m := NewManager()
	b := m.NewBatch()
	b.Create(tr("s", "p", "v"))
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(); err == nil {
		t.Fatal("second Apply succeeded")
	}
	if err := b.Create(tr("s", "p", "w")); err == nil {
		t.Fatal("staging after Apply succeeded")
	}
	b2 := m.NewBatch()
	b2.Discard()
	if err := b2.Create(tr("s", "p", "w")); err == nil {
		t.Fatal("staging after Discard succeeded")
	}
}

func TestBatchDiscardLeavesStoreUntouched(t *testing.T) {
	m := NewManager()
	m.Create(tr("keep", "p", "v"))
	b := m.NewBatch()
	b.Create(tr("s", "p", "v"))
	b.Remove(tr("keep", "p", "v"))
	b.Discard()
	if m.Len() != 1 || !m.Has(tr("keep", "p", "v")) {
		t.Fatal("Discard modified the store")
	}
}

func TestBatchRemovesBeforeCreates(t *testing.T) {
	m := NewManager()
	m.Create(tr("s", "p", "v"))
	b := m.NewBatch()
	// Remove and re-create the same triple in one batch: final state present.
	b.Remove(tr("s", "p", "v"))
	b.Create(tr("s", "p", "v"))
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	if !m.Has(tr("s", "p", "v")) {
		t.Fatal("triple lost: removes must run before creates")
	}
}

func TestBatchEmptyApply(t *testing.T) {
	m := NewManager()
	populate(m, 3)
	before := m.Generation()
	if err := m.NewBatch().Apply(); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != before {
		t.Fatal("empty batch mutated the store")
	}
}
