package trim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestCompactCreateRemoveHas(t *testing.T) {
	c := NewCompactStore()
	x := tr("s", "p", "v")
	added, err := c.Create(x)
	if err != nil || !added {
		t.Fatalf("Create = %v, %v", added, err)
	}
	if !c.Has(x) || c.Len() != 1 {
		t.Fatal("triple not stored")
	}
	if added, _ := c.Create(x); added {
		t.Fatal("duplicate Create = true")
	}
	if !c.Remove(x) {
		t.Fatal("Remove = false")
	}
	if c.Has(x) || c.Len() != 0 {
		t.Fatal("triple still live")
	}
	if c.Remove(x) {
		t.Fatal("second Remove = true")
	}
	// Resurrection: re-creating a tombstoned triple works.
	if added, _ := c.Create(x); !added {
		t.Fatal("resurrect Create = false")
	}
	if !c.Has(x) || c.Len() != 1 {
		t.Fatal("resurrected triple missing")
	}
}

func TestCompactCreateInvalid(t *testing.T) {
	c := NewCompactStore()
	if _, err := c.Create(rdf.T(rdf.String("s"), rdf.IRI("p"), rdf.String("o"))); err == nil {
		t.Fatal("invalid triple accepted")
	}
}

func TestCompactSelectParity(t *testing.T) {
	// The compact store must return exactly what Manager returns for every
	// binding shape.
	m := NewManager()
	c := NewCompactStore()
	populate(m, 200)
	for _, t2 := range m.Snapshot().All() {
		if _, err := c.Create(t2); err != nil {
			t.Fatal(err)
		}
	}
	pats := []rdf.Pattern{
		rdf.P(rdf.Zero, rdf.Zero, rdf.Zero),
		rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero),
		rdf.P(rdf.Zero, rdf.IRI("http://t/p2"), rdf.Zero),
		rdf.P(rdf.Zero, rdf.Zero, rdf.String("v7")),
		rdf.P(rdf.IRI("http://t/s7"), rdf.IRI("http://t/p2"), rdf.Zero),
		rdf.P(rdf.IRI("http://t/s7"), rdf.IRI("http://t/p2"), rdf.String("v7")),
		rdf.P(rdf.IRI("http://t/absent"), rdf.Zero, rdf.Zero),
		rdf.P(rdf.Zero, rdf.Zero, rdf.String("absent")),
	}
	for _, p := range pats {
		a, b := m.Select(p), c.Select(p)
		if len(a) != len(b) {
			t.Fatalf("pattern %v: manager %d vs compact %d", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %v: row %d differs: %v vs %v", p, i, a[i], b[i])
			}
		}
		if m.Count(p) != c.Count(p) {
			t.Fatalf("pattern %v: counts differ", p)
		}
	}
}

func TestCompactTombstonesInvisible(t *testing.T) {
	c := NewCompactStore()
	populateCompact(c, 50)
	removed := tr("s3", "p3", "v3")
	c.Create(removed)
	c.Remove(removed)
	for _, got := range c.Select(rdf.P(rdf.IRI("http://t/s3"), rdf.Zero, rdf.Zero)) {
		if got == removed {
			t.Fatal("tombstoned triple visible in Select")
		}
	}
	if c.Count(rdf.P(rdf.IRI("http://t/s3"), rdf.IRI("http://t/p3"), rdf.String("v3"))) != 0 {
		t.Fatal("tombstoned triple counted")
	}
}

func populateCompact(c *CompactStore, n int) {
	for i := 0; i < n; i++ {
		c.Create(rdf.T(
			rdf.IRI(fmt.Sprintf("http://t/s%d", i%10)),
			rdf.IRI(fmt.Sprintf("http://t/p%d", i%5)),
			rdf.String(fmt.Sprintf("v%d", i)),
		))
	}
}

func TestCompactCompaction(t *testing.T) {
	c := NewCompactStore()
	populateCompact(c, 100)
	for i := 0; i < 100; i += 2 {
		c.Remove(rdf.T(
			rdf.IRI(fmt.Sprintf("http://t/s%d", i%10)),
			rdf.IRI(fmt.Sprintf("http://t/p%d", i%5)),
			rdf.String(fmt.Sprintf("v%d", i)),
		))
	}
	before := c.Snapshot()
	dropped := c.Compact()
	if dropped != 50 {
		t.Fatalf("dropped = %d, want 50", dropped)
	}
	if c.Len() != 50 {
		t.Fatalf("Len after compact = %d", c.Len())
	}
	if !c.Snapshot().Equal(before) {
		t.Fatal("Compact changed visible contents")
	}
	// Queries still work post-compaction.
	if len(c.Select(rdf.P(rdf.IRI("http://t/s1"), rdf.Zero, rdf.Zero))) == 0 {
		t.Fatal("index broken after compact")
	}
}

func TestCompactLoadGraph(t *testing.T) {
	m := NewManager()
	populate(m, 60)
	c := NewCompactStore()
	populateCompact(c, 5) // will be replaced
	if err := c.LoadGraph(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !c.Snapshot().Equal(m.Snapshot()) {
		t.Fatal("LoadGraph contents differ")
	}
	if c.DictionarySize() == 0 {
		t.Fatal("dictionary empty after load")
	}
}

func TestCompactConcurrentReads(t *testing.T) {
	c := NewCompactStore()
	populateCompact(c, 500)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Select(rdf.P(rdf.IRI(fmt.Sprintf("http://t/s%d", w)), rdf.Zero, rdf.Zero))
				c.Count(rdf.Pattern{})
				if i%10 == 0 {
					c.Create(rdf.T(rdf.IRI(fmt.Sprintf("http://t/w%d", w)), rdf.IRI("http://t/p"), rdf.Integer(int64(i))))
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: after any interleaving of creates and removes, the compact
// store and the reference Manager agree on the full contents.
func TestCompactAgreesWithManagerProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewManager()
		c := NewCompactStore()
		for _, op := range ops {
			x := rdf.T(
				rdf.IRI(fmt.Sprintf("http://t/s%d", op%7)),
				rdf.IRI(fmt.Sprintf("http://t/p%d", op%3)),
				rdf.Integer(int64(op%11)),
			)
			if op%5 == 0 {
				ra := m.Remove(x)
				rb := c.Remove(x)
				if ra != rb {
					return false
				}
			} else {
				aa, _ := m.Create(x)
				ab, _ := c.Create(x)
				if aa != ab {
					return false
				}
			}
		}
		return m.Snapshot().Equal(c.Snapshot()) && m.Len() == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
