package trim

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// cardTruth recomputes the per-predicate cardinality table from scratch
// and compares it against the incrementally maintained one.
func cardTruth(t *testing.T, m *Manager) {
	t.Helper()
	type truth struct {
		triples  int
		subjects map[rdf.Term]struct{}
		objects  map[rdf.Term]struct{}
	}
	want := map[rdf.Term]*truth{}
	m.Snapshot().Each(func(tr rdf.Triple) bool {
		tw, ok := want[tr.Predicate]
		if !ok {
			tw = &truth{subjects: map[rdf.Term]struct{}{}, objects: map[rdf.Term]struct{}{}}
			want[tr.Predicate] = tw
		}
		tw.triples++
		tw.subjects[tr.Subject] = struct{}{}
		tw.objects[tr.Object] = struct{}{}
		return true
	})

	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.predCards) != len(want) {
		t.Fatalf("predCards tracks %d predicates, want %d", len(m.predCards), len(want))
	}
	for pred, tw := range want {
		pc, ok := m.predCards[pred]
		if !ok {
			t.Fatalf("predicate %v missing from predCards", pred)
		}
		if pc.triples != tw.triples || len(pc.subjects) != len(tw.subjects) || len(pc.objects) != len(tw.objects) {
			t.Fatalf("predicate %v: got triples=%d subjects=%d objects=%d, want %d/%d/%d",
				pred, pc.triples, len(pc.subjects), len(pc.objects),
				tw.triples, len(tw.subjects), len(tw.objects))
		}
	}
}

// TestCardinalityCreateRemove: the stats stay exact through interleaved
// creates, duplicate creates, and removes down to empty.
func TestCardinalityCreateRemove(t *testing.T) {
	m := NewManager()
	triples := []rdf.Triple{
		tr("s1", "p1", "a"),
		tr("s1", "p1", "b"),
		tr("s2", "p1", "a"),
		tr("s1", "p2", "a"),
		link("s2", "p2", "s1"),
	}
	for _, x := range triples {
		if _, err := m.Create(x); err != nil {
			t.Fatal(err)
		}
	}
	m.Create(triples[0]) // duplicate: must not double-count
	cardTruth(t, m)

	m.mu.RLock()
	pc := m.predCards[rdf.IRI("http://t/p1")]
	if pc.triples != 3 || len(pc.subjects) != 2 || len(pc.objects) != 2 {
		m.mu.RUnlock()
		t.Fatalf("p1 card = triples=%d subjects=%d objects=%d, want 3/2/2", pc.triples, len(pc.subjects), len(pc.objects))
	}
	m.mu.RUnlock()

	m.Remove(triples[1])
	m.Remove(triples[1]) // absent remove: must not decrement
	cardTruth(t, m)
	for _, x := range triples {
		m.Remove(x)
	}
	cardTruth(t, m)
	m.mu.RLock()
	if len(m.predCards) != 0 {
		t.Fatalf("empty store still tracks %d predicates", len(m.predCards))
	}
	m.mu.RUnlock()
}

// TestCardinalityBatchAndSetUnique: batch applies and SetUnique go through
// the same mutation points, so the stats stay exact there too.
func TestCardinalityBatchAndSetUnique(t *testing.T) {
	m := NewManager()
	b := m.NewBatch()
	for i := 0; i < 4; i++ {
		if err := b.Create(tr("s", "p", string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	cardTruth(t, m)

	b = m.NewBatch()
	if err := b.Remove(tr("s", "p", "a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Create(tr("s2", "q", "x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(); err != nil {
		t.Fatal(err)
	}
	cardTruth(t, m)

	if err := m.SetUnique(rdf.IRI("http://t/s"), rdf.IRI("http://t/p"), rdf.String("only")); err != nil {
		t.Fatal(err)
	}
	cardTruth(t, m)
}

// TestCardinalityReplace: Replace rebuilds the stats from the new graph;
// RemoveMatching keeps them exact.
func TestCardinalityReplace(t *testing.T) {
	m := NewManager()
	populate(m, 40)
	cardTruth(t, m)

	g := rdf.NewGraph()
	g.Add(tr("x", "p9", "1"))
	g.Add(tr("y", "p9", "1"))
	m.Replace(g)
	cardTruth(t, m)

	m.RemoveMatching(rdf.P(rdf.Zero, rdf.IRI("http://t/p9"), rdf.Zero))
	cardTruth(t, m)
	m.Clear()
	cardTruth(t, m)
}

// TestStatsPredicates: Stats reports the per-predicate table sorted by
// predicate with store-relative selectivity.
func TestStatsPredicates(t *testing.T) {
	m := NewManager()
	m.Create(tr("s1", "b", "v1"))
	m.Create(tr("s2", "b", "v2"))
	m.Create(tr("s2", "b", "v1"))
	m.Create(tr("s1", "a", "v1"))

	s := m.Stats()
	if len(s.Predicates) != 2 {
		t.Fatalf("Predicates = %+v, want 2 entries", s.Predicates)
	}
	if s.Predicates[0].Predicate != "http://t/a" || s.Predicates[1].Predicate != "http://t/b" {
		t.Fatalf("predicates not sorted: %+v", s.Predicates)
	}
	pb := s.Predicates[1]
	if pb.Triples != 3 || pb.DistinctSubjects != 2 || pb.DistinctObjects != 2 {
		t.Fatalf("b stats = %+v", pb)
	}
	if pb.Selectivity != 0.75 {
		t.Fatalf("b selectivity = %v, want 0.75", pb.Selectivity)
	}
}

// TestExplainSelectivity: SelectExplain carries the planner's estimate —
// exact for predicate-only patterns, scaled for compound ones, zero for
// unknown predicates and empty stores.
func TestExplainSelectivity(t *testing.T) {
	m := NewManager()

	_, e := m.SelectExplain(rdf.P(rdf.Zero, rdf.IRI("http://t/p"), rdf.Zero))
	if e.EstRows != 0 || e.EstSelectivity != 0 {
		t.Fatalf("empty-store estimate = %d/%v", e.EstRows, e.EstSelectivity)
	}

	for i := 0; i < 8; i++ {
		m.Create(tr("s"+string(rune('a'+i%4)), "p", string(rune('0'+i))))
	}
	m.Create(tr("s", "q", "x"))
	m.Create(tr("s", "q", "y"))

	// Predicate-only: exact per-predicate count.
	_, e = m.SelectExplain(rdf.P(rdf.Zero, rdf.IRI("http://t/p"), rdf.Zero))
	if e.EstRows != 8 || e.Matched != 8 {
		t.Fatalf("?p? estimate = %d (matched %d), want 8", e.EstRows, e.Matched)
	}
	if want := 0.8; e.EstSelectivity != want {
		t.Fatalf("?p? selectivity = %v, want %v", e.EstSelectivity, want)
	}

	// Subject+predicate: mean triples per subject for that predicate (8/4).
	_, e = m.SelectExplain(rdf.P(rdf.IRI("http://t/sa"), rdf.IRI("http://t/p"), rdf.Zero))
	if e.EstRows != 2 || e.Matched != 2 {
		t.Fatalf("sp? estimate = %d (matched %d), want 2", e.EstRows, e.Matched)
	}

	// Unknown predicate: zero rows.
	_, e = m.SelectExplain(rdf.P(rdf.Zero, rdf.IRI("http://t/nope"), rdf.Zero))
	if e.EstRows != 0 || e.EstSelectivity != 0 {
		t.Fatalf("unknown-predicate estimate = %d/%v", e.EstRows, e.EstSelectivity)
	}

	// Unbound predicate: exact subject index bucket.
	_, e = m.SelectExplain(rdf.P(rdf.IRI("http://t/s"), rdf.Zero, rdf.Zero))
	if e.EstRows != 2 || e.Matched != 2 {
		t.Fatalf("s?? estimate = %d (matched %d), want 2", e.EstRows, e.Matched)
	}

	// Full scan: the whole store.
	_, e = m.SelectExplain(rdf.P(rdf.Zero, rdf.Zero, rdf.Zero))
	if e.EstRows != 10 || e.EstSelectivity != 1 {
		t.Fatalf("??? estimate = %d/%v, want 10/1", e.EstRows, e.EstSelectivity)
	}

	// The EXPLAIN line includes the estimate fields.
	got := e.String()
	if !strings.Contains(got, "est_rows=10") || !strings.Contains(got, "est_selectivity=1.0000") {
		t.Fatalf("String() missing estimate fields: %s", got)
	}
}
