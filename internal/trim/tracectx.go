package trim

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Context-carrying variants of the TRIM entry points. Each one starts a
// child span off the caller's trace (obs.StartCtx) and delegates to the
// plain method, so a DMI op's trace tree reaches down into the store layer
// and records exactly which selects, creates, and batch applies one user
// gesture fanned out into. TRIM is the bottom of the stack: nothing below
// it takes a context, so the ctx stops here and only the span matters.

// patShape renders a pattern's bound/wildcard mask ("s??", "?po", ...):
// enough to see the index choice a select had available, cheap enough for
// span detail on the hot path.
func patShape(p rdf.Pattern) string {
	buf := [3]byte{'?', '?', '?'}
	if !p.Subject.IsZero() {
		buf[0] = 's'
	}
	if !p.Predicate.IsZero() {
		buf[1] = 'p'
	}
	if !p.Object.IsZero() {
		buf[2] = 'o'
	}
	return string(buf[:])
}

// CreateCtx is Create with the caller's trace attached.
func (m *Manager) CreateCtx(ctx context.Context, t rdf.Triple) (created bool, err error) {
	_, sp := obs.StartCtx(ctx, "trim.create", "")
	defer func() { sp.FinishErr(err) }()
	return m.Create(t)
}

// RemoveCtx is Remove with the caller's trace attached.
func (m *Manager) RemoveCtx(ctx context.Context, t rdf.Triple) bool {
	_, sp := obs.StartCtx(ctx, "trim.remove", "")
	defer sp.Finish()
	return m.Remove(t)
}

// RemoveMatchingCtx is RemoveMatching with the caller's trace attached.
func (m *Manager) RemoveMatchingCtx(ctx context.Context, p rdf.Pattern) int {
	_, sp := obs.StartCtx(ctx, "trim.remove_matching", patShape(p))
	defer sp.Finish()
	return m.RemoveMatching(p)
}

// SelectCtx is Select with the caller's trace attached.
func (m *Manager) SelectCtx(ctx context.Context, p rdf.Pattern) []rdf.Triple {
	_, sp := obs.StartCtx(ctx, "trim.select", patShape(p))
	defer sp.Finish()
	return m.Select(p)
}

// ViewCtx is View with the caller's trace attached.
func (m *Manager) ViewCtx(ctx context.Context, root rdf.Term) *rdf.Graph {
	_, sp := obs.StartCtx(ctx, "trim.view", root.String())
	defer sp.Finish()
	return m.View(root)
}

// SelectExplainCtx is SelectExplain with the caller's trace attached; the
// plan line becomes the span detail once the query has run.
func (m *Manager) SelectExplainCtx(ctx context.Context, p rdf.Pattern) ([]rdf.Triple, Explain) {
	_, sp := obs.StartCtx(ctx, "trim.select", patShape(p))
	defer sp.Finish()
	ts, e := m.SelectExplain(p)
	sp.SetDetail(e.String())
	return ts, e
}

// ViewExplainCtx is ViewExplain with the caller's trace attached; the plan
// line becomes the span detail.
func (m *Manager) ViewExplainCtx(ctx context.Context, root rdf.Term) (*rdf.Graph, Explain) {
	_, sp := obs.StartCtx(ctx, "trim.view", root.String())
	defer sp.Finish()
	g, e := m.ViewExplain(root)
	sp.SetDetail(e.String())
	return g, e
}

// PathExplainCtx is PathExplain with the caller's trace attached; the plan
// line becomes the span detail.
func (m *Manager) PathExplainCtx(ctx context.Context, start []rdf.Term, predicates ...rdf.Term) ([]rdf.Term, Explain) {
	_, sp := obs.StartCtx(ctx, "trim.path", fmt.Sprintf("start=%d hops=%d", len(start), len(predicates)))
	defer sp.Finish()
	ts, e := m.PathExplain(start, predicates...)
	sp.SetDetail(e.String())
	return ts, e
}

// ApplyCtx is Apply with the caller's trace attached: the whole atomic
// batch becomes one span carrying its op count.
func (b *Batch) ApplyCtx(ctx context.Context) (err error) {
	_, sp := obs.StartCtx(ctx, "trim.batch.apply", fmt.Sprintf("ops=%d", b.Len()))
	defer func() { sp.FinishErr(err) }()
	return b.Apply()
}
