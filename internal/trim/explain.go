package trim

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Query EXPLAIN makes the §6 "cost of interpreting manipulations" claim
// measurable per query instead of only in aggregate: every read path
// (selection, reachability view, predicate path) can report which index
// the planner chose, how many candidate triples it scanned, how many
// matched, and how long the walk took. Explains of queries that exceed
// the slow-op threshold land in obs.DefaultSlowOps with the full EXPLAIN
// line as their detail, so /debug/slowops answers "which query was slow
// and why" on a live store.

// Explain describes how one TRIM query executed.
type Explain struct {
	// Op is the query kind: "select", "view", or "path".
	Op string `json:"op"`
	// Query renders the query arguments (pattern, root, or path).
	Query string `json:"query"`
	// Index is the planner's choice: "subject", "predicate", "object", or
	// "scan" (no position bound — full store scan). Views and paths always
	// walk the subject (or object, for inverse paths) index.
	Index string `json:"index"`
	// Candidates is the number of triples examined: the chosen index
	// bucket's size for an indexed select, the store size for a scan, or
	// the edges touched during a view/path walk.
	Candidates int `json:"candidates"`
	// Matched is the result size: triples for select/view, terms for path.
	Matched int `json:"matched"`
	// Observers is the number of registered observers — the notification
	// fan-out every mutation to the scanned region would incur.
	Observers int `json:"observers"`
	// StoreSize and Generation snapshot the store the query ran against.
	StoreSize  int    `json:"store_size"`
	Generation uint64 `json:"generation"`
	// EstRows and EstSelectivity are the planner's pre-scan cardinality
	// estimate from the per-predicate statistics (see estimateLocked):
	// expected result rows and their fraction of the store. Comparing
	// EstRows against Matched shows how good the estimate was.
	EstRows        int     `json:"est_rows"`
	EstSelectivity float64 `json:"est_selectivity"`
	// WallNS is the query's wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
}

// Wall returns the query's wall time.
func (e Explain) Wall() time.Duration { return time.Duration(e.WallNS) }

// String renders the explain as one line of key=value fields.
func (e Explain) String() string {
	return fmt.Sprintf("op=%s query=%q index=%s candidates=%d matched=%d est_rows=%d est_selectivity=%.4f observers=%d store=%d generation=%d wall=%s",
		e.Op, e.Query, e.Index, e.Candidates, e.Matched, e.EstRows, e.EstSelectivity,
		e.Observers, e.StoreSize, e.Generation, e.Wall().Round(time.Microsecond))
}

// String names the planner's index choice for EXPLAIN output.
func (c indexChoice) String() string {
	switch c {
	case indexSubject:
		return "subject"
	case indexPredicate:
		return "predicate"
	case indexObject:
		return "object"
	default:
		return "scan"
	}
}

// journal feeds the slow-op journal; the EXPLAIN line is built only when
// the query actually exceeded the threshold, keeping fast queries free of
// the formatting cost.
func (e Explain) journal(start time.Time) {
	if obs.DefaultSlowOps.Slow(e.Wall()) {
		obs.DefaultSlowOps.Observe("trim."+e.Op, e.String(), start, e.Wall(), nil)
	}
}

// selectExplainLocked is the single implementation behind Select and
// SelectExplain: it runs the planner, scans, and fills every Explain
// field except Query and WallNS (the caller owns those).
func (m *Manager) selectExplainLocked(p rdf.Pattern) ([]rdf.Triple, Explain) {
	bucket, choice := m.chooseIndexLocked(p)
	choice.count()
	e := Explain{
		Op:         "select",
		Index:      choice.String(),
		Observers:  len(m.observers),
		StoreSize:  m.graph.Len(),
		Generation: m.generation,
	}
	e.EstRows, e.EstSelectivity = m.estimateLocked(p)
	if choice == indexNone {
		e.Candidates = m.graph.Len()
		out := m.graph.Select(p)
		e.Matched = len(out)
		return out, e
	}
	e.Candidates = len(bucket)
	var out []rdf.Triple
	for t := range bucket {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	rdf.SortTriples(out)
	e.Matched = len(out)
	return out, e
}

// SelectExplain is Select plus an execution report. It records the same
// metrics as Select and journals slow queries with their EXPLAIN line.
func (m *Manager) SelectExplain(p rdf.Pattern) ([]rdf.Triple, Explain) {
	start := time.Now()
	m.mu.RLock()
	out, e := m.selectExplainLocked(p)
	m.mu.RUnlock()
	e.Query = p.String()
	e.WallNS = int64(time.Since(start))
	mSelectNS.Observe(e.WallNS)
	mSelectTotal.Inc()
	recordSelectShape(p, e.Index)
	e.journal(start)
	return out, e
}

// ViewExplain is View plus an execution report: Candidates counts the
// edges examined during the reachability walk, Matched the triples in the
// resulting view.
func (m *Manager) ViewExplain(root rdf.Term) (*rdf.Graph, Explain) {
	start := time.Now()
	m.mu.RLock()
	out, e := m.viewExplainLocked(root, nil)
	m.mu.RUnlock()
	e.Query = root.String()
	e.WallNS = int64(time.Since(start))
	mViewNS.Observe(e.WallNS)
	mViewTotal.Inc()
	recordViewShape()
	e.journal(start)
	return out, e
}

// PathExplain is Path plus an execution report: Candidates counts the
// edges examined across every hop, Matched the terms reached at the end.
func (m *Manager) PathExplain(start []rdf.Term, predicates ...rdf.Term) ([]rdf.Term, Explain) {
	began := time.Now()
	m.mu.RLock()
	out, e := m.pathExplainLocked(start, predicates)
	m.mu.RUnlock()
	e.WallNS = int64(time.Since(began))
	recordPathShape(predicates, false)
	e.journal(began)
	return out, e
}

func (m *Manager) pathExplainLocked(start []rdf.Term, predicates []rdf.Term) ([]rdf.Term, Explain) {
	e := Explain{
		Op:         "path",
		Index:      indexSubject.String(),
		Observers:  len(m.observers),
		StoreSize:  m.graph.Len(),
		Generation: m.generation,
	}
	var q string
	for _, s := range start {
		q += s.String() + " "
	}
	for i, p := range predicates {
		if i > 0 {
			q += "/"
		}
		q += p.String()
	}
	e.Query = q

	frontier := make(map[rdf.Term]struct{}, len(start))
	for _, s := range start {
		if s.IsResource() {
			frontier[s] = struct{}{}
		}
	}
	for _, pred := range predicates {
		next := make(map[rdf.Term]struct{})
		for node := range frontier {
			for t := range m.bySubject[node] {
				e.Candidates++
				if t.Predicate == pred {
					next[t.Object] = struct{}{}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]rdf.Term, 0, len(frontier))
	for t := range frontier {
		out = append(out, t)
	}
	sortTerms(out)
	e.Matched = len(out)
	return out, e
}
