package trim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Query-shape keys for the heavy-hitter profiler (obs.DefaultTopQueries):
// every read entry point records a compact shape — op kind, bound-position
// mask, index choice, and the predicate when one is bound — so /debug/top
// and `trimq top` can rank which query families dominate a live store.
// Keys deliberately exclude subject/object values: shapes stay bounded by
// the schema (predicates in use), not by the data.

// recordSelectShape records one select against the sketch.
func recordSelectShape(p rdf.Pattern, index string) {
	key := "select " + patShape(p) + " index=" + index
	if !p.Predicate.IsZero() {
		key += " pred=" + p.Predicate.Value()
	}
	obs.RecordQueryShape(key)
}

// recordViewShape records one reachability view.
func recordViewShape() {
	obs.RecordQueryShape("view index=subject")
}

// recordPathShape records one predicate-path walk; inverse walks run on
// the object index.
func recordPathShape(predicates []rdf.Term, inverse bool) {
	index := "subject"
	if inverse {
		index = "object"
	}
	key := fmt.Sprintf("path hops=%d index=%s preds=", len(predicates), index)
	for i, p := range predicates {
		if i > 0 {
			key += "/"
		}
		key += p.Value()
	}
	obs.RecordQueryShape(key)
}
